package partita

import (
	"testing"
)

const demoSource = `
xmem int signal[32] = {5, -3, 12, 7, -9, 4, 0, 8, 5, -3, 12, 7, -9, 4, 0, 8,
                       5, -3, 12, 7, -9, 4, 0, 8, 5, -3, 12, 7, -9, 4, 0, 8};
ymem int taps[4] = {8192, 16384, 8192, 4096};
xmem int filtered[32];
xmem int quantized[32];
int status;

int fir(xmem int in[], ymem int c[], xmem int out[], int n, int k) {
	int i; int j; int acc;
	for (i = 0; i + k <= n; i = i + 1) {
		acc = 0;
		for (j = 0; j < k; j = j + 1) { acc = acc + in[i + j] * c[j]; }
		out[i] = acc >> 15;
	}
	return out[0];
}

int quant(xmem int in[], xmem int out[], int n) {
	int i;
	for (i = 0; i < n; i = i + 1) { out[i] = in[i] / 4; }
	return out[0];
}

int process() {
	int f; int q;
	f = fir(signal, taps, filtered, 32, 4);
	status = (status * 7 + 3) >> 1; // independent bookkeeping
	q = quant(filtered, quantized, 29);
	return f + q;
}

int main() { return process(); }
`

func demoCatalog(t *testing.T) *Catalog {
	t.Helper()
	cat, err := NewCatalog(
		&IP{ID: "FIR8", Name: "FIR engine", Funcs: []string{"fir"},
			InPorts: 2, OutPorts: 2, InRate: 4, OutRate: 4,
			Latency: 8, Pipelined: true, Area: 5},
		&IP{ID: "QNT", Name: "quantizer", Funcs: []string{"quant"},
			InPorts: 1, OutPorts: 1, InRate: 2, OutRate: 2,
			Latency: 4, Pipelined: true, Area: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestPublicAPIEndToEnd(t *testing.T) {
	design, err := Analyze(demoSource, "process", demoCatalog(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(design.DB.SCalls) != 2 {
		t.Fatalf("s-calls = %d, want 2 (fir, quant)", len(design.DB.SCalls))
	}

	// Profile: the program must execute correctly on the kernel model.
	stats, ret, err := design.Profile("main")
	if err != nil {
		t.Fatal(err)
	}
	if stats.CallCount["fir"] != 1 || stats.Cycles <= 0 {
		t.Errorf("profile: calls=%v cycles=%d", stats.CallCount, stats.Cycles)
	}
	_ = ret

	// Selection: modest target should be met at small area.
	var maxGain int64
	for _, m := range design.DB.IMPs {
		if m.SC.Func == "fir" && m.TotalGain > maxGain {
			maxGain = m.TotalGain
		}
	}
	if maxGain <= 0 {
		t.Fatal("no gainful IMP for fir")
	}
	sel, err := design.Select(maxGain / 2)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Status != Optimal {
		t.Fatalf("status = %v", sel.Status)
	}
	if sel.Gain < maxGain/2 {
		t.Errorf("gain %d below target %d", sel.Gain, maxGain/2)
	}

	// The greedy baseline must not beat the ILP on area.
	grd := design.GreedySelect(maxGain / 2)
	if grd.Status == Optimal && grd.Area < sel.Area-1e-9 {
		t.Errorf("greedy area %g beats ILP %g", grd.Area, sel.Area)
	}

	// Simulation: acceleration reduces cycle count.
	res, err := design.Simulate(sel, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup() <= 1.0 {
		t.Errorf("speedup = %.2f, want > 1", res.Speedup())
	}
}

func TestInterfaceCandidatesPublic(t *testing.T) {
	block := &IP{ID: "X", Name: "x", Funcs: []string{"f"},
		InPorts: 2, OutPorts: 2, InRate: 4, OutRate: 4,
		Latency: 8, Pipelined: true, Area: 3}
	cands := InterfaceCandidates(block, Shape{NIn: 32, NOut: 32, TSW: 100000})
	if len(cands) != 4 {
		t.Fatalf("candidates = %d, want 4", len(cands))
	}
	for _, c := range cands {
		if c.Gain <= 0 {
			t.Errorf("%v: gain %d", c.Type, c.Gain)
		}
	}
}

func TestBackEndFlow(t *testing.T) {
	design, err := Analyze(demoSource, "process", demoCatalog(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats, _, err := design.Profile("main")
	if err != nil {
		t.Fatal(err)
	}

	// Sweep and frontier.
	points, err := design.Sweep(6)
	if err != nil {
		t.Fatal(err)
	}
	front := ParetoFront(points)
	if len(front) == 0 {
		t.Fatal("empty frontier")
	}
	sel := front[len(front)-1].Sel

	// C-instruction generation + encoding.
	cres := design.GenerateCInstructions(stats)
	im, err := design.Encode(cres, sel)
	if err != nil {
		t.Fatal(err)
	}
	if im.UniqueWords <= 0 || im.UniqueWords > im.TotalWords {
		t.Errorf("bad image stats: unique=%d total=%d", im.UniqueWords, im.TotalWords)
	}
	if len(im.SRoutines) == 0 {
		t.Error("no S-instruction routines for a non-empty selection")
	}

	// RTL generation.
	rtl := design.GenerateRTL(sel, im)
	if !containsStr(rtl, "module decode_unit") {
		t.Error("RTL lacks the decode unit")
	}
	if !containsStr(rtl, "module pt_") {
		t.Error("RTL lacks protocol transformers")
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestAnalyzeErrorsSurface(t *testing.T) {
	cat := demoCatalog(t)
	if _, err := Analyze("int f( {", "f", cat, Options{}); err == nil {
		t.Error("parse error not surfaced")
	}
	if _, err := Analyze("int f() { return g(); }", "f", cat, Options{}); err == nil {
		t.Error("semantic error not surfaced")
	}
	if _, err := Analyze(demoSource, "nope", cat, Options{}); err == nil {
		t.Error("unknown root not surfaced")
	}
}
