package partita

// The portfolio benchmark harness measures what the racing portfolio
// buys an interactive user — time-to-first-acceptable versus a cold
// exact solve on the GSM/JPEG models, which engine delivers the first
// acceptable answer, and how much a warm-started incremental Reselect
// saves over re-running the whole pipeline after a single-field edit —
// and records the numbers in BENCH_portfolio.json at the repo root
// (override the path with the BENCH_PORTFOLIO_OUT environment
// variable):
//
//	go test -run NoTests -bench BenchmarkPortfolio -benchtime 20x .
//
// Every first-acceptable iteration also re-solves the same target at
// gap 0 and compares the settled portfolio answer byte-for-byte
// against the exact solver (status, gain, area, chosen method IDs);
// the incremental iterations compare the warm and cold settled proofs
// the same way. Any mismatch is counted in the drift field and fails
// the benchmark, so the speedup numbers can never be bought with
// correctness.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"partita/internal/apps"
	"partita/internal/selector"
)

// portfolioBenchMetrics is one benchmark's entry in BENCH_portfolio.json.
type portfolioBenchMetrics struct {
	// GapPct is the acceptability threshold the race ran at, in percent.
	GapPct float64 `json:"gapPct"`
	// FirstMs / ExactMs are median time-to-first-acceptable and median
	// cold exact-solve latency; SpeedupVsExact is their ratio.
	FirstMs        float64 `json:"firstMs,omitempty"`
	ExactMs        float64 `json:"exactMs,omitempty"`
	SpeedupVsExact float64 `json:"speedupVsExact,omitempty"`
	// Wins counts which engine delivered the first acceptable answer.
	Wins map[string]int `json:"wins,omitempty"`
	// WarmMs / ColdMs are median time-to-first-acceptable of a seeded
	// incremental Reselect versus re-analyzing from source and racing
	// the edited problem cold; SpeedupVsCold is their ratio. The warm
	// side wins by re-pricing the previous answer (the seed engine) and
	// judging it against the floor carried over from the previous
	// proof, typically in microseconds.
	WarmMs        float64 `json:"warmMs,omitempty"`
	ColdMs        float64 `json:"coldMs,omitempty"`
	SpeedupVsCold float64 `json:"speedupVsCold,omitempty"`
	// WarmSettledMs / ColdSettledMs are the matching median times to
	// the settled (proven) result: the exact proof still has to run on
	// both sides, so these stay close — the portfolio's incremental win
	// is in answer latency, not proof latency.
	WarmSettledMs float64 `json:"warmSettledMs,omitempty"`
	ColdSettledMs float64 `json:"coldSettledMs,omitempty"`
	Solves        int     `json:"solves"`
	// Drift counts gap-0 settled answers that differed from the exact
	// solver's. It must be zero; the benchmark fails otherwise.
	Drift int `json:"drift"`
}

var portfolioBenchMu sync.Mutex

func portfolioBenchOutPath() (string, error) {
	if p := os.Getenv("BENCH_PORTFOLIO_OUT"); p != "" {
		return p, nil
	}
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return filepath.Join(dir, "BENCH_portfolio.json"), nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

func portfolioRecord(b *testing.B, name string, m portfolioBenchMetrics) {
	portfolioBenchMu.Lock()
	defer portfolioBenchMu.Unlock()
	path, err := portfolioBenchOutPath()
	if err != nil {
		b.Logf("bench output skipped: %v", err)
		return
	}
	doc := map[string]portfolioBenchMetrics{}
	if raw, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(raw, &doc)
	}
	doc[name] = m
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

func portfolioMedianMs(durs []time.Duration) float64 {
	if len(durs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return float64(sorted[len(sorted)/2]) / float64(time.Millisecond)
}

// selFingerprint is the byte-for-byte identity of a settled selection:
// status, lexicographic objective, and the chosen method IDs in order.
func selFingerprint(sel *Selection) string {
	ids := make([]string, len(sel.Chosen))
	for i, m := range sel.Chosen {
		ids[i] = m.ID
	}
	return fmt.Sprintf("%v|%d|%.9f|%s", sel.Status, sel.Gain, sel.Area, strings.Join(ids, " "))
}

func portfolioBenchDesign(b *testing.B, gen func() (apps.Workload, error)) (*Design, apps.Workload) {
	b.Helper()
	w, err := gen()
	if err != nil {
		b.Fatal(err)
	}
	d, err := Analyze(w.Source, w.Root, w.Catalog, Options{DataCount: w.DataCount})
	if err != nil {
		b.Fatal(err)
	}
	return d, w
}

// benchPortfolioFirst races the portfolio at a 5% gap against a cold
// exact solve over the CLI's sweep band of gain targets and records the
// median time-to-first-acceptable, the exact baseline, and which engine
// won each race. A gap-0 race per iteration checks correctness drift.
func benchPortfolioFirst(b *testing.B, name string, gen func() (apps.Workload, error)) {
	d, _ := portfolioBenchDesign(b, gen)
	max := selector.MaxReachableGain(d.DB)
	fracs := []int64{10, 30, 50, 70, 90}
	ctx := context.Background()
	const gap = 0.05

	var firsts, exacts []time.Duration
	wins := map[string]int{}
	drift := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rg := max * fracs[i%len(fracs)] / 100

		t0 := time.Now()
		ref, err := d.SelectCtx(ctx, rg, Budget{})
		if err != nil {
			b.Fatal(err)
		}
		exacts = append(exacts, time.Since(t0))

		res, err := d.SelectPortfolio(ctx, rg, PortfolioOptions{Gap: gap})
		if err != nil {
			b.Fatal(err)
		}
		firsts = append(firsts, res.First)
		wins[string(res.FirstEngine)]++

		proven, err := d.SelectPortfolio(ctx, rg, PortfolioOptions{Gap: 0})
		if err != nil {
			b.Fatal(err)
		}
		if selFingerprint(proven.Sel) != selFingerprint(ref) {
			drift++
			b.Errorf("gap-0 portfolio drifted from exact at RG=%d:\n  portfolio %s\n  exact     %s",
				rg, selFingerprint(proven.Sel), selFingerprint(ref))
		}
	}
	b.StopTimer()

	m := portfolioBenchMetrics{
		GapPct:  gap * 100,
		FirstMs: portfolioMedianMs(firsts),
		ExactMs: portfolioMedianMs(exacts),
		Wins:    wins,
		Solves:  b.N,
		Drift:   drift,
	}
	if m.FirstMs > 0 {
		m.SpeedupVsExact = m.ExactMs / m.FirstMs
		b.ReportMetric(m.SpeedupVsExact, "first_speedup_x")
	}
	b.ReportMetric(m.FirstMs, "first_ms")
	b.ReportMetric(m.ExactMs, "exact_ms")
	portfolioRecord(b, name, m)
}

func BenchmarkPortfolioFirstGSM(b *testing.B) {
	benchPortfolioFirst(b, "first_gsm", apps.GSMEncoderWorkload)
}

func BenchmarkPortfolioFirstJPEG(b *testing.B) {
	benchPortfolioFirst(b, "first_jpeg", apps.JPEGEncoderWorkload)
}

// benchPortfolioIncremental measures what an interactive edit session
// saves: after a settled solve, apply a single-field edit (one IP's
// area) and race the edited problem again at the service's 5% gap,
// warm — seeded from the previous selection over the copy-on-write
// derived analysis, with the previous proven optimum carried over as
// an area floor — versus cold, re-analyzing the workload from source
// and racing with no seed, which is what a non-incremental pipeline
// would do. The headline number is time-to-first-acceptable (the
// answer an interactive caller acts on); settle times, which are
// proof-bound on both sides, are recorded alongside. Both races run
// to their settled proof, which is compared byte-for-byte.
func benchPortfolioIncremental(b *testing.B, name string, gen func() (apps.Workload, error)) {
	d, w := portfolioBenchDesign(b, gen)
	max := selector.MaxReachableGain(d.DB)
	rg := max / 2
	ctx := context.Background()

	base, err := d.SelectPortfolio(ctx, rg, PortfolioOptions{Gap: 0})
	if err != nil {
		b.Fatal(err)
	}
	if len(base.Sel.Chosen) == 0 {
		b.Fatal("base solve chose nothing; no IP to edit")
	}
	// Cycle single-field edits over the chosen IPs, nudging each area by
	// a few percent — the shape of a designer exploring the area budget.
	// Each delta carries the required gain so the cold path (nil prev,
	// which has no previous problem to inherit it from) solves the same
	// problem the warm path does.
	var edits []Delta
	for _, m := range base.Sel.Chosen {
		if m.IP == nil {
			continue
		}
		edits = append(edits, Delta{
			IPArea:   map[string]float64{m.IP.ID: m.IP.Area * 1.05},
			Required: &rg,
		})
	}
	if len(edits) == 0 {
		b.Fatal("no IP-backed methods in the base selection")
	}

	const gap = 0.05
	var warms, colds, warmSettles, coldSettles []time.Duration
	drift := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		delta := edits[i%len(edits)]

		warm, err := d.Reselect(ctx, base, delta, PortfolioOptions{Gap: gap})
		if err != nil {
			b.Fatal(err)
		}
		warms = append(warms, warm.First)
		warmSettles = append(warmSettles, warm.Settled)

		// The cold side pays the whole pipeline: re-analysis from source
		// plus an unseeded race. Its first-acceptable clock starts at the
		// edit, like an interactive caller's would.
		t0 := time.Now()
		cd, err := Analyze(w.Source, w.Root, w.Catalog, Options{DataCount: w.DataCount})
		if err != nil {
			b.Fatal(err)
		}
		analyzeCost := time.Since(t0)
		cold, err := cd.Reselect(ctx, nil, delta, PortfolioOptions{Gap: gap})
		if err != nil {
			b.Fatal(err)
		}
		colds = append(colds, analyzeCost+cold.First)
		coldSettles = append(coldSettles, analyzeCost+cold.Settled)

		if selFingerprint(warm.Sel) != selFingerprint(cold.Sel) {
			drift++
			b.Errorf("warm re-solve drifted from cold for edit %+v:\n  warm %s\n  cold %s",
				delta, selFingerprint(warm.Sel), selFingerprint(cold.Sel))
		}
	}
	b.StopTimer()

	m := portfolioBenchMetrics{
		GapPct:        gap * 100,
		WarmMs:        portfolioMedianMs(warms),
		ColdMs:        portfolioMedianMs(colds),
		WarmSettledMs: portfolioMedianMs(warmSettles),
		ColdSettledMs: portfolioMedianMs(coldSettles),
		Solves:        b.N,
		Drift:         drift,
	}
	if m.WarmMs > 0 {
		m.SpeedupVsCold = m.ColdMs / m.WarmMs
		b.ReportMetric(m.SpeedupVsCold, "incremental_speedup_x")
	}
	b.ReportMetric(m.WarmMs, "warm_first_ms")
	b.ReportMetric(m.ColdMs, "cold_first_ms")
	portfolioRecord(b, name, m)
}

func BenchmarkPortfolioIncrementalGSM(b *testing.B) {
	benchPortfolioIncremental(b, "incremental_gsm", apps.GSMEncoderWorkload)
}
