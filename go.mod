module partita

go 1.22
