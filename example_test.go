package partita_test

import (
	"fmt"
	"log"

	"partita"
)

// Example runs the minimal flow: analyze a program against a one-block
// IP library, select at half the reachable gain, and report the chosen
// implementation in the paper's notation.
func Example() {
	const source = `
xmem int in[16] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};
ymem int k[4] = {8192, 8192, 8192, 8192};
xmem int out[16];

int fir(xmem int a[], ymem int c[], xmem int o[], int n, int t) {
	int i; int j; int acc;
	for (i = 0; i + t <= n; i = i + 1) {
		acc = 0;
		for (j = 0; j < t; j = j + 1) { acc = acc + a[i + j] * c[j]; }
		o[i] = acc >> 15;
	}
	return o[0];
}

int process() { return fir(in, k, out, 16, 4); }
int main() { return process(); }
`
	catalog, err := partita.NewCatalog(&partita.IP{
		ID: "FIR4", Name: "FIR engine", Funcs: []string{"fir"},
		InPorts: 2, OutPorts: 2, InRate: 4, OutRate: 4,
		Latency: 8, Pipelined: true, Area: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	design, err := partita.Analyze(source, "process", catalog, partita.Options{
		DataCount: func(fn string) (int, int) { return 16, 13 },
	})
	if err != nil {
		log.Fatal(err)
	}
	var best int64
	for _, m := range design.DB.IMPs {
		if m.TotalGain > best {
			best = m.TotalGain
		}
	}
	sel, err := design.Select(best / 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range sel.Chosen {
		fmt.Printf("%s selected for %s\n", m.ID, m.SC.Func)
	}
	fmt.Printf("S-instructions: %d\n", sel.SInstructions)
	// Output:
	// SC1:FIR4,IF2 selected for fir
	// S-instructions: 1
}
