package client

// Batch fan-out chaos test: three real partitad processes form a ring
// with -batch-fanout, one node accepts a sweep batch and ring-routes
// its points under injected dispatch faults (remote.point.5xx,
// remote.point.timeout), and the peer owning the largest point group
// is SIGKILLed mid-batch. The coordinator must then prove the ISSUE's
// fan-out guarantees:
//
//  1. every point reaches a terminal disposition — zero points lost,
//     zero points failed: dispatches to the dead peer exhaust their
//     retry budget and requeue locally;
//  2. the batch finishes even though a third of its owners died
//     mid-flight (local fallback is always available);
//  3. with a journal attached, killing and restarting the coordinator
//     restores the finished batch and its memoized results — the
//     identical batch resubmitted after the restart answers entirely
//     from cache, with zero points solved twice.
//
// Gated behind PARTITAD_BATCH_CHAOS=1 because it builds, launches, and
// kills daemons; run with `make chaos-batch` or:
//
//	PARTITAD_BATCH_CHAOS=1 go test -race -run TestBatchFanoutChaos ./client
//
// PARTITAD_CHAOS_SEED varies the fault seed (CI runs a small matrix);
// PARTITAD_CHAOS_DIR pins journals and per-node logs for artifact
// upload on failure.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// pointOwner asks a node's ring who owns one point key.
func pointOwner(t *testing.T, base, key string) string {
	t.Helper()
	resp, err := http.Get(base + "/v1/cluster/owner/" + url.PathEscape(key))
	if err != nil {
		t.Fatalf("owner of %s: %v", key, err)
	}
	defer resp.Body.Close()
	var v struct {
		Owner string `json:"owner"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v.Owner
}

// scrapeOptionalMetric is scrapeMetric for counters that may not have
// been rendered yet (e.g. a labeled series with no observations).
func scrapeOptionalMetric(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("scrape %s: %v", base, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err == nil {
				return v
			}
		}
	}
	return 0
}

func terminalDisposition(d string) bool {
	switch d {
	case "cached", "coalesced", "reused", "solved", "remote", "duplicate", "failed":
		return true
	}
	return false
}

func TestBatchFanoutChaos(t *testing.T) {
	if os.Getenv("PARTITAD_BATCH_CHAOS") == "" {
		t.Skip("set PARTITAD_BATCH_CHAOS=1 to run the batch fan-out chaos test")
	}
	seed := os.Getenv("PARTITAD_CHAOS_SEED")
	if seed == "" {
		seed = "1"
	}
	dir := os.Getenv("PARTITAD_CHAOS_DIR")
	if dir == "" {
		dir = t.TempDir()
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	t.Logf("batch fan-out chaos seed=%s artifacts=%s", seed, dir)

	bin := filepath.Join(t.TempDir(), "partitad")
	build := exec.Command("go", "build", "-o", bin, "partita/cmd/partitad")
	build.Dir = repoRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build partitad: %v\n%s", err, out)
	}

	const nodesN = 3
	addrs := reservePorts(t, nodesN)
	bases := make([]string, nodesN)
	names := make([]string, nodesN)
	for i, a := range addrs {
		bases[i] = "http://" + a
		names[i] = nodeNameOf(bases[i])
	}
	peerList := strings.Join(bases, ",")

	// Solves stall 100ms so the SIGKILL lands mid-batch; remote point
	// dispatches additionally fail ~40% of the time so the retry,
	// backoff, and requeue paths run even before the kill.
	faultSpec := fmt.Sprintf("seed=%s,solver.stall=1,solver.stall.delay=100ms,"+
		"remote.point.5xx=0.25,remote.point.timeout=0.15,remote.point.timeout.delay=200ms", seed)
	nodeArgs := func(i int) []string {
		return []string{
			"-addr", addrs[i],
			"-workers", "2",
			"-journal", filepath.Join(dir, fmt.Sprintf("node%d-seed%s.wal", i, seed)),
			"-peers", peerList,
			"-self", bases[i],
			"-probe-interval", "50ms",
			"-probe-timeout", "300ms",
			"-peer-fail-after", "2",
			"-batch-fanout",
			"-batch-lease", "5s",
			"-point-timeout", "2s",
			"-point-retries", "2",
			"-point-backoff", "50ms",
			"-point-backoff-cap", "400ms",
			"-breaker-fails", "3",
			"-breaker-cooldown", "1s",
			"-faults", faultSpec,
		}
	}
	daemons := make([]*daemon, nodesN)
	alive := map[int]bool{}
	for i := range daemons {
		daemons[i] = startClusterDaemon(t, bin,
			filepath.Join(dir, fmt.Sprintf("node%d-seed%s.log", i, seed)), nodeArgs(i)...)
		if daemons[i].base != bases[i] {
			t.Fatalf("node %d listening on %s, reserved %s", i, daemons[i].base, bases[i])
		}
	}
	for i := range daemons {
		waitReady(t, bases[i])
		alive[i] = true
	}
	defer func() {
		for i, d := range daemons {
			if alive[i] {
				d.terminate(t)
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	c := New(bases[0], WithJitterSeed(1))

	// One 24-point sweep batch, submitted to node 0: the coordinator
	// fans the points out across the ring by key ownership.
	const pointsN = 24
	gains := make([]int64, pointsN)
	for i := range gains {
		gains[i] = int64(100 + 17*i)
	}
	spec := batchSpec(gains...)
	v, err := c.SubmitBatch(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	bv, err := c.Batch(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(bv.Points) != pointsN {
		t.Fatalf("batch carries %d points, want %d", len(bv.Points), pointsN)
	}

	// The kill target is the remote peer owning the largest point group.
	owned := map[string]int{}
	for _, p := range bv.Points {
		owned[pointOwner(t, bases[0], p.Key)]++
	}
	victim := 1
	for i := 2; i < nodesN; i++ {
		if owned[names[i]] > owned[names[victim]] {
			victim = i
		}
	}
	t.Logf("point ownership %v; killing node %d (%s) owning %d points",
		owned, victim, names[victim], owned[names[victim]])
	if owned[names[victim]] == 0 {
		t.Fatal("no points hashed to a remote peer; fan-out premise broken")
	}

	// Let a few points finish, then SIGKILL the biggest owner mid-batch.
	killAt := time.Now().Add(30 * time.Second)
	for {
		bv, err = c.Batch(ctx, v.ID)
		if err != nil {
			t.Fatal(err)
		}
		done := bv.Total - bv.Remaining
		if (done >= 2 && bv.Remaining > bv.Total/2) || time.Now().After(killAt) {
			t.Logf("killing %s with %d/%d points done", names[victim], done, bv.Total)
			break
		}
		if bv.Remaining == 0 {
			t.Fatalf("batch finished before the kill; raise the stall (view %+v)", bv)
		}
		time.Sleep(10 * time.Millisecond)
	}
	daemons[victim].kill(t)
	alive[victim] = false

	// Guarantees 1+2: the batch still reaches its terminal summary, and
	// every point lands on a terminal disposition — none lost to the
	// dead peer, none failed (its points requeued and solved locally).
	streamCtx, streamCancel := context.WithTimeout(ctx, 3*time.Minute)
	if _, err := c.StreamBatch(streamCtx, v.ID, 0, func(BatchEvent) error { return nil }); err != nil {
		t.Fatalf("batch did not finish after the owner kill: %v", err)
	}
	streamCancel()
	bv, err = c.Batch(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if bv.Status != StatusDone || bv.Remaining != 0 || bv.Summary == nil {
		t.Fatalf("batch not terminal after node kill: %+v", bv)
	}
	sum := *bv.Summary
	if sum.Failed != 0 {
		t.Errorf("%d points failed; every point must fall back locally: %+v", sum.Failed, sum)
	}
	if got := sum.Cached + sum.Coalesced + sum.Duplicates + sum.Reused + sum.Solved + sum.Remote + sum.Failed; got != pointsN {
		t.Errorf("summary accounts for %d of %d points: %+v", got, pointsN, sum)
	}
	for _, p := range bv.Points {
		if !p.Done || !terminalDisposition(p.Disposition) {
			t.Errorf("point %d not terminal: %+v", p.Index, p)
		}
	}
	// The injected faults plus the kill must have exercised the requeue
	// path at least once.
	requeued := scrapeOptionalMetric(t, bases[0],
		`partitad_batch_remote_points_total{outcome="requeued"}`)
	retries := scrapeOptionalMetric(t, bases[0], "partitad_batch_remote_retries_total")
	t.Logf("coordinator requeued %v points, spent %v dispatch retries", requeued, retries)
	if requeued < 1 {
		t.Error("no point requeued locally despite a dead owner and injected dispatch faults")
	}

	// Guarantee 3: kill the coordinator too, restart it on the same
	// journal, and the finished batch comes back terminal with its
	// results memoized.
	daemons[0].kill(t)
	alive[0] = false
	daemons[0] = startClusterDaemon(t, bin,
		filepath.Join(dir, fmt.Sprintf("node0-seed%s-restarted.log", seed)), nodeArgs(0)...)
	alive[0] = true
	waitReady(t, bases[0])

	rv, err := c.Batch(ctx, v.ID)
	if err != nil {
		t.Fatalf("batch lost across the coordinator restart: %v", err)
	}
	if rv.Status != StatusDone || rv.Remaining != 0 {
		t.Fatalf("restored batch not terminal: %+v", rv)
	}
	if solves := scrapeMetric(t, bases[0], "partitad_solves_started_total"); solves != 0 {
		t.Errorf("journal replay re-solved %v points", solves)
	}

	// No point solved twice: the identical batch resubmitted after the
	// restart answers entirely from the replayed cache.
	v2, err := c.SubmitBatch(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Status != StatusDone {
		wctx, wcancel := context.WithTimeout(ctx, time.Minute)
		_, err = c.StreamBatch(wctx, v2.ID, 0, func(BatchEvent) error { return nil })
		wcancel()
		if err != nil {
			t.Fatalf("resubmitted batch: %v", err)
		}
	}
	bv2, err := c.Batch(ctx, v2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if bv2.Summary == nil || bv2.Summary.Cached != pointsN {
		t.Errorf("resubmitted batch not fully cached: %+v", bv2.Summary)
	}
	if solves := scrapeMetric(t, bases[0], "partitad_solves_started_total"); solves != 0 {
		t.Errorf("resubmitted batch solved %v points twice", solves)
	}

	if t.Failed() {
		t.Logf("node logs and journals preserved for inspection: %s", dir)
	}
}
