package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"partita"
	"partita/internal/service"
)

// testSource mirrors the service tests' two-kernel program: it solves
// in well under a millisecond.
const testSource = `
xmem int signal[32] = {5, -3, 12, 7, -9, 4, 0, 8, 5, -3, 12, 7, -9, 4, 0, 8,
                       5, -3, 12, 7, -9, 4, 0, 8, 5, -3, 12, 7, -9, 4, 0, 8};
ymem int taps[4] = {8192, 16384, 8192, 4096};
xmem int filtered[32];
xmem int quantized[32];
int status;

int fir(xmem int in[], ymem int c[], xmem int out[], int n, int k) {
	int i; int j; int acc;
	for (i = 0; i + k <= n; i = i + 1) {
		acc = 0;
		for (j = 0; j < k; j = j + 1) { acc = acc + in[i + j] * c[j]; }
		out[i] = acc >> 15;
	}
	return out[0];
}

int quant(xmem int in[], xmem int out[], int n) {
	int i;
	for (i = 0; i < n; i = i + 1) { out[i] = in[i] / 4; }
	return out[0];
}

int process() {
	int a; int b;
	a = fir(signal, taps, filtered, 32, 4);
	b = quant(filtered, quantized, 32);
	status = a + b;
	return status;
}

int main() {
	return process();
}
`

func testCatalog() []*partita.IP {
	return []*partita.IP{
		{ID: "FIR8", Name: "FIR engine", Funcs: []string{"fir"},
			InPorts: 2, OutPorts: 2, InRate: 4, OutRate: 4,
			Latency: 8, Pipelined: true, Area: 5},
		{ID: "QNT", Name: "quantizer", Funcs: []string{"quant"},
			InPorts: 1, OutPorts: 1, InRate: 2, OutRate: 2,
			Latency: 4, Pipelined: true, Area: 2},
	}
}

func selectSpec(rg int64) JobSpec {
	return JobSpec{
		Kind:         KindSelect,
		Source:       testSource,
		Root:         "process",
		Catalog:      testCatalog(),
		RequiredGain: rg,
	}
}

// newDaemon stands up a real in-process service behind httptest.
func newDaemon(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server) {
	t.Helper()
	s := service.New(cfg)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

func TestRunEndToEnd(t *testing.T) {
	_, ts := newDaemon(t, service.Config{Workers: 2})
	c := New(ts.URL, WithJitterSeed(1))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	v, err := c.Run(ctx, selectSpec(1000))
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusDone || !v.Result.Selection.Solved() {
		t.Fatalf("run: %+v", v)
	}

	// Identical resubmission: answered terminal straight from the cache.
	v2, err := c.Run(ctx, selectSpec(1000))
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Cached {
		t.Errorf("resubmission not cached: %+v", v2)
	}

	jobs, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Errorf("listed %d jobs, want 2", len(jobs))
	}
	if err := c.Ready(ctx); err != nil {
		t.Errorf("ready: %v", err)
	}
}

func TestSubmitRetriesOn429HonoringRetryAfter(t *testing.T) {
	_, ts := newDaemon(t, service.Config{Workers: 2})
	var rejects int32
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && atomic.AddInt32(&rejects, 1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "service: job queue full"})
			return
		}
		resp, err := http.Get(ts.URL + r.URL.String())
		if r.Method == http.MethodPost {
			resp, err = http.Post(ts.URL+r.URL.String(), "application/json", r.Body)
		}
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		var v json.RawMessage
		_ = json.NewDecoder(resp.Body).Decode(&v)
		_, _ = w.Write(v)
	}))
	defer front.Close()

	c := New(front.URL, WithJitterSeed(7), WithBackoff(time.Millisecond, 10*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	v, err := c.Run(ctx, selectSpec(1500))
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusDone {
		t.Fatalf("run through 429s: %+v", v)
	}
	if got := atomic.LoadInt32(&rejects); got < 3 {
		t.Errorf("front saw %d submits, want >= 3 (2 rejected + 1 accepted)", got)
	}
}

func TestRetriesExhaustedSurfacesLastError(t *testing.T) {
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]string{"error": "service: draining, not accepting jobs"})
	}))
	defer down.Close()
	c := New(down.URL, WithJitterSeed(3), WithMaxRetries(2), WithBackoff(time.Millisecond, 2*time.Millisecond))
	_, err := c.Submit(context.Background(), selectSpec(100))
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("wrapped error = %v", err)
	}
}

func TestBadSpecDoesNotRetry(t *testing.T) {
	var posts int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&posts, 1)
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(map[string]string{"error": "service: missing job kind"})
	}))
	defer srv.Close()
	c := New(srv.URL, WithJitterSeed(5))
	_, err := c.Submit(context.Background(), JobSpec{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("err = %v", err)
	}
	if atomic.LoadInt32(&posts) != 1 {
		t.Errorf("400 was retried %d times", posts)
	}
}

func TestNetworkErrorsRetryThenSucceed(t *testing.T) {
	_, ts := newDaemon(t, service.Config{Workers: 1})
	var calls int32
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) <= 2 {
			// Slam the connection shut: a transport-level error.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("no hijacker")
			}
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		resp, err := http.Post(ts.URL+r.URL.String(), "application/json", r.Body)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		var v json.RawMessage
		_ = json.NewDecoder(resp.Body).Decode(&v)
		_, _ = w.Write(v)
	}))
	defer front.Close()

	c := New(front.URL, WithJitterSeed(11), WithBackoff(time.Millisecond, 5*time.Millisecond))
	v, err := c.Submit(context.Background(), selectSpec(700))
	if err != nil {
		t.Fatal(err)
	}
	if v.ID == "" {
		t.Fatalf("submit view: %+v", v)
	}
}

func TestWaitLongPollsToCompletion(t *testing.T) {
	_, ts := newDaemon(t, service.Config{Workers: 1})
	c := New(ts.URL, WithJitterSeed(13))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	v, err := c.Submit(ctx, selectSpec(1200))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	final, err := c.Wait(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone {
		t.Fatalf("wait: %+v", final)
	}
	// The long-poll must return on completion, not burn the full wait.
	if elapsed := time.Since(start); elapsed > 9*time.Second {
		t.Errorf("wait took %v; long-poll did not wake on completion", elapsed)
	}
}

func TestWaitHonorsContext(t *testing.T) {
	// A job that can never finish (no workers started).
	s := service.New(service.Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	job, err := s.Submit(selectSpec(100))
	if err != nil {
		t.Fatal(err)
	}
	c := New(ts.URL, WithJitterSeed(17))
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if _, err := c.Wait(ctx, job.ID); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestJitterDeterministicWithSeed(t *testing.T) {
	a := New("http://x", WithJitterSeed(42))
	b := New("http://x", WithJitterSeed(42))
	for i := 0; i < 8; i++ {
		if av, bv := a.backoffFor(i%4), b.backoffFor(i%4); av != bv {
			t.Fatalf("attempt %d: %v != %v", i, av, bv)
		}
	}
	lo, hi := a.backoff/2, a.backoff
	if d := a.backoffFor(0); d < lo || d > hi {
		t.Errorf("attempt-0 backoff %v outside [%v, %v]", d, lo, hi)
	}
	if d := a.backoffFor(30); d > a.backoffCap {
		t.Errorf("backoff %v exceeds cap %v", d, a.backoffCap)
	}
}

func TestParseRetryAfter(t *testing.T) {
	for h, want := range map[string]time.Duration{"": 0, "0": 0, "2": 2 * time.Second, "junk": 0, "-3": 0} {
		if got := parseRetryAfter(h); got != want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", h, got, want)
		}
	}
}
