// Package client is the typed Go client for the partitad HTTP/JSON
// API. It wraps submit/poll/wait with per-request timeouts, exponential
// backoff with deterministic jitter, and Retry-After honoring, so
// callers survive daemon restarts, admission-control pushback (429),
// and drains (503) without hand-rolled retry loops.
//
// Retrying a submit is always safe: partitad content-addresses every
// job (partita.CanonicalHash over the spec), so a resubmission either
// coalesces onto the identical in-flight job or is answered from the
// result cache — at-least-once delivery with exactly-once effect.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"partita/internal/service"
)

// Re-exported wire types, so callers need only this package.
type (
	// JobSpec is one job submission (see service.JobSpec).
	JobSpec = service.JobSpec
	// JobView is the daemon's job snapshot (see service.JobView).
	JobView = service.JobView
	// EditRequest is the body of an interactive edit (see
	// service.EditRequest): the deltas to apply on top of a finished
	// select job, plus optional gap/budget overrides.
	EditRequest = service.EditRequest
	// EditDelta is one batch of IP-area / IMP-gain / required-gain
	// edits (see service.EditDelta).
	EditDelta = service.EditDelta
	// PortfolioInfo is the per-engine attribution of a portfolio-mode
	// result (see service.PortfolioInfo).
	PortfolioInfo = service.PortfolioInfo
)

// Job kind and status names, re-exported for convenience.
const (
	KindAnalyze = service.KindAnalyze
	KindSelect  = service.KindSelect
	KindSweep   = service.KindSweep

	StatusQueued  = service.StatusQueued
	StatusRunning = service.StatusRunning
	StatusDone    = service.StatusDone
	StatusFailed  = service.StatusFailed

	// ModePortfolio asks the daemon to race the capacity-bound witness,
	// greedy, LP-rounding, and the exact solver (plus the seeded
	// previous answer on edits) instead of running the exact solver
	// alone.
	ModePortfolio = service.ModePortfolio
)

// APIError is a non-retryable HTTP error from the daemon (bad spec,
// unknown job, ...).
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("partitad: HTTP %d: %s", e.StatusCode, e.Message)
}

// ErrRetriesExhausted wraps the final failure after every allowed
// attempt was spent on retryable errors.
var ErrRetriesExhausted = errors.New("client: retries exhausted")

// ErrRetryBudgetExhausted wraps the final failure when the elapsed-time
// retry budget (WithRetryBudget) ran out before the attempt count did.
// It always wraps the last HTTP or network error, so callers see *why*
// the budget was spent, not just that it was.
var ErrRetryBudgetExhausted = errors.New("client: retry budget exhausted")

// Client talks to one partitad — or, with NewMulti, to a cluster of
// them with automatic endpoint failover. The zero value is not usable;
// build with New or NewMulti. Safe for concurrent use.
type Client struct {
	bases      []string
	hc         *http.Client
	maxRetries int
	backoff    time.Duration
	backoffCap time.Duration
	budget     time.Duration
	userAgent  string

	mu  sync.Mutex
	cur int // index into bases of the currently preferred endpoint
	rng *rand.Rand
	// sc is the timeout-less client SSE streams use (see streamClient).
	sc *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (default: 35s
// timeout, which must exceed the server's 30s long-poll cap).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithMaxRetries bounds retry attempts after the first try (default 4).
func WithMaxRetries(n int) Option { return func(c *Client) { c.maxRetries = n } }

// WithBackoff sets the exponential backoff base and cap (defaults
// 100ms, 5s). Each retryable failure waits base·2^attempt, jittered to
// [50%, 100%] of that, never exceeding cap; a server Retry-After
// overrides the computed wait when longer.
func WithBackoff(base, cap time.Duration) Option {
	return func(c *Client) { c.backoff, c.backoffCap = base, cap }
}

// WithJitterSeed makes the backoff jitter deterministic (tests).
func WithJitterSeed(seed int64) Option {
	return func(c *Client) { c.rng = rand.New(rand.NewSource(seed)) }
}

// WithUserAgent sets the User-Agent header.
func WithUserAgent(ua string) Option { return func(c *Client) { c.userAgent = ua } }

// WithRetryBudget caps the total elapsed time one call may spend across
// its retries, including server-directed Retry-After waits — without a
// budget, a daemon answering every attempt with 429+Retry-After could
// stretch "4 retries" arbitrarily long. 0 (the default) disables the
// cap; the attempt count still applies either way.
func WithRetryBudget(d time.Duration) Option { return func(c *Client) { c.budget = d } }

// New builds a Client for the daemon at base (e.g.
// "http://127.0.0.1:8080").
func New(base string, opts ...Option) *Client {
	c, err := NewMulti([]string{base}, opts...)
	if err != nil {
		panic(err) // unreachable: one base is always a valid list
	}
	return c
}

// NewMulti builds a Client over several equivalent daemons (a partitad
// cluster). Requests go to one preferred endpoint; when it fails with a
// network error or a 5xx, the client rotates to the next and the retry
// — safe, because jobs are content-addressed — lands there. 429
// back-pressure does NOT rotate: it is the cluster telling the caller
// to slow down, and another node would answer the same.
func NewMulti(bases []string, opts ...Option) (*Client, error) {
	if len(bases) == 0 {
		return nil, errors.New("client: empty endpoint list")
	}
	c := &Client{
		bases:      make([]string, len(bases)),
		hc:         &http.Client{Timeout: 35 * time.Second},
		maxRetries: 4,
		backoff:    100 * time.Millisecond,
		backoffCap: 5 * time.Second,
		userAgent:  "partita-client/1",
	}
	for i, b := range bases {
		b = strings.TrimRight(strings.TrimSpace(b), "/")
		if b == "" {
			return nil, fmt.Errorf("client: empty endpoint at index %d", i)
		}
		c.bases[i] = b
	}
	for _, o := range opts {
		o(c)
	}
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return c, nil
}

// Endpoints returns the configured endpoint list.
func (c *Client) Endpoints() []string { return append([]string(nil), c.bases...) }

// endpoint returns the currently preferred base and its index.
func (c *Client) endpoint() (string, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bases[c.cur], c.cur
}

// rotate moves preference past the endpoint at idx — unless another
// caller already did, so concurrent failures advance the cursor once.
func (c *Client) rotate(idx int) {
	if len(c.bases) < 2 {
		return
	}
	c.mu.Lock()
	if c.cur == idx {
		c.cur = (c.cur + 1) % len(c.bases)
	}
	c.mu.Unlock()
}

// Submit submits one job, retrying through queue-full (429), drain
// (503), transient 5xx, and network errors. The returned view may
// already be terminal (cache hit).
func (c *Client) Submit(ctx context.Context, spec JobSpec) (*JobView, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("client: marshal spec: %w", err)
	}
	return c.doJSON(ctx, http.MethodPost, "/v1/jobs", body)
}

// Job fetches one job's current snapshot.
func (c *Client) Job(ctx context.Context, id string) (*JobView, error) {
	return c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil)
}

// Wait blocks until the job reaches a terminal state, long-polling the
// daemon (?wait=) and falling back to plain polling across restarts.
// It returns the terminal view, or the context's error.
func (c *Client) Wait(ctx context.Context, id string) (*JobView, error) {
	const pollWait = 10 * time.Second
	for {
		v, err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"?wait="+pollWait.String(), nil)
		if err != nil {
			return nil, err
		}
		if v.Status == StatusDone || v.Status == StatusFailed {
			return v, nil
		}
		// Not done: either the long-poll elapsed or the daemon is
		// draining/restarting. A short jittered pause avoids hammering a
		// daemon that answers immediately (e.g. mid-drain).
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(c.jitter(200 * time.Millisecond)):
		}
	}
}

// Run submits the job and waits for its terminal state: the one-call
// happy path. If a daemon crashes mid-solve, Wait rides through the
// restart — a journaled daemon re-enqueues the job; a journal-less (or
// killed) daemon forgets it, in which case Run resubmits (idempotent by
// content address) and keeps waiting. With a multi-endpoint client the
// resubmission lands on the next live node, which is exactly how a
// caller fails a job over off a dead cluster member; a few such hops
// are allowed before giving up.
func (c *Client) Run(ctx context.Context, spec JobSpec) (*JobView, error) {
	const maxResubmits = 3
	v, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	for resubmit := 0; ; resubmit++ {
		if v.Status == StatusDone || v.Status == StatusFailed {
			return v, nil
		}
		final, err := c.Wait(ctx, v.ID)
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
			return final, err
		}
		// Whoever is answering polls no longer knows the job: the node
		// that held it died or restarted without a journal.
		if resubmit >= maxResubmits {
			return nil, fmt.Errorf("client: job lost %d times (last: %w)", resubmit+1, err)
		}
		v, err = c.Submit(ctx, spec)
		if err != nil {
			return nil, err
		}
	}
}

// Edit posts interactive edits against a finished select job
// (POST /v1/jobs/{id}/edits) and returns the derived portfolio job's
// view — possibly already terminal when the identical edit was solved
// before (the derived spec is content-addressed like any submission,
// so retrying an edit is always safe).
func (c *Client) Edit(ctx context.Context, jobID string, req EditRequest) (*JobView, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: marshal edit request: %w", err)
	}
	return c.doJSON(ctx, http.MethodPost, "/v1/jobs/"+url.PathEscape(jobID)+"/edits", body)
}

// EditAndWait posts the edit and waits for the derived job's terminal
// state.
func (c *Client) EditAndWait(ctx context.Context, jobID string, req EditRequest) (*JobView, error) {
	v, err := c.Edit(ctx, jobID, req)
	if err != nil {
		return nil, err
	}
	if v.Status == StatusDone || v.Status == StatusFailed {
		return v, nil
	}
	return c.Wait(ctx, v.ID)
}

// RunPortfolio is Run with the spec forced into portfolio mode: the
// daemon races its engines and the result carries per-engine
// attribution (Selection.Portfolio).
func (c *Client) RunPortfolio(ctx context.Context, spec JobSpec) (*JobView, error) {
	spec.Mode = ModePortfolio
	return c.Run(ctx, spec)
}

// List fetches every tracked job.
func (c *Client) List(ctx context.Context) ([]JobView, error) {
	var out struct {
		Jobs []JobView `json:"jobs"`
	}
	body, err := c.do(ctx, http.MethodGet, "/v1/jobs", nil)
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("client: decode list: %w", err)
	}
	return out.Jobs, nil
}

// Ready reports whether the daemon is ready for traffic (journal
// replayed, not draining). It does not retry: readiness is a
// point-in-time probe.
func (c *Client) Ready(ctx context.Context) error {
	base, _ := c.endpoint()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/readyz", nil)
	if err != nil {
		return err
	}
	req.Header.Set("User-Agent", c.userAgent)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: not ready (HTTP %d)", resp.StatusCode)
	}
	return nil
}

// doJSON runs do and decodes a JobView.
func (c *Client) doJSON(ctx context.Context, method, path string, body []byte) (*JobView, error) {
	raw, err := c.do(ctx, method, path, body)
	if err != nil {
		return nil, err
	}
	var v JobView
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, fmt.Errorf("client: decode response: %w", err)
	}
	return &v, nil
}

// do performs one request with the retry policy — bounded attempts
// inside a bounded elapsed-time budget, with endpoint failover — and
// returns the response body.
func (c *Client) do(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	start := time.Now()
	var lastErr error
	for attempt := 0; ; attempt++ {
		base, idx := c.endpoint()
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
		if err != nil {
			return nil, err
		}
		req.Header.Set("User-Agent", c.userAgent)
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		var retryAfter time.Duration
		nodeDown := false
		if err == nil {
			raw, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch {
			case rerr != nil:
				err = rerr
				nodeDown = true
			case resp.StatusCode < 300:
				return raw, nil
			case retryableStatus(resp.StatusCode):
				retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
				err = &APIError{StatusCode: resp.StatusCode, Message: errMessage(raw)}
				// 5xx means this node is sick; 429 means the whole
				// cluster is asking for restraint.
				nodeDown = resp.StatusCode >= 500
			default:
				return nil, &APIError{StatusCode: resp.StatusCode, Message: errMessage(raw)}
			}
		} else {
			nodeDown = true
		}
		lastErr = err
		if nodeDown {
			c.rotate(idx)
		}
		if attempt >= c.maxRetries {
			return nil, fmt.Errorf("%w after %d attempts: %s %s: %w",
				ErrRetriesExhausted, attempt+1, method, path, lastErr)
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		wait := c.backoffFor(attempt)
		if retryAfter > wait {
			wait = retryAfter
		}
		if c.budget > 0 && time.Since(start)+wait > c.budget {
			return nil, fmt.Errorf("%w (%s) after %d attempts: %s %s: %w",
				ErrRetryBudgetExhausted, c.budget, attempt+1, method, path, lastErr)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(wait):
		}
	}
}

// retryableStatus lists the responses worth retrying: back-pressure,
// drain, and transient upstream failures.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusBadGateway, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// backoffFor computes the jittered exponential wait for an attempt.
// Negative attempts clamp to 0: a caller whose failure budget just
// reset (stream progress, endpoint rotation) waits the base backoff,
// not the cap that `backoff << -1` would otherwise overflow into.
func (c *Client) backoffFor(attempt int) time.Duration {
	if attempt < 0 {
		attempt = 0
	}
	d := c.backoff << uint(attempt)
	if d > c.backoffCap || d <= 0 {
		d = c.backoffCap
	}
	return c.jitter(d)
}

// jitter maps d to a uniformly random duration in [d/2, d].
func (c *Client) jitter(d time.Duration) time.Duration {
	c.mu.Lock()
	f := 0.5 + 0.5*c.rng.Float64()
	c.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// parseRetryAfter handles the delta-seconds form of Retry-After (the
// only form partitad emits).
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	return 0
}

// errMessage extracts the {"error": "..."} payload, falling back to the
// raw body.
func errMessage(raw []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(raw))
}
