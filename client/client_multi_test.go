package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"partita/internal/service"
)

func TestNewMultiValidation(t *testing.T) {
	if _, err := NewMulti(nil); err == nil {
		t.Fatal("empty endpoint list accepted")
	}
	if _, err := NewMulti([]string{"http://a:1", "  "}); err == nil {
		t.Fatal("blank endpoint accepted")
	}
	c, err := NewMulti([]string{"http://a:1/", "http://b:2"})
	if err != nil {
		t.Fatal(err)
	}
	got := c.Endpoints()
	if len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:2" {
		t.Fatalf("endpoints = %v", got)
	}
}

// A daemon that answers every attempt with 429+Retry-After could
// stretch a bounded attempt count over unbounded wall time; the retry
// budget cuts that off and surfaces the last HTTP error.
func TestRetryBudgetCapsRetryAfterLoop(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		_ = json.NewEncoder(w).Encode(map[string]string{"error": "service: queue full"})
	}))
	defer srv.Close()
	c := New(srv.URL,
		WithJitterSeed(11),
		WithMaxRetries(100),
		WithBackoff(time.Millisecond, 2*time.Millisecond),
		WithRetryBudget(250*time.Millisecond))
	start := time.Now()
	_, err := c.Submit(context.Background(), selectSpec(100))
	if !errors.Is(err, ErrRetryBudgetExhausted) {
		t.Fatalf("err = %v, want ErrRetryBudgetExhausted", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("budget error does not surface the last HTTP error: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("budget of 250ms let the call run %s", elapsed)
	}
}

func TestMultiEndpointFailsOverOn5xx(t *testing.T) {
	var sickCalls int32
	sick := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&sickCalls, 1)
		http.Error(w, `{"error":"boom"}`, http.StatusBadGateway)
	}))
	defer sick.Close()
	_, healthy := newDaemon(t, service.Config{Workers: 1})

	c, err := NewMulti([]string{sick.URL, healthy.URL},
		WithJitterSeed(7), WithBackoff(time.Millisecond, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Run(context.Background(), selectSpec(100))
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusDone {
		t.Fatalf("status = %s", v.Status)
	}
	if n := atomic.LoadInt32(&sickCalls); n != 1 {
		t.Fatalf("sick endpoint called %d times, want 1 (then rotate away)", n)
	}
	// Preference sticks: the next call goes straight to the healthy node.
	if _, err := c.List(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := atomic.LoadInt32(&sickCalls); n != 1 {
		t.Fatalf("client returned to the sick endpoint (%d calls)", n)
	}
}

func TestMultiEndpointFailsOverOnNetworkError(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()
	_, healthy := newDaemon(t, service.Config{Workers: 1})

	c, err := NewMulti([]string{deadURL, healthy.URL},
		WithJitterSeed(9), WithBackoff(time.Millisecond, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Run(context.Background(), selectSpec(101))
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusDone {
		t.Fatalf("status = %s", v.Status)
	}
}

// 429 is cluster-wide back-pressure, not node sickness: the client must
// keep honoring it on the same endpoint instead of shopping the request
// around the cluster.
func TestMulti429DoesNotRotate(t *testing.T) {
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
		_ = json.NewEncoder(w).Encode(map[string]string{"error": "service: queue full"})
	}))
	defer busy.Close()
	var otherCalls int32
	other := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&otherCalls, 1)
	}))
	defer other.Close()

	c, err := NewMulti([]string{busy.URL, other.URL},
		WithJitterSeed(13), WithMaxRetries(2), WithBackoff(time.Millisecond, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Submit(context.Background(), selectSpec(102))
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	if n := atomic.LoadInt32(&otherCalls); n != 0 {
		t.Fatalf("429 rotated to another endpoint (%d calls)", n)
	}
}

// Run rides through repeated job loss by resubmitting (content
// addressing makes that idempotent) — but gives up after a few hops
// rather than looping forever against a cluster that keeps losing work.
func TestRunResubmitsThroughJobLossThenGivesUp(t *testing.T) {
	var submits int32
	amnesiac := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			atomic.AddInt32(&submits, 1)
			w.WriteHeader(http.StatusAccepted)
			_ = json.NewEncoder(w).Encode(JobView{ID: "j000001", Status: StatusQueued})
			return
		}
		w.WriteHeader(http.StatusNotFound)
		_ = json.NewEncoder(w).Encode(map[string]string{"error": "service: unknown job"})
	}))
	defer amnesiac.Close()

	c := New(amnesiac.URL, WithJitterSeed(17), WithBackoff(time.Millisecond, 2*time.Millisecond))
	_, err := c.Run(context.Background(), selectSpec(103))
	if err == nil {
		t.Fatal("Run succeeded against a daemon that loses every job")
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("err = %v, want wrapped 404", err)
	}
	// 1 initial + 3 resubmits.
	if n := atomic.LoadInt32(&submits); n != 4 {
		t.Fatalf("submits = %d, want 4", n)
	}
}

func TestRunRecoversWhenResubmitCompletes(t *testing.T) {
	var submits int32
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			n := atomic.AddInt32(&submits, 1)
			if n == 1 {
				w.WriteHeader(http.StatusAccepted)
				_ = json.NewEncoder(w).Encode(JobView{ID: "j000001", Status: StatusQueued})
				return
			}
			// The resubmission is answered from the (peer) cache.
			w.WriteHeader(http.StatusOK)
			_ = json.NewEncoder(w).Encode(JobView{ID: "j000002", Status: StatusDone, Cached: true})
			return
		}
		w.WriteHeader(http.StatusNotFound)
		_ = json.NewEncoder(w).Encode(map[string]string{"error": "service: unknown job"})
	}))
	defer flaky.Close()

	c := New(flaky.URL, WithJitterSeed(19), WithBackoff(time.Millisecond, 2*time.Millisecond))
	v, err := c.Run(context.Background(), selectSpec(104))
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusDone || !v.Cached {
		t.Fatalf("view = %+v, want cached done", v)
	}
	if n := atomic.LoadInt32(&submits); n != 2 {
		t.Fatalf("submits = %d, want 2", n)
	}
}
