package client

// End-to-end batch-stream test against the real partitad binary: build
// the daemon, start it, submit a GSM sweep batch, follow the SSE event
// stream with the client, and verify the cache-warm resubmit starts
// zero new solves. Gated behind PARTITAD_BATCH_E2E=1 because it builds
// and launches the daemon:
//
//	PARTITAD_BATCH_E2E=1 go test -run TestPartitadBatchStreamE2E -v ./client

import (
	"context"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
	"time"

	"partita/internal/service"
)

var solvesStartedRe = regexp.MustCompile(`(?m)^partitad_solves_started_total (\d+)$`)

func scrapeSolvesStarted(t *testing.T, base string) int {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	m := solvesStartedRe.FindSubmatch(raw)
	if m == nil {
		t.Fatalf("partitad_solves_started_total missing from /metrics")
	}
	n, err := strconv.Atoi(string(m[1]))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestPartitadBatchStreamE2E(t *testing.T) {
	if os.Getenv("PARTITAD_BATCH_E2E") == "" {
		t.Skip("set PARTITAD_BATCH_E2E=1 to run the batch-stream end-to-end test")
	}

	bin := filepath.Join(t.TempDir(), "partitad")
	build := exec.Command("go", "build", "-o", bin, "partita/cmd/partitad")
	build.Dir = repoRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build partitad: %v\n%s", err, out)
	}
	d := startDaemon(t, bin)
	defer d.terminate(t)

	c := New(d.base, WithJitterSeed(1))
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// A 16-point GSM sweep as one batch, streamed to completion.
	spec := BatchSpec{Defaults: JobSpec{Workload: "gsm"}}
	for i := 1; i <= 16; i++ {
		spec.Points = append(spec.Points, BatchPoint{RequiredGain: int64(i) * 1000})
	}
	var events []BatchEvent
	v, err := c.RunBatch(ctx, spec, func(ev BatchEvent) error {
		events = append(events, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != service.StatusDone || v.Summary == nil {
		t.Fatalf("batch: %+v", v)
	}
	if v.Summary.Total != 16 || v.Summary.Failed != 0 {
		t.Fatalf("summary: %+v", v.Summary)
	}
	checkEventLog(t, events, 16)

	// Per-point results interchange with single jobs: a single submit of
	// one of the batch's points is a cache hit.
	single, err := c.Run(ctx, JobSpec{Kind: service.KindSelect, Workload: "gsm", RequiredGain: 8000})
	if err != nil {
		t.Fatal(err)
	}
	if !single.Cached {
		t.Errorf("single job for a batch point not served from cache: %+v", single)
	}

	// Cache-warm resubmit of the identical batch: terminal at submit,
	// zero new solves.
	before := scrapeSolvesStarted(t, d.base)
	v2, err := c.RunBatch(ctx, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Status != service.StatusDone {
		t.Fatalf("resubmit: %+v", v2)
	}
	if after := scrapeSolvesStarted(t, d.base); after != before {
		t.Errorf("cache-warm resubmit started %d new solves", after-before)
	}
	if v2.Summary.Cached+v2.Summary.Duplicates != 16 {
		t.Errorf("resubmit summary: %+v", v2.Summary)
	}
}
