package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestStreamBatchBackoffAndFinalError(t *testing.T) {
	// A peer that 503s every reconnect: the stream must spend its
	// failure budget with jittered exponential backoff between attempts
	// and then surface the final HTTP error, wrapped so callers can both
	// errors.Is the exhaustion and errors.As the status.
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	const base, cap = 10 * time.Millisecond, 80 * time.Millisecond
	c := New(ts.URL, WithJitterSeed(6), WithMaxRetries(3), WithBackoff(base, cap))
	start := time.Now()
	_, err := c.StreamBatch(context.Background(), "b000123", 0,
		func(BatchEvent) error { return nil })
	elapsed := time.Since(start)

	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("final HTTP error not surfaced: %v", err)
	}
	if got := hits.Load(); got != 4 {
		t.Errorf("attempts = %d, want maxRetries+1 = 4", got)
	}
	// Three no-progress failures sleep backoffFor(0..2); the jitter
	// floor is half of each delay, so 10+20+40ms back off to >= 35ms.
	if elapsed < 35*time.Millisecond {
		t.Errorf("retries not backed off: budget exhausted in %v", elapsed)
	}
}

func TestBackoffForClampsNegativeAttempt(t *testing.T) {
	// The first reconnect after a progress reset passes attempt -1; it
	// must wait the jittered base delay, not `base << 63` wrapped to the
	// cap (and never zero — that would hammer a flapping node).
	c := New("http://127.0.0.1:9", WithJitterSeed(7),
		WithBackoff(10*time.Millisecond, 5*time.Second))
	for i := 0; i < 20; i++ {
		d := c.backoffFor(-1)
		if d < 5*time.Millisecond || d > 10*time.Millisecond {
			t.Fatalf("backoffFor(-1) = %v, want jittered base in [5ms, 10ms]", d)
		}
	}
	if d := c.backoffFor(1); d < 10*time.Millisecond || d > 20*time.Millisecond {
		t.Errorf("backoffFor(1) = %v, want jittered 2*base in [10ms, 20ms]", d)
	}
}
