package client

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"partita/internal/service"
)

// TestRunPortfolioEndToEnd: RunPortfolio forces portfolio mode, the
// result carries per-engine attribution, and with gap 0 the settled
// answer matches the plain exact solve.
func TestRunPortfolioEndToEnd(t *testing.T) {
	_, ts := newDaemon(t, service.Config{Workers: 2})
	c := New(ts.URL, WithJitterSeed(1))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	ref, err := c.Run(ctx, selectSpec(1000))
	if err != nil {
		t.Fatal(err)
	}

	spec := selectSpec(1000)
	zero := 0.0
	spec.Gap = &zero
	v, err := c.RunPortfolio(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusDone || !v.Result.Selection.Solved() {
		t.Fatalf("portfolio run: %+v", v)
	}
	info := v.Result.Selection.Portfolio
	if info == nil {
		t.Fatal("portfolio result missing attribution")
	}
	if info.Engine != "exact" || info.Gap != 0 || !info.Confirmed {
		t.Errorf("attribution = %+v, want proven exact", info)
	}
	if v.Result.Selection.Area != ref.Result.Selection.Area {
		t.Errorf("portfolio area %g, exact %g", v.Result.Selection.Area, ref.Result.Selection.Area)
	}
}

// TestEditWorkflow: solve, edit, chain another edit — each derived job
// is a warm-started portfolio solve whose spec carries the full
// history, and editing an unknown job is a clean 404.
func TestEditWorkflow(t *testing.T) {
	srv, ts := newDaemon(t, service.Config{Workers: 2})
	c := New(ts.URL, WithJitterSeed(2))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	base, err := c.Run(ctx, selectSpec(1000))
	if err != nil {
		t.Fatal(err)
	}

	v, err := c.EditAndWait(ctx, base.ID, EditRequest{
		Edits: []EditDelta{{IPArea: map[string]float64{"FIR8": 50}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusDone {
		t.Fatalf("edit job: %+v", v)
	}
	sel := v.Result.Selection
	if sel == nil || sel.Portfolio == nil {
		t.Fatalf("edit result missing attribution: %+v", v)
	}
	if !sel.Portfolio.Seeded {
		t.Error("edit job was not warm-started from the parent's cached result")
	}
	job, ok := srv.Job(v.ID)
	if !ok || job.Spec.Mode != ModePortfolio || job.Spec.ParentKey == "" {
		t.Fatalf("derived spec wrong: %+v", job.Spec)
	}

	// Chain a second edit off the derived job.
	rq := int64(500)
	v2, err := c.EditAndWait(ctx, v.ID, EditRequest{Edits: []EditDelta{{Required: &rq}}})
	if err != nil {
		t.Fatal(err)
	}
	if v2.Status != StatusDone {
		t.Fatalf("chained edit: %+v", v2)
	}
	if j2, _ := srv.Job(v2.ID); len(j2.Spec.Edits) != 2 {
		t.Errorf("chained spec carries %d edits, want 2", len(j2.Spec.Edits))
	}

	var apiErr *APIError
	if _, err := c.Edit(ctx, "nope", EditRequest{Edits: []EditDelta{{}}}); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Errorf("editing an unknown job: %v, want 404", err)
	}
}
