package client

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"partita/internal/service"
)

func batchSpec(gains ...int64) BatchSpec {
	spec := BatchSpec{
		Defaults: JobSpec{
			Kind:    service.KindSelect,
			Source:  testSource,
			Root:    "process",
			Catalog: testCatalog(),
		},
	}
	for _, g := range gains {
		spec.Points = append(spec.Points, BatchPoint{RequiredGain: g})
	}
	return spec
}

// checkEventLog asserts exactly-once in-order delivery: IDs strictly
// increasing, every point completed once, the summary last.
func checkEventLog(t *testing.T, events []BatchEvent, points int) {
	t.Helper()
	last := uint64(0)
	done := map[int]bool{}
	for i, ev := range events {
		if ev.ID <= last {
			t.Fatalf("event %d: id %d not increasing past %d", i, ev.ID, last)
		}
		last = ev.ID
		switch ev.Type {
		case EventPoint:
			if done[ev.Point] {
				t.Fatalf("point %d delivered twice", ev.Point)
			}
			done[ev.Point] = true
		case EventSummary:
			if i != len(events)-1 {
				t.Fatalf("summary at event %d of %d, want last", i, len(events))
			}
		}
	}
	if len(done) != points {
		t.Fatalf("delivered %d point completions, want %d", len(done), points)
	}
	if len(events) == 0 || events[len(events)-1].Type != EventSummary {
		t.Fatal("stream did not end with the summary")
	}
}

func TestRunBatchEndToEnd(t *testing.T) {
	_, ts := newDaemon(t, service.Config{Workers: 1})
	c := New(ts.URL, WithJitterSeed(1))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var events []BatchEvent
	v, err := c.RunBatch(ctx, batchSpec(400, 800, 1200, 1600), func(ev BatchEvent) error {
		events = append(events, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != service.StatusDone {
		t.Fatalf("batch: %+v", v)
	}
	if v.Summary == nil || v.Summary.Total != 4 || v.Summary.Failed != 0 {
		t.Fatalf("summary: %+v", v.Summary)
	}
	if len(v.Points) != 4 {
		t.Fatalf("final view has %d points", len(v.Points))
	}
	for _, p := range v.Points {
		if !p.Done || p.Error != "" {
			t.Fatalf("point %d unsolved: %+v", p.Index, p)
		}
	}
	checkEventLog(t, events, 4)

	// Warm resubmission: terminal at submit, every point cached or a
	// within-batch duplicate — zero new work.
	v2, err := c.RunBatch(ctx, batchSpec(400, 800, 1200, 1600), nil)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Summary == nil || v2.Summary.Cached+v2.Summary.Duplicates != 4 {
		t.Fatalf("warm resubmit summary: %+v", v2.Summary)
	}
}

// abortingProxy forwards to backend, but kills the first SSE events
// connection after two frames — mid-stream, like a dropped LB
// connection — so the client must reconnect and resume.
func abortingProxy(t *testing.T, backend string) *httptest.Server {
	t.Helper()
	var aborted atomic.Bool
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		req, err := http.NewRequestWithContext(r.Context(), r.Method, backend+r.URL.String(), r.Body)
		if err != nil {
			t.Error(err)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := (&http.Client{}).Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		sse := strings.Contains(resp.Header.Get("Content-Type"), "text/event-stream")
		for k, vs := range resp.Header {
			w.Header()[k] = vs
		}
		w.WriteHeader(resp.StatusCode)
		if !sse {
			io.Copy(w, resp.Body)
			return
		}
		fl, _ := w.(http.Flusher)
		sc := bufio.NewScanner(resp.Body)
		frames := 0
		for sc.Scan() {
			line := sc.Text()
			io.WriteString(w, line+"\n")
			if line == "" {
				frames++
				if fl != nil {
					fl.Flush()
				}
				if frames == 2 && aborted.CompareAndSwap(false, true) {
					panic(http.ErrAbortHandler)
				}
			}
		}
		if fl != nil {
			fl.Flush()
		}
	}))
}

func TestStreamBatchResumesAfterMidStreamDisconnect(t *testing.T) {
	_, ts := newDaemon(t, service.Config{Workers: 1})
	front := abortingProxy(t, ts.URL)
	defer front.Close()

	c := New(front.URL, WithJitterSeed(2))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	v, err := c.SubmitBatch(ctx, batchSpec(250, 500, 750, 1000))
	if err != nil {
		t.Fatal(err)
	}
	var events []BatchEvent
	last, err := c.StreamBatch(ctx, v.ID, 0, func(ev BatchEvent) error {
		events = append(events, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The abort cut the stream after two frames; a single connection
	// cannot have delivered everything.
	if len(events) <= 2 {
		t.Fatalf("only %d events delivered — did the abort fire?", len(events))
	}
	if last != events[len(events)-1].ID {
		t.Fatalf("returned cursor %d != last delivered id %d", last, events[len(events)-1].ID)
	}
	checkEventLog(t, events, 4)
}

func TestStreamBatchFallsBackToLongPoll(t *testing.T) {
	_, ts := newDaemon(t, service.Config{Workers: 1})
	// Front that refuses to stream: SSE requests get 501, everything
	// else passes through — the client must finish over long-poll.
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
			http.Error(w, `{"error":"streaming unsupported"}`, http.StatusNotImplemented)
			return
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, ts.URL+r.URL.String(), r.Body)
		if err != nil {
			t.Error(err)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := (&http.Client{}).Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			w.Header()[k] = vs
		}
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	defer front.Close()

	c := New(front.URL, WithJitterSeed(3))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var events []BatchEvent
	v, err := c.RunBatch(ctx, batchSpec(300, 600, 900), func(ev BatchEvent) error {
		events = append(events, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != service.StatusDone {
		t.Fatalf("batch: %+v", v)
	}
	checkEventLog(t, events, 3)
}

func TestStreamBatchCallbackErrorStopsStream(t *testing.T) {
	_, ts := newDaemon(t, service.Config{Workers: 1})
	c := New(ts.URL, WithJitterSeed(4))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	v, err := c.SubmitBatch(ctx, batchSpec(450, 900))
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	seen := 0
	_, err = c.StreamBatch(ctx, v.ID, 0, func(BatchEvent) error {
		seen++
		if seen == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, ErrStreamStopped) || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want ErrStreamStopped wrapping boom", err)
	}
	if seen != 2 {
		t.Fatalf("callback ran %d times after stopping, want 2", seen)
	}
}

func TestStreamBatchUnknownBatchIsNotRetried(t *testing.T) {
	_, ts := newDaemon(t, service.Config{Workers: 1})
	c := New(ts.URL, WithJitterSeed(5))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	_, err := c.StreamBatch(ctx, "b999999", 0, func(BatchEvent) error { return nil })
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("err = %v, want APIError 404", err)
	}
}
