package client

// Node-kill cluster chaos test: three real partitad processes form a
// consistent-hash ring, a sweep of jobs is spread across them, and the
// node owning the largest share is SIGKILLed mid-sweep. The cluster
// must then prove the ISSUE's three failover guarantees:
//
//  1. zero accepted jobs lost — every submitted spec reaches a
//     terminal state, riding the multi-endpoint client's failover
//     resubmission (safe: jobs are content-addressed);
//  2. every job completes on the survivors, i.e. the dead owner's key
//     range drains to its ring successor;
//  3. a result cached on one node is served from another without
//     re-solving, asserted via each node's solve counter.
//
// Gated behind PARTITAD_CLUSTER_CHAOS=1 because it builds, launches,
// and kills daemons; run with `make chaos-cluster` or:
//
//	PARTITAD_CLUSTER_CHAOS=1 go test -race -run TestClusterKillChaos ./client
//
// PARTITAD_CHAOS_SEED varies the fault seed (CI runs a small matrix);
// PARTITAD_CHAOS_DIR pins journals and per-node logs so CI can upload
// them as artifacts when the test fails.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// startClusterDaemon launches one cluster member on a pre-reserved
// address, teeing its stderr into a per-node log file.
func startClusterDaemon(t *testing.T, bin, logPath string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	logf, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = io.MultiWriter(os.Stderr, logf)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, exited: make(chan error, 1)}
	go func() {
		d.exited <- cmd.Wait()
		logf.Close()
	}()
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		t.Fatalf("reading listen line: %v", err)
	}
	const prefix = "partitad listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected startup line %q", line)
	}
	d.base = "http://" + strings.TrimSpace(strings.TrimPrefix(line, prefix))
	return d
}

// reservePorts grabs n distinct loopback ports and releases them for
// the daemons to claim — the peer list must be known before any node
// starts.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	for _, l := range listeners {
		l.Close()
	}
	return addrs
}

// nodeNameOf mirrors the daemon's node naming: non-alphanumerics
// collapse to single dashes ("127.0.0.1:7001" → "127-0-0-1-7001").
func nodeNameOf(base string) string {
	s := strings.TrimPrefix(base, "http://")
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			if n := b.Len(); n > 0 && b.String()[n-1] != '-' {
				b.WriteByte('-')
			}
		}
	}
	return strings.TrimRight(b.String(), "-")
}

// scrapeMetric reads one un-labeled counter from a node's /metrics.
func scrapeMetric(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("scrape %s: %v", base, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err == nil {
				return v
			}
		}
	}
	t.Fatalf("metric %s missing from %s/metrics", name, base)
	return 0
}

// forwardedSubmit posts a spec directly to one node with the forwarded
// marker set, pinning the job there (this is how peers hand each other
// work, and how the test controls exactly which node runs what).
func forwardedSubmit(t *testing.T, ctx context.Context, base string, spec JobSpec) JobView {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Partitad-Forwarded", "chaos-test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("forwarded submit to %s: HTTP %d: %s", base, resp.StatusCode, raw)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("node %s never became ready", base)
}

func TestClusterKillChaos(t *testing.T) {
	if os.Getenv("PARTITAD_CLUSTER_CHAOS") == "" {
		t.Skip("set PARTITAD_CLUSTER_CHAOS=1 to run the node-kill cluster chaos test")
	}
	seed := os.Getenv("PARTITAD_CHAOS_SEED")
	if seed == "" {
		seed = "1"
	}
	dir := os.Getenv("PARTITAD_CHAOS_DIR")
	if dir == "" {
		dir = t.TempDir()
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	t.Logf("cluster chaos seed=%s artifacts=%s", seed, dir)

	bin := filepath.Join(t.TempDir(), "partitad")
	build := exec.Command("go", "build", "-o", bin, "partita/cmd/partitad")
	build.Dir = repoRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build partitad: %v\n%s", err, out)
	}

	const nodesN = 3
	addrs := reservePorts(t, nodesN)
	bases := make([]string, nodesN)
	for i, a := range addrs {
		bases[i] = "http://" + a
	}
	peerList := strings.Join(bases, ",")

	// Every solve stalls 150ms so the SIGKILL reliably lands mid-sweep.
	stall := fmt.Sprintf("seed=%s,solver.stall=1,solver.stall.delay=150ms", seed)
	daemons := make([]*daemon, nodesN)
	for i := range daemons {
		daemons[i] = startClusterDaemon(t, bin,
			filepath.Join(dir, fmt.Sprintf("node%d-seed%s.log", i, seed)),
			"-addr", addrs[i],
			"-workers", "2",
			"-journal", filepath.Join(dir, fmt.Sprintf("node%d-seed%s.wal", i, seed)),
			"-peers", peerList,
			"-self", bases[i],
			"-probe-interval", "50ms",
			"-probe-timeout", "300ms",
			"-peer-fail-after", "2",
			"-faults", stall,
		)
		if daemons[i].base != bases[i] {
			t.Fatalf("node %d listening on %s, reserved %s", i, daemons[i].base, bases[i])
		}
	}
	alive := map[int]bool{}
	for i := range daemons {
		waitReady(t, bases[i])
		alive[i] = true
	}
	defer func() {
		for i, d := range daemons {
			if alive[i] {
				d.terminate(t)
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	c, err := NewMulti(bases, WithJitterSeed(1))
	if err != nil {
		t.Fatal(err)
	}

	// Spread a sweep of distinct jobs across the ring.
	const jobs = 18
	specs := make([]JobSpec, jobs)
	ids := make([]string, jobs)
	for i := range specs {
		specs[i] = selectSpec(int64(100 + 13*i))
		v, err := c.Submit(ctx, specs[i])
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = v.ID
	}

	// The ID prefix names the accepting node; the biggest owner is the
	// kill target.
	names := make([]string, nodesN)
	owned := make([]int, nodesN)
	for i, b := range bases {
		names[i] = nodeNameOf(b)
	}
	for _, id := range ids {
		for i, name := range names {
			if strings.HasPrefix(id, name+"-j") {
				owned[i]++
			}
		}
	}
	victim := 0
	for i, n := range owned {
		if n > owned[victim] {
			victim = i
		}
	}
	t.Logf("job distribution %v across %v; killing node %d (%s)", owned, names, victim, names[victim])
	if owned[victim] == 0 {
		t.Fatal("no node accepted any jobs; distribution broken")
	}

	// Let part of the sweep finish, then SIGKILL the biggest owner.
	killAt := time.Now().Add(30 * time.Second)
	for {
		views, err := c.List(ctx)
		if err != nil {
			t.Fatal(err)
		}
		finished := 0
		for _, v := range views {
			if v.Status == StatusDone || v.Status == StatusFailed {
				finished++
			}
		}
		if finished >= 3 || time.Now().After(killAt) {
			t.Logf("killing %s with %d jobs finished cluster-wide", names[victim], finished)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	daemons[victim].kill(t)
	alive[victim] = false

	// Guarantee 1+2: every accepted spec reaches a terminal state on the
	// survivors. Run rides the client's endpoint failover and, for jobs
	// that died with the victim, resubmits by content address — the ring
	// successor picks them up.
	lost := 0
	for i, spec := range specs {
		v, err := c.Run(ctx, spec)
		if err != nil {
			t.Errorf("job %d (%s) lost after node kill: %v", i, ids[i], err)
			lost++
			continue
		}
		if v.Status != StatusDone || v.Result == nil || !v.Result.Selection.Solved() {
			t.Errorf("job %d did not complete after failover: %+v", i, v)
			continue
		}
		if strings.HasPrefix(v.ID, names[victim]+"-j") {
			t.Errorf("job %d reported done by the dead node %s: %+v", i, names[victim], v)
		}
	}
	if lost > 0 {
		t.Errorf("%d of %d accepted jobs lost (logs and journals in %s)", lost, jobs, dir)
	}

	// The survivors' ring view must have evicted the victim.
	survivors := []int{}
	for i := range daemons {
		if alive[i] {
			survivors = append(survivors, i)
		}
	}
	if len(survivors) != 2 {
		t.Fatalf("expected 2 survivors, have %d", len(survivors))
	}
	for _, i := range survivors {
		if up := scrapeMetric(t, bases[i], "partitad_cluster_peers_alive"); up != 1 {
			t.Errorf("node %s still counts %v live peers, want 1", names[i], up)
		}
	}

	// Guarantee 3: a result cached on one survivor serves from the other
	// without re-solving. A fresh spec is pinned to survivor A (it
	// solves, once); the identical spec pinned to survivor B must come
	// back cached while B's solve counter stays flat.
	a, b := survivors[0], survivors[1]
	fresh := selectSpec(99991)
	va := forwardedSubmit(t, ctx, bases[a], fresh)
	if _, err := c.Wait(ctx, va.ID); err != nil {
		t.Fatalf("fresh job on %s: %v", names[a], err)
	}
	solvesBefore := scrapeMetric(t, bases[b], "partitad_solves_started_total")
	hitsBefore := scrapeMetric(t, bases[b], "partitad_cluster_peer_cache_hits_total")
	vb := forwardedSubmit(t, ctx, bases[b], fresh)
	final, err := c.Wait(ctx, vb.ID)
	if err != nil {
		t.Fatalf("peeked job on %s: %v", names[b], err)
	}
	if final.Status != StatusDone || !final.Cached {
		t.Errorf("cross-node job not served from cache: %+v", final)
	}
	if after := scrapeMetric(t, bases[b], "partitad_solves_started_total"); after != solvesBefore {
		t.Errorf("node %s re-solved a peer-cached job (solves %v → %v)", names[b], solvesBefore, after)
	}
	if after := scrapeMetric(t, bases[b], "partitad_cluster_peer_cache_hits_total"); after != hitsBefore+1 {
		t.Errorf("node %s peer cache hits %v → %v, want +1", names[b], hitsBefore, after)
	}

	if t.Failed() {
		t.Logf("node logs and journals preserved for inspection: %s", dir)
	}
}
