// Batch submission and result streaming: SubmitBatch posts many sweep
// points as one request, StreamBatch follows the batch's event log over
// SSE (resuming by Last-Event-ID across reconnects) with a JSON
// long-poll fallback, and RunBatch is the submit-and-stream happy path.
package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"partita/internal/service"
)

// Re-exported batch wire types.
type (
	// BatchSpec is one batch submission (see service.BatchSpec).
	BatchSpec = service.BatchSpec
	// BatchPoint is one point of a batch (see service.BatchPoint).
	BatchPoint = service.BatchPoint
	// BatchView is the daemon's batch snapshot.
	BatchView = service.BatchView
	// BatchEvent is one entry of a batch's event log.
	BatchEvent = service.BatchEvent
	// BatchSummary is the terminal accounting of a batch.
	BatchSummary = service.BatchSummary
	// BatchPointResult is one finished point.
	BatchPointResult = service.BatchPointResult
)

// Batch event type names, re-exported for convenience.
const (
	EventProgress = service.EventProgress
	EventPoint    = service.EventPoint
	EventSummary  = service.EventSummary
	EventEnd      = service.EventEnd
)

// ErrStreamStopped wraps an error returned by a StreamBatch callback:
// the stream was stopped by the caller, not by the transport.
var ErrStreamStopped = errors.New("client: stream stopped by callback")

// SubmitBatch submits one batch, retrying through queue-full (429),
// drain (503), transient 5xx, and network errors — safe, because the
// batch and all its points are content-addressed, so a retry coalesces
// with whatever the first attempt started. The returned view may
// already be terminal (every point answered from the result cache).
func (c *Client) SubmitBatch(ctx context.Context, spec BatchSpec) (*BatchView, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("client: marshal batch: %w", err)
	}
	raw, err := c.do(ctx, http.MethodPost, "/v1/batches", body)
	if err != nil {
		return nil, err
	}
	var v BatchView
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, fmt.Errorf("client: decode batch view: %w", err)
	}
	return &v, nil
}

// Batch fetches one batch's current snapshot, including per-point rows.
func (c *Client) Batch(ctx context.Context, id string) (*BatchView, error) {
	raw, err := c.do(ctx, http.MethodGet, "/v1/batches/"+url.PathEscape(id), nil)
	if err != nil {
		return nil, err
	}
	var v BatchView
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, fmt.Errorf("client: decode batch view: %w", err)
	}
	return &v, nil
}

// StreamBatch follows a batch's event log from the given cursor (0 =
// from the beginning), invoking fn for every event in ID order, each
// exactly once. It prefers SSE and resumes by Last-Event-ID across
// disconnects, daemon drains, and restarts; a daemon that cannot hold
// the SSE connection is followed through the JSON long-poll fallback
// instead. It returns the last delivered event ID when the terminal
// summary has been delivered, the context expires, or fn returns an
// error (wrapped in ErrStreamStopped).
func (c *Client) StreamBatch(ctx context.Context, id string, after uint64, fn func(BatchEvent) error) (uint64, error) {
	failures := 0
	var lastErr error
	for {
		delivered, terminal, err := c.streamOnce(ctx, id, &after, fn)
		switch {
		case err != nil && (errors.Is(err, ErrStreamStopped) || !retryableStreamErr(err)):
			return after, err
		case terminal:
			return after, nil
		}
		if ctx.Err() != nil {
			return after, ctx.Err()
		}
		if err != nil {
			lastErr = err
		}
		// Progress resets the failure budget: a stream that keeps
		// delivering events across reconnects should keep going.
		if delivered > 0 {
			failures = 0
		} else {
			failures++
		}
		if failures > c.maxRetries {
			if lastErr == nil {
				lastErr = errors.New("stream made no progress")
			}
			return after, fmt.Errorf("%w after %d attempts: stream %s: %w",
				ErrRetriesExhausted, failures, id, lastErr)
		}
		// Jittered backoff before the reconnect: repeated no-progress
		// failures back off exponentially toward the cap, and the first
		// retry after a progress reset waits the base delay (backoffFor
		// clamps the -1) instead of hammering a flapping node.
		select {
		case <-ctx.Done():
			return after, ctx.Err()
		case <-time.After(c.backoffFor(failures - 1)):
		}
	}
}

// retryableStreamErr reports whether a streamOnce failure is worth a
// reconnect: network errors and retryable statuses are; a 404 (batch
// unknown — lost across an unjournaled restart) or 400 is not.
func retryableStreamErr(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return retryableStatus(apiErr.StatusCode)
	}
	return true
}

// streamClient returns the HTTP client used for SSE connections: the
// configured transport without the overall request timeout, which would
// sever a healthy stream mid-batch. Cancellation comes from the
// caller's context.
func (c *Client) streamClient() *http.Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sc == nil {
		c.sc = &http.Client{Transport: c.hc.Transport}
	}
	return c.sc
}

// streamOnce holds one SSE connection (or runs long-poll pages when the
// daemon cannot stream), advancing *after as events are delivered.
// terminal reports that the summary event was delivered.
func (c *Client) streamOnce(ctx context.Context, id string, after *uint64, fn func(BatchEvent) error) (delivered int, terminal bool, err error) {
	base, idx := c.endpoint()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		base+"/v1/batches/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return 0, false, err
	}
	req.Header.Set("User-Agent", c.userAgent)
	req.Header.Set("Accept", "text/event-stream")
	if *after > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(*after, 10))
	}
	resp, err := c.streamClient().Do(req)
	if err != nil {
		c.rotate(idx)
		return 0, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if resp.StatusCode >= 500 {
			c.rotate(idx)
		}
		err := &APIError{StatusCode: resp.StatusCode, Message: errMessage(raw)}
		if resp.StatusCode == http.StatusNotImplemented {
			// The daemon cannot stream to this writer; fall back to
			// long-poll pages on the retry path.
			return c.longPollPages(ctx, id, after, fn)
		}
		return 0, false, err
	}
	if !strings.Contains(resp.Header.Get("Content-Type"), "text/event-stream") {
		resp.Body.Close()
		return c.longPollPages(ctx, id, after, fn)
	}
	return c.readSSE(resp.Body, after, fn)
}

// readSSE parses Server-Sent Events frames, dispatching each data-
// bearing event to fn. A clean server-side close ("end" event, drain)
// returns without error so the caller reconnects; a delivered summary
// returns terminal.
func (c *Client) readSSE(body io.Reader, after *uint64, fn func(BatchEvent) error) (delivered int, terminal bool, err error) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	var event, data string
	dispatch := func() (bool, error) {
		defer func() { event, data = "", "" }()
		if data == "" {
			return false, nil
		}
		if event == EventEnd {
			// Server-initiated close (drain): not terminal, reconnect.
			return false, io.EOF
		}
		var ev BatchEvent
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			return false, fmt.Errorf("client: bad event payload: %w", err)
		}
		if ev.ID <= *after {
			return false, nil // replay overlap after a reconnect
		}
		if err := fn(ev); err != nil {
			return false, fmt.Errorf("%w: %w", ErrStreamStopped, err)
		}
		*after = ev.ID
		delivered++
		return ev.Type == EventSummary, nil
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			done, derr := dispatch()
			if done {
				return delivered, true, nil
			}
			if errors.Is(derr, io.EOF) {
				return delivered, false, nil
			}
			if derr != nil {
				return delivered, false, derr
			}
		case strings.HasPrefix(line, ":"):
			// keepalive comment
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		}
		// id: lines are redundant with the payload's id field.
	}
	if err := sc.Err(); err != nil {
		return delivered, false, err
	}
	return delivered, false, nil // connection closed mid-batch: reconnect
}

// eventPage mirrors the daemon's long-poll response.
type eventPage struct {
	Events    []BatchEvent `json:"events"`
	NextAfter uint64       `json:"nextAfter"`
	Done      bool         `json:"done"`
	Draining  bool         `json:"draining"`
}

// longPollPages follows the event log through the JSON fallback: each
// request returns the page after the cursor or holds until something
// arrives.
func (c *Client) longPollPages(ctx context.Context, id string, after *uint64, fn func(BatchEvent) error) (delivered int, terminal bool, err error) {
	for {
		path := "/v1/batches/" + url.PathEscape(id) + "/events?after=" +
			strconv.FormatUint(*after, 10) + "&wait=10s"
		raw, err := c.do(ctx, http.MethodGet, path, nil)
		if err != nil {
			return delivered, false, err
		}
		var page eventPage
		if err := json.Unmarshal(raw, &page); err != nil {
			return delivered, false, fmt.Errorf("client: decode event page: %w", err)
		}
		for _, ev := range page.Events {
			if ev.ID <= *after {
				continue
			}
			if err := fn(ev); err != nil {
				return delivered, false, fmt.Errorf("%w: %w", ErrStreamStopped, err)
			}
			*after = ev.ID
			delivered++
			if ev.Type == EventSummary {
				return delivered, true, nil
			}
		}
		if page.Done {
			return delivered, true, nil
		}
		if ctx.Err() != nil {
			return delivered, false, ctx.Err()
		}
	}
}

// RunBatch submits the batch and streams it to completion, invoking fn
// (which may be nil) for every event. It returns the terminal batch
// view with per-point results.
func (c *Client) RunBatch(ctx context.Context, spec BatchSpec, fn func(BatchEvent) error) (*BatchView, error) {
	if fn == nil {
		fn = func(BatchEvent) error { return nil }
	}
	v, err := c.SubmitBatch(ctx, spec)
	if err != nil {
		return nil, err
	}
	if v.Status != service.StatusDone {
		if _, err := c.StreamBatch(ctx, v.ID, 0, fn); err != nil {
			return nil, err
		}
	}
	return c.Batch(ctx, v.ID)
}
