package client

// Kill-and-restart chaos test: a real partitad with a journal is
// SIGKILLed mid-sweep, the journal is inspected for the accepted jobs
// and their last checkpointed incumbents, and a restarted daemon must
// finish every accepted job with a final area no worse than its last
// journaled incumbent. Gated behind PARTITAD_CHAOS=1 because it builds
// and launches (and kills) the daemon; run with `make chaos` or:
//
//	PARTITAD_CHAOS=1 go test -race -run TestKillRestartChaos ./client
//
// PARTITAD_CHAOS_SEED varies the fault-injection seed (CI runs a small
// matrix); PARTITAD_CHAOS_DIR pins the journal location so CI can
// upload it as an artifact when the test fails.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"partita/internal/journal"
	"partita/internal/service"
)

// daemon is one spawned partitad process.
type daemon struct {
	cmd    *exec.Cmd
	base   string
	exited chan error
}

func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, exited: make(chan error, 1)}
	go func() { d.exited <- cmd.Wait() }()

	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		t.Fatalf("reading listen line: %v", err)
	}
	const prefix = "partitad listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected startup line %q", line)
	}
	d.base = "http://" + strings.TrimSpace(strings.TrimPrefix(line, prefix))
	return d
}

func (d *daemon) kill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-d.exited
}

func (d *daemon) terminate(t *testing.T) {
	t.Helper()
	_ = d.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-d.exited:
	case <-time.After(60 * time.Second):
		_ = d.cmd.Process.Kill()
		t.Error("partitad did not exit after SIGTERM")
	}
}

func TestKillRestartChaos(t *testing.T) {
	if os.Getenv("PARTITAD_CHAOS") == "" {
		t.Skip("set PARTITAD_CHAOS=1 to run the kill-and-restart chaos test")
	}
	seed := os.Getenv("PARTITAD_CHAOS_SEED")
	if seed == "" {
		seed = "1"
	}
	dir := os.Getenv("PARTITAD_CHAOS_DIR")
	if dir == "" {
		dir = t.TempDir()
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, "chaos-seed"+seed+".wal")
	_ = os.Remove(wal)
	t.Logf("chaos seed=%s journal=%s", seed, wal)

	bin := filepath.Join(t.TempDir(), "partitad")
	build := exec.Command("go", "build", "-o", bin, "partita/cmd/partitad")
	build.Dir = repoRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build partitad: %v\n%s", err, out)
	}

	// Every solve stalls 150ms so the SIGKILL reliably lands mid-sweep.
	stall := fmt.Sprintf("seed=%s,solver.stall=1,solver.stall.delay=150ms", seed)
	d1 := startDaemon(t, bin, "-journal", wal, "-faults", stall)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	c1 := New(d1.base, WithJitterSeed(1))
	const jobs = 24
	var ids []string
	for i := 0; i < jobs; i++ {
		v, err := c1.Submit(ctx, selectSpec(int64(100+13*i)))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, v.ID)
	}

	// Let part of the sweep finish, then pull the plug.
	killAt := time.Now().Add(30 * time.Second)
	for {
		views, err := c1.List(ctx)
		if err != nil {
			t.Fatal(err)
		}
		finished := 0
		for _, v := range views {
			if v.Status == StatusDone || v.Status == StatusFailed {
				finished++
			}
		}
		if finished >= 5 || time.Now().After(killAt) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	d1.kill(t)

	// The journal is the contract: every acked job has a fsync'd submit
	// record, and checkpoints record the incumbents the restart must not
	// regress below.
	rep, err := journal.ReadAll(wal)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	t.Logf("journal at kill: %d records, torn tail %d bytes", len(rep.Records), rep.TruncatedBytes)
	submitted := map[string]bool{}
	doneAtKill := map[string]bool{}
	lastCkpt := map[string]float64{}
	for _, rec := range rep.Records {
		switch rec.Type {
		case "submit":
			var d struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(rec.Data, &d); err != nil {
				t.Fatalf("decode submit record: %v", err)
			}
			submitted[d.ID] = true
		case "done", "failed":
			doneAtKill[rec.Job] = true
		case "checkpoint":
			var p service.Progress
			if err := json.Unmarshal(rec.Data, &p); err == nil {
				lastCkpt[rec.Job] = p.IncumbentArea
			}
		}
	}
	for _, id := range ids {
		if !submitted[id] {
			t.Errorf("acked job %s has no journaled submit record", id)
		}
	}
	if len(doneAtKill) >= jobs {
		t.Logf("warning: all %d jobs finished before the kill; requeue path not exercised (raise stall delay)", jobs)
	} else {
		t.Logf("killed with %d/%d finished, %d checkpoints", len(doneAtKill), jobs, len(lastCkpt))
	}

	// Restart on the same journal, faults off: every accepted job must
	// come back and finish, none may regress below its last incumbent.
	d2 := startDaemon(t, bin, "-journal", wal)
	defer d2.terminate(t)
	c2 := New(d2.base, WithJitterSeed(2))
	lost := 0
	for _, id := range ids {
		v, err := c2.Wait(ctx, id)
		if err != nil {
			t.Errorf("job %s lost across restart: %v", id, err)
			lost++
			continue
		}
		if v.Status != StatusDone || v.Result == nil || !v.Result.Selection.Solved() {
			t.Errorf("job %s did not finish after restart: %+v", id, v)
			continue
		}
		if ckpt, ok := lastCkpt[id]; ok && !doneAtKill[id] && v.Result.Selection.Area > ckpt {
			t.Errorf("job %s final area %g worse than last journaled incumbent %g",
				id, v.Result.Selection.Area, ckpt)
		}
	}
	if lost > 0 {
		t.Errorf("%d of %d accepted jobs lost (journal kept at %s)", lost, len(ids), wal)
	}
	if t.Failed() {
		t.Logf("journal preserved for inspection: %s", wal)
	} else {
		_ = os.Remove(wal)
	}
}

// repoRoot walks up from the package directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found")
		}
		dir = parent
	}
}
