// JPEG hierarchy walkthrough: reproduces the *mechanism* behind the
// paper's Table 3 on a live program. The 8×8 block pipeline nests
// jpeg_block → dct2d → dct1d → cmul_re; IMP flattening lifts IPs from
// every level into implementation methods of the top-level dct2d s-call,
// and the selector's choice climbs the hierarchy as the required gain
// grows: complex-multiplier IP → 1D-DCT IP → full 2D-DCT engine.
//
// Run with: go run ./examples/jpeg
package main

import (
	"fmt"
	"log"
	"sort"

	"partita"
	"partita/internal/apps"
)

func main() {
	w, err := apps.JPEGEncoderWorkload()
	if err != nil {
		log.Fatal(err)
	}
	design, err := partita.Analyze(w.Source, w.Root, w.Catalog, partita.Options{
		DataCount: w.DataCount,
	})
	if err != nil {
		log.Fatal(err)
	}

	stats, _, err := design.Profile(w.Entry)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one 8×8 block in software: %d cycles (%d dct1d calls, %d complex multiplies)\n\n",
		stats.Cycles, stats.CallCount["dct1d"], stats.CallCount["cmul_re"])

	// Show the hierarchy-flattened IMP database of the dct2d s-call.
	fmt.Println("implementation methods of the dct2d s-call (IMP flattening):")
	var dctImps []*partita.IMP
	for _, m := range design.DB.IMPs {
		if m.SC.Func == "dct2d" {
			dctImps = append(dctImps, m)
		}
	}
	sort.Slice(dctImps, func(i, j int) bool { return dctImps[i].TotalGain < dctImps[j].TotalGain })
	for _, m := range dctImps {
		level := "direct"
		if m.Flattened != "" {
			level = "via " + m.Flattened
		}
		fmt.Printf("  %-28s %-12s gain=%-7d IP area=%.1f\n", m.ID, level, m.TotalGain, m.IP.Area)
	}

	// Sweep: the selected IP climbs the hierarchy as RG grows.
	var maxGain int64
	for _, m := range dctImps {
		if m.TotalGain > maxGain {
			maxGain = m.TotalGain
		}
	}
	fmt.Println("\nrequired-gain sweep (who implements dct2d?):")
	for _, pct := range []int64{10, 40, 70, 95} {
		rg := maxGain * pct / 100
		sel, err := design.Select(rg)
		if err != nil {
			log.Fatal(err)
		}
		if sel.Status != partita.Optimal {
			fmt.Printf("  RG=%-8d %v\n", rg, sel.Status)
			continue
		}
		impl := "(software)"
		for _, m := range sel.Chosen {
			if m.SC.Func == "dct2d" {
				impl = m.ID
			}
		}
		fmt.Printf("  RG=%-8d area=%-6.1f dct2d ← %s\n", rg, sel.Area, impl)
	}
}
