// Quickstart: accelerate a FIR filter in a toy DSP program.
//
// It shows the minimal public-API workflow: describe an IP library,
// analyze a mini-C program, ask for a performance gain, and read the
// selected (IP, interface) implementation back.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"partita"
)

const source = `
xmem int samples[32] = {10, -4, 3, 25, -17, 8, 2, -1, 10, -4, 3, 25, -17, 8, 2, -1,
                        10, -4, 3, 25, -17, 8, 2, -1, 10, -4, 3, 25, -17, 8, 2, -1};
ymem int kernelq[4] = {8192, 16384, 8192, 4096};
xmem int out[32];
int tick;

int fir(xmem int in[], ymem int k[], xmem int o[], int n, int taps) {
	int i; int j; int acc;
	for (i = 0; i + taps <= n; i = i + 1) {
		acc = 0;
		for (j = 0; j < taps; j = j + 1) { acc = acc + in[i + j] * k[j]; }
		o[i] = acc >> 15;
	}
	return o[0];
}

int process() {
	int r;
	r = fir(samples, kernelq, out, 32, 4);
	tick = tick + 1;   // independent bookkeeping: candidate parallel code
	return r;
}

int main() { return process(); }
`

func main() {
	catalog, err := partita.NewCatalog(&partita.IP{
		ID: "FIR4", Name: "4-tap FIR engine", Funcs: []string{"fir"},
		InPorts: 2, OutPorts: 2, InRate: 4, OutRate: 4,
		Latency: 8, Pipelined: true, Area: 5,
	})
	if err != nil {
		log.Fatal(err)
	}

	design, err := partita.Analyze(source, "process", catalog, partita.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Sanity: execute the program on the kernel model.
	stats, ret, err := design.Profile("main")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("software run: returned %d in %d cycles\n", ret, stats.Cycles)

	// How much can the FIR IP gain us?
	var best int64
	for _, m := range design.DB.IMPs {
		if m.TotalGain > best {
			best = m.TotalGain
		}
	}
	fmt.Printf("best achievable gain with the library: %d cycles\n", best)

	sel, err := design.Select(best / 2)
	if err != nil {
		log.Fatal(err)
	}
	if sel.Status != partita.Optimal {
		log.Fatalf("selection: %v", sel.Status)
	}
	for _, m := range sel.Chosen {
		fmt.Printf("selected %s: gain %d cycles, interface area %.2f (IP area %.2f)\n",
			m.ID, m.TotalGain, m.IfaceArea, m.IP.Area)
	}
	fmt.Printf("total area: %.2f, S-instructions: %d\n", sel.Area, sel.SInstructions)

	res, err := design.Simulate(sel, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated: %d → %d cycles (%.2fx speedup)\n",
		res.SoftwareCycles, res.AcceleratedCycles, res.Speedup())
}
