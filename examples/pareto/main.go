// Design-space exploration: sweep the required gain across the GSM
// encoder's reachable range, extract the area/gain Pareto frontier, and
// emit the generated hardware (C-instructions, encoded image, interface
// RTL) for one chosen point — the complete back end of the Partita flow.
//
// Run with: go run ./examples/pareto
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"partita"
	"partita/internal/apps"
)

func main() {
	w, err := apps.GSMEncoderWorkload()
	if err != nil {
		log.Fatal(err)
	}
	design, err := partita.Analyze(w.Source, w.Root, w.Catalog, partita.Options{
		DataCount: w.DataCount,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Drive the lazy shared-analysis pipeline directly instead of the
	// eager Sweep adapter: the program is analyzed once, points whose
	// answer follows from a looser point complete without any search,
	// and the solved ones are warm-started from the greedy baseline.
	const n = 12
	gains := make([]int64, n)
	for i := 1; i <= n; i++ {
		gains[i-1] = design.MaxReachableGain() * int64(i) / n
	}
	pl := design.NewSweepPipeline(gains, partita.Budget{}, nil)
	points := make([]partita.SweepPoint, 0, pl.Len())
	for {
		pt, ok, err := pl.Next(context.Background())
		if !ok {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		points = append(points, partita.SweepPoint{Required: pt.Required, Sel: pt.Sel})
	}
	st := pl.Stats()
	fmt.Printf("sweep pipeline: %d points, %d solved, %d reused, %d greedy-seeded\n\n",
		pl.Len(), st.Solved, st.Reused, st.GreedySeeds)
	front := partita.ParetoFront(points)

	fmt.Println("area/gain Pareto frontier (GSM encoder):")
	fmt.Printf("%-10s %-8s %-8s %s\n", "RG", "gain", "area", "")
	var maxGain int64
	for _, p := range front {
		if p.Sel.Gain > maxGain {
			maxGain = p.Sel.Gain
		}
	}
	for _, p := range front {
		bar := strings.Repeat("█", int(p.Sel.Gain*40/maxGain))
		fmt.Printf("%-10d %-8d %-8.1f %s\n", p.Required, p.Sel.Gain, p.Sel.Area, bar)
	}

	// Pick the knee-ish mid point and run the back end on it.
	chosen := front[len(front)/2]
	fmt.Printf("\nback end for RG=%d (gain %d, area %.1f):\n",
		chosen.Required, chosen.Sel.Gain, chosen.Sel.Area)

	stats, _, err := design.Profile(w.Entry)
	if err != nil {
		log.Fatal(err)
	}
	cres := design.GenerateCInstructions(stats)
	fmt.Printf("  C-instructions: %d (code %d → %d words, fetches %d → %d)\n",
		len(cres.Chosen), cres.CodeWordsBefore, cres.CodeWordsAfter,
		cres.FetchesBefore, cres.FetchesAfter)

	im, err := design.Encode(cres, chosen.Sel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  encoded image: %d instructions, µ-ROM %d/%d unique words (compression %.2f)\n",
		len(im.Stream), im.UniqueWords, im.TotalWords, im.Compression())

	rtl := design.GenerateRTL(chosen.Sel, im)
	modules := strings.Count(rtl, "endmodule")
	fmt.Printf("  generated RTL: %d modules, %d lines\n", modules, strings.Count(rtl, "\n"))
	// Show the first module header lines as a taste.
	for _, line := range strings.Split(rtl, "\n") {
		if strings.HasPrefix(line, "module ") {
			fmt.Printf("    %s\n", line)
		}
	}
}
