// GSM encoder walkthrough: the paper's primary evaluation application
// (Table 1) run end-to-end — compile the encoder frame pipeline, profile
// it on the kernel model, sweep the required gain, and validate the
// selections on the cycle-level system simulator.
//
// Run with: go run ./examples/gsm
package main

import (
	"fmt"
	"log"

	"partita"
	"partita/internal/apps"
)

func main() {
	w, err := apps.GSMEncoderWorkload()
	if err != nil {
		log.Fatal(err)
	}

	design, err := partita.Analyze(w.Source, w.Root, w.Catalog, partita.Options{
		DataCount: w.DataCount,
	})
	if err != nil {
		log.Fatal(err)
	}

	stats, _, err := design.Profile(w.Entry)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled two speech frames: %d cycles, %d MOPs\n", stats.Cycles, stats.Ops)
	fmt.Printf("hot functions (inclusive cycles):\n")
	for _, fn := range []string{"encoder", "ltp_search", "autocorr", "weight_fir"} {
		fmt.Printf("  %-12s %d\n", fn, stats.FuncCycles[fn])
	}

	fmt.Printf("\ns-call candidates (%d) and their guaranteed parallel code:\n", len(design.DB.SCalls))
	for _, sc := range design.DB.SCalls {
		fmt.Printf("  %-4s %-13s T_SW=%-6d PC=%d cycles\n", sc.Name(), sc.Func, sc.TSW, sc.PC1.Cost)
	}

	var reachable int64
	best := map[string]int64{}
	for _, m := range design.DB.IMPs {
		if m.TotalGain > best[m.SC.Name()] {
			best[m.SC.Name()] = m.TotalGain
		}
	}
	for _, g := range best {
		reachable += g
	}

	fmt.Printf("\nrequired-gain sweep (reachable total: %d cycles):\n", reachable)
	fmt.Printf("%-8s %-8s %-7s %-3s %-3s %s\n", "RG", "gain", "area", "S", "O", "speedup")
	for _, pct := range []int64{20, 40, 60, 80} {
		rg := reachable * pct / 100
		sel, err := design.Select(rg)
		if err != nil {
			log.Fatal(err)
		}
		if sel.Status != partita.Optimal {
			fmt.Printf("%-8d %v\n", rg, sel.Status)
			continue
		}
		res, err := design.Simulate(sel, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %-8d %-7.1f %-3d %-3d %.2fx\n",
			rg, sel.Gain, sel.Area, sel.SInstructions, sel.SCallsImplemented, res.Speedup())
	}

	// Compare against the greedy prior-art baseline at a demanding target.
	rg := reachable * 8 / 10
	opt, err := design.Select(rg)
	if err != nil {
		log.Fatal(err)
	}
	grd := design.GreedySelect(rg)
	fmt.Printf("\nat RG=%d: ILP area %.1f vs greedy baseline area ", rg, opt.Area)
	if grd.Status == partita.Optimal {
		fmt.Printf("%.1f (%.0f%% larger)\n", grd.Area, 100*(grd.Area-opt.Area)/opt.Area)
	} else {
		fmt.Printf("(%v)\n", grd.Status)
	}
}
