// Custom-IP exploration: the interface trade-off space of Section 3.
//
// Given one IP block and an invocation shape, this example enumerates
// every feasible interface type with its execution time, gain, and area
// breakdown, then shows the three effects the paper calls out:
//
//  1. an IP faster than the type-0 software template must be
//     slow-clocked (ClockDiv > 1);
//  2. IPs with more than two ports or differing in/out rates lose the
//     unbuffered interface types;
//  3. parallel code makes a buffered interface on a *slower* IP beat an
//     unbuffered interface on a faster one.
//
// Run with: go run ./examples/custom_ip
package main

import (
	"fmt"

	"partita"
)

func describe(title string, block *partita.IP, shape partita.Shape) {
	fmt.Printf("== %s ==\n", title)
	fmt.Printf("%-5s %-9s %-9s %-9s %-8s %-8s %s\n",
		"type", "exec", "gain", "if-area", "bufwords", "clockdiv", "parallel")
	for _, c := range partita.InterfaceCandidates(block, shape) {
		fmt.Printf("%-5v %-9d %-9d %-9.2f %-8d %-8d %v\n",
			c.Type, c.Exec, c.Gain, c.IfaceArea, c.BufWords, c.ClockDiv, c.TCUsed > 0)
	}
	fmt.Println()
}

func main() {
	shape := partita.Shape{NIn: 128, NOut: 128, TSW: 40000}

	// A well-matched pipelined filter: all four types are feasible.
	filter := &partita.IP{
		ID: "FIR16", Name: "16-tap FIR", Funcs: []string{"fir"},
		InPorts: 2, OutPorts: 2, InRate: 4, OutRate: 4,
		Latency: 16, Pipelined: true, Area: 6,
	}
	describe("pipelined FIR, rate 4 (template-matched)", filter, shape)

	// A fast IP: the type-0 software interface must divide its clock.
	fast := &partita.IP{
		ID: "FFT1", Name: "streaming FFT", Funcs: []string{"fft"},
		InPorts: 2, OutPorts: 2, InRate: 1, OutRate: 1,
		Latency: 32, Pipelined: true, Area: 14,
	}
	describe("fast IP, rate 1 (slow-clocked on type 0)", fast, shape)

	// An interpolator: output rate differs from input rate, so type 0 is
	// impossible (Section 3, "Different input and output data rates").
	interp := &partita.IP{
		ID: "INTP", Name: "2x interpolator", Funcs: []string{"interp"},
		InPorts: 1, OutPorts: 1, InRate: 8, OutRate: 4,
		Latency: 12, Pipelined: true, Area: 4,
	}
	describe("interpolator, in-rate 8 / out-rate 4 (no type 0)", interp,
		partita.Shape{NIn: 64, NOut: 128, TSW: 40000})

	// A wide IP: four input ports exceed the two memory operands per
	// cycle, so only the buffered types remain.
	wide := &partita.IP{
		ID: "MAT4", Name: "4-lane matrix unit", Funcs: []string{"mat"},
		InPorts: 4, OutPorts: 4, InRate: 2, OutRate: 2,
		Latency: 24, Pipelined: true, Area: 20,
	}
	describe("4-port IP (buffered types only)", wide, shape)

	// The parallel-code effect: a slower IP with parallel code beats a
	// faster IP without it.
	slow := &partita.IP{
		ID: "SLOW", Name: "compact slow engine", Funcs: []string{"f"},
		InPorts: 2, OutPorts: 2, InRate: 4, OutRate: 4,
		Latency: 16, Pipelined: true, Area: 3, PerfFactor: 2,
	}
	fastNoPC := partita.Shape{NIn: 128, NOut: 128, TSW: 40000}
	slowPC := fastNoPC
	slowPC.TC = 100000 // ample independent kernel work
	var fastGain, slowGain int64
	for _, c := range partita.InterfaceCandidates(filter, fastNoPC) {
		if c.Type == partita.Type2 {
			fastGain = c.Gain
		}
	}
	for _, c := range partita.InterfaceCandidates(slow, slowPC) {
		if c.Type == partita.Type3 {
			slowGain = c.Gain
		}
	}
	fmt.Printf("fast IP on IF2 without parallel code: gain %d\n", fastGain)
	fmt.Printf("slow IP on IF3 with parallel code:    gain %d\n", slowGain)
	if slowGain > fastGain {
		fmt.Println("→ the slower IP wins, as the paper's gain equations predict.")
	}
}
