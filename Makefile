# Convenience targets around the go toolchain; everything here is plain
# `go test` underneath.

.PHONY: build test race bench bench-ilp profile-ilp bench-portfolio bench-service bench-sweep bench-fanout integration chaos chaos-cluster chaos-batch

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Paper-reproduction experiments as benchmarks (tables, figures,
# ablations).
bench:
	go test -bench . -benchmem .

# ILP solver benchmarks: branch-and-bound nodes/sec and solve-latency
# p50/p99 over the GSM/JPEG models at parallelism 1/2/4, plus the
# 16-point sweep. Writes BENCH_ilp.json at the repo root (override with
# BENCH_ILP_OUT); parallel entries record their p50 speedup over the
# serial entry. See docs/PERFORMANCE.md. Override the iteration count
# with BENCHTIME (e.g. `make bench-ilp BENCHTIME=1x` as a smoke test).
BENCHTIME ?= 20x
bench-ilp:
	go test -run NoTests -bench BenchmarkILP -benchtime $(BENCHTIME) .

# Profile a solver-heavy run: the bundled GSM demo swept 10..90% of
# reachable gain (rg=0) with all CPUs inside each branch-and-bound.
# Writes profile_ilp_cpu.pprof and profile_ilp_mem.pprof at the repo
# root (override with PROFILE_DIR); inspect with
# `go tool pprof profile_ilp_cpu.pprof`.
PROFILE_DIR ?= .
profile-ilp:
	go build -o $(PROFILE_DIR)/partita-profile ./cmd/partita
	$(PROFILE_DIR)/partita-profile -parallelism -1 \
		-cpuprofile $(PROFILE_DIR)/profile_ilp_cpu.pprof \
		-memprofile $(PROFILE_DIR)/profile_ilp_mem.pprof > /dev/null
	rm -f $(PROFILE_DIR)/partita-profile
	@echo "wrote $(PROFILE_DIR)/profile_ilp_cpu.pprof and $(PROFILE_DIR)/profile_ilp_mem.pprof"

# Racing-portfolio benchmarks: time-to-first-acceptable at a 5% gap
# versus a cold exact solve on the GSM/JPEG models, per-engine win
# counts, and the warm-vs-cold speedup of an incremental Reselect after
# a single-field edit. Every iteration cross-checks the gap-0 settled
# answer byte-for-byte against the exact solver, so the speedups carry
# zero correctness drift. Writes BENCH_portfolio.json at the repo root
# (override with BENCH_PORTFOLIO_OUT).
bench-portfolio:
	go test -run NoTests -bench BenchmarkPortfolio -benchtime $(BENCHTIME) .

# Service-level benchmarks: job throughput, p50/p99 solve latency, and
# cache-hit speedup over the GSM/JPEG workloads. Writes
# BENCH_service.json at the repo root (override with BENCH_SERVICE_OUT).
bench-service:
	go test -run NoTests -bench BenchmarkService -benchtime 20x ./internal/service

# Shared-analysis sweep benchmarks: the lazy pipeline (analyze once,
# select many — plateau reuse, infeasibility propagation, greedy warm
# starts) versus independent per-point solves on the GSM/JPEG encoders,
# plus the end-to-end 64-point GSM sweep through POST /v1/batches
# versus 64 independent HTTP submits (asserts >= 1.5x and a zero-solve
# cache-warm resubmit). Writes BENCH_sweep.json at the repo root
# (override with BENCH_SWEEP_OUT).
bench-sweep:
	go test -run NoTests -bench BenchmarkSweep -benchtime 1x ./internal/service

# Fan-out sweep benchmark: the 64-point GSM sweep batch on one node
# versus the same batch ring-routed across a 3-node in-process cluster.
# Merges into BENCH_sweep.json (override with BENCH_SWEEP_OUT).
bench-fanout:
	go test -run NoTests -bench BenchmarkSweepFanout -benchtime 1x ./internal/cluster

# End-to-end partitad test: builds the daemon, starts it on an
# ephemeral port, and round-trips a GSM job over HTTP.
integration:
	PARTITAD_INTEGRATION=1 go test -run TestPartitadIntegration -v ./internal/service

# Kill-and-restart chaos test: SIGKILLs a journaled daemon mid-sweep
# and asserts the restart loses no accepted job and regresses no
# journaled incumbent. PARTITAD_CHAOS_SEED varies the fault seed.
chaos:
	PARTITAD_CHAOS=1 go test -race -run TestKillRestartChaos -v ./client

# Node-kill cluster chaos test: boots a 3-node partitad ring, SIGKILLs
# the node owning the largest job share mid-sweep, and asserts zero
# accepted jobs lost, every job terminal via failover to the ring
# successor, and a result cached on one node served from another
# without re-solving (checked via per-node solve counters).
# PARTITAD_CHAOS_SEED varies the fault seed; PARTITAD_CHAOS_DIR pins
# journals and per-node logs for artifact upload.
chaos-cluster:
	PARTITAD_CLUSTER_CHAOS=1 go test -race -run TestClusterKillChaos -v -timeout 10m ./client

# Batch fan-out chaos test: boots a 3-node ring with -batch-fanout,
# submits a 24-point sweep batch under injected dispatch faults,
# SIGKILLs the peer owning the largest point group mid-batch, and
# asserts every point terminal (zero lost, zero failed — the dead
# owner's points requeue locally), then kills and restarts the
# journaled coordinator and asserts the batch is restored terminal and
# the identical resubmit solves zero points twice.
# PARTITAD_CHAOS_SEED varies the fault seed; PARTITAD_CHAOS_DIR pins
# journals and per-node logs for artifact upload.
chaos-batch:
	PARTITAD_BATCH_CHAOS=1 go test -race -run TestBatchFanoutChaos -v -timeout 10m ./client
