package partita

// End-to-end equivalence of the parallel solver on the paper's example
// models: for the GSM and JPEG encoder tables, solving at Parallelism
// 2 and 4 must reproduce the serial Status, Gain, and Area at every
// published required-gain row, and the parallel sweep (with its
// warm-start chaining) must reproduce the serial sweep curve point for
// point. Run under -race in CI these also exercise the concurrent
// heap/incumbent machinery on realistic instances.

import (
	"context"
	"math"
	"testing"

	"partita/internal/apps"
	"partita/internal/ilp"
	"partita/internal/imp"
	"partita/internal/selector"
)

func workloadTables(t *testing.T) map[string]*imp.DB {
	t.Helper()
	dbs := map[string]*imp.DB{}
	for name, gen := range map[string]func() (*imp.DB, []apps.TableRow, error){
		"gsm":  apps.GSMEncoderTable,
		"jpeg": apps.JPEGEncoderTable,
	} {
		db, _, err := gen()
		if err != nil {
			t.Fatalf("%s workload: %v", name, err)
		}
		dbs[name] = db
	}
	return dbs
}

// TestParallelSelectEquivalence solves every published table row of the
// GSM and JPEG encoders serially and at Parallelism 2 and 4, asserting
// identical Status and identical Gain/Area (to 1e-6). The parallel
// solver explores nodes in a different order but proves the same
// optimum.
func TestParallelSelectEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		gen  func() (*imp.DB, []apps.TableRow, error)
	}{
		{"gsm", apps.GSMEncoderTable},
		{"jpeg", apps.JPEGEncoderTable},
	} {
		t.Run(tc.name, func(t *testing.T) {
			db, rows, err := tc.gen()
			if err != nil {
				t.Fatal(err)
			}
			for _, row := range rows {
				ref, err := selector.SolveCtx(ctx, selector.Problem{DB: db, Required: row.RG})
				if err != nil {
					t.Fatalf("RG=%d serial: %v", row.RG, err)
				}
				for _, workers := range []int{2, 4} {
					got, err := selector.SolveCtx(ctx, selector.Problem{
						DB: db, Required: row.RG, Budget: Budget{Parallelism: workers},
					})
					if err != nil {
						t.Fatalf("RG=%d parallelism=%d: %v", row.RG, workers, err)
					}
					if got.Status != ref.Status {
						t.Errorf("RG=%d parallelism=%d: status %v, serial %v",
							row.RG, workers, got.Status, ref.Status)
						continue
					}
					if ref.Status != ilp.Optimal {
						continue
					}
					if got.Gain != ref.Gain {
						t.Errorf("RG=%d parallelism=%d: gain %d, serial %d",
							row.RG, workers, got.Gain, ref.Gain)
					}
					if math.Abs(got.Area-ref.Area) > 1e-6 {
						t.Errorf("RG=%d parallelism=%d: area %.9f, serial %.9f",
							row.RG, workers, got.Area, ref.Area)
					}
				}
			}
		})
	}
}

// TestParallelismOneIsSerial is the determinism contract: Parallelism 1
// (and the zero budget) must run the historical serial solver and
// reproduce its exact selection — same chosen implementations in the
// same order, same node count — not merely the same objective.
func TestParallelismOneIsSerial(t *testing.T) {
	ctx := context.Background()
	for name, db := range workloadTables(t) {
		rg := selector.MaxReachableGain(db) / 2
		ref, err := selector.SolveCtx(ctx, selector.Problem{DB: db, Required: rg})
		if err != nil {
			t.Fatal(err)
		}
		got, err := selector.SolveCtx(ctx, selector.Problem{
			DB: db, Required: rg, Budget: Budget{Parallelism: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != ref.Status || got.Nodes != ref.Nodes {
			t.Fatalf("%s: parallelism=1 (status %v, %d nodes) differs from serial (status %v, %d nodes)",
				name, got.Status, got.Nodes, ref.Status, ref.Nodes)
		}
		if len(got.Chosen) != len(ref.Chosen) {
			t.Fatalf("%s: parallelism=1 chose %d implementations, serial %d",
				name, len(got.Chosen), len(ref.Chosen))
		}
		for i := range ref.Chosen {
			if got.Chosen[i].ID != ref.Chosen[i].ID {
				t.Fatalf("%s: chosen[%d] = %s, serial %s",
					name, i, got.Chosen[i].ID, ref.Chosen[i].ID)
			}
		}
	}
}

// TestParallelSweepEquivalence runs a sweep serially and with a
// parallel point pool (whose workers warm-start looser points from
// tighter ones) and asserts the identical trade-off curve: same
// required gains, statuses, gains, and areas at every point.
func TestParallelSweepEquivalence(t *testing.T) {
	ctx := context.Background()
	const points = 12
	for name, db := range workloadTables(t) {
		ref, err := selector.SweepCtx(ctx, db, points, Budget{})
		if err != nil {
			t.Fatalf("%s serial sweep: %v", name, err)
		}
		got, err := selector.SweepCtx(ctx, db, points, Budget{Parallelism: 4})
		if err != nil {
			t.Fatalf("%s parallel sweep: %v", name, err)
		}
		if len(got) != len(ref) {
			t.Fatalf("%s: %d points, serial %d", name, len(got), len(ref))
		}
		for i := range ref {
			if got[i].Required != ref[i].Required {
				t.Errorf("%s point %d: RG %d, serial %d", name, i, got[i].Required, ref[i].Required)
			}
			if got[i].Sel.Status != ref[i].Sel.Status {
				t.Errorf("%s point %d (RG=%d): status %v, serial %v",
					name, i, ref[i].Required, got[i].Sel.Status, ref[i].Sel.Status)
				continue
			}
			if ref[i].Sel.Status != ilp.Optimal {
				continue
			}
			if got[i].Sel.Gain != ref[i].Sel.Gain {
				t.Errorf("%s point %d (RG=%d): gain %d, serial %d",
					name, i, ref[i].Required, got[i].Sel.Gain, ref[i].Sel.Gain)
			}
			if math.Abs(got[i].Sel.Area-ref[i].Sel.Area) > 1e-6 {
				t.Errorf("%s point %d (RG=%d): area %.9f, serial %.9f",
					name, i, ref[i].Required, got[i].Sel.Area, ref[i].Sel.Area)
			}
		}
	}
}

// TestParallelSweepObserver threads an observer through a parallel
// sweep: events from concurrent point solves are serialized (this test
// runs under -race in CI) and every event carries a consistent
// incumbent (positive node count, bound not above area).
func TestParallelSweepObserver(t *testing.T) {
	db, _, err := apps.GSMEncoderTable()
	if err != nil {
		t.Fatal(err)
	}
	var events []selector.Incumbent
	_, err = selector.SweepCtxObserve(context.Background(), db, 8,
		Budget{Parallelism: 4}, func(inc selector.Incumbent) {
			events = append(events, inc)
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("parallel sweep produced no incumbent events")
	}
	for _, e := range events {
		if e.Nodes <= 0 {
			t.Errorf("incumbent event with %d nodes", e.Nodes)
		}
		if e.Bound > e.Area+1e-9 {
			t.Errorf("incumbent bound %.9f above area %.9f", e.Bound, e.Area)
		}
	}
}

// TestParallelDesignAPI drives parallelism through the public Design
// façade the CLI and service use, on the live GSM workload.
func TestParallelDesignAPI(t *testing.T) {
	w, err := apps.GSMEncoderWorkload()
	if err != nil {
		t.Fatal(err)
	}
	d, err := Analyze(w.Source, w.Root, w.Catalog, Options{DataCount: w.DataCount})
	if err != nil {
		t.Fatal(err)
	}
	rg := selector.MaxReachableGain(d.DB) / 2
	ref, err := d.SelectCtx(context.Background(), rg, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.SelectCtx(context.Background(), rg, Budget{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != ref.Status || got.Gain != ref.Gain || math.Abs(got.Area-ref.Area) > 1e-6 {
		t.Fatalf("parallel Design.SelectCtx (status %v, gain %d, area %.6f) differs from serial (status %v, gain %d, area %.6f)",
			got.Status, got.Gain, got.Area, ref.Status, ref.Gain, ref.Area)
	}
}
