package partita

import (
	"context"
	"errors"
	"testing"
	"time"
)

// A corrupt hand-built selection (zero-value IMP, nil SCall) must not
// crash the embedding process: the API boundary converts the internal
// panic into ErrInternal.
func TestGuardRecoversPanic(t *testing.T) {
	design, err := Analyze(demoSource, "process", demoCatalog(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := &Selection{Status: Optimal, Chosen: []*IMP{{}}}
	_, err = design.Simulate(bad, 0)
	if err == nil {
		t.Fatal("corrupt selection simulated without error")
	}
	if !errors.Is(err, ErrInternal) {
		t.Errorf("error %v does not wrap ErrInternal", err)
	}
}

// An unlimited budget must reproduce the plain Select result exactly.
func TestSelectCtxUnlimitedMatchesSelect(t *testing.T) {
	design, err := Analyze(demoSource, "process", demoCatalog(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := design.Select(1000)
	if err != nil {
		t.Fatal(err)
	}
	budgeted, err := design.SelectCtx(context.Background(), 1000, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if budgeted.Status != plain.Status || budgeted.Area != plain.Area || budgeted.Gain != plain.Gain {
		t.Errorf("SelectCtx (%v, A=%g, G=%d) != Select (%v, A=%g, G=%d)",
			budgeted.Status, budgeted.Area, budgeted.Gain,
			plain.Status, plain.Area, plain.Gain)
	}
	if !budgeted.Exact() {
		t.Errorf("unlimited solve not exact: status=%v degraded=%q", budgeted.Status, budgeted.Degraded)
	}
}

// Cancelling the context aborts the solve with an error; cancellation is
// a caller decision, so no degraded fallback is produced.
func TestSelectCtxCanceled(t *testing.T) {
	design, err := Analyze(demoSource, "process", demoCatalog(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sel, err := design.SelectCtx(ctx, 1000, Budget{})
	if err == nil {
		t.Fatal("cancelled solve returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if !errors.Is(err, ErrDeadline) {
		t.Errorf("error %v does not wrap ErrDeadline", err)
	}
	if sel != nil {
		t.Errorf("cancelled solve returned a selection: %+v", sel)
	}
}

// SweepCtx under a healthy deadline behaves like Sweep.
func TestSweepCtx(t *testing.T) {
	design, err := Analyze(demoSource, "process", demoCatalog(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	pts, err := design.SweepCtx(ctx, 4, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("empty sweep")
	}
	for _, p := range pts {
		if p.Sel == nil {
			t.Fatalf("sweep point without selection: %+v", p)
		}
	}
}
