// Package partita is a Go reproduction of the ASIP IP-selection flow of
// Choi, Yi, Lee, Park and Kyung, "Exploiting Intellectual Properties in
// ASIP Designs for Embedded DSP Software" (DAC 1999).
//
// Given an embedded DSP program (a small C dialect), an IP library, and
// a required performance gain, the flow selects the optimal set of IP
// accelerators *and* interface methods — jointly — so that every
// execution path meets its constraint at minimum silicon area, while
// exploiting concurrent execution of kernel code ("parallel code") with
// running IPs.
//
// The pipeline mirrors the paper's Partita system:
//
//	design, _ := partita.Analyze(source, "encoder", catalog, partita.Options{})
//	sel, _ := design.Select(requiredGain)
//	res, _ := design.Simulate(sel, 0)
//
// Analyze parses and checks the program, lowers it to the kernel's
// µ-operation (MOP) list, builds the control/data-flow graph, extracts
// the guaranteed parallel code of every s-call candidate (Definitions
// 3-5), and enumerates the implementation-method database (IMPs: IP ×
// interface type × parallel code, with hierarchy flattening). Select
// solves the paper's 0-1 ILP (Problems 1 and 2) exactly with the
// built-in branch-and-bound solver. Simulate validates the chosen
// configuration on a cycle-level kernel+IP model.
package partita

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"partita/internal/budget"
	"partita/internal/cdfg"
	"partita/internal/cinstr"
	"partita/internal/cprog"
	"partita/internal/encode"
	"partita/internal/hwgen"
	"partita/internal/iface"
	"partita/internal/ilp"
	"partita/internal/imp"
	"partita/internal/ip"
	"partita/internal/kernel"
	"partita/internal/lower"
	"partita/internal/mop"
	mopopt "partita/internal/opt"
	"partita/internal/portfolio"
	"partita/internal/profile"
	"partita/internal/sched"
	"partita/internal/selector"
	"partita/internal/sim"
)

// Re-exported building blocks. The aliases give library users a single
// import while the implementation stays in focused internal packages.
type (
	// IP describes one library block (ports, rates, latency, area,
	// functions). An IP with several functions is an M-IP.
	IP = ip.IP
	// Catalog is an IP library.
	Catalog = ip.Catalog
	// InterfaceType is one of the four interface methods (Type0-Type3).
	InterfaceType = iface.Type
	// InterfaceCandidate carries the timing/area breakdown of attaching
	// an IP through one interface type.
	InterfaceCandidate = iface.Candidate
	// Shape describes one accelerated invocation (data volumes, T_SW,
	// parallel-code time).
	Shape = iface.Shape
	// DB is the implementation-method database for one application.
	DB = imp.DB
	// IMP is one implementation method (IP + interface + parallel code).
	IMP = imp.IMP
	// SCall is one s-call candidate.
	SCall = imp.SCall
	// Selection is a solved configuration with the paper's G/A/S/O
	// metrics.
	Selection = selector.Selection
	// SystemResult is the outcome of cycle-level validation.
	SystemResult = sim.SystemResult
	// Stats is an execution profile (block counts, call counts, cycles).
	Stats = profile.Stats
	// SolveStatus reports optimal/feasible/infeasible/unbounded.
	SolveStatus = ilp.Status
	// Budget bounds the work a solve may perform (branch-and-bound
	// nodes, simplex pivots); wall-clock deadlines come from the
	// context passed to the *Ctx entry points. The zero Budget is
	// unlimited.
	Budget = budget.Budget
)

// Interface types (Fig. 3 of the paper).
const (
	Type0 = iface.Type0 // software controller, no buffers
	Type1 = iface.Type1 // software controller, buffered (parallel exec)
	Type2 = iface.Type2 // hardware FSM, no buffers (DMA)
	Type3 = iface.Type3 // hardware FSM, buffered (parallel exec)
)

// Solve statuses.
const (
	Optimal    = ilp.Optimal
	Infeasible = ilp.Infeasible
	// Feasible marks an anytime result: a valid configuration returned
	// after the budget ran out, with Selection.Gap bounding how far it
	// may be from the optimum.
	Feasible = ilp.Feasible
)

// Budget-exhaustion sentinels. Selections returned alongside these are
// still valid (anytime results); match with errors.Is.
var (
	// ErrDeadline reports that the context deadline expired (or the
	// context was cancelled) during a solve.
	ErrDeadline = budget.ErrDeadline
	// ErrNodeLimit reports that the branch-and-bound node budget ran out.
	ErrNodeLimit = budget.ErrNodeLimit
)

// ErrInternal wraps a panic recovered at the public API boundary.
// Library bugs and malformed hand-built inputs surface as ordinary
// errors instead of crashing the embedding process.
var ErrInternal = errors.New("partita: internal error")

// guard converts a panic into an ErrInternal-wrapped error assigned to
// *err. Deferred at every public entry point that runs nontrivial
// machinery over user-supplied structures.
func guard(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("%w: %v", ErrInternal, r)
	}
}

// NewCatalog builds and validates an IP library.
func NewCatalog(blocks ...*IP) (*Catalog, error) { return ip.NewCatalog(blocks...) }

// Options tunes Analyze.
type Options struct {
	// Optimize runs the MOP-level peephole optimizer (MAC fusion,
	// redundant AGU/immediate elimination, store-to-load forwarding,
	// dead-code removal) on the lowered program before analysis.
	Optimize bool
	// Problem2 removes the paper's Problem-1 restrictions: s-calls to
	// the same function may be implemented differently, and software
	// bodies of s-calls may serve as parallel code of others (with the
	// induced SC-PC conflicts).
	Problem2 bool
	// DataCount overrides the per-function accelerator data volumes
	// (inputs, outputs per invocation); nil uses a loop-bound heuristic.
	DataCount func(fn string) (nIn, nOut int)
	// DefaultTrips is assumed for loops with non-static bounds (default 8).
	DefaultTrips int64
}

// Design is an analyzed application ready for selection.
//
// Concurrency: a Design is immutable after Analyze returns. The solver
// entry points — Select, SelectCtx, SelectCtxObserve, SelectPerPath,
// SelectPerPathCtx, GreedySelect, SelectPortfolio, Reselect, Sweep, and
// SweepCtx — only read the Design and build their working state per
// call, so any number of them
// may run concurrently on the same Design from different goroutines.
// This is the contract the partitad service relies on to share one
// analyzed Design across its whole worker pool. (Profile and Simulate
// construct fresh machines per call and are likewise safe to run
// concurrently.)
//
// Every solver entry point shares one immutable selection analysis
// (the point-independent half of the ILP model: implementation groups,
// areas, per-path gain coefficients), built lazily on first use —
// analyze once, select many.
type Design struct {
	// Root is the function whose s-calls are optimized.
	Root string
	// Info is the semantic analysis result.
	Info *cprog.Info
	// Prog is the lowered µ-operation program.
	Prog *mop.Program
	// Layout is the data-memory map.
	Layout *lower.Layout
	// DB is the generated IMP database.
	DB *DB

	analysisOnce sync.Once
	analysis     *selector.Analysis
}

// selAnalysis returns the Design's shared selection analysis, building
// it on first use. Safe for concurrent callers (sync.Once).
func (d *Design) selAnalysis() *selector.Analysis {
	d.analysisOnce.Do(func() { d.analysis = selector.NewAnalysis(d.DB) })
	return d.analysis
}

// MaxReachableGain is the gain of selecting every implementation
// method, minimized over execution paths — the top of the reachable
// sweep range.
func (d *Design) MaxReachableGain() int64 { return d.selAnalysis().MaxGain() }

// Analyze runs the front half of the flow on mini-C source.
func Analyze(source, root string, catalog *Catalog, opt Options) (d *Design, err error) {
	defer guard(&err)
	f, err := cprog.Parse(source)
	if err != nil {
		return nil, err
	}
	info, err := cprog.Analyze(f)
	if err != nil {
		return nil, err
	}
	prog, lay, err := lower.Compile(info)
	if err != nil {
		return nil, err
	}
	if opt.Optimize {
		mopopt.Optimize(prog)
	}
	copts := cdfg.DefaultOptions()
	if opt.DefaultTrips > 0 {
		copts.DefaultTrips = opt.DefaultTrips
	}
	db, err := imp.Generate(info, root, imp.Config{
		Catalog:   catalog,
		Area:      kernel.DefaultArea(),
		DataCount: opt.DataCount,
		Problem2:  opt.Problem2,
		CDFG:      copts,
	})
	if err != nil {
		return nil, err
	}
	return &Design{Root: root, Info: info, Prog: prog, Layout: lay, DB: db}, nil
}

// Select solves the optimal S-instruction generation problem: minimum
// total area such that every execution path gains at least requiredGain
// cycles.
func (d *Design) Select(requiredGain int64) (*Selection, error) {
	return d.SelectCtx(context.Background(), requiredGain, Budget{})
}

// SelectCtx is Select under a wall-clock deadline (via ctx) and a work
// budget. On exhaustion it degrades gracefully: if the solver holds an
// incumbent the Selection comes back with Status Feasible and a
// non-zero Gap; with no incumbent at all it falls back to the greedy
// baseline and sets Selection.Degraded. Context *cancellation* (as
// opposed to deadline expiry) aborts outright with an error wrapping
// context.Canceled.
func (d *Design) SelectCtx(ctx context.Context, requiredGain int64, bud Budget) (sel *Selection, err error) {
	defer guard(&err)
	return d.selAnalysis().Solve(ctx, selector.Problem{DB: d.DB, Required: requiredGain, Budget: bud})
}

// Incumbent is one anytime progress event of an observed solve: the
// branch-and-bound search installed a configuration better than every
// previous one. Events arrive in strictly decreasing Area order.
type Incumbent = selector.Incumbent

// SelectCtxObserve is SelectCtx with a progress observer: observe is
// invoked synchronously on the solving goroutine for each new incumbent
// of the area-minimization pass (current area, best proven bound,
// optimality gap, nodes explored). It must be fast and must not block;
// nil observe makes this identical to SelectCtx. The partitad service
// uses this hook to stream solve progress to polling clients.
func (d *Design) SelectCtxObserve(ctx context.Context, requiredGain int64, bud Budget, observe func(Incumbent)) (sel *Selection, err error) {
	defer guard(&err)
	return d.selAnalysis().Solve(ctx, selector.Problem{
		DB: d.DB, Required: requiredGain, Budget: bud, OnIncumbent: observe,
	})
}

// SelectPerPath solves with per-execution-path requirements (indexed
// like DB.Paths; entries < 0 fall back to requiredGain).
func (d *Design) SelectPerPath(requiredGain int64, perPath []int64) (*Selection, error) {
	return d.SelectPerPathCtx(context.Background(), requiredGain, perPath, Budget{})
}

// SelectPerPathCtx is SelectPerPath with a deadline and work budget,
// degrading like SelectCtx.
func (d *Design) SelectPerPathCtx(ctx context.Context, requiredGain int64, perPath []int64, bud Budget) (sel *Selection, err error) {
	defer guard(&err)
	return d.selAnalysis().Solve(ctx, selector.Problem{DB: d.DB, Required: requiredGain, PerPath: perPath, Budget: bud})
}

// GreedySelect runs the prior-art baseline (no interface choice, no
// parallel execution, gain/area greedy).
func (d *Design) GreedySelect(requiredGain int64) *Selection {
	return d.selAnalysis().Greedy(selector.Problem{DB: d.DB, Required: requiredGain})
}

// Delta is one batch of interactive edits to a selection problem: IP
// silicon-area replacements, per-execution IMP gain replacements, and
// required-gain changes (uniform or per path). The zero value edits
// nothing. Deltas drive Reselect, the incremental re-solve of an
// interactive design loop.
type Delta = selector.Delta

// PortfolioEngine names one engine of the racing solver portfolio.
type PortfolioEngine = portfolio.Engine

// Portfolio engines, in cost order.
const (
	// EngineGreedy is the gain/area-ratio baseline: microseconds, no
	// proof, no bound.
	EngineGreedy = portfolio.Greedy
	// EngineLPRound solves one LP relaxation and rounds to a feasible
	// point: milliseconds, carries the LP lower bound, proves
	// infeasibility.
	EngineLPRound = portfolio.LPRound
	// EngineExact is the parallel branch and bound — the only engine
	// that proves optimality.
	EngineExact = portfolio.Exact
)

// PortfolioAnswer is one delivered answer of a portfolio race: the
// engine that produced it, the selection, the proven relative area gap
// at delivery time, and the elapsed time since the race started.
type PortfolioAnswer = portfolio.Answer

// PortfolioOptions tunes SelectPortfolio and Reselect.
type PortfolioOptions struct {
	// Gap is the relative area gap at which a bounded candidate becomes
	// the race's first acceptable answer: a candidate with area A is
	// acceptable once the best proven lower bound L satisfies
	// (A-L)/max(1,A) ≤ Gap. 0 accepts only proven results (the settled
	// answer is then the exact solver's, byte for byte).
	Gap float64
	// Budget bounds each engine's work, like SelectCtx.
	Budget Budget
	// PerPath carries per-execution-path requirements (indexed like
	// DB.Paths; entries < 0 fall back to the uniform requirement).
	PerPath []int64
	// Warm, when non-nil, seeds the LP and exact engines from a
	// previous selection. Seeds are re-validated against the model and
	// can only tighten pruning, never change the settled answer.
	Warm *Selection
	// Observe, when non-nil, streams the exact engine's anytime
	// incumbents under the SelectCtxObserve contract.
	Observe func(Incumbent)
	// OnFirst, when non-nil, is invoked exactly once — synchronously,
	// from the engine goroutine that crossed the threshold — when the
	// first acceptable answer lands. The race continues behind it until
	// the exact proof settles or the budget runs out.
	OnFirst func(PortfolioAnswer)
}

// PortfolioResult is the settled outcome of a portfolio solve, with
// per-engine attribution: which engine won the race to the first
// acceptable answer, which produced the settled result, and whether the
// final proof confirmed the fast answer.
type PortfolioResult struct {
	// Sel is the settled selection — the exact engine's result when it
	// finished, otherwise the best bounded candidate.
	Sel *Selection
	// Engine produced Sel.
	Engine PortfolioEngine
	// Gap is the settled relative area gap (0 when proven).
	Gap float64
	// FirstEngine/FirstSel/FirstGap describe the race winner: the first
	// acceptable answer delivered (also passed to OnFirst). When no
	// engine crossed the threshold early, they repeat the settled
	// answer.
	FirstEngine PortfolioEngine
	FirstSel    *Selection
	FirstGap    float64
	// First and Settled are the times from race start to the first
	// acceptable answer and to the settled result.
	First   time.Duration
	Settled time.Duration
	// Confirmed reports that the race settled with a proof agreeing
	// with the first answer — the result a caller already acted on was
	// right.
	Confirmed bool
	// Seeded reports that the engines were warm-started from a previous
	// selection (an incremental re-solve).
	Seeded bool

	// Chaining state for Reselect: the (possibly Delta-derived)
	// analysis this result was solved over and its requirements.
	an       *selector.Analysis
	required int64
	perPath  []int64
}

func wrapPortfolio(r *portfolio.Result, an *selector.Analysis, p selector.Problem) *PortfolioResult {
	return &PortfolioResult{
		Sel:         r.Sel,
		Engine:      r.Engine,
		Gap:         r.Gap,
		FirstEngine: r.First.Engine,
		FirstSel:    r.First.Sel,
		FirstGap:    r.First.Gap,
		First:       r.First.Elapsed,
		Settled:     r.Settled,
		Confirmed:   r.Confirmed,
		Seeded:      r.Seeded,
		an:          an,
		required:    p.Required,
		perPath:     p.PerPath,
	}
}

// SelectPortfolio races the greedy baseline, LP-relaxation + rounding,
// and the exact parallel branch and bound over the Design's shared
// analysis, delivering the first *acceptable* answer (feasible, with a
// proven relative area gap ≤ opt.Gap) through opt.OnFirst while the
// exact proof keeps running behind it. A proof — the exact optimum or
// an infeasibility proof from either the LP relaxation or the exact
// search — settles the race and cancels the remaining engines. With
// Gap 0 the settled result is identical to SelectCtx's.
func (d *Design) SelectPortfolio(ctx context.Context, requiredGain int64, opt PortfolioOptions) (res *PortfolioResult, err error) {
	defer guard(&err)
	an := d.selAnalysis()
	p := selector.Problem{DB: d.DB, Required: requiredGain, PerPath: opt.PerPath, Budget: opt.Budget}
	r, err := portfolio.Run(ctx, an, p, opt.Warm, portfolio.Config{
		Gap: opt.Gap, OnIncumbent: opt.Observe, OnFirst: opt.OnFirst,
	})
	if err != nil {
		return nil, err
	}
	return wrapPortfolio(r, an, p), nil
}

// Reselect is the incremental re-solve of an interactive design loop:
// apply delta to the problem prev was solved over (copy-on-write — the
// shared analysis is never mutated and unchanged per-path coefficient
// rows are reused by reference) and race the portfolio again, seeded
// from prev's settled selection. Stale seeds the edit invalidated are
// dropped automatically, so correctness never depends on the edit being
// small. A nil prev solves the delta-edited base problem cold.
// Results chain: each Reselect solves over the previous result's
// derived analysis, so an edit session folds naturally.
func (d *Design) Reselect(ctx context.Context, prev *PortfolioResult, delta Delta, opt PortfolioOptions) (res *PortfolioResult, err error) {
	defer guard(&err)
	an := d.selAnalysis()
	var seed *Selection
	p := selector.Problem{PerPath: opt.PerPath, Budget: opt.Budget}
	if prev != nil {
		if prev.an != nil {
			an = prev.an
		}
		seed = prev.Sel
		p.Required = prev.required
		if p.PerPath == nil {
			p.PerPath = prev.perPath
		}
	}
	if opt.Warm != nil {
		seed = opt.Warm
	}
	r, na, err := portfolio.Reselect(ctx, an, seed, delta, p, portfolio.Config{
		Gap: opt.Gap, OnIncumbent: opt.Observe, OnFirst: opt.OnFirst,
	})
	if err != nil {
		return nil, err
	}
	p2 := p
	if delta.Required != nil {
		p2.Required = *delta.Required
	}
	out := wrapPortfolio(r, na, p2)
	if len(delta.PathRequired) > 0 {
		// The derived per-path vector lives in the problem Reselect
		// built; recompute it for chaining.
		if pp, perr := na.ApplyProblem(delta, p); perr == nil {
			out.perPath = pp.PerPath
		}
	}
	return out, nil
}

// Simulate validates a selection on the cycle-level system model over
// execution path pathIdx of the root function.
func (d *Design) Simulate(sel *Selection, pathIdx int) (res SystemResult, err error) {
	defer guard(&err)
	if sel == nil {
		return SystemResult{}, fmt.Errorf("partita: nil selection")
	}
	return sim.RunSelection(d.DB, sel.Chosen, pathIdx)
}

// Profile executes entry on the kernel model with the program's static
// data and returns the running-frequency profile and the return value.
func (d *Design) Profile(entry string, args ...int64) (st Stats, ret int64, err error) {
	defer guard(&err)
	m := profile.New(d.Prog, d.Layout, kernel.DefaultCost())
	ret, err = m.Run(entry, args...)
	if err != nil {
		return Stats{}, 0, err
	}
	return m.Stats(), ret, nil
}

// InterfaceCandidates enumerates the feasible interface attachments of
// one IP under an invocation shape — the trade-off table of Section 3.
func InterfaceCandidates(block *IP, s Shape) []InterfaceCandidate {
	return iface.Candidates(block, s, kernel.DefaultArea())
}

// More re-exports for the back end of the flow.
type (
	// CInstrResult summarizes C-instruction generation (code-size and
	// fetch savings).
	CInstrResult = cinstr.Result
	// Image is the encoded instruction memory + optimized µ-ROM.
	Image = encode.Image
	// SweepPoint is one point of a design-space sweep.
	SweepPoint = selector.SweepPoint
)

// GenerateCInstructions mines the lowered program for profitable
// C-class instructions (repeated µ-word sequences stored once in µ-ROM),
// weighting fetch savings by the given execution profile (pass the Stats
// from Profile, or a zero Stats for static-only weighting).
func (d *Design) GenerateCInstructions(stats Stats) *CInstrResult {
	return cinstr.Mine(d.Prog, stats.BlockCount, cinstr.Config{})
}

// Encode lays the program out in the instruction space: P-words through
// the deduplicated µ-ROM dictionary, C-instructions as single opcodes,
// and one S-instruction per distinct selected implementation.
func (d *Design) Encode(cres *CInstrResult, sel *Selection) (*Image, error) {
	var cs []*cinstr.CInstr
	if cres != nil {
		cs = cres.Chosen
	}
	var sNames []string
	if sel != nil {
		seen := map[string]bool{}
		for _, m := range sel.Chosen {
			key := m.IP.ID + "/" + m.Cand.Type.String()
			if !seen[key] {
				seen[key] = true
				sNames = append(sNames, key)
			}
		}
	}
	return encode.Build(d.Prog, cs, sNames)
}

// Sweep solves the selection across the reachable gain range and
// returns the area/gain trade-off curve; ParetoFront (selector package)
// filters it to the non-dominated frontier.
func (d *Design) Sweep(points int) ([]SweepPoint, error) {
	return d.SweepCtx(context.Background(), points, Budget{})
}

// SweepCtx is Sweep with a deadline and a per-point work budget.
// Points whose solve exhausted the budget carry Feasible/Degraded
// selections like SelectCtx results.
func (d *Design) SweepCtx(ctx context.Context, points int, bud Budget) (pts []SweepPoint, err error) {
	defer guard(&err)
	return d.selAnalysis().SweepPoints(ctx, points, bud, nil)
}

// SweepCtxObserve is SweepCtx with a progress observer: observe sees
// every incumbent of every point's solve, in point order, under the
// same contract as SelectCtxObserve. The partitad service uses this
// hook to journal incumbent checkpoints during long sweeps.
func (d *Design) SweepCtxObserve(ctx context.Context, points int, bud Budget, observe func(Incumbent)) (pts []SweepPoint, err error) {
	defer guard(&err)
	return d.selAnalysis().SweepPoints(ctx, points, bud, observe)
}

// SweepStats counts how a sweep pipeline disposed of its points: Solved
// ran the exact solver, Reused completed with zero solver work (plateau
// reuse or propagated infeasibility), GreedySeeds counts solved points
// warm-started from the greedy baseline.
type SweepStats = selector.PipelineStats

// SweepPipelinePoint is one lazily produced point of a SweepPipeline:
// its position in the gains slice, its required gain, its selection,
// and whether it was Reused — completed with zero solver work because
// its answer was proven by an earlier point.
type SweepPipelinePoint = selector.Point

// SweepPipeline is the lazy analyze-once/select-many sweep iterator:
// points are solved on demand over the Design's shared analysis, points
// whose answer is proven by an earlier point (the optimal area is
// non-decreasing in the required gain, so a looser point's selection
// that already meets a tighter requirement is optimal there too)
// complete without any search, and solved points are warm-started from
// the greedy baseline. Sweep and SweepCtx are eager adapters over this
// iterator; the partitad batch API drives one pipeline per submitted
// program to stream per-point results as they complete. A SweepPipeline
// is not safe for concurrent use; build one per consumer.
type SweepPipeline struct {
	pl *selector.Pipeline
}

// NewSweepPipeline builds a lazy sweep iterator over explicit required
// gains (ascending order maximizes reuse; any order stays correct). bud
// applies per point; observe, when non-nil, receives every incumbent of
// every solved point tagged with its point index.
func (d *Design) NewSweepPipeline(gains []int64, bud Budget, observe func(point int, inc Incumbent)) *SweepPipeline {
	return &SweepPipeline{pl: d.selAnalysis().NewPipeline(gains, bud, observe)}
}

// Next produces the next point, solving only when the answer does not
// already follow from an earlier one. ok is false when the pipeline is
// exhausted. Pass a fresh ctx per call for per-point deadlines; on
// error the returned point's Index and Required are still valid and the
// iterator has advanced, so the caller may keep going.
func (p *SweepPipeline) Next(ctx context.Context) (pt SweepPipelinePoint, ok bool, err error) {
	defer guard(&err)
	return p.pl.Next(ctx)
}

// Len reports the total number of points.
func (p *SweepPipeline) Len() int { return p.pl.Len() }

// Stats reports the dispositions of the points produced so far.
func (p *SweepPipeline) Stats() SweepStats { return p.pl.Stats() }

// ParetoFront filters sweep points to the non-dominated frontier.
func ParetoFront(points []SweepPoint) []SweepPoint { return selector.ParetoFront(points) }

// CanonicalHash returns a stable hex digest identifying an Analyze
// input: the program source, root function, every declarative field of
// every catalog block (in ID order, so map iteration order cannot leak
// in), and the declarative Options fields. Two calls with semantically
// identical inputs always produce the same digest, which is what the
// partitad service uses as its content-addressed cache key.
//
// Options.DataCount is a function and cannot be hashed; only its
// presence is mixed in. Callers whose DataCount (or any other
// out-of-band input) affects results must pass a distinguishing tag in
// extra — the service, for example, tags jobs on bundled workloads with
// the workload name. The extra strings are order-significant.
func CanonicalHash(source, root string, catalog *Catalog, opt Options, extra ...string) string {
	h := sha256.New()
	var buf [8]byte
	ws := func(s string) {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(s)))
		h.Write(buf[:])
		h.Write([]byte(s))
	}
	wi := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wf := func(v float64) { wi(int64(math.Float64bits(v))) }
	wb := func(v bool) {
		if v {
			wi(1)
		} else {
			wi(0)
		}
	}

	ws("partita-hash-v1")
	ws(source)
	ws(root)
	if catalog == nil {
		wi(-1)
	} else {
		blocks := catalog.All()
		wi(int64(len(blocks)))
		for _, b := range blocks {
			ws(b.ID)
			ws(b.Name)
			funcs := append([]string(nil), b.Funcs...)
			sort.Strings(funcs)
			wi(int64(len(funcs)))
			for _, f := range funcs {
				ws(f)
			}
			wi(int64(b.InPorts))
			wi(int64(b.OutPorts))
			wi(int64(b.InRate))
			wi(int64(b.OutRate))
			wi(int64(b.Latency))
			wb(b.Pipelined)
			wf(b.Area)
			wi(int64(b.Protocol))
			wf(b.PerfFactor)
		}
	}
	wb(opt.Optimize)
	wb(opt.Problem2)
	wi(opt.DefaultTrips)
	wb(opt.DataCount != nil)
	wi(int64(len(extra)))
	for _, e := range extra {
		ws(e)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ScheduleEntry is one slot of a post-selection kernel schedule.
type ScheduleEntry = sched.Entry

// Schedule performs the code motion a parallel-code selection implies:
// the PC nodes of every chosen PC-method move to sit immediately after
// their s-call (Definition 5's "arranged right after"), verified against
// the dependence closure. RenderSchedule pretty-prints the result.
func (d *Design) Schedule(sel *Selection, pathIdx int) ([]ScheduleEntry, error) {
	if sel == nil {
		return nil, fmt.Errorf("partita: nil selection")
	}
	return sched.Plan(d.DB, sel.Chosen, pathIdx)
}

// RenderSchedule pretty-prints a schedule with overlap markers.
func RenderSchedule(entries []ScheduleEntry) string { return sched.Render(entries) }

// GenerateRTL emits the Verilog for a selection's hardware: interface
// controller FSMs (types 2/3), protocol transformers, and — when an
// encoded image is supplied — the instruction decode unit.
func (d *Design) GenerateRTL(sel *Selection, im *Image) string {
	var atts []hwgen.Attachment
	if sel != nil {
		for _, m := range sel.Chosen {
			atts = append(atts, hwgen.Attachment{
				IP:    m.IP,
				Type:  m.Cand.Type,
				Shape: iface.Shape{NIn: m.SC.NIn, NOut: m.SC.NOut, TSW: m.SC.TSW},
			})
		}
	}
	return hwgen.GenerateSystem(atts, im)
}
