package partita

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"partita/internal/apps"
	"partita/internal/ilp"
)

// TestDesignConcurrentSelect exercises the documented Design contract: a
// single analyzed Design must support any number of parallel SelectCtx
// calls. Run under -race (the CI test job does) this doubles as a data
// race detector over the whole selector/ilp stack.
func TestDesignConcurrentSelect(t *testing.T) {
	w, err := apps.GSMEncoderWorkload()
	if err != nil {
		t.Fatal(err)
	}
	design, err := Analyze(w.Source, w.Root, w.Catalog, Options{DataCount: w.DataCount})
	if err != nil {
		t.Fatal(err)
	}

	// Three distinct targets, solved serially first as the reference.
	targets := []int64{5000, 20000, 60000}
	want := make([]*Selection, len(targets))
	for i, rg := range targets {
		sel, err := design.Select(rg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = sel
	}

	const workersPerTarget = 4
	var wg sync.WaitGroup
	errs := make(chan error, len(targets)*workersPerTarget)
	for i, rg := range targets {
		for w := 0; w < workersPerTarget; w++ {
			wg.Add(1)
			go func(i int, rg int64) {
				defer wg.Done()
				sel, err := design.SelectCtx(context.Background(), rg, Budget{})
				if err != nil {
					errs <- fmt.Errorf("rg %d: %w", rg, err)
					return
				}
				ref := want[i]
				if sel.Status != ref.Status || sel.Area != ref.Area || sel.Gain != ref.Gain {
					errs <- fmt.Errorf("rg %d: concurrent result (status %v, area %g, gain %d) != serial (status %v, area %g, gain %d)",
						rg, sel.Status, sel.Area, sel.Gain, ref.Status, ref.Area, ref.Gain)
				}
			}(i, rg)
		}
	}
	// Mix in a concurrent sweep and greedy run: the contract covers every
	// read-only entry point sharing the Design.
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, err := design.SweepCtx(context.Background(), 3, Budget{}); err != nil {
			errs <- fmt.Errorf("sweep: %w", err)
		}
	}()
	go func() {
		defer wg.Done()
		g := design.GreedySelect(targets[0])
		if g.Status != ilp.Optimal && g.Status != ilp.Feasible {
			errs <- fmt.Errorf("greedy status %v", g.Status)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestCanonicalHashStability(t *testing.T) {
	cat := demoCatalog(t)
	h1 := CanonicalHash(demoSource, "process", cat, Options{})
	h2 := CanonicalHash(demoSource, "process", cat, Options{})
	if h1 != h2 {
		t.Fatalf("hash not deterministic: %s vs %s", h1, h2)
	}
	if len(h1) != 64 {
		t.Fatalf("hash length %d, want 64 hex chars", len(h1))
	}

	// A rebuilt but identical catalog hashes the same.
	cat2 := demoCatalog(t)
	if got := CanonicalHash(demoSource, "process", cat2, Options{}); got != h1 {
		t.Error("identical catalogs hash differently")
	}

	distinct := map[string]string{
		"source":  CanonicalHash(demoSource+" ", "process", cat, Options{}),
		"root":    CanonicalHash(demoSource, "fir", cat, Options{}),
		"opts":    CanonicalHash(demoSource, "process", cat, Options{Problem2: true}),
		"trips":   CanonicalHash(demoSource, "process", cat, Options{DefaultTrips: 16}),
		"nil-cat": CanonicalHash(demoSource, "process", nil, Options{}),
		"extra":   CanonicalHash(demoSource, "process", cat, Options{}, "workload:gsm"),
	}
	seen := map[string]string{h1: "base"}
	for name, h := range distinct {
		if prev, dup := seen[h]; dup {
			t.Errorf("input variant %q collides with %q", name, prev)
		}
		seen[h] = name
	}

	// DataCount presence (not identity) is mixed in.
	withDC := CanonicalHash(demoSource, "process", cat, Options{DataCount: func(string) (int, int) { return 1, 1 }})
	if withDC == h1 {
		t.Error("DataCount presence not reflected in hash")
	}
}
