// Command reproduce regenerates every table and figure of Choi et al.
// (DAC 1999) and prints paper-reported versus measured values.
//
// Usage:
//
//	reproduce                 # everything
//	reproduce -table 1        # Table 1 only (GSM encoder)
//	reproduce -fig 9          # Fig. 9 only (Problem-2 motivation)
//	reproduce -ablation       # ablations A1-A3
//	reproduce -validate       # V1: analytical model vs cycle simulator
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"partita/internal/apps"
	"partita/internal/budget"
	"partita/internal/cdfg"
	"partita/internal/cprog"
	"partita/internal/iface"
	"partita/internal/ilp"
	"partita/internal/imp"
	"partita/internal/ip"
	"partita/internal/report"
	"partita/internal/selector"
	"partita/internal/sim"
)

// Solver budget shared by every experiment (set from flags). Exhausted
// solves surface anytime/degraded selections instead of hanging a whole
// reproduction run on one hard instance.
var (
	solveBudget  budget.Budget
	solveTimeout time.Duration
)

// solve routes every experiment's selection through the shared budget.
func solve(p selector.Problem) (*selector.Selection, error) {
	p.Budget = solveBudget
	ctx := context.Background()
	if solveTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, solveTimeout)
		defer cancel()
	}
	return selector.SolveCtx(ctx, p)
}

func main() {
	table := flag.Int("table", 0, "reproduce one table (1-3); 0 = per other flags")
	fig := flag.Int("fig", 0, "reproduce one figure (2, 4, 6, 8, 9, 10)")
	ablation := flag.Bool("ablation", false, "run ablations A1-A3")
	validate := flag.Bool("validate", false, "run V1 model-vs-simulation validation")
	e2e := flag.Bool("e2e", false, "run the live end-to-end workload sweeps (E1)")
	flag.DurationVar(&solveTimeout, "timeout", 0, "wall-clock budget per selection solve (0 = unlimited)")
	flag.IntVar(&solveBudget.MaxNodes, "max-nodes", 0, "branch-and-bound node budget per solve (0 = unlimited)")
	flag.Parse()

	runAll := *table == 0 && *fig == 0 && !*ablation && !*validate && !*e2e

	if *table == 1 || *table > 3 || runAll {
		mustTable("Table 1: GSM encoder", apps.GSMEncoderTable)
	}
	if *table == 2 || runAll {
		mustTable("Table 2: GSM decoder", apps.GSMDecoderTable)
	}
	if *table == 3 || runAll {
		mustTable("Table 3: JPEG encoder", apps.JPEGEncoderTable)
	}
	if *fig == 2 || runAll {
		fig2()
	}
	if *fig == 4 || runAll {
		fig4Templates()
	}
	if *fig == 6 || runAll {
		fig6FSMs()
	}
	if *fig == 8 || runAll {
		fig8()
	}
	if *fig == 9 || runAll {
		fig9()
	}
	if *fig == 10 || runAll {
		fig10()
	}
	if *ablation || runAll {
		ablations()
	}
	if *validate || runAll {
		validateV1()
	}
	if *e2e || runAll {
		endToEnd()
	}
}

// endToEnd sweeps all four live workloads through the full pipeline —
// the encoder/decoder pairs the paper evaluated, at reduced frame sizes.
func endToEnd() {
	fmt.Println("== E1: live end-to-end workloads (compile → profile → select → simulate) ==")
	gens := []func() (apps.Workload, error){
		apps.GSMEncoderWorkload, apps.GSMDecoderWorkload,
		apps.JPEGEncoderWorkload, apps.JPEGDecoderWorkload,
	}
	t := report.New("workload", "s-calls", "IMPs", "SW cycles", "RG (50%)", "area", "speedup")
	for _, gen := range gens {
		w, err := gen()
		if err != nil {
			fatal(err)
		}
		b, err := w.Build(false)
		if err != nil {
			fatal(err)
		}
		stats, _, err := b.Profile()
		if err != nil {
			fatal(err)
		}
		max := selector.MaxReachableGain(b.DB)
		for _, pp := range selector.MaxReachablePerPath(b.DB) {
			if pp < max {
				max = pp
			}
		}
		rg := max / 2
		sel, err := solve(selector.Problem{DB: b.DB, Required: rg})
		if err != nil {
			fatal(err)
		}
		if sel.Status != ilp.Optimal && sel.Status != ilp.Feasible {
			t.Row(w.Name, len(b.DB.SCalls), len(b.DB.IMPs), stats.Cycles, rg, sel.Status.String(), "-")
			continue
		}
		res, err := sim.RunSelection(b.DB, sel.Chosen, 0)
		if err != nil {
			fatal(err)
		}
		t.Row(w.Name, len(b.DB.SCalls), len(b.DB.IMPs), stats.Cycles, rg,
			sel.Area, fmt.Sprintf("%.2fx", res.Speedup()))
	}
	t.Fprint(os.Stdout)
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reproduce:", err)
	os.Exit(1)
}

// budgetNote annotates a selection that is valid but not proven optimal
// (anytime incumbent or greedy fallback) so budgeted runs stay honest.
func budgetNote(sel *selector.Selection) string {
	switch {
	case sel.Degraded != "":
		return "(degraded)"
	case sel.Status == ilp.Feasible:
		return fmt.Sprintf("(feasible, gap %.1f%%)", sel.Gap*100)
	}
	return ""
}

func mustTable(title string, gen func() (*imp.DB, []apps.TableRow, error)) {
	db, rows, err := gen()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("== %s (paper-calibrated IMP database: %d s-calls, %d IMPs) ==\n",
		title, len(db.SCalls), len(db.IMPs))
	t := report.New("RG", "selected implementations", "G", "A", "S", "O", "paper G", "paper A")
	for _, row := range rows {
		sel, err := solve(selector.Problem{DB: db, Required: row.RG})
		if err != nil {
			fatal(err)
		}
		if sel.Status != ilp.Optimal && sel.Status != ilp.Feasible {
			t.Row(row.RG, "("+sel.Status.String()+")", "-", "-", "-", "-", row.PaperGain, row.PaperArea)
			continue
		}
		var impls []string
		for _, m := range sel.Chosen {
			impls = append(impls, m.ID)
		}
		label := strings.Join(impls, " ")
		if note := budgetNote(sel); note != "" {
			label = note + " " + label
		}
		t.Row(row.RG, label, sel.Gain, sel.Area,
			sel.SInstructions, sel.SCallsImplemented, row.PaperGain, row.PaperArea)
	}
	t.Fprint(os.Stdout)
	fmt.Println()
}

// fig2 renders the parallel-execution timeline of Fig. 2: a buffered
// interface overlapping kernel code with the IP run, against the serial
// unbuffered schedule.
func fig2() {
	fmt.Println("== Fig. 2: concurrent execution of kernel and IP ==")
	b := &ip.IP{ID: "FIR", Name: "FIR engine", Funcs: []string{"fir"},
		InPorts: 2, OutPorts: 2, InRate: 4, OutRate: 4,
		Latency: 16, Pipelined: true, Area: 5}
	s := iface.Shape{NIn: 64, NOut: 64, TSW: 4000, TC: 150}

	for _, ty := range []iface.Type{iface.Type2, iface.Type3} {
		r, err := sim.RunSCall(sim.Config{IP: b, Type: ty, Shape: s})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("-- %v: %d cycles (overlap %d) --\n", ty, r.Cycles, r.Overlap)
		printTimeline(r.Trace)
	}

	// Application-scale view: the selected GSM encoder configuration.
	w, err := apps.GSMEncoderWorkload()
	if err != nil {
		fatal(err)
	}
	built, err := w.Build(false)
	if err != nil {
		fatal(err)
	}
	sel, err := solve(selector.Problem{DB: built.DB, Required: selector.MaxReachableGain(built.DB) / 2})
	if err != nil {
		fatal(err)
	}
	spans, err := sim.TraceSelection(built.DB, sel.Chosen, 0)
	if err != nil {
		fatal(err)
	}
	fmt.Println("-- application timeline (GSM encoder, RG = 50% of reachable) --")
	printTimeline(spans)
	fmt.Println()
}

func printTimeline(spans []sim.Span) {
	var end int64
	for _, sp := range spans {
		if sp.To > end {
			end = sp.To
		}
	}
	if end == 0 {
		return
	}
	const width = 60
	for _, sp := range spans {
		from := int(sp.From * width / end)
		to := int(sp.To * width / end)
		if to <= from {
			to = from + 1
		}
		bar := strings.Repeat(" ", from) + strings.Repeat("#", to-from)
		fmt.Printf("  %-7s |%-*s| %s [%d, %d)\n", sp.Unit, width, bar, sp.Label, sp.From, sp.To)
	}
}

// fig4Templates prints the generated software interface µ-code of
// Figs. 4-5.
func fig4Templates() {
	fmt.Println("== Figs. 4-5: generated software interface templates ==")
	b := &ip.IP{ID: "IPX", Name: "pipelined filter", Funcs: []string{"fir"},
		InPorts: 2, OutPorts: 2, InRate: 4, OutRate: 4,
		Latency: 8, Pipelined: true, Area: 3}
	s := iface.Shape{NIn: 16, NOut: 16, TSW: 1000}
	for _, ty := range []iface.Type{iface.Type0, iface.Type1} {
		tmpl, err := iface.SoftwareTemplate(ty, b, s)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("-- %v template (%d µ-words", ty, tmpl.Words)
		if ty == iface.Type0 {
			fmt.Printf(", T_IF=%d cycles for 16 in/16 out)\n", tmpl.TransferCycles)
		} else {
			fmt.Printf(", fill=%d drain=%d cycles)\n", tmpl.FillCycles, tmpl.DrainCycles)
		}
		for _, blk := range tmpl.Fn.Blocks {
			fmt.Printf("%s:\n", blk.Label)
			for _, op := range blk.Ops {
				fmt.Printf("\t%s\n", op)
			}
		}
	}
	fmt.Println()
}

// fig6FSMs prints the generated hardware controller FSMs of Figs. 6-7.
func fig6FSMs() {
	fmt.Println("== Figs. 6-7: generated hardware interface FSMs ==")
	b := &ip.IP{ID: "IPX", Name: "pipelined filter", Funcs: []string{"fir"},
		InPorts: 2, OutPorts: 2, InRate: 4, OutRate: 4,
		Latency: 8, Pipelined: true, Area: 3}
	s := iface.Shape{NIn: 16, NOut: 16, TSW: 1000}
	for _, ty := range []iface.Type{iface.Type2, iface.Type3} {
		f, err := iface.ControllerFSM(ty, b, s)
		if err != nil {
			fatal(err)
		}
		fmt.Print(f)
	}
	fmt.Println()
}

// fig8 demonstrates parallel-code extraction over multiple execution
// paths (Fig. 8): the guaranteed PC is the shortest across paths.
func fig8() {
	fmt.Println("== Fig. 8: parallel code over multiple execution paths ==")
	src := `
xmem int xin[16];
ymem int h[8];
xmem int yout[16];
int u; int v;
int fir(xmem int a[], ymem int c[], xmem int o[]) {
	int i; int acc;
	acc = 0;
	for (i = 0; i < 8; i = i + 1) { acc = acc + a[i] * c[i]; o[i] = acc; }
	return acc;
}
int top(int mode1, int mode2) {
	int r;
	r = fir(xin, h, yout);
	u = v * 3 + 7;
	if (mode1 > 0) {
		if (mode2 > 0) { u = u + 1; } else { u = u * u + v; }
	} else {
		u = u * u * u + v * v + 5;
	}
	return r + u;
}
`
	f, err := cprog.Parse(src)
	if err != nil {
		fatal(err)
	}
	info, err := cprog.Analyze(f)
	if err != nil {
		fatal(err)
	}
	g, err := cdfg.Build(info, "top", cdfg.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	res := cdfg.ParallelCode(g, g.Calls[0], cdfg.PCOptions{})
	fmt.Printf("execution paths containing fir(): %d\n", len(res.PerPath))
	for i, c := range res.PerPath {
		fmt.Printf("  path %d: PC time %d cycles\n", i, c)
	}
	fmt.Printf("guaranteed PC (minimum across paths): %d cycles, %d nodes\n\n", res.Cost, len(res.Nodes))
}

func fig9() {
	fmt.Println("== Fig. 9: Problem 2 runs one fir in the kernel while the IP runs another ==")
	p1, p2, rg, err := apps.Fig9Problem()
	if err != nil {
		fatal(err)
	}
	s1, err := solve(selector.Problem{DB: p1, Required: rg})
	if err != nil {
		fatal(err)
	}
	s2, err := solve(selector.Problem{DB: p2, Required: rg})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("required gain %d: Problem 1 → %v; Problem 2 → %v", rg, s1.Status, s2.Status)
	if s2.Status == ilp.Optimal {
		var ids []string
		for _, m := range s2.Chosen {
			ids = append(ids, m.ID)
		}
		fmt.Printf(" (gain %d, area %.1f: %s)", s2.Gain, s2.Area, strings.Join(ids, " "))
	}
	fmt.Println()
	fmt.Println()
}

func fig10() {
	fmt.Println("== Fig. 10: common s-call kept in software as another's parallel code ==")
	db, perPath, err := apps.Fig10Problem()
	if err != nil {
		fatal(err)
	}
	p1db := db.Filter(func(m *imp.IMP) bool { return len(m.PCSCalls) == 0 })
	s1, err := solve(selector.Problem{DB: p1db, PerPath: perPath})
	if err != nil {
		fatal(err)
	}
	s2, err := solve(selector.Problem{DB: db, PerPath: perPath})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("per-path requirements %v: Problem 1 → %v; Problem 2 → %v", perPath, s1.Status, s2.Status)
	if s2.Status == ilp.Optimal {
		fmt.Printf(" (path gains %v)", s2.PathGains)
	}
	fmt.Println()
	fmt.Println()
}

// ablations runs A1 (ILP vs greedy), A2 (parallel code on/off) and A3
// (interface-aware vs type-0-only) on the calibrated encoder database.
func ablations() {
	db, rows, err := apps.GSMEncoderTable()
	if err != nil {
		fatal(err)
	}

	fmt.Println("== A1: exact ILP vs greedy baseline (GSM encoder) ==")
	t := report.New("RG", "ILP area", "greedy area", "greedy/ILP")
	for _, row := range rows {
		opt, err := solve(selector.Problem{DB: db, Required: row.RG})
		if err != nil {
			fatal(err)
		}
		grd := selector.GreedyBaseline(selector.Problem{DB: db, Required: row.RG})
		if opt.Status != ilp.Optimal || grd.Status != ilp.Optimal {
			t.Row(row.RG, statusStr(opt.Status), statusStr(grd.Status), "-")
			continue
		}
		t.Row(row.RG, opt.Area, grd.Area, fmt.Sprintf("%.2f", grd.Area/opt.Area))
	}
	t.Fprint(os.Stdout)

	fmt.Println("\n== A2: parallel-code methods on/off (GSM encoder) ==")
	noPC := db.Filter(func(m *imp.IMP) bool { return !m.UsesPC })
	t2 := report.New("RG", "with PC", "without PC")
	for _, row := range rows {
		a, err := solve(selector.Problem{DB: db, Required: row.RG})
		if err != nil {
			fatal(err)
		}
		b, err := solve(selector.Problem{DB: noPC, Required: row.RG})
		if err != nil {
			fatal(err)
		}
		t2.Row(row.RG, areaOr(a), areaOr(b))
	}
	t2.Fprint(os.Stdout)

	fmt.Println("\n== A3: interface-aware vs type-0-only selection (GSM encoder) ==")
	onlyT0 := db.Filter(func(m *imp.IMP) bool { return m.Cand.Type == iface.Type0 })
	t3 := report.New("RG", "all interfaces", "type 0 only")
	for _, row := range rows {
		a, err := solve(selector.Problem{DB: db, Required: row.RG})
		if err != nil {
			fatal(err)
		}
		b, err := solve(selector.Problem{DB: onlyT0, Required: row.RG})
		if err != nil {
			fatal(err)
		}
		t3.Row(row.RG, areaOr(a), areaOr(b))
	}
	t3.Fprint(os.Stdout)
	fmt.Println()
}

func statusStr(s ilp.Status) string { return s.String() }

func areaOr(sel *selector.Selection) string {
	if sel.Status != ilp.Optimal {
		return statusStr(sel.Status)
	}
	return fmt.Sprintf("%.1f", sel.Area)
}

// validateV1 compares the analytical gain model against the cycle-level
// simulator on the end-to-end GSM encoder workload.
func validateV1() {
	fmt.Println("== V1: analytical model vs cycle-level simulation (end-to-end GSM encoder) ==")
	w, err := apps.GSMEncoderWorkload()
	if err != nil {
		fatal(err)
	}
	b, err := w.Build(false)
	if err != nil {
		fatal(err)
	}
	var total int64
	perSC := map[string]int64{}
	for _, m := range b.DB.IMPs {
		if m.TotalGain > perSC[m.SC.Name()] {
			perSC[m.SC.Name()] = m.TotalGain
		}
	}
	keys := make([]string, 0, len(perSC))
	for k := range perSC {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		total += perSC[k]
	}
	sel, err := solve(selector.Problem{DB: b.DB, Required: total / 2})
	if err != nil {
		fatal(err)
	}
	res, err := sim.RunSelection(b.DB, sel.Chosen, 0)
	if err != nil {
		fatal(err)
	}
	t := report.New("s-call", "implementation", "predicted", "simulated", "error")
	for _, r := range res.Reports {
		e := 0.0
		if r.Predicted != 0 {
			e = 100 * float64(r.Simulated-r.Predicted) / float64(r.Predicted)
		}
		t.Row(r.SCall, r.IMP, r.Predicted, r.Simulated, fmt.Sprintf("%+.1f%%", e))
	}
	t.Fprint(os.Stdout)
	fmt.Printf("path cycles: software %d → accelerated %d (speedup %.2fx; model predicted %d)\n\n",
		res.SoftwareCycles, res.AcceleratedCycles, res.Speedup(), res.PredictedCycles)
}
