// Command partita runs the full IP/interface selection flow on a mini-C
// program: compile → profile → IMP database → ILP selection → report,
// optionally validating the chosen configuration on the cycle-level
// system simulator.
//
// Usage:
//
//	partita -src app.c -root encoder -rg 50000 [-catalog lib.json]
//	        [-problem2] [-simulate] [-greedy] [-entry main]
//	        [-timeout 30s] [-max-nodes 100000] [-parallelism 4] [-json]
//
// -timeout and -max-nodes bound the exact solver; when a budget runs
// out the report carries the best configuration found so far (status
// "feasible", with its optimality gap) or the greedy fallback (status
// "degraded") instead of hanging.
//
// -parallelism runs the branch-and-bound solver with that many worker
// goroutines (-1 = one per CPU). 0 and 1 keep the serial solver with
// its reproducible node order; parallel solves prove the same optimum.
// See docs/PERFORMANCE.md.
//
// -portfolio races the greedy baseline, LP-relaxation + rounding, and
// the exact solver; the report shows which engine delivered the first
// acceptable answer (within -portfolio-gap of the proven bound) and
// which settled the result. With -portfolio-gap 0 the settled answer is
// the exact optimum, byte for byte.
//
// -json replaces the tables with one JSON document using the same
// result schema as the partitad service, so CLI and service answers
// are directly comparable.
//
// -cpuprofile and -memprofile write pprof profiles of the whole run
// (the CPU profile covers compile through report; the heap profile is
// taken at exit after a GC). `make profile-ilp` wraps them with a
// solver-heavy sweep so an ILP perf regression can be pinned to a
// function without ad-hoc patching. Profiles are only written on a
// successful exit.
//
// Without -src it runs the bundled GSM-style encoder demo. The catalog
// file is a JSON array of IP descriptors; without -catalog the demo
// library is used.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"partita/internal/apps"
	"partita/internal/ilp"
	"partita/internal/ip"
	"partita/internal/report"
	"partita/internal/service"

	"partita"
)

// jsonOutput is the -json document: the analysis summary plus one
// solved point per gain target, in the partitad wire schema.
type jsonOutput struct {
	Entry      string                 `json:"entry"`
	Cycles     int64                  `json:"cycles"`
	Ops        int64                  `json:"ops"`
	Analyze    *service.AnalyzeResult `json:"analyze"`
	Selections []jsonPoint            `json:"selections"`
}

type jsonPoint struct {
	service.SweepPointResult
	Greedy     *service.SelectionResult `json:"greedy,omitempty"`
	Simulation *jsonSim                 `json:"simulation,omitempty"`
}

type jsonSim struct {
	SoftwareCycles    int64   `json:"softwareCycles"`
	AcceleratedCycles int64   `json:"acceleratedCycles"`
	Speedup           float64 `json:"speedup"`
}

func main() {
	src := flag.String("src", "", "mini-C source file (default: bundled GSM encoder demo)")
	root := flag.String("root", "", "function whose s-calls are optimized")
	entry := flag.String("entry", "main", "entry function for profiling")
	rg := flag.Int64("rg", 0, "required performance gain (cycles); 0 = sweep 10..90% of reachable")
	catalogPath := flag.String("catalog", "", "JSON IP catalog file")
	problem2 := flag.Bool("problem2", false, "enable Problem-2 generality (per-site methods, software-PC)")
	simulate := flag.Bool("simulate", false, "validate the selection on the cycle-level simulator")
	greedy := flag.Bool("greedy", false, "also run the greedy prior-art baseline")
	schedule := flag.Bool("schedule", false, "print the post-selection kernel schedule (parallel-code motion)")
	rtl := flag.String("rtl", "", "write generated Verilog (interfaces + decoder) to this file")
	timeout := flag.Duration("timeout", 0, "wall-clock budget per selection solve (0 = unlimited)")
	maxNodes := flag.Int("max-nodes", 0, "branch-and-bound node budget per solve (0 = unlimited)")
	parallelism := flag.Int("parallelism", 0, "solver worker goroutines (0 or 1 = serial deterministic, -1 = one per CPU)")
	usePortfolio := flag.Bool("portfolio", false, "race the capacity bound, greedy, LP-rounding, and the exact solver; report per-engine attribution")
	portfolioGap := flag.Float64("portfolio-gap", 0, "relative area gap at which a portfolio candidate is acceptable (0 = proven only)")
	jsonOut := flag.Bool("json", false, "emit one JSON document in the partitad service schema instead of tables")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (taken at exit) to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(fmt.Errorf("cpuprofile: %w", err))
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(fmt.Errorf("cpuprofile: %w", err))
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(fmt.Errorf("memprofile: %w", err))
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects live data
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				fatal(fmt.Errorf("memprofile: %w", err))
			}
		}()
	}

	bud := partita.Budget{MaxNodes: *maxNodes, Parallelism: *parallelism}
	solveCtx := func() (context.Context, context.CancelFunc) {
		if *timeout > 0 {
			return context.WithTimeout(context.Background(), *timeout)
		}
		return context.Background(), func() {}
	}

	source, rootFn, cat, dataCount, err := loadInputs(*src, *root, *catalogPath)
	if err != nil {
		fatal(err)
	}

	design, err := partita.Analyze(source, rootFn, cat, partita.Options{
		Problem2:  *problem2,
		DataCount: dataCount,
	})
	if err != nil {
		fatal(err)
	}

	stats, ret, err := design.Profile(*entry)
	if err != nil {
		fatal(fmt.Errorf("profiling failed: %w", err))
	}
	out := &jsonOutput{
		Entry:   *entry,
		Cycles:  stats.Cycles,
		Ops:     stats.Ops,
		Analyze: service.NewAnalyzeResult(design),
	}
	if !*jsonOut {
		fmt.Printf("profiled %s(): returned %d after %d cycles, %d MOPs\n",
			*entry, ret, stats.Cycles, stats.Ops)
		fmt.Printf("s-call candidates: %d, implementation methods: %d, execution paths: %d\n\n",
			len(design.DB.SCalls), len(design.DB.IMPs), len(design.DB.Paths))

		scT := report.New("s-call", "function", "sites", "freq", "T_SW", "PC (P1)")
		for _, sc := range design.DB.SCalls {
			scT.Row(sc.Name(), sc.Func, len(sc.Sites), sc.TotalFreq, sc.TSW, sc.PC1.Cost)
		}
		scT.Fprint(os.Stdout)
		fmt.Println()
	}

	targets := []int64{*rg}
	if *rg == 0 {
		var total int64
		best := map[string]int64{}
		for _, m := range design.DB.IMPs {
			if m.TotalGain > best[m.SC.Name()] {
				best[m.SC.Name()] = m.TotalGain
			}
		}
		for _, g := range best {
			total += g
		}
		targets = []int64{total / 10, total * 3 / 10, total / 2, total * 7 / 10, total * 9 / 10}
	}

	selT := report.New("RG", "status", "G", "A", "S", "O", "selected")
	for _, target := range targets {
		ctx, cancel := solveCtx()
		var sel *partita.Selection
		var pres *partita.PortfolioResult
		if *usePortfolio {
			pres, err = design.SelectPortfolio(ctx, target, partita.PortfolioOptions{
				Gap: *portfolioGap, Budget: bud,
			})
			if err == nil {
				sel = pres.Sel
			}
		} else {
			sel, err = design.SelectCtx(ctx, target, bud)
		}
		cancel()
		if err != nil {
			fatal(err)
		}
		point := jsonPoint{SweepPointResult: service.SweepPointResult{
			RequiredGain: target,
			Selection:    service.NewSelectionResult(sel),
		}}
		if pres != nil {
			point.Selection = service.NewPortfolioSelectionResult(pres)
			if !*jsonOut {
				confirmed := ""
				if pres.Confirmed {
					confirmed = ", confirmed"
				}
				fmt.Printf("RG=%d portfolio: first answer from %s (gap %.1f%%) in %s; settled by %s in %s%s\n",
					target, pres.FirstEngine, pres.FirstGap*100, pres.First.Round(time.Microsecond),
					pres.Engine, pres.Settled.Round(time.Microsecond), confirmed)
			}
		}
		if *greedy {
			point.Greedy = service.NewSelectionResult(design.GreedySelect(target))
		}
		if sel.Status != ilp.Optimal && sel.Status != ilp.Feasible {
			out.Selections = append(out.Selections, point)
			selT.Row(target, sel.Status.String(), "-", "-", "-", "-", "")
			continue
		}
		var ids string
		for i, m := range sel.Chosen {
			if i > 0 {
				ids += " "
			}
			ids += m.ID
		}
		status := "optimal"
		switch {
		case sel.Degraded != "":
			status = "degraded"
		case sel.Status == ilp.Feasible:
			status = fmt.Sprintf("feasible(gap %.1f%%)", sel.Gap*100)
		}
		selT.Row(target, status, sel.Gain, sel.Area, sel.SInstructions, sel.SCallsImplemented, ids)

		if *greedy && !*jsonOut {
			g := design.GreedySelect(target)
			if g.Status == ilp.Optimal {
				selT.Row(target, "greedy", g.Gain, g.Area, g.SInstructions, g.SCallsImplemented, "")
			} else {
				selT.Row(target, "greedy:"+g.Status.String(), "-", "-", "-", "-", "")
			}
		}
		if *simulate {
			res, err := design.Simulate(sel, 0)
			if err != nil {
				fatal(err)
			}
			point.Simulation = &jsonSim{
				SoftwareCycles:    res.SoftwareCycles,
				AcceleratedCycles: res.AcceleratedCycles,
				Speedup:           res.Speedup(),
			}
			if !*jsonOut {
				fmt.Printf("RG=%d simulation: software %d → accelerated %d cycles (speedup %.2fx)\n",
					target, res.SoftwareCycles, res.AcceleratedCycles, res.Speedup())
			}
		}
		if *schedule && !*jsonOut {
			entries, err := design.Schedule(sel, 0)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("-- schedule at RG=%d --\n%s", target, partita.RenderSchedule(entries))
		}
		if *rtl != "" {
			cres := design.GenerateCInstructions(stats)
			im, err := design.Encode(cres, sel)
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*rtl, []byte(design.GenerateRTL(sel, im)), 0o644); err != nil {
				fatal(err)
			}
			if !*jsonOut {
				fmt.Printf("wrote RTL for RG=%d to %s\n", target, *rtl)
			}
			*rtl = "" // only for the first target
		}
		out.Selections = append(out.Selections, point)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}
	selT.Fprint(os.Stdout)
}

func loadInputs(srcPath, root, catalogPath string) (string, string, *partita.Catalog, func(string) (int, int), error) {
	if srcPath == "" {
		w, err := apps.GSMEncoderWorkload()
		if err != nil {
			return "", "", nil, nil, err
		}
		if root == "" {
			root = w.Root
		}
		return w.Source, root, w.Catalog, w.DataCount, nil
	}
	data, err := os.ReadFile(srcPath)
	if err != nil {
		return "", "", nil, nil, err
	}
	if root == "" {
		return "", "", nil, nil, fmt.Errorf("-root is required with -src")
	}
	var cat *partita.Catalog
	if catalogPath == "" {
		w, err := apps.GSMEncoderWorkload()
		if err != nil {
			return "", "", nil, nil, err
		}
		cat = w.Catalog
	} else {
		raw, err := os.ReadFile(catalogPath)
		if err != nil {
			return "", "", nil, nil, err
		}
		var blocks []*ip.IP
		if err := json.Unmarshal(raw, &blocks); err != nil {
			return "", "", nil, nil, fmt.Errorf("catalog %s: %w", catalogPath, err)
		}
		cat, err = partita.NewCatalog(blocks...)
		if err != nil {
			return "", "", nil, nil, err
		}
	}
	return string(data), root, cat, nil, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "partita:", err)
	os.Exit(1)
}
