// Command partitad serves ASIP synthesis over HTTP/JSON: clients
// submit analyze, select, and sweep jobs, poll their anytime progress
// (incumbent, bound, gap), and read the results. Identical jobs are
// answered from a content-addressed cache; /metrics exposes queue,
// worker, cache, and solve-latency counters in Prometheus text format.
//
// Usage:
//
//	partitad [-addr :8080] [-workers N] [-queue 64]
//	         [-design-cache 32] [-result-cache 256]
//	         [-default-timeout 0] [-max-timeout 2m]
//	         [-max-jobs 1024] [-grace 30s]
//
// On SIGINT/SIGTERM the daemon drains: new submissions are rejected
// with 503, in-flight solves see an expired deadline and return their
// best incumbents, then the process exits. -grace bounds the drain.
//
// Endpoints:
//
//	POST /v1/jobs      submit a job (service.JobSpec JSON)
//	GET  /v1/jobs      list tracked jobs
//	GET  /v1/jobs/{id} poll one job (status, progress, result)
//	GET  /metrics      Prometheus text metrics
//	GET  /healthz      liveness (503 while draining)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"partita/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
	workers := flag.Int("workers", 0, "solver pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = default 64)")
	designCache := flag.Int("design-cache", 0, "analyzed-design LRU entries (0 = default 32)")
	resultCache := flag.Int("result-cache", 0, "finished-result LRU entries (0 = default 256)")
	defaultTimeout := flag.Duration("default-timeout", 0, "deadline for jobs that set none (0 = inherit -max-timeout)")
	maxTimeout := flag.Duration("max-timeout", 0, "hard cap on any job deadline (0 = default 2m)")
	maxJobs := flag.Int("max-jobs", 0, "jobs retained for polling (0 = default 1024)")
	grace := flag.Duration("grace", 30*time.Second, "shutdown drain budget")
	flag.Parse()

	srv := service.New(service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		DesignCacheSize: *designCache,
		ResultCacheSize: *resultCache,
		DefaultTimeout:  *defaultTimeout,
		MaxTimeout:      *maxTimeout,
		MaxJobs:         *maxJobs,
	})
	srv.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("partitad: %v", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	// The resolved address line is part of the contract: integration
	// harnesses start the daemon on :0 and parse the port from here.
	fmt.Printf("partitad listening on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("partitad: %v, draining (budget %s)", sig, *grace)
	case err := <-errc:
		log.Fatalf("partitad: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// Stop accepting connections first, then drain the solver pool so
	// in-flight jobs hand back their incumbents.
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("partitad: http shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("partitad: drain incomplete: %v", err)
		os.Exit(1)
	}
	log.Println("partitad: drained, exiting")
}
