// Command partitad serves ASIP synthesis over HTTP/JSON: clients
// submit analyze, select, and sweep jobs, poll their anytime progress
// (incumbent, bound, gap), and read the results. Identical jobs are
// answered from a content-addressed cache; /metrics exposes queue,
// worker, cache, journal, and solve-latency counters in Prometheus
// text format.
//
// Usage:
//
//	partitad [-addr :8080] [-workers N] [-queue 64]
//	         [-design-cache 32] [-result-cache 256]
//	         [-default-timeout 0] [-max-timeout 2m]
//	         [-max-jobs 1024] [-max-parallelism N] [-grace 30s]
//	         [-portfolio-gap 0.05]
//	         [-max-batch-points 4096] [-max-batch-bytes 33554432]
//	         [-max-batches 128]
//	         [-journal path] [-journal-sync always|never]
//	         [-peers urls -self url] [-probe-interval 2s]
//	         [-probe-timeout 1s] [-peer-fail-after 3]
//	         [-peer-pass-after 2] [-forward-timeout 10s]
//	         [-peek-timeout 300ms]
//	         [-batch-fanout] [-batch-lease 30s] [-fanout-parallel 8]
//	         [-point-timeout 10s] [-point-retries 2]
//	         [-point-backoff 100ms] [-point-backoff-cap 2s]
//	         [-breaker-fails 3] [-breaker-cooldown 5s]
//	         [-faults spec]
//
// Jobs may request solver-level parallelism with their "parallelism"
// field; -max-parallelism caps what any single job can get, so the
// job-level worker pool times the per-solve worker count stays within
// what the operator provisioned (see docs/PERFORMANCE.md for tuning).
//
// Select jobs with "mode": "portfolio" race the capacity-bound
// witness, the greedy baseline, LP-relaxation + rounding, and the
// exact branch and bound (plus the re-priced previous answer on
// edits); the result carries per-engine attribution (winner,
// first-acceptable gap and latency, exact confirmation). POST /v1/jobs/{id}/edits derives a new
// portfolio job from a finished select job by applying interactive
// edits (IP areas, IMP gains, required gains) and warm-starts it from
// the parent's cached selection; -portfolio-gap sets the default
// acceptability threshold. See docs/SERVICE.md ("Interactive edits").
//
// With -journal, the daemon is crash-safe: every accepted job is
// recorded in an append-only, checksummed, fsync'd log before the 202
// response, running solves checkpoint their incumbents, and a restart
// replays the log — finished jobs come back with their results,
// unfinished jobs are re-enqueued, and the log is compacted. See
// docs/SERVICE.md ("Durability & recovery").
//
// With -peers (a comma-separated list of every node's base URL,
// including this one, named again by -self), the daemon joins a static
// partitad cluster: job keys are consistent-hashed onto the peer list,
// submissions landing on a non-owner are forwarded, peers are health-
// probed and a dead owner's key range fails over to its ring successor,
// and a result cached on any node is served to the whole ring before
// anyone re-solves. See docs/SERVICE.md ("Clustering").
//
// POST /v1/batches submits many sweep points as one batch: every point
// is content-addressed like a single select job, answered from the
// result cache or coalesced onto identical in-flight work where
// possible, and the remainder is grouped by program and driven through
// a shared-analysis sweep pipeline (analyze once, select many — with
// plateau reuse, infeasibility propagation, and greedy warm starts).
// Results stream incrementally over GET /v1/batches/{id}/events as
// Server-Sent Events — per-point incumbent progress, point
// completions, and a terminal batch summary, resumable by
// Last-Event-ID — with a JSON long-poll fallback (?after=N&wait=10s)
// for clients that cannot hold a streaming connection. -max-batch-points,
// -max-batch-bytes (413 when exceeded), and -max-batches bound the
// surface. On a clustered node with -batch-fanout, pending points are
// ring-routed to their owners under journaled leases with per-point
// timeout, retry/backoff, and a per-peer circuit breaker; any dispatch
// failure (peer death, lease expiry, partition) requeues the point
// locally, so the receiving node always finishes its batch. Without
// -batch-fanout batches execute locally, but per-point results still
// land in the shared result cache either way. See docs/SERVICE.md
// ("Batch sweeps & streaming", "Distributed batches").
//
// -faults (or the PARTITAD_FAULTS environment variable) enables the
// deterministic fault-injection layer for chaos testing, e.g.
// "seed=42,worker.panic=0.05,journal.write=0.1". Never set it in
// production.
//
// On SIGINT/SIGTERM the daemon drains: readiness goes 503, idle
// long-pollers are released, new submissions are rejected, in-flight
// solves see an expired deadline and return their best incumbents,
// then the process exits. -grace bounds the drain.
//
// Endpoints:
//
//	POST /v1/jobs               submit a job (service.JobSpec JSON)
//	GET  /v1/jobs               list tracked jobs (cluster-wide when clustered)
//	GET  /v1/jobs/{id}          poll one job (?wait=10s long-polls)
//	POST /v1/jobs/{id}/edits    derive a portfolio re-solve from a finished select job

//	POST /v1/batches            submit a batch of sweep points (service.BatchSpec JSON)
//	GET  /v1/batches            list tracked batches
//	GET  /v1/batches/{id}       one batch snapshot with per-point rows (?points=0 omits)
//	GET  /v1/batches/{id}/events  stream batch events (SSE; JSON long-poll via ?after=N&wait=10s)
//	GET  /metrics               Prometheus text metrics
//	GET  /healthz               liveness (200 while the process serves)
//	GET  /readyz                readiness (503 + JSON reason during replay/drain)
//	GET  /v1/cluster/ring       this node's view of peer health (cluster mode)
//	GET  /v1/cluster/owner/{k}  routing decision for one job key (cluster mode)
//	GET  /v1/cluster/cache/{k}  peer result-cache peek (cluster mode)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"partita/internal/cluster"
	"partita/internal/faults"
	"partita/internal/journal"
	"partita/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
	workers := flag.Int("workers", 0, "solver pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = default 64)")
	designCache := flag.Int("design-cache", 0, "analyzed-design LRU entries (0 = default 32)")
	resultCache := flag.Int("result-cache", 0, "finished-result LRU entries (0 = default 256)")
	defaultTimeout := flag.Duration("default-timeout", 0, "deadline for jobs that set none (0 = inherit -max-timeout)")
	maxTimeout := flag.Duration("max-timeout", 0, "hard cap on any job deadline (0 = default 2m)")
	maxJobs := flag.Int("max-jobs", 0, "jobs retained for polling (0 = default 1024)")
	maxParallelism := flag.Int("max-parallelism", 0, "cap on per-job solver parallelism (0 = GOMAXPROCS)")
	portfolioGap := flag.Float64("portfolio-gap", 0, "default acceptability gap of portfolio-mode jobs that set none (0 = default 0.05)")
	grace := flag.Duration("grace", 30*time.Second, "shutdown drain budget")
	maxBatchPoints := flag.Int("max-batch-points", 0, "points accepted in one batch (0 = default 4096)")
	maxBatchBytes := flag.Int64("max-batch-bytes", 0, "batch request body cap in bytes (0 = default 32 MiB)")
	maxBatches := flag.Int("max-batches", 0, "batches retained for polling/streaming (0 = default 128)")
	journalPath := flag.String("journal", "", "write-ahead journal path (empty = no crash safety)")
	journalSync := flag.String("journal-sync", "always", "journal fsync policy: always or never")
	peers := flag.String("peers", "", "comma-separated peer base URLs including this node (enables cluster mode)")
	self := flag.String("self", "", "this node's base URL as peers reach it (required with -peers)")
	probeInterval := flag.Duration("probe-interval", 0, "peer health probe interval (0 = default 2s)")
	probeTimeout := flag.Duration("probe-timeout", 0, "peer health probe timeout (0 = default 1s)")
	peerFailAfter := flag.Int("peer-fail-after", 0, "consecutive failures before a peer is marked dead (0 = default 3)")
	peerPassAfter := flag.Int("peer-pass-after", 0, "consecutive probe successes before a dead peer rejoins (0 = default 2)")
	forwardTimeout := flag.Duration("forward-timeout", 0, "timeout of one forwarded submit (0 = default 10s)")
	peekTimeout := flag.Duration("peek-timeout", 0, "budget for peeking peer result caches before solving (0 = default 300ms)")
	batchFanout := flag.Bool("batch-fanout", false, "ring-route batch points to their owners (cluster mode only)")
	batchLease := flag.Duration("batch-lease", 0, "per-point lease deadline for fanned-out batch points (0 = default 30s)")
	fanoutParallel := flag.Int("fanout-parallel", 0, "concurrent remote point dispatches per batch (0 = default 8)")
	pointTimeout := flag.Duration("point-timeout", 0, "timeout of one remote point dispatch attempt (0 = default 10s)")
	pointRetries := flag.Int("point-retries", 0, "retries per remote point dispatch before local requeue (0 = default 2, negative = none)")
	pointBackoff := flag.Duration("point-backoff", 0, "base backoff between point dispatch retries (0 = default 100ms)")
	pointBackoffCap := flag.Duration("point-backoff-cap", 0, "backoff cap between point dispatch retries (0 = default 2s)")
	breakerFails := flag.Int("breaker-fails", 0, "consecutive dispatch failures that open a peer's work circuit (0 = default 3)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "how long an open work circuit rejects dispatches (0 = default 5s)")
	faultSpec := flag.String("faults", "", "fault-injection spec (default: $"+faults.EnvVar+"; chaos testing only)")
	flag.Parse()

	syncPolicy, err := journal.ParseSyncPolicy(*journalSync)
	if err != nil {
		log.Fatalf("partitad: %v", err)
	}
	inj, err := faults.FromFlagOrEnv(*faultSpec)
	if err != nil {
		log.Fatalf("partitad: %v", err)
	}
	if inj.Enabled() {
		log.Printf("partitad: FAULT INJECTION ACTIVE (%s) — points: %v", inj.Spec(), inj.Points())
	}

	// The cluster node is built before the service core: the core's
	// config carries the node's hooks, and the node gets the built core
	// via Attach. Routing stays out of the execution layer.
	var node *cluster.Node
	if *peers != "" {
		if *self == "" {
			log.Fatalf("partitad: -peers requires -self (this node's base URL as peers reach it)")
		}
		node, err = cluster.New(cluster.Config{
			Self:  *self,
			Peers: strings.Split(*peers, ","),
			Probe: cluster.ProbeConfig{
				Interval:  *probeInterval,
				Timeout:   *probeTimeout,
				FailAfter: *peerFailAfter,
				PassAfter: *peerPassAfter,
			},
			ForwardTimeout:  *forwardTimeout,
			PeekTimeout:     *peekTimeout,
			PointTimeout:    *pointTimeout,
			PointRetries:    *pointRetries,
			PointBackoff:    *pointBackoff,
			PointBackoffCap: *pointBackoffCap,
			BreakerFailures: *breakerFails,
			BreakerCooldown: *breakerCooldown,
			Faults:          inj,
			Logf:            log.Printf,
		})
		if err != nil {
			log.Fatalf("partitad: %v", err)
		}
	}

	cfg := service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		DesignCacheSize: *designCache,
		ResultCacheSize: *resultCache,
		DefaultTimeout:  *defaultTimeout,
		MaxTimeout:      *maxTimeout,
		MaxJobs:         *maxJobs,
		MaxParallelism:  *maxParallelism,
		PortfolioGap:    *portfolioGap,
		MaxBatchPoints:  *maxBatchPoints,
		MaxBatchBytes:   *maxBatchBytes,
		MaxBatches:      *maxBatches,
		JournalPath:     *journalPath,
		JournalSync:     syncPolicy,
		BatchLease:      *batchLease,
		FanoutParallel:  *fanoutParallel,
		Faults:          inj,
	}
	if node != nil {
		cfg.NodeName = node.NodeName()
		cfg.RemoteLookup = node.RemoteLookup
		cfg.OwnerOf = node.OwnerOf
		if *batchFanout {
			cfg.BatchFanout = true
			cfg.RoutePoint = node.RoutePoint
			cfg.RemoteSolve = node.RemoteSolve
		}
	} else if *batchFanout {
		log.Fatalf("partitad: -batch-fanout requires cluster mode (-peers/-self)")
	}
	srv, err := service.Open(cfg)
	if err != nil {
		log.Fatalf("partitad: %v", err)
	}
	if rec := srv.Recovery(); rec.Enabled {
		log.Printf("partitad: journal replayed in %s: %d records, %d jobs restored, %d requeued (truncated %d bytes, corrupt=%v)",
			rec.ReplayDuration.Round(time.Millisecond), rec.RecordsReplayed,
			rec.JobsRestored, rec.JobsRequeued, rec.TruncatedBytes, rec.Corrupt)
	}
	srv.Start()

	handler := srv.Handler()
	if node != nil {
		node.Attach(srv)
		node.Start()
		handler = node.Handler()
		log.Printf("partitad: cluster mode: node %s, %d peers", node.NodeName(), len(strings.Split(*peers, ","))-1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("partitad: %v", err)
	}
	httpSrv := &http.Server{Handler: handler}

	// The resolved address line is part of the contract: integration
	// harnesses start the daemon on :0 and parse the port from here.
	fmt.Printf("partitad listening on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("partitad: %v, draining (budget %s)", sig, *grace)
	case err := <-errc:
		log.Fatalf("partitad: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// Drain order matters: announce ring departure first (readiness flips
	// to "leaving-ring" so peers and balancers steer away), flip draining
	// so idle long-pollers wake and disconnect, then stop accepting
	// connections, then wait for the solver pool — otherwise an idle
	// poller would pin the HTTP shutdown for the full grace budget even
	// with an empty queue.
	if node != nil {
		node.Leave()
	}
	srv.BeginDrain()
	// Keep the listener open briefly after readiness flips so balancers
	// polling /readyz observe the 503 ("leaving-ring"/"draining") instead
	// of an instant connection-refused.
	if notice := 500 * time.Millisecond; *grace > 2*notice {
		time.Sleep(notice)
	} else if *grace > 0 {
		time.Sleep(*grace / 4)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("partitad: http shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("partitad: drain incomplete: %v", err)
		if node != nil {
			node.Stop()
		}
		_ = srv.CloseJournal()
		os.Exit(1)
	}
	if node != nil {
		node.Stop()
	}
	if err := srv.CloseJournal(); err != nil {
		log.Printf("partitad: journal close: %v", err)
	}
	log.Println("partitad: drained, exiting")
}
