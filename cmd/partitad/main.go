// Command partitad serves ASIP synthesis over HTTP/JSON: clients
// submit analyze, select, and sweep jobs, poll their anytime progress
// (incumbent, bound, gap), and read the results. Identical jobs are
// answered from a content-addressed cache; /metrics exposes queue,
// worker, cache, journal, and solve-latency counters in Prometheus
// text format.
//
// Usage:
//
//	partitad [-addr :8080] [-workers N] [-queue 64]
//	         [-design-cache 32] [-result-cache 256]
//	         [-default-timeout 0] [-max-timeout 2m]
//	         [-max-jobs 1024] [-max-parallelism N] [-grace 30s]
//	         [-journal path] [-journal-sync always|never]
//	         [-faults spec]
//
// Jobs may request solver-level parallelism with their "parallelism"
// field; -max-parallelism caps what any single job can get, so the
// job-level worker pool times the per-solve worker count stays within
// what the operator provisioned (see docs/PERFORMANCE.md for tuning).
//
// With -journal, the daemon is crash-safe: every accepted job is
// recorded in an append-only, checksummed, fsync'd log before the 202
// response, running solves checkpoint their incumbents, and a restart
// replays the log — finished jobs come back with their results,
// unfinished jobs are re-enqueued, and the log is compacted. See
// docs/SERVICE.md ("Durability & recovery").
//
// -faults (or the PARTITAD_FAULTS environment variable) enables the
// deterministic fault-injection layer for chaos testing, e.g.
// "seed=42,worker.panic=0.05,journal.write=0.1". Never set it in
// production.
//
// On SIGINT/SIGTERM the daemon drains: readiness goes 503, idle
// long-pollers are released, new submissions are rejected, in-flight
// solves see an expired deadline and return their best incumbents,
// then the process exits. -grace bounds the drain.
//
// Endpoints:
//
//	POST /v1/jobs      submit a job (service.JobSpec JSON)
//	GET  /v1/jobs      list tracked jobs
//	GET  /v1/jobs/{id} poll one job (?wait=10s long-polls)
//	GET  /metrics      Prometheus text metrics
//	GET  /healthz      liveness (200 while the process serves)
//	GET  /readyz       readiness (503 during replay and drain)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"partita/internal/faults"
	"partita/internal/journal"
	"partita/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
	workers := flag.Int("workers", 0, "solver pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = default 64)")
	designCache := flag.Int("design-cache", 0, "analyzed-design LRU entries (0 = default 32)")
	resultCache := flag.Int("result-cache", 0, "finished-result LRU entries (0 = default 256)")
	defaultTimeout := flag.Duration("default-timeout", 0, "deadline for jobs that set none (0 = inherit -max-timeout)")
	maxTimeout := flag.Duration("max-timeout", 0, "hard cap on any job deadline (0 = default 2m)")
	maxJobs := flag.Int("max-jobs", 0, "jobs retained for polling (0 = default 1024)")
	maxParallelism := flag.Int("max-parallelism", 0, "cap on per-job solver parallelism (0 = GOMAXPROCS)")
	grace := flag.Duration("grace", 30*time.Second, "shutdown drain budget")
	journalPath := flag.String("journal", "", "write-ahead journal path (empty = no crash safety)")
	journalSync := flag.String("journal-sync", "always", "journal fsync policy: always or never")
	faultSpec := flag.String("faults", "", "fault-injection spec (default: $"+faults.EnvVar+"; chaos testing only)")
	flag.Parse()

	syncPolicy, err := journal.ParseSyncPolicy(*journalSync)
	if err != nil {
		log.Fatalf("partitad: %v", err)
	}
	spec := *faultSpec
	if spec == "" {
		spec = os.Getenv(faults.EnvVar)
	}
	inj, err := faults.Parse(spec)
	if err != nil {
		log.Fatalf("partitad: %v", err)
	}
	if inj.Enabled() {
		log.Printf("partitad: FAULT INJECTION ACTIVE (%s) — points: %v", inj.Spec(), inj.Points())
	}

	srv, err := service.Open(service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		DesignCacheSize: *designCache,
		ResultCacheSize: *resultCache,
		DefaultTimeout:  *defaultTimeout,
		MaxTimeout:      *maxTimeout,
		MaxJobs:         *maxJobs,
		MaxParallelism:  *maxParallelism,
		JournalPath:     *journalPath,
		JournalSync:     syncPolicy,
		Faults:          inj,
	})
	if err != nil {
		log.Fatalf("partitad: %v", err)
	}
	if rec := srv.Recovery(); rec.Enabled {
		log.Printf("partitad: journal replayed in %s: %d records, %d jobs restored, %d requeued (truncated %d bytes, corrupt=%v)",
			rec.ReplayDuration.Round(time.Millisecond), rec.RecordsReplayed,
			rec.JobsRestored, rec.JobsRequeued, rec.TruncatedBytes, rec.Corrupt)
	}
	srv.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("partitad: %v", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	// The resolved address line is part of the contract: integration
	// harnesses start the daemon on :0 and parse the port from here.
	fmt.Printf("partitad listening on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("partitad: %v, draining (budget %s)", sig, *grace)
	case err := <-errc:
		log.Fatalf("partitad: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// Drain order matters: flip draining first so readiness goes 503 and
	// idle long-pollers wake and disconnect, then stop accepting
	// connections, then wait for the solver pool — otherwise an idle
	// poller would pin the HTTP shutdown for the full grace budget even
	// with an empty queue.
	srv.BeginDrain()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("partitad: http shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("partitad: drain incomplete: %v", err)
		_ = srv.CloseJournal()
		os.Exit(1)
	}
	if err := srv.CloseJournal(); err != nil {
		log.Printf("partitad: journal close: %v", err)
	}
	log.Println("partitad: drained, exiting")
}
