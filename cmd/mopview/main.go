// Command mopview inspects the compiler side of the flow: it prints the
// lowered µ-operation (MOP) program, the 8-field µ-word packing, the
// control/data-flow graph of a function, and its parallel-code analysis.
//
// Usage:
//
//	mopview -src app.c [-fn encoder] [-asm] [-words] [-cdfg] [-pc]
//
// Without -src the bundled GSM encoder demo is shown. Without selection
// flags everything is printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"partita/internal/apps"
	"partita/internal/cdfg"
	"partita/internal/cinstr"
	"partita/internal/cprog"
	"partita/internal/encode"
	"partita/internal/lower"
	"partita/internal/mop"
	"partita/internal/opt"
	"partita/internal/report"
)

func main() {
	src := flag.String("src", "", "mini-C source file (default: bundled GSM encoder demo)")
	fn := flag.String("fn", "", "function to analyze (default: all for -asm, first for -cdfg)")
	asm := flag.Bool("asm", false, "print MOP assembly")
	words := flag.Bool("words", false, "print µ-word packing statistics")
	graph := flag.Bool("cdfg", false, "print the control/data-flow region graph")
	pc := flag.Bool("pc", false, "print parallel-code analysis per call")
	cgen := flag.Bool("cinstr", false, "mine C-instructions and show the encoded image")
	optimize := flag.Bool("opt", false, "run the MOP peephole optimizer before analysis")
	timeout := flag.Duration("timeout", 0, "abort if the whole run exceeds this wall-clock budget (0 = unlimited)")
	flag.Parse()

	if *timeout > 0 {
		// Watchdog: the analyses here are pure computation with no solver
		// budget to thread, so a hard wall-clock abort is the graceful
		// option for untrusted inputs.
		time.AfterFunc(*timeout, func() {
			fmt.Fprintf(os.Stderr, "mopview: timed out after %v\n", *timeout)
			os.Exit(2)
		})
	}

	all := !*asm && !*words && !*graph && !*pc && !*cgen

	source := ""
	if *src == "" {
		w, err := apps.GSMEncoderWorkload()
		if err != nil {
			fatal(err)
		}
		source = w.Source
		if *fn == "" {
			*fn = w.Root
		}
	} else {
		data, err := os.ReadFile(*src)
		if err != nil {
			fatal(err)
		}
		source = string(data)
	}

	// .mop files are hand-written µ-operation assembly; everything else
	// is mini-C. CDFG/PC analysis needs the C front end, so those views
	// are unavailable for raw assembly.
	var prog *mop.Program
	var lay *lower.Layout
	var info *cprog.Info
	if strings.HasSuffix(*src, ".mop") {
		p, err := mop.ParseAsm(source)
		if err != nil {
			fatal(err)
		}
		prog = p
		lay = &lower.Layout{Globals: map[string]lower.Loc{}, Funcs: map[string]*lower.FuncLayout{}}
		if *graph || *pc {
			fatal(fmt.Errorf("-cdfg/-pc need mini-C input, not .mop assembly"))
		}
	} else {
		file, err := cprog.Parse(source)
		if err != nil {
			fatal(err)
		}
		info, err = cprog.Analyze(file)
		if err != nil {
			fatal(err)
		}
		prog, lay, err = lower.Compile(info)
		if err != nil {
			fatal(err)
		}
	}
	if *optimize {
		st := opt.Optimize(prog)
		fmt.Printf("optimizer: fused %d MACs, elided %d AGU / %d LDI, forwarded %d loads, removed %d dead ops\n\n",
			st.MACFused, st.AGUElided, st.LDIElided, st.LoadsForwarded, st.DeadRemoved)
	}

	if *asm || all {
		fmt.Println("== MOP assembly ==")
		if *fn != "" && prog.Function(*fn) != nil {
			sub := mop.NewProgram("")
			sub.Add(prog.Function(*fn))
			fmt.Print(sub)
		} else {
			fmt.Print(prog)
		}
		fmt.Printf("total µ-ROM: %d words; X memory: %d words; Y memory: %d words\n\n",
			prog.CodeWords(), lay.XWords, lay.YWords)
	}

	if *words || all {
		fmt.Println("== µ-word packing ==")
		t := report.New("function", "block", "MOPs", "words", "fill")
		for _, f := range prog.SortedFuncs() {
			for _, b := range f.Blocks {
				ws := mop.PackBlock(b.Ops)
				if len(b.Ops) == 0 {
					continue
				}
				used := 0
				for i := range ws {
					used += ws[i].Used()
				}
				fill := 0.0
				if len(ws) > 0 {
					fill = float64(used) / float64(len(ws)*int(mop.NumFields))
				}
				t.Row(f.Name, b.Label, len(b.Ops), len(ws), fmt.Sprintf("%.0f%%", fill*100))
			}
		}
		t.Fprint(os.Stdout)
		fmt.Println()
	}

	if *cgen || all {
		fmt.Println("== C-instruction generation & instruction encoding ==")
		res := cinstr.Mine(prog, nil, cinstr.Config{})
		fmt.Print(res)
		im, err := encode.Build(prog, res.Chosen, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("encoded image: %d instruction words (%d bits); µ-ROM %d unique of %d words (compression %.2f)\n\n",
			len(im.Stream), im.InstrMemoryBits, im.UniqueWords, im.TotalWords, im.Compression())
	}

	if (*graph || *pc || all) && *fn != "" && info != nil {
		g, err := cdfg.Build(info, *fn, cdfg.DefaultOptions())
		if err != nil {
			fatal(err)
		}
		if *graph || all {
			fmt.Println("== CDFG region graph ==")
			fmt.Print(g)
			fmt.Println()
		}
		if *pc || all {
			fmt.Println("== parallel-code analysis (Definitions 3-5) ==")
			t := report.New("call", "site", "freq", "T_SW", "PC (Problem 1)", "PC (Problem 2)")
			for _, c := range g.Calls {
				p1 := cdfg.ParallelCode(g, c, cdfg.PCOptions{})
				p2 := cdfg.ParallelCode(g, c, cdfg.PCOptions{AllowSCalls: true})
				t.Row(c.Name, c.Site, c.Freq, c.Cost, p1.Cost, p2.Cost)
			}
			t.Fprint(os.Stdout)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mopview:", err)
	os.Exit(1)
}
