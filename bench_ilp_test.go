package partita

// The ILP solver benchmark harness measures the branch-and-bound core —
// nodes/sec and solve-latency percentiles at parallelism 1, 2, and 4
// over the GSM/JPEG models, plus the 16-point sweep — and records the
// numbers in BENCH_ilp.json at the repo root (override the path with
// the BENCH_ILP_OUT environment variable):
//
//	go test -run NoTests -bench BenchmarkILP -benchtime 20x .
//
// Each run merges into the existing file, and parallel entries record
// their p50 speedup over the serial entry of the same workload when it
// is already present — run the p1 benchmarks first (the declaration
// order above does this) to get speedup columns. Note that on a
// single-core runner the parallel entries measure coordination overhead
// rather than speedup; the >= 2x acceptance number is for a 4+ core
// machine.
//
// Beyond timing, each entry records the search internals that explain
// a speedup change: total nodes, the cold/warm LP split
// (coldLPs/warmLPs — scratch primal solves vs dual-simplex chain
// re-solves), LP pivots per node, work-stealing traffic
// (steals/stealScans), and lockWaitFrac — runtime mutex-wait seconds
// over wall-clock, the scheduler-contention share of the run.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/metrics"
	"sort"
	"sync"
	"testing"
	"time"

	"partita/internal/apps"
	"partita/internal/ilp"
	"partita/internal/imp"
	"partita/internal/selector"
)

// ilpBenchMetrics is one benchmark's entry in BENCH_ilp.json.
type ilpBenchMetrics struct {
	Parallelism int     `json:"parallelism"`
	NodesPerSec float64 `json:"nodesPerSec"`
	// NodesTotal is the total branch-and-bound node count across all
	// solves of the run; at parallelism 1 it is the deterministic serial
	// node count, the baseline parallel runs are compared against.
	NodesTotal int64   `json:"nodesTotal"`
	P50Ms      float64 `json:"p50Ms"`
	P99Ms      float64 `json:"p99Ms"`
	Solves     int     `json:"solves"`
	// SpeedupVsSerial is the serial entry's p50 over this entry's p50,
	// filled for parallel entries when the serial entry already exists
	// in the document.
	SpeedupVsSerial float64 `json:"speedupVsSerial,omitempty"`
	// The search-stats columns explain why a speedup number moved:
	// ColdLPs/WarmLPs split relaxations between the two-phase primal
	// and the dual-simplex warm path (a parallel entry with rising
	// ColdLPs means the warm chain is bailing), Steals/StealScans show
	// work distribution, LPPivotsPerNode is the simplex effort per
	// branch-and-bound node (primal + dual pivots), and LockWaitFrac is
	// the runtime's mutex-wait seconds over the run's wall-clock — the
	// shared-structure contention the deque design is meant to avoid.
	ColdLPs         int64   `json:"coldLPs"`
	WarmLPs         int64   `json:"warmLPs"`
	Steals          int64   `json:"steals"`
	StealScans      int64   `json:"stealScans"`
	LPPivotsPerNode float64 `json:"lpPivotsPerNode"`
	LockWaitFrac    float64 `json:"lockWaitFrac"`
}

// mutexWaitSeconds reads the runtime's cumulative mutex wait clock.
func mutexWaitSeconds() float64 {
	sample := []metrics.Sample{{Name: "/sync/mutex/wait/total:seconds"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() != metrics.KindFloat64 {
		return 0
	}
	return sample[0].Value.Float64()
}

var ilpBenchMu sync.Mutex

// ilpBenchOutPath locates BENCH_ilp.json: $BENCH_ILP_OUT if set, else
// next to go.mod (walking up from the package directory).
func ilpBenchOutPath() (string, error) {
	if p := os.Getenv("BENCH_ILP_OUT"); p != "" {
		return p, nil
	}
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return filepath.Join(dir, "BENCH_ilp.json"), nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// ilpRecord merges one benchmark's metrics into BENCH_ilp.json. When
// serialName is present in the document, the entry gets a p50 speedup
// relative to it.
func ilpRecord(b *testing.B, name, serialName string, m ilpBenchMetrics) {
	ilpBenchMu.Lock()
	defer ilpBenchMu.Unlock()
	path, err := ilpBenchOutPath()
	if err != nil {
		b.Logf("bench output skipped: %v", err)
		return
	}
	doc := map[string]ilpBenchMetrics{}
	if raw, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(raw, &doc)
	}
	if serialName != "" {
		if base, ok := doc[serialName]; ok && base.P50Ms > 0 && m.P50Ms > 0 {
			m.SpeedupVsSerial = base.P50Ms / m.P50Ms
			b.ReportMetric(m.SpeedupVsSerial, "speedup_x")
		}
	}
	doc[name] = m
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

func ilpPercentileMs(durs []time.Duration, p float64) float64 {
	if len(durs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}

func ilpBenchDB(b *testing.B, gen func() (*imp.DB, []apps.TableRow, error)) *imp.DB {
	b.Helper()
	db, _, err := gen()
	if err != nil {
		b.Fatal(err)
	}
	return db
}

// benchILPSelect measures select solves cycling over a band of gain
// targets (the same band the CLI sweeps), at one parallelism level.
func benchILPSelect(b *testing.B, name string, gen func() (*imp.DB, []apps.TableRow, error), par int) {
	db := ilpBenchDB(b, gen)
	max := selector.MaxReachableGain(db)
	fracs := []int64{10, 30, 50, 70, 90}
	bud := Budget{Parallelism: par}
	ctx := context.Background()

	durs := make([]time.Duration, 0, b.N)
	var nodes int64
	var search ilp.SearchStats
	b.ResetTimer()
	start := time.Now()
	wait0 := mutexWaitSeconds()
	for i := 0; i < b.N; i++ {
		rg := max * fracs[i%len(fracs)] / 100
		t0 := time.Now()
		sel, err := selector.SolveCtx(ctx, selector.Problem{DB: db, Required: rg, Budget: bud})
		if err != nil {
			b.Fatal(err)
		}
		durs = append(durs, time.Since(t0))
		nodes += int64(sel.Nodes)
		search.Add(sel.Search)
	}
	waitSec := mutexWaitSeconds() - wait0
	elapsed := time.Since(start)
	b.StopTimer()

	m := ilpBenchMetrics{
		Parallelism: par,
		NodesPerSec: float64(nodes) / elapsed.Seconds(),
		NodesTotal:  nodes,
		P50Ms:       ilpPercentileMs(durs, 0.50),
		P99Ms:       ilpPercentileMs(durs, 0.99),
		Solves:      b.N,
		ColdLPs:     search.ColdLPs,
		WarmLPs:     search.WarmLPs,
		Steals:      search.Steals,
		StealScans:  search.StealScans,
	}
	if nodes > 0 {
		m.LPPivotsPerNode = float64(search.Pivots()) / float64(nodes)
	}
	if sec := elapsed.Seconds(); sec > 0 {
		m.LockWaitFrac = waitSec / sec
	}
	b.ReportMetric(m.NodesPerSec, "nodes/sec")
	b.ReportMetric(m.P50Ms, "p50_ms")
	b.ReportMetric(m.P99Ms, "p99_ms")
	serial := ""
	if par > 1 {
		serial = name + "_p1"
	}
	ilpRecord(b, fmt.Sprintf("%s_p%d", name, par), serial, m)
}

func BenchmarkILPSelectGSMP1(b *testing.B) { benchILPSelect(b, "select_gsm", apps.GSMEncoderTable, 1) }
func BenchmarkILPSelectGSMP2(b *testing.B) { benchILPSelect(b, "select_gsm", apps.GSMEncoderTable, 2) }
func BenchmarkILPSelectGSMP4(b *testing.B) { benchILPSelect(b, "select_gsm", apps.GSMEncoderTable, 4) }

func BenchmarkILPSelectJPEGP1(b *testing.B) {
	benchILPSelect(b, "select_jpeg", apps.JPEGEncoderTable, 1)
}
func BenchmarkILPSelectJPEGP2(b *testing.B) {
	benchILPSelect(b, "select_jpeg", apps.JPEGEncoderTable, 2)
}
func BenchmarkILPSelectJPEGP4(b *testing.B) {
	benchILPSelect(b, "select_jpeg", apps.JPEGEncoderTable, 4)
}

// benchILPSweep measures the full 16-point GSM sweep, whose parallel
// driver pools points and warm-starts looser points from tighter ones.
func benchILPSweep(b *testing.B, par int) {
	db := ilpBenchDB(b, apps.GSMEncoderTable)
	bud := Budget{Parallelism: par}
	ctx := context.Background()

	durs := make([]time.Duration, 0, b.N)
	var nodes int64
	var search ilp.SearchStats
	b.ResetTimer()
	start := time.Now()
	wait0 := mutexWaitSeconds()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		pts, err := selector.SweepCtx(ctx, db, 16, bud)
		if err != nil {
			b.Fatal(err)
		}
		durs = append(durs, time.Since(t0))
		for _, p := range pts {
			nodes += int64(p.Sel.Nodes)
			search.Add(p.Sel.Search)
		}
	}
	waitSec := mutexWaitSeconds() - wait0
	elapsed := time.Since(start)
	b.StopTimer()

	m := ilpBenchMetrics{
		Parallelism: par,
		NodesPerSec: float64(nodes) / elapsed.Seconds(),
		NodesTotal:  nodes,
		P50Ms:       ilpPercentileMs(durs, 0.50),
		P99Ms:       ilpPercentileMs(durs, 0.99),
		Solves:      b.N,
		ColdLPs:     search.ColdLPs,
		WarmLPs:     search.WarmLPs,
		Steals:      search.Steals,
		StealScans:  search.StealScans,
	}
	if nodes > 0 {
		m.LPPivotsPerNode = float64(search.Pivots()) / float64(nodes)
	}
	if sec := elapsed.Seconds(); sec > 0 {
		m.LockWaitFrac = waitSec / sec
	}
	b.ReportMetric(m.NodesPerSec, "nodes/sec")
	b.ReportMetric(m.P50Ms, "sweep_p50_ms")
	serial := ""
	if par > 1 {
		serial = "sweep16_gsm_p1"
	}
	ilpRecord(b, fmt.Sprintf("sweep16_gsm_p%d", par), serial, m)
}

func BenchmarkILPSweep16P1(b *testing.B) { benchILPSweep(b, 1) }
func BenchmarkILPSweep16P4(b *testing.B) { benchILPSweep(b, 4) }
