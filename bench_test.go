package partita

// The benchmark harness regenerates every table and figure of the paper
// (see DESIGN.md §4 for the experiment index):
//
//	BenchmarkTable1GSMEncoder    — Table 1 rows (RG sweep, GSM encoder)
//	BenchmarkTable2GSMDecoder    — Table 2 rows (GSM decoder)
//	BenchmarkTable3JPEGEncoder   — Table 3 rows (JPEG encoder, hierarchy)
//	BenchmarkFig2ParallelOverlap — Fig. 2 (kernel/IP concurrency)
//	BenchmarkFig8ParallelCode    — Fig. 8 (PC over multiple paths)
//	BenchmarkFig9Problem2        — Fig. 9 (software fir as parallel code)
//	BenchmarkFig10CommonSCall    — Fig. 10 (common s-call across paths)
//	BenchmarkAblation*           — A1 greedy-vs-ILP, A2 PC on/off,
//	                               A3 interface-aware vs type-0-only
//	BenchmarkEndToEndGSM         — full pipeline on the live workload
//
// plus micro-benchmarks of the substrates (simplex, branch and bound,
// the compiler front-end, the MOP interpreter, µ-word packing, CDFG
// parallel-code extraction).
//
// Benchmarks report custom metrics: reproduced-row counts, areas, and
// the greedy/ILP area ratio — the numbers whose *shape* must match the
// publication.

import (
	"math/rand"
	"testing"

	"partita/internal/apps"
	"partita/internal/cdfg"
	"partita/internal/cprog"
	"partita/internal/iface"
	"partita/internal/ilp"
	"partita/internal/imp"
	"partita/internal/ip"
	"partita/internal/kernel"
	"partita/internal/lower"
	"partita/internal/mop"
	"partita/internal/opt"
	"partita/internal/profile"
	"partita/internal/selector"
	"partita/internal/sim"
)

// benchTable sweeps every published RG of one table and reports how many
// rows reproduce the expected area and gain.
func benchTable(b *testing.B, gen func() (*imp.DB, []apps.TableRow, error)) {
	db, rows, err := gen()
	if err != nil {
		b.Fatal(err)
	}
	var okArea, okGain int
	for i := 0; i < b.N; i++ {
		okArea, okGain = 0, 0
		for _, row := range rows {
			sel, err := selector.Solve(selector.Problem{DB: db, Required: row.RG})
			if err != nil {
				b.Fatal(err)
			}
			if sel.Status != ilp.Optimal {
				continue
			}
			if diff := sel.Area - row.WantArea; diff < 1e-6 && diff > -1e-6 {
				okArea++
			}
			if sel.Gain == row.WantGain {
				okGain++
			}
		}
	}
	b.ReportMetric(float64(len(rows)), "rows")
	b.ReportMetric(float64(okArea), "rows_area_ok")
	b.ReportMetric(float64(okGain), "rows_gain_ok")
}

func BenchmarkTable1GSMEncoder(b *testing.B)  { benchTable(b, apps.GSMEncoderTable) }
func BenchmarkTable2GSMDecoder(b *testing.B)  { benchTable(b, apps.GSMDecoderTable) }
func BenchmarkTable3JPEGEncoder(b *testing.B) { benchTable(b, apps.JPEGEncoderTable) }

// BenchmarkFig2ParallelOverlap simulates the buffered-vs-unbuffered
// schedules of Fig. 2 and reports the overlap fraction the buffered
// interface achieves.
func BenchmarkFig2ParallelOverlap(b *testing.B) {
	blk := &ip.IP{ID: "FIR", Name: "FIR", Funcs: []string{"fir"},
		InPorts: 2, OutPorts: 2, InRate: 4, OutRate: 4,
		Latency: 16, Pipelined: true, Area: 5}
	s := iface.Shape{NIn: 64, NOut: 64, TSW: 4000, TC: 150}
	var serial, overlapped sim.Result
	for i := 0; i < b.N; i++ {
		var err error
		serial, err = sim.RunSCall(sim.Config{IP: blk, Type: iface.Type2, Shape: s})
		if err != nil {
			b.Fatal(err)
		}
		overlapped, err = sim.RunSCall(sim.Config{IP: blk, Type: iface.Type3, Shape: s})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(serial.Cycles), "serial_cycles")
	b.ReportMetric(float64(overlapped.Cycles), "overlapped_cycles")
	b.ReportMetric(float64(overlapped.Overlap), "overlap_cycles")
}

const fig8Src = `
xmem int xin[16];
ymem int h[8];
xmem int yout[16];
int u; int v;
int fir(xmem int a[], ymem int c[], xmem int o[]) {
	int i; int acc;
	acc = 0;
	for (i = 0; i < 8; i = i + 1) { acc = acc + a[i] * c[i]; o[i] = acc; }
	return acc;
}
int top(int m1, int m2) {
	int r;
	r = fir(xin, h, yout);
	u = v * 3 + 7;
	if (m1 > 0) {
		if (m2 > 0) { u = u + 1; } else { u = u * u + v; }
	} else {
		u = u * u * u + v * v + 5;
	}
	return r + u;
}
`

// BenchmarkFig8ParallelCode measures parallel-code extraction over the
// multi-path structure of Fig. 8.
func BenchmarkFig8ParallelCode(b *testing.B) {
	f, err := cprog.Parse(fig8Src)
	if err != nil {
		b.Fatal(err)
	}
	info, err := cprog.Analyze(f)
	if err != nil {
		b.Fatal(err)
	}
	g, err := cdfg.Build(info, "top", cdfg.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	var res cdfg.PCResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = cdfg.ParallelCode(g, g.Calls[0], cdfg.PCOptions{})
	}
	b.ReportMetric(float64(res.Cost), "pc_cycles")
	b.ReportMetric(float64(len(res.PerPath)), "paths")
}

// BenchmarkFig9Problem2 solves the Fig. 9 instance under both problem
// formulations; Problem 1 must be infeasible where Problem 2 succeeds.
func BenchmarkFig9Problem2(b *testing.B) {
	p1, p2, rg, err := apps.Fig9Problem()
	if err != nil {
		b.Fatal(err)
	}
	var s1, s2 *selector.Selection
	for i := 0; i < b.N; i++ {
		s1, err = selector.Solve(selector.Problem{DB: p1, Required: rg})
		if err != nil {
			b.Fatal(err)
		}
		s2, err = selector.Solve(selector.Problem{DB: p2, Required: rg})
		if err != nil {
			b.Fatal(err)
		}
	}
	p1feasible := 0.0
	if s1.Status == ilp.Optimal {
		p1feasible = 1
	}
	b.ReportMetric(p1feasible, "p1_feasible")
	b.ReportMetric(float64(s2.Gain), "p2_gain")
}

// BenchmarkFig10CommonSCall solves the Fig. 10 two-path instance.
func BenchmarkFig10CommonSCall(b *testing.B) {
	db, perPath, err := apps.Fig10Problem()
	if err != nil {
		b.Fatal(err)
	}
	p1db := db.Filter(func(m *imp.IMP) bool { return len(m.PCSCalls) == 0 })
	var s2 *selector.Selection
	for i := 0; i < b.N; i++ {
		s1, err := selector.Solve(selector.Problem{DB: p1db, PerPath: perPath})
		if err != nil {
			b.Fatal(err)
		}
		if s1.Status == ilp.Optimal {
			b.Fatal("Problem 1 unexpectedly feasible")
		}
		s2, err = selector.Solve(selector.Problem{DB: db, PerPath: perPath})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(s2.PathGains[0]), "p1_gain")
	b.ReportMetric(float64(s2.PathGains[1]), "p2_gain")
}

// BenchmarkAblationGreedyVsILP compares the exact ILP with the greedy
// prior-art baseline over the Table-1 sweep (ablation A1).
func BenchmarkAblationGreedyVsILP(b *testing.B) {
	db, rows, err := apps.GSMEncoderTable()
	if err != nil {
		b.Fatal(err)
	}
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 1
		for _, row := range rows {
			opt, err := selector.Solve(selector.Problem{DB: db, Required: row.RG})
			if err != nil {
				b.Fatal(err)
			}
			grd := selector.GreedyBaseline(selector.Problem{DB: db, Required: row.RG})
			if opt.Status != ilp.Optimal || grd.Status != ilp.Optimal {
				continue
			}
			if r := grd.Area / opt.Area; r > worst {
				worst = r
			}
		}
	}
	b.ReportMetric(worst, "worst_greedy_over_ilp")
}

// BenchmarkAblationParallelCode removes parallel-code methods (A2).
func BenchmarkAblationParallelCode(b *testing.B) {
	db, rows, err := apps.GSMEncoderTable()
	if err != nil {
		b.Fatal(err)
	}
	noPC := db.Filter(func(m *imp.IMP) bool { return !m.UsesPC })
	rg := rows[len(rows)-1].RG // the hardest row needs the PC method
	var with, without *selector.Selection
	for i := 0; i < b.N; i++ {
		with, err = selector.Solve(selector.Problem{DB: db, Required: rg})
		if err != nil {
			b.Fatal(err)
		}
		without, err = selector.Solve(selector.Problem{DB: noPC, Required: rg})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(with.Area, "area_with_pc")
	if without.Status == ilp.Optimal {
		b.ReportMetric(without.Area, "area_without_pc")
	} else {
		b.ReportMetric(-1, "area_without_pc")
	}
}

// BenchmarkAblationInterfaceAware restricts the database to type-0
// interfaces (A3): joint IP+interface selection must dominate.
func BenchmarkAblationInterfaceAware(b *testing.B) {
	db, rows, err := apps.GSMEncoderTable()
	if err != nil {
		b.Fatal(err)
	}
	onlyT0 := db.Filter(func(m *imp.IMP) bool { return m.Cand.Type == iface.Type0 })
	var feasibleAll, feasibleT0 int
	for i := 0; i < b.N; i++ {
		feasibleAll, feasibleT0 = 0, 0
		for _, row := range rows {
			a, err := selector.Solve(selector.Problem{DB: db, Required: row.RG})
			if err != nil {
				b.Fatal(err)
			}
			c, err := selector.Solve(selector.Problem{DB: onlyT0, Required: row.RG})
			if err != nil {
				b.Fatal(err)
			}
			if a.Status == ilp.Optimal {
				feasibleAll++
			}
			if c.Status == ilp.Optimal {
				feasibleT0++
			}
		}
	}
	b.ReportMetric(float64(feasibleAll), "feasible_all_ifaces")
	b.ReportMetric(float64(feasibleT0), "feasible_type0_only")
}

// BenchmarkEndToEndGSM runs the complete pipeline — parse, analyze,
// lower, IMP generation, selection, simulation — on the live GSM encoder
// workload.
func BenchmarkEndToEndGSM(b *testing.B) {
	w, err := apps.GSMEncoderWorkload()
	if err != nil {
		b.Fatal(err)
	}
	var speedup float64
	for i := 0; i < b.N; i++ {
		built, err := w.Build(false)
		if err != nil {
			b.Fatal(err)
		}
		var total int64
		best := map[string]int64{}
		for _, m := range built.DB.IMPs {
			if m.TotalGain > best[m.SC.Name()] {
				best[m.SC.Name()] = m.TotalGain
			}
		}
		for _, g := range best {
			total += g
		}
		sel, err := selector.Solve(selector.Problem{DB: built.DB, Required: total / 2})
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.RunSelection(built.DB, sel.Chosen, 0)
		if err != nil {
			b.Fatal(err)
		}
		speedup = res.Speedup()
	}
	b.ReportMetric(speedup, "speedup")
}

// BenchmarkOptimizer measures the MOP peephole optimizer on the GSM
// encoder and reports the cycle reduction it achieves.
func BenchmarkOptimizer(b *testing.B) {
	w, err := apps.GSMEncoderWorkload()
	if err != nil {
		b.Fatal(err)
	}
	f, _ := cprog.Parse(w.Source)
	info, _ := cprog.Analyze(f)
	var reduction float64
	for i := 0; i < b.N; i++ {
		prog, lay, err := lower.Compile(info)
		if err != nil {
			b.Fatal(err)
		}
		m1 := profile.New(prog, lay, kernel.DefaultCost())
		if _, err := m1.Run("main"); err != nil {
			b.Fatal(err)
		}
		before := m1.Stats().Cycles
		opt.Optimize(prog)
		m2 := profile.New(prog, lay, kernel.DefaultCost())
		if _, err := m2.Run("main"); err != nil {
			b.Fatal(err)
		}
		after := m2.Stats().Cycles
		reduction = 100 * float64(before-after) / float64(before)
	}
	b.ReportMetric(reduction, "cycle_reduction_%")
}

// ---- substrate micro-benchmarks ----

func BenchmarkSimplexLP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := ilp.NewModel(ilp.Maximize)
		rng := rand.New(rand.NewSource(1))
		n := 20
		vars := make([]ilp.VarID, n)
		for j := 0; j < n; j++ {
			vars[j] = m.AddVar("x", 0, 100, rng.Float64())
		}
		for r := 0; r < 10; r++ {
			var terms []ilp.Term
			for j := 0; j < n; j++ {
				terms = append(terms, ilp.Term{Var: vars[j], Coef: rng.Float64()})
			}
			m.AddConstraint("c", terms, ilp.LE, 50)
		}
		if _, err := m.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBranchAndBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := ilp.NewModel(ilp.Maximize)
		rng := rand.New(rand.NewSource(7))
		n := 16
		var terms []ilp.Term
		for j := 0; j < n; j++ {
			v := m.AddBinary("x", float64(1+rng.Intn(40)))
			terms = append(terms, ilp.Term{Var: v, Coef: float64(1 + rng.Intn(20))})
		}
		m.AddConstraint("cap", terms, ilp.LE, 60)
		sol, err := m.Solve()
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != ilp.Optimal {
			b.Fatal(sol.Status)
		}
	}
}

func BenchmarkCompileFrontend(b *testing.B) {
	w, err := apps.GSMEncoderWorkload()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := cprog.Parse(w.Source)
		if err != nil {
			b.Fatal(err)
		}
		info, err := cprog.Analyze(f)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := lower.Compile(info); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpreter(b *testing.B) {
	w, err := apps.GSMEncoderWorkload()
	if err != nil {
		b.Fatal(err)
	}
	f, _ := cprog.Parse(w.Source)
	info, _ := cprog.Analyze(f)
	prog, lay, err := lower.Compile(info)
	if err != nil {
		b.Fatal(err)
	}
	m := profile.New(prog, lay, kernel.DefaultCost())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		if _, err := m.Run("main"); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.Stats().Ops), "mops_per_run")
}

func BenchmarkPackBlock(b *testing.B) {
	ops := make([]mop.MOP, 0, 64)
	for i := 0; i < 16; i++ {
		ops = append(ops,
			mop.MOP{Op: mop.LDX, Dst: mop.GPR(i % 8), SrcA: mop.AX(0), Imm: 1},
			mop.MOP{Op: mop.LDY, Dst: mop.GPR((i + 1) % 8), SrcA: mop.AY(0), Imm: 1},
			mop.MOP{Op: mop.MAC, Dst: mop.RegAcc, SrcA: mop.GPR(i % 8), SrcB: mop.GPR((i + 1) % 8)},
			mop.MOP{Op: mop.AGUX, Dst: mop.AX(1), Imm: 1},
		)
	}
	b.ResetTimer()
	var words int
	for i := 0; i < b.N; i++ {
		words = len(mop.PackBlock(ops))
	}
	b.ReportMetric(float64(words), "words")
}

func BenchmarkIMPGeneration(b *testing.B) {
	w, err := apps.GSMEncoderWorkload()
	if err != nil {
		b.Fatal(err)
	}
	f, _ := cprog.Parse(w.Source)
	info, _ := cprog.Analyze(f)
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		db, err := imp.Generate(info, w.Root, imp.Config{
			Catalog:   w.Catalog,
			Area:      kernel.DefaultArea(),
			DataCount: w.DataCount,
			CDFG:      cdfg.DefaultOptions(),
		})
		if err != nil {
			b.Fatal(err)
		}
		n = len(db.IMPs)
	}
	b.ReportMetric(float64(n), "imps")
}
