// Package cdfg builds the control/data-flow representation that the
// S-instruction generator of Choi et al. (DAC 1999) analyzes:
//
//   - Definition 3: a node with no transitive dependence path to or from
//     an s-call is *independent code* for that s-call (IC_i);
//   - Definition 4: an *independent code segment* (ICS_i) is a set of
//     IC_i's in the same execution branch that can be listed in sequence;
//   - Definition 5: the *parallel code* PC_i is the largest ICS_i (in
//     execution time) that can be arranged right after the s-call, taken
//     as the minimum over all execution paths following the call.
//
// The graph is built from the analyzed mini-C AST at code-segment
// granularity: every maximal call-free subtree collapses into one
// aggregate node carrying its execution-time estimate and variable
// read/write sets, while calls stay as individual nodes. The function
// body becomes a series-parallel region tree (sequence / alternative /
// loop) from which execution paths are enumerated.
package cdfg

import (
	"fmt"
	"sort"
	"strings"
)

// NodeKind classifies graph nodes.
type NodeKind int

const (
	// NodeStmt is an aggregate of call-free straight-line code (possibly
	// including whole call-free loops and conditionals).
	NodeStmt NodeKind = iota
	// NodeCall is a single function-call site.
	NodeCall
)

// Node is one schedulable unit of the function body.
type Node struct {
	ID   int
	Kind NodeKind
	// Name is the callee for calls, or a short description for
	// aggregates.
	Name string
	// Cost is the kernel execution time (cycles) of one execution of the
	// node. For calls it is the software execution time of the callee.
	Cost int64
	// Freq is how many times the node runs per invocation of the
	// function (the product of enclosing loop trip counts).
	Freq int64
	// Scope identifies the node's execution branch: nodes with equal
	// Scope run under the same branch decisions and loop nesting
	// (Definition 4's "same execution branch").
	Scope int
	// Site numbers call nodes in source order (0, 1, ...) within the
	// function; -1 for aggregates.
	Site int

	Reads, Writes map[string]bool
}

func (n *Node) String() string {
	if n.Kind == NodeCall {
		return fmt.Sprintf("call#%d %s(×%d)", n.Site, n.Name, n.Freq)
	}
	return fmt.Sprintf("stmt[%s](%d cyc ×%d)", n.Name, n.Cost, n.Freq)
}

// touches reports whether two nodes conflict on any variable
// (read/write, write/read, or write/write).
func touches(a, b *Node) bool {
	for v := range a.Writes {
		if b.Reads[v] || b.Writes[v] {
			return true
		}
	}
	for v := range a.Reads {
		if b.Writes[v] {
			return true
		}
	}
	return false
}

// RegionKind classifies region-tree nodes.
type RegionKind int

const (
	RLeaf RegionKind = iota
	RSeq
	RAlt
	RLoop
)

// Region is a series-parallel region of the function body.
type Region struct {
	Kind  RegionKind
	Kids  []*Region // RSeq: in order; RAlt: one per branch
	Leaf  *Node     // RLeaf
	Trips int64     // RLoop
}

// Graph is the analyzed body of one function.
type Graph struct {
	Fn    string
	Root  *Region
	Nodes []*Node
	// Calls lists the call nodes in source order.
	Calls []*Node
}

// Path is one execution path: the node sequence obtained by fixing every
// branch decision (loops appear once; Freq carries their repetition).
type Path []*Node

// Paths enumerates execution paths, capped at max (the cap guards
// against exponential branch structures; the paper's applications have a
// handful of top-level modes).
func (g *Graph) Paths(max int) []Path {
	paths := enumerate(g.Root, max)
	if len(paths) > max {
		paths = paths[:max]
	}
	return paths
}

func enumerate(r *Region, max int) []Path {
	if r == nil {
		return []Path{nil}
	}
	switch r.Kind {
	case RLeaf:
		return []Path{{r.Leaf}}
	case RSeq:
		acc := []Path{nil}
		for _, k := range r.Kids {
			kp := enumerate(k, max)
			var next []Path
			for _, a := range acc {
				for _, b := range kp {
					p := make(Path, 0, len(a)+len(b))
					p = append(p, a...)
					p = append(p, b...)
					next = append(next, p)
					if len(next) >= max {
						break
					}
				}
				if len(next) >= max {
					break
				}
			}
			acc = next
		}
		return acc
	case RAlt:
		var out []Path
		for _, k := range r.Kids {
			out = append(out, enumerate(k, max)...)
			if len(out) >= max {
				break
			}
		}
		if len(out) == 0 {
			out = []Path{nil}
		}
		return out
	case RLoop:
		return enumerate(r.Kids[0], max)
	}
	return []Path{nil}
}

// Closure is the transitive dependence closure over one path.
type Closure struct {
	n     int
	reach [][]bool // reach[i][j]: i (earlier) reaches j (later)
}

// DepClosure computes direct dependence edges between path positions
// (earlier → later when their effect sets conflict) and closes them
// transitively.
func DepClosure(p Path) *Closure {
	n := len(p)
	c := &Closure{n: n, reach: make([][]bool, n)}
	for i := range c.reach {
		c.reach[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if touches(p[i], p[j]) {
				c.reach[i][j] = true
			}
		}
	}
	// Transitive closure in topological (index) order.
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			if !c.reach[i][j] {
				continue
			}
			for k := j + 1; k < n; k++ {
				if c.reach[j][k] {
					c.reach[i][k] = true
				}
			}
		}
	}
	return c
}

// Reaches reports whether position i's node transitively feeds position
// j's node (i < j in path order).
func (c *Closure) Reaches(i, j int) bool { return c.reach[i][j] }

// Independent reports whether positions i and j have no dependence path
// in either direction (Definition 3 relative to either node).
func (c *Closure) Independent(i, j int) bool {
	lo, hi := i, j
	if lo > hi {
		lo, hi = hi, lo
	}
	return !c.reach[lo][hi]
}

// String renders the graph structure for debugging.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s (%d nodes, %d calls)\n", g.Fn, len(g.Nodes), len(g.Calls))
	var walk func(r *Region, depth int)
	walk = func(r *Region, depth int) {
		if r == nil {
			return
		}
		ind := strings.Repeat("  ", depth)
		switch r.Kind {
		case RLeaf:
			fmt.Fprintf(&b, "%s%s scope=%d\n", ind, r.Leaf, r.Leaf.Scope)
		case RSeq:
			fmt.Fprintf(&b, "%sseq\n", ind)
			for _, k := range r.Kids {
				walk(k, depth+1)
			}
		case RAlt:
			fmt.Fprintf(&b, "%salt\n", ind)
			for _, k := range r.Kids {
				walk(k, depth+1)
			}
		case RLoop:
			fmt.Fprintf(&b, "%sloop ×%d\n", ind, r.Trips)
			walk(r.Kids[0], depth+1)
		}
	}
	walk(g.Root, 0)
	return b.String()
}

// sortedVars renders an effect set deterministically (used in tests).
func sortedVars(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
