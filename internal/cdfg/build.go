package cdfg

import (
	"fmt"

	"partita/internal/cprog"
)

// CostWeights is the synthetic AST-level execution-time model (cycles).
// The real Partita measured MOP cycle counts on its kernel; this
// estimator is calibrated against the naive lowering of package lower
// (scalar accesses go through an AGU set-up word, so loads and stores
// cost ~2 words).
type CostWeights struct {
	Op           int64 // one ALU/MUL operation
	DivOp        int64 // divide/remainder
	Const        int64 // literal materialization
	Load         int64 // scalar load (AGU + memory word)
	Store        int64 // scalar store
	IndexExtra   int64 // extra address arithmetic of an array access
	CallOverhead int64 // call/return pipeline cost + argument homing
	Branch       int64 // one conditional evaluation and branch
	LoopIter     int64 // per-iteration loop bookkeeping (induction + test)
}

// DefaultWeights matches the kernel.DefaultCost timing of naively
// lowered code to within a few percent on the package tests.
func DefaultWeights() CostWeights {
	return CostWeights{
		Op:           1,
		DivOp:        8,
		Const:        1,
		Load:         2,
		Store:        2,
		IndexExtra:   3,
		CallOverhead: 8,
		Branch:       4,
		LoopIter:     6,
	}
}

// Options configures graph construction.
type Options struct {
	// DefaultTrips is assumed for loops whose bounds are not static
	// constants.
	DefaultTrips int64
	// MaxPaths caps execution-path enumeration.
	MaxPaths int
	Cost     CostWeights
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	return Options{DefaultTrips: 8, MaxPaths: 64, Cost: DefaultWeights()}
}

// Summary is the externally visible effect set of a function.
type Summary struct {
	ReadsGlobals  map[string]bool
	WritesGlobals map[string]bool
	// ParamRead/ParamWrite are per-parameter flags; only array
	// parameters can be written through.
	ParamRead  []bool
	ParamWrite []bool
}

// builder carries the state of one Build invocation.
type builder struct {
	info      *cprog.Info
	opt       Options
	summaries map[string]*Summary
	swCost    map[string]int64
	nextID    int
	nextScope int
	nextSite  int
	nodes     []*Node
	calls     []*Node
}

// Build constructs the region graph of fn.
func Build(info *cprog.Info, fn string, opt Options) (*Graph, error) {
	fd := info.File.Func(fn)
	if fd == nil {
		return nil, fmt.Errorf("cdfg: unknown function %q", fn)
	}
	if opt.MaxPaths <= 0 {
		opt.MaxPaths = 64
	}
	if opt.DefaultTrips <= 0 {
		opt.DefaultTrips = 8
	}
	b := &builder{
		info:      info,
		opt:       opt,
		summaries: map[string]*Summary{},
		swCost:    map[string]int64{},
	}
	root := b.buildBlock(fd.Body, 0, 1)
	return &Graph{Fn: fn, Root: root, Nodes: b.nodes, Calls: b.calls}, nil
}

// SoftwareCost estimates the pure-software execution time (cycles) of one
// invocation of fn — the T_SW of the paper's gain equations.
func SoftwareCost(info *cprog.Info, fn string, opt Options) (int64, error) {
	fd := info.File.Func(fn)
	if fd == nil {
		return 0, fmt.Errorf("cdfg: unknown function %q", fn)
	}
	if opt.DefaultTrips <= 0 {
		opt.DefaultTrips = 8
	}
	b := &builder{info: info, opt: opt, summaries: map[string]*Summary{}, swCost: map[string]int64{}}
	return b.funcCost(fn), nil
}

// Summarize exposes the effect summary of fn (globals touched and
// parameters read/written, transitively through callees).
func Summarize(info *cprog.Info, fn string) (*Summary, error) {
	if info.File.Func(fn) == nil {
		return nil, fmt.Errorf("cdfg: unknown function %q", fn)
	}
	b := &builder{info: info, summaries: map[string]*Summary{}, swCost: map[string]int64{}}
	return b.summary(fn), nil
}

// ---- effect summaries -------------------------------------------------

func (b *builder) summary(fn string) *Summary {
	if s := b.summaries[fn]; s != nil {
		return s
	}
	fd := b.info.File.Func(fn)
	s := &Summary{
		ReadsGlobals:  map[string]bool{},
		WritesGlobals: map[string]bool{},
		ParamRead:     make([]bool, len(fd.Params)),
		ParamWrite:    make([]bool, len(fd.Params)),
	}
	b.summaries[fn] = s // no recursion in the language, but be safe

	paramIdx := map[string]int{}
	for i, p := range fd.Params {
		paramIdx[p.Name] = i
	}
	locals := map[string]bool{}
	var collect func(st cprog.Stmt)
	read := func(name string) {
		if i, ok := paramIdx[name]; ok {
			s.ParamRead[i] = true
		} else if !locals[name] {
			if _, ok := b.info.Globals[name]; ok {
				s.ReadsGlobals[name] = true
			}
		}
	}
	write := func(name string) {
		if i, ok := paramIdx[name]; ok {
			s.ParamWrite[i] = true
		} else if !locals[name] {
			if _, ok := b.info.Globals[name]; ok {
				s.WritesGlobals[name] = true
			}
		}
	}
	var readExpr func(e cprog.Expr)
	readExpr = func(e cprog.Expr) {
		switch x := e.(type) {
		case *cprog.VarRef:
			read(x.Name)
		case *cprog.IndexExpr:
			read(x.Array)
			readExpr(x.Index)
		case *cprog.BinaryExpr:
			readExpr(x.X)
			readExpr(x.Y)
		case *cprog.UnaryExpr:
			readExpr(x.X)
		case *cprog.CallExpr:
			cs := b.summary(x.Callee)
			for i, a := range x.Args {
				if ref, ok := a.(*cprog.VarRef); ok && b.isArrayAt(x.Callee, i) {
					if cs.ParamRead[i] {
						read(ref.Name)
					}
					if cs.ParamWrite[i] {
						write(ref.Name)
					}
					continue
				}
				readExpr(a)
			}
			for g := range cs.ReadsGlobals {
				s.ReadsGlobals[g] = true
			}
			for g := range cs.WritesGlobals {
				s.WritesGlobals[g] = true
			}
		}
	}
	collect = func(st cprog.Stmt) {
		switch x := st.(type) {
		case *cprog.BlockStmt:
			for _, k := range x.Stmts {
				collect(k)
			}
		case *cprog.DeclStmt:
			locals[x.Decl.Name] = true
		case *cprog.AssignStmt:
			readExpr(x.RHS)
			switch l := x.LHS.(type) {
			case *cprog.VarRef:
				write(l.Name)
			case *cprog.IndexExpr:
				write(l.Array)
				readExpr(l.Index)
			}
		case *cprog.ExprStmt:
			readExpr(x.X)
		case *cprog.IfStmt:
			readExpr(x.Cond)
			collect(x.Then)
			if x.Else != nil {
				collect(x.Else)
			}
		case *cprog.WhileStmt:
			readExpr(x.Cond)
			collect(x.Body)
		case *cprog.ForStmt:
			if x.Init != nil {
				collect(x.Init)
			}
			if x.Cond != nil {
				readExpr(x.Cond)
			}
			if x.Post != nil {
				collect(x.Post)
			}
			collect(x.Body)
		case *cprog.ReturnStmt:
			if x.Value != nil {
				readExpr(x.Value)
			}
		}
	}
	collect(fd.Body)
	return s
}

func (b *builder) isArrayAt(callee string, i int) bool {
	fd := b.info.File.Func(callee)
	if fd == nil || i >= len(fd.Params) {
		return false
	}
	return fd.Params[i].IsArray
}

// ---- cost estimation ---------------------------------------------------

func (b *builder) funcCost(fn string) int64 {
	if c, ok := b.swCost[fn]; ok {
		return c
	}
	fd := b.info.File.Func(fn)
	c := b.opt.Cost.CallOverhead + int64(len(fd.Params))*b.opt.Cost.Store
	c += b.blockCost(fd.Body)
	b.swCost[fn] = c
	return c
}

func (b *builder) blockCost(blk *cprog.BlockStmt) int64 {
	var c int64
	for _, s := range blk.Stmts {
		c += b.stmtCost(s)
	}
	return c
}

func (b *builder) stmtCost(s cprog.Stmt) int64 {
	w := b.opt.Cost
	switch x := s.(type) {
	case *cprog.BlockStmt:
		return b.blockCost(x)
	case *cprog.DeclStmt:
		return int64(len(x.Decl.Init)) * (w.Const + w.Store)
	case *cprog.AssignStmt:
		c := b.exprCost(x.RHS) + w.Store
		if idx, ok := x.LHS.(*cprog.IndexExpr); ok {
			c += b.exprCost(idx.Index) + w.IndexExtra
		}
		return c
	case *cprog.ExprStmt:
		return b.exprCost(x.X)
	case *cprog.IfStmt:
		// Expected cost: condition plus the mean of the branches.
		c := b.exprCost(x.Cond) + w.Branch
		tc := b.blockCost(x.Then)
		ec := int64(0)
		if x.Else != nil {
			ec = b.blockCost(x.Else)
		}
		return c + (tc+ec)/2
	case *cprog.WhileStmt:
		trips := b.opt.DefaultTrips
		return trips * (b.exprCost(x.Cond) + w.LoopIter + b.blockCost(x.Body))
	case *cprog.ForStmt:
		trips := b.tripCount(x)
		var c int64
		if x.Init != nil {
			c += b.stmtCost(x.Init)
		}
		var iter int64 = w.LoopIter
		if x.Cond != nil {
			iter += b.exprCost(x.Cond)
		}
		if x.Post != nil {
			iter += b.stmtCost(x.Post)
		}
		return c + trips*(iter+b.blockCost(x.Body))
	case *cprog.ReturnStmt:
		if x.Value != nil {
			return b.exprCost(x.Value) + w.Op
		}
		return w.Op
	case *cprog.BreakStmt, *cprog.ContinueStmt:
		return w.Branch
	}
	return 0
}

func (b *builder) exprCost(e cprog.Expr) int64 {
	w := b.opt.Cost
	switch x := e.(type) {
	case *cprog.NumExpr:
		return w.Const
	case *cprog.VarRef:
		return w.Load
	case *cprog.IndexExpr:
		return b.exprCost(x.Index) + w.Load + w.IndexExtra
	case *cprog.UnaryExpr:
		return b.exprCost(x.X) + w.Op
	case *cprog.BinaryExpr:
		c := b.exprCost(x.X) + b.exprCost(x.Y)
		switch x.Op {
		case "/", "%":
			c += w.DivOp
		case "<", "<=", ">", ">=", "==", "!=", "&&", "||":
			c += w.Branch
		default:
			c += w.Op
		}
		return c
	case *cprog.CallExpr:
		var c int64
		for _, a := range x.Args {
			if _, ok := a.(*cprog.VarRef); ok {
				c += w.Load
				continue
			}
			c += b.exprCost(a)
		}
		return c + b.funcCost(x.Callee)
	}
	return 0
}

// tripCount statically evaluates for (i = c0; i < c1; i = i ± c) loops.
func (b *builder) tripCount(f *cprog.ForStmt) int64 {
	def := b.opt.DefaultTrips
	if f.Init == nil || f.Cond == nil || f.Post == nil {
		return def
	}
	iv, ok := f.Init.LHS.(*cprog.VarRef)
	if !ok {
		return def
	}
	c0, ok := litValue(f.Init.RHS)
	if !ok {
		return def
	}
	cond, ok := f.Cond.(*cprog.BinaryExpr)
	if !ok {
		return def
	}
	cv, ok := cond.X.(*cprog.VarRef)
	if !ok || cv.Name != iv.Name {
		return def
	}
	c1, ok := litValue(cond.Y)
	if !ok {
		return def
	}
	pv, ok := f.Post.LHS.(*cprog.VarRef)
	if !ok || pv.Name != iv.Name {
		return def
	}
	post, ok := f.Post.RHS.(*cprog.BinaryExpr)
	if !ok {
		return def
	}
	pl, plOK := post.X.(*cprog.VarRef)
	step, stOK := litValue(post.Y)
	if !plOK || !stOK || pl.Name != iv.Name {
		return def
	}
	if post.Op == "-" {
		step = -step
	} else if post.Op != "+" {
		return def
	}
	var span int64
	switch cond.Op {
	case "<":
		span = c1 - c0
	case "<=":
		span = c1 - c0 + 1
	case ">":
		span = c0 - c1
		step = -step
	case ">=":
		span = c0 - c1 + 1
		step = -step
	default:
		return def
	}
	if step <= 0 || span <= 0 {
		return def
	}
	return (span + step - 1) / step
}

// MaxStaticTrips reports the largest single-loop trip count in fn's body
// (static for-loop bounds where detectable, DefaultTrips otherwise).
// Callers use it as a proxy for the data-set size a function streams.
func MaxStaticTrips(info *cprog.Info, fn string, opt Options) (int64, error) {
	fd := info.File.Func(fn)
	if fd == nil {
		return 0, fmt.Errorf("cdfg: unknown function %q", fn)
	}
	if opt.DefaultTrips <= 0 {
		opt.DefaultTrips = 8
	}
	b := &builder{info: info, opt: opt, summaries: map[string]*Summary{}, swCost: map[string]int64{}}
	var best int64
	var walk func(s cprog.Stmt)
	walk = func(s cprog.Stmt) {
		switch x := s.(type) {
		case *cprog.BlockStmt:
			for _, k := range x.Stmts {
				walk(k)
			}
		case *cprog.IfStmt:
			walk(x.Then)
			if x.Else != nil {
				walk(x.Else)
			}
		case *cprog.WhileStmt:
			if opt.DefaultTrips > best {
				best = opt.DefaultTrips
			}
			walk(x.Body)
		case *cprog.ForStmt:
			if n := b.tripCount(x); n > best {
				best = n
			}
			walk(x.Body)
		}
	}
	walk(fd.Body)
	return best, nil
}

func litValue(e cprog.Expr) (int64, bool) {
	n, ok := e.(*cprog.NumExpr)
	if !ok {
		return 0, false
	}
	return n.Value, true
}
