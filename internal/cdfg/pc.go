package cdfg

import "math"

// PCOptions controls parallel-code extraction.
type PCOptions struct {
	// AllowSCalls permits software implementations of other s-calls
	// inside the parallel code (the paper's Problem 2). Under Problem 1
	// they are excluded.
	AllowSCalls bool
	// IsSCall reports whether a callee is an s-call candidate (i.e. an
	// IP exists for it). Non-candidate calls may always appear in
	// parallel code. A nil IsSCall treats every call as a candidate.
	IsSCall func(callee string) bool
	// MaxPaths caps execution-path enumeration (default 64).
	MaxPaths int
}

// PCResult is the parallel code of one s-call.
type PCResult struct {
	// Cost is the guaranteed parallel-code execution time T_C per
	// execution of the call: the minimum over all execution paths
	// following the call (Definition 5).
	Cost int64
	// Nodes is the parallel code of the limiting (minimum-time) path.
	Nodes []*Node
	// SCallNodes lists the s-call nodes contained in Nodes; non-empty
	// only when AllowSCalls is set. These induce the paper's SC-PC
	// conflicts.
	SCallNodes []*Node
	// PerPath records the PC time found on each path containing the
	// call (diagnostics and tests).
	PerPath []int64
}

// ParallelCode extracts PC_i for the given call node per Definitions 3-5:
// on every execution path containing the call, take the maximal set of
// later nodes in the same execution branch that (a) have no transitive
// dependence relation with the call and (b) whose intervening
// dependence predecessors are all included — i.e. the largest independent
// code segment arrangeable immediately after the call. The guaranteed PC
// is the minimum-time one across paths.
func ParallelCode(g *Graph, call *Node, opt PCOptions) PCResult {
	if opt.MaxPaths <= 0 {
		opt.MaxPaths = 64
	}
	isSC := opt.IsSCall
	if isSC == nil {
		isSC = func(string) bool { return true }
	}

	best := PCResult{Cost: math.MaxInt64}
	found := false
	for _, path := range g.Paths(opt.MaxPaths) {
		k := -1
		for i, n := range path {
			if n == call {
				k = i
				break
			}
		}
		if k < 0 {
			continue
		}
		found = true
		clo := DepClosure(path)
		included := make([]bool, len(path))
		var cost int64
		var nodes, scNodes []*Node
		for j := k + 1; j < len(path); j++ {
			n := path[j]
			if n.Scope != call.Scope {
				continue
			}
			if !clo.Independent(k, j) {
				continue
			}
			if n.Kind == NodeCall && isSC(n.Name) && !opt.AllowSCalls {
				continue
			}
			ok := true
			for p := k + 1; p < j; p++ {
				if clo.Reaches(p, j) && !included[p] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			included[j] = true
			cost += n.Cost
			nodes = append(nodes, n)
			if n.Kind == NodeCall && isSC(n.Name) {
				scNodes = append(scNodes, n)
			}
		}
		best.PerPath = append(best.PerPath, cost)
		if cost < best.Cost {
			best.Cost = cost
			best.Nodes = nodes
			best.SCallNodes = scNodes
		}
	}
	if !found {
		return PCResult{}
	}
	return best
}

// CallNode returns the i'th call node (source order), or nil.
func (g *Graph) CallNode(i int) *Node {
	if i < 0 || i >= len(g.Calls) {
		return nil
	}
	return g.Calls[i]
}

// CallsTo returns the call nodes whose callee is name, in source order.
func (g *Graph) CallsTo(name string) []*Node {
	var out []*Node
	for _, c := range g.Calls {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// PathGainDemand computes, for each enumerated execution path, the list
// of call nodes on it. The selector uses this to build the paper's
// per-path performance constraints (Eq. 2).
func (g *Graph) PathGainDemand(maxPaths int) [][]*Node {
	if maxPaths <= 0 {
		maxPaths = 64
	}
	var out [][]*Node
	for _, p := range g.Paths(maxPaths) {
		var calls []*Node
		for _, n := range p {
			if n.Kind == NodeCall {
				calls = append(calls, n)
			}
		}
		out = append(out, calls)
	}
	return out
}

// PathCost sums Freq-weighted node costs of a path: the software
// execution time of one run of the function down that path.
func PathCost(p Path) int64 {
	var t int64
	for _, n := range p {
		t += n.Cost * n.Freq
	}
	return t
}
