package cdfg

import (
	"testing"

	"partita/internal/cprog"
)

func build(t *testing.T, src, fn string) (*Graph, *cprog.Info) {
	t.Helper()
	f, err := cprog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := cprog.Analyze(f)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	g, err := Build(info, fn, DefaultOptions())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return g, info
}

const dspLib = `
xmem int xin[16];
ymem int h[8];
xmem int yout[16];
ymem int spare[16];
int u;
int v;
int w;

int fir(xmem int a[], ymem int c[], xmem int o[]) {
	int i; int acc;
	acc = 0;
	for (i = 0; i < 8; i = i + 1) { acc = acc + a[i] * c[i]; o[i] = acc; }
	return acc;
}
int dct(xmem int a[], ymem int o[]) {
	int i; int s;
	s = 0;
	for (i = 0; i < 8; i = i + 1) { s = s + a[i] * i; o[i] = s; }
	return s;
}
`

func TestIndependentCodeBecomesPC(t *testing.T) {
	src := dspLib + `
int top() {
	int r;
	r = fir(xin, h, yout);
	u = v * 3 + 7;       // independent of fir: PC candidate
	w = r + 1;           // depends on fir's result
	return w + u;
}`
	g, _ := build(t, src, "top")
	if len(g.Calls) != 1 {
		t.Fatalf("calls = %d, want 1", len(g.Calls))
	}
	res := ParallelCode(g, g.Calls[0], PCOptions{})
	if res.Cost <= 0 {
		t.Fatalf("PC cost = %d, want > 0 (u=v*3+7 is independent)", res.Cost)
	}
	// The PC must not include the dependent node (which reads $ret0).
	for _, n := range res.Nodes {
		if n.Reads["$ret0"] {
			t.Errorf("PC contains node dependent on the call: %v", n)
		}
	}
}

func TestDependentCodeExcludedFromPC(t *testing.T) {
	src := dspLib + `
int top() {
	int r;
	r = fir(xin, h, yout);
	w = r + 1;
	u = w * 2;
	return u;
}`
	g, _ := build(t, src, "top")
	res := ParallelCode(g, g.Calls[0], PCOptions{})
	if res.Cost != 0 {
		t.Errorf("PC cost = %d, want 0 (everything depends on the call)", res.Cost)
	}
}

func TestMemorySideEffectsBlockPC(t *testing.T) {
	// fir writes yout; a later read of yout is dependent even without
	// using the scalar result.
	src := dspLib + `
int top() {
	int r;
	r = fir(xin, h, yout);
	u = yout[0] + 1;
	return u + r;
}`
	g, _ := build(t, src, "top")
	res := ParallelCode(g, g.Calls[0], PCOptions{})
	if res.Cost != 0 {
		t.Errorf("PC cost = %d, want 0 (yout is written by fir)", res.Cost)
	}
}

// TestParallelCodeFourPaths reproduces the shape of the paper's Fig. 8:
// four execution paths after fir(); the guaranteed PC is the shortest
// across paths.
func TestParallelCodeFourPaths(t *testing.T) {
	src := dspLib + `
int top(int mode1, int mode2) {
	int r;
	r = fir(xin, h, yout);
	if (mode1 > 0) {
		if (mode2 > 0) {
			u = v + 1;     // P1: tiny independent code
		} else {
			u = v * v + v; // P2
		}
	} else {
		u = v * v * v * v + v * v + v + 5; // P3/P4 larger
	}
	return r + u;
}`
	g, _ := build(t, src, "top")
	res := ParallelCode(g, g.Calls[0], PCOptions{})
	// Branch code is in different scopes than the call, so candidate PC
	// nodes come only from the call's own branch level. The "cond"
	// evaluation nodes read mode1/mode2, independent of fir.
	if len(res.PerPath) < 3 {
		t.Fatalf("paths containing the call = %d, want >= 3", len(res.PerPath))
	}
	min := res.PerPath[0]
	for _, c := range res.PerPath {
		if c < min {
			min = c
		}
	}
	if res.Cost != min {
		t.Errorf("PC cost = %d, want min across paths %d (per-path %v)", res.Cost, min, res.PerPath)
	}
}

func TestScopeRestrictsPC(t *testing.T) {
	// Independent code inside a conditional cannot be the PC of a call
	// outside it (different execution branch).
	src := dspLib + `
int top(int mode) {
	int r;
	r = fir(xin, h, yout);
	if (mode > 0) {
		u = v * 3; // independent but in another branch
	}
	return r;
}`
	g, _ := build(t, src, "top")
	res := ParallelCode(g, g.Calls[0], PCOptions{})
	for _, n := range res.Nodes {
		if n.Writes["u"] {
			t.Errorf("PC includes node from another execution branch: %v", n)
		}
	}
}

func TestProblem2AllowsSCallInPC(t *testing.T) {
	// Three independent fir-like calls on disjoint arrays: under
	// Problem 1 the PC of the first call is empty-ish; under Problem 2 it
	// may contain the software body of another s-call (Fig. 9).
	src := dspLib + `
xmem int a2[16];
ymem int h2[8];
xmem int o2[16];
int top() {
	int r1; int r2;
	r1 = fir(xin, h, yout);
	r2 = fir(a2, h2, o2);
	return r1 + r2;
}`
	g, _ := build(t, src, "top")
	if len(g.Calls) != 2 {
		t.Fatalf("calls = %d, want 2", len(g.Calls))
	}
	p1 := ParallelCode(g, g.Calls[0], PCOptions{AllowSCalls: false})
	p2 := ParallelCode(g, g.Calls[0], PCOptions{AllowSCalls: true})
	if len(p1.SCallNodes) != 0 {
		t.Errorf("Problem 1 PC contains s-calls: %v", p1.SCallNodes)
	}
	if len(p2.SCallNodes) != 1 || p2.SCallNodes[0].Name != "fir" {
		t.Fatalf("Problem 2 PC s-calls = %v, want the second fir", p2.SCallNodes)
	}
	if p2.Cost <= p1.Cost {
		t.Errorf("Problem 2 PC (%d) should exceed Problem 1 PC (%d)", p2.Cost, p1.Cost)
	}
}

func TestNonSCallCallsMayBePC(t *testing.T) {
	src := dspLib + `
int helper(int k) { return k * 3 + 1; }
int top() {
	int r1; int r2;
	r1 = fir(xin, h, yout);
	r2 = helper(5);
	return r1 + r2;
}`
	g, _ := build(t, src, "top")
	isSC := func(name string) bool { return name == "fir" || name == "dct" }
	res := ParallelCode(g, g.Calls[0], PCOptions{IsSCall: isSC})
	foundHelper := false
	for _, n := range res.Nodes {
		if n.Kind == NodeCall && n.Name == "helper" {
			foundHelper = true
		}
	}
	if !foundHelper {
		t.Error("helper() call should be usable as parallel code under Problem 1")
	}
	if len(res.SCallNodes) != 0 {
		t.Errorf("SCallNodes = %v, want none", res.SCallNodes)
	}
}

func TestCallsInsideLoopsHaveFreq(t *testing.T) {
	src := dspLib + `
int top() {
	int i; int acc;
	acc = 0;
	for (i = 0; i < 6; i = i + 1) {
		acc = acc + fir(xin, h, yout);
	}
	return acc;
}`
	g, _ := build(t, src, "top")
	if len(g.Calls) != 1 {
		t.Fatalf("calls = %d", len(g.Calls))
	}
	if g.Calls[0].Freq != 6 {
		t.Errorf("call freq = %d, want 6 (static trip count)", g.Calls[0].Freq)
	}
}

func TestTripCountDetection(t *testing.T) {
	cases := []struct {
		hdr   string
		trips int64
	}{
		{"for (i = 0; i < 10; i = i + 1)", 10},
		{"for (i = 0; i <= 10; i = i + 1)", 11},
		{"for (i = 2; i < 10; i = i + 2)", 4},
		{"for (i = 0; i < 7; i = i + 2)", 4},
		{"for (i = 10; i > 0; i = i - 1)", 10},
		{"for (i = 0; i < n; i = i + 1)", 8}, // dynamic → default
	}
	for _, c := range cases {
		src := dspLib + `
int top(int n) {
	int i; int s;
	s = 0;
	` + c.hdr + ` { s = s + fir(xin, h, yout); }
	return s;
}`
		g, _ := build(t, src, "top")
		if g.Calls[0].Freq != c.trips {
			t.Errorf("%s: freq = %d, want %d", c.hdr, g.Calls[0].Freq, c.trips)
		}
	}
}

func TestSoftwareCostScalesWithWork(t *testing.T) {
	f, err := cprog.Parse(dspLib + "int top() { return fir(xin, h, yout); }")
	if err != nil {
		t.Fatal(err)
	}
	info, err := cprog.Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	cFir, err := SoftwareCost(info, "fir", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cTop, err := SoftwareCost(info, "top", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if cFir <= 0 {
		t.Fatalf("fir cost = %d", cFir)
	}
	if cTop <= cFir {
		t.Errorf("top (%d) should cost more than its callee fir (%d)", cTop, cFir)
	}
}

func TestSummaries(t *testing.T) {
	_, info := build(t, dspLib+`int top() { return fir(xin, h, yout); }`, "top")
	s, err := Summarize(info, "fir")
	if err != nil {
		t.Fatal(err)
	}
	if !s.ParamRead[0] || !s.ParamRead[1] {
		t.Errorf("fir should read params 0 and 1: %+v", s)
	}
	if !s.ParamWrite[2] {
		t.Errorf("fir should write param 2: %+v", s)
	}
	if s.ParamWrite[0] {
		t.Errorf("fir must not write param 0: %+v", s)
	}

	// Transitive: top reads/writes globals through fir's args.
	st, err := Summarize(info, "top")
	if err != nil {
		t.Fatal(err)
	}
	if !st.ReadsGlobals["xin"] || !st.WritesGlobals["yout"] {
		t.Errorf("top summary = reads %v writes %v", sortedVars(st.ReadsGlobals), sortedVars(st.WritesGlobals))
	}
}

func TestPathEnumeration(t *testing.T) {
	src := dspLib + `
int top(int m1, int m2) {
	int r;
	r = 0;
	if (m1 > 0) { r = fir(xin, h, yout); } else { r = dct(xin, spare); }
	if (m2 > 0) { u = 1; } else { u = 2; }
	return r + u;
}`
	g, _ := build(t, src, "top")
	paths := g.Paths(64)
	if len(paths) != 4 {
		t.Fatalf("paths = %d, want 4 (2 branches × 2 branches)", len(paths))
	}
	demand := g.PathGainDemand(64)
	// Every path carries exactly one of the two calls.
	for i, calls := range demand {
		if len(calls) != 1 {
			t.Errorf("path %d has %d calls, want 1", i, len(calls))
		}
	}
	for _, p := range paths {
		if PathCost(p) <= 0 {
			t.Error("path with non-positive cost")
		}
	}
}

func TestDepClosureTransitivity(t *testing.T) {
	// a writes x; b reads x writes y; c reads y. a→b→c implies a→c.
	mk := func(name string, reads, writes []string) *Node {
		n := &Node{Name: name, Reads: map[string]bool{}, Writes: map[string]bool{}, Freq: 1}
		for _, r := range reads {
			n.Reads[r] = true
		}
		for _, w := range writes {
			n.Writes[w] = true
		}
		return n
	}
	a := mk("a", nil, []string{"x"})
	b := mk("b", []string{"x"}, []string{"y"})
	c := mk("c", []string{"y"}, nil)
	d := mk("d", []string{"z"}, nil)
	clo := DepClosure(Path{a, b, c, d})
	if !clo.Reaches(0, 1) || !clo.Reaches(1, 2) {
		t.Fatal("direct edges missing")
	}
	if !clo.Reaches(0, 2) {
		t.Error("transitive edge a→c missing")
	}
	if clo.Reaches(0, 3) || !clo.Independent(1, 3) {
		t.Error("d should be independent of the chain")
	}
}

func TestMaxStaticTrips(t *testing.T) {
	src := dspLib + `
int top(int n) {
	int i; int j; int s;
	s = 0;
	for (i = 0; i < 48; i = i + 1) {
		for (j = 0; j < 16; j = j + 1) { s = s + j; }
	}
	while (s > 0) { s = s - 1; }
	return s;
}`
	_, info := build(t, src, "top")
	got, err := MaxStaticTrips(info, "top", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got != 48 {
		t.Errorf("MaxStaticTrips = %d, want 48 (largest single loop)", got)
	}
	if _, err := MaxStaticTrips(info, "nope", DefaultOptions()); err == nil {
		t.Error("unknown function accepted")
	}
}

func TestGraphString(t *testing.T) {
	g, _ := build(t, dspLib+`int top() { return fir(xin, h, yout); }`, "top")
	if s := g.String(); s == "" {
		t.Error("empty graph dump")
	}
}
