package cdfg

import (
	"fmt"
	"strings"

	"partita/internal/cprog"
)

// containsCall reports whether any call appears in the statement.
func containsCall(s cprog.Stmt) bool {
	found := false
	walkStmt(s, func(e cprog.Expr) {
		if _, ok := e.(*cprog.CallExpr); ok {
			found = true
		}
	})
	return found
}

func exprHasCall(e cprog.Expr) bool {
	found := false
	walkExpr(e, func(x cprog.Expr) {
		if _, ok := x.(*cprog.CallExpr); ok {
			found = true
		}
	})
	return found
}

func walkStmt(s cprog.Stmt, f func(cprog.Expr)) {
	switch x := s.(type) {
	case *cprog.BlockStmt:
		for _, k := range x.Stmts {
			walkStmt(k, f)
		}
	case *cprog.AssignStmt:
		walkExpr(x.LHS, f)
		walkExpr(x.RHS, f)
	case *cprog.ExprStmt:
		walkExpr(x.X, f)
	case *cprog.IfStmt:
		walkExpr(x.Cond, f)
		walkStmt(x.Then, f)
		if x.Else != nil {
			walkStmt(x.Else, f)
		}
	case *cprog.WhileStmt:
		walkExpr(x.Cond, f)
		walkStmt(x.Body, f)
	case *cprog.ForStmt:
		if x.Init != nil {
			walkStmt(x.Init, f)
		}
		if x.Cond != nil {
			walkExpr(x.Cond, f)
		}
		if x.Post != nil {
			walkStmt(x.Post, f)
		}
		walkStmt(x.Body, f)
	case *cprog.ReturnStmt:
		if x.Value != nil {
			walkExpr(x.Value, f)
		}
	}
}

func walkExpr(e cprog.Expr, f func(cprog.Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch x := e.(type) {
	case *cprog.IndexExpr:
		walkExpr(x.Index, f)
	case *cprog.CallExpr:
		for _, a := range x.Args {
			walkExpr(a, f)
		}
	case *cprog.BinaryExpr:
		walkExpr(x.X, f)
		walkExpr(x.Y, f)
	case *cprog.UnaryExpr:
		walkExpr(x.X, f)
	}
}

// agg accumulates call-free code into one pending aggregate node.
type agg struct {
	cost   int64
	reads  map[string]bool
	writes map[string]bool
	names  []string
}

func newAgg() *agg {
	return &agg{reads: map[string]bool{}, writes: map[string]bool{}}
}

func (a *agg) empty() bool { return a.cost == 0 && len(a.reads) == 0 && len(a.writes) == 0 }

// buildBlock converts a statement block into a region tree. Every
// statement becomes its own node (or sub-region) so that dependence
// analysis can separate call-independent statements from dependent ones —
// the granularity Definitions 3-5 are stated at. Conditionals always
// build alternative regions (even call-free ones) because they define the
// execution paths over which PC_i takes its minimum; call-free loops
// collapse into single aggregate nodes.
func (b *builder) buildBlock(blk *cprog.BlockStmt, scope int, freq int64) *Region {
	seq := &Region{Kind: RSeq}
	emit := func(n *Node) {
		seq.Kids = append(seq.Kids, &Region{Kind: RLeaf, Leaf: n})
	}
	single := func(s cprog.Stmt) {
		a := newAgg()
		b.aggregateStmt(s, a)
		if a.empty() {
			return
		}
		n := b.newNode(NodeStmt, describe(a.names), a.cost, freq, scope)
		n.Reads = a.reads
		n.Writes = a.writes
		emit(n)
	}

	for _, s := range blk.Stmts {
		if ifs, ok := s.(*cprog.IfStmt); ok {
			// Conditionals always become Alt regions.
			condReads, condCost := b.lowerExprCalls(ifs.Cond, scope, freq, emit)
			cn := b.newNode(NodeStmt, "cond", condCost+b.opt.Cost.Branch, freq, scope)
			cn.Reads = condReads
			cn.Writes = map[string]bool{}
			emit(cn)
			alt := &Region{Kind: RAlt}
			alt.Kids = append(alt.Kids, b.buildBlock(ifs.Then, b.newScope(), freq))
			if ifs.Else != nil {
				alt.Kids = append(alt.Kids, b.buildBlock(ifs.Else, b.newScope(), freq))
			} else {
				alt.Kids = append(alt.Kids, &Region{Kind: RSeq})
			}
			seq.Kids = append(seq.Kids, alt)
			continue
		}
		if !containsCall(s) {
			single(s)
			continue
		}
		switch x := s.(type) {
		case *cprog.BlockStmt:
			seq.Kids = append(seq.Kids, b.buildBlock(x, scope, freq))
		case *cprog.ExprStmt:
			reads, cost := b.lowerExprCalls(x.X, scope, freq, emit)
			// Residual evaluation of the expression around the calls.
			if cost > 0 || len(reads) > 0 {
				n := b.newNode(NodeStmt, "expr", cost, freq, scope)
				n.Reads = reads
				n.Writes = map[string]bool{}
				emit(n)
			}
		case *cprog.AssignStmt:
			reads, cost := b.lowerExprCalls(x.RHS, scope, freq, emit)
			n := b.newNode(NodeStmt, "assign "+lhsName(x.LHS), cost+b.opt.Cost.Store, freq, scope)
			n.Reads = reads
			n.Writes = map[string]bool{}
			switch l := x.LHS.(type) {
			case *cprog.VarRef:
				n.Writes[l.Name] = true
			case *cprog.IndexExpr:
				n.Writes[l.Array] = true
				ir, ic := b.lowerExprCalls(l.Index, scope, freq, emit)
				for v := range ir {
					n.Reads[v] = true
				}
				n.Cost += ic + b.opt.Cost.IndexExtra
			}
			emit(n)
		case *cprog.ReturnStmt:
			reads, cost := b.lowerExprCalls(x.Value, scope, freq, emit)
			n := b.newNode(NodeStmt, "return", cost, freq, scope)
			n.Reads = reads
			n.Writes = map[string]bool{}
			emit(n)
		case *cprog.WhileStmt:
			trips := b.opt.DefaultTrips
			bodyScope := b.newScope()
			body := b.buildLoopBody(nil, x.Cond, nil, x.Body, bodyScope, freq*trips)
			seq.Kids = append(seq.Kids, &Region{Kind: RLoop, Kids: []*Region{body}, Trips: trips})
		case *cprog.ForStmt:
			trips := b.tripCount(x)
			if x.Init != nil {
				single(x.Init)
			}
			bodyScope := b.newScope()
			body := b.buildLoopBody(nil, x.Cond, x.Post, x.Body, bodyScope, freq*trips)
			seq.Kids = append(seq.Kids, &Region{Kind: RLoop, Kids: []*Region{body}, Trips: trips})
		default:
			// DeclStmt never contains calls (initializers are literals).
			single(s)
		}
	}
	return seq
}

// buildLoopBody assembles the body region of a loop, folding the loop
// condition's and post-statement's effects into bookkeeping nodes so that
// dependence analysis sees them.
func (b *builder) buildLoopBody(init *cprog.AssignStmt, cond cprog.Expr, post *cprog.AssignStmt, body *cprog.BlockStmt, scope int, freq int64) *Region {
	seq := &Region{Kind: RSeq}
	book := newAgg()
	if cond != nil && !exprHasCall(cond) {
		b.exprReads(cond, book.reads)
		book.cost += b.exprCost(cond) + b.opt.Cost.LoopIter
	} else {
		book.cost += b.opt.Cost.LoopIter
	}
	if post != nil {
		b.aggregateStmt(post, book)
	}
	if !book.empty() {
		n := b.newNode(NodeStmt, "loop-ctl", book.cost, freq, scope)
		n.Reads = book.reads
		n.Writes = book.writes
		seq.Kids = append(seq.Kids, &Region{Kind: RLeaf, Leaf: n})
	}
	seq.Kids = append(seq.Kids, b.buildBlock(body, scope, freq))
	return seq
}

func lhsName(e cprog.Expr) string {
	switch l := e.(type) {
	case *cprog.VarRef:
		return l.Name
	case *cprog.IndexExpr:
		return l.Array + "[]"
	}
	return "?"
}

func describe(names []string) string {
	if len(names) == 0 {
		return "code"
	}
	if len(names) > 3 {
		names = names[:3]
	}
	return strings.Join(names, ",")
}

func (b *builder) newScope() int {
	b.nextScope++
	return b.nextScope
}

func (b *builder) newNode(kind NodeKind, name string, cost, freq int64, scope int) *Node {
	n := &Node{
		ID:    b.nextID,
		Kind:  kind,
		Name:  name,
		Cost:  cost,
		Freq:  freq,
		Scope: scope,
		Site:  -1,
		Reads: map[string]bool{}, Writes: map[string]bool{},
	}
	b.nextID++
	b.nodes = append(b.nodes, n)
	return n
}

// lowerExprCalls emits one NodeCall per call in e (inner calls first, in
// evaluation order) and returns the read set and residual cost of the
// remaining expression. Call results appear as synthetic "$retN"
// variables connecting the call node to its consumer.
func (b *builder) lowerExprCalls(e cprog.Expr, scope int, freq int64, emit func(*Node)) (map[string]bool, int64) {
	reads := map[string]bool{}
	if e == nil {
		return reads, 0
	}
	cost := b.lowerExprCallsInto(e, scope, freq, emit, reads)
	return reads, cost
}

func (b *builder) lowerExprCallsInto(e cprog.Expr, scope int, freq int64, emit func(*Node), reads map[string]bool) int64 {
	w := b.opt.Cost
	switch x := e.(type) {
	case *cprog.NumExpr:
		return w.Const
	case *cprog.VarRef:
		reads[x.Name] = true
		return w.Load
	case *cprog.IndexExpr:
		reads[x.Array] = true
		return b.lowerExprCallsInto(x.Index, scope, freq, emit, reads) + w.Load + w.IndexExtra
	case *cprog.UnaryExpr:
		return b.lowerExprCallsInto(x.X, scope, freq, emit, reads) + w.Op
	case *cprog.BinaryExpr:
		c := b.lowerExprCallsInto(x.X, scope, freq, emit, reads)
		c += b.lowerExprCallsInto(x.Y, scope, freq, emit, reads)
		switch x.Op {
		case "/", "%":
			c += w.DivOp
		case "<", "<=", ">", ">=", "==", "!=", "&&", "||":
			c += w.Branch
		default:
			c += w.Op
		}
		return c
	case *cprog.CallExpr:
		n := b.makeCallNode(x, scope, freq, emit)
		ret := fmt.Sprintf("$ret%d", n.Site)
		reads[ret] = true
		return w.Op
	}
	return 0
}

// makeCallNode builds the NodeCall for x, emitting nodes for nested calls
// in its arguments first.
func (b *builder) makeCallNode(x *cprog.CallExpr, scope int, freq int64, emit func(*Node)) *Node {
	sum := b.summary(x.Callee)
	reads := map[string]bool{}
	writes := map[string]bool{}
	for i, a := range x.Args {
		if ref, ok := a.(*cprog.VarRef); ok && b.isArrayAt(x.Callee, i) {
			if i < len(sum.ParamRead) && sum.ParamRead[i] {
				reads[ref.Name] = true
			}
			if i < len(sum.ParamWrite) && sum.ParamWrite[i] {
				writes[ref.Name] = true
			}
			continue
		}
		b.lowerExprCallsInto(a, scope, freq, emit, reads)
	}
	for g := range sum.ReadsGlobals {
		reads[g] = true
	}
	for g := range sum.WritesGlobals {
		writes[g] = true
	}
	n := b.newNode(NodeCall, x.Callee, b.funcCost(x.Callee), freq, scope)
	n.Site = b.nextSite
	b.nextSite++
	writes[fmt.Sprintf("$ret%d", n.Site)] = true
	n.Reads = reads
	n.Writes = writes
	b.calls = append(b.calls, n)
	emit(n)
	return n
}

// aggregateStmt folds a call-free statement into the pending aggregate.
func (b *builder) aggregateStmt(s cprog.Stmt, a *agg) {
	a.cost += b.stmtCost(s)
	b.stmtEffects(s, a.reads, a.writes)
	switch x := s.(type) {
	case *cprog.AssignStmt:
		a.names = append(a.names, lhsName(x.LHS))
	case *cprog.ForStmt, *cprog.WhileStmt:
		a.names = append(a.names, "loop")
	case *cprog.IfStmt:
		a.names = append(a.names, "if")
	}
}

// stmtEffects accumulates variable reads/writes of a call-free statement.
func (b *builder) stmtEffects(s cprog.Stmt, reads, writes map[string]bool) {
	switch x := s.(type) {
	case *cprog.BlockStmt:
		for _, k := range x.Stmts {
			b.stmtEffects(k, reads, writes)
		}
	case *cprog.DeclStmt:
		if len(x.Decl.Init) > 0 {
			writes[x.Decl.Name] = true
		}
	case *cprog.AssignStmt:
		b.exprReads(x.RHS, reads)
		switch l := x.LHS.(type) {
		case *cprog.VarRef:
			writes[l.Name] = true
		case *cprog.IndexExpr:
			writes[l.Array] = true
			b.exprReads(l.Index, reads)
		}
	case *cprog.ExprStmt:
		b.exprReads(x.X, reads)
	case *cprog.IfStmt:
		b.exprReads(x.Cond, reads)
		b.stmtEffects(x.Then, reads, writes)
		if x.Else != nil {
			b.stmtEffects(x.Else, reads, writes)
		}
	case *cprog.WhileStmt:
		b.exprReads(x.Cond, reads)
		b.stmtEffects(x.Body, reads, writes)
	case *cprog.ForStmt:
		if x.Init != nil {
			b.stmtEffects(x.Init, reads, writes)
		}
		if x.Cond != nil {
			b.exprReads(x.Cond, reads)
		}
		if x.Post != nil {
			b.stmtEffects(x.Post, reads, writes)
		}
		b.stmtEffects(x.Body, reads, writes)
	case *cprog.ReturnStmt:
		if x.Value != nil {
			b.exprReads(x.Value, reads)
		}
	}
}

func (b *builder) exprReads(e cprog.Expr, reads map[string]bool) {
	walkExpr(e, func(x cprog.Expr) {
		switch v := x.(type) {
		case *cprog.VarRef:
			reads[v.Name] = true
		case *cprog.IndexExpr:
			reads[v.Array] = true
		}
	})
}
