// Package kernel models the timing and area characteristics of the ASIP
// core (the "kernel" of Choi et al., DAC 1999): a µ-programmed, pipelined
// DSP processor with a separate AGU and dual data memories.
//
// The numbers here are a synthetic stand-in for the authors' proprietary
// core. Absolute values are arbitrary units; what matters for reproducing
// the paper is the *structure* of the model — one µ-word per cycle,
// multi-cycle divides, call/return pipeline overhead, and area accounted
// in code-memory words for software artifacts versus gate-equivalents for
// hardware ones.
package kernel

import "partita/internal/mop"

// CostModel gives the cycle cost of kernel execution events.
type CostModel struct {
	// WordCycles is the base cost of issuing one µ-code word.
	WordCycles int64
	// DivExtra is the additional stall of a DIV/REM µ-operation.
	DivExtra int64
	// CallExtra and RetExtra model pipeline refill on control transfer
	// into and out of a function.
	CallExtra int64
	RetExtra  int64
	// TakenBranchExtra models the pipeline bubble of a taken branch.
	TakenBranchExtra int64
}

// DefaultCost returns the cost model used throughout the reproduction.
func DefaultCost() CostModel {
	return CostModel{
		WordCycles:       1,
		DivExtra:         7,
		CallExtra:        2,
		RetExtra:         2,
		TakenBranchExtra: 1,
	}
}

// BlockCycles reports the base cycles of one execution of a packed block
// (not counting taken-branch/call/return extras, which depend on dynamic
// behaviour).
func (c CostModel) BlockCycles(ops []mop.MOP) int64 {
	words := mop.PackBlock(ops)
	cycles := int64(len(words)) * c.WordCycles
	for _, op := range ops {
		if op.Op == mop.DIV || op.Op == mop.REM {
			cycles += c.DivExtra
		}
	}
	return cycles
}

// AreaModel gives the area cost of hardware and software artifacts in the
// paper's (dimensionless) area units.
type AreaModel struct {
	// PerCodeWord is the code-memory area of one µ-code word. Software
	// interfaces (types 0 and 1) pay this per word of interface code.
	PerCodeWord float64
	// PerFSMState is the area of one state of a hardware interface FSM
	// (types 2 and 3).
	PerFSMState float64
	// PerBufferWord is the area of one word of interface buffer (types 1
	// and 3).
	PerBufferWord float64
	// BufferCtlOverhead is the fixed addressing/controller logic cost of
	// having buffers at all (types 1 and 3); it keeps the buffered types
	// strictly more expensive than their unbuffered siblings, as in the
	// paper's cost ordering.
	BufferCtlOverhead float64
	// MuxOverhead is the fixed wiring/mux cost of attaching any IP.
	MuxOverhead float64
}

// DefaultArea returns the area model used throughout the reproduction.
// The constants are calibrated so that the interface-area column of the
// paper's tables is reproduced in shape: a type-0 interface costs ~2-4
// units, buffers add ~10 units for a 32-word pair, and FSMs land between.
func DefaultArea() AreaModel {
	return AreaModel{
		PerCodeWord:       0.125,
		PerFSMState:       0.25,
		PerBufferWord:     0.15,
		BufferCtlOverhead: 1.0,
		MuxOverhead:       0.5,
	}
}

// Kernel describes the fixed core configuration.
type Kernel struct {
	Cost CostModel
	Area AreaModel
	// XWords and YWords are the data-memory sizes.
	XWords, YWords int
	// ClockMHz is the kernel clock; IPs attached through a type-0
	// interface may need to run at an integer divisor of it.
	ClockMHz int
}

// Default returns the reference kernel configuration.
func Default() Kernel {
	return Kernel{
		Cost:     DefaultCost(),
		Area:     DefaultArea(),
		XWords:   65536,
		YWords:   65536,
		ClockMHz: 100,
	}
}
