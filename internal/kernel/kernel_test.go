package kernel

import (
	"testing"

	"partita/internal/mop"
)

func TestBlockCyclesCountsWordsAndDivStalls(t *testing.T) {
	c := DefaultCost()
	ops := []mop.MOP{
		{Op: mop.LDI, Dst: mop.GPR(0), Imm: 6},
		{Op: mop.LDI, Dst: mop.GPR(1), Imm: 2},
		{Op: mop.DIV, Dst: mop.GPR(2), SrcA: mop.GPR(0), SrcB: mop.GPR(1)},
	}
	// Words: {ldi r0}, {ldi r1}, {div} → move field holds one LDI per word,
	// so 2 LDI words, then DIV depends on both.
	words := mop.PackBlock(ops)
	want := int64(len(words))*c.WordCycles + c.DivExtra
	if got := c.BlockCycles(ops); got != want {
		t.Errorf("BlockCycles = %d, want %d", got, want)
	}
}

func TestDefaultsSane(t *testing.T) {
	k := Default()
	if k.Cost.WordCycles <= 0 || k.ClockMHz <= 0 {
		t.Errorf("bad defaults: %+v", k)
	}
	a := DefaultArea()
	if a.PerCodeWord <= 0 || a.PerFSMState <= 0 || a.PerBufferWord <= 0 {
		t.Errorf("bad area model: %+v", a)
	}
	// Hardware FSM state must cost more than a code word: the tables show
	// type-2 interfaces slightly above type-0.
	if a.PerFSMState <= a.PerCodeWord {
		t.Error("FSM state should cost more than a µ-code word")
	}
}
