package opt

import (
	"fmt"
	"math/rand"
	"testing"

	"partita/internal/apps"
	"partita/internal/cprog"
	"partita/internal/kernel"
	"partita/internal/lower"
	"partita/internal/mop"
	"partita/internal/profile"
)

func TestMACFusion(t *testing.T) {
	p := mop.NewProgram("f")
	p.Add(&mop.Function{Name: "f", Blocks: []*mop.Block{
		{Label: "entry", Ops: []mop.MOP{
			{Op: mop.LDI, Dst: mop.GPR(0), Imm: 10}, // acc
			{Op: mop.LDI, Dst: mop.GPR(1), Imm: 3},
			{Op: mop.LDI, Dst: mop.GPR(2), Imm: 4},
			{Op: mop.MUL, Dst: mop.GPR(3), SrcA: mop.GPR(1), SrcB: mop.GPR(2)},
			{Op: mop.ADD, Dst: mop.GPR(0), SrcA: mop.GPR(0), SrcB: mop.GPR(3)},
			{Op: mop.MOV, Dst: mop.RegRetVal, SrcA: mop.GPR(0)},
			{Op: mop.RET},
		}},
	}})
	st := Optimize(p)
	if st.MACFused != 1 {
		t.Fatalf("MACFused = %d, want 1\n%s", st.MACFused, p)
	}
	// Execute: 10 + 3*4 = 22.
	lay := emptyLayout()
	m := profile.New(p, lay, kernel.DefaultCost())
	got, err := m.Run("f")
	if err != nil {
		t.Fatal(err)
	}
	if got != 22 {
		t.Errorf("result = %d, want 22", got)
	}
}

func TestMACFusionBlockedByLiveTemp(t *testing.T) {
	// t (r3) is returned too → fusion must not happen.
	p := mop.NewProgram("f")
	p.Add(&mop.Function{Name: "f", Blocks: []*mop.Block{
		{Label: "entry", Ops: []mop.MOP{
			{Op: mop.LDI, Dst: mop.GPR(0), Imm: 10},
			{Op: mop.LDI, Dst: mop.GPR(1), Imm: 3},
			{Op: mop.LDI, Dst: mop.GPR(2), Imm: 4},
			{Op: mop.MUL, Dst: mop.GPR(3), SrcA: mop.GPR(1), SrcB: mop.GPR(2)},
			{Op: mop.ADD, Dst: mop.GPR(0), SrcA: mop.GPR(0), SrcB: mop.GPR(3)},
			{Op: mop.ADD, Dst: mop.GPR(4), SrcA: mop.GPR(3), SrcB: mop.GPR(0)},
			{Op: mop.MOV, Dst: mop.RegRetVal, SrcA: mop.GPR(4)},
			{Op: mop.RET},
		}},
	}})
	st := Optimize(p)
	if st.MACFused != 0 {
		t.Fatalf("fused despite live temp:\n%s", p)
	}
}

func TestAGUDedup(t *testing.T) {
	p := mop.NewProgram("f")
	p.Add(&mop.Function{Name: "f", Blocks: []*mop.Block{
		{Label: "entry", Ops: []mop.MOP{
			{Op: mop.AGUX, Dst: mop.AX(3), Imm: 100, Abs: true},
			{Op: mop.LDX, Dst: mop.GPR(0), SrcA: mop.AX(3)},
			{Op: mop.AGUX, Dst: mop.AX(3), Imm: 100, Abs: true}, // redundant
			{Op: mop.LDX, Dst: mop.GPR(1), SrcA: mop.AX(3)},
			{Op: mop.ADD, Dst: mop.RegRetVal, SrcA: mop.GPR(0), SrcB: mop.GPR(1)},
			{Op: mop.RET},
		}},
	}})
	st := Optimize(p)
	if st.AGUElided != 1 {
		t.Fatalf("AGUElided = %d, want 1\n%s", st.AGUElided, p)
	}
	lay := emptyLayout()
	m := profile.New(p, lay, kernel.DefaultCost())
	if err := m.WriteArray(cprogBankX(), 100, []int64{21}); err != nil {
		t.Fatal(err)
	}
	got, err := m.Run("f")
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("result = %d, want 42", got)
	}
}

func TestAGUDedupRespectsPostModify(t *testing.T) {
	// The load post-modifies ax3, so resetting it is NOT redundant when
	// the constant differs from the advanced value.
	p := mop.NewProgram("f")
	p.Add(&mop.Function{Name: "f", Blocks: []*mop.Block{
		{Label: "entry", Ops: []mop.MOP{
			{Op: mop.AGUX, Dst: mop.AX(3), Imm: 100, Abs: true},
			{Op: mop.LDX, Dst: mop.GPR(0), SrcA: mop.AX(3), Imm: 1},
			{Op: mop.AGUX, Dst: mop.AX(3), Imm: 100, Abs: true}, // needed again
			{Op: mop.LDX, Dst: mop.GPR(1), SrcA: mop.AX(3)},
			{Op: mop.ADD, Dst: mop.RegRetVal, SrcA: mop.GPR(0), SrcB: mop.GPR(1)},
			{Op: mop.RET},
		}},
	}})
	st := Optimize(p)
	if st.AGUElided != 0 {
		t.Fatalf("elided a needed AGU reset\n%s", p)
	}
	// And the tracked advance makes a reset to 101 redundant:
	p2 := mop.NewProgram("g")
	p2.Add(&mop.Function{Name: "g", Blocks: []*mop.Block{
		{Label: "entry", Ops: []mop.MOP{
			{Op: mop.AGUX, Dst: mop.AX(3), Imm: 100, Abs: true},
			{Op: mop.LDX, Dst: mop.GPR(0), SrcA: mop.AX(3), Imm: 1},
			{Op: mop.AGUX, Dst: mop.AX(3), Imm: 101, Abs: true}, // redundant: post-modify already advanced
			{Op: mop.LDX, Dst: mop.GPR(1), SrcA: mop.AX(3)},
			{Op: mop.ADD, Dst: mop.RegRetVal, SrcA: mop.GPR(0), SrcB: mop.GPR(1)},
			{Op: mop.RET},
		}},
	}})
	st2 := Optimize(p2)
	if st2.AGUElided != 1 {
		t.Fatalf("post-modify tracking missed a redundant reset\n%s", p2)
	}
}

func TestLDIDedupAndDCE(t *testing.T) {
	p := mop.NewProgram("f")
	p.Add(&mop.Function{Name: "f", Blocks: []*mop.Block{
		{Label: "entry", Ops: []mop.MOP{
			{Op: mop.LDI, Dst: mop.GPR(0), Imm: 7},
			{Op: mop.LDI, Dst: mop.GPR(0), Imm: 7},  // duplicate
			{Op: mop.LDI, Dst: mop.GPR(5), Imm: 99}, // dead
			{Op: mop.MOV, Dst: mop.RegRetVal, SrcA: mop.GPR(0)},
			{Op: mop.RET},
		}},
	}})
	st := Optimize(p)
	if st.LDIElided < 1 {
		t.Errorf("LDIElided = %d, want >= 1", st.LDIElided)
	}
	if st.DeadRemoved < 1 {
		t.Errorf("DeadRemoved = %d, want >= 1 (r5 is dead)", st.DeadRemoved)
	}
	m := profile.New(p, emptyLayout(), kernel.DefaultCost())
	got, err := m.Run("f")
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("result = %d, want 7", got)
	}
}

func TestDCEKeepsStoresAndDivTraps(t *testing.T) {
	p := mop.NewProgram("f")
	p.Add(&mop.Function{Name: "f", Blocks: []*mop.Block{
		{Label: "entry", Ops: []mop.MOP{
			{Op: mop.LDI, Dst: mop.GPR(0), Imm: 5},
			{Op: mop.LDI, Dst: mop.GPR(1), Imm: 0},
			{Op: mop.DIV, Dst: mop.GPR(2), SrcA: mop.GPR(0), SrcB: mop.GPR(1)}, // result dead but traps
			{Op: mop.AGUX, Dst: mop.AX(3), Imm: 10, Abs: true},
			{Op: mop.STX, SrcA: mop.GPR(0), SrcB: mop.AX(3)},
			{Op: mop.LDI, Dst: mop.RegRetVal, Imm: 0},
			{Op: mop.RET},
		}},
	}})
	Optimize(p)
	ops := p.Function("f").Blocks[0].Ops
	hasDiv, hasStore := false, false
	for _, op := range ops {
		if op.Op == mop.DIV {
			hasDiv = true
		}
		if op.Op == mop.STX {
			hasStore = true
		}
	}
	if !hasDiv {
		t.Error("DCE removed a trapping DIV")
	}
	if !hasStore {
		t.Error("DCE removed a store")
	}
}

// TestOptimizedWorkloadsEquivalent is the heavyweight correctness check:
// every live workload must compute identical results before and after
// optimization, in no more cycles.
func TestOptimizedWorkloadsEquivalent(t *testing.T) {
	gens := []func() (apps.Workload, error){
		apps.GSMEncoderWorkload, apps.GSMDecoderWorkload, apps.JPEGEncoderWorkload,
	}
	for _, gen := range gens {
		w, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		f, err := cprog.Parse(w.Source)
		if err != nil {
			t.Fatal(err)
		}
		info, err := cprog.Analyze(f)
		if err != nil {
			t.Fatal(err)
		}
		prog, lay, err := lower.Compile(info)
		if err != nil {
			t.Fatal(err)
		}
		m1 := profile.New(prog, lay, kernel.DefaultCost())
		ret1, err := m1.Run(w.Entry)
		if err != nil {
			t.Fatalf("%s: baseline run: %v", w.Name, err)
		}
		cyc1 := m1.Stats().Cycles

		st := Optimize(prog)
		if err := prog.Validate(); err != nil {
			t.Fatalf("%s: optimized program invalid: %v", w.Name, err)
		}
		m2 := profile.New(prog, lay, kernel.DefaultCost())
		ret2, err := m2.Run(w.Entry)
		if err != nil {
			t.Fatalf("%s: optimized run: %v", w.Name, err)
		}
		cyc2 := m2.Stats().Cycles

		if ret1 != ret2 {
			t.Errorf("%s: result changed %d → %d", w.Name, ret1, ret2)
		}
		if cyc2 > cyc1 {
			t.Errorf("%s: optimization increased cycles %d → %d", w.Name, cyc1, cyc2)
		}
		if st.Total() == 0 {
			t.Errorf("%s: optimizer found nothing in naive code (stats %+v)", w.Name, st)
		}
		t.Logf("%s: %d → %d cycles (−%.1f%%), stats %+v",
			w.Name, cyc1, cyc2, 100*float64(cyc1-cyc2)/float64(cyc1), st)
	}
}

// TestOptimizedRandomExprsEquivalent fuzzes the optimizer with random
// expression programs.
func TestOptimizedRandomExprsEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	ops := []string{"+", "-", "*", "&", "|", "^"}
	for trial := 0; trial < 150; trial++ {
		expr := fmt.Sprintf("a %s (b %s %d)", ops[rng.Intn(len(ops))], ops[rng.Intn(len(ops))], rng.Intn(50))
		if rng.Intn(2) == 0 {
			expr = fmt.Sprintf("(%s) * (a %s c)", expr, ops[rng.Intn(len(ops))])
		}
		src := fmt.Sprintf(`int main() {
	int a; int b; int c; int s; int i;
	a = %d; b = %d; c = %d; s = 0;
	for (i = 0; i < 5; i = i + 1) { s = s + (%s); }
	return s;
}`, rng.Intn(100), rng.Intn(100), rng.Intn(100), expr)
		f, err := cprog.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		info, err := cprog.Analyze(f)
		if err != nil {
			t.Fatal(err)
		}
		prog, lay, err := lower.Compile(info)
		if err != nil {
			t.Fatal(err)
		}
		m1 := profile.New(prog, lay, kernel.DefaultCost())
		ret1, err := m1.Run("main")
		if err != nil {
			t.Fatal(err)
		}
		Optimize(prog)
		m2 := profile.New(prog, lay, kernel.DefaultCost())
		ret2, err := m2.Run("main")
		if err != nil {
			t.Fatalf("trial %d: optimized run: %v\n%s", trial, err, prog)
		}
		if ret1 != ret2 {
			t.Fatalf("trial %d: %q: %d → %d\n%s", trial, expr, ret1, ret2, prog)
		}
	}
}

func emptyLayout() *lower.Layout {
	return &lower.Layout{Globals: map[string]lower.Loc{}, Funcs: map[string]*lower.FuncLayout{}}
}

func cprogBankX() cprog.Bank { return cprog.BankX }
