package opt

import (
	"partita/internal/mop"
)

// Stats counts the rewrites each pass performed.
type Stats struct {
	MACFused       int
	AGUElided      int
	LDIElided      int
	DeadRemoved    int
	LoadsForwarded int
	Rounds         int
}

// Total reports the number of MOPs removed, fused, or rewritten.
func (s Stats) Total() int {
	return s.MACFused + s.AGUElided + s.LDIElided + s.DeadRemoved + s.LoadsForwarded
}

// Optimize rewrites p in place, iterating the passes per function until
// a fixpoint (bounded at 8 rounds).
func Optimize(p *mop.Program) Stats {
	var st Stats
	for _, f := range p.SortedFuncs() {
		for round := 0; round < 8; round++ {
			before := st.Total()
			lv := NewLiveness(f)
			for bi, blk := range f.Blocks {
				blk.Ops = fuseMAC(blk.Ops, lv, bi, &st)
			}
			// Liveness changed shape; recompute for DCE.
			for _, blk := range f.Blocks {
				blk.Ops = forwardLoads(blk.Ops, &st)
			}
			lv = NewLiveness(f)
			for bi, blk := range f.Blocks {
				blk.Ops = dedupAGU(blk.Ops, &st)
				blk.Ops = dedupLDI(blk.Ops, &st)
				blk.Ops = deadCode(blk.Ops, lv, bi, &st)
			}
			if st.Total() == before {
				break
			}
			st.Rounds++
		}
	}
	return st
}

// fuseMAC rewrites MUL t,x,y ; ADD d,d,t (or ADD d,t,d) into MAC d,x,y
// when t is dead after the ADD and distinct from d.
func fuseMAC(ops []mop.MOP, lv *Liveness, bi int, st *Stats) []mop.MOP {
	var out []mop.MOP
	for i := 0; i < len(ops); i++ {
		if i+1 < len(ops) && ops[i].Op == mop.MUL {
			mul := ops[i]
			add := ops[i+1]
			t := mul.Dst
			isAcc := add.Op == mop.ADD && add.Dst != t &&
				((add.SrcA == add.Dst && add.SrcB == t) ||
					(add.SrcB == add.Dst && add.SrcA == t))
			if isAcc {
				// t must not be observed after the ADD. Index i+1 in the
				// *original* slice equals len(out)+1 in the rewritten
				// one only before any fusion this round; recompute
				// conservatively from the original indices.
				live := lv.LiveAfter(bi, i+1)
				if !live.has(int(t)) {
					out = append(out, mop.MOP{
						Op: mop.MAC, Dst: add.Dst, SrcA: mul.SrcA, SrcB: mul.SrcB, Pos: mul.Pos,
					})
					st.MACFused++
					i++
					continue
				}
			}
		}
		out = append(out, ops[i])
	}
	return out
}

// forwardLoads rewrites loads from statically known addresses whose
// value is already in a register (written by an earlier store or load in
// the same block) into register moves. The freed address setup then
// falls to dedupAGU/deadCode. This is the classic cure for the
// memory-homed-scalar idiom of the naive code generator.
func forwardLoads(ops []mop.MOP, st *Stats) []mop.MOP {
	type bankState struct {
		mem map[int64]mop.Reg // known address → register holding the value
	}
	x := bankState{mem: map[int64]mop.Reg{}}
	y := bankState{mem: map[int64]mop.Reg{}}
	addr := map[mop.Reg]int64{} // address registers with known constants

	dropReg := func(r mop.Reg) {
		for k, v := range x.mem {
			if v == r {
				delete(x.mem, k)
			}
		}
		for k, v := range y.mem {
			if v == r {
				delete(y.mem, k)
			}
		}
		delete(addr, r)
	}
	clearAll := func() {
		x.mem = map[int64]mop.Reg{}
		y.mem = map[int64]mop.Reg{}
		addr = map[mop.Reg]int64{}
	}

	out := make([]mop.MOP, 0, len(ops))
	for _, op := range ops {
		switch op.Op {
		case mop.AGUX, mop.AGUY:
			if op.Abs {
				addr[op.Dst] = op.Imm
			} else if v, ok := addr[op.Dst]; ok {
				addr[op.Dst] = v + op.Imm
			}
			out = append(out, op)
			continue
		case mop.CALL:
			clearAll()
			out = append(out, op)
			continue
		case mop.LDX, mop.LDY:
			bank := &x
			if op.Op == mop.LDY {
				bank = &y
			}
			if a, ok := addr[op.SrcA]; ok && op.Imm == 0 {
				if src, ok := bank.mem[a]; ok && src != op.Dst {
					// Forward: the value is already in src.
					mv := mop.MOP{Op: mop.MOV, Dst: op.Dst, SrcA: src, Pos: op.Pos}
					dropReg(op.Dst)
					bank.mem[a] = src
					out = append(out, mv)
					st.LoadsForwarded++
					continue
				}
				dropReg(op.Dst)
				bank.mem[a] = op.Dst
				out = append(out, op)
				continue
			}
			// Unknown or post-modifying load: track the address advance,
			// invalidate the destination.
			if a, ok := addr[op.SrcA]; ok && op.Imm != 0 {
				dropReg(op.Dst)
				bank.mem[a] = op.Dst
				addr[op.SrcA] = a + op.Imm
				out = append(out, op)
				continue
			}
			dropReg(op.Dst)
			out = append(out, op)
			continue
		case mop.STX, mop.STY:
			bank := &x
			if op.Op == mop.STX {
				bank = &x
			} else {
				bank = &y
			}
			if a, ok := addr[op.SrcB]; ok {
				bank.mem[a] = op.SrcA
				if op.Imm != 0 {
					addr[op.SrcB] = a + op.Imm
				}
			} else {
				// Store to an unknown address clobbers the whole bank.
				bank.mem = map[int64]mop.Reg{}
			}
			out = append(out, op)
			continue
		}
		for _, d := range op.DefsAll() {
			dropReg(d)
		}
		out = append(out, op)
	}
	return out
}

// dedupAGU removes AGUX/AGUY absolute loads that re-set an address
// register to the value it already holds (common with the scalar-access
// idiom of the lowering pass).
func dedupAGU(ops []mop.MOP, st *Stats) []mop.MOP {
	known := map[mop.Reg]int64{} // addr reg → known constant
	var out []mop.MOP
	invalidate := func(r mop.Reg) { delete(known, r) }
	for _, op := range ops {
		if (op.Op == mop.AGUX || op.Op == mop.AGUY) && op.Abs {
			if v, ok := known[op.Dst]; ok && v == op.Imm {
				st.AGUElided++
				continue
			}
			known[op.Dst] = op.Imm
			out = append(out, op)
			continue
		}
		if op.Op == mop.CALL {
			known = map[mop.Reg]int64{}
			out = append(out, op)
			continue
		}
		// Any other definition of an address register invalidates it;
		// post-modify loads/stores advance it by Imm (track when known).
		switch op.Op {
		case mop.LDX, mop.LDY:
			if op.Imm != 0 {
				if v, ok := known[op.SrcA]; ok {
					known[op.SrcA] = v + op.Imm
				}
			}
			if mop.IsAddrReg(op.Dst) {
				invalidate(op.Dst)
			}
		case mop.STX, mop.STY:
			if op.Imm != 0 {
				if v, ok := known[op.SrcB]; ok {
					known[op.SrcB] = v + op.Imm
				}
			}
		default:
			for _, d := range op.DefsAll() {
				if mop.IsAddrReg(d) {
					invalidate(d)
				}
			}
		}
		out = append(out, op)
	}
	return out
}

// dedupLDI removes LDI r,#k when r is already known to hold k.
func dedupLDI(ops []mop.MOP, st *Stats) []mop.MOP {
	known := map[mop.Reg]int64{}
	var out []mop.MOP
	for _, op := range ops {
		if op.Op == mop.LDI {
			if v, ok := known[op.Dst]; ok && v == op.Imm {
				st.LDIElided++
				continue
			}
			known[op.Dst] = op.Imm
			out = append(out, op)
			continue
		}
		if op.Op == mop.CALL {
			known = map[mop.Reg]int64{}
			out = append(out, op)
			continue
		}
		for _, d := range op.DefsAll() {
			delete(known, d)
		}
		out = append(out, op)
	}
	return out
}

// deadCode removes operations whose only effect is writing registers
// nobody reads. Memory writes, calls, and control transfers are never
// removed; loads are removable (the data memories have no read side
// effects in this machine).
func deadCode(ops []mop.MOP, lv *Liveness, bi int, st *Stats) []mop.MOP {
	removable := func(op mop.MOP) bool {
		switch op.Op {
		case mop.STX, mop.STY, mop.CALL, mop.RET,
			mop.BR, mop.BEQ, mop.BNE, mop.BLT, mop.BGE, mop.NOP:
			return false
		case mop.DIV, mop.REM:
			// Division traps on zero; removing one would hide the trap.
			return false
		}
		return true
	}
	// Walk backward over original indices, marking dead ops.
	dead := make([]bool, len(ops))
	live := lv.liveOut[bi]
	for i := len(ops) - 1; i >= 0; i-- {
		op := ops[i]
		var defs, uses regSet
		opDefs(op, &defs)
		opUses(op, &uses)
		anyLive := false
		if op.WritesFlags() && live.has(flagsReg) {
			anyLive = true
		}
		for _, d := range op.DefsAll() {
			if live.has(int(d)) {
				anyLive = true
			}
		}
		if removable(op) && !anyLive && op.Op != mop.CMP {
			dead[i] = true
			continue // do not update liveness with a removed op
		}
		if op.Op == mop.CMP && !live.has(flagsReg) {
			dead[i] = true
			continue
		}
		for r := 0; r < nTracked; r++ {
			if defs.has(r) && !uses.has(r) {
				live.clear(r)
			}
		}
		live.orWith(&uses)
	}
	var out []mop.MOP
	for i, op := range ops {
		if dead[i] {
			st.DeadRemoved++
			continue
		}
		out = append(out, op)
	}
	return out
}
