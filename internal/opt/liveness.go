// Package opt is a MOP-level peephole optimizer for lowered programs.
// The naive code generator of package lower emits straightforward but
// redundant sequences; this package applies the classic µ-code clean-ups
// a 1990s DSP toolchain would run before µ-word packing:
//
//   - MAC fusion: MUL t,a,b ; ADD acc,acc,t → MAC acc,a,b when t dies;
//   - redundant AGU-setup elimination (re-loading an address register
//     with the value it already holds);
//   - duplicate-immediate elimination (LDI r,#k when r already holds k);
//   - dead-code elimination of register writes never observed.
//
// All passes are driven by a per-function backward liveness analysis and
// are validated by interpreter equivalence tests: optimized programs
// compute exactly the same results in fewer µ-words.
package opt

import (
	"partita/internal/mop"
)

// flagsReg is a pseudo-register tracking the ALU flags in liveness.
const flagsReg = mop.NumRegs

// nTracked is the number of liveness slots (registers + flags).
const nTracked = mop.NumRegs + 1

// regSet is a dense bitset over tracked registers.
type regSet [(nTracked + 63) / 64]uint64

func (s *regSet) set(r int)      { s[r/64] |= 1 << uint(r%64) }
func (s *regSet) clear(r int)    { s[r/64] &^= 1 << uint(r%64) }
func (s *regSet) has(r int) bool { return s[r/64]&(1<<uint(r%64)) != 0 }
func (s *regSet) orWith(o *regSet) bool {
	changed := false
	for i := range s {
		n := s[i] | o[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// opUses collects the registers an operation reads, including the
// conservative treatment of CALL (reads every register: the callee's
// argument registers are unknown at this level, and callees observe the
// global register file).
func opUses(op mop.MOP, s *regSet) {
	if op.Op == mop.CALL {
		for r := 0; r < mop.NumRegs; r++ {
			s.set(r)
		}
		return
	}
	for _, r := range op.Uses() {
		s.set(int(r))
	}
	if op.ReadsFlags() {
		s.set(flagsReg)
	}
}

// opDefs collects the registers an operation writes. CALL is treated as
// clobbering everything (the callee may write any register).
func opDefs(op mop.MOP, s *regSet) {
	if op.Op == mop.CALL {
		for r := 0; r < mop.NumRegs; r++ {
			s.set(r)
		}
		s.set(flagsReg)
		return
	}
	for _, r := range op.DefsAll() {
		s.set(int(r))
	}
	if op.WritesFlags() {
		s.set(flagsReg)
	}
}

// Liveness computes, for every block of f, the live-in and live-out
// register sets, and exposes a per-op backward walk. RET is treated as
// using the return-value register and every address register is
// considered dead at function exit.
type Liveness struct {
	fn      *mop.Function
	liveIn  []regSet
	liveOut []regSet
	index   map[string]int
}

// NewLiveness runs the fixpoint analysis.
func NewLiveness(f *mop.Function) *Liveness {
	lv := &Liveness{
		fn:      f,
		liveIn:  make([]regSet, len(f.Blocks)),
		liveOut: make([]regSet, len(f.Blocks)),
		index:   map[string]int{},
	}
	for i, b := range f.Blocks {
		lv.index[b.Label] = i
	}
	changed := true
	for changed {
		changed = false
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			var out regSet
			for _, succ := range f.Successors(i) {
				if si, ok := lv.index[succ]; ok {
					out.orWith(&lv.liveIn[si])
				}
			}
			// RET observes the return value.
			if term, ok := f.Blocks[i].Terminator(); ok && term.Op == mop.RET {
				out.set(int(mop.RegRetVal))
			}
			lv.liveOut[i] = out
			in := lv.blockLiveIn(i, &out)
			if lv.liveIn[i] != in {
				lv.liveIn[i] = in
				changed = true
			}
		}
	}
	return lv
}

// blockLiveIn computes live-in from live-out by walking ops backward.
func (lv *Liveness) blockLiveIn(bi int, out *regSet) regSet {
	live := *out
	ops := lv.fn.Blocks[bi].Ops
	for i := len(ops) - 1; i >= 0; i-- {
		var defs, uses regSet
		opDefs(ops[i], &defs)
		opUses(ops[i], &uses)
		for r := 0; r < nTracked; r++ {
			if defs.has(r) && !uses.has(r) {
				live.clear(r)
			}
		}
		live.orWith(&uses)
	}
	return live
}

// LiveAfter reports the live set immediately after op index oi of block
// bi (i.e. before the backward walk reaches it).
func (lv *Liveness) LiveAfter(bi, oi int) regSet {
	live := lv.liveOut[bi]
	ops := lv.fn.Blocks[bi].Ops
	for i := len(ops) - 1; i > oi; i-- {
		var defs, uses regSet
		opDefs(ops[i], &defs)
		opUses(ops[i], &uses)
		for r := 0; r < nTracked; r++ {
			if defs.has(r) && !uses.has(r) {
				live.clear(r)
			}
		}
		live.orWith(&uses)
	}
	return live
}
