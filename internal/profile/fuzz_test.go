package profile

import (
	"fmt"
	"math/rand"
	"testing"

	"partita/internal/cprog"
	"partita/internal/kernel"
	"partita/internal/lower"
)

// exprGen builds random mini-C expressions over the scalars a, b, c with
// bounded depth (the lowering evaluates on an 8-register stack).
type exprGen struct {
	rng *rand.Rand
}

func (g *exprGen) gen(depth int) string {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		switch g.rng.Intn(4) {
		case 0:
			return "a"
		case 1:
			return "b"
		case 2:
			return "c"
		default:
			return fmt.Sprintf("%d", g.rng.Intn(201)-100)
		}
	}
	switch g.rng.Intn(10) {
	case 0:
		return fmt.Sprintf("(-%s)", g.gen(depth-1))
	case 1:
		return fmt.Sprintf("(~%s)", g.gen(depth-1))
	case 2:
		return fmt.Sprintf("(!%s)", g.gen(depth-1))
	case 3:
		// Shift by a small constant.
		op := "<<"
		if g.rng.Intn(2) == 0 {
			op = ">>"
		}
		return fmt.Sprintf("(%s %s %d)", g.gen(depth-1), op, g.rng.Intn(8))
	case 4:
		// Division/remainder by a nonzero constant.
		op := "/"
		if g.rng.Intn(2) == 0 {
			op = "%"
		}
		return fmt.Sprintf("(%s %s %d)", g.gen(depth-1), op, g.rng.Intn(9)+1)
	default:
		ops := []string{"+", "-", "*", "&", "|", "^", "<", "<=", ">", ">=", "==", "!=", "&&", "||"}
		op := ops[g.rng.Intn(len(ops))]
		return fmt.Sprintf("(%s %s %s)", g.gen(depth-1), op, g.gen(depth-1))
	}
}

// evalRef evaluates a parsed expression with Go semantics matching the
// kernel's: 64-bit two's-complement arithmetic, truncated division,
// comparisons/logical operators yielding 0/1.
func evalRef(e cprog.Expr, env map[string]int64) int64 {
	b2i := func(v bool) int64 {
		if v {
			return 1
		}
		return 0
	}
	switch x := e.(type) {
	case *cprog.NumExpr:
		return x.Value
	case *cprog.VarRef:
		return env[x.Name]
	case *cprog.UnaryExpr:
		v := evalRef(x.X, env)
		switch x.Op {
		case "-":
			return -v
		case "~":
			return ^v
		case "!":
			return b2i(v == 0)
		}
	case *cprog.BinaryExpr:
		l := evalRef(x.X, env)
		switch x.Op {
		case "&&":
			if l == 0 {
				return 0
			}
			return b2i(evalRef(x.Y, env) != 0)
		case "||":
			if l != 0 {
				return 1
			}
			return b2i(evalRef(x.Y, env) != 0)
		}
		r := evalRef(x.Y, env)
		switch x.Op {
		case "+":
			return l + r
		case "-":
			return l - r
		case "*":
			return l * r
		case "/":
			return l / r
		case "%":
			return l % r
		case "&":
			return l & r
		case "|":
			return l | r
		case "^":
			return l ^ r
		case "<<":
			return l << uint(r&63)
		case ">>":
			return l >> uint(r&63)
		case "<":
			return b2i(l < r)
		case "<=":
			return b2i(l <= r)
		case ">":
			return b2i(l > r)
		case ">=":
			return b2i(l >= r)
		case "==":
			return b2i(l == r)
		case "!=":
			return b2i(l != r)
		}
	}
	panic("evalRef: unhandled expression")
}

// TestInterpreterMatchesReference compiles hundreds of random expressions
// and checks the lowered MOP program computes exactly what the reference
// evaluator does.
func TestInterpreterMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20260706))
	g := &exprGen{rng: rng}
	for trial := 0; trial < 400; trial++ {
		va, vb, vc := int64(rng.Intn(401)-200), int64(rng.Intn(401)-200), int64(rng.Intn(401)-200)
		expr := g.gen(3)
		src := fmt.Sprintf(`int main() {
	int a; int b; int c;
	a = %d; b = %d; c = %d;
	return %s;
}`, va, vb, vc, expr)
		f, err := cprog.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: parse %q: %v", trial, expr, err)
		}
		info, err := cprog.Analyze(f)
		if err != nil {
			t.Fatalf("trial %d: analyze %q: %v", trial, expr, err)
		}
		prog, lay, err := lower.Compile(info)
		if err != nil {
			// The only acceptable failure is exceeding the register
			// stack on a deep pathological nest.
			continue
		}
		m := New(prog, lay, kernel.DefaultCost())
		got, err := m.Run("main")
		if err != nil {
			t.Fatalf("trial %d: run %q: %v", trial, expr, err)
		}

		// Reference: evaluate the parsed return expression.
		ret := findReturn(f)
		want := evalRef(ret, map[string]int64{"a": va, "b": vb, "c": vc})
		if got != want {
			t.Fatalf("trial %d: %s with a=%d b=%d c=%d: interpreter %d, reference %d\nprogram:\n%s",
				trial, expr, va, vb, vc, got, want, prog)
		}
	}
}

func findReturn(f *cprog.File) cprog.Expr {
	main := f.Func("main")
	last := main.Body.Stmts[len(main.Body.Stmts)-1]
	return last.(*cprog.ReturnStmt).Value
}

// TestLoopsMatchReference cross-checks whole loops: random linear
// recurrences executed both by the interpreter and in Go.
func TestLoopsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		mul := int64(rng.Intn(5) - 2)
		add := int64(rng.Intn(21) - 10)
		n := rng.Intn(20) + 1
		init := int64(rng.Intn(11))
		src := fmt.Sprintf(`int main() {
	int i; int x;
	x = %d;
	for (i = 0; i < %d; i = i + 1) {
		x = x * %d + %d;
	}
	return x;
}`, init, n, mul, add)
		f, _ := cprog.Parse(src)
		info, err := cprog.Analyze(f)
		if err != nil {
			t.Fatal(err)
		}
		prog, lay, err := lower.Compile(info)
		if err != nil {
			t.Fatal(err)
		}
		m := New(prog, lay, kernel.DefaultCost())
		got, err := m.Run("main")
		if err != nil {
			t.Fatal(err)
		}
		want := init
		for i := 0; i < n; i++ {
			want = want*mul + add
		}
		if got != want {
			t.Fatalf("trial %d: x0=%d mul=%d add=%d n=%d: got %d, want %d",
				trial, init, mul, add, n, got, want)
		}
	}
}
