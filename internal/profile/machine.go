// Package profile executes MOP programs on a functional model of the
// ASIP kernel and collects the running-frequency profile the Partita flow
// needs: per-block execution counts, dynamic call counts per call site,
// and cycle totals under the kernel cost model.
//
// This is the "sample execution with typical input data" step of Choi et
// al. (DAC 1999), Section 2.
package profile

import (
	"errors"
	"fmt"

	"partita/internal/cprog"
	"partita/internal/kernel"
	"partita/internal/lower"
	"partita/internal/mop"
)

// ErrStepLimit is returned when execution exceeds the machine's step
// budget (runaway loop protection).
var ErrStepLimit = errors.New("profile: step limit exceeded")

// Machine is a functional + cycle-approximate model of the kernel.
type Machine struct {
	Prog *mop.Program
	Lay  *lower.Layout
	Cost kernel.CostModel

	X, Y []int64
	Regs [mop.NumRegs]int64

	flagEq, flagLt bool

	// MaxSteps bounds the number of executed MOPs (default 50M).
	MaxSteps int64

	stats Stats
	// blockCycles caches the packed cycle cost per block (packing is
	// deterministic, so one pass per block suffices).
	blockCycles map[*mop.Block]int64
}

// CallSite identifies a static call site: caller function, block label,
// and the index of the CALL within the block.
type CallSite struct {
	Caller string
	Block  string
	Index  int
}

// Stats is the collected execution profile.
type Stats struct {
	// BlockCount[fn][label] is the number of times the block ran.
	BlockCount map[string]map[string]int64
	// CallCount[fn] is the number of dynamic calls of fn.
	CallCount map[string]int64
	// SiteCount[site] is the dynamic execution count of one call site.
	SiteCount map[CallSite]int64
	// Cycles is total kernel cycles under the cost model.
	Cycles int64
	// FuncCycles[fn] is the inclusive cycle count attributed to fn
	// (cycles spent in fn and its callees while called from fn).
	FuncCycles map[string]int64
	// Ops is the number of MOPs executed.
	Ops int64
}

// New builds a machine for prog with the given layout. Memory sizes come
// from the layout with headroom for interface buffers and workload data.
func New(prog *mop.Program, lay *lower.Layout, cost kernel.CostModel) *Machine {
	xw := lay.XWords + 4096
	yw := lay.YWords + 4096
	m := &Machine{
		Prog:        prog,
		Lay:         lay,
		Cost:        cost,
		X:           make([]int64, xw),
		Y:           make([]int64, yw),
		MaxSteps:    50_000_000,
		blockCycles: map[*mop.Block]int64{},
	}
	m.Reset()
	return m
}

// Reset zeroes registers and memories and re-applies static initializers.
func (m *Machine) Reset() {
	for i := range m.X {
		m.X[i] = 0
	}
	for i := range m.Y {
		m.Y[i] = 0
	}
	m.Regs = [mop.NumRegs]int64{}
	m.flagEq, m.flagLt = false, false
	m.stats = Stats{
		BlockCount: map[string]map[string]int64{},
		CallCount:  map[string]int64{},
		SiteCount:  map[CallSite]int64{},
		FuncCycles: map[string]int64{},
	}
	for _, init := range m.Lay.Init {
		if init.Bank == cprog.BankY {
			m.Y[init.Addr] = init.Val
		} else {
			m.X[init.Addr] = init.Val
		}
	}
}

// Stats returns the profile accumulated since the last Reset.
func (m *Machine) Stats() Stats { return m.stats }

// WriteArray stores vals into data memory at (bank, base); used by tests
// and workload drivers to set up input data.
func (m *Machine) WriteArray(bank cprog.Bank, base int, vals []int64) error {
	mem := m.X
	if bank == cprog.BankY {
		mem = m.Y
	}
	if base < 0 || base+len(vals) > len(mem) {
		return fmt.Errorf("profile: array write [%d, %d) out of range", base, base+len(vals))
	}
	copy(mem[base:], vals)
	return nil
}

// ReadArray copies words out of data memory.
func (m *Machine) ReadArray(bank cprog.Bank, base, n int) ([]int64, error) {
	mem := m.X
	if bank == cprog.BankY {
		mem = m.Y
	}
	if base < 0 || base+n > len(mem) {
		return nil, fmt.Errorf("profile: array read [%d, %d) out of range", base, base+n)
	}
	out := make([]int64, n)
	copy(out, mem[base:])
	return out, nil
}

// Run executes the named function with the given arguments (scalars, or
// base addresses for array parameters) and returns the function result.
func (m *Machine) Run(fn string, args ...int64) (int64, error) {
	f := m.Prog.Function(fn)
	if f == nil {
		return 0, fmt.Errorf("profile: unknown function %q", fn)
	}
	if len(args) > 8 {
		return 0, fmt.Errorf("profile: %d arguments exceed the register convention", len(args))
	}
	for i, a := range args {
		m.Regs[mop.GPR(i)] = a
	}
	steps := m.MaxSteps - m.stats.Ops
	if err := m.exec(f, &steps); err != nil {
		return 0, err
	}
	return m.Regs[mop.RegRetVal], nil
}

// blockIndex finds a label's position in the function.
func blockIndex(f *mop.Function, label string) (int, error) {
	for i, b := range f.Blocks {
		if b.Label == label {
			return i, nil
		}
	}
	return 0, fmt.Errorf("profile: %s: unknown label %q", f.Name, label)
}

// exec runs one function activation to its RET.
func (m *Machine) exec(f *mop.Function, steps *int64) error {
	if len(f.Blocks) == 0 {
		return nil
	}
	m.stats.CallCount[f.Name]++
	startCycles := m.stats.Cycles
	defer func() {
		m.stats.FuncCycles[f.Name] += m.stats.Cycles - startCycles
	}()

	bc := m.stats.BlockCount[f.Name]
	if bc == nil {
		bc = map[string]int64{}
		m.stats.BlockCount[f.Name] = bc
	}

	bi := 0
	for {
		blk := f.Blocks[bi]
		bc[blk.Label]++
		cyc, ok := m.blockCycles[blk]
		if !ok {
			cyc = m.Cost.BlockCycles(blk.Ops)
			m.blockCycles[blk] = cyc
		}
		m.stats.Cycles += cyc

		transferred := false
		for oi := 0; oi < len(blk.Ops); oi++ {
			op := blk.Ops[oi]
			*steps--
			m.stats.Ops++
			if *steps <= 0 {
				return ErrStepLimit
			}
			switch op.Op {
			case mop.CALL:
				site := CallSite{Caller: f.Name, Block: blk.Label, Index: oi}
				m.stats.SiteCount[site]++
				m.stats.Cycles += m.Cost.CallExtra
				callee := m.Prog.Function(op.Sym)
				if callee == nil {
					return fmt.Errorf("profile: call to unknown function %q", op.Sym)
				}
				if err := m.exec(callee, steps); err != nil {
					return err
				}
			case mop.RET:
				m.stats.Cycles += m.Cost.RetExtra
				return nil
			case mop.BR:
				m.stats.Cycles += m.Cost.TakenBranchExtra
				ni, err := blockIndex(f, op.Sym)
				if err != nil {
					return err
				}
				bi = ni
				transferred = true
			case mop.BEQ, mop.BNE, mop.BLT, mop.BGE:
				taken := false
				switch op.Op {
				case mop.BEQ:
					taken = m.flagEq
				case mop.BNE:
					taken = !m.flagEq
				case mop.BLT:
					taken = m.flagLt
				case mop.BGE:
					taken = !m.flagLt
				}
				if taken {
					m.stats.Cycles += m.Cost.TakenBranchExtra
					ni, err := blockIndex(f, op.Sym)
					if err != nil {
						return err
					}
					bi = ni
				} else {
					if bi+1 >= len(f.Blocks) {
						return fmt.Errorf("profile: %s/%s: fallthrough off function end", f.Name, blk.Label)
					}
					bi++
				}
				transferred = true
			default:
				if err := m.step(op); err != nil {
					return fmt.Errorf("profile: %s/%s: %v: %w", f.Name, blk.Label, op, err)
				}
			}
			if transferred {
				break
			}
		}
		if !transferred {
			// Implicit fallthrough from a block without a terminator.
			if bi+1 >= len(f.Blocks) {
				return nil // implicit return
			}
			bi++
		}
	}
}

// step executes one non-control MOP.
func (m *Machine) step(op mop.MOP) error {
	r := &m.Regs
	switch op.Op {
	case mop.NOP:
	case mop.ADD:
		r[op.Dst] = r[op.SrcA] + r[op.SrcB]
	case mop.SUB:
		r[op.Dst] = r[op.SrcA] - r[op.SrcB]
	case mop.AND:
		r[op.Dst] = r[op.SrcA] & r[op.SrcB]
	case mop.OR:
		r[op.Dst] = r[op.SrcA] | r[op.SrcB]
	case mop.XOR:
		r[op.Dst] = r[op.SrcA] ^ r[op.SrcB]
	case mop.SHL:
		r[op.Dst] = r[op.SrcA] << uint(op.Imm&63)
	case mop.SHR:
		r[op.Dst] = r[op.SrcA] >> uint(op.Imm&63)
	case mop.NEG:
		r[op.Dst] = -r[op.SrcA]
	case mop.ABS:
		v := r[op.SrcA]
		if v < 0 {
			v = -v
		}
		r[op.Dst] = v
	case mop.MIN:
		a, b := r[op.SrcA], r[op.SrcB]
		if b < a {
			a = b
		}
		r[op.Dst] = a
	case mop.MAX:
		a, b := r[op.SrcA], r[op.SrcB]
		if b > a {
			a = b
		}
		r[op.Dst] = a
	case mop.SAT:
		v := r[op.SrcA]
		const hi, lo = 1<<15 - 1, -(1 << 15)
		if v > hi {
			v = hi
		} else if v < lo {
			v = lo
		}
		r[op.Dst] = v
	case mop.DIV:
		if r[op.SrcB] == 0 {
			return errors.New("division by zero")
		}
		r[op.Dst] = r[op.SrcA] / r[op.SrcB]
	case mop.REM:
		if r[op.SrcB] == 0 {
			return errors.New("remainder by zero")
		}
		r[op.Dst] = r[op.SrcA] % r[op.SrcB]
	case mop.MUL:
		r[op.Dst] = r[op.SrcA] * r[op.SrcB]
	case mop.MAC:
		r[op.Dst] += r[op.SrcA] * r[op.SrcB]
	case mop.MOV:
		r[op.Dst] = r[op.SrcA]
	case mop.LDI:
		r[op.Dst] = op.Imm
	case mop.CMP:
		a, b := r[op.SrcA], r[op.SrcB]
		m.flagEq = a == b
		m.flagLt = a < b
	case mop.LDX, mop.LDY:
		mem := m.X
		if op.Op == mop.LDY {
			mem = m.Y
		}
		addr := r[op.SrcA]
		if addr < 0 || addr >= int64(len(mem)) {
			return fmt.Errorf("load address %d out of range", addr)
		}
		r[op.Dst] = mem[addr]
		r[op.SrcA] += op.Imm
	case mop.STX, mop.STY:
		mem := m.X
		if op.Op == mop.STY {
			mem = m.Y
		}
		addr := r[op.SrcB]
		if addr < 0 || addr >= int64(len(mem)) {
			return fmt.Errorf("store address %d out of range", addr)
		}
		mem[addr] = r[op.SrcA]
		r[op.SrcB] += op.Imm
	case mop.AGUX, mop.AGUY:
		if op.Abs {
			r[op.Dst] = op.Imm
		} else {
			r[op.Dst] += op.Imm
		}
	default:
		return fmt.Errorf("unimplemented opcode %v", op.Op)
	}
	return nil
}
