package profile

import (
	"testing"

	"partita/internal/cprog"
	"partita/internal/kernel"
	"partita/internal/lower"
	"partita/internal/mop"
)

// compileRun compiles src and executes entry with args, returning the
// result and the machine for further inspection.
func compileRun(t *testing.T, src, entry string, args ...int64) (int64, *Machine) {
	t.Helper()
	f, err := cprog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := cprog.Analyze(f)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	prog, lay, err := lower.Compile(info)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	m := New(prog, lay, kernel.DefaultCost())
	got, err := m.Run(entry, args...)
	if err != nil {
		t.Fatalf("run: %v\nprogram:\n%s", err, prog)
	}
	return got, m
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		expr string
		want int64
	}{
		{"2 + 3 * 4", 14},
		{"(2 + 3) * 4", 20},
		{"7 / 2", 3},
		{"-7 / 2", -3},
		{"7 % 3", 1},
		{"1 << 4", 16},
		{"256 >> 3", 32},
		{"12 & 10", 8},
		{"12 | 10", 14},
		{"12 ^ 10", 6},
		{"-5", -5},
		{"~0", -1},
		{"!3", 0},
		{"!0", 1},
		{"3 < 4", 1},
		{"4 < 3", 0},
		{"4 <= 4", 1},
		{"5 > 4", 1},
		{"5 >= 6", 0},
		{"3 == 3", 1},
		{"3 != 3", 0},
		{"1 && 2", 1},
		{"1 && 0", 0},
		{"0 || 5", 1},
		{"0 || 0", 0},
	}
	for _, c := range cases {
		src := "int main() { return " + c.expr + "; }"
		got, _ := compileRun(t, src, "main")
		if got != c.want {
			t.Errorf("%s = %d, want %d", c.expr, got, c.want)
		}
	}
}

func TestVariablesAndLoops(t *testing.T) {
	src := `
int main() {
	int i;
	int sum;
	sum = 0;
	for (i = 1; i <= 10; i = i + 1) {
		sum = sum + i;
	}
	return sum;
}`
	got, _ := compileRun(t, src, "main")
	if got != 55 {
		t.Errorf("sum 1..10 = %d, want 55", got)
	}
}

func TestWhileAndIf(t *testing.T) {
	// Iterative collatz length of 27 (should be 111 steps).
	src := `
int main() {
	int n;
	int steps;
	n = 27;
	steps = 0;
	while (n != 1) {
		if (n % 2 == 0) { n = n / 2; }
		else { n = 3 * n + 1; }
		steps = steps + 1;
	}
	return steps;
}`
	got, _ := compileRun(t, src, "main")
	if got != 111 {
		t.Errorf("collatz(27) = %d, want 111", got)
	}
}

func TestArraysAndBanks(t *testing.T) {
	src := `
xmem int a[5] = {1, 2, 3, 4, 5};
ymem int b[5] = {10, 20, 30, 40, 50};
int main() {
	int i;
	int sum;
	sum = 0;
	for (i = 0; i < 5; i = i + 1) {
		sum = sum + a[i] * b[i];
	}
	return sum;
}`
	got, _ := compileRun(t, src, "main")
	if got != 550 {
		t.Errorf("dot product = %d, want 550", got)
	}
}

func TestLocalArrayInit(t *testing.T) {
	src := `
int main() {
	int w[4] = {3, 1, 4, 1};
	return w[0] * 1000 + w[1] * 100 + w[2] * 10 + w[3];
}`
	got, _ := compileRun(t, src, "main")
	if got != 3141 {
		t.Errorf("got %d, want 3141", got)
	}
}

func TestFunctionCallsWithArrays(t *testing.T) {
	src := `
xmem int x[8] = {1, 2, 3, 4, 5, 6, 7, 8};
ymem int h[3] = {1, 1, 1};
xmem int y[8];

int fir(xmem int in[], ymem int coef[], xmem int out[], int n, int taps) {
	int i;
	int j;
	int acc;
	for (i = 0; i + taps <= n; i = i + 1) {
		acc = 0;
		for (j = 0; j < taps; j = j + 1) {
			acc = acc + in[i + j] * coef[j];
		}
		out[i] = acc;
	}
	return n - taps + 1;
}

int main() {
	int m;
	m = fir(x, h, y, 8, 3);
	return m * 1000 + y[0] + y[5];
}`
	got, m := compileRun(t, src, "main")
	// y[0] = 1+2+3 = 6; y[5] = 6+7+8 = 21; m = 6.
	if got != 6027 {
		t.Errorf("got %d, want 6027", got)
	}
	st := m.Stats()
	if st.CallCount["fir"] != 1 {
		t.Errorf("fir called %d times", st.CallCount["fir"])
	}
	if st.Cycles <= 0 {
		t.Error("no cycles recorded")
	}
}

func TestNestedCallsAndTempSpill(t *testing.T) {
	src := `
int sq(int a) { return a * a; }
int add3(int a, int b, int c) { return a + b + c; }
int main() {
	// Live temps across calls force spills: 1 + sq(2 + sq(3)).
	return 1 + sq(2 + sq(3)) + add3(sq(2), 10 + sq(1), sq(sq(2)));
}`
	got, _ := compileRun(t, src, "main")
	// sq(3)=9; 2+9=11; sq(11)=121; 1+121=122.
	// add3(4, 11, 16) = 31. total 153.
	if got != 153 {
		t.Errorf("got %d, want 153", got)
	}
}

func TestGlobalScalarsPersistAcrossCalls(t *testing.T) {
	src := `
int counter;
void bump(int by) { counter = counter + by; }
int main() {
	int i;
	for (i = 0; i < 4; i = i + 1) { bump(i); }
	return counter;
}`
	got, _ := compileRun(t, src, "main")
	if got != 6 {
		t.Errorf("counter = %d, want 6", got)
	}
}

func TestDivisionByZeroTraps(t *testing.T) {
	src := `int main() { int z; z = 0; return 5 / z; }`
	f, _ := cprog.Parse(src)
	info, _ := cprog.Analyze(f)
	prog, lay, err := lower.Compile(info)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, lay, kernel.DefaultCost())
	if _, err := m.Run("main"); err == nil {
		t.Fatal("want division-by-zero error")
	}
}

func TestStepLimit(t *testing.T) {
	src := `int main() { while (1) { } return 0; }`
	f, _ := cprog.Parse(src)
	info, _ := cprog.Analyze(f)
	prog, lay, err := lower.Compile(info)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, lay, kernel.DefaultCost())
	m.MaxSteps = 10000
	if _, err := m.Run("main"); err != ErrStepLimit {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
}

func TestProfileCounts(t *testing.T) {
	src := `
int work(int n) {
	int i;
	int s;
	s = 0;
	for (i = 0; i < n; i = i + 1) { s = s + i; }
	return s;
}
int main() {
	int total;
	total = work(10) + work(20) + work(30);
	return total;
}`
	got, m := compileRun(t, src, "main")
	if got != 45+190+435 {
		t.Errorf("got %d", got)
	}
	st := m.Stats()
	if st.CallCount["work"] != 3 {
		t.Errorf("work call count = %d, want 3", st.CallCount["work"])
	}
	// Three static call sites, each run once.
	sites := 0
	for site, n := range st.SiteCount {
		if site.Caller == "main" {
			sites++
			if n != 1 {
				t.Errorf("site %v ran %d times, want 1", site, n)
			}
		}
	}
	if sites != 3 {
		t.Errorf("%d call sites recorded, want 3", sites)
	}
	if st.FuncCycles["work"] <= 0 || st.FuncCycles["main"] < st.FuncCycles["work"] {
		t.Errorf("FuncCycles: main=%d work=%d", st.FuncCycles["main"], st.FuncCycles["work"])
	}
}

func TestBreakAndContinue(t *testing.T) {
	src := `
int main() {
	int i; int sum;
	sum = 0;
	for (i = 0; i < 100; i = i + 1) {
		if (i % 2 == 0) { continue; } // skip evens; post must still run
		if (i > 9) { break; }
		sum = sum + i;
	}
	// 1+3+5+7+9 = 25; then ×1000, plus a while-loop break check.
	sum = sum * 1000;
	i = 0;
	while (1) {
		i = i + 1;
		if (i == 7) { break; }
	}
	return sum + i;
}`
	got, _ := compileRun(t, src, "main")
	if got != 25007 {
		t.Errorf("got %d, want 25007", got)
	}
}

func TestNestedLoopBreak(t *testing.T) {
	src := `
int main() {
	int i; int j; int hits;
	hits = 0;
	for (i = 0; i < 5; i = i + 1) {
		for (j = 0; j < 5; j = j + 1) {
			if (j == 2) { break; } // inner break only
			hits = hits + 1;
		}
	}
	return hits; // 5 outer × 2 inner
}`
	got, _ := compileRun(t, src, "main")
	if got != 10 {
		t.Errorf("got %d, want 10", got)
	}
}

func TestRunWithScalarArgs(t *testing.T) {
	src := `int gcd(int a, int b) {
		while (b != 0) { int t; t = b; b = a % b; a = t; }
		return a;
	}
	int main() { return gcd(12, 18); }`
	got, m := compileRun(t, src, "main")
	if got != 6 {
		t.Errorf("gcd(12,18) = %d, want 6", got)
	}
	// Call gcd directly with fresh args.
	got2, err := m.Run("gcd", 35, 21)
	if err != nil {
		t.Fatal(err)
	}
	if got2 != 7 {
		t.Errorf("gcd(35,21) = %d, want 7", got2)
	}
}

func TestWriteReadArray(t *testing.T) {
	src := `
xmem int buf[4];
int sum() {
	return buf[0] + buf[1] + buf[2] + buf[3];
}
int main() { return sum(); }`
	f, _ := cprog.Parse(src)
	info, _ := cprog.Analyze(f)
	prog, lay, err := lower.Compile(info)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, lay, kernel.DefaultCost())
	loc := lay.Globals["buf"]
	if err := m.WriteArray(loc.Bank, loc.Base, []int64{5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	got, err := m.Run("sum")
	if err != nil {
		t.Fatal(err)
	}
	if got != 26 {
		t.Errorf("sum = %d, want 26", got)
	}
	back, err := m.ReadArray(loc.Bank, loc.Base, 4)
	if err != nil {
		t.Fatal(err)
	}
	if back[2] != 7 {
		t.Errorf("ReadArray[2] = %d, want 7", back[2])
	}
}

func TestHandwrittenMOPs(t *testing.T) {
	// MAC-based dot product written directly in MOPs, exercising
	// post-modify addressing that the C lowering does not emit.
	p := mop.NewProgram("dot")
	p.Add(&mop.Function{
		Name: "dot",
		Blocks: []*mop.Block{
			{Label: "entry", Ops: []mop.MOP{
				{Op: mop.MOV, Dst: mop.AX(0), SrcA: mop.GPR(0)},
				{Op: mop.MOV, Dst: mop.AY(0), SrcA: mop.GPR(1)},
				{Op: mop.LDI, Dst: mop.RegAcc, Imm: 0},
				{Op: mop.BR, Sym: "loop"},
			}},
			{Label: "loop", Ops: []mop.MOP{
				{Op: mop.LDX, Dst: mop.GPR(3), SrcA: mop.AX(0), Imm: 1},
				{Op: mop.LDY, Dst: mop.GPR(4), SrcA: mop.AY(0), Imm: 1},
				{Op: mop.MAC, Dst: mop.RegAcc, SrcA: mop.GPR(3), SrcB: mop.GPR(4)},
				{Op: mop.LDI, Dst: mop.GPR(5), Imm: 1},
				{Op: mop.SUB, Dst: mop.GPR(2), SrcA: mop.GPR(2), SrcB: mop.GPR(5)},
				{Op: mop.LDI, Dst: mop.GPR(6), Imm: 0},
				{Op: mop.CMP, SrcA: mop.GPR(2), SrcB: mop.GPR(6)},
				{Op: mop.BNE, Sym: "loop"},
			}},
			{Label: "done", Ops: []mop.MOP{
				{Op: mop.MOV, Dst: mop.RegRetVal, SrcA: mop.RegAcc},
				{Op: mop.RET},
			}},
		},
	})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	lay := &lower.Layout{Globals: map[string]lower.Loc{}, Funcs: map[string]*lower.FuncLayout{}}
	m := New(p, lay, kernel.DefaultCost())
	if err := m.WriteArray(cprog.BankX, 100, []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteArray(cprog.BankY, 200, []int64{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	got, err := m.Run("dot", 100, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4+10+18 {
		t.Errorf("dot = %d, want 32", got)
	}
	st := m.Stats()
	if st.BlockCount["dot"]["loop"] != 3 {
		t.Errorf("loop ran %d times, want 3", st.BlockCount["dot"]["loop"])
	}
}
