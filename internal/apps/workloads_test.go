package apps

import (
	"testing"

	"partita/internal/ilp"
	"partita/internal/selector"
	"partita/internal/sim"
)

func buildWorkload(t *testing.T, gen func() (Workload, error), problem2 bool) *Built {
	t.Helper()
	w, err := gen()
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Build(problem2)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestGSMEncoderWorkloadExecutes(t *testing.T) {
	b := buildWorkload(t, GSMEncoderWorkload, false)
	stats, _, err := b.Profile()
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	if stats.CallCount["encoder"] != 2 {
		t.Errorf("encoder ran %d times, want 2", stats.CallCount["encoder"])
	}
	for _, fn := range []string{"preemph", "autocorr", "weight_fir", "ltp_search", "rpe_select", "quantize_arr"} {
		if stats.CallCount[fn] != 2 {
			t.Errorf("%s ran %d times, want 2", fn, stats.CallCount[fn])
		}
	}
	if stats.Cycles <= 0 {
		t.Error("no cycles")
	}
}

func TestGSMEncoderDBShape(t *testing.T) {
	b := buildWorkload(t, GSMEncoderWorkload, false)
	if len(b.DB.SCalls) != 6 {
		t.Errorf("s-calls = %d, want 6", len(b.DB.SCalls))
		for _, sc := range b.DB.SCalls {
			t.Logf("  %s = %s", sc.Name(), sc.Func)
		}
	}
	if len(b.DB.IMPs) < 20 {
		t.Errorf("IMPs = %d, want a rich database (>= 20)", len(b.DB.IMPs))
	}
	// The M-IP must appear for several s-calls.
	mip := 0
	for _, m := range b.DB.IMPs {
		if m.IP.ID == "IP20" {
			mip++
		}
	}
	if mip == 0 {
		t.Error("M-IP IP20 generated no methods")
	}
	// ltp_search must have a parallel-code variant (the bookkeeping
	// statements after it are independent).
	foundPC := false
	for _, m := range b.DB.IMPs {
		if m.SC.Func == "ltp_search" && m.UsesPC {
			foundPC = true
		}
	}
	if !foundPC {
		t.Error("no parallel-code IMP for ltp_search")
	}
}

func TestGSMEncoderSelectionSweep(t *testing.T) {
	b := buildWorkload(t, GSMEncoderWorkload, false)
	// Find the reachable gain range, then sweep.
	var total int64
	perSC := map[string]int64{}
	for _, m := range b.DB.IMPs {
		if m.TotalGain > perSC[m.SC.Name()] {
			perSC[m.SC.Name()] = m.TotalGain
		}
	}
	for _, g := range perSC {
		total += g
	}
	if total <= 0 {
		t.Fatal("no achievable gain")
	}
	prevArea := -1.0
	for _, frac := range []int64{10, 30, 50, 70, 90} {
		rg := total * frac / 100
		sel, err := selector.Solve(selector.Problem{DB: b.DB, Required: rg})
		if err != nil {
			t.Fatal(err)
		}
		if sel.Status != ilp.Optimal {
			t.Fatalf("frac %d%%: status %v", frac, sel.Status)
		}
		if sel.Gain < rg {
			t.Errorf("frac %d%%: gain %d < required %d", frac, sel.Gain, rg)
		}
		if sel.Area < prevArea-1e-9 {
			t.Errorf("area not monotone: %g after %g", sel.Area, prevArea)
		}
		prevArea = sel.Area
	}
}

func TestGSMEncoderSimulationAgreesWithModel(t *testing.T) {
	b := buildWorkload(t, GSMEncoderWorkload, false)
	var total int64
	perSC := map[string]int64{}
	for _, m := range b.DB.IMPs {
		if m.TotalGain > perSC[m.SC.Name()] {
			perSC[m.SC.Name()] = m.TotalGain
		}
	}
	for _, g := range perSC {
		total += g
	}
	sel, err := selector.Solve(selector.Problem{DB: b.DB, Required: total / 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunSelection(b.DB, sel.Chosen, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.AcceleratedCycles >= res.SoftwareCycles {
		t.Errorf("acceleration did not help: %d vs %d", res.AcceleratedCycles, res.SoftwareCycles)
	}
	for _, r := range res.Reports {
		if r.Predicted <= 0 {
			continue
		}
		rel := float64(r.Simulated-r.Predicted) / float64(r.Predicted)
		if rel < -0.4 || rel > 0.4 {
			t.Errorf("%s (%s): predicted %d vs simulated %d (%.0f%% off)",
				r.SCall, r.IMP, r.Predicted, r.Simulated, rel*100)
		}
	}
}

func TestTraceSelectionSpans(t *testing.T) {
	b := buildWorkload(t, GSMEncoderWorkload, false)
	sel, err := selector.Solve(selector.Problem{DB: b.DB, Required: selector.MaxReachableGain(b.DB) / 2})
	if err != nil {
		t.Fatal(err)
	}
	spans, err := sim.TraceSelection(b.DB, sel.Chosen, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("empty trace")
	}
	var sawIP bool
	var prevFrom int64 = -1
	for _, sp := range spans {
		if sp.From < 0 || sp.To < sp.From {
			t.Errorf("bad span %+v", sp)
		}
		if sp.From < prevFrom {
			t.Errorf("spans out of order: %d after %d", sp.From, prevFrom)
		}
		prevFrom = sp.From
		if sp.Unit == sim.UnitIP {
			sawIP = true
		}
	}
	if !sawIP {
		t.Error("no IP activity in an accelerated configuration")
	}
}

func TestJPEGWorkloadExecutesAndFlattens(t *testing.T) {
	b := buildWorkload(t, JPEGEncoderWorkload, false)
	stats, _, err := b.Profile()
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	if stats.CallCount["dct1d"] != 16 {
		t.Errorf("dct1d ran %d times, want 16 (8 rows + 8 cols)", stats.CallCount["dct1d"])
	}
	if stats.CallCount["cmul_re"] != 16*64 {
		t.Errorf("cmul_re ran %d times, want 1024", stats.CallCount["cmul_re"])
	}

	// The hierarchy must produce flattened IMPs for dct2d via dct1d and
	// via cmul_re.
	var viaDCT1D, viaCMUL, direct int
	for _, m := range b.DB.IMPs {
		if m.SC.Func != "dct2d" {
			continue
		}
		switch m.Flattened {
		case "dct1d":
			viaDCT1D++
		case "cmul_re":
			viaCMUL++
		case "":
			direct++
		}
	}
	if direct == 0 || viaDCT1D == 0 || viaCMUL == 0 {
		t.Errorf("dct2d IMPs: direct=%d viaDCT1D=%d viaCMUL=%d — hierarchy flattening incomplete",
			direct, viaDCT1D, viaCMUL)
	}
}

func TestJPEGSelectionPrefersDeeperIPAsRGGrows(t *testing.T) {
	// Table 3's qualitative shape: small RG → cheap deep-hierarchy IP
	// (C-MUL); large RG → the full 2D-DCT engine.
	b := buildWorkload(t, JPEGEncoderWorkload, false)
	var low, high *selector.Selection
	var maxGain int64
	for _, m := range b.DB.IMPs {
		if m.SC.Func == "dct2d" && m.TotalGain > maxGain {
			maxGain = m.TotalGain
		}
	}
	var err error
	low, err = selector.Solve(selector.Problem{DB: b.DB, Required: maxGain / 8})
	if err != nil {
		t.Fatal(err)
	}
	high, err = selector.Solve(selector.Problem{DB: b.DB, Required: maxGain * 9 / 10})
	if err != nil {
		t.Fatal(err)
	}
	if low.Status != ilp.Optimal || high.Status != ilp.Optimal {
		t.Fatalf("low=%v high=%v", low.Status, high.Status)
	}
	if low.Area >= high.Area {
		t.Errorf("area should grow with RG: %g vs %g", low.Area, high.Area)
	}
}

func TestProblem2ProducesMoreMethods(t *testing.T) {
	b1 := buildWorkload(t, GSMEncoderWorkload, false)
	b2 := buildWorkload(t, GSMEncoderWorkload, true)
	if len(b2.DB.SCalls) < len(b1.DB.SCalls) {
		t.Errorf("Problem 2 should have at least as many s-call groups: %d vs %d",
			len(b2.DB.SCalls), len(b1.DB.SCalls))
	}
}
