package apps

import (
	"fmt"
	"strings"

	"partita/internal/cdfg"
	"partita/internal/cprog"
	"partita/internal/imp"
	"partita/internal/ip"
	"partita/internal/kernel"
	"partita/internal/lower"
	"partita/internal/mop"
	"partita/internal/profile"
)

// Workload bundles everything needed to push an application through the
// full pipeline.
type Workload struct {
	Name string
	// Source is the mini-C program.
	Source string
	// Root is the function whose s-calls are optimized.
	Root string
	// Entry is the executable entry point for profiling.
	Entry string
	// Catalog is the IP library available to the selector.
	Catalog *ip.Catalog
	// DataCount gives per-function accelerator data volumes.
	DataCount func(fn string) (int, int)
}

// Built is a fully compiled and analyzed workload.
type Built struct {
	Workload Workload
	Info     *cprog.Info
	Prog     *mop.Program
	Layout   *lower.Layout
	DB       *imp.DB
}

// Build runs the front half of the Partita flow: parse → analyze →
// lower → IMP database generation.
func (w Workload) Build(problem2 bool) (*Built, error) {
	f, err := cprog.Parse(w.Source)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	info, err := cprog.Analyze(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	prog, lay, err := lower.Compile(info)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	db, err := imp.Generate(info, w.Root, imp.Config{
		Catalog:   w.Catalog,
		Area:      kernel.DefaultArea(),
		DataCount: w.DataCount,
		Problem2:  problem2,
		CDFG:      cdfg.DefaultOptions(),
	})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	return &Built{Workload: w, Info: info, Prog: prog, Layout: lay, DB: db}, nil
}

// Profile executes the workload's entry function on the kernel model and
// returns the collected statistics.
func (b *Built) Profile() (profile.Stats, int64, error) {
	m := profile.New(b.Prog, b.Layout, kernel.DefaultCost())
	ret, err := m.Run(b.Workload.Entry)
	if err != nil {
		return profile.Stats{}, 0, err
	}
	return m.Stats(), ret, nil
}

// speechInit generates a deterministic synthetic speech-like initializer
// (a decaying pseudo-sinusoid) of n samples.
func speechInit(n int) string {
	vals := make([]string, n)
	x := int64(1200)
	for i := 0; i < n; i++ {
		// Simple integer oscillator with drift: deterministic, bounded.
		x = (x*13 + 7) % 2048
		v := x - 1024
		vals[i] = fmt.Sprintf("%d", v)
	}
	return strings.Join(vals, ", ")
}

// GSMEncoderWorkload builds the end-to-end GSM(TDMA)-style encoder: a
// 40-sample speech frame flowing through pre-emphasis, autocorrelation
// LPC analysis, a weighting FIR, long-term-prediction search, RPE grid
// selection, and quantization — the s-call structure of Table 1's
// application at reduced frame size.
func GSMEncoderWorkload() (Workload, error) {
	src := `
// --- GSM-style encoder frame pipeline (reduced size) ---
xmem int speech[40] = {` + speechInit(40) + `};
xmem int emph[40];
ymem int acf[8];
ymem int wcoef[8] = {4096, 8192, 12288, 16384, 12288, 8192, 4096, 2048};
xmem int wout[40];
xmem int history[40] = {` + speechInit(40) + `};
xmem int rpe[16];
xmem int bits[16];
int cfgGain;
int cfgStep;
int frameStatus;

int preemph(xmem int in[], xmem int out[], int n) {
	int i;
	out[0] = in[0];
	for (i = 1; i < n; i = i + 1) {
		out[i] = in[i] - ((28180 * in[i - 1]) >> 15);
	}
	return out[n - 1];
}

int autocorr(xmem int in[], ymem int r[], int n, int lags) {
	int k; int i; int acc;
	for (k = 0; k < lags; k = k + 1) {
		acc = 0;
		for (i = 0; i + k < n; i = i + 1) {
			acc = acc + ((in[i] * in[i + k]) >> 8);
		}
		r[k] = acc;
	}
	return r[0];
}

int weight_fir(xmem int in[], ymem int c[], xmem int out[], int n, int taps) {
	int i; int j; int acc;
	for (i = 0; i + taps <= n; i = i + 1) {
		acc = 0;
		for (j = 0; j < taps; j = j + 1) {
			acc = acc + in[i + j] * c[j];
		}
		out[i] = acc >> 15;
	}
	return out[0];
}

int ltp_search(xmem int cur[], xmem int prev[], int n) {
	int lag; int i; int acc; int best; int bestLag;
	best = -2147483647;
	bestLag = 0;
	for (lag = 0; lag < 16; lag = lag + 1) {
		acc = 0;
		for (i = 0; i + lag < n; i = i + 1) {
			acc = acc + ((cur[i] * prev[i + lag]) >> 8);
		}
		if (acc > best) { best = acc; bestLag = lag; }
	}
	return bestLag;
}

int rpe_select(xmem int in[], xmem int out[], int n) {
	int grid; int g; int i; int e; int beste;
	beste = -1;
	grid = 0;
	for (g = 0; g < 3; g = g + 1) {
		e = 0;
		for (i = g; i < n; i = i + 3) {
			e = e + ((in[i] * in[i]) >> 10);
		}
		if (e > beste) { beste = e; grid = g; }
	}
	for (i = 0; i < 13; i = i + 1) {
		out[i] = in[grid + i * 3];
	}
	return grid;
}

int quantize_arr(xmem int in[], xmem int out[], int n, int step) {
	int i;
	for (i = 0; i < n; i = i + 1) {
		out[i] = in[i] / step;
	}
	return out[0];
}

int encoder() {
	int e; int r; int w; int lag; int grid; int q;
	e = preemph(speech, emph, 40);
	r = autocorr(emph, acf, 40, 8);
	w = weight_fir(emph, wcoef, wout, 40, 8);
	lag = ltp_search(wout, history, 40);
	// Frame bookkeeping independent of the LTP search: candidate
	// parallel code for the ltp_search s-call.
	cfgGain = (cfgStep * 3 + 11) >> 1;
	cfgStep = cfgGain + 5;
	grid = rpe_select(wout, rpe, 40);
	q = quantize_arr(rpe, bits, 13, 4);
	frameStatus = e + r + w + lag + grid + q;
	return frameStatus;
}

int main() {
	int f; int total;
	total = 0;
	for (f = 0; f < 2; f = f + 1) {
		total = total + encoder();
	}
	return total;
}
`
	mk := func(id, name string, area float64, rate, latency int, funcs ...string) *ip.IP {
		return &ip.IP{ID: id, Name: name, Funcs: funcs, InPorts: 2, OutPorts: 2,
			InRate: rate, OutRate: rate, Latency: latency, Pipelined: true, Area: area}
	}
	cat, err := ip.NewCatalog(
		mk("IP10", "pre-emphasis filter", 2.0, 4, 4, "preemph"),
		mk("IP03", "autocorrelator", 13.5, 2, 16, "autocorr"),
		mk("IP12", "weighting FIR", 2.7, 4, 8, "weight_fir"),
		mk("IP13", "LTP correlator", 14.7, 2, 24, "ltp_search"),
		mk("IP16", "RPE grid selector", 2.5, 4, 12, "rpe_select"),
		mk("IP17", "block quantizer", 2.7, 4, 4, "quantize_arr"),
		mk("IP20", "filter/correlator M-IP", 16.0, 4, 20, "weight_fir", "autocorr", "ltp_search"),
	)
	if err != nil {
		return Workload{}, err
	}
	cat.Get("IP20").PerfFactor = 1.6

	return Workload{
		Name:    "gsm-encoder",
		Source:  src,
		Root:    "encoder",
		Entry:   "main",
		Catalog: cat,
		DataCount: func(fn string) (int, int) {
			switch fn {
			case "preemph", "weight_fir":
				return 40, 40
			case "autocorr":
				return 40, 8
			case "ltp_search":
				return 80, 1
			case "rpe_select":
				return 40, 13
			case "quantize_arr":
				return 13, 13
			}
			return 0, 0
		},
	}, nil
}

// JPEGEncoderWorkload builds the end-to-end JPEG-style encoder whose
// call hierarchy matches Table 3: jpeg_block → dct2d → dct1d → cmul_re,
// plus zig-zag scanning and quantization on an 8×8 block.
func JPEGEncoderWorkload() (Workload, error) {
	src := `
// --- JPEG-style 8×8 block pipeline ---
xmem int block[64] = {` + speechInit(64) + `};
ymem int cosq[64] = {` + cosTableInit(8) + `};
xmem int rowbuf[8];
ymem int rowout[8];
xmem int stage[64];
ymem int freq[64];
xmem int scan[64];
xmem int coded[64];
int dcPred;
int blockStatus;

// Complex-multiply real part: the innermost s-call of the hierarchy.
int cmul_re(int ar, int ai, int br, int bi) {
	return ((ar * br) >> 8) - ((ai * bi) >> 8);
}

// 8-point DCT built on cmul_re (stands in for the FFT butterflies).
int dct1d(xmem int in[], ymem int out[], ymem int cq[]) {
	int k; int i; int acc;
	for (k = 0; k < 8; k = k + 1) {
		acc = 0;
		for (i = 0; i < 8; i = i + 1) {
			acc = acc + cmul_re(in[i], in[i] >> 4, cq[k * 8 + i], cq[i * 8 + k]);
		}
		out[k] = acc >> 4;
	}
	return out[0];
}

// 2-D DCT: row pass then column pass, each via dct1d.
int dct2d(xmem int b[], xmem int st[], ymem int f[], ymem int cq[]) {
	int r; int c; int v;
	for (r = 0; r < 8; r = r + 1) {
		for (c = 0; c < 8; c = c + 1) { rowbuf[c] = b[r * 8 + c]; }
		v = dct1d(rowbuf, rowout, cq);
		for (c = 0; c < 8; c = c + 1) { st[r * 8 + c] = rowout[c]; }
	}
	for (c = 0; c < 8; c = c + 1) {
		int r2;
		for (r2 = 0; r2 < 8; r2 = r2 + 1) { rowbuf[r2] = st[r2 * 8 + c]; }
		v = dct1d(rowbuf, rowout, cq);
		for (r2 = 0; r2 < 8; r2 = r2 + 1) { f[r2 * 8 + c] = rowout[r2]; }
	}
	return v;
}

int zigzag_scan(ymem int in[], xmem int out[]) {
	int s; int r; int c; int idx;
	idx = 0;
	for (s = 0; s < 15; s = s + 1) {
		if (s % 2 == 0) {
			r = s; if (r > 7) { r = 7; }
			c = s - r;
			while (r >= 0 && c < 8) {
				out[idx] = in[r * 8 + c];
				idx = idx + 1;
				r = r - 1;
				c = c + 1;
			}
		} else {
			c = s; if (c > 7) { c = 7; }
			r = s - c;
			while (c >= 0 && r < 8) {
				out[idx] = in[r * 8 + c];
				idx = idx + 1;
				c = c - 1;
				r = r + 1;
			}
		}
	}
	return out[0];
}

int quant_block(xmem int in[], xmem int out[], int step) {
	int i;
	for (i = 0; i < 64; i = i + 1) {
		out[i] = in[i] / step;
	}
	return out[0];
}

int jpeg_block() {
	int d; int z; int q;
	d = dct2d(block, stage, freq, cosq);
	// DC prediction update is independent of the zig-zag scan.
	dcPred = (dcPred * 3 + d) >> 2;
	z = zigzag_scan(freq, scan);
	q = quant_block(scan, coded, 8);
	blockStatus = d + z + q;
	return blockStatus;
}

int main() {
	return jpeg_block();
}
`
	mk := func(id, name string, area float64, rate, latency int, funcs ...string) *ip.IP {
		return &ip.IP{ID: id, Name: name, Funcs: funcs, InPorts: 2, OutPorts: 2,
			InRate: rate, OutRate: rate, Latency: latency, Pipelined: true, Area: area}
	}
	cat, err := ip.NewCatalog(
		mk("IP1", "2D-DCT engine", 26.5, 1, 64, "dct2d"),
		mk("IP2", "1D-DCT engine", 10.5, 2, 16, "dct1d"),
		mk("IP4", "complex multiplier", 3.8, 4, 4, "cmul_re"),
		mk("IP5", "zig-zag scanner", 4.8, 2, 8, "zigzag_scan"),
	)
	if err != nil {
		return Workload{}, err
	}
	return Workload{
		Name:    "jpeg-encoder",
		Source:  src,
		Root:    "jpeg_block",
		Entry:   "main",
		Catalog: cat,
		DataCount: func(fn string) (int, int) {
			switch fn {
			case "dct2d":
				return 64, 64
			case "dct1d":
				return 8, 8
			case "cmul_re":
				return 4, 1
			case "zigzag_scan":
				return 64, 64
			case "quant_block":
				return 64, 64
			}
			return 0, 0
		},
	}, nil
}

// cosTableInit renders an integer cosine-like table for the mini-C DCT.
func cosTableInit(n int) string {
	vals := make([]string, n*n)
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			// Deterministic integer stand-in for cos(πk(2i+1)/2n) in Q8:
			// a triangle wave keeps magnitudes bounded and varied.
			phase := (k*(2*i+1) + n) % (4 * n)
			var v int
			switch {
			case phase < n:
				v = 256 * phase / n
			case phase < 3*n:
				v = 256 * (2*n - phase) / n
			default:
				v = 256 * (phase - 4*n) / n
			}
			vals[k*n+i] = fmt.Sprintf("%d", v)
		}
	}
	return strings.Join(vals, ", ")
}
