package apps

import (
	"testing"

	"partita/internal/ilp"
	"partita/internal/selector"
	"partita/internal/sim"
)

func TestGSMDecoderWorkloadExecutes(t *testing.T) {
	b := buildWorkload(t, GSMDecoderWorkload, false)
	stats, _, err := b.Profile()
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	if stats.CallCount["decoder"] != 2 {
		t.Errorf("decoder ran %d times, want 2", stats.CallCount["decoder"])
	}
	if stats.CallCount["synth_filter"] != 4 {
		t.Errorf("synth_filter ran %d times, want 4 (2 stages × 2 frames)", stats.CallCount["synth_filter"])
	}
	if stats.CallCount["postproc"] != 4 {
		t.Errorf("postproc ran %d times, want 4", stats.CallCount["postproc"])
	}
}

func TestGSMDecoderGrouping(t *testing.T) {
	// Problem 1 groups the two synth_filter sites into one s-call; under
	// Problem 2 they are separate.
	p1 := buildWorkload(t, GSMDecoderWorkload, false)
	p2 := buildWorkload(t, GSMDecoderWorkload, true)
	count := func(b *Built, fn string) (groups, sites int) {
		for _, sc := range b.DB.SCalls {
			if sc.Func == fn {
				groups++
				sites += len(sc.Sites)
			}
		}
		return
	}
	g1, s1 := count(p1, "synth_filter")
	if g1 != 1 || s1 != 2 {
		t.Errorf("Problem 1: synth_filter groups=%d sites=%d, want 1/2", g1, s1)
	}
	g2, s2 := count(p2, "synth_filter")
	if g2 != 2 || s2 != 2 {
		t.Errorf("Problem 2: synth_filter groups=%d sites=%d, want 2/2", g2, s2)
	}
}

func TestGSMDecoderIPMigration(t *testing.T) {
	// Table 2's macro behaviour on the live workload: at low RG the
	// compact synthesis filter (IP05) suffices; pushing RG toward the
	// maximum forces the fast filter (IP04).
	b := buildWorkload(t, GSMDecoderWorkload, false)
	bestPerSC := map[string]int64{}
	bestIP04 := int64(0)
	for _, m := range b.DB.IMPs {
		if m.TotalGain > bestPerSC[m.SC.Name()] {
			bestPerSC[m.SC.Name()] = m.TotalGain
		}
		if m.SC.Func == "synth_filter" && m.IP.ID == "IP04" && m.TotalGain > bestIP04 {
			bestIP04 = m.TotalGain
		}
	}
	if bestIP04 == 0 {
		t.Fatal("fast synthesis filter generated no methods")
	}
	var total int64
	for _, g := range bestPerSC {
		total += g
	}
	low, err := selector.Solve(selector.Problem{DB: b.DB, Required: total / 5})
	if err != nil {
		t.Fatal(err)
	}
	// Requiring the full reachable gain forces every s-call onto its
	// best method, which for synth_filter is the fast IP04.
	high, err := selector.Solve(selector.Problem{DB: b.DB, Required: total})
	if err != nil {
		t.Fatal(err)
	}
	if low.Status != ilp.Optimal || high.Status != ilp.Optimal {
		t.Fatalf("low=%v high=%v", low.Status, high.Status)
	}
	usesIP := func(sel *selector.Selection, id string) bool {
		for _, m := range sel.Chosen {
			if m.IP.ID == id {
				return true
			}
		}
		return false
	}
	if usesIP(low, "IP04") {
		t.Errorf("low RG already uses the expensive fast filter")
	}
	if !usesIP(high, "IP04") {
		t.Errorf("high RG did not migrate to the fast filter")
	}
	if low.Area >= high.Area {
		t.Errorf("area should grow: %g vs %g", low.Area, high.Area)
	}
}

func TestGSMDecoderSimulation(t *testing.T) {
	b := buildWorkload(t, GSMDecoderWorkload, false)
	var total int64
	best := map[string]int64{}
	for _, m := range b.DB.IMPs {
		if m.TotalGain > best[m.SC.Name()] {
			best[m.SC.Name()] = m.TotalGain
		}
	}
	for _, g := range best {
		total += g
	}
	sel, err := selector.Solve(selector.Problem{DB: b.DB, Required: total / 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunSelection(b.DB, sel.Chosen, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup() <= 1 {
		t.Errorf("speedup %.2f", res.Speedup())
	}
}
