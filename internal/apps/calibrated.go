// Package apps provides the paper's evaluation workloads in two forms:
//
//  1. *Paper-calibrated* IMP databases transcribed from Tables 1-3 of
//     Choi et al. (DAC 1999) — GSM(TDMA) encoder and decoder and the
//     JPEG encoder — so the selector regenerates the published rows;
//  2. *end-to-end* mini-C workloads with synthetic IP catalogs that run
//     through the full pipeline (compile → profile → CDFG → IMP →
//     select → simulate).
//
// Calibration notes. The tables list, per selected s-call, the tuple
// (IP, interface type, gain, area) where area covers the IP plus its
// interface, counted once per distinct implementation (s-calls
// implemented the same way merge into one S-instruction). We decompose
// each listed area into a shared IP area plus a per-interface area, and
// add dominated decoy methods (same s-call, lower gain, higher area) to
// flesh the database out to the paper's IMP counts (42 encoder / 27
// decoder / 7+2 JPEG) without disturbing the optima. Two published
// quirks cannot be reproduced exactly and are documented in
// EXPERIMENTS.md: the decoder row RG=22240 has several equal-area optima
// (the paper reports G=28524; the lexicographic tie-break here finds
// G=27474), and the encoder row RG=381923 lists SC15's implementation
// with area 3.5 where every other row lists 3 (we keep 3, so A=40.5
// versus the published 41).
package apps

import (
	"partita/internal/iface"
	"partita/internal/imp"
	"partita/internal/ip"
)

// TableRow is one published row plus the checkable expectations.
type TableRow struct {
	// RG is the required gain (the paper's first column).
	RG int64
	// PaperGain, PaperArea, PaperS, PaperO are the published G/A/S/O.
	PaperGain int64
	PaperArea float64
	PaperS    int
	PaperO    int
	// WantGain/WantArea are what the reproduction should produce; they
	// equal the published values except on the documented quirk rows
	// (WantGain < 0 means "any gain ≥ RG at the published area").
	WantGain int64
	WantArea float64
	// WantS/WantO are the expected S-instruction and covered-s-call
	// counts under the min-surplus tie-break (equal to PaperS/PaperO on
	// rows where the optimum is unique).
	WantS, WantO int
	// WantImpl maps s-call names to "IPxx,IFy" strings for rows where
	// the published selection is provably the unique optimum.
	WantImpl map[string]string
}

// synthIP builds a synthetic descriptor for a calibrated block. Ports,
// rates and latency are representative only — the calibrated databases
// carry gains directly, so these fields only matter for Validate.
func synthIP(id string, area float64, funcs ...string) *ip.IP {
	return &ip.IP{
		ID: id, Name: id, Funcs: funcs,
		InPorts: 2, OutPorts: 2, InRate: 4, OutRate: 4,
		Latency: 8, Pipelined: true, Area: area,
	}
}

// GSMEncoderTable returns the calibrated database and expected rows of
// Table 1 (GSM encoder: 18 s-calls, 23 IPs, 42 IMPs).
func GSMEncoderTable() (*imp.DB, []TableRow, error) {
	// Shared IP areas chosen so that IP area + interface area equals the
	// listed per-implementation area.
	ip3 := synthIP("IP03", 13.5, "lpc_analysis")
	ip10 := synthIP("IP10", 1.7, "preemph")
	ip12 := synthIP("IP12", 2.7, "weight_filter")
	ip13 := synthIP("IP13", 14.7, "ltp_search")
	ip16 := synthIP("IP16", 2.5, "rpe_grid")
	ip17 := synthIP("IP17", 2.7, "quant_code")
	ip15 := synthIP("IP15", 6.0, "weight_filter") // alternative S-IP, dominated
	ip18 := synthIP("IP18", 18.0, "ltp_sub")      // hierarchy decoy target
	ipd1 := synthIP("IPD1", 28.0, "misc_a", "misc_b", "misc_c")
	ipd2 := synthIP("IPD2", 24.0, "misc_d", "misc_e")
	ipd3 := synthIP("IPD3", 22.0, "misc_f", "misc_g")

	// The 18 s-calls of the encoder. Names for the ones the table
	// mentions reflect their role in a GSM 06.10-style coder.
	funcs := []string{
		"sc1_scale", "lpc_analysis", "sc3_reflect", "sc4_lar", "sc5_interp",
		"preemph", "weight_filter_a", "sc8_autocorr", "weight_filter_b",
		"preemph_b", "weight_filter_c", "preemph_c", "weight_filter_d",
		"ltp_search", "rpe_grid", "quant_code", "sc17_pack", "sc18_crc",
	}
	sims := []imp.SynthIMP{
		// --- methods appearing in published rows ---
		{SC: 2, IP: ip3, Type: iface.Type1, Gain: 41670, IfaceArea: 0.5},
		{SC: 6, IP: ip10, Type: iface.Type0, Gain: 978, IfaceArea: 0.3},
		{SC: 7, IP: ip12, Type: iface.Type0, Gain: 12531, IfaceArea: 0.3},
		{SC: 9, IP: ip12, Type: iface.Type0, Gain: 13489, IfaceArea: 0.3},
		{SC: 10, IP: ip10, Type: iface.Type0, Gain: 978, IfaceArea: 0.3},
		{SC: 11, IP: ip12, Type: iface.Type0, Gain: 12531, IfaceArea: 0.3},
		{SC: 12, IP: ip10, Type: iface.Type0, Gain: 978, IfaceArea: 0.3},
		{SC: 13, IP: ip12, Type: iface.Type0, Gain: 115037, IfaceArea: 0.3},
		{SC: 14, IP: ip13, Type: iface.Type1, Gain: 162612, IfaceArea: 0.3},
		{SC: 14, IP: ip13, Type: iface.Type3, Gain: 164532, IfaceArea: 0.8, UsesPC: true},
		{SC: 15, IP: ip16, Type: iface.Type2, Gain: 8200, IfaceArea: 0.5},
		{SC: 16, IP: ip17, Type: iface.Type0, Gain: 11576, IfaceArea: 0.3},

		// --- dominated alternatives (same IP, worse interface) ---
		{SC: 7, IP: ip12, Type: iface.Type2, Gain: 12400, IfaceArea: 0.8},
		{SC: 9, IP: ip12, Type: iface.Type2, Gain: 13300, IfaceArea: 0.8},
		{SC: 11, IP: ip12, Type: iface.Type2, Gain: 12400, IfaceArea: 0.8},
		{SC: 13, IP: ip12, Type: iface.Type2, Gain: 114000, IfaceArea: 0.8},
		{SC: 9, IP: ip12, Type: iface.Type1, Gain: 13000, IfaceArea: 0.9},
		{SC: 11, IP: ip12, Type: iface.Type1, Gain: 12000, IfaceArea: 0.9},
		{SC: 13, IP: ip12, Type: iface.Type1, Gain: 114500, IfaceArea: 0.9},
		{SC: 6, IP: ip10, Type: iface.Type2, Gain: 950, IfaceArea: 0.8},
		{SC: 10, IP: ip10, Type: iface.Type2, Gain: 950, IfaceArea: 0.8},
		{SC: 12, IP: ip10, Type: iface.Type2, Gain: 950, IfaceArea: 0.8},
		{SC: 2, IP: ip3, Type: iface.Type3, Gain: 41000, IfaceArea: 1.5},
		// Parallel-code variant of SC2 (one of the paper's three
		// PC-exploiting IMPs): more gain but a bigger buffer.
		{SC: 2, IP: ip3, Type: iface.Type1, Gain: 41800, IfaceArea: 1.0, UsesPC: true},
		{SC: 14, IP: ip13, Type: iface.Type2, Gain: 150000, IfaceArea: 1.0},
		{SC: 16, IP: ip17, Type: iface.Type2, Gain: 11000, IfaceArea: 0.8},
		{SC: 16, IP: ip17, Type: iface.Type1, Gain: 11300, IfaceArea: 0.9},
		// Alternative S-IP for SC13 (the "two or three IPs per s-call").
		{SC: 13, IP: ip15, Type: iface.Type0, Gain: 110000, IfaceArea: 0.3},
		// Hierarchy-flattened decoy (the paper's one hierarchical IMP).
		{SC: 14, IP: ip18, Type: iface.Type0, Gain: 90000, IfaceArea: 0.3, Flattened: "ltp_sub"},
		// Software-PC method: uses the software body of SC17 as its
		// parallel code → conflicts with any hardware method of SC17.
		{SC: 15, IP: ip16, Type: iface.Type3, Gain: 8600, IfaceArea: 3.0, UsesPC: true, PCOf: []int{17}},

		// --- methods of the seven s-calls the tables never select ---
		{SC: 1, IP: ipd1, Type: iface.Type0, Gain: 900, IfaceArea: 0.3},
		{SC: 3, IP: ipd1, Type: iface.Type0, Gain: 850, IfaceArea: 0.3},
		{SC: 4, IP: ipd1, Type: iface.Type0, Gain: 800, IfaceArea: 0.3},
		{SC: 5, IP: ipd2, Type: iface.Type0, Gain: 700, IfaceArea: 0.3},
		{SC: 8, IP: ipd2, Type: iface.Type0, Gain: 650, IfaceArea: 0.3},
		{SC: 17, IP: ipd3, Type: iface.Type0, Gain: 600, IfaceArea: 0.3},
		{SC: 18, IP: ipd3, Type: iface.Type0, Gain: 550, IfaceArea: 0.3},
		{SC: 1, IP: ipd2, Type: iface.Type2, Gain: 880, IfaceArea: 0.8},
		{SC: 3, IP: ipd2, Type: iface.Type2, Gain: 840, IfaceArea: 0.8},
		{SC: 4, IP: ipd3, Type: iface.Type2, Gain: 790, IfaceArea: 0.8},
		{SC: 5, IP: ipd3, Type: iface.Type2, Gain: 690, IfaceArea: 0.8},
		{SC: 8, IP: ipd1, Type: iface.Type2, Gain: 640, IfaceArea: 0.8},
	}

	db, err := imp.NewSyntheticDB(funcs, sims)
	if err != nil {
		return nil, nil, err
	}
	rows := []TableRow{
		{RG: 47740, PaperGain: 115037, PaperArea: 3, PaperS: 1, PaperO: 1,
			WantGain: 115037, WantArea: 3, WantS: 1, WantO: 1,
			WantImpl: map[string]string{"SC13": "IP12,IF0"}},
		{RG: 95480, PaperGain: 115037, PaperArea: 3, PaperS: 1, PaperO: 1,
			WantGain: 115037, WantArea: 3, WantS: 1, WantO: 1,
			WantImpl: map[string]string{"SC13": "IP12,IF0"}},
		{RG: 143221, PaperGain: 153588, PaperArea: 3, PaperS: 1, PaperO: 4,
			WantGain: 153588, WantArea: 3, WantS: 1, WantO: 4,
			WantImpl: map[string]string{"SC7": "IP12,IF0", "SC9": "IP12,IF0", "SC11": "IP12,IF0", "SC13": "IP12,IF0"}},
		{RG: 190961, PaperGain: 195258, PaperArea: 17, PaperS: 2, PaperO: 5,
			WantGain: 195258, WantArea: 17, WantS: 2, WantO: 5,
			WantImpl: map[string]string{"SC2": "IP03,IF1", "SC13": "IP12,IF0"}},
		// Equal-area tie: the paper's solver also included SC7/SC9/SC11
		// on the shared IP12 (zero marginal area, G=316200, O=5); the
		// min-surplus tie-break selects only SC13+SC14 (G=277649).
		{RG: 238702, PaperGain: 316200, PaperArea: 18, PaperS: 2, PaperO: 5,
			WantGain: 277649, WantArea: 18, WantS: 2, WantO: 2,
			WantImpl: map[string]string{"SC14": "IP13,IF1", "SC13": "IP12,IF0"}},
		// Same tie one step later: min surplus adds only SC7.
		{RG: 286442, PaperGain: 316200, PaperArea: 18, PaperS: 2, PaperO: 5,
			WantGain: 290180, WantArea: 18, WantS: 2, WantO: 3,
			WantImpl: map[string]string{"SC14": "IP13,IF1"}},
		{RG: 334182, PaperGain: 335976, PaperArea: 24, PaperS: 4, PaperO: 7,
			WantGain: 335976, WantArea: 24, WantS: 4, WantO: 7,
			WantImpl: map[string]string{"SC14": "IP13,IF1", "SC15": "IP16,IF2", "SC16": "IP17,IF0"}},
		// Published area is 41 because SC15 is listed with area 3.5 in
		// this row only; with the consistent 3.0 the optimum is 40.5.
		{RG: 381923, PaperGain: 382500, PaperArea: 41, PaperS: 6, PaperO: 11,
			WantGain: 382500, WantArea: 40.5, WantS: 6, WantO: 11,
			WantImpl: map[string]string{"SC14": "IP13,IF3", "SC2": "IP03,IF1", "SC15": "IP16,IF2"}},
	}
	return db, rows, nil
}

// GSMDecoderTable returns the calibrated database and expected rows of
// Table 2 (GSM decoder: 11 s-calls, 10 IPs, 27 IMPs).
func GSMDecoderTable() (*imp.DB, []TableRow, error) {
	ip2 := synthIP("IP02", 1.8, "postproc")
	ip4 := synthIP("IP04", 31.6, "synth_filter_fast")
	ip5 := synthIP("IP05", 3.7, "synth_filter")
	ip6 := synthIP("IP06", 2.6, "deemph")
	ip8 := synthIP("IP08", 4.6, "ltp_synth")
	ip9 := synthIP("IP09", 12.0, "ltp_synth") // dominated alternative
	ip10 := synthIP("IP10", 2.7, "rpe_decode")

	funcs := []string{
		"postproc_a", "synth_a", "postproc_b", "synth_b",
		"postproc_c", "synth_c", "postproc_d", "synth_d",
		"ltp_synth", "deemph", "rpe_decode",
	}
	// The fast M-IP (IP4) implements all four synthesis-filter s-calls
	// with larger gains; the compact S-IP (IP5) is the cheap option.
	sims := []imp.SynthIMP{
		{SC: 1, IP: ip2, Type: iface.Type0, Gain: 978, IfaceArea: 0.2},
		{SC: 3, IP: ip2, Type: iface.Type0, Gain: 978, IfaceArea: 0.2},
		{SC: 5, IP: ip2, Type: iface.Type0, Gain: 978, IfaceArea: 0.2},
		{SC: 7, IP: ip2, Type: iface.Type0, Gain: 978, IfaceArea: 0.2},
		{SC: 2, IP: ip5, Type: iface.Type0, Gain: 13737, IfaceArea: 0.3},
		{SC: 4, IP: ip5, Type: iface.Type0, Gain: 14787, IfaceArea: 0.3},
		{SC: 6, IP: ip5, Type: iface.Type0, Gain: 13737, IfaceArea: 0.3},
		{SC: 8, IP: ip5, Type: iface.Type0, Gain: 126087, IfaceArea: 0.3},
		{SC: 2, IP: ip4, Type: iface.Type0, Gain: 14235, IfaceArea: 0.4},
		{SC: 4, IP: ip4, Type: iface.Type0, Gain: 15327, IfaceArea: 0.4},
		{SC: 6, IP: ip4, Type: iface.Type0, Gain: 14235, IfaceArea: 0.4},
		{SC: 8, IP: ip4, Type: iface.Type0, Gain: 131079, IfaceArea: 0.4},
		{SC: 9, IP: ip8, Type: iface.Type0, Gain: 8568, IfaceArea: 0.4},
		{SC: 10, IP: ip6, Type: iface.Type0, Gain: 14544, IfaceArea: 0.4},
		{SC: 10, IP: ip6, Type: iface.Type2, Gain: 15048, IfaceArea: 0.4},
		{SC: 11, IP: ip10, Type: iface.Type0, Gain: 9028, IfaceArea: 0.3},

		// Dominated decoys.
		{SC: 2, IP: ip5, Type: iface.Type2, Gain: 13500, IfaceArea: 0.8},
		{SC: 4, IP: ip5, Type: iface.Type2, Gain: 14500, IfaceArea: 0.8},
		{SC: 6, IP: ip5, Type: iface.Type2, Gain: 13500, IfaceArea: 0.8},
		{SC: 8, IP: ip5, Type: iface.Type2, Gain: 125000, IfaceArea: 0.8},
		{SC: 9, IP: ip8, Type: iface.Type2, Gain: 8400, IfaceArea: 0.9},
		{SC: 9, IP: ip9, Type: iface.Type0, Gain: 8500, IfaceArea: 0.4},
		{SC: 10, IP: ip6, Type: iface.Type1, Gain: 14800, IfaceArea: 1.4},
		{SC: 11, IP: ip10, Type: iface.Type2, Gain: 8900, IfaceArea: 0.8},
		{SC: 1, IP: ip2, Type: iface.Type2, Gain: 950, IfaceArea: 0.7},
		{SC: 3, IP: ip2, Type: iface.Type2, Gain: 950, IfaceArea: 0.7},
		{SC: 5, IP: ip2, Type: iface.Type2, Gain: 950, IfaceArea: 0.7},
	}
	db, err := imp.NewSyntheticDB(funcs, sims)
	if err != nil {
		return nil, nil, err
	}
	rows := []TableRow{
		// Published selection {SC4, SC6} (G=28524) is one of several
		// equal-area optima; {SC2, SC6} reaches the target with less
		// surplus, so the lexicographic reproduction reports G=27474.
		{RG: 22240, PaperGain: 28524, PaperArea: 4, PaperS: 1, PaperO: 2,
			WantGain: 27474, WantArea: 4, WantS: 1, WantO: 2},
		{RG: 44481, PaperGain: 126087, PaperArea: 4, PaperS: 1, PaperO: 1,
			WantGain: 126087, WantArea: 4, WantS: 1, WantO: 1,
			WantImpl: map[string]string{"SC8": "IP05,IF0"}},
		{RG: 111203, PaperGain: 126087, PaperArea: 4, PaperS: 1, PaperO: 1,
			WantGain: 126087, WantArea: 4, WantS: 1, WantO: 1,
			WantImpl: map[string]string{"SC8": "IP05,IF0"}},
		{RG: 133444, PaperGain: 139824, PaperArea: 4, PaperS: 1, PaperO: 2,
			WantGain: 139824, WantArea: 4, WantS: 1, WantO: 2},
		{RG: 155684, PaperGain: 168348, PaperArea: 4, PaperS: 1, PaperO: 4,
			WantGain: 168348, WantArea: 4, WantS: 1, WantO: 4,
			WantImpl: map[string]string{"SC2": "IP05,IF0", "SC4": "IP05,IF0", "SC6": "IP05,IF0", "SC8": "IP05,IF0"}},
		{RG: 177925, PaperGain: 182892, PaperArea: 7, PaperS: 2, PaperO: 5,
			WantGain: 182892, WantArea: 7, WantS: 2, WantO: 5,
			WantImpl: map[string]string{"SC10": "IP06,IF0"}},
		{RG: 200166, PaperGain: 200488, PaperArea: 15, PaperS: 4, PaperO: 7,
			WantGain: 200488, WantArea: 15, WantS: 4, WantO: 7,
			WantImpl: map[string]string{"SC9": "IP08,IF0", "SC11": "IP10,IF0", "SC10": "IP06,IF0"}},
		{RG: 211286, PaperGain: 211432, PaperArea: 45, PaperS: 5, PaperO: 11,
			WantGain: 211432, WantArea: 45, WantS: 5, WantO: 11,
			WantImpl: map[string]string{"SC8": "IP04,IF0", "SC10": "IP06,IF2", "SC9": "IP08,IF0"}},
	}
	return db, rows, nil
}

// JPEGEncoderTable returns the calibrated database and expected rows of
// Table 3 (JPEG encoder: 2D-DCT with hierarchy down to complex multiply,
// plus zig-zag; IP1=2D-DCT, IP2=1D-DCT, IP3=FFT, IP4=C-MUL, IP5=ZIGZAG).
func JPEGEncoderTable() (*imp.DB, []TableRow, error) {
	ip1 := synthIP("IP1", 26.5, "dct2d")
	ip2 := synthIP("IP2", 10.5, "dct1d")
	ip3 := synthIP("IP3", 8.5, "fft")
	ip4 := synthIP("IP4", 3.8, "cmul")
	ip5 := synthIP("IP5", 4.8, "zigzag")

	funcs := []string{"dct2d", "zigzag"}
	sims := []imp.SynthIMP{
		// The seven hierarchy-aware methods of the 2D-DCT s-call.
		{SC: 1, IP: ip4, Type: iface.Type0, Gain: 15040512, IfaceArea: 0.2, Flattened: "cmul"},
		{SC: 1, IP: ip4, Type: iface.Type2, Gain: 15100000, IfaceArea: 0.7, Flattened: "cmul"},
		{SC: 1, IP: ip3, Type: iface.Type1, Gain: 19500000, IfaceArea: 0.5, Flattened: "fft"},
		{SC: 1, IP: ip2, Type: iface.Type1, Gain: 37081088, IfaceArea: 0.5, Flattened: "dct1d"},
		{SC: 1, IP: ip2, Type: iface.Type3, Gain: 37090000, IfaceArea: 1.0, Flattened: "dct1d"},
		{SC: 1, IP: ip1, Type: iface.Type1, Gain: 37717440, IfaceArea: 0.5},
		{SC: 1, IP: ip1, Type: iface.Type3, Gain: 37729728, IfaceArea: 1.0, UsesPC: true},
		// The two zig-zag methods.
		{SC: 2, IP: ip5, Type: iface.Type2, Gain: 113984, IfaceArea: 0.7},
		{SC: 2, IP: ip5, Type: iface.Type3, Gain: 114200, IfaceArea: 1.7},
	}
	db, err := imp.NewSyntheticDB(funcs, sims)
	if err != nil {
		return nil, nil, err
	}
	rows := []TableRow{
		{RG: 12157384, PaperGain: 15040512, PaperArea: 4, PaperS: 1, PaperO: 1,
			WantGain: 15040512, WantArea: 4, WantS: 1, WantO: 1,
			WantImpl: map[string]string{"SC1": "IP4,IF0"}},
		{RG: 20262307, PaperGain: 37081088, PaperArea: 11, PaperS: 1, PaperO: 1,
			WantGain: 37081088, WantArea: 11, WantS: 1, WantO: 1,
			WantImpl: map[string]string{"SC1": "IP2,IF1"}},
		{RG: 37195000, PaperGain: 37195072, PaperArea: 16.5, PaperS: 2, PaperO: 2,
			WantGain: 37195072, WantArea: 16.5, WantS: 2, WantO: 2,
			WantImpl: map[string]string{"SC1": "IP2,IF1", "SC2": "IP5,IF2"}},
		{RG: 37282645, PaperGain: 37717440, PaperArea: 27, PaperS: 1, PaperO: 1,
			WantGain: 37717440, WantArea: 27, WantS: 1, WantO: 1,
			WantImpl: map[string]string{"SC1": "IP1,IF1"}},
		{RG: 37843700, PaperGain: 37843712, PaperArea: 33, PaperS: 2, PaperO: 2,
			WantGain: 37843712, WantArea: 33, WantS: 2, WantO: 2,
			WantImpl: map[string]string{"SC1": "IP1,IF3", "SC2": "IP5,IF2"}},
	}
	return db, rows, nil
}
