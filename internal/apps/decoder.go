package apps

import "partita/internal/ip"

// GSMDecoderWorkload builds the end-to-end GSM(TDMA)-style decoder: the
// received parameters flow through RPE decoding, long-term-prediction
// synthesis, four short-term synthesis-filter stages with interleaved
// post-processing (the paper's decoder has four synth/post pairs), and a
// final de-emphasis — the s-call structure of Table 2 at reduced frame
// size.
func GSMDecoderWorkload() (Workload, error) {
	src := `
// --- GSM-style decoder frame pipeline (reduced size) ---
xmem int bits[16] = {3, -2, 5, 1, -4, 2, 0, 6, 3, -2, 5, 1, -4, 2, 0, 6};
xmem int residual[40];
xmem int excitation[40];
ymem int lpc[8] = {26214, -13107, 6553, -3276, 1638, -819, 409, -204};
xmem int synth0[40];
xmem int synth1[40];
xmem int synth2[40];
xmem int synth3[40];
xmem int speech[40];
xmem int prevFrame[40] = {` + speechInit(40) + `};
int ltpLag;
int ltpGain;
int frameEnergy;

// Expand the quantized RPE grid back to a full-rate residual.
int rpe_decode(xmem int in[], xmem int out[], int n, int grid) {
	int i;
	for (i = 0; i < n; i = i + 1) { out[i] = 0; }
	for (i = 0; i < 13; i = i + 1) {
		out[grid + i * 3] = in[i] << 2;
	}
	return out[grid];
}

// Long-term prediction synthesis: add the scaled history at the lag.
int ltp_synth(xmem int res[], xmem int hist[], xmem int out[], int n, int lag, int gain) {
	int i;
	for (i = 0; i < n; i = i + 1) {
		int h;
		if (i + lag < n) { h = hist[i + lag]; } else { h = 0; }
		out[i] = res[i] + ((gain * h) >> 15);
	}
	return out[0];
}

// Short-term synthesis filter (lattice-free direct form).
int synth_filter(xmem int in[], ymem int a[], xmem int out[], int n, int order) {
	int i; int j; int acc;
	for (i = 0; i < n; i = i + 1) {
		acc = in[i] << 15;
		for (j = 1; j <= order; j = j + 1) {
			if (i - j >= 0) { acc = acc - a[j - 1] * out[i - j]; }
		}
		out[i] = acc >> 15;
	}
	return out[n - 1];
}

// Post-processing: scale and clamp one synthesis stage.
int postproc(xmem int in[], xmem int out[], int n) {
	int i; int v;
	for (i = 0; i < n; i = i + 1) {
		v = (in[i] * 31130) >> 15;
		if (v > 32767) { v = 32767; }
		if (v < -32768) { v = -32768; }
		out[i] = v;
	}
	return out[0];
}

// De-emphasis: inverse of the encoder's pre-emphasis.
int deemph(xmem int in[], xmem int out[], int n) {
	int i;
	out[0] = in[0];
	for (i = 1; i < n; i = i + 1) {
		out[i] = in[i] + ((28180 * out[i - 1]) >> 15);
	}
	return out[n - 1];
}

int decoder() {
	int r; int l; int s0; int p0; int s1; int p1; int d;
	r = rpe_decode(bits, residual, 40, 1);
	l = ltp_synth(residual, prevFrame, excitation, 40, ltpLag, ltpGain);
	s0 = synth_filter(excitation, lpc, synth0, 40, 8);
	p0 = postproc(synth0, synth1, 40);
	s1 = synth_filter(synth1, lpc, synth2, 40, 8);
	p1 = postproc(synth2, synth3, 40);
	// Frame-energy bookkeeping independent of the de-emphasis: parallel
	// code for the deemph s-call.
	frameEnergy = (frameEnergy * 7 + s0 + s1) >> 3;
	d = deemph(synth3, speech, 40);
	return r + l + p0 + p1 + d;
}

int main() {
	int f; int total;
	ltpLag = 3;
	ltpGain = 18022;
	total = 0;
	for (f = 0; f < 2; f = f + 1) {
		total = total + decoder();
	}
	return total;
}
`
	mk := func(id, name string, area float64, rate, latency int, funcs ...string) *ip.IP {
		return &ip.IP{ID: id, Name: name, Funcs: funcs, InPorts: 2, OutPorts: 2,
			InRate: rate, OutRate: rate, Latency: latency, Pipelined: true, Area: area}
	}
	cat, err := ip.NewCatalog(
		mk("IP02", "post-processor", 2.0, 4, 4, "postproc"),
		mk("IP05", "synthesis filter (compact)", 3.7, 4, 12, "synth_filter"),
		mk("IP04", "synthesis filter (fast)", 12.0, 1, 8, "synth_filter"),
		mk("IP06", "de-emphasis filter", 2.6, 4, 4, "deemph"),
		mk("IP08", "LTP synthesizer", 4.6, 2, 8, "ltp_synth"),
		mk("IP10", "RPE decoder", 2.7, 4, 6, "rpe_decode"),
	)
	if err != nil {
		return Workload{}, err
	}
	return Workload{
		Name:    "gsm-decoder",
		Source:  src,
		Root:    "decoder",
		Entry:   "main",
		Catalog: cat,
		DataCount: func(fn string) (int, int) {
			switch fn {
			case "rpe_decode":
				return 13, 40
			case "ltp_synth":
				return 80, 40
			case "synth_filter":
				return 48, 40
			case "postproc", "deemph":
				return 40, 40
			}
			return 0, 0
		},
	}, nil
}
