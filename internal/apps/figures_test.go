package apps

import (
	"testing"

	"partita/internal/ilp"
	"partita/internal/imp"
	"partita/internal/selector"
)

func TestFig9Problem2Helps(t *testing.T) {
	p1, p2, rg, err := Fig9Problem()
	if err != nil {
		t.Fatal(err)
	}
	s1, err := selector.Solve(selector.Problem{DB: p1, Required: rg})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Status != ilp.Infeasible {
		t.Errorf("Problem 1 status = %v, want infeasible (max gain 30 < %d)", s1.Status, rg)
	}
	s2, err := selector.Solve(selector.Problem{DB: p2, Required: rg})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Status != ilp.Optimal {
		t.Fatalf("Problem 2 status = %v, want optimal", s2.Status)
	}
	// The schedule must use the PC method and must NOT implement fir #2
	// in hardware (its software body is the parallel code).
	usedPC := false
	for _, m := range s2.Chosen {
		if m.UsesPC {
			usedPC = true
		}
		if m.SC.Index == 2 {
			t.Errorf("fir #2 implemented in hardware despite being the parallel code")
		}
	}
	if !usedPC {
		t.Error("Problem 2 solution does not use the parallel-code method")
	}
}

func TestFig10CommonSCall(t *testing.T) {
	db, perPath, err := Fig10Problem()
	if err != nil {
		t.Fatal(err)
	}
	// Problem-1 form: without software-PC methods, path P2 cannot reach
	// its requirement (dct+fir hardware give only 110 < 150).
	p1db := db.Filter(func(m *imp.IMP) bool { return len(m.PCSCalls) == 0 })
	s1, err := selector.Solve(selector.Problem{DB: p1db, PerPath: perPath})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Status != ilp.Infeasible {
		t.Errorf("Problem 1 status = %v, want infeasible", s1.Status)
	}

	// Problem 2: the common fir stays in software as the dct's parallel
	// code; the other two firs go to hardware.
	s2, err := selector.Solve(selector.Problem{DB: db, PerPath: perPath})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Status != ilp.Optimal {
		t.Fatalf("Problem 2 status = %v, want optimal", s2.Status)
	}
	common := db.SCalls[0]
	for _, m := range s2.Chosen {
		if m.SC == common {
			t.Errorf("common fir implemented in hardware; it must stay in software as PC")
		}
	}
	if len(s2.PathGains) != 2 || s2.PathGains[0] < perPath[0] || s2.PathGains[1] < perPath[1] {
		t.Errorf("path gains %v below requirements %v", s2.PathGains, perPath)
	}
}
