package apps

import (
	"testing"

	"partita/internal/ilp"
	"partita/internal/kernel"
	"partita/internal/profile"
	"partita/internal/selector"
)

func TestJPEGDecoderExecutesAndInvertsZigZag(t *testing.T) {
	b := buildWorkload(t, JPEGDecoderWorkload, false)
	m := profile.New(b.Prog, b.Layout, kernel.DefaultCost())
	if _, err := m.Run(b.Workload.Entry); err != nil {
		t.Fatal(err)
	}
	stats := m.Stats()
	if stats.CallCount["idct1d"] != 16 {
		t.Errorf("idct1d ran %d times, want 16", stats.CallCount["idct1d"])
	}

	// The encoder's zigzag followed by the decoder's dezigzag is the
	// identity: check dezigzag really is the scatter inverse by reading
	// memory: deziz[zigzagIndex[k]] == dequant[k].
	read := func(name string, n int) []int64 {
		loc := b.Layout.Globals[name]
		vals, err := m.ReadArray(loc.Bank, loc.Base, n)
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		return vals
	}
	dequant := read("dequant", 64)
	deziz := read("deziz", 64)
	// Reconstruct the zig-zag order (same walk as the mini-C).
	idx := zigzagOrder()
	for k, target := range idx {
		if deziz[target] != dequant[k] {
			t.Fatalf("dezigzag[%d→%d] = %d, want %d", k, target, deziz[target], dequant[k])
		}
	}
}

// zigzagOrder returns the row-major index written by the k'th scanned
// element for an 8×8 block.
func zigzagOrder() []int {
	var order []int
	for s := 0; s < 15; s++ {
		if s%2 == 0 {
			r := s
			if r > 7 {
				r = 7
			}
			c := s - r
			for r >= 0 && c < 8 {
				order = append(order, r*8+c)
				r--
				c++
			}
		} else {
			c := s
			if c > 7 {
				c = 7
			}
			r := s - c
			for c >= 0 && r < 8 {
				order = append(order, r*8+c)
				c--
				r++
			}
		}
	}
	return order
}

func TestJPEGDecoderHierarchySelection(t *testing.T) {
	b := buildWorkload(t, JPEGDecoderWorkload, false)
	// The decoder's dct hierarchy must flatten like the encoder's.
	var direct, viaIDCT1D, viaCMUL int
	for _, m := range b.DB.IMPs {
		if m.SC.Func != "idct2d" {
			continue
		}
		switch m.Flattened {
		case "":
			direct++
		case "idct1d":
			viaIDCT1D++
		case "cmul_re":
			viaCMUL++
		}
	}
	if direct == 0 || viaIDCT1D == 0 || viaCMUL == 0 {
		t.Errorf("idct2d IMPs: direct=%d via1d=%d viaCMUL=%d", direct, viaIDCT1D, viaCMUL)
	}
	sel, err := selector.Solve(selector.Problem{DB: b.DB, Required: selector.MaxReachableGain(b.DB) / 2})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Status != ilp.Optimal {
		t.Fatalf("status %v", sel.Status)
	}
}
