package apps

import (
	"math"
	"strings"
	"testing"

	"partita/internal/ilp"
	"partita/internal/imp"
	"partita/internal/selector"
)

func checkTable(t *testing.T, name string, db *imp.DB, rows []TableRow) {
	t.Helper()
	for _, row := range rows {
		sel, err := selector.Solve(selector.Problem{DB: db, Required: row.RG})
		if err != nil {
			t.Fatalf("%s RG=%d: %v", name, row.RG, err)
		}
		if sel.Status != ilp.Optimal {
			t.Fatalf("%s RG=%d: status %v", name, row.RG, sel.Status)
		}
		if math.Abs(sel.Area-row.WantArea) > 1e-6 {
			t.Errorf("%s RG=%d: area %.2f, want %.2f (paper %.2f)", name, row.RG, sel.Area, row.WantArea, row.PaperArea)
			for _, m := range sel.Chosen {
				t.Logf("  chose %s gain=%d", m.ID, m.TotalGain)
			}
			continue
		}
		if row.WantGain >= 0 && sel.Gain != row.WantGain {
			t.Errorf("%s RG=%d: gain %d, want %d (paper %d)", name, row.RG, sel.Gain, row.WantGain, row.PaperGain)
			for _, m := range sel.Chosen {
				t.Logf("  chose %s gain=%d", m.ID, m.TotalGain)
			}
		}
		if sel.Gain < row.RG {
			t.Errorf("%s RG=%d: achieved gain %d misses the requirement", name, row.RG, sel.Gain)
		}
		// Check the provably unique implementation picks.
		got := map[string]string{}
		for _, m := range sel.Chosen {
			// ID is "SCn:IPxx,IFy[+PC][(via f)]"; strip to IP,IF.
			parts := strings.SplitN(m.ID, ":", 2)
			impl := parts[1]
			impl = strings.SplitN(impl, "+", 2)[0]
			impl = strings.SplitN(impl, "(", 2)[0]
			got[m.SC.Name()] = impl
		}
		for sc, want := range row.WantImpl {
			if got[sc] != want {
				t.Errorf("%s RG=%d: %s implemented as %q, want %q", name, row.RG, sc, got[sc], want)
			}
		}
	}
}

func TestTable1GSMEncoder(t *testing.T) {
	db, rows, err := GSMEncoderTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(db.SCalls) != 18 {
		t.Errorf("encoder s-calls = %d, want 18", len(db.SCalls))
	}
	if len(db.IMPs) != 42 {
		t.Errorf("encoder IMPs = %d, want 42", len(db.IMPs))
	}
	checkTable(t, "T1", db, rows)
}

func TestTable2GSMDecoder(t *testing.T) {
	db, rows, err := GSMDecoderTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(db.SCalls) != 11 {
		t.Errorf("decoder s-calls = %d, want 11", len(db.SCalls))
	}
	if len(db.IMPs) != 27 {
		t.Errorf("decoder IMPs = %d, want 27", len(db.IMPs))
	}
	checkTable(t, "T2", db, rows)
}

func TestTable3JPEGEncoder(t *testing.T) {
	db, rows, err := JPEGEncoderTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(db.IMPs) != 9 {
		t.Errorf("JPEG IMPs = %d, want 9 (7 for 2D-DCT + 2 for zig-zag)", len(db.IMPs))
	}
	checkTable(t, "T3", db, rows)
}

func TestSOColumnsMatchPaper(t *testing.T) {
	// Beyond area/gain, the S (S-instructions) and O (s-calls) columns
	// must match wherever the selection is unique.
	db, rows, err := GSMEncoderTable()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		sel, err := selector.Solve(selector.Problem{DB: db, Required: row.RG})
		if err != nil {
			t.Fatal(err)
		}
		if sel.SInstructions != row.WantS {
			t.Errorf("T1 RG=%d: S=%d, want %d (paper %d)", row.RG, sel.SInstructions, row.WantS, row.PaperS)
		}
		if sel.SCallsImplemented != row.WantO {
			t.Errorf("T1 RG=%d: O=%d, want %d (paper %d)", row.RG, sel.SCallsImplemented, row.WantO, row.PaperO)
		}
	}
}

func TestTablesMonotone(t *testing.T) {
	// Area must be non-decreasing in RG for each table (the tables'
	// macro shape: harder targets need more silicon).
	for _, tc := range []struct {
		name string
		gen  func() (*imp.DB, []TableRow, error)
	}{
		{"T1", GSMEncoderTable}, {"T2", GSMDecoderTable}, {"T3", JPEGEncoderTable},
	} {
		db, rows, err := tc.gen()
		if err != nil {
			t.Fatal(err)
		}
		prev := -1.0
		for _, row := range rows {
			sel, err := selector.Solve(selector.Problem{DB: db, Required: row.RG})
			if err != nil {
				t.Fatal(err)
			}
			if sel.Area < prev-1e-9 {
				t.Errorf("%s: area decreased from %.2f to %.2f at RG=%d", tc.name, prev, sel.Area, row.RG)
			}
			prev = sel.Area
		}
	}
}
