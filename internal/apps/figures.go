package apps

import (
	"partita/internal/cdfg"
	"partita/internal/iface"
	"partita/internal/imp"
	"partita/internal/ip"
)

// Fig9Problem reproduces the motivating example of the paper's Fig. 9:
// three independent fir() calls whose software time is 100 cycles each,
// accelerated by one shared FIR IP that is only slightly faster (90
// cycles). Under Problem 1 the best the IP can do is run all three
// serially (total gain 30); under Problem 2 the software body of one fir
// can run in the kernel *while* the IP processes another, which is the
// better schedule the paper illustrates.
//
// The returned databases share the s-call structure; rg is a required
// gain that is infeasible under Problem 1 but feasible under Problem 2.
func Fig9Problem() (p1, p2 *imp.DB, rg int64, err error) {
	const (
		tsw  = 100
		tip  = 90
		gain = tsw - tip // per fir, hardware only
	)
	firIP := &ip.IP{ID: "FIRIP", Name: "FIR engine", Funcs: []string{"fir"},
		InPorts: 2, OutPorts: 2, InRate: 4, OutRate: 4,
		Latency: tip, Pipelined: false, Area: 10}

	funcs := []string{"fir", "fir", "fir"}
	base := []imp.SynthIMP{
		{SC: 1, IP: firIP, Type: iface.Type3, Gain: gain, IfaceArea: 1},
		{SC: 2, IP: firIP, Type: iface.Type3, Gain: gain, IfaceArea: 1},
		{SC: 3, IP: firIP, Type: iface.Type3, Gain: gain, IfaceArea: 1},
	}
	p1, err = imp.NewSyntheticDB(funcs, base)
	if err != nil {
		return nil, nil, 0, err
	}
	// Problem 2 adds the schedule of Fig. 9's right-hand side: fir #1 on
	// the IP with the software body of fir #2 as its parallel code. The
	// overlap hides (almost) the whole IP run: MIN(T_IP, T_C) = 90, so
	// the method's gain is T_SW − (T_IP − 90) ≈ 98 (transfer residue 2).
	p2Imps := append(append([]imp.SynthIMP{}, base...), imp.SynthIMP{
		SC: 1, IP: firIP, Type: iface.Type3, Gain: 98, IfaceArea: 1,
		UsesPC: true, PCOf: []int{2},
	})
	p2, err = imp.NewSyntheticDB(funcs, p2Imps)
	if err != nil {
		return nil, nil, 0, err
	}
	// gain 3×10 = 30 is the Problem-1 maximum; 98 + 10 = 108 is within
	// Problem 2's reach (fir#2 must stay in software — the conflict
	// forbids its hardware method).
	return p1, p2, 100, nil
}

// Fig10Problem reproduces Fig. 10: two execution paths share a common
// fir() s-call. Path P1 (three firs) has enough margin to leave one fir
// in software; path P2 (dct + the common fir) can only meet its
// constraint when the common fir's software body serves as the dct's
// parallel code — a solution Problem 1 cannot express.
//
// Returned: the database (Problem-2 form), per-path requirements
// aligned with db.Paths, and the path memberships.
func Fig10Problem() (db *imp.DB, perPath []int64, err error) {
	firIP := &ip.IP{ID: "FIRIP", Name: "FIR engine", Funcs: []string{"fir"},
		InPorts: 2, OutPorts: 2, InRate: 4, OutRate: 4,
		Latency: 8, Pipelined: true, Area: 8}
	dctIP := &ip.IP{ID: "DCTIP", Name: "DCT engine", Funcs: []string{"dct"},
		InPorts: 2, OutPorts: 2, InRate: 2, OutRate: 2,
		Latency: 16, Pipelined: true, Area: 12}

	// SC1 = common fir (on both paths), SC2, SC3 = P1-only firs,
	// SC4 = P2-only dct.
	funcs := []string{"fir_common", "fir_b", "fir_c", "dct"}
	db, err = imp.NewSyntheticDB(funcs, []imp.SynthIMP{
		{SC: 1, IP: firIP, Type: iface.Type0, Gain: 30, IfaceArea: 0.5},
		{SC: 2, IP: firIP, Type: iface.Type0, Gain: 100, IfaceArea: 0.5},
		{SC: 3, IP: firIP, Type: iface.Type0, Gain: 100, IfaceArea: 0.5},
		{SC: 4, IP: dctIP, Type: iface.Type1, Gain: 80, IfaceArea: 1},
		// The Problem-2 method: dct with the common fir's software body
		// as parallel code.
		{SC: 4, IP: dctIP, Type: iface.Type1, Gain: 160, IfaceArea: 1.5,
			UsesPC: true, PCOf: []int{1}},
	})
	if err != nil {
		return nil, nil, err
	}
	// Two execution paths: P1 = {SC1, SC2, SC3}, P2 = {SC4, SC1}.
	db.Paths = [][]*cdfg.Node{
		{db.SCalls[0].Sites[0], db.SCalls[1].Sites[0], db.SCalls[2].Sites[0]},
		{db.SCalls[3].Sites[0], db.SCalls[0].Sites[0]},
	}
	// P1 needs 200 (two firs), P2 needs 150 (only reachable through the
	// PC method, since dct+fir hardware yields 80+30=110).
	return db, []int64{200, 150}, nil
}
