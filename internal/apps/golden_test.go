package apps

import (
	"testing"

	"partita/internal/dsp"
	"partita/internal/kernel"
	"partita/internal/mop"
	"partita/internal/profile"
)

// TestMiniCFIRMatchesGoldenDSP runs the GSM encoder workload on the MOP
// interpreter and cross-checks the weighting-filter output array against
// the reference fixed-point implementation in internal/dsp — the two
// independently written stacks must agree bit-exactly.
func TestMiniCFIRMatchesGoldenDSP(t *testing.T) {
	b := buildWorkload(t, GSMEncoderWorkload, false)
	m := profile.New(b.Prog, b.Layout, kernel.DefaultCost())
	if _, err := m.Run(b.Workload.Entry); err != nil {
		t.Fatal(err)
	}

	// Pull the machine's arrays out of data memory.
	read := func(name string, n int) []int64 {
		loc, ok := b.Layout.Loc("", name)
		if !ok {
			loc, ok = b.Layout.Globals[name], true
		}
		vals, err := m.ReadArray(loc.Bank, loc.Base, n)
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		return vals
	}
	speech := read("speech", 40)
	emph := read("emph", 40)
	wcoef := read("wcoef", 8)
	wout := read("wout", 40)

	// Golden pre-emphasis: out[i] = in[i] − (28180·in[i−1])>>15.
	goldEmph := make([]int64, 40)
	goldEmph[0] = speech[0]
	for i := 1; i < 40; i++ {
		goldEmph[i] = speech[i] - (28180*speech[i-1])>>15
	}
	for i := range goldEmph {
		if emph[i] != goldEmph[i] {
			t.Fatalf("emph[%d]: interpreter %d vs golden %d", i, emph[i], goldEmph[i])
		}
	}

	// Golden FIR from internal/dsp.
	goldOut := make([]int64, 64)
	n, err := dsp.FIR(goldEmph, wcoef, goldOut)
	if err != nil {
		t.Fatal(err)
	}
	if n != 33 { // 40 − 8 + 1
		t.Fatalf("golden FIR produced %d samples, want 33", n)
	}
	for i := 0; i < n; i++ {
		if wout[i] != goldOut[i] {
			t.Fatalf("wout[%d]: interpreter %d vs dsp.FIR %d", i, wout[i], goldOut[i])
		}
	}
}

// TestAsmRoundTripOnWorkloads asserts the assembler round-trips the
// compiled output of every workload: String → ParseAsm → String is a
// fixed point and the re-parsed program executes identically.
func TestAsmRoundTripOnWorkloads(t *testing.T) {
	gens := []func() (Workload, error){
		GSMEncoderWorkload, GSMDecoderWorkload, JPEGEncoderWorkload, JPEGDecoderWorkload,
	}
	for _, gen := range gens {
		b := buildWorkloadFrom(t, gen)
		text := b.Prog.String()
		p2, err := mop.ParseAsm("entry " + b.Prog.Entry + "\n" + text)
		if err != nil {
			t.Fatalf("%s: re-parse: %v", b.Workload.Name, err)
		}
		if p2.String() != text {
			t.Fatalf("%s: assembler round trip diverged", b.Workload.Name)
		}
		m1 := profile.New(b.Prog, b.Layout, kernel.DefaultCost())
		r1, err := m1.Run(b.Workload.Entry)
		if err != nil {
			t.Fatal(err)
		}
		m2 := profile.New(p2, b.Layout, kernel.DefaultCost())
		r2, err := m2.Run(b.Workload.Entry)
		if err != nil {
			t.Fatal(err)
		}
		if r1 != r2 {
			t.Fatalf("%s: reassembled program computes %d, original %d", b.Workload.Name, r2, r1)
		}
	}
}

func buildWorkloadFrom(t *testing.T, gen func() (Workload, error)) *Built {
	t.Helper()
	w, err := gen()
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Build(false)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestMiniCZigZagMatchesGolden cross-checks the JPEG workload's zig-zag
// scan against dsp.ZigZag.
func TestMiniCZigZagMatchesGolden(t *testing.T) {
	b := buildWorkload(t, JPEGEncoderWorkload, false)
	m := profile.New(b.Prog, b.Layout, kernel.DefaultCost())
	if _, err := m.Run(b.Workload.Entry); err != nil {
		t.Fatal(err)
	}
	read := func(name string, n int) []int64 {
		loc := b.Layout.Globals[name]
		vals, err := m.ReadArray(loc.Bank, loc.Base, n)
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		return vals
	}
	freq := read("freq", 64)
	scan := read("scan", 64)

	gold := make([]int64, 64)
	if err := dsp.ZigZag(freq, 8, gold); err != nil {
		t.Fatal(err)
	}
	for i := range gold {
		if scan[i] != gold[i] {
			t.Fatalf("scan[%d]: interpreter %d vs dsp.ZigZag %d", i, scan[i], gold[i])
		}
	}
}
