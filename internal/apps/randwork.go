package apps

import (
	"fmt"
	"math/rand"
	"strings"

	"partita/internal/ip"
)

// RandomWorkload generates a synthetic but well-formed DSP application:
// a library of filter-like kernels over shared arrays, a top function
// calling them (optionally under branches, with independent bookkeeping
// between calls), and a random IP catalog covering a subset of them.
// It is the stress-fuzz input for the whole pipeline: every generated
// workload must compile, execute, and survive selection and simulation.
func RandomWorkload(seed int64) (Workload, error) {
	rng := rand.New(rand.NewSource(seed))
	nKernels := 2 + rng.Intn(4)

	var b strings.Builder
	// Shared arrays: one X signal, one Y coefficient set per kernel, one
	// X output per kernel.
	fmt.Fprintf(&b, "xmem int sig[32] = {%s};\n", speechInit(32))
	for k := 0; k < nKernels; k++ {
		fmt.Fprintf(&b, "ymem int c%d[8] = {%s};\n", k, speechInit(8))
		fmt.Fprintf(&b, "xmem int out%d[32];\n", k)
	}
	b.WriteString("int book;\n")

	kinds := []string{"firlike", "scanlike", "scalelike"}
	for k := 0; k < nKernels; k++ {
		kind := kinds[rng.Intn(len(kinds))]
		taps := 2 + rng.Intn(6)
		switch kind {
		case "firlike":
			fmt.Fprintf(&b, `
int kern%d(xmem int in[], ymem int c[], xmem int o[]) {
	int i; int j; int acc;
	for (i = 0; i + %d <= 32; i = i + 1) {
		acc = 0;
		for (j = 0; j < %d; j = j + 1) { acc = acc + in[i + j] * c[j]; }
		o[i] = acc >> %d;
	}
	return o[0];
}
`, k, taps, taps, 4+rng.Intn(8))
		case "scanlike":
			fmt.Fprintf(&b, `
int kern%d(xmem int in[], ymem int c[], xmem int o[]) {
	int i; int run;
	run = 0;
	for (i = 0; i < 32; i = i + 1) {
		run = run + in[i] - (c[i %% 8] >> 2);
		if (run > 10000) { break; }
		o[i] = run;
	}
	return run;
}
`, k)
		default:
			fmt.Fprintf(&b, `
int kern%d(xmem int in[], ymem int c[], xmem int o[]) {
	int i;
	for (i = 0; i < 32; i = i + 1) {
		if (in[i] < 0) { o[i] = -in[i] * c[0] >> 6; continue; }
		o[i] = in[i] * c[1] >> 6;
	}
	return o[31];
}
`, k)
		}
	}

	// Top function: sequential calls, independent bookkeeping, and an
	// optional branch pair.
	b.WriteString("\nint top(int mode) {\n\tint r; int acc;\n\tacc = 0;\n")
	branchy := rng.Intn(2) == 1 && nKernels >= 3
	for k := 0; k < nKernels; k++ {
		call := fmt.Sprintf("kern%d(sig, c%d, out%d)", k, k, k)
		if branchy && k == 1 {
			fmt.Fprintf(&b, "\tif (mode > 0) { r = %s; acc = acc + r; } else { r = kern0(sig, c0, out0); acc = acc + r; }\n", call)
			continue
		}
		fmt.Fprintf(&b, "\tr = %s;\n\tacc = acc + r;\n", call)
		if rng.Intn(2) == 0 {
			fmt.Fprintf(&b, "\tbook = (book * %d + %d) >> 1;\n", 3+rng.Intn(5), rng.Intn(100))
		}
	}
	b.WriteString("\treturn acc;\n}\n\nint main() { return top(1); }\n")

	// Random catalog over a subset of kernels, plus maybe an M-IP.
	var blocks []*ip.IP
	covered := 0
	for k := 0; k < nKernels; k++ {
		if rng.Intn(4) == 0 && covered > 0 {
			continue // leave some kernels without IPs
		}
		covered++
		rate := []int{1, 2, 4, 8}[rng.Intn(4)]
		blocks = append(blocks, &ip.IP{
			ID:      fmt.Sprintf("RIP%d", k),
			Name:    fmt.Sprintf("engine for kern%d", k),
			Funcs:   []string{fmt.Sprintf("kern%d", k)},
			InPorts: 1 + rng.Intn(3), OutPorts: 1 + rng.Intn(2),
			InRate: rate, OutRate: rate,
			Latency: 2 + rng.Intn(30), Pipelined: rng.Intn(4) != 0,
			Area:     1 + float64(rng.Intn(20)),
			Protocol: ip.Protocol(rng.Intn(3)),
		})
	}
	if nKernels >= 2 && rng.Intn(2) == 0 {
		blocks = append(blocks, &ip.IP{
			ID: "RMIP", Name: "multi-function engine",
			Funcs:   []string{"kern0", "kern1"},
			InPorts: 2, OutPorts: 2, InRate: 4, OutRate: 4,
			Latency: 10 + rng.Intn(20), Pipelined: true,
			Area: 10 + float64(rng.Intn(15)), PerfFactor: 1.3,
		})
	}
	cat, err := ip.NewCatalog(blocks...)
	if err != nil {
		return Workload{}, err
	}
	return Workload{
		Name:    fmt.Sprintf("random-%d", seed),
		Source:  b.String(),
		Root:    "top",
		Entry:   "main",
		Catalog: cat,
		DataCount: func(fn string) (int, int) {
			if strings.HasPrefix(fn, "kern") {
				return 32, 32
			}
			return 0, 0
		},
	}, nil
}
