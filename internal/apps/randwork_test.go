package apps

import (
	"testing"

	"partita/internal/cdfg"
	"partita/internal/cprog"
	"partita/internal/ilp"
	"partita/internal/selector"
	"partita/internal/sim"
)

// TestRandomWorkloadsEndToEnd is the whole-pipeline stress fuzz: random
// applications and catalogs must compile, execute, select, and simulate
// without errors, and every optimal selection must actually meet its
// requirement while the greedy baseline never beats the ILP on area.
func TestRandomWorkloadsEndToEnd(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		w, err := RandomWorkload(seed)
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		b, err := w.Build(seed%3 == 0) // every third run in Problem-2 mode
		if err != nil {
			t.Fatalf("seed %d: build: %v\n%s", seed, err, w.Source)
		}
		if _, _, err := b.Profile(); err != nil {
			t.Fatalf("seed %d: profile: %v\n%s", seed, err, w.Source)
		}
		// The uniform requirement is bounded by the weakest path.
		max := selector.MaxReachableGain(b.DB)
		for _, pp := range selector.MaxReachablePerPath(b.DB) {
			if pp < max {
				max = pp
			}
		}
		if max <= 0 {
			continue // catalog covered nothing gainful; still a valid run
		}
		for _, frac := range []int64{25, 75, 120} {
			rg := max * frac / 100
			sel, err := selector.Solve(selector.Problem{DB: b.DB, Required: rg})
			if err != nil {
				t.Fatalf("seed %d: solve: %v", seed, err)
			}
			if frac > 100 {
				// Above the reachable bound the instance is infeasible
				// (modulo Problem-2 conflict slack, which only lowers it).
				if sel.Status == ilp.Optimal && sel.Gain < rg {
					t.Fatalf("seed %d: optimal below requirement", seed)
				}
				continue
			}
			if sel.Status != ilp.Optimal {
				t.Fatalf("seed %d frac %d: status %v (max %d)", seed, frac, sel.Status, max)
			}
			if sel.Gain < rg {
				t.Fatalf("seed %d: gain %d < required %d", seed, sel.Gain, rg)
			}
			grd := selector.GreedyBaseline(selector.Problem{DB: b.DB, Required: rg})
			if grd.Status == ilp.Optimal && grd.Area < sel.Area-1e-9 {
				t.Fatalf("seed %d: greedy area %g beats ILP %g — optimality bug", seed, grd.Area, sel.Area)
			}
			res, err := sim.RunSelection(b.DB, sel.Chosen, 0)
			if err != nil {
				t.Fatalf("seed %d: simulate: %v", seed, err)
			}
			if len(sel.Chosen) > 0 && res.AcceleratedCycles > res.SoftwareCycles {
				t.Fatalf("seed %d: acceleration slowed the program down (%d > %d)",
					seed, res.AcceleratedCycles, res.SoftwareCycles)
			}
		}
	}
}

// TestParallelCodeMonotoneOnRandomWorkloads: allowing software s-calls
// inside the parallel code (Problem 2) can only lengthen it, never
// shorten it, on any generated application.
func TestParallelCodeMonotoneOnRandomWorkloads(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		w, err := RandomWorkload(seed)
		if err != nil {
			t.Fatal(err)
		}
		f, err := cprog.Parse(w.Source)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		info, err := cprog.Analyze(f)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		g, err := cdfg.Build(info, w.Root, cdfg.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, c := range g.Calls {
			p1 := cdfg.ParallelCode(g, c, cdfg.PCOptions{AllowSCalls: false})
			p2 := cdfg.ParallelCode(g, c, cdfg.PCOptions{AllowSCalls: true})
			if p2.Cost < p1.Cost {
				t.Errorf("seed %d call %s: Problem-2 PC (%d) shorter than Problem-1 PC (%d)",
					seed, c.Name, p2.Cost, p1.Cost)
			}
			if p1.Cost < 0 || p2.Cost < 0 {
				t.Errorf("seed %d call %s: negative PC cost", seed, c.Name)
			}
			if len(p1.SCallNodes) != 0 {
				t.Errorf("seed %d call %s: Problem-1 PC contains s-calls", seed, c.Name)
			}
		}
	}
}

// TestRandomWorkloadDeterminism: same seed, same database shape.
func TestRandomWorkloadDeterminism(t *testing.T) {
	w1, err := RandomWorkload(7)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := RandomWorkload(7)
	if err != nil {
		t.Fatal(err)
	}
	if w1.Source != w2.Source {
		t.Error("source differs across identical seeds")
	}
	b1, err := w1.Build(false)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := w2.Build(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(b1.DB.IMPs) != len(b2.DB.IMPs) {
		t.Errorf("IMP counts differ: %d vs %d", len(b1.DB.IMPs), len(b2.DB.IMPs))
	}
}
