package apps

import "partita/internal/ip"

// JPEGDecoderWorkload builds the JPEG-style decoder pipeline ("similar
// results were obtained for the decoder part", Section 5.2): coded
// coefficients flow through dequantization, inverse zig-zag, and a
// hierarchical 2-D inverse DCT (idct2d → idct1d → cmul_re).
func JPEGDecoderWorkload() (Workload, error) {
	src := `
// --- JPEG-style 8×8 block decoder ---
xmem int coded[64] = {` + speechInit(64) + `};
ymem int cosq[64] = {` + cosTableInit(8) + `};
xmem int dequant[64];
ymem int deziz[64];
xmem int rowbuf[8];
ymem int rowout[8];
xmem int stage[64];
ymem int pixels[64];
int dcAccum;
int blockStatus;

int cmul_re(int ar, int ai, int br, int bi) {
	return ((ar * br) >> 8) - ((ai * bi) >> 8);
}

// Inverse 8-point DCT built on cmul_re.
int idct1d(xmem int in[], ymem int out[], ymem int cq[]) {
	int i; int k; int acc;
	for (i = 0; i < 8; i = i + 1) {
		acc = in[0] << 4;
		for (k = 1; k < 8; k = k + 1) {
			acc = acc + cmul_re(in[k], in[k] >> 4, cq[k * 8 + i], cq[i * 8 + k]);
		}
		out[i] = acc >> 5;
	}
	return out[0];
}

int idct2d(xmem int f[], xmem int st[], ymem int px[], ymem int cq[]) {
	int r; int c; int v;
	for (c = 0; c < 8; c = c + 1) {
		for (r = 0; r < 8; r = r + 1) { rowbuf[r] = f[r * 8 + c]; }
		v = idct1d(rowbuf, rowout, cq);
		for (r = 0; r < 8; r = r + 1) { st[r * 8 + c] = rowout[r]; }
	}
	for (r = 0; r < 8; r = r + 1) {
		int c2;
		for (c2 = 0; c2 < 8; c2 = c2 + 1) { rowbuf[c2] = st[r * 8 + c2]; }
		v = idct1d(rowbuf, rowout, cq);
		for (c2 = 0; c2 < 8; c2 = c2 + 1) { px[r * 8 + c2] = rowout[c2]; }
	}
	return v;
}

int dequant_block(xmem int in[], xmem int out[], int step) {
	int i;
	for (i = 0; i < 64; i = i + 1) { out[i] = in[i] * step; }
	return out[0];
}

// Inverse zig-zag: scatter the scanned order back to row-major.
int dezigzag(xmem int in[], ymem int out[]) {
	int s; int r; int c; int idx;
	idx = 0;
	for (s = 0; s < 15; s = s + 1) {
		if (s % 2 == 0) {
			r = s; if (r > 7) { r = 7; }
			c = s - r;
			while (r >= 0 && c < 8) {
				out[r * 8 + c] = in[idx];
				idx = idx + 1;
				r = r - 1;
				c = c + 1;
			}
		} else {
			c = s; if (c > 7) { c = 7; }
			r = s - c;
			while (c >= 0 && r < 8) {
				out[r * 8 + c] = in[idx];
				idx = idx + 1;
				c = c - 1;
				r = r + 1;
			}
		}
	}
	return out[0];
}

// Copy the de-zig-zagged coefficients into X memory for the IDCT.
int gather(ymem int in[], xmem int out[]) {
	int i;
	for (i = 0; i < 64; i = i + 1) { out[i] = in[i]; }
	return out[0];
}

int jpeg_decode() {
	int q; int z; int g; int d;
	q = dequant_block(coded, dequant, 8);
	z = dezigzag(dequant, deziz);
	g = gather(deziz, stage);
	// DC accumulation independent of the IDCT: parallel-code candidate.
	dcAccum = (dcAccum * 7 + q) >> 3;
	d = idct2d(stage, stage, pixels, cosq);
	blockStatus = q + z + g + d;
	return blockStatus;
}

int main() { return jpeg_decode(); }
`
	mk := func(id, name string, area float64, rate, latency int, funcs ...string) *ip.IP {
		return &ip.IP{ID: id, Name: name, Funcs: funcs, InPorts: 2, OutPorts: 2,
			InRate: rate, OutRate: rate, Latency: latency, Pipelined: true, Area: area}
	}
	cat, err := ip.NewCatalog(
		mk("IP1", "2D-IDCT engine", 26.5, 1, 64, "idct2d"),
		mk("IP2", "1D-IDCT engine", 10.5, 2, 16, "idct1d"),
		mk("IP4", "complex multiplier", 3.8, 4, 4, "cmul_re"),
		mk("IP5", "inverse zig-zag", 4.8, 2, 8, "dezigzag"),
		mk("IP6", "dequantizer", 2.7, 4, 4, "dequant_block"),
	)
	if err != nil {
		return Workload{}, err
	}
	return Workload{
		Name:    "jpeg-decoder",
		Source:  src,
		Root:    "jpeg_decode",
		Entry:   "main",
		Catalog: cat,
		DataCount: func(fn string) (int, int) {
			switch fn {
			case "idct2d", "dezigzag", "dequant_block", "gather":
				return 64, 64
			case "idct1d":
				return 8, 8
			case "cmul_re":
				return 4, 1
			}
			return 0, 0
		},
	}, nil
}
