// Package ip models the Intellectual-Property (IP) block library of
// Choi et al. (DAC 1999): hardware accelerators with input/output ports,
// data rates, pipeline latency, an area cost, and the set of functions
// they can perform. An IP performing a single function is an S-IP; one
// performing several functions is an M-IP (Definition 2). M-IPs save
// area by being shared across s-calls but are generally slower than an
// S-IP optimized for one function.
package ip

import (
	"fmt"
	"sort"
)

// Protocol is the native handshake of an IP block; the interface's
// protocol transformer (Fig. 1) converts it to the standard synchronous
// protocol. The flavor only affects the transformer's area.
type Protocol int

const (
	// Synchronous IPs connect to the standard protocol directly.
	Synchronous Protocol = iota
	// Handshake IPs need a request/acknowledge adapter.
	Handshake
	// Strobe IPs need a data-valid strobe adapter.
	Strobe
)

func (p Protocol) String() string {
	switch p {
	case Synchronous:
		return "sync"
	case Handshake:
		return "handshake"
	case Strobe:
		return "strobe"
	}
	return fmt.Sprintf("protocol(%d)", int(p))
}

// TransformerStates is the protocol-transformer FSM size per protocol.
func (p Protocol) TransformerStates() int {
	switch p {
	case Handshake:
		return 4
	case Strobe:
		return 2
	}
	return 0
}

// IP describes one library block.
type IP struct {
	// ID is the library identifier (the paper uses IP1, IP2, ...).
	ID string
	// Name is a human-readable description.
	Name string
	// Funcs lists the function names (s-call targets) the block can
	// implement. One entry → S-IP; several → M-IP.
	Funcs []string
	// InPorts and OutPorts are the number of data ports on each side.
	InPorts, OutPorts int
	// InRate and OutRate are the kernel-clock cycles between consecutive
	// data items on each port (1 = one item per cycle per port).
	InRate, OutRate int
	// Latency is the pipeline depth in cycles from first input to first
	// output.
	Latency int
	// Pipelined marks blocks that accept new data every InRate cycles;
	// non-pipelined blocks process one item set at a time.
	Pipelined bool
	// Area is A_IP in the paper's dimensionless units.
	Area float64
	// Protocol is the block's native port protocol.
	Protocol Protocol
	// PerfFactor scales execution time; M-IPs typically run >1.0 because
	// generality costs speed. Zero means 1.0.
	PerfFactor float64
}

// IsMulti reports whether the block is an M-IP.
func (b *IP) IsMulti() bool { return len(b.Funcs) > 1 }

// Supports reports whether the block can implement fn.
func (b *IP) Supports(fn string) bool {
	for _, f := range b.Funcs {
		if f == fn {
			return true
		}
	}
	return false
}

// perf returns the performance scale factor (≥ 1 in practice).
func (b *IP) perf() float64 {
	if b.PerfFactor <= 0 {
		return 1
	}
	return b.PerfFactor
}

// ExecCycles is T_IP: the time the block needs to process nIn input
// items producing nOut outputs, at its native rates and clock.
func (b *IP) ExecCycles(nIn, nOut int) int64 {
	if nIn <= 0 && nOut <= 0 {
		return 0
	}
	var t int64
	if b.Pipelined {
		in := int64(0)
		if nIn > 0 {
			in = int64(nIn-1) * int64(b.InRate)
		}
		out := int64(0)
		if nOut > 0 {
			out = int64(nOut-1) * int64(b.OutRate)
		}
		if out > in {
			in = out
		}
		t = int64(b.Latency) + in
	} else {
		n := nIn
		if nOut > n {
			n = nOut
		}
		t = int64(n) * int64(b.Latency)
	}
	return int64(float64(t)*b.perf() + 0.5)
}

// Validate checks structural sanity.
func (b *IP) Validate() error {
	switch {
	case b.ID == "":
		return fmt.Errorf("ip: block with empty ID")
	case len(b.Funcs) == 0:
		return fmt.Errorf("ip %s: no functions", b.ID)
	case b.InPorts <= 0 || b.OutPorts <= 0:
		return fmt.Errorf("ip %s: ports must be positive (in=%d out=%d)", b.ID, b.InPorts, b.OutPorts)
	case b.InRate <= 0 || b.OutRate <= 0:
		return fmt.Errorf("ip %s: rates must be positive (in=%d out=%d)", b.ID, b.InRate, b.OutRate)
	case b.Latency <= 0:
		return fmt.Errorf("ip %s: latency must be positive", b.ID)
	case b.Area <= 0:
		return fmt.Errorf("ip %s: area must be positive", b.ID)
	}
	return nil
}

// Catalog is an IP library.
type Catalog struct {
	byID map[string]*IP
}

// NewCatalog builds a library from blocks, validating each.
func NewCatalog(blocks ...*IP) (*Catalog, error) {
	c := &Catalog{byID: map[string]*IP{}}
	for _, b := range blocks {
		if err := c.Add(b); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Add validates and registers a block.
func (c *Catalog) Add(b *IP) error {
	if err := b.Validate(); err != nil {
		return err
	}
	if c.byID[b.ID] != nil {
		return fmt.Errorf("ip: duplicate ID %s", b.ID)
	}
	c.byID[b.ID] = b
	return nil
}

// Get returns the block with the given ID, or nil.
func (c *Catalog) Get(id string) *IP { return c.byID[id] }

// Len reports the number of blocks.
func (c *Catalog) Len() int { return len(c.byID) }

// All returns the blocks sorted by ID.
func (c *Catalog) All() []*IP {
	out := make([]*IP, 0, len(c.byID))
	for _, b := range c.byID {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// For returns the blocks that can implement fn, sorted by ID.
func (c *Catalog) For(fn string) []*IP {
	var out []*IP
	for _, b := range c.byID {
		if b.Supports(fn) {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
