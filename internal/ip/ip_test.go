package ip

import "testing"

func TestExecCyclesPipelined(t *testing.T) {
	b := &IP{
		ID: "IP1", Funcs: []string{"fir"},
		InPorts: 1, OutPorts: 1, InRate: 2, OutRate: 2,
		Latency: 10, Pipelined: true, Area: 5,
	}
	// 16 items: latency + 15 × rate.
	if got := b.ExecCycles(16, 16); got != 10+15*2 {
		t.Errorf("ExecCycles = %d, want 40", got)
	}
	// Output stream dominates when slower.
	b.OutRate = 4
	if got := b.ExecCycles(16, 16); got != 10+15*4 {
		t.Errorf("ExecCycles = %d, want 70", got)
	}
	if got := b.ExecCycles(0, 0); got != 0 {
		t.Errorf("ExecCycles(0,0) = %d", got)
	}
}

func TestExecCyclesNonPipelined(t *testing.T) {
	b := &IP{
		ID: "IP2", Funcs: []string{"dct"},
		InPorts: 1, OutPorts: 1, InRate: 1, OutRate: 1,
		Latency: 5, Pipelined: false, Area: 5,
	}
	if got := b.ExecCycles(8, 8); got != 40 {
		t.Errorf("ExecCycles = %d, want 40 (8 × 5)", got)
	}
}

func TestPerfFactor(t *testing.T) {
	s := &IP{ID: "S", Funcs: []string{"fir"}, InPorts: 1, OutPorts: 1,
		InRate: 1, OutRate: 1, Latency: 4, Pipelined: true, Area: 3}
	m := &IP{ID: "M", Funcs: []string{"fir", "iir"}, InPorts: 1, OutPorts: 1,
		InRate: 1, OutRate: 1, Latency: 4, Pipelined: true, Area: 5, PerfFactor: 1.5}
	if !m.IsMulti() || s.IsMulti() {
		t.Error("IsMulti misclassifies")
	}
	if m.ExecCycles(32, 32) <= s.ExecCycles(32, 32) {
		t.Error("M-IP should be slower than S-IP")
	}
}

func TestValidate(t *testing.T) {
	bad := []*IP{
		{},
		{ID: "a"},
		{ID: "a", Funcs: []string{"f"}},
		{ID: "a", Funcs: []string{"f"}, InPorts: 1, OutPorts: 1},
		{ID: "a", Funcs: []string{"f"}, InPorts: 1, OutPorts: 1, InRate: 1, OutRate: 1},
		{ID: "a", Funcs: []string{"f"}, InPorts: 1, OutPorts: 1, InRate: 1, OutRate: 1, Latency: 1},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, b)
		}
	}
	good := &IP{ID: "a", Funcs: []string{"f"}, InPorts: 1, OutPorts: 1,
		InRate: 1, OutRate: 1, Latency: 1, Area: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("good IP rejected: %v", err)
	}
}

func TestCatalog(t *testing.T) {
	mk := func(id string, funcs ...string) *IP {
		return &IP{ID: id, Funcs: funcs, InPorts: 1, OutPorts: 1,
			InRate: 1, OutRate: 1, Latency: 1, Area: 1}
	}
	c, err := NewCatalog(mk("IP2", "fir"), mk("IP1", "fir", "iir"), mk("IP3", "dct"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d", c.Len())
	}
	if got := c.For("fir"); len(got) != 2 || got[0].ID != "IP1" || got[1].ID != "IP2" {
		t.Errorf("For(fir) = %v", got)
	}
	if got := c.For("fft"); len(got) != 0 {
		t.Errorf("For(fft) = %v, want empty", got)
	}
	if c.Get("IP3") == nil || c.Get("nope") != nil {
		t.Error("Get broken")
	}
	if err := c.Add(mk("IP1", "x")); err == nil {
		t.Error("duplicate ID accepted")
	}
	all := c.All()
	if len(all) != 3 || all[0].ID != "IP1" || all[2].ID != "IP3" {
		t.Errorf("All() = %v", all)
	}
}

func TestProtocolStates(t *testing.T) {
	if Synchronous.TransformerStates() != 0 {
		t.Error("sync should need no transformer states")
	}
	if Handshake.TransformerStates() <= Strobe.TransformerStates() {
		t.Error("handshake should need more states than strobe")
	}
}
