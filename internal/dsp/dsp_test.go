package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFIRImpulse(t *testing.T) {
	// Filtering an impulse reproduces the (shifted) kernel.
	in := []int64{1 << QShift, 0, 0, 0, 0, 0}
	coef := []int64{100, 200, 300}
	out := make([]int64, 8)
	n, err := FIR(in, coef, out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("n = %d, want 4", n)
	}
	if out[0] != 100 {
		t.Errorf("out[0] = %d, want 100", out[0])
	}
	if out[1] != 0 || out[2] != 0 {
		t.Errorf("tail = %v, want zeros (impulse has passed)", out[1:4])
	}
}

func TestFIRMovingAverage(t *testing.T) {
	// 4-tap moving average of a constant signal is the constant.
	c := int64(1) << (QShift - 2) // 0.25 in Q15
	coef := []int64{c, c, c, c}
	in := []int64{80, 80, 80, 80, 80, 80, 80, 80}
	out := make([]int64, 8)
	n, err := FIR(in, coef, out)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if out[i] != 80 {
			t.Errorf("out[%d] = %d, want 80", i, out[i])
		}
	}
}

func TestFIRErrors(t *testing.T) {
	if _, err := FIR([]int64{1, 2, 3}, nil, make([]int64, 3)); err == nil {
		t.Error("empty kernel accepted")
	}
	if _, err := FIR(make([]int64, 10), make([]int64, 2), make([]int64, 1)); err == nil {
		t.Error("short output accepted")
	}
	if n, err := FIR(make([]int64, 2), make([]int64, 5), nil); err != nil || n != 0 {
		t.Error("input shorter than kernel should yield 0 samples, no error")
	}
}

func TestIIRLeakyIntegrator(t *testing.T) {
	// y[i] = x[i] + 0.5*y[i-1]: step input converges to 2× the step.
	b := []int64{1 << QShift}
	a := []int64{-(1 << (QShift - 1))} // -0.5 (note IIR subtracts a·y)
	in := make([]int64, 32)
	for i := range in {
		in[i] = 1000
	}
	out := make([]int64, 32)
	if err := IIR(in, b, a, out); err != nil {
		t.Fatal(err)
	}
	if got := out[31]; got < 1990 || got > 2000 {
		t.Errorf("steady state = %d, want ≈2000", got)
	}
}

func TestCorrelateSelfPeak(t *testing.T) {
	x := []int64{3, -1, 4, -1, 5}
	y := make([]int64, 15)
	copy(y[5:], x)
	r := make([]int64, 11)
	n, err := Correlate(x, y, r)
	if err != nil {
		t.Fatal(err)
	}
	if n != 11 {
		t.Fatalf("lags = %d, want 11", n)
	}
	best := 0
	for k := 1; k < n; k++ {
		if r[k] > r[best] {
			best = k
		}
	}
	if best != 5 {
		t.Errorf("correlation peak at lag %d, want 5 (r=%v)", best, r)
	}
}

func TestQuantize(t *testing.T) {
	in := []int64{100, -100, 57, 3}
	steps := []int64{10, 10, 8, 4}
	out := make([]int64, 4)
	if err := Quantize(in, steps, out); err != nil {
		t.Fatal(err)
	}
	want := []int64{10, -10, 7, 0}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
	if err := Quantize(in, []int64{1, 0, 1, 1}, out); err == nil {
		t.Error("zero step accepted")
	}
}

func TestInterpolateConstant(t *testing.T) {
	// Upsampling a constant through an averaging kernel stays ≈constant.
	in := []int64{64, 64, 64, 64, 64, 64}
	q := int64(1) << (QShift - 1)
	kernel := []int64{q, 1 << QShift, q} // triangle ≈ linear interpolation
	out := make([]int64, 32)
	n, err := Interpolate(in, 2, kernel, out)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatal("no output")
	}
	for i := 2; i < n-2; i++ {
		if out[i] < 120 || out[i] > 136 {
			t.Errorf("out[%d] = %d, want ≈128 (2× constant of 64)", i, out[i])
		}
	}
}

func TestCMul(t *testing.T) {
	// (1+2i)(3+4i) = -5 + 10i
	re, im := CMul(1, 2, 3, 4)
	if re != -5 || im != 10 {
		t.Errorf("CMul = (%d, %d), want (-5, 10)", re, im)
	}
}

func TestCMulProperties(t *testing.T) {
	// |a·b|² = |a|²·|b|² for the exact integer product.
	f := func(ar, ai, br, bi int16) bool {
		r, i := CMul(int64(ar), int64(ai), int64(br), int64(bi))
		lhs := r*r + i*i
		rhs := (int64(ar)*int64(ar) + int64(ai)*int64(ai)) * (int64(br)*int64(br) + int64(bi)*int64(bi))
		return lhs == rhs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZigZag8x8(t *testing.T) {
	n := 8
	block := make([]int64, n*n)
	for i := range block {
		block[i] = int64(i)
	}
	out := make([]int64, n*n)
	if err := ZigZag(block, n, out); err != nil {
		t.Fatal(err)
	}
	// Canonical JPEG zig-zag prefix: 0 1 8 16 9 2 3 10 ...
	wantPrefix := []int64{0, 1, 8, 16, 9, 2, 3, 10, 17, 24}
	for i, w := range wantPrefix {
		if out[i] != w {
			t.Fatalf("zigzag[%d] = %d, want %d (full: %v)", i, out[i], w, out[:10])
		}
	}
	// Permutation property: every index appears exactly once.
	seen := map[int64]bool{}
	for _, v := range out {
		if seen[v] {
			t.Fatalf("duplicate %d in zigzag output", v)
		}
		seen[v] = true
	}
}

func TestZigZagIndexMatches(t *testing.T) {
	idx := ZigZagIndex(4)
	if len(idx) != 16 || idx[0] != 0 || idx[1] != 1 || idx[2] != 4 {
		t.Errorf("ZigZagIndex(4) prefix = %v", idx[:3])
	}
}

func TestDCT1DConstantSignal(t *testing.T) {
	// DCT of a constant concentrates in coefficient 0: out[0] = n·c,
	// all other coefficients ≈ 0.
	in := []int64{100, 100, 100, 100, 100, 100, 100, 100}
	out := make([]int64, 8)
	if err := DCT1D(in, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 800 {
		t.Errorf("DC = %d, want 800", out[0])
	}
	for k := 1; k < 8; k++ {
		if out[k] < -2 || out[k] > 2 {
			t.Errorf("AC[%d] = %d, want ≈0", k, out[k])
		}
	}
}

func TestDCT1DMatchesFloat(t *testing.T) {
	in := []int64{12, -7, 300, 5, -100, 42, 9, -3}
	out := make([]int64, 8)
	if err := DCT1D(in, out); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 8; k++ {
		var ref float64
		for i, v := range in {
			ref += float64(v) * math.Cos(math.Pi*float64(k)*(2*float64(i)+1)/16)
		}
		if math.Abs(float64(out[k])-ref) > 2 {
			t.Errorf("DCT[%d] = %d, float reference %.1f", k, out[k], ref)
		}
	}
}

func TestDCT1DViaFFTMatchesDirect(t *testing.T) {
	in := []int64{1000, -500, 250, 774, -333, 90, 1, -42}
	direct := make([]int64, 8)
	viafft := make([]int64, 8)
	if err := DCT1D(in, direct); err != nil {
		t.Fatal(err)
	}
	if err := DCT1DViaFFT(in, viafft); err != nil {
		t.Fatal(err)
	}
	for k := range direct {
		diff := direct[k] - viafft[k]
		if diff < -8 || diff > 8 {
			t.Errorf("k=%d: direct %d vs FFT-path %d", k, direct[k], viafft[k])
		}
	}
}

func TestDCT2DSeparable(t *testing.T) {
	// A block constant along rows transforms to energy only in column 0
	// after the row pass, and in coefficient (0,0) overall.
	n := 4
	block := make([]int64, n*n)
	for i := range block {
		block[i] = 50
	}
	out := make([]int64, n*n)
	if err := DCT2D(block, n, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != int64(n*n)*50 {
		t.Errorf("DC = %d, want %d", out[0], n*n*50)
	}
	for i := 1; i < n*n; i++ {
		if out[i] < -4 || out[i] > 4 {
			t.Errorf("AC[%d] = %d, want ≈0", i, out[i])
		}
	}
}

func TestIDCTInvertsDCT(t *testing.T) {
	in := []int64{500, -200, 350, 125, -400, 90, 60, -10}
	n := len(in)
	fw := make([]int64, n)
	bw := make([]int64, n)
	if err := DCT1D(in, fw); err != nil {
		t.Fatal(err)
	}
	if err := IDCT1D(fw, bw); err != nil {
		t.Fatal(err)
	}
	// IDCT(DCT(x)) = x·n/2 up to fixed-point error.
	for i := range in {
		got := bw[i] / int64(n/2)
		if diff := got - in[i]; diff < -4 || diff > 4 {
			t.Errorf("roundtrip[%d] = %d, want ≈%d", i, got, in[i])
		}
	}
}

func TestIDCT2DInverts(t *testing.T) {
	n := 4
	in := []int64{100, -50, 25, 75, 0, 60, -80, 10, 33, -12, 99, -4, 7, 21, -65, 48}
	fw := make([]int64, n*n)
	bw := make([]int64, n*n)
	if err := DCT2D(in, n, fw); err != nil {
		t.Fatal(err)
	}
	if err := IDCT2D(fw, n, bw); err != nil {
		t.Fatal(err)
	}
	scale := int64((n / 2) * (n / 2))
	for i := range in {
		got := bw[i] / scale
		if diff := got - in[i]; diff < -6 || diff > 6 {
			t.Errorf("roundtrip[%d] = %d, want ≈%d", i, got, in[i])
		}
	}
}

func TestDequantizeInvertsQuantize(t *testing.T) {
	in := []int64{100, -100, 57, 3}
	steps := []int64{10, 10, 8, 4}
	q := make([]int64, 4)
	dq := make([]int64, 4)
	if err := Quantize(in, steps, q); err != nil {
		t.Fatal(err)
	}
	if err := Dequantize(q, steps, dq); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		diff := dq[i] - in[i]
		if diff < -steps[i] || diff > steps[i] {
			t.Errorf("dequant[%d] = %d, want within one step of %d", i, dq[i], in[i])
		}
	}
	if err := Dequantize(q, steps[:2], dq); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestFFTParseval(t *testing.T) {
	// Energy conservation (within fixed-point error): Σ|x|² ≈ Σ|X|²/n.
	re := []int64{100, 20, -30, 44, -100, 9, 73, -12}
	im := make([]int64, 8)
	var inE float64
	for i := range re {
		inE += float64(re[i]*re[i] + im[i]*im[i])
	}
	if err := FFT(re, im); err != nil {
		t.Fatal(err)
	}
	var outE float64
	for i := range re {
		outE += float64(re[i]*re[i] + im[i]*im[i])
	}
	outE /= 8
	if math.Abs(outE-inE) > 0.02*inE+100 {
		t.Errorf("Parseval: in %.0f vs out %.0f", inE, outE)
	}
}

func TestFFTImpulse(t *testing.T) {
	// FFT of an impulse is flat.
	re := make([]int64, 16)
	im := make([]int64, 16)
	re[0] = 1 << QShift
	if err := FFT(re, im); err != nil {
		t.Fatal(err)
	}
	for i := range re {
		if re[i] != 1<<QShift || im[i] != 0 {
			t.Errorf("bin %d = (%d, %d), want (32768, 0)", i, re[i], im[i])
		}
	}
}

func TestFFTErrors(t *testing.T) {
	if err := FFT(make([]int64, 6), make([]int64, 6)); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if err := FFT(make([]int64, 8), make([]int64, 4)); err == nil {
		t.Error("length mismatch accepted")
	}
}
