// Package dsp provides reference fixed-point implementations of the DSP
// kernels that appear in the paper's workloads (GSM speech coding, JPEG
// image coding): FIR/IIR filtering, correlation, quantization,
// interpolation, DCTs, FFT, complex multiplication, and zig-zag scanning.
//
// They serve three roles in the reproduction:
//
//  1. functional models of the IP blocks in the IP library,
//  2. golden references for the MOP-level workload programs,
//  3. data generators for the benchmark harness.
//
// Arithmetic is int64 with explicit scaling (Q15 where fractional
// coefficients are involved) so results are deterministic across
// platforms.
package dsp

import "fmt"

// QShift is the fixed-point fractional precision used by filter
// coefficients (Q15).
const QShift = 15

// FIR computes a direct-form FIR filter: out[i] = Σ_j in[i+j]*coef[j],
// for i in [0, len(in)-len(coef)]. The result is scaled down by QShift.
// It returns the number of output samples produced.
func FIR(in, coef, out []int64) (int, error) {
	if len(coef) == 0 {
		return 0, fmt.Errorf("dsp: FIR with empty coefficient set")
	}
	n := len(in) - len(coef) + 1
	if n <= 0 {
		return 0, nil
	}
	if len(out) < n {
		return 0, fmt.Errorf("dsp: FIR output needs %d samples, have %d", n, len(out))
	}
	for i := 0; i < n; i++ {
		var acc int64
		for j, c := range coef {
			acc += in[i+j] * c
		}
		out[i] = acc >> QShift
	}
	return n, nil
}

// IIR applies a direct-form-I IIR filter with feed-forward coefficients b
// and feedback coefficients a (a[0] is implicitly 1 and must not be
// included). Coefficients are Q15.
func IIR(in []int64, b, a []int64, out []int64) error {
	if len(b) == 0 {
		return fmt.Errorf("dsp: IIR needs at least one numerator coefficient")
	}
	if len(out) < len(in) {
		return fmt.Errorf("dsp: IIR output needs %d samples, have %d", len(in), len(out))
	}
	for i := range in {
		var acc int64
		for j, c := range b {
			if i-j >= 0 {
				acc += in[i-j] * c
			}
		}
		for j, c := range a {
			if i-j-1 >= 0 {
				acc -= out[i-j-1] * c
			}
		}
		out[i] = acc >> QShift
	}
	return nil
}

// Correlate computes the cross-correlation r[k] = Σ_i x[i]*y[i+k] for
// k in [0, len(y)-len(x)].
func Correlate(x, y, r []int64) (int, error) {
	n := len(y) - len(x) + 1
	if n <= 0 {
		return 0, nil
	}
	if len(r) < n {
		return 0, fmt.Errorf("dsp: correlation output needs %d lags, have %d", n, len(r))
	}
	for k := 0; k < n; k++ {
		var acc int64
		for i := range x {
			acc += x[i] * y[i+k]
		}
		r[k] = acc
	}
	return n, nil
}

// Quantize divides each sample by its step (rounding toward zero) —
// the JPEG-style per-coefficient quantizer.
func Quantize(in, steps, out []int64) error {
	if len(steps) != len(in) || len(out) < len(in) {
		return fmt.Errorf("dsp: quantize length mismatch (in=%d steps=%d out=%d)", len(in), len(steps), len(out))
	}
	for i, v := range in {
		if steps[i] == 0 {
			return fmt.Errorf("dsp: zero quantization step at %d", i)
		}
		out[i] = v / steps[i]
	}
	return nil
}

// Interpolate upsamples by factor and smooths with the given Q15 kernel:
// the classic interpolation-filter IP whose input and output data rates
// differ (Section 3 of the paper).
func Interpolate(in []int64, factor int, kernel []int64, out []int64) (int, error) {
	if factor <= 0 {
		return 0, fmt.Errorf("dsp: interpolation factor %d", factor)
	}
	up := make([]int64, len(in)*factor)
	for i, v := range in {
		up[i*factor] = v * int64(factor)
	}
	if len(kernel) == 0 {
		if len(out) < len(up) {
			return 0, fmt.Errorf("dsp: interpolate output needs %d samples", len(up))
		}
		copy(out, up)
		return len(up), nil
	}
	return FIR(up, kernel, out)
}

// CMul multiplies two complex numbers given as (re, im) int64 pairs.
func CMul(ar, ai, br, bi int64) (int64, int64) {
	return ar*br - ai*bi, ar*bi + ai*br
}

// ZigZag scans an n×n block in JPEG zig-zag order into out (length n*n).
func ZigZag(block []int64, n int, out []int64) error {
	if len(block) != n*n || len(out) < n*n {
		return fmt.Errorf("dsp: zigzag needs %d values (have block=%d out=%d)", n*n, len(block), len(out))
	}
	idx := 0
	for s := 0; s < 2*n-1; s++ {
		if s%2 == 0 {
			// Walk up-right.
			r := s
			if r > n-1 {
				r = n - 1
			}
			c := s - r
			for r >= 0 && c < n {
				out[idx] = block[r*n+c]
				idx++
				r--
				c++
			}
		} else {
			c := s
			if c > n-1 {
				c = n - 1
			}
			r := s - c
			for c >= 0 && r < n {
				out[idx] = block[r*n+c]
				idx++
				c--
				r++
			}
		}
	}
	return nil
}

// ZigZagIndex returns the zig-zag scan order of an n×n block as indices
// into the row-major block (out[k] = source index of the k'th scanned
// element).
func ZigZagIndex(n int) []int {
	block := make([]int64, n*n)
	for i := range block {
		block[i] = int64(i)
	}
	out := make([]int64, n*n)
	_ = ZigZag(block, n, out)
	idx := make([]int, n*n)
	for i, v := range out {
		idx[i] = int(v)
	}
	return idx
}
