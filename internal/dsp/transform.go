package dsp

import (
	"fmt"
	"math"
)

// cosTableQ15 caches Q15 cosine tables for DCT sizes.
var cosTableQ15 = map[int][]int64{}

func dctTable(n int) []int64 {
	if t, ok := cosTableQ15[n]; ok {
		return t
	}
	t := make([]int64, n*n)
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			c := math.Cos(math.Pi * float64(k) * (2*float64(i) + 1) / (2 * float64(n)))
			t[k*n+i] = int64(math.Round(c * float64(int64(1)<<QShift)))
		}
	}
	cosTableQ15[n] = t
	return t
}

// DCT1D computes the (unnormalized) DCT-II of in into out using Q15
// cosine tables: out[k] = (Σ_i in[i]·cos(π·k·(2i+1)/2n)) >> QShift.
func DCT1D(in, out []int64) error {
	n := len(in)
	if n == 0 || len(out) < n {
		return fmt.Errorf("dsp: DCT1D needs %d outputs, have %d", n, len(out))
	}
	t := dctTable(n)
	for k := 0; k < n; k++ {
		var acc int64
		row := t[k*n : k*n+n]
		for i, v := range in {
			acc += v * row[i]
		}
		out[k] = acc >> QShift
	}
	return nil
}

// DCT2D computes the 2-D DCT of an n×n row-major block by applying DCT1D
// to every row and then every column — exactly the decomposition the
// paper's JPEG hierarchy exploits (2D-DCT calls 1D-DCT).
func DCT2D(block []int64, n int, out []int64) error {
	if len(block) != n*n || len(out) < n*n {
		return fmt.Errorf("dsp: DCT2D needs %d values", n*n)
	}
	tmp := make([]int64, n*n)
	row := make([]int64, n)
	// Rows.
	for r := 0; r < n; r++ {
		if err := DCT1D(block[r*n:r*n+n], row); err != nil {
			return err
		}
		copy(tmp[r*n:], row)
	}
	// Columns.
	col := make([]int64, n)
	colOut := make([]int64, n)
	for c := 0; c < n; c++ {
		for r := 0; r < n; r++ {
			col[r] = tmp[r*n+c]
		}
		if err := DCT1D(col, colOut); err != nil {
			return err
		}
		for r := 0; r < n; r++ {
			out[r*n+c] = colOut[r]
		}
	}
	return nil
}

// IDCT1D computes the inverse of DCT1D (the unnormalized DCT-III with
// the conventional ½-weighted DC term), scaled such that
// IDCT1D(DCT1D(x)) ≈ x·n/2. Callers divide by n/2 to recover the signal.
func IDCT1D(in, out []int64) error {
	n := len(in)
	if n == 0 || len(out) < n {
		return fmt.Errorf("dsp: IDCT1D needs %d outputs, have %d", n, len(out))
	}
	t := dctTable(n)
	for i := 0; i < n; i++ {
		acc := in[0] << (QShift - 1) // ½·X0
		for k := 1; k < n; k++ {
			acc += in[k] * t[k*n+i]
		}
		out[i] = acc >> QShift
	}
	return nil
}

// IDCT2D inverts DCT2D on an n×n block (columns then rows), scaled by
// (n/2)² like its 1-D counterpart.
func IDCT2D(block []int64, n int, out []int64) error {
	if len(block) != n*n || len(out) < n*n {
		return fmt.Errorf("dsp: IDCT2D needs %d values", n*n)
	}
	tmp := make([]int64, n*n)
	col := make([]int64, n)
	colOut := make([]int64, n)
	for c := 0; c < n; c++ {
		for r := 0; r < n; r++ {
			col[r] = block[r*n+c]
		}
		if err := IDCT1D(col, colOut); err != nil {
			return err
		}
		for r := 0; r < n; r++ {
			tmp[r*n+c] = colOut[r]
		}
	}
	row := make([]int64, n)
	for r := 0; r < n; r++ {
		if err := IDCT1D(tmp[r*n:r*n+n], row); err != nil {
			return err
		}
		copy(out[r*n:], row)
	}
	return nil
}

// Dequantize multiplies each sample by its step — the inverse of
// Quantize up to the truncation loss.
func Dequantize(in, steps, out []int64) error {
	if len(steps) != len(in) || len(out) < len(in) {
		return fmt.Errorf("dsp: dequantize length mismatch (in=%d steps=%d out=%d)", len(in), len(steps), len(out))
	}
	for i, v := range in {
		out[i] = v * steps[i]
	}
	return nil
}

// FFT computes an in-place radix-2 decimation-in-time FFT over Q15
// twiddles. re and im must have power-of-two length. The forward
// transform is unscaled (values grow by up to n).
func FFT(re, im []int64) error {
	n := len(re)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("dsp: FFT length %d is not a power of two", n)
	}
	if len(im) != n {
		return fmt.Errorf("dsp: FFT re/im length mismatch %d vs %d", n, len(im))
	}
	// Bit reversal.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
		mask := n >> 1
		for j&mask != 0 {
			j &^= mask
			mask >>= 1
		}
		j |= mask
	}
	one := int64(1) << QShift
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				ang := -math.Pi * float64(k) / float64(half)
				wr := int64(math.Round(math.Cos(ang) * float64(one)))
				wi := int64(math.Round(math.Sin(ang) * float64(one)))
				i0, i1 := start+k, start+k+half
				tr := (re[i1]*wr - im[i1]*wi) >> QShift
				ti := (re[i1]*wi + im[i1]*wr) >> QShift
				re[i1] = re[i0] - tr
				im[i1] = im[i0] - ti
				re[i0] += tr
				im[i0] += ti
			}
		}
	}
	return nil
}

// DCT1DViaFFT computes the same unnormalized DCT-II as DCT1D but through
// a 4n-point FFT — the decomposition the paper's JPEG hierarchy uses
// (1D-DCT calls FFT, FFT performs complex multiplications). It exists to
// demonstrate the hierarchy and to cross-check the direct form.
func DCT1DViaFFT(in, out []int64) error {
	n := len(in)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("dsp: DCT1DViaFFT needs a power-of-two size, got %d", n)
	}
	if len(out) < n {
		return fmt.Errorf("dsp: DCT1DViaFFT needs %d outputs", n)
	}
	// Embed into a 4n-point sequence with odd symmetry so the real part
	// of the FFT yields the DCT-II: y[2i+1] = x[i], y[4n-2i-1] = x[i].
	m := 4 * n
	re := make([]int64, m)
	im := make([]int64, m)
	for i, v := range in {
		re[2*i+1] = v
		re[m-2*i-1] = v
	}
	if err := FFT(re, im); err != nil {
		return err
	}
	for k := 0; k < n; k++ {
		out[k] = re[k] / 2
	}
	return nil
}
