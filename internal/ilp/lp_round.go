package ilp

import (
	"context"
	"errors"
	"math"

	"partita/internal/budget"
)

// ErrNoRounding is returned by SolveLPRound when the root relaxation is
// fractional, nearest-integer rounding violates a constraint, and no
// valid warm start is installed: the cheap engine has no answer for this
// instance and the caller should fall back to branch and bound.
var ErrNoRounding = errors.New("ilp: LP rounding produced no feasible point")

// BoundError is the concrete error SolveLPRound returns when rounding
// fails after a successfully solved relaxation: no feasible point, but
// the relaxation optimum is still a proven bound on the ILP optimum.
// errors.Is(err, ErrNoRounding) matches it; errors.As extracts the
// bound so callers (the racing portfolio) can use it to judge other
// engines' candidates even though this engine produced none.
type BoundError struct {
	// Bound is the proven relaxation bound, in the model's own sense.
	Bound float64
	// X is the fractional relaxation optimum (caller-owned copy), so a
	// structure-aware caller can attempt its own repair — the generic
	// nearest-integer snap failed, but a caller that knows what the
	// variables mean usually can do better.
	X []float64
}

func (e *BoundError) Error() string { return ErrNoRounding.Error() }

// Unwrap makes errors.Is(err, ErrNoRounding) succeed on a BoundError.
func (e *BoundError) Unwrap() error { return ErrNoRounding }

// SolveLPRound solves only the root LP relaxation and tries to turn it
// into an integral answer without any branching — the "LP + rounding"
// portfolio engine. It is the opportunistic-rounding step that
// branch-and-bound already applies at every node, promoted to a
// standalone solve:
//
//   - an infeasible or unbounded relaxation proves the same status for
//     the 0-1 program (the relaxation only widens the feasible set);
//   - an integral relaxation optimum is the proven ILP optimum
//     (Status Optimal, Bound == Objective);
//   - a fractional optimum is snapped to the nearest integers; when the
//     snapped point satisfies every constraint it is returned as
//     Feasible with the LP objective as the proven Bound, so Gap()
//     reports exactly how far from optimal it can be;
//   - otherwise the model's warm start (SetWarmStart), if valid, is
//     returned as the Feasible answer under the same LP bound — on an
//     incremental re-solve this is the previous selection, delivered at
//     the cost of one simplex run;
//   - with nothing feasible in hand, a *BoundError (matching
//     ErrNoRounding) that still carries the proven relaxation bound.
//
// One simplex solve, one node: Solution.Nodes is always 1. The context
// deadline and bud.MaxSimplexIter bound the relaxation itself.
func (m *Model) SolveLPRound(ctx context.Context, bud budget.Budget) (*Solution, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	if err := budget.Check(ctx); err != nil {
		return nil, err
	}
	lim := limits{ctx: ctx, maxIter: bud.MaxSimplexIter}
	r := m.solveRelaxation(nil, lim, nil)
	if r.err != nil {
		return nil, r.err
	}
	switch r.status {
	case Infeasible:
		return &Solution{Status: Infeasible, Nodes: 1, Bound: math.Inf(1)}, nil
	case Unbounded:
		return &Solution{Status: Unbounded, Nodes: 1, Bound: math.Inf(-1)}, nil
	}
	bound := r.obj // LP optimum bounds the ILP optimum in the model's own sense

	if m.pickBranch(r.x, nil) < 0 {
		// Integral within tolerance: snapping is exact and the LP optimum
		// is the ILP optimum.
		x := m.roundExact(r.x)
		if obj, ok := m.evalPoint(x); ok {
			return &Solution{Status: Optimal, Objective: obj, Values: x, Nodes: 1, Bound: obj}, nil
		}
	} else if x, obj, ok := m.roundToFeasible(r.x); ok {
		return &Solution{Status: Feasible, Objective: obj, Values: x, Nodes: 1, Bound: bound}, nil
	}

	if x, objMin, ok := m.warmIncumbent(); ok {
		obj := objMin
		if m.sense == Maximize {
			obj = -obj
		}
		return &Solution{Status: Feasible, Objective: obj, Values: x, Nodes: 1, Bound: bound}, nil
	}
	return nil, &BoundError{Bound: bound, X: append([]float64(nil), r.x...)}
}
