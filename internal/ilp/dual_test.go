package ilp

import (
	"context"
	"math"
	"testing"
)

// dualCorpusModel derives a deterministic small model from a seed via
// the fuzz decoder, so the warm/cold agreement suite and the fuzz
// corpus exercise the same model distribution.
func dualCorpusModel(seed int64) (*Model, bool) {
	rng := seed*2654435761 + 1
	buf := make([]byte, 40)
	for i := range buf {
		rng = rng*6364136223846793005 + 1442695040888963407
		buf[i] = byte(rng >> 33)
	}
	return decodeModel(buf)
}

// coldAt solves the relaxation at fixing set fx from scratch.
func coldAt(m *Model, fx *fixSet) lpResult {
	lim := limits{ctx: context.Background()}
	return m.solveRelaxation(fx, lim, &arena{})
}

// checkAgree fails the test unless warm and cold agree on status and,
// when both Optimal, on objective value.
func checkAgree(t *testing.T, m *Model, tag string, warm, cold lpResult) {
	t.Helper()
	if warm.err != nil {
		t.Fatalf("%s: warm solve error: %v\nmodel:\n%s", tag, warm.err, m)
	}
	if warm.status != cold.status {
		t.Fatalf("%s: warm status %v, cold %v\nmodel:\n%s", tag, warm.status, cold.status, m)
	}
	if warm.status != Optimal {
		return
	}
	if math.Abs(warm.obj-cold.obj) > 1e-6 {
		t.Fatalf("%s: warm obj %v, cold obj %v\nmodel:\n%s", tag, warm.obj, cold.obj, m)
	}
	// The warm point must actually attain the claimed objective.
	obj, ok := m.evalPoint(warm.x)
	if !ok {
		t.Fatalf("%s: warm point violates the model\nmodel:\n%s", tag, m)
	}
	if math.Abs(obj-warm.obj) > 1e-6 {
		t.Fatalf("%s: warm point evaluates to %v, claimed %v\nmodel:\n%s", tag, obj, warm.obj, m)
	}
}

// emptyFix builds a loaded fixSet with nothing pinned.
func emptyFix(n int) *fixSet {
	fx := &fixSet{}
	fx.load(n, nil)
	return fx
}

// fixOne builds a fixSet with a single variable pinned.
func fixOne(n int, v VarID, val float64) *fixSet {
	fx := &fixSet{}
	fx.load(n, nil)
	fx.set[v] = true
	fx.val[v] = val
	fx.touched = append(fx.touched, v)
	return fx
}

// TestDualWarmMatchesColdRoot checks that the bounded-variable dual
// simplex reaches the same root optimum as the two-phase primal over a
// corpus of seeded models.
func TestDualWarmMatchesColdRoot(t *testing.T) {
	built := 0
	for seed := int64(0); seed < 400; seed++ {
		m, ok := dualCorpusModel(seed)
		if !ok {
			continue
		}
		cold := coldAt(m, nil)
		c := newChainLP(m, limits{ctx: context.Background()}, nil)
		if c == nil {
			// Chain form declined the model (e.g. root not Optimal) —
			// legal, the caller stays cold. It must not decline clean
			// Optimal roots, or the warm path never engages.
			if cold.status == Optimal && cold.err == nil {
				t.Fatalf("seed %d: chain declined a model with a clean Optimal root\nmodel:\n%s", seed, m)
			}
			continue
		}
		built++
		warm := c.solveAt(emptyFix(len(m.vars)), math.Inf(1), nil)
		checkAgree(t, m, "root", warm, cold)
	}
	if built < 100 {
		t.Fatalf("corpus too thin: only %d chain builds", built)
	}
}

// TestDualWarmMatchesColdAfterFix drives every single-variable fixing
// of every corpus model through the warm path and cross-checks the cold
// solver, then unfixes back to the root and checks again — exercising
// applyFix, undoFix, and dual feasibility restoration.
func TestDualWarmMatchesColdAfterFix(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		m, ok := dualCorpusModel(seed)
		if !ok {
			continue
		}
		c := newChainLP(m, limits{ctx: context.Background()}, nil)
		if c == nil {
			continue
		}
		root := coldAt(m, nil)
		for v := range m.vars {
			for _, val := range []float64{0, 1} {
				fx := fixOne(len(m.vars), VarID(v), val)
				cold := coldAt(m, fx)
				warm := c.solveAt(fx, math.Inf(1), nil)
				if warm.err != nil {
					// Numerics bail: chain rebuilds next call; skip the
					// comparison but keep hammering it.
					continue
				}
				checkAgree(t, m, "fixed", warm, cold)
				back := c.solveAt(emptyFix(len(m.vars)), math.Inf(1), nil)
				checkAgree(t, m, "unfixed", back, root)
			}
		}
	}
}

// TestDualWarmNavigationJumps moves one chain through a random walk of
// multi-variable fixing sets — the access pattern of a work-stealing
// worker jumping between distant nodes — and cross-checks every stop.
func TestDualWarmNavigationJumps(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		m, ok := dualCorpusModel(seed)
		if !ok || len(m.vars) < 3 {
			continue
		}
		c := newChainLP(m, limits{ctx: context.Background()}, nil)
		if c == nil {
			continue
		}
		rng := seed*9176 + 13
		for hop := 0; hop < 12; hop++ {
			fx := &fixSet{}
			fx.load(len(m.vars), nil)
			for v := range m.vars {
				rng = rng*6364136223846793005 + 1442695040888963407
				switch (rng >> 33) % 4 {
				case 0:
					fx.set[v] = true
					fx.val[v] = 0
					fx.touched = append(fx.touched, VarID(v))
				case 1:
					fx.set[v] = true
					fx.val[v] = 1
					fx.touched = append(fx.touched, VarID(v))
				}
			}
			cold := coldAt(m, fx)
			warm := c.solveAt(fx, math.Inf(1), nil)
			if warm.err != nil {
				continue
			}
			checkAgree(t, m, "jump", warm, cold)
		}
	}
}

// TestDualEarlyCutoffIsSound verifies that a cutoff-terminated warm
// solve returns a bound that never exceeds the node's true LP optimum —
// pruning on it can then never cut off the integer optimum.
func TestDualEarlyCutoffIsSound(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		m, ok := dualCorpusModel(seed)
		if !ok {
			continue
		}
		c := newChainLP(m, limits{ctx: context.Background()}, nil)
		if c == nil {
			continue
		}
		cold := coldAt(m, nil)
		if cold.status != Optimal {
			continue
		}
		// A cutoff below the optimum must trigger an early out (or a
		// completed solve); either way the reported bound, converted to
		// minimization sense, must stay ≤ the true optimum.
		cutoffMin := cold.obj
		if m.sense == Maximize {
			cutoffMin = -cold.obj
		}
		cutoffMin -= 5
		warm := c.solveAt(emptyFix(len(m.vars)), cutoffMin, nil)
		if warm.err != nil || warm.status != Optimal {
			continue
		}
		bound, opt := warm.obj, cold.obj
		if m.sense == Maximize {
			bound, opt = -bound, -opt
		}
		if bound > opt+1e-6 {
			t.Fatalf("seed %d: early bound %v exceeds optimum %v\nmodel:\n%s", seed, warm.obj, cold.obj, m)
		}
	}
}
