package ilp

import (
	"errors"
	"math"
	"sort"

	"partita/internal/budget"
)

// Dual-simplex warm starts over a bounded-variable tableau.
//
// Branch and bound re-solves the same LP thousands of times with only a
// single 0/1 bound changed per node. The cold path (solveRelaxation)
// substitutes fixed variables out of the formulation, so every node gets
// a differently-shaped tableau and must pay a full two-phase primal
// solve. A chainLP instead keeps ONE tableau for the whole tree and
// re-solves each node with the dual simplex from the previous node's
// basis.
//
// The representation matters as much as the warm start. An earlier
// variant encoded every 0/1 bound as an explicit pair of LE rows, which
// tripled the row count on the selector models and made each pivot pay
// for a tableau dominated by bound rows — the warm path lost to the
// cold one on raw pivot cost. This version handles variable bounds
// implicitly (the textbook bounded-variable simplex): a nonbasic
// variable rests at its lower OR upper bound, and only the model's real
// constraint rows appear in the tableau. For the GSM selector model
// that shrinks the tableau by ~3x in rows and ~2x in columns, which is
// ~6x less memory traffic per pivot.
//
// Bounds also make the warm protocol trivial:
//
//   - fixing x to v is a bound change [0,1] → [v,v]. If x is nonbasic
//     it snaps to v with one O(m) column update of the basic values; if
//     basic, its row simply becomes bound-violated and the next dual
//     pivots repair it.
//   - unfixing restores [0,1]. A nonbasic variable is already at 0 or
//     1, both legal; at most its reduced-cost sign demands an O(m) flip
//     to the opposite bound to stay dual feasible.
//
// No basis change is needed to move between nodes, so one chainLP can
// navigate from any node to any other node of the same tree (undo the
// fixings not shared, apply the new ones, re-solve dual). That is
// exactly the access pattern of a work-stealing worker: dive (one new
// fixing), then jump to a stolen node elsewhere.
//
// There is no phase 1 and there are no artificial columns: the initial
// all-slack basis is made dual feasible by parking negative-cost
// columns at their (finite) upper bound, and the dual simplex runs both
// the root solve and every warm re-solve. At any dual-feasible basis
// the running objective is a lower bound on the node's LP optimum (weak
// duality), so a re-solve stops the moment that bound crosses the
// incumbent cutoff — infeasibility proofs in pruned subtrees are paid
// only up to the cutoff, not to completion.
//
// Numerical trouble (pivot cap, lost dual feasibility) is never fatal:
// the caller falls back to the cold path for that node and the chainLP
// rebuilds itself from scratch on next use.

// errChainNumerics signals that the warm tableau can no longer be
// trusted and must be rebuilt.
var errChainNumerics = errors.New("ilp: warm tableau numerically unusable")

// dualPivotCap bounds the dual-simplex pivots spent on one solve before
// giving up on the warm path. Warm re-solves that need more than this
// are pathological; the cold fallback handles them.
const dualPivotCap = 5000

// chainRefresh rebuilds the tableau from scratch every this many warm
// solves. The incremental O(m) bound updates never refactor the basis,
// so error accumulates slowly; a periodic rebuild costs one root solve
// and resets the drift.
const chainRefresh = 512

// chainTrustSolves bounds how stale a tableau may be (warm solves since
// its last full rebuild) for its subtree-killing verdicts — an
// Infeasible status or a Driebeek–Tomlin child penalty that crosses the
// cutoff (including +Inf, via repairRate finding no eligible column
// under the pivot tolerance) — to be acted on without confirmation.
// The rationale: drift grows with pivots since the last
// refactorization, and a tableau within ~chainTrustSolves solves (a few
// hundred pivots) of a rebuild carries no more accumulated error than
// the single un-refactored two-phase solve the cold path runs — whose
// verdicts the serial solver trusts unconditionally. Past this, a
// spurious verdict could silently cut off a feasible subtree, so the
// claim must survive a cold re-derivation first.
const chainTrustSolves = 64

// fresh reports whether the tableau was refactored recently enough for
// its pruning verdicts (Infeasible, penalty lifts past the cutoff) to
// be trusted without a cold confirmation.
func (c *chainLP) fresh() bool { return !c.broken && c.solves <= chainTrustSolves }

type chainLP struct {
	m   *Model
	lim limits

	// Dense reduced tableau in SLOT layout: of the nTot = nStruct
	// structural + mRows slack columns, exactly nStruct are nonbasic at
	// any time, and only nonbasic columns need maintaining (a basic
	// column is an identity column by definition and is never read).
	// a is mRows × nStruct over slots; nb[slot] names the column
	// currently held by a slot and nbPos[col] its inverse (−1 when
	// basic). A pivot swaps the leaving column into the entering
	// column's slot, so every inner loop is a contiguous sweep —
	// updating column ids indirectly through nb costs ~2x the memory
	// traffic in gather/scatter.
	//
	// bval holds the VALUE of the basic variable of each row (not
	// B⁻¹b — nonbasic-at-upper contributions are folded in); d holds
	// reduced costs per SLOT in minimization sense; z the objective
	// value of the current basis in shifted minimization space.
	mRows, nStruct, nTot int
	a                    [][]float64
	bval                 []float64
	basis                []int // row → column basic in it
	inRow                []int // column → row it is basic in, −1 if nonbasic
	d                    []float64
	z                    float64

	// Per-column bounds and nonbasic rest position. Fixings narrow
	// lb/ub; baseLB/baseUB remember the unfixed bounds. A column with
	// lb == ub can never enter the basis. atUpper is meaningful only
	// for nonbasic columns.
	lb, ub         []float64
	baseLB, baseUB []float64
	atUpper        []bool

	colOf    []int     // model var → structural column
	shift    []float64 // per model var
	constObj float64   // objective constant from shifting (min sense)
	sgn      float64   // +1 minimize, −1 maximize

	// applied[j] ∈ {−1,0,1}: the fixing currently reflected in the
	// tableau (−1 = free).
	applied []int8
	touched []VarID // vars with applied[j] >= 0, for cheap iteration

	nb    []int // slot → column id
	nbPos []int // column id → slot, −1 when basic

	broken bool       // rebuild before next use
	solves int        // warm solves since the last rebuild
	pivots int        // dual pivots on the current solve
	cands  []dualCand // scratch for the long-step ratio test
	colq   []float64  // scratch: entering column saved across a pivot
}

// dualCand is one eligible entering candidate of the dual ratio test.
type dualCand struct {
	slot, col    int
	ratio, alpha float64
}

// newChainLP builds the bounded-variable tableau and dual-solves it to
// the root optimum. Returns nil for models the chain form cannot
// represent (non-binary integer variables, unbounded-below variables,
// negative-cost columns with no finite upper bound) or when the root is
// not cleanly Optimal — callers just stay on the cold path.
func newChainLP(m *Model, lim limits, stats *SearchStats) *chainLP {
	for _, v := range m.vars {
		if v.integer && (v.lo != 0 || v.hi != 1) {
			return nil
		}
		if math.IsInf(v.lo, -1) {
			return nil
		}
	}
	c := &chainLP{
		m:       m,
		lim:     lim,
		applied: make([]int8, len(m.vars)),
		shift:   make([]float64, len(m.vars)),
		colOf:   make([]int, len(m.vars)),
		sgn:     1,
	}
	if m.sense == Maximize {
		c.sgn = -1
	}
	for j := range c.applied {
		c.applied[j] = -1
	}
	if !c.rebuild(stats) {
		return nil
	}
	return c
}

// clone deep-copies the chain so another worker can start from the
// same root-solved basis without re-running the root solve. The model
// is shared (read-only); every mutable array is copied, so a clone that
// later rebuilds or pivots never races its siblings.
func (c *chainLP) clone() *chainLP {
	d := *c
	d.a = make([][]float64, len(c.a))
	for i := range c.a {
		d.a[i] = append([]float64(nil), c.a[i]...)
	}
	d.bval = append([]float64(nil), c.bval...)
	d.basis = append([]int(nil), c.basis...)
	d.inRow = append([]int(nil), c.inRow...)
	d.d = append([]float64(nil), c.d...)
	d.lb = append([]float64(nil), c.lb...)
	d.ub = append([]float64(nil), c.ub...)
	d.baseLB = append([]float64(nil), c.baseLB...)
	d.baseUB = append([]float64(nil), c.baseUB...)
	d.atUpper = append([]bool(nil), c.atUpper...)
	d.shift = append([]float64(nil), c.shift...)
	d.colOf = append([]int(nil), c.colOf...)
	d.applied = append([]int8(nil), c.applied...)
	d.touched = append([]VarID(nil), c.touched...)
	d.nb = append([]int(nil), c.nb...)
	d.nbPos = append([]int(nil), c.nbPos...)
	d.colq = make([]float64, c.mRows)
	d.cands = nil
	return &d
}

// rebuild assembles the tableau from the model (no fixings) and
// dual-solves it to the root optimum. Reports false when the model
// cannot be represented or the root is not cleanly Optimal.
func (c *chainLP) rebuild(stats *SearchStats) bool {
	m := c.m
	c.nStruct = len(m.vars)
	c.mRows = len(m.cons)
	c.nTot = c.nStruct + c.mRows

	if cap(c.nbPos) < c.nTot {
		c.a = make([][]float64, c.mRows)
		for i := range c.a {
			c.a[i] = make([]float64, c.nStruct)
		}
		c.bval = make([]float64, c.mRows)
		c.basis = make([]int, c.mRows)
		c.inRow = make([]int, c.nTot)
		c.d = make([]float64, c.nStruct)
		c.lb = make([]float64, c.nTot)
		c.ub = make([]float64, c.nTot)
		c.baseLB = make([]float64, c.nTot)
		c.baseUB = make([]float64, c.nTot)
		c.atUpper = make([]bool, c.nTot)
		c.nb = make([]int, c.nStruct)
		c.nbPos = make([]int, c.nTot)
		c.colq = make([]float64, c.mRows)
	}

	// Structural columns: shift each variable to its lower bound so the
	// working range is [0, hi−lo]. Reduced costs start as the (sign
	// adjusted) model costs.
	c.constObj = 0
	for j, v := range m.vars {
		c.shift[j] = v.lo
		c.colOf[j] = j
		c.constObj += c.sgn * v.obj * v.lo
		c.d[j] = c.sgn * v.obj
		c.lb[j], c.ub[j] = 0, v.hi-v.lo
		c.inRow[j] = -1
	}
	// Constraint rows, converted to a·x + s = rhs with s ∈ [0,∞) for LE
	// (GE rows are negated), s ∈ [0,0] for EQ. Rows are equilibrated on
	// the structural part only, which leaves the slack identity intact.
	// At assembly every structural column sits in the slot of its own
	// index (all slacks are basic), so slot and column id coincide here.
	for i, con := range m.cons {
		row := c.a[i]
		for k := range row {
			row[k] = 0
		}
		rhs := con.rhs
		for _, t := range con.terms {
			rhs -= t.Coef * c.shift[t.Var]
			row[t.Var] += t.Coef
		}
		if con.rel == GE {
			for k := 0; k < c.nStruct; k++ {
				row[k] = -row[k]
			}
			rhs = -rhs
		}
		mx := math.Abs(rhs)
		for k := 0; k < c.nStruct; k++ {
			if a := math.Abs(row[k]); a > mx {
				mx = a
			}
		}
		if mx > 1 {
			inv := 1 / mx
			for k := 0; k < c.nStruct; k++ {
				row[k] *= inv
			}
			rhs *= inv
		}
		sc := c.nStruct + i
		c.basis[i] = sc
		c.inRow[sc] = i
		c.lb[sc] = 0
		if con.rel == EQ {
			c.ub[sc] = 0
		} else {
			c.ub[sc] = math.Inf(1)
		}
		c.bval[i] = rhs
	}
	copy(c.baseLB, c.lb)
	copy(c.baseUB, c.ub)

	// Make the all-slack basis dual feasible: negative-cost columns rest
	// at their upper bound. Fold those upper bounds into the basic
	// values and the objective.
	c.z = 0
	for j := 0; j < c.nStruct; j++ {
		c.atUpper[j] = false
		if c.d[j] < 0 {
			if math.IsInf(c.ub[j], 1) {
				return false // LP may be unbounded; cold path decides
			}
			c.atUpper[j] = true
			u := c.ub[j]
			if u != 0 {
				for i := 0; i < c.mRows; i++ {
					c.bval[i] -= u * c.a[i][j]
				}
				c.z += u * c.d[j]
			}
		}
	}
	for i := 0; i < c.mRows; i++ {
		c.atUpper[c.nStruct+i] = false
	}
	// All-slack basis: every structural column is nonbasic.
	c.nb = c.nb[:c.nStruct]
	for j := 0; j < c.nStruct; j++ {
		c.nb[j] = j
		c.nbPos[j] = j
	}
	for i := 0; i < c.mRows; i++ {
		c.nbPos[c.nStruct+i] = -1
	}

	// Re-apply the fixings already reflected in `applied` so a rebuild
	// is transparent to moveTo: bounds narrow and nonbasic columns snap
	// to their fixed value.
	for _, j := range c.touched {
		if v := c.applied[j]; v >= 0 {
			c.fixBounds(j, float64(v))
		}
	}

	c.pivots = 0
	st, _, err := c.dualIterate(math.Inf(1))
	if stats != nil {
		stats.ColdLPs++
		stats.DualPivots += int64(c.pivots)
	}
	if err != nil || st != Optimal {
		return false
	}
	c.resyncObjective()
	c.solves = 0
	c.broken = false
	return true
}

// colVal is the current value of column j.
func (c *chainLP) colVal(j int) float64 {
	if r := c.inRow[j]; r >= 0 {
		return c.bval[r]
	}
	if c.atUpper[j] {
		return c.ub[j]
	}
	return c.lb[j]
}

// setNonbasicVal moves nonbasic column j to value v (one of its
// bounds), updating basic values and the objective in O(m).
func (c *chainLP) setNonbasicVal(j int, v float64, up bool) {
	old := c.lb[j]
	if c.atUpper[j] {
		old = c.ub[j]
	}
	c.atUpper[j] = up
	delta := v - old
	if delta == 0 {
		return
	}
	slot := c.nbPos[j]
	for i := 0; i < c.mRows; i++ {
		c.bval[i] -= delta * c.a[i][slot]
	}
	c.z += delta * c.d[slot]
}

// fixBounds narrows var j's working bounds to pin it at val and, when
// nonbasic, snaps it there. Basic columns are left to the dual pivots.
func (c *chainLP) fixBounds(j VarID, val float64) {
	col := c.colOf[j]
	if val >= 0.5 {
		up := c.baseUB[col]
		if c.inRow[col] < 0 {
			c.setNonbasicVal(col, up, true)
		}
		c.lb[col], c.ub[col] = up, up
	} else {
		if c.inRow[col] < 0 {
			c.setNonbasicVal(col, 0, false)
		}
		c.lb[col], c.ub[col] = 0, 0
	}
}

// applyFix records and applies the fixing of var j to val; undoFix
// reverts it. Both are O(m) worst case.
func (c *chainLP) applyFix(j VarID, val float64) {
	c.fixBounds(j, val)
	if val >= 0.5 {
		c.applied[j] = 1
	} else {
		c.applied[j] = 0
	}
	c.touched = append(c.touched, j)
}

func (c *chainLP) undoFix(j VarID) {
	col := c.colOf[j]
	was := c.applied[j]
	c.lb[col], c.ub[col] = c.baseLB[col], c.baseUB[col]
	c.applied[j] = -1
	if c.inRow[col] >= 0 {
		return // basic: value already inside the wider bounds, or it
		// is bound-violated and the next dual pivots handle it
	}
	// While fixed, lb == ub made the atUpper flag meaningless (a fixed
	// column that left the basis recorded only which side it exited
	// on). Re-anchor it to the bound that matches the fixed VALUE, so
	// colVal keeps reading the value actually folded into bval.
	c.atUpper[col] = was == 1
	// Nonbasic at 0 or 1 — both legal again. Flip to the opposite bound
	// if the reduced-cost sign demands it for dual feasibility.
	slot := c.nbPos[col]
	if c.atUpper[col] {
		if c.d[slot] > 0 {
			c.setNonbasicVal(col, c.lb[col], false)
		}
	} else if c.d[slot] < 0 {
		c.setNonbasicVal(col, c.ub[col], true)
	}
}

// moveTo edits the tableau from the currently applied fixing set to the
// one in fx (already loaded for the target node).
func (c *chainLP) moveTo(fx *fixSet) {
	// Undo fixings not present (or different) in the target.
	keep := c.touched[:0]
	for _, j := range c.touched {
		if c.applied[j] < 0 {
			continue // already undone via a previous pass
		}
		want, ok := fx.get(j)
		if ok && int8(want) == c.applied[j] {
			keep = append(keep, j)
			continue
		}
		c.undoFix(j)
	}
	c.touched = keep
	// Apply target fixings not yet present.
	for _, j := range fx.touched {
		if c.applied[j] < 0 {
			c.applyFix(j, fx.val[j])
		}
	}
}

// dualIterate runs bounded-variable dual-simplex pivots until primal
// feasibility is restored (Optimal), primal infeasibility is certified
// (Infeasible), the running objective crosses cutoff (earlyOut true:
// the node is prunable without finishing the proof — weak duality makes
// the objective a valid lower bound at every dual-feasible basis), or
// the warm path must give up (errChainNumerics / a budget error).
// cutoff is in internal minimization objective units; pass +Inf to
// disable.
func (c *chainLP) dualIterate(cutoff float64) (st Status, earlyOut bool, err error) {
	for iter := 0; iter < dualPivotCap; iter++ {
		if iter&0xff == 0xff {
			if err := budget.Check(c.lim.ctx); err != nil {
				return Optimal, false, err
			}
		}
		if c.z >= cutoff {
			return Optimal, true, nil
		}
		// Leaving row: the basic variable with the largest bound
		// violation. The tolerance matches the cold path's phase-1
		// feasibility standard (feasEps); chasing smaller residuals buys
		// degenerate pivot storms, not accuracy.
		leave := -1
		worst := feasEps
		below := false
		for i := 0; i < c.mRows; i++ {
			bj := c.basis[i]
			if v := c.lb[bj] - c.bval[i]; v > worst {
				worst, leave, below = v, i, true
			}
			if v := c.bval[i] - c.ub[bj]; v > worst {
				worst, leave, below = v, i, false
			}
		}
		if leave < 0 {
			return Optimal, false, nil
		}
		// Entering column: the long-step bounded-variable dual ratio
		// test. With dir = +1 when the basic variable must rise and −1
		// when it must fall, a nonbasic column j is eligible if moving it
		// off its bound pushes the leaving variable the right way:
		// at-lower columns need dir·a < 0, at-upper columns dir·a > 0.
		// Candidates are walked in ascending |d|/|a| order; while the
		// remaining violation exceeds what a candidate can absorb over
		// its whole [lb,ub] range, the candidate is BOUND-FLIPPED — an
		// O(m) value update with no basis change — and the walk
		// continues. The candidate under which the violation runs out
		// enters the basis with the residual step. The closing pivot
		// re-signs every flipped column's reduced cost (their ratios sit
		// below the pivot ratio), so dual feasibility survives. Without
		// the flips, 0/1 columns enter the basis out of range and seed
		// violation cascades that cost full pivots to unwind.
		dir := 1.0
		if !below {
			dir = -1
		}
		row := c.a[leave]
		cands := c.cands[:0]
		for slot := 0; slot < c.nStruct; slot++ {
			col := c.nb[slot]
			if c.lb[col] == c.ub[col] {
				continue
			}
			alpha := dir * row[slot]
			dj := c.d[slot]
			if c.atUpper[col] {
				if alpha <= pivotEps {
					continue
				}
				if dj > 0 {
					if dj > 1e-6 {
						return Optimal, false, errChainNumerics // dual feasibility lost
					}
					dj = 0
				}
				dj = -dj
			} else {
				if alpha >= -pivotEps {
					continue
				}
				if dj < 0 {
					if dj < -1e-6 {
						return Optimal, false, errChainNumerics
					}
					dj = 0
				}
				alpha = -alpha
			}
			cands = append(cands, dualCand{slot: slot, col: col, ratio: dj / alpha, alpha: alpha})
		}
		c.cands = cands
		if len(cands) == 0 {
			// No column can relax the violated row: primal infeasible.
			return Infeasible, false, nil
		}
		sort.Slice(cands, func(x, y int) bool {
			if cands[x].ratio != cands[y].ratio {
				return cands[x].ratio < cands[y].ratio
			}
			return cands[x].alpha > cands[y].alpha // stability on ties
		})
		target := c.ub[c.basis[leave]]
		if below {
			target = c.lb[c.basis[leave]]
		}
		rem := math.Abs(c.bval[leave] - target)
		enter := -1
		for k, cd := range cands {
			capj := math.Inf(1)
			if rng := c.ub[cd.col] - c.lb[cd.col]; !math.IsInf(rng, 1) {
				capj = rng * cd.alpha
			}
			if rem <= capj+feasEps || k == len(cands)-1 {
				enter = cd.slot
				break
			}
			if c.atUpper[cd.col] {
				c.setNonbasicVal(cd.col, c.lb[cd.col], false)
			} else {
				c.setNonbasicVal(cd.col, c.ub[cd.col], true)
			}
			rem -= capj
		}
		c.pivotBounded(leave, enter, below)
	}
	return Optimal, false, errChainNumerics
}

// childPenalties returns Driebeek–Tomlin bound lifts for branching on
// model variable j at the current basis: valid objective increases
// (internal minimization units) for fixing x_j to 0 (down) and to 1
// (up). Each is one dual ratio test over x_j's basic row — the
// cheapest reduced-cost rate at which that row's bound violation could
// be repaired, times the distance x_j must move — i.e. a lower bound
// on the first dual pivot the child solve would have to take. +Inf
// certifies the child primal infeasible (no column can repair the
// move; dualIterate would return Infeasible at the child). Only
// meaningful immediately after a solveAt that returned a full Optimal;
// a nonbasic x_j yields zero lifts.
func (c *chainLP) childPenalties(j int) (down, up float64) {
	col := c.colOf[j]
	r := c.inRow[col]
	if r < 0 || c.broken {
		return 0, 0
	}
	v := c.bval[r]
	down = (v - c.lb[col]) * c.repairRate(r, -1)
	up = (c.ub[col] - v) * c.repairRate(r, +1)
	return down, up
}

// repairRate is the dual ratio test's minimum |d|/|alpha| over columns
// eligible to move row r's basic variable in direction dir (+1 rise,
// −1 fall): the cheapest objective rate per unit of basic-variable
// movement, mirroring dualIterate's eligibility rules exactly. Inf
// when no column is eligible. Wrong-signed reduced costs are clamped
// to zero — the rate is advisory, so numerical drift degrades the
// penalty to nothing instead of erroring.
func (c *chainLP) repairRate(r int, dir float64) float64 {
	row := c.a[r]
	best := math.Inf(1)
	for slot := 0; slot < c.nStruct; slot++ {
		col := c.nb[slot]
		if c.lb[col] == c.ub[col] {
			continue
		}
		alpha := dir * row[slot]
		dj := c.d[slot]
		if c.atUpper[col] {
			if alpha <= pivotEps {
				continue
			}
			if dj > 0 {
				dj = 0
			}
			dj = -dj
		} else {
			if alpha >= -pivotEps {
				continue
			}
			if dj < 0 {
				dj = 0
			}
			alpha = -alpha
		}
		if ratio := dj / alpha; ratio < best {
			best = ratio
		}
	}
	return best
}

// pivotBounded performs the basis exchange: the entering column moves
// off its bound by exactly the step that lands the leaving variable on
// its violated bound, then the tableau is row-reduced on the entering
// column.
func (c *chainLP) pivotBounded(r, slotQ int, below bool) {
	q := c.nb[slotQ]
	leaving := c.basis[r]
	target := c.ub[leaving]
	if below {
		target = c.lb[leaving]
	}
	piv := c.a[r][slotQ]
	t := (c.bval[r] - target) / piv
	vq := c.lb[q]
	if c.atUpper[q] {
		vq = c.ub[q]
	}
	// Save the entering column — the row operations destroy it, and the
	// leaving column is reconstructed from it — while folding the
	// entering step into the basic values.
	colq := c.colq
	for i := 0; i < c.mRows; i++ {
		colq[i] = c.a[i][slotQ]
		c.bval[i] -= t * colq[i]
	}
	dq := c.d[slotQ]
	c.z += t * dq
	c.atUpper[leaving] = !below
	c.inRow[leaving] = -1

	// The leaving column takes over the entering column's slot and is
	// materialized as the identity column it implicitly was; the row
	// operations below then shape it exactly like every other nonbasic
	// column.
	c.nb[slotQ] = leaving
	c.nbPos[leaving] = slotQ
	c.nbPos[q] = -1
	for i := 0; i < c.mRows; i++ {
		c.a[i][slotQ] = 0
	}
	c.a[r][slotQ] = 1
	c.d[slotQ] = 0

	// Row-reduce a and d on the entering column. Slots hold exactly the
	// nonbasic columns, so these are straight-line dense sweeps.
	inv := 1 / piv
	row := c.a[r]
	for k := 0; k < c.nStruct; k++ {
		row[k] *= inv
	}
	for i := 0; i < c.mRows; i++ {
		if i == r {
			continue
		}
		f := colq[i]
		if f == 0 {
			continue
		}
		ai := c.a[i]
		for k := 0; k < c.nStruct; k++ {
			ai[k] -= f * row[k]
		}
	}
	if dq != 0 {
		d := c.d
		for k := 0; k < c.nStruct; k++ {
			d[k] -= dq * row[k]
		}
	}
	c.basis[r] = q
	c.inRow[q] = r
	c.bval[r] = vq + t
	c.pivots++
}

// resyncObjective recomputes z from the current point, discarding the
// drift the incremental updates accumulate.
func (c *chainLP) resyncObjective() {
	z := 0.0
	for j, v := range c.m.vars {
		z += c.sgn * v.obj * c.colVal(c.colOf[j])
	}
	c.z = z
}

// solveAt warm-solves the relaxation at the node whose fixings are
// loaded in fx. cutoffMin is the incumbent objective in minimization
// sense (+Inf when none): once the dual objective proves the node
// cannot beat it, the solve stops early and returns that bound with a
// nil point. On errChainNumerics the chain marks itself broken (the
// next call rebuilds from scratch) and the caller should cold-solve
// this node instead. Budget errors pass through untouched.
func (c *chainLP) solveAt(fx *fixSet, cutoffMin float64, stats *SearchStats) lpResult {
	if c.broken || c.solves >= chainRefresh {
		c.broken = true // if rebuild fails mid-way, stay broken
		if !c.rebuild(stats) {
			return lpResult{err: errChainNumerics}
		}
	}
	c.pivots = 0
	c.moveTo(fx)
	st, early, err := c.dualIterate(cutoffMin - c.constObj)
	c.solves++
	if stats != nil {
		stats.DualPivots += int64(c.pivots)
	}
	if err != nil {
		if errors.Is(err, errChainNumerics) {
			c.broken = true
		}
		return lpResult{err: err}
	}
	if stats != nil {
		stats.WarmLPs++
	}
	if early {
		// Prunable: the dual objective is already a proven lower bound
		// at or above the incumbent. No primal point exists to extract.
		obj := c.z + c.constObj
		if c.m.sense == Maximize {
			obj = -obj
		}
		return lpResult{status: Optimal, obj: obj}
	}
	if st == Infeasible {
		return lpResult{status: Infeasible}
	}
	c.resyncObjective()
	x := make([]float64, len(c.m.vars))
	for j := range c.m.vars {
		x[j] = c.shift[j] + c.colVal(c.colOf[j])
	}
	obj := c.z + c.constObj
	if c.m.sense == Maximize {
		obj = -obj
	}
	return lpResult{status: Optimal, obj: obj, x: x}
}
