package ilp

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"partita/internal/budget"
)

// adversarialModel builds an interleaved fixed-charge knapsack that
// defeats bound-based pruning: 2n binaries, Maximize Σ(3·x_i − z_i)
// subject to 2·Σx_i ≤ n−1 (n even, so the capacity is odd) and
// x_i ≤ z_i. Equal weights with an odd capacity keep one x at 1/2 in
// the relaxation of *every* subproblem with more free items than the
// remaining capacity admits — fixing a variable either way leaves the
// child fractional — so all node bounds tie at (n−1) against the best
// integral value of 2·⌊(n−1)/2⌋ and nothing prunes: the tree is the
// full binomial explosion. Incumbents still appear within a dive's
// depth (once the capacity is nearly consumed the leftover fraction
// rounds down feasibly), which is exactly the anytime regime: a good
// answer early, an exponential proof never.
func adversarialModel(n int) *Model {
	m := NewModel(Maximize)
	capTerms := make([]Term, 0, n)
	for i := 0; i < n; i++ {
		x := m.AddBinary(fmt.Sprintf("x%d", i), 3)
		z := m.AddBinary(fmt.Sprintf("z%d", i), -1)
		m.AddConstraint(fmt.Sprintf("link%d", i), []Term{{Var: x, Coef: 1}, {Var: z, Coef: -1}}, LE, 0)
		capTerms = append(capTerms, Term{Var: x, Coef: 2})
	}
	m.AddConstraint("cap", capTerms, LE, float64(n-1))
	return m
}

// adversarialOptimum is the true optimum of adversarialModel(n):
// ⌊(n−1)/2⌋ chosen pairs at net objective 2 each.
func adversarialOptimum(n int) float64 { return float64(2 * ((n - 1) / 2)) }

// A 100ms deadline on the adversarial instance must produce an anytime
// answer quickly: back within 200ms, Status Feasible, an incumbent that
// passes full verification, and a positive optimality gap.
func TestSolveDeadlineAnytime(t *testing.T) {
	m := adversarialModel(20)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()

	start := time.Now()
	s, err := m.SolveCtx(ctx, budget.Budget{})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("deadline solve failed outright: %v", err)
	}
	if elapsed > 200*time.Millisecond {
		t.Errorf("solve took %v, want ≤ 200ms past a 100ms deadline", elapsed)
	}
	if s.Status != Feasible {
		t.Fatalf("status = %v, want Feasible (instance is designed to exceed the deadline)", s.Status)
	}
	if !errors.Is(s.Stopped, budget.ErrDeadline) {
		t.Errorf("Stopped = %v, want ErrDeadline", s.Stopped)
	}
	if err := m.Check(s, 1e-6); err != nil {
		t.Errorf("incumbent fails verification: %v", err)
	}
	if g := s.Gap(); g <= 0 {
		t.Errorf("gap = %g, want > 0 (optimum cannot be proven in 100ms)", g)
	}
	// Maximize sense: the proven bound must dominate the incumbent.
	if s.Bound < s.Objective {
		t.Errorf("bound %g below incumbent %g", s.Bound, s.Objective)
	}
}

// A node budget behaves like a deadline: stop near the cap, keep the
// incumbent, report ErrNodeLimit.
func TestSolveNodeLimitAnytime(t *testing.T) {
	m := adversarialModel(20)
	s, err := m.SolveCtx(context.Background(), budget.Budget{MaxNodes: 60})
	if err != nil {
		t.Fatalf("node-limited solve failed outright: %v", err)
	}
	if s.Status != Feasible {
		t.Fatalf("status = %v, want Feasible", s.Status)
	}
	if s.Nodes > 60 {
		t.Errorf("explored %d nodes past a 60-node budget", s.Nodes)
	}
	if !errors.Is(s.Stopped, budget.ErrNodeLimit) {
		t.Errorf("Stopped = %v, want ErrNodeLimit", s.Stopped)
	}
	if err := m.Check(s, 1e-6); err != nil {
		t.Errorf("incumbent fails verification: %v", err)
	}
}

// Cancellation aborts mid-solve promptly (within 50ms of the cancel)
// and surfaces context.Canceled rather than a silent degraded answer.
func TestSolveCancellation(t *testing.T) {
	m := adversarialModel(20)
	ctx, cancel := context.WithCancel(context.Background())

	type outcome struct {
		s   *Solution
		err error
		at  time.Time
	}
	done := make(chan outcome, 1)
	go func() {
		s, err := m.SolveCtx(ctx, budget.Budget{})
		done <- outcome{s, err, time.Now()}
	}()
	time.Sleep(10 * time.Millisecond)
	cancelled := time.Now()
	cancel()

	select {
	case o := <-done:
		if lag := o.at.Sub(cancelled); lag > 50*time.Millisecond {
			t.Errorf("solver returned %v after cancel, want ≤ 50ms", lag)
		}
		// Anytime semantics still apply: an incumbent comes back as
		// Feasible with Stopped recording the cancellation; either way
		// the cancellation itself must be visible.
		if o.err != nil {
			if !errors.Is(o.err, context.Canceled) {
				t.Errorf("error %v does not wrap context.Canceled", o.err)
			}
		} else if !errors.Is(o.s.Stopped, context.Canceled) {
			t.Errorf("Stopped = %v, want context.Canceled", o.s.Stopped)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("solver did not return within 2s of cancellation")
	}
}

// Sanity: with an ample budget the adversarial instance's true optimum
// is n−1 chosen pairs (objective 2(n−1)) — proving the anytime answers
// above are genuinely suboptimal-or-equal, not artifacts.
func TestAdversarialOptimumSmall(t *testing.T) {
	n := 6
	m := adversarialModel(n)
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if want := adversarialOptimum(n); s.Objective != want {
		t.Errorf("objective = %g, want %g", s.Objective, want)
	}
}
