package ilp

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"

	"partita/internal/budget"
)

// Parallel branch and bound: work-stealing deques + dual-simplex warm
// starts.
//
// branchAndBoundParallel proves the same Status and Objective as the
// serial branchAndBound, but distributes the tree over N workers that
// each own a local node deque:
//
//   - a worker expands depth-first from its own deque (LIFO pops keep
//     the dive hot in cache and make consecutive nodes differ by one
//     fixing — exactly what the dual-simplex warm start wants);
//   - an empty worker steals the best-bound node from the first
//     non-empty victim, scanning round-robin from its own id, so idle
//     time goes to the most promising open subtree;
//   - each worker carries a chainLP (see dual.go): the relaxation at a
//     node is re-solved warm from the worker's previous node by a
//     right-hand-side delta plus a few dual pivots, falling back to the
//     cold two-phase primal on numerical trouble;
//   - the shared structure is touched only for incumbent installs,
//     progress callbacks, termination, and parking — there is no global
//     node heap and no lock on the node hot path beyond the owner's
//     uncontended deque mutex.
//
// Bookkeeping:
//
//   - work counts nodes that are alive anywhere (in a deque or being
//     expanded). Children are credited to work BEFORE they are pushed
//     (and so before any thief can see them), and each retired node
//     subtracts exactly one, so work is at all times an upper bound on
//     live nodes and can only hit zero when the tree is truly
//     exhausted. The worker that drives it to zero declares the search
//     over;
//   - openCount counts deque-resident nodes only and exists so a
//     parking worker can sleep exactly until something is stealable.
//     Parkers register (parkedN) under mu before re-checking openCount,
//     and pushers raise openCount before reading parkedN, so a wakeup
//     can never be lost between the check and the wait;
//   - the incumbent objective (minimization sense) is published as
//     Float64bits in an atomic so the pruning fast path never locks;
//     installs serialize behind incMu, keeping the onIncumbent stream
//     monotone;
//   - the global proven bound is min over every deque node and every
//     in-flight bound (inflight, atomic per worker); it is computed
//     only for progress callbacks and anytime stops, never on the hot
//     path;
//   - node counts are a shared atomic checked against MaxNodes before
//     each expansion (parallel runs may overshoot the limit by up to
//     workers−1 nodes, the in-flight expansions that passed the check
//     together).
//
// Node order, node counts, and the incumbent trajectory are
// run-dependent; callers that need reproducible traces use
// Parallelism <= 1.
type parState struct {
	m        *Model
	bud      budget.Budget
	lim      limits
	maximize bool

	deques   []workerDeque
	inflight []atomic.Uint64 // Float64bits of each worker's in-flight bound; +Inf idle
	wstats   []SearchStats   // per-worker counters, folded after the join

	work      atomic.Int64 // nodes alive: deque-resident + in-flight
	openCount atomic.Int64 // deque-resident nodes
	parkedN   atomic.Int32 // workers asleep on cond (updated under mu)
	nodes     atomic.Int64
	doneA     atomic.Bool
	rampDone  atomic.Bool // first dive bottomed out; stealing enabled

	proto *chainLP

	mu      sync.Mutex
	cond    *sync.Cond
	done    bool
	stopErr error   // first budget-exhaustion reason observed
	stopLow float64 // min bound over nodes abandoned at stop time
	unbound bool

	incBits atomic.Uint64 // Float64bits of the incumbent objective (min sense)
	incMu   sync.Mutex    // guards incX and serializes onIncumbent
	incX    []float64

	boundMu   sync.Mutex // guards lastBound and serializes onBound
	lastBound float64

	abort   atomic.Bool // a worker panicked; drain without touching mu
	panicMu sync.Mutex
	panicV  any
}

// workerDeque is one worker's open-node pool. The owner pops its
// best-bound node; thieves remove the best-bound node from anywhere.
// min mirrors the best bound currently in nodes (Float64bits, +Inf
// when empty) so other workers can ask "does this deque hold anything
// better than what I'm about to expand?" with one atomic load, no
// lock. The pad keeps neighbouring deques' mutexes off one cache line.
type workerDeque struct {
	mu    sync.Mutex
	nodes []*bbNode
	min   atomic.Uint64
	_     [40]byte
}

// refreshMin recomputes min from nodes; callers hold dq.mu.
func (dq *workerDeque) refreshMin() {
	best := math.Inf(1)
	for _, nd := range dq.nodes {
		if nd.bound < best {
			best = nd.bound
		}
	}
	dq.min.Store(math.Float64bits(best))
}

func (s *parState) incObj() float64 { return math.Float64frombits(s.incBits.Load()) }

func (m *Model) branchAndBoundParallel(ctx context.Context, bud budget.Budget, workers int) (*Solution, error) {
	s := &parState{
		m:         m,
		bud:       bud,
		lim:       limits{ctx: ctx, maxIter: bud.MaxSimplexIter},
		maximize:  m.sense == Maximize,
		deques:    make([]workerDeque, workers),
		inflight:  make([]atomic.Uint64, workers),
		wstats:    make([]SearchStats, workers),
		stopLow:   math.Inf(1),
		lastBound: math.Inf(-1),
	}
	s.cond = sync.NewCond(&s.mu)
	idle := math.Float64bits(math.Inf(1))
	for i := range s.inflight {
		s.inflight[i].Store(idle)
		s.deques[i].min.Store(idle)
	}
	s.incBits.Store(math.Float64bits(math.Inf(1)))
	// Solve the root relaxation once and hand every worker a clone of
	// the warm tableau; without this each worker pays its own root
	// solve on the same model.
	s.proto = newChainLP(m, s.lim, &s.wstats[0])
	if x, objMin, ok := m.warmIncumbent(); ok {
		s.incBits.Store(math.Float64bits(objMin))
		s.incX = x
	}
	s.deques[0].nodes = append(s.deques[0].nodes, &bbNode{v: -1, bound: math.Inf(-1)})
	s.work.Store(1)
	s.openCount.Store(1)

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					// Record the panic and wake everyone through paths that
					// do not need mu (whose state is unknown mid-panic); the
					// caller re-raises on its own goroutine so the API
					// boundary's panic guard still applies.
					s.panicMu.Lock()
					if s.panicV == nil {
						s.panicV = r
					}
					s.panicMu.Unlock()
					s.abort.Store(true)
					s.cond.Broadcast()
				}
			}()
			s.run(id)
		}(i)
	}
	wg.Wait()
	if s.panicV != nil {
		panic(s.panicV)
	}
	return s.result()
}

// pop takes the best-bound node from the owner's deque, ties broken
// LIFO (most recently pushed wins, keeping dives coherent when the
// children tie with their siblings). The serial solver is best-first,
// which expands the minimal tree — no node with a bound at or above
// the final optimum, bar ties. A pure LIFO pop here was measured to
// expand ~1.3x the serial node count at every parallelism level
// (depth-first commits to subtrees best-first would defer and prune);
// per-deque best-first brings the parallel tree back to near-serial
// size, and the warm chain re-solves a jump between distant nodes in a
// handful of extra dual pivots, so locality matters far less than tree
// size.
func (s *parState) pop(id int) *bbNode {
	dq := &s.deques[id]
	dq.mu.Lock()
	n := len(dq.nodes)
	if n == 0 {
		dq.mu.Unlock()
		return nil
	}
	bi := n - 1
	for i := n - 2; i >= 0; i-- {
		if dq.nodes[i].bound < dq.nodes[bi].bound {
			bi = i
		}
	}
	nd := dq.nodes[bi]
	copy(dq.nodes[bi:], dq.nodes[bi+1:])
	dq.nodes[n-1] = nil
	dq.nodes = dq.nodes[:n-1]
	dq.refreshMin()
	// Publish the node as in-flight before it leaves deque visibility
	// (the mutex is still held): globalLow scans deques under their
	// locks and inflight via atomics, so a node must appear in one or
	// the other at every instant or a concurrent emitBound/tryIncumbent
	// could report a "proven" bound tighter than what is proven.
	s.inflight[id].Store(math.Float64bits(nd.bound))
	dq.mu.Unlock()
	s.openCount.Add(-1)
	return nd
}

// push appends children to the owner's deque and wakes one parked
// worker if any. Pushed in the order [0-child, 1-child] so an
// equal-bound tie resolves to the val=1 branch first — on fixed-charge
// instances turning an indicator ON reaches integral leaves fastest.
func (s *parState) push(id int, nds ...*bbNode) {
	dq := &s.deques[id]
	dq.mu.Lock()
	dq.nodes = append(dq.nodes, nds...)
	best := dq.min.Load()
	for _, nd := range nds {
		if b := math.Float64bits(nd.bound); nd.bound < math.Float64frombits(best) {
			best = b
		}
	}
	dq.min.Store(best)
	dq.mu.Unlock()
	s.openCount.Add(int64(len(nds)))
	if s.parkedN.Load() > 0 {
		s.mu.Lock()
		s.cond.Signal()
		s.mu.Unlock()
	}
}

// steal removes the globally best-bound node across every victim
// deque. Two passes: a scan notes which victim currently holds the best
// bound (locking one deque at a time), then that victim is re-locked
// and its best node removed — by then another thief may have raced us
// to it, in which case whatever best remains there is still a good
// steal. Stealing the global best (not best-of-first-non-empty) keeps
// idle workers on the most promising subtrees, which measurably curbs
// the node inflation a bound-blind steal causes.
func (s *parState) steal(id int, st *SearchStats) *bbNode {
	// Ramp-up: no stealing until the first depth-first dive bottoms out.
	// The serial solver's first dive is what turns the warm seed into a
	// sharp incumbent; letting thieves tear it apart makes every worker
	// speculate against a stale cutoff, and the tree measurably inflates
	// versus serial. Parking the thieves for those first few nodes costs
	// at most one dive of wall-clock and keeps the node count near the
	// serial one.
	if !s.rampDone.Load() {
		return nil
	}
	w := len(s.deques)
	best, bestBound := -1, math.Inf(1)
	for k := 1; k < w; k++ {
		vi := (id + k) % w
		dq := &s.deques[vi]
		dq.mu.Lock()
		st.StealScans++
		for _, nd := range dq.nodes {
			if nd.bound < bestBound {
				bestBound = nd.bound
				best = vi
			}
		}
		dq.mu.Unlock()
	}
	if best < 0 {
		return nil
	}
	dq := &s.deques[best]
	dq.mu.Lock()
	n := len(dq.nodes)
	if n == 0 {
		dq.mu.Unlock()
		return nil
	}
	bi := 0
	for i := 1; i < n; i++ {
		if dq.nodes[i].bound < dq.nodes[bi].bound {
			bi = i
		}
	}
	nd := dq.nodes[bi]
	copy(dq.nodes[bi:], dq.nodes[bi+1:])
	dq.nodes[n-1] = nil
	dq.nodes = dq.nodes[:n-1]
	dq.refreshMin()
	// Keep the stolen node visible to globalLow before it leaves the
	// victim's deque (see the matching publish in pop). A thief called
	// from preferGlobal already holds a node, so fold the minimum of
	// both into its single slot; only worker id writes inflight[id], so
	// the load/store pair cannot race.
	if cur := math.Float64frombits(s.inflight[id].Load()); nd.bound < cur {
		s.inflight[id].Store(math.Float64bits(nd.bound))
	}
	dq.mu.Unlock()
	s.openCount.Add(-1)
	st.Steals++
	return nd
}

// preferGlobal trades the node a worker just popped for a strictly
// better one visible in another deque, approximating the serial
// solver's global best-first order without a shared heap: the check is
// w-1 atomic loads, and only a confirmed better bound pays for a
// steal. Without this, each worker runs best-first over its own slice
// of the tree, and the slices drift — a worker expands its local best
// while the global best sits idle in a neighbour, inflating the total
// tree a few percent past serial.
func (s *parState) preferGlobal(id int, node *bbNode, st *SearchStats) *bbNode {
	for i := range s.deques {
		if i == id || math.Float64frombits(s.deques[i].min.Load()) >= node.bound-1e-9 {
			continue
		}
		nd := s.steal(id, st)
		if nd == nil {
			return node
		}
		// The slot briefly covered both held nodes with their minimum;
		// push the loser back (deque-visible again) before re-publishing
		// the keeper's exact bound, so neither node is ever hidden.
		if nd.bound < node.bound {
			s.push(id, node)
			s.inflight[id].Store(math.Float64bits(nd.bound))
			return nd
		}
		s.push(id, nd) // raced with another thief: keep the original
		s.inflight[id].Store(math.Float64bits(node.bound))
		return node
	}
	return node
}

// park sleeps until something is stealable (which during ramp-up is
// nothing) or the search is over; reports whether the worker should
// exit.
func (s *parState) park(st *SearchStats) bool {
	s.mu.Lock()
	s.parkedN.Add(1)
	for !s.done && !s.abort.Load() && (s.openCount.Load() == 0 || !s.rampDone.Load()) {
		st.Parks++
		s.cond.Wait()
	}
	s.parkedN.Add(-1)
	exit := s.done
	s.mu.Unlock()
	return exit || s.abort.Load()
}

// endRamp opens the steal phase after the first dive has bottomed out
// (its leaf either installed an incumbent or proved a prune — either
// way the cutoff is as sharp as the serial solver's at the same point).
func (s *parState) endRamp() {
	if s.rampDone.CompareAndSwap(false, true) {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// finishNode retires one node; the worker that drives the live count to
// zero ends the search. Children are credited to work inside expand,
// before the push makes them stealable — crediting them here instead
// would open a termination race: a thief could steal and retire a child
// (work −1) before the parent's credit (+children) lands, driving work
// to zero and declaring the tree exhausted with live nodes still open.
func (s *parState) finishNode() {
	if s.work.Add(-1) == 0 {
		s.setDone()
	}
}

func (s *parState) setDone() {
	s.mu.Lock()
	s.done = true
	s.doneA.Store(true)
	s.cond.Broadcast()
	s.mu.Unlock()
}

// setStop records a budget-exhaustion reason (first wins) and the bound
// of the node abandoned with it, then ends the search.
func (s *parState) setStop(reason error, low float64) {
	s.mu.Lock()
	if s.stopErr == nil {
		s.stopErr = reason
	}
	if low < s.stopLow {
		s.stopLow = low
	}
	s.done = true
	s.doneA.Store(true)
	s.cond.Broadcast()
	s.mu.Unlock()
}

// foldAbandoned records the bound of a node a worker was holding when
// it observed the stop, so the anytime result's proven bound stays
// honest.
func (s *parState) foldAbandoned(low float64) {
	s.mu.Lock()
	if low < s.stopLow {
		s.stopLow = low
	}
	s.mu.Unlock()
}

// run is one worker's loop: pop locally, steal when dry, park when the
// whole search is dry, expand otherwise.
func (s *parState) run(id int) {
	fx := &fixSet{}
	ar := &arena{}
	st := &s.wstats[id]
	// Each worker owns a warm tableau chain, cloned from the shared
	// root-solved prototype; models the chain form cannot represent
	// leave it nil and every node goes cold.
	var chain *chainLP
	if s.proto != nil {
		chain = s.proto.clone()
	}
	chainFails := 0

	idle := math.Float64bits(math.Inf(1))
	for {
		if s.abort.Load() {
			return
		}
		// pop/steal/preferGlobal publish the held node's bound in
		// inflight[id] before removing it from deque visibility, so every
		// live node is observable by globalLow at every instant; each
		// retirement path below resets the slot to idle.
		node := s.pop(id)
		if node == nil {
			node = s.steal(id, st)
		} else if s.rampDone.Load() {
			node = s.preferGlobal(id, node, st)
		}
		if node == nil {
			if s.park(st) {
				return
			}
			continue
		}
		if s.doneA.Load() {
			// Stopped while we held a live node: its bound is part of the
			// unproven remainder.
			s.foldAbandoned(node.bound)
			s.inflight[id].Store(idle)
			return
		}
		if node.bound >= s.incObj()-1e-9 {
			s.inflight[id].Store(idle)
			s.finishNode() // pruned: cannot improve on the incumbent
			s.endRamp()
			continue
		}
		children, stop, unbounded := s.expand(id, node, fx, ar, &chain, &chainFails, st)
		s.inflight[id].Store(idle)
		if children == 0 {
			s.endRamp()
		}
		switch {
		case unbounded:
			s.mu.Lock()
			s.unbound = true
			s.done = true
			s.doneA.Store(true)
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		case stop != nil:
			s.setStop(stop, node.bound)
			return
		default:
			s.finishNode()
		}
	}
}

// globalLow is the best bound over every open and in-flight node — the
// proven bound on everything not yet explored. Off the hot path: only
// progress callbacks and incumbent installs call it.
func (s *parState) globalLow() float64 {
	lb := math.Inf(1)
	for i := range s.inflight {
		if b := math.Float64frombits(s.inflight[i].Load()); b < lb {
			lb = b
		}
	}
	for i := range s.deques {
		dq := &s.deques[i]
		dq.mu.Lock()
		for _, nd := range dq.nodes {
			if nd.bound < lb {
				lb = nd.bound
			}
		}
		dq.mu.Unlock()
	}
	return lb
}

// expand processes one node exactly as the serial loop does: budget
// check, relaxation (warm when possible), prune/branch/incumbent.
// Returns the number of children pushed.
func (s *parState) expand(id int, node *bbNode, fx *fixSet, ar *arena, chain **chainLP, chainFails *int, st *SearchStats) (children int, stop error, unbounded bool) {
	if err := budget.Check(s.lim.ctx); err != nil {
		return 0, err, false
	}
	if s.bud.MaxNodes > 0 && s.nodes.Load() >= int64(s.bud.MaxNodes) {
		return 0, budget.ErrNodeLimit, false
	}
	s.nodes.Add(1)
	fx.load(len(s.m.vars), node)

	cold := func() lpResult {
		r := s.m.solveRelaxation(fx, s.lim, ar)
		st.ColdLPs++
		st.PrimalPivots += int64(r.pivots)
		return r
	}
	var r lpResult
	warm := false
	if c := *chain; c != nil {
		r = c.solveAt(fx, s.incObj()-1e-9, st)
		if r.err != nil && errors.Is(r.err, errChainNumerics) {
			if *chainFails++; *chainFails >= 3 {
				*chain = nil // repeatedly unusable: stop paying rebuild attempts
			}
			r = cold()
		} else if r.err == nil {
			warm = true
			*chainFails = 0
		}
	} else {
		r = cold()
	}
	if r.err != nil {
		return 0, r.err, false
	}
	if s.m.onBound != nil {
		s.emitBound(math.Min(node.bound, s.globalLow()))
	}

	// Interpret the relaxation. A warm result that looks wrong — a bound
	// below the parent's (child relaxations can only tighten), an
	// "integral" vertex whose snapped point fails the constraints, or a
	// subtree-killing verdict from a stale tableau — is re-derived cold
	// before any incumbent install or subtree decision: the serial
	// solver can trust its verdicts unconditionally, the delta-updated
	// tableau cannot. In particular dualIterate declares Infeasible when
	// no entering column passes the pivot tolerance, which on a drifted
	// tableau can be numerically spurious — trusting it would silently
	// cut off a feasible subtree. A fresh tableau (bounded pivots since
	// its last refactorization, see chainTrustSolves) carries no more
	// drift than one cold solve and is trusted to the same degree; on
	// these models roughly a third of all nodes are infeasible leaves,
	// so confirming every one cold would forfeit the warm path's entire
	// advantage exactly where it matters most.
	for {
		switch r.status {
		case Infeasible:
			if warm && !(*chain).fresh() {
				warm = false
				r = cold()
				if r.err != nil {
					return 0, r.err, false
				}
				continue
			}
			return 0, nil, false
		case Unbounded:
			if warm {
				// The bounded-variable dual simplex cannot certify
				// unboundedness; a warm Unbounded is always re-derived.
				warm = false
				r = cold()
				if r.err != nil {
					return 0, r.err, false
				}
				continue
			}
			return 0, nil, true
		}
		bound := r.obj
		if s.maximize {
			bound = -bound
		}
		if warm && bound < node.bound-1e-6 {
			warm = false
			r = cold()
			if r.err != nil {
				return 0, r.err, false
			}
			continue
		}
		if bound >= s.incObj()-1e-9 {
			return 0, nil, false
		}
		branch := s.m.pickBranch(r.x, fx)
		if branch < 0 {
			x := s.m.roundExact(r.x)
			if warm {
				obj, ok := s.m.evalPoint(x)
				if !ok {
					warm = false
					r = cold()
					if r.err != nil {
						return 0, r.err, false
					}
					continue
				}
				// Install the snapped point's exact objective, not the
				// drift-prone warm LP value.
				if s.maximize {
					obj = -obj
				}
				s.tryIncumbent(x, obj, bound)
				return 0, nil, false
			}
			s.tryIncumbent(x, bound, bound)
			return 0, nil, false
		}
		if x, obj, ok := s.m.roundToFeasible(r.x); ok {
			if s.maximize {
				obj = -obj
			}
			s.tryIncumbent(x, obj, bound)
		}
		// Driebeek–Tomlin penalties: after a warm solve the dual tableau
		// is sitting at this node's optimal basis, and one ratio test per
		// direction lifts each child's inherited bound (or certifies the
		// child infeasible outright). Serial search never sees these —
		// its node count stays byte-for-byte — but the parallel tree gets
		// strictly stronger pruning, which more than pays back the few
		// nodes concurrency staleness costs it.
		b0, b1 := bound, bound
		trusted := false
		if warm {
			if c := *chain; c != nil {
				d0, d1 := c.childPenalties(int(branch))
				b0 += d0
				b1 += d1
				trusted = c.fresh()
			}
		}
		cut := s.incObj() - 1e-9
		// A penalty that claims a prune (the lifted bound crosses the
		// cutoff, including +Inf "child infeasible") comes from the same
		// drift-prone warm tableau as the guards above and gets the same
		// standard: a freshly refactored tableau is trusted, but a stale
		// claim must survive a cold child solve before the subtree is
		// cut off.
		// The cost lands only on stale claimed-pruned children, and a
		// refuted claim leaves the child with its exact cold bound.
		// bound < cut here (checked above), so any b >= cut is
		// penalty-caused.
		if !trusted {
			if b0 >= cut {
				cb, err := s.childBoundCold(fx, branch, 0, ar, st)
				if err != nil {
					return 0, err, false
				}
				b0 = math.Max(bound, cb)
			}
			if b1 >= cut {
				cb, err := s.childBoundCold(fx, branch, 1, ar, st)
				if err != nil {
					return 0, err, false
				}
				b1 = math.Max(bound, cb)
			}
			cut = s.incObj() - 1e-9
		}
		var kids [2]*bbNode
		nk := 0
		if b0 < cut {
			kids[nk] = &bbNode{parent: node, v: branch, val: 0, bound: b0, depth: node.depth + 1}
			nk++
		}
		if b1 < cut {
			kids[nk] = &bbNode{parent: node, v: branch, val: 1, bound: b1, depth: node.depth + 1}
			nk++
		}
		if nk > 0 {
			// Credit the children to the live-node count BEFORE the push
			// makes them stealable; see finishNode for the termination
			// race this ordering prevents.
			s.work.Add(int64(nk))
			s.push(id, kids[:nk]...)
		}
		return nk, nil, false
	}
}

// childBoundCold solves the relaxation of the child (parent fixings in
// fx, plus branch fixed to val) on the trusted cold path, returning its
// bound in minimization sense: +Inf when the child is genuinely
// infeasible, -Inf when unbounded (the parent loop's Unbounded handling
// then sees the child cold, since -Inf never prunes). fx is restored to
// the parent's fixing set before returning. branch is free in fx —
// pickBranch never selects a fixed variable.
func (s *parState) childBoundCold(fx *fixSet, branch VarID, val float64, ar *arena, st *SearchStats) (float64, error) {
	fx.set[branch] = true
	fx.val[branch] = val
	fx.touched = append(fx.touched, branch)
	r := s.m.solveRelaxation(fx, s.lim, ar)
	fx.set[branch] = false
	fx.touched = fx.touched[:len(fx.touched)-1]
	st.ColdLPs++
	st.PrimalPivots += int64(r.pivots)
	if r.err != nil {
		return 0, r.err
	}
	switch r.status {
	case Infeasible:
		return math.Inf(1), nil
	case Unbounded:
		return math.Inf(-1), nil
	}
	b := r.obj
	if s.maximize {
		b = -b
	}
	return b, nil
}

// emitBound publishes a proven-bound rise through Model.OnBound.
// boundMu is held across the callback so concurrent workers' events
// serialize into a strictly rising bound stream.
func (s *parState) emitBound(lb float64) {
	obj := s.incObj()
	lb = math.Min(lb, obj)
	if math.IsInf(lb, 0) {
		return
	}
	s.boundMu.Lock()
	defer s.boundMu.Unlock()
	if lb <= s.lastBound+1e-9 {
		return
	}
	s.lastBound = lb
	bnd := lb
	if s.maximize {
		obj, bnd = -obj, -bnd
	}
	s.m.onBound(Progress{Objective: obj, Bound: bnd, Nodes: int(s.nodes.Load())})
}

// tryIncumbent installs x (integral, snapped exactly) when it beats the
// current incumbent, and emits the monotone progress event. The fast
// path is a lock-free atomic read; the slow path re-checks under incMu
// so concurrent improvements serialize and the published objective
// sequence is strictly decreasing (in minimization sense).
func (s *parState) tryIncumbent(x []float64, objMin, nodeBound float64) {
	if objMin >= s.incObj() {
		return
	}
	s.incMu.Lock()
	defer s.incMu.Unlock()
	if objMin >= s.incObj() {
		return
	}
	s.incBits.Store(math.Float64bits(objMin))
	s.incX = x
	if s.m.onIncumbent == nil {
		return
	}
	lb := math.Min(nodeBound, s.globalLow())
	lb = math.Min(lb, objMin)
	obj, bnd := objMin, lb
	if s.maximize {
		obj, bnd = -obj, -bnd
	}
	s.m.onIncumbent(Progress{Objective: obj, Bound: bnd, Nodes: int(s.nodes.Load()),
		Values: append([]float64(nil), x...)})
}

// result assembles the Solution after every worker has exited; the
// shared state is quiescent, so no locks are needed.
func (s *parState) result() (*Solution, error) {
	nodes := int(s.nodes.Load())
	var stats SearchStats
	for i := range s.wstats {
		stats.Add(s.wstats[i])
	}
	if s.unbound {
		return &Solution{Status: Unbounded, Nodes: nodes, Bound: math.Inf(-1), Stats: stats}, nil
	}
	objMin := s.incObj()
	if s.stopErr != nil {
		if s.incX == nil {
			return nil, s.stopErr
		}
		lb := math.Min(s.stopLow, objMin)
		for i := range s.deques {
			for _, nd := range s.deques[i].nodes {
				if nd.bound < lb {
					lb = nd.bound
				}
			}
		}
		obj, bound := objMin, lb
		if s.maximize {
			obj, bound = -obj, -bound
		}
		return &Solution{
			Status: Feasible, Objective: obj, Values: s.incX,
			Nodes: nodes, Bound: bound, Stopped: s.stopErr, Stats: stats,
		}, nil
	}
	if s.incX == nil {
		// Exhausted tree, no integral point: Infeasible as a 0-1 program
		// (see the matching comment in branchAndBound).
		return &Solution{Status: Infeasible, Nodes: nodes, Bound: math.Inf(1), Stats: stats}, nil
	}
	obj := objMin
	if s.maximize {
		obj = -obj
	}
	return &Solution{Status: Optimal, Objective: obj, Values: s.incX, Nodes: nodes, Bound: obj, Stats: stats}, nil
}
