package ilp

import (
	"container/heap"
	"context"
	"math"
	"sync"
	"sync/atomic"

	"partita/internal/budget"
)

// Parallel branch and bound.
//
// branchAndBoundParallel runs the same best-first search as the serial
// branchAndBound with N workers pulling from one shared open heap:
//
//   - the heap, the per-worker in-flight bounds, and the termination
//     bookkeeping live behind one mutex (parState.mu) with a sync.Cond
//     for idle workers;
//   - the incumbent objective (minimization sense) is published as
//     Float64bits in an atomic.Uint64 so the hot pruning path reads it
//     without locking; installs are serialized behind parState.incMu,
//     which also keeps the onIncumbent callback stream monotone;
//   - the global proven bound is min(best open-node bound, best
//     in-flight node bound): a node being expanded is no longer on the
//     heap, so its bound must be tracked separately or an anytime stop
//     could claim a tighter bound than was actually proven;
//   - node counts are a shared atomic, checked against MaxNodes before
//     each expansion (parallel runs may overshoot the limit by up to
//     workers-1 nodes, the in-flight expansions that passed the check
//     together).
//
// Lock order: incMu may be taken before mu (tryIncumbent reads the heap
// while publishing), never the reverse.
//
// The parallel driver proves the same Status and Objective as the
// serial one — pruning uses the same incumbent-vs-bound test, and a
// worker only declares the tree exhausted when the heap is empty AND no
// peer is still expanding (an expansion can push children). Node order,
// node counts, and the incumbent trajectory are run-dependent; callers
// that need reproducible traces use Parallelism <= 1.
type parState struct {
	m        *Model
	bud      budget.Budget
	lim      limits
	maximize bool

	mu       sync.Mutex
	cond     *sync.Cond
	open     nodeHeap
	inflight []float64 // bound of each worker's current node; +Inf when idle
	busy     int       // workers currently expanding a node
	done     bool
	stopErr  error   // first budget-exhaustion reason observed
	stopLow  float64 // min bound over nodes abandoned at stop time
	unbound  bool

	nodes   atomic.Int64
	incBits atomic.Uint64 // Float64bits of the incumbent objective (min sense)
	incMu   sync.Mutex    // guards incX and serializes onIncumbent
	incX    []float64

	boundMu   sync.Mutex // guards lastBound and serializes onBound
	lastBound float64

	abort   atomic.Bool // a worker panicked; drain without touching mu
	panicMu sync.Mutex
	panicV  any
}

func (s *parState) incObj() float64 { return math.Float64frombits(s.incBits.Load()) }

func (m *Model) branchAndBoundParallel(ctx context.Context, bud budget.Budget, workers int) (*Solution, error) {
	s := &parState{
		m:        m,
		bud:      bud,
		lim:      limits{ctx: ctx, maxIter: bud.MaxSimplexIter},
		maximize:  m.sense == Maximize,
		inflight:  make([]float64, workers),
		stopLow:   math.Inf(1),
		lastBound: math.Inf(-1),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := range s.inflight {
		s.inflight[i] = math.Inf(1)
	}
	s.incBits.Store(math.Float64bits(math.Inf(1)))
	if x, objMin, ok := m.warmIncumbent(); ok {
		s.incBits.Store(math.Float64bits(objMin))
		s.incX = x
	}
	heap.Push(&s.open, &bbNode{v: -1, bound: math.Inf(-1)})

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					// Record the panic and wake everyone through paths that
					// do not need mu (whose state is unknown mid-panic); the
					// caller re-raises on its own goroutine so the API
					// boundary's panic guard still applies.
					s.panicMu.Lock()
					if s.panicV == nil {
						s.panicV = r
					}
					s.panicMu.Unlock()
					s.abort.Store(true)
					s.cond.Broadcast()
				}
			}()
			s.run(id)
		}(i)
	}
	wg.Wait()
	if s.panicV != nil {
		panic(s.panicV)
	}
	return s.result()
}

// run is one worker's loop: pop the globally best node, expand it
// unlocked, fold the outcome back into the shared state. Termination:
// heap empty and no peer mid-expansion, or a stop condition (budget
// exhausted, unbounded relaxation, panic elsewhere).
func (s *parState) run(id int) {
	fx := &fixSet{}
	ar := &arena{}
	s.mu.Lock()
	for {
		if s.done || s.abort.Load() {
			break
		}
		if len(s.open) == 0 {
			if s.busy == 0 {
				s.done = true
				s.cond.Broadcast()
				break
			}
			s.cond.Wait()
			continue
		}
		node := heap.Pop(&s.open).(*bbNode)
		if node.bound >= s.incObj()-1e-9 {
			continue // cannot improve on the incumbent
		}
		// The popped node is the best of the heap; the global proven
		// bound is its minimum with every in-flight expansion.
		lb := node.bound
		for _, b := range s.inflight {
			if b < lb {
				lb = b
			}
		}
		s.inflight[id] = node.bound
		s.busy++
		s.mu.Unlock()
		s.emitBound(lb)

		stop, unbounded := s.expand(node, fx, ar)

		s.mu.Lock()
		s.inflight[id] = math.Inf(1)
		s.busy--
		switch {
		case unbounded:
			s.unbound = true
			s.done = true
			s.cond.Broadcast()
		case stop != nil:
			if s.stopErr == nil {
				s.stopErr = stop
			}
			// The abandoned node's bound still counts toward the proven
			// bound reported by the anytime result.
			if node.bound < s.stopLow {
				s.stopLow = node.bound
			}
			s.done = true
			s.cond.Broadcast()
		case s.busy == 0 && len(s.open) == 0:
			s.done = true
			s.cond.Broadcast()
		case len(s.open) > 0:
			s.cond.Signal()
		}
	}
	s.mu.Unlock()
}

// expand processes one node exactly as the serial loop does: budget
// check, relaxation, prune/branch/incumbent. Called without mu held.
func (s *parState) expand(node *bbNode, fx *fixSet, ar *arena) (stop error, unbounded bool) {
	if err := budget.Check(s.lim.ctx); err != nil {
		return err, false
	}
	if s.bud.MaxNodes > 0 && s.nodes.Load() >= int64(s.bud.MaxNodes) {
		return budget.ErrNodeLimit, false
	}
	s.nodes.Add(1)
	fx.load(len(s.m.vars), node)
	r := s.m.solveRelaxation(fx, s.lim, ar)
	if r.err != nil {
		return r.err, false
	}
	switch r.status {
	case Infeasible:
		return nil, false
	case Unbounded:
		return nil, true
	}
	bound := r.obj
	if s.maximize {
		bound = -bound
	}
	if bound >= s.incObj()-1e-9 {
		return nil, false
	}
	branch := s.m.pickBranch(r.x, fx)
	if branch < 0 {
		s.tryIncumbent(s.m.roundExact(r.x), bound, bound)
		return nil, false
	}
	if x, obj, ok := s.m.roundToFeasible(r.x); ok {
		if s.maximize {
			obj = -obj
		}
		s.tryIncumbent(x, obj, bound)
	}
	s.mu.Lock()
	for _, val := range [...]float64{1, 0} {
		heap.Push(&s.open, &bbNode{
			parent: node,
			v:      branch,
			val:    val,
			bound:  bound,
			depth:  node.depth + 1,
		})
	}
	s.cond.Signal()
	s.mu.Unlock()
	return nil, false
}

// emitBound publishes a proven-bound rise through Model.OnBound.
// boundMu is held across the callback so concurrent workers' events
// serialize into a strictly rising bound stream. Called without mu.
func (s *parState) emitBound(lb float64) {
	if s.m.onBound == nil {
		return
	}
	obj := s.incObj()
	lb = math.Min(lb, obj)
	if math.IsInf(lb, 0) {
		return
	}
	s.boundMu.Lock()
	defer s.boundMu.Unlock()
	if lb <= s.lastBound+1e-9 {
		return
	}
	s.lastBound = lb
	bnd := lb
	if s.maximize {
		obj, bnd = -obj, -bnd
	}
	s.m.onBound(Progress{Objective: obj, Bound: bnd, Nodes: int(s.nodes.Load())})
}

// tryIncumbent installs x (integral, snapped exactly) when it beats the
// current incumbent, and emits the monotone progress event. The fast
// path is a lock-free atomic read; the slow path re-checks under incMu
// so concurrent improvements serialize and the published objective
// sequence is strictly decreasing (in minimization sense).
func (s *parState) tryIncumbent(x []float64, objMin, nodeBound float64) {
	if objMin >= s.incObj() {
		return
	}
	s.incMu.Lock()
	defer s.incMu.Unlock()
	if objMin >= s.incObj() {
		return
	}
	s.incBits.Store(math.Float64bits(objMin))
	s.incX = x
	if s.m.onIncumbent == nil {
		return
	}
	lb := nodeBound
	s.mu.Lock()
	if len(s.open) > 0 && s.open[0].bound < lb {
		lb = s.open[0].bound
	}
	for _, b := range s.inflight {
		if b < lb {
			lb = b
		}
	}
	s.mu.Unlock()
	lb = math.Min(lb, objMin)
	obj, bnd := objMin, lb
	if s.maximize {
		obj, bnd = -obj, -bnd
	}
	s.m.onIncumbent(Progress{Objective: obj, Bound: bnd, Nodes: int(s.nodes.Load()),
		Values: append([]float64(nil), x...)})
}

// result assembles the Solution after every worker has exited; the
// shared state is quiescent, so no locks are needed.
func (s *parState) result() (*Solution, error) {
	nodes := int(s.nodes.Load())
	if s.unbound {
		return &Solution{Status: Unbounded, Nodes: nodes, Bound: math.Inf(-1)}, nil
	}
	objMin := s.incObj()
	if s.stopErr != nil {
		if s.incX == nil {
			return nil, s.stopErr
		}
		lb := math.Min(s.stopLow, objMin)
		for _, nd := range s.open {
			if nd.bound < lb {
				lb = nd.bound
			}
		}
		obj, bound := objMin, lb
		if s.maximize {
			obj, bound = -obj, -bound
		}
		return &Solution{
			Status: Feasible, Objective: obj, Values: s.incX,
			Nodes: nodes, Bound: bound, Stopped: s.stopErr,
		}, nil
	}
	if s.incX == nil {
		// Exhausted tree, no integral point: Infeasible as a 0-1 program
		// (see the matching comment in branchAndBound).
		return &Solution{Status: Infeasible, Nodes: nodes, Bound: math.Inf(1)}, nil
	}
	obj := objMin
	if s.maximize {
		obj = -obj
	}
	return &Solution{Status: Optimal, Objective: obj, Values: s.incX, Nodes: nodes, Bound: obj}, nil
}
