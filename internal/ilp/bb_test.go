package ilp

import (
	"math"
	"math/rand"
	"testing"
)

func TestKnapsack(t *testing.T) {
	// Classic 0-1 knapsack: values {60,100,120}, weights {10,20,30}, cap 50.
	// Optimum: items 2 and 3, value 220.
	m := NewModel(Maximize)
	a := m.AddBinary("a", 60)
	b := m.AddBinary("b", 100)
	c := m.AddBinary("c", 120)
	m.AddConstraint("cap", []Term{{a, 10}, {b, 20}, {c, 30}}, LE, 50)
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !almost(s.Objective, 220, 1e-6) {
		t.Fatalf("status=%v obj=%g, want optimal 220", s.Status, s.Objective)
	}
	if s.IsSet(a) || !s.IsSet(b) || !s.IsSet(c) {
		t.Errorf("selection = %v %v %v, want false true true", s.IsSet(a), s.IsSet(b), s.IsSet(c))
	}
}

func TestMinCoverWithFixedCharge(t *testing.T) {
	// Miniature of the paper's IP-sharing structure: two s-calls can both
	// use IP k (area 5). Selecting either or both must pay the area once.
	m := NewModel(Minimize)
	x1 := m.AddBinary("x1", 0)
	x2 := m.AddBinary("x2", 0)
	z := m.AddBinary("z_ip", 5)
	// Each selected x needs gain; require total gain >= 15 with g=10 each:
	// forces both x1 and x2.
	m.AddConstraint("gain", []Term{{x1, 10}, {x2, 10}}, GE, 15)
	// Fixed charge: x1 + x2 <= 2*z.
	m.AddConstraint("fc", []Term{{x1, 1}, {x2, 1}, {z, -2}}, LE, 0)
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !almost(s.Objective, 5, 1e-6) {
		t.Errorf("objective = %g, want 5 (IP area paid once)", s.Objective)
	}
	if !s.IsSet(x1) || !s.IsSet(x2) || !s.IsSet(z) {
		t.Errorf("want all three set, got %v %v %v", s.IsSet(x1), s.IsSet(x2), s.IsSet(z))
	}
}

func TestConflictPair(t *testing.T) {
	// Problem-2 style SC-PC conflict: x + y <= 1 with both very valuable;
	// only one may be chosen.
	m := NewModel(Maximize)
	x := m.AddBinary("x", 10)
	y := m.AddBinary("y", 9)
	m.AddConstraint("conflict", []Term{{x, 1}, {y, 1}}, LE, 1)
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s.Objective, 10, 1e-6) || !s.IsSet(x) || s.IsSet(y) {
		t.Fatalf("obj=%g x=%v y=%v, want 10 true false", s.Objective, s.IsSet(x), s.IsSet(y))
	}
}

func TestInfeasibleMILP(t *testing.T) {
	m := NewModel(Minimize)
	x := m.AddBinary("x", 1)
	y := m.AddBinary("y", 1)
	m.AddConstraint("need3", []Term{{x, 1}, {y, 1}}, GE, 3)
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min 4b + y ; y >= 2 - 2b ; y >= 0; b binary.
	// b=0: y=2, obj 2. b=1: y=0, obj 4. Optimum 2.
	m := NewModel(Minimize)
	b := m.AddBinary("b", 4)
	y := m.AddVar("y", 0, math.Inf(1), 1)
	m.AddConstraint("c", []Term{{y, 1}, {b, 2}}, GE, 2)
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !almost(s.Objective, 2, 1e-6) {
		t.Fatalf("status=%v obj=%g, want optimal 2", s.Status, s.Objective)
	}
	if s.IsSet(b) {
		t.Error("b should be 0")
	}
}

// bruteForce enumerates all binary assignments and reports the optimum
// objective (NaN if infeasible). Continuous variables are not supported.
func bruteForce(m *Model) (float64, bool) {
	n := len(m.vars)
	best := math.NaN()
	found := false
	for mask := 0; mask < 1<<n; mask++ {
		x := make([]float64, n)
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				x[j] = 1
			}
		}
		ok := true
		for _, c := range m.cons {
			sum := 0.0
			for _, t := range c.terms {
				sum += t.Coef * x[t.Var]
			}
			switch c.rel {
			case LE:
				ok = sum <= c.rhs+1e-9
			case GE:
				ok = sum >= c.rhs-1e-9
			case EQ:
				ok = math.Abs(sum-c.rhs) <= 1e-9
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		obj := 0.0
		for j, v := range m.vars {
			obj += v.obj * x[j]
		}
		if !found {
			best = obj
			found = true
		} else if m.sense == Minimize && obj < best {
			best = obj
		} else if m.sense == Maximize && obj > best {
			best = obj
		}
	}
	return best, found
}

// TestRandomAgainstBruteForce cross-checks branch and bound against
// exhaustive enumeration on random small 0-1 programs.
func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(8) // up to 9 binaries
		nc := 1 + rng.Intn(5)
		sense := Minimize
		if rng.Intn(2) == 1 {
			sense = Maximize
		}
		m := NewModel(sense)
		for j := 0; j < n; j++ {
			m.AddBinary("x", float64(rng.Intn(41)-20))
		}
		for i := 0; i < nc; i++ {
			var terms []Term
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					terms = append(terms, Term{VarID(j), float64(rng.Intn(21) - 10)})
				}
			}
			if len(terms) == 0 {
				terms = []Term{{VarID(0), 1}}
			}
			rel := Rel(rng.Intn(3))
			if rel == EQ {
				rel = LE // equalities over random ints are almost always infeasible; keep the test informative
			}
			m.AddConstraint("c", terms, rel, float64(rng.Intn(31)-10))
		}
		want, feasible := bruteForce(m)
		got, err := m.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, m)
		}
		if err := m.Check(got, 1e-6); err != nil {
			t.Fatalf("trial %d: solution fails verification: %v\n%s", trial, err, m)
		}
		if !feasible {
			if got.Status != Infeasible {
				t.Fatalf("trial %d: solver says %v, brute force says infeasible\n%s", trial, got.Status, m)
			}
			continue
		}
		if got.Status != Optimal {
			t.Fatalf("trial %d: solver says %v, brute force found optimum %g\n%s", trial, got.Status, want, m)
		}
		if !almost(got.Objective, want, 1e-6) {
			t.Fatalf("trial %d: solver obj %g, brute force %g\n%s", trial, got.Objective, want, m)
		}
	}
}

func TestNodesReported(t *testing.T) {
	m := NewModel(Maximize)
	a := m.AddBinary("a", 3)
	b := m.AddBinary("b", 2)
	m.AddConstraint("cap", []Term{{a, 2}, {b, 2}}, LE, 3)
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes < 1 {
		t.Errorf("Nodes = %d, want >= 1", s.Nodes)
	}
	if !almost(s.Objective, 3, 1e-6) {
		t.Errorf("objective = %g, want 3", s.Objective)
	}
}
