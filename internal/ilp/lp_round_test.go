package ilp

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"partita/internal/budget"
)

// TestLPRoundIntegralOptimum: a model whose root relaxation is integral
// is solved to proven optimality in one node, matching branch and bound.
func TestLPRoundIntegralOptimum(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddBinary("x", 5)
	y := m.AddBinary("y", 3)
	m.AddConstraint("c", []Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, LE, 1)
	s, err := m.SolveLPRound(context.Background(), budget.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || s.Objective != 5 || s.Bound != 5 || s.Nodes != 1 {
		t.Fatalf("got %v/%g bound %g nodes %d, want Optimal/5/5/1", s.Status, s.Objective, s.Bound, s.Nodes)
	}
	if err := m.Check(s, 1e-6); err != nil {
		t.Error(err)
	}
}

// TestLPRoundFractionalRounds: on the adversarial fixed-charge instance
// the relaxation is fractional; rounding must produce a verified
// Feasible point whose objective and bound bracket the true optimum.
func TestLPRoundFractionalRounds(t *testing.T) {
	n := 12
	m := adversarialModel(n)
	s, err := m.SolveLPRound(context.Background(), budget.Budget{})
	if errors.Is(err, ErrNoRounding) {
		t.Skip("rounding failed on this instance; covered by the explicit failure test")
	}
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Feasible && s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if err := m.Check(s, 1e-6); err != nil {
		t.Fatal(err)
	}
	opt := adversarialOptimum(n)
	// Maximize: objective ≤ optimum ≤ bound.
	if s.Objective > opt+1e-9 {
		t.Errorf("rounded objective %g beats the optimum %g", s.Objective, opt)
	}
	if s.Bound < opt-1e-9 {
		t.Errorf("LP bound %g below the optimum %g", s.Bound, opt)
	}
	if s.Nodes != 1 {
		t.Errorf("nodes = %d, want 1", s.Nodes)
	}
}

// TestLPRoundInfeasibleProof: an infeasible relaxation proves the ILP
// infeasible.
func TestLPRoundInfeasibleProof(t *testing.T) {
	m := NewModel(Minimize)
	a := m.AddBinary("a", 1)
	b := m.AddBinary("b", 1)
	m.AddConstraint("sum", []Term{{Var: a, Coef: 1}, {Var: b, Coef: 1}}, GE, 3)
	s, err := m.SolveLPRound(context.Background(), budget.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want Infeasible", s.Status)
	}
}

// lpRoundHostile is a model nearest-integer rounding cannot repair: the
// relaxation optimum sits at u = v = 1/2 on an at-most-one row, and
// snapping both up violates it.
func lpRoundHostile() *Model {
	m := NewModel(Minimize)
	u := m.AddBinary("u", 1)
	v := m.AddBinary("v", 10)
	m.AddConstraint("one", []Term{{Var: u, Coef: 1}, {Var: v, Coef: 1}}, LE, 1)
	m.AddConstraint("gain", []Term{{Var: u, Coef: 100}, {Var: v, Coef: 200}}, GE, 150)
	return m
}

// TestLPRoundFailureAndWarmRescue: the hostile instance yields
// ErrNoRounding cold, but a valid warm start (the previous answer of an
// edit loop) is returned instead, under the same LP bound.
func TestLPRoundFailureAndWarmRescue(t *testing.T) {
	m := lpRoundHostile()
	if _, err := m.SolveLPRound(context.Background(), budget.Budget{}); !errors.Is(err, ErrNoRounding) {
		t.Fatalf("err = %v, want ErrNoRounding", err)
	}

	m = lpRoundHostile()
	m.SetWarmStart([]float64{0, 1})
	s, err := m.SolveLPRound(context.Background(), budget.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Feasible || s.Objective != 10 {
		t.Fatalf("got %v/%g, want Feasible/10 (the warm start)", s.Status, s.Objective)
	}
	if s.Bound > s.Objective {
		t.Errorf("bound %g above objective %g on a minimization", s.Bound, s.Objective)
	}
	if err := m.Check(s, 1e-6); err != nil {
		t.Error(err)
	}

	// An infeasible warm start must not rescue anything.
	m = lpRoundHostile()
	m.SetWarmStart([]float64{1, 1})
	if _, err := m.SolveLPRound(context.Background(), budget.Budget{}); !errors.Is(err, ErrNoRounding) {
		t.Fatalf("err = %v, want ErrNoRounding (invalid seed ignored)", err)
	}
}

// TestLPRoundFuzzCorpusSound extends the 20-model equivalence corpus to
// the LP-round engine: on every model where it produces an answer, the
// answer verifies and brackets the exact optimum correctly — Optimal
// claims match branch and bound exactly, Feasible objectives never beat
// it, bounds never cross it, and Infeasible claims agree.
func TestLPRoundFuzzCorpusSound(t *testing.T) {
	rng := rand.New(rand.NewSource(420))
	answered := 0
	for c := 0; c < 20; c++ {
		data := make([]byte, 4+rng.Intn(60))
		rng.Read(data)
		m, ok := decodeModel(data)
		if !ok {
			continue
		}
		ref, err := m.SolveCtx(context.Background(), budget.Budget{})
		if err != nil {
			t.Fatalf("model %d: exact solve failed: %v\n%s", c, err, m)
		}
		lp, err := m.SolveLPRound(context.Background(), budget.Budget{})
		if errors.Is(err, ErrNoRounding) {
			continue
		}
		if err != nil {
			t.Fatalf("model %d: lp round failed: %v\n%s", c, err, m)
		}
		answered++
		if err := m.Check(lp, 1e-6); err != nil {
			t.Fatalf("model %d: lp-round solution fails Check: %v\n%s", c, err, m)
		}
		sign := 1.0 // minimization: objective ≥ optimum ≥ bound
		if m.sense == Maximize {
			sign = -1
		}
		switch lp.Status {
		case Infeasible:
			if ref.Status != Infeasible {
				t.Fatalf("model %d: lp round claims Infeasible, exact says %v\n%s", c, ref.Status, m)
			}
		case Optimal:
			if ref.Status != Optimal || math.Abs(lp.Objective-ref.Objective) > 1e-6 {
				t.Fatalf("model %d: lp round claims Optimal %g, exact %v/%g\n%s",
					c, lp.Objective, ref.Status, ref.Objective, m)
			}
		case Feasible:
			if ref.Status == Optimal {
				if sign*(lp.Objective-ref.Objective) < -1e-6 {
					t.Fatalf("model %d: rounded objective %g beats the optimum %g\n%s", c, lp.Objective, ref.Objective, m)
				}
				if sign*(ref.Objective-lp.Bound) < -1e-6 {
					t.Fatalf("model %d: LP bound %g crosses the optimum %g\n%s", c, lp.Bound, ref.Objective, m)
				}
			}
		case Unbounded:
			if ref.Status != Unbounded {
				t.Fatalf("model %d: lp round claims Unbounded, exact says %v\n%s", c, ref.Status, m)
			}
		}
	}
	if answered < 5 {
		t.Fatalf("lp round answered only %d of 20 corpus models; corpus too degenerate", answered)
	}
}
