package ilp

import (
	"context"
	"math"

	"partita/internal/budget"
)

// The simplex solver works on a standard-form tableau:
//
//	minimize c·x  subject to  A·x = b,  x ≥ 0,  b ≥ 0
//
// built from the model by shifting each variable to its lower bound,
// turning finite upper bounds into explicit ≤ rows, and adding slack,
// surplus, and artificial columns. Phase 1 minimizes the sum of
// artificials; phase 2 minimizes the real cost. Bland's rule guarantees
// termination on degenerate instances.

const (
	pivotEps   = 1e-9 // smallest acceptable pivot magnitude (after row scaling)
	costEps    = 1e-9 // reduced-cost optimality tolerance
	feasEps    = 1e-7 // phase-1 residual treated as feasible
	intEps     = 1e-6 // integrality tolerance for branch and bound
	maxSimplex = 200000
)

type tableau struct {
	m, n  int
	a     [][]float64
	b     []float64
	basis []int
	// cost rows: index 0 = phase-1 (artificial) costs, 1 = real costs.
	d   [2][]float64
	obj [2]float64
	// artificial[j] marks artificial columns, which may never re-enter
	// the basis in phase 2.
	artificial []bool
	// pivots counts pivot applications since the last reset; solvers
	// fold it into SearchStats.
	pivots int
}

// lpResult is the outcome of one relaxation solve in model-variable space.
type lpResult struct {
	status Status
	obj    float64   // objective in the model's own sense
	x      []float64 // one value per model variable (fixed vars included)
	pivots int       // simplex pivots spent on this solve
	// err is non-nil when the solve was interrupted by a resource budget
	// (pivot limit or context deadline); status is then meaningless.
	err error
}

// limits bounds one relaxation solve: ctx carries the wall-clock budget
// (checked periodically inside the pivot loop), maxIter the pivot count
// (0 = the package safety cap).
type limits struct {
	ctx     context.Context
	maxIter int
}

func (l limits) iterCap() int {
	if l.maxIter > 0 {
		return l.maxIter
	}
	return maxSimplex
}

// arena recycles the tableau and scratch buffers of solveRelaxation
// across branch-and-bound nodes. Buffers are handed out bump-allocator
// style and reclaimed all at once by reset() at the start of the next
// solve, so a relaxation costs no tableau allocations in steady state.
// Each solver worker owns one arena; a nil arena degrades every request
// to a plain make (the one-shot pure-LP path).
type arena struct {
	floats []float64
	nf     int
	ints   []int
	ni     int
	bools  []bool
	nb     int
	rows   []lpRow
	aRows  [][]float64
	tab    tableau
}

func (a *arena) reset() {
	if a != nil {
		a.nf, a.ni, a.nb = 0, 0, 0
	}
}

// f64 hands out a zeroed float slice of length n. Growing the backing
// store mid-solve is safe: slices handed out earlier keep the old array,
// which stays valid for the rest of this solve.
func (a *arena) f64(n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	if a.nf+n > len(a.floats) {
		a.floats = make([]float64, 2*len(a.floats)+n)
		a.nf = 0
	}
	s := a.floats[a.nf : a.nf+n : a.nf+n]
	a.nf += n
	for i := range s {
		s[i] = 0
	}
	return s
}

func (a *arena) int(n int) []int {
	if a == nil {
		return make([]int, n)
	}
	if a.ni+n > len(a.ints) {
		a.ints = make([]int, 2*len(a.ints)+n)
		a.ni = 0
	}
	s := a.ints[a.ni : a.ni+n : a.ni+n]
	a.ni += n
	for i := range s {
		s[i] = 0
	}
	return s
}

func (a *arena) bool(n int) []bool {
	if a == nil {
		return make([]bool, n)
	}
	if a.nb+n > len(a.bools) {
		a.bools = make([]bool, 2*len(a.bools)+n)
		a.nb = 0
	}
	s := a.bools[a.nb : a.nb+n : a.nb+n]
	a.nb += n
	for i := range s {
		s[i] = false
	}
	return s
}

// rowBuf hands out an empty row slice with capacity for n rows.
func (a *arena) rowBuf(n int) []lpRow {
	if a == nil {
		return make([]lpRow, 0, n)
	}
	if cap(a.rows) < n {
		a.rows = make([]lpRow, 0, n)
	}
	return a.rows[:0]
}

// rowPtrs hands out the slice-of-rows backbone of the tableau matrix.
func (a *arena) rowPtrs(n int) [][]float64 {
	if a == nil {
		return make([][]float64, n)
	}
	if cap(a.aRows) < n {
		a.aRows = make([][]float64, n)
	}
	return a.aRows[:n]
}

// tableauBuf hands out the (single) reusable tableau shell.
func (a *arena) tableauBuf() *tableau {
	if a == nil {
		return &tableau{}
	}
	return &a.tab
}

// lpRow is one constraint row of the relaxation in shifted free-column
// space, before standard-form assembly.
type lpRow struct {
	coef []float64 // over free columns
	rel  Rel
	rhs  float64
}

// solveRelaxation solves the LP relaxation of m with the variables in fx
// fixed to specific values (used by branch and bound; fx may be nil for
// the unrestricted relaxation). ar supplies reusable tableau storage and
// may be nil for a one-shot solve.
func (m *Model) solveRelaxation(fx *fixSet, lim limits, ar *arena) lpResult {
	ar.reset()
	n := len(m.vars)
	// Shift amounts and which variables are free.
	shift := ar.f64(n)
	free := ar.int(n)[:0] // model index of each structural column
	colOf := ar.int(n)
	for j := range colOf {
		colOf[j] = -1
	}
	for j, v := range m.vars {
		if fx.fixed(VarID(j)) {
			continue
		}
		lo := v.lo
		if math.IsInf(lo, -1) {
			// The selection problems never use free variables; treat a
			// -Inf lower bound as a large negative shift instead of
			// splitting the column.
			lo = -1e12
		}
		shift[j] = lo
		colOf[j] = len(free)
		free = append(free, j)
	}

	// Exact row count: one per model constraint plus one upper-bound row
	// per free variable with a finite hi — lets the arena-backed rows
	// slice be sized once, so addRow never reallocates it.
	maxRows := len(m.cons)
	for _, j := range free {
		if !math.IsInf(m.vars[j].hi, 1) {
			maxRows++
		}
	}
	rows := ar.rowBuf(maxRows)
	addRow := func(coef []float64, rel Rel, rhs float64) {
		if rhs < 0 {
			for i := range coef {
				coef[i] = -coef[i]
			}
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		rows = append(rows, lpRow{coef: coef, rel: rel, rhs: rhs})
	}

	for _, c := range m.cons {
		coef := ar.f64(len(free))
		rhs := c.rhs
		for _, t := range c.terms {
			if fv, ok := fx.get(t.Var); ok {
				rhs -= t.Coef * fv
				continue
			}
			rhs -= t.Coef * shift[t.Var]
			coef[colOf[t.Var]] += t.Coef
		}
		addRow(coef, c.rel, rhs)
	}
	// Finite upper bounds become explicit rows in shifted space.
	for col, j := range free {
		hi := m.vars[j].hi
		if math.IsInf(hi, 1) {
			continue
		}
		coef := ar.f64(len(free))
		coef[col] = 1
		addRow(coef, LE, hi-shift[j])
	}

	// Row equilibration: scale each row so its largest magnitude is 1.
	for i := range rows {
		mx := math.Abs(rows[i].rhs)
		for _, v := range rows[i].coef {
			if a := math.Abs(v); a > mx {
				mx = a
			}
		}
		if mx > 1 {
			inv := 1 / mx
			for k := range rows[i].coef {
				rows[i].coef[k] *= inv
			}
			rows[i].rhs *= inv
		}
	}

	// Assemble the tableau: structural columns, then one slack/surplus
	// per inequality, then one artificial per GE/EQ row.
	nStruct := len(free)
	nSlack := 0
	nArt := 0
	for _, r := range rows {
		if r.rel != EQ {
			nSlack++
		}
		if r.rel != LE {
			nArt++
		}
	}
	nTot := nStruct + nSlack + nArt
	t := ar.tableauBuf()
	t.m = len(rows)
	t.n = nTot
	t.a = ar.rowPtrs(len(rows))
	t.b = ar.f64(len(rows))
	t.basis = ar.int(len(rows))
	t.artificial = ar.bool(nTot)
	t.d[0] = ar.f64(nTot)
	t.d[1] = ar.f64(nTot)
	t.obj[0], t.obj[1] = 0, 0

	// Real costs over structural columns (converted to minimization).
	sgn := 1.0
	if m.sense == Maximize {
		sgn = -1
	}
	constObj := 0.0
	for j, v := range m.vars {
		if fv, ok := fx.get(VarID(j)); ok {
			constObj += sgn * v.obj * fv
		} else {
			constObj += sgn * v.obj * shift[j]
		}
	}
	for col, j := range free {
		t.d[1][col] = sgn * m.vars[j].obj
	}

	slackAt := nStruct
	artAt := nStruct + nSlack
	for i, r := range rows {
		t.a[i] = ar.f64(nTot)
		copy(t.a[i], r.coef)
		t.b[i] = r.rhs
		switch r.rel {
		case LE:
			t.a[i][slackAt] = 1
			t.basis[i] = slackAt
			slackAt++
		case GE:
			t.a[i][slackAt] = -1
			slackAt++
			t.a[i][artAt] = 1
			t.artificial[artAt] = true
			t.basis[i] = artAt
			artAt++
		case EQ:
			t.a[i][artAt] = 1
			t.artificial[artAt] = true
			t.basis[i] = artAt
			artAt++
		}
	}
	// Price out phase-1 costs for the artificial basis.
	for i := range rows {
		if t.artificial[t.basis[i]] {
			for j := 0; j < nTot; j++ {
				t.d[0][j] -= t.a[i][j]
			}
			t.obj[0] += t.b[i]
		}
	}
	// Phase-1 cost of each artificial is 1; its reduced cost starts at 0
	// because its own column was subtracted above (identity column).
	for j := 0; j < nTot; j++ {
		if t.artificial[j] {
			t.d[0][j]++
		}
	}

	// Phase 1.
	t.pivots = 0
	st, err := t.iterate(0, true, lim)
	if err != nil {
		return lpResult{err: err, pivots: t.pivots}
	}
	if st == Unbounded {
		// A phase-1 objective bounded below by zero can never be
		// unbounded; treat as numerical failure → infeasible.
		return lpResult{status: Infeasible, pivots: t.pivots}
	}
	if t.obj[0] > feasEps {
		return lpResult{status: Infeasible, pivots: t.pivots}
	}
	t.driveOutArtificials()

	// Phase 2.
	st, err = t.iterate(1, false, lim)
	if err != nil {
		return lpResult{err: err, pivots: t.pivots}
	}
	if st == Unbounded {
		return lpResult{status: Unbounded, pivots: t.pivots}
	}

	// Extract structural values and unshift. The result vector outlives
	// the arena's solve cycle (callers keep it for incumbents), so it is
	// allocated fresh rather than from the arena.
	x := make([]float64, n)
	for j := range m.vars {
		if fv, ok := fx.get(VarID(j)); ok {
			x[j] = fv
		} else {
			x[j] = shift[j]
		}
	}
	for i, bi := range t.basis {
		if bi < nStruct {
			x[free[bi]] += t.b[i]
		}
	}
	obj := t.obj[1] + constObj
	if m.sense == Maximize {
		obj = -obj
	}
	return lpResult{status: Optimal, obj: obj, x: x, pivots: t.pivots}
}

// iterate runs simplex pivots on cost row k until optimal or unbounded.
// When allowArt is false, artificial columns may not enter the basis.
// Pivoting uses Dantzig's rule (most negative reduced cost) for speed,
// falling back to Bland's rule after a burn-in to guarantee termination
// on degenerate instances. The limits bound the pivot count and carry
// the wall-clock budget; exhausting either aborts with a typed error.
func (t *tableau) iterate(k int, allowArt bool, lim limits) (Status, error) {
	const blandAfter = 2000
	maxIter := lim.iterCap()
	for iter := 0; iter < maxIter; iter++ {
		if iter&0xff == 0xff {
			// Deadline check every 256 pivots: cheap relative to a pivot
			// over the whole tableau, frequent enough that even a single
			// huge LP cannot overrun a deadline by much.
			if err := budget.Check(lim.ctx); err != nil {
				return Optimal, err
			}
		}
		enter := -1
		if iter < blandAfter {
			best := -costEps
			for j := 0; j < t.n; j++ {
				if !allowArt && t.artificial[j] {
					continue
				}
				if t.d[k][j] < best {
					best = t.d[k][j]
					enter = j
				}
			}
		} else {
			for j := 0; j < t.n; j++ {
				if !allowArt && t.artificial[j] {
					continue
				}
				if t.d[k][j] < -costEps {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			return Optimal, nil
		}
		// Ratio test, Bland tiebreak on lowest basis index.
		leave := -1
		best := math.Inf(1)
		for i := 0; i < t.m; i++ {
			aij := t.a[i][enter]
			if aij <= pivotEps {
				continue
			}
			ratio := t.b[i] / aij
			if ratio < best-1e-12 || (ratio < best+1e-12 && (leave < 0 || t.basis[i] < t.basis[leave])) {
				best = ratio
				leave = i
			}
		}
		if leave < 0 {
			return Unbounded, nil
		}
		t.pivot(leave, enter)
	}
	// Pivot cap exceeded. Surface it as a budget error rather than
	// silently returning a non-optimal basis; branch and bound converts
	// this into an anytime (Feasible) result.
	return Optimal, budget.ErrIterLimit
}

// pivot brings column q into the basis at row r.
func (t *tableau) pivot(r, q int) {
	t.pivots++
	piv := t.a[r][q]
	inv := 1 / piv
	row := t.a[r]
	for j := range row {
		row[j] *= inv
	}
	t.b[r] *= inv
	for i := 0; i < t.m; i++ {
		if i == r {
			continue
		}
		f := t.a[i][q]
		if f == 0 {
			continue
		}
		ai := t.a[i]
		for j := range ai {
			ai[j] -= f * row[j]
		}
		t.b[i] -= f * t.b[r]
		if t.b[i] < 0 && t.b[i] > -1e-11 {
			t.b[i] = 0
		}
	}
	for k := 0; k < 2; k++ {
		f := t.d[k][q]
		if f == 0 {
			continue
		}
		dk := t.d[k]
		for j := range dk {
			dk[j] -= f * row[j]
		}
		t.obj[k] += f * t.b[r]
	}
	t.basis[r] = q
}

// driveOutArtificials pivots any artificial variable that is still basic
// after phase 1 out of the basis when possible. Rows whose artificial
// cannot be driven out are redundant (all structural coefficients zero)
// and harmless because the artificial's value is zero and its column may
// not re-enter.
func (t *tableau) driveOutArtificials() {
	for i := 0; i < t.m; i++ {
		if !t.artificial[t.basis[i]] {
			continue
		}
		for j := 0; j < t.n; j++ {
			if t.artificial[j] {
				continue
			}
			if math.Abs(t.a[i][j]) > 1e-7 {
				t.pivot(i, j)
				break
			}
		}
	}
}
