package ilp

import (
	"context"
	"math"
	"testing"

	"partita/internal/budget"
)

// FuzzSolve decodes arbitrary bytes into a small 0-1 model and solves it
// under a node budget. Contracts under attack: the solver never panics,
// any Optimal or Feasible solution passes Check (bounds, integrality,
// every constraint), and a Feasible solution's bound never excludes its
// own incumbent.
func FuzzSolve(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 3, 7})
	f.Add([]byte{4, 2, 250, 3, 1, 9, 0, 200, 2, 2, 2, 39, 1})
	f.Add([]byte{6, 3, 1, 2, 3, 4, 5, 6, 0, 100, 7, 7, 7, 7, 7, 7, 20, 1, 50, 128, 129, 130, 131, 132, 133, 3, 2})
	f.Add([]byte{8, 8, 255, 255, 255, 255, 0, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, ok := decodeModel(data)
		if !ok {
			return
		}
		s, err := m.SolveCtx(context.Background(), budget.Budget{MaxNodes: 200})
		if err != nil {
			// Budget exhaustion without an incumbent, or an empty
			// model — both are contractual errors, not findings.
			if budget.IsExhausted(err) || err == ErrNoVariables {
				return
			}
			// Validation errors (NaN/Inf coefficients never occur by
			// construction) would be a decoder bug.
			t.Fatalf("solve failed: %v\nmodel:\n%s", err, m)
		}
		switch s.Status {
		case Optimal, Feasible:
			if err := m.Check(s, 1e-4); err != nil {
				t.Fatalf("%v solution fails Check: %v\nmodel:\n%s", s.Status, err, m)
			}
			if s.Status == Feasible {
				if g := s.Gap(); g < 0 || math.IsNaN(g) {
					t.Fatalf("feasible solution has gap %g", g)
				}
			}
		case Infeasible, Unbounded:
			// Nothing further to verify mechanically here.
		default:
			t.Fatalf("unknown status %v", s.Status)
		}
	})
}

// decodeModel derives a deterministic small model from raw bytes:
// byte 0 → number of binaries (1..8), byte 1 → number of constraints
// (0..6), then objective coefficients and per-constraint (coeffs, rel,
// rhs) records. Coefficients are small signed integers so the simplex
// stays well-conditioned and Check tolerances are meaningful.
func decodeModel(data []byte) (*Model, bool) {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	nv := int(next())%8 + 1
	nc := int(next()) % 7
	sense := Minimize
	if next()%2 == 1 {
		sense = Maximize
	}
	m := NewModel(sense)
	vars := make([]VarID, nv)
	for i := range vars {
		obj := float64(int(next())%21 - 10)
		vars[i] = m.AddBinary("x", obj)
	}
	for c := 0; c < nc; c++ {
		terms := make([]Term, 0, nv)
		for _, v := range vars {
			coef := float64(int(next())%11 - 5)
			if coef != 0 {
				terms = append(terms, Term{Var: v, Coef: coef})
			}
		}
		if len(terms) == 0 {
			continue
		}
		rel := Rel(next() % 3)
		rhs := float64(int(next())%31 - 10)
		m.AddConstraint("c", terms, rel, rhs)
	}
	return m, true
}
