package ilp

import (
	"container/heap"
	"context"
	"math"

	"partita/internal/budget"
)

// Solve optimizes the model with no resource budget. Models with binary
// variables are solved by best-first branch and bound over LP
// relaxations; pure LPs are solved directly. The returned Solution is
// provably optimal when Status is Optimal.
func (m *Model) Solve() (*Solution, error) {
	return m.SolveCtx(context.Background(), budget.Budget{})
}

// SolveCtx optimizes the model under a resource budget, making the
// branch-and-bound solver anytime:
//
//   - the context's deadline/cancellation and bud.MaxNodes bound the
//     wall-clock and node work;
//   - on budget exhaustion with an incumbent, the incumbent is returned
//     with Status Feasible, the best proven Bound, and the exhaustion
//     reason in Stopped;
//   - on exhaustion with no incumbent, a typed error wrapping one of the
//     budget package sentinels is returned, so callers can degrade to a
//     heuristic instead of failing.
func (m *Model) SolveCtx(ctx context.Context, bud budget.Budget) (*Solution, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	if err := budget.Check(ctx); err != nil {
		return nil, err
	}
	lim := limits{ctx: ctx, maxIter: bud.MaxSimplexIter}
	hasInt := false
	for _, v := range m.vars {
		if v.integer {
			hasInt = true
			break
		}
	}
	if !hasInt {
		r := m.solveRelaxation(nil, lim)
		if r.err != nil {
			return nil, r.err
		}
		return &Solution{Status: r.status, Objective: r.obj, Values: r.x, Nodes: 1, Bound: r.obj}, nil
	}
	return m.branchAndBound(ctx, bud)
}

// bbNode is one open subproblem: a set of binary fixings plus the parent
// relaxation bound used for best-first ordering.
type bbNode struct {
	fixed map[VarID]float64
	bound float64 // relaxation bound in minimization sense
	depth int
}

type nodeHeap []*bbNode

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	return h[i].depth > h[j].depth // deeper first on ties: reach incumbents sooner
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*bbNode)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func (m *Model) branchAndBound(ctx context.Context, bud budget.Budget) (*Solution, error) {
	// Internally minimize; flip at the end if maximizing.
	toMin := func(obj float64) float64 {
		if m.sense == Maximize {
			return -obj
		}
		return obj
	}
	lim := limits{ctx: ctx, maxIter: bud.MaxSimplexIter}

	incumbentObj := math.Inf(1)
	var incumbentX []float64
	nodes := 0

	open := &nodeHeap{}
	heap.Init(open)
	heap.Push(open, &bbNode{fixed: map[VarID]float64{}, bound: math.Inf(-1)})

	// tryIncumbent records x (already integral within tolerance, rounded
	// exactly here) as the incumbent if it beats the current one.
	// nodeBound is the relaxation bound of the node that produced x; the
	// global proven bound is its minimum with the best open-node bound.
	tryIncumbent := func(x []float64, objMin, nodeBound float64) {
		if objMin >= incumbentObj {
			return
		}
		incumbentObj = objMin
		incumbentX = x
		if m.onIncumbent == nil {
			return
		}
		lb := nodeBound
		if open.Len() > 0 && (*open)[0].bound < lb {
			lb = (*open)[0].bound
		}
		lb = math.Min(lb, objMin)
		obj, bnd := objMin, lb
		if m.sense == Maximize {
			obj, bnd = -obj, -bnd
		}
		m.onIncumbent(Progress{Objective: obj, Bound: bnd, Nodes: nodes})
	}

	// stop assembles the anytime result when a budget expires: the
	// incumbent (if any) with the tightest proven bound still open, or
	// the typed exhaustion error when no integral point was ever found.
	stop := func(reason error, localBound float64) (*Solution, error) {
		if incumbentX == nil {
			return nil, reason
		}
		lb := math.Min(localBound, incumbentObj)
		for _, nd := range *open {
			if nd.bound < lb {
				lb = nd.bound
			}
		}
		obj, bound := incumbentObj, lb
		if m.sense == Maximize {
			obj, bound = -obj, -bound
		}
		return &Solution{
			Status: Feasible, Objective: obj, Values: incumbentX,
			Nodes: nodes, Bound: bound, Stopped: reason,
		}, nil
	}

	sawFeasibleLP := false
	for open.Len() > 0 {
		node := heap.Pop(open).(*bbNode)
		if node.bound >= incumbentObj-1e-9 {
			continue // cannot improve on the incumbent
		}
		if err := budget.Check(ctx); err != nil {
			return stop(err, node.bound)
		}
		if bud.MaxNodes > 0 && nodes >= bud.MaxNodes {
			return stop(budget.ErrNodeLimit, node.bound)
		}
		nodes++
		r := m.solveRelaxation(node.fixed, lim)
		if r.err != nil {
			return stop(r.err, node.bound)
		}
		switch r.status {
		case Infeasible:
			continue
		case Unbounded:
			// A relaxation unbounded below with binaries still free can
			// only come from continuous variables; the MILP is unbounded.
			return &Solution{Status: Unbounded, Nodes: nodes, Bound: math.Inf(-1)}, nil
		}
		sawFeasibleLP = true
		bound := toMin(r.obj)
		if bound >= incumbentObj-1e-9 {
			continue
		}
		// Pick the branching variable: among fractional binaries, prefer
		// the one with the largest objective impact (scaled by how
		// fractional it is) — on fixed-charge instances this branches on
		// the area-carrying indicator variables first, which tightens
		// the bound fastest.
		branch := VarID(-1)
		bestScore := 0.0
		for j, v := range m.vars {
			if !v.integer {
				continue
			}
			if _, ok := node.fixed[VarID(j)]; ok {
				continue
			}
			frac := math.Abs(r.x[j] - math.Round(r.x[j]))
			if frac <= intEps {
				continue
			}
			score := frac * (1 + math.Abs(v.obj))
			if branch < 0 || score > bestScore {
				bestScore = score
				branch = VarID(j)
			}
		}
		if branch < 0 {
			// Integral: candidate incumbent. Round binaries exactly.
			x := make([]float64, len(r.x))
			copy(x, r.x)
			for j, v := range m.vars {
				if v.integer {
					x[j] = math.Round(x[j])
				}
			}
			tryIncumbent(x, bound, bound)
			continue
		}
		// Opportunistic rounding: a nearest-integer snapshot of the
		// fractional relaxation often satisfies the constraints outright
		// and seeds the incumbent long before a dive bottoms out —
		// essential for anytime behaviour under tight deadlines.
		if x, obj, ok := m.roundToFeasible(r.x); ok {
			tryIncumbent(x, toMin(obj), bound)
		}
		for _, val := range [...]float64{1, 0} {
			child := &bbNode{
				fixed: make(map[VarID]float64, len(node.fixed)+1),
				bound: bound,
				depth: node.depth + 1,
			}
			for k, v := range node.fixed {
				child.fixed[k] = v
			}
			child.fixed[branch] = val
			heap.Push(open, child)
		}
	}

	if incumbentX == nil {
		st := Infeasible
		if sawFeasibleLP {
			// LP-feasible but no integral point: still infeasible as a MILP.
			st = Infeasible
		}
		return &Solution{Status: st, Nodes: nodes, Bound: math.Inf(1)}, nil
	}
	obj := incumbentObj
	if m.sense == Maximize {
		obj = -obj
	}
	return &Solution{Status: Optimal, Objective: obj, Values: incumbentX, Nodes: nodes, Bound: obj}, nil
}

// roundToFeasible snaps every integer variable of an LP point to its
// nearest integer and reports whether the result satisfies all bounds
// and constraints; obj is its objective in the model's own sense.
func (m *Model) roundToFeasible(lp []float64) (x []float64, obj float64, ok bool) {
	const tol = 1e-7
	x = make([]float64, len(lp))
	copy(x, lp)
	for j, v := range m.vars {
		if !v.integer {
			continue
		}
		x[j] = math.Round(x[j])
		if x[j] < v.lo-tol || x[j] > v.hi+tol {
			return nil, 0, false
		}
	}
	for _, c := range m.cons {
		sum := 0.0
		for _, t := range c.terms {
			sum += t.Coef * x[t.Var]
		}
		scale := 1 + math.Abs(c.rhs)
		switch c.rel {
		case LE:
			if sum > c.rhs+tol*scale {
				return nil, 0, false
			}
		case GE:
			if sum < c.rhs-tol*scale {
				return nil, 0, false
			}
		case EQ:
			if math.Abs(sum-c.rhs) > tol*scale {
				return nil, 0, false
			}
		}
	}
	for j, v := range m.vars {
		obj += v.obj * x[j]
	}
	return x, obj, true
}
