package ilp

import (
	"container/heap"
	"context"
	"math"

	"partita/internal/budget"
)

// Solve optimizes the model with no resource budget. Models with binary
// variables are solved by best-first branch and bound over LP
// relaxations; pure LPs are solved directly. The returned Solution is
// provably optimal when Status is Optimal.
func (m *Model) Solve() (*Solution, error) {
	return m.SolveCtx(context.Background(), budget.Budget{})
}

// SolveCtx optimizes the model under a resource budget, making the
// branch-and-bound solver anytime:
//
//   - the context's deadline/cancellation and bud.MaxNodes bound the
//     wall-clock and node work;
//   - on budget exhaustion with an incumbent, the incumbent is returned
//     with Status Feasible, the best proven Bound, and the exhaustion
//     reason in Stopped;
//   - on exhaustion with no incumbent, a typed error wrapping one of the
//     budget package sentinels is returned, so callers can degrade to a
//     heuristic instead of failing.
//
// bud.Parallelism selects the search driver: 0 and 1 run the serial
// best-first search, which visits nodes in a fixed, reproducible order;
// larger values run the same search with that many concurrent workers
// (see branchAndBoundParallel), proving the same status and objective
// with a run-dependent node order.
func (m *Model) SolveCtx(ctx context.Context, bud budget.Budget) (*Solution, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	if err := budget.Check(ctx); err != nil {
		return nil, err
	}
	lim := limits{ctx: ctx, maxIter: bud.MaxSimplexIter}
	hasInt := false
	for _, v := range m.vars {
		if v.integer {
			hasInt = true
			break
		}
	}
	if !hasInt {
		r := m.solveRelaxation(nil, lim, nil)
		if r.err != nil {
			return nil, r.err
		}
		return &Solution{Status: r.status, Objective: r.obj, Values: r.x, Nodes: 1, Bound: r.obj,
			Stats: SearchStats{ColdLPs: 1, PrimalPivots: int64(r.pivots)}}, nil
	}
	if w := bud.Workers(); w > 1 {
		return m.branchAndBoundParallel(ctx, bud, w)
	}
	return m.branchAndBound(ctx, bud)
}

// bbNode is one open subproblem: a parent pointer plus this node's own
// binary fixing, and the parent relaxation bound used for best-first
// ordering. The full fixing set of a node is the chain walk back to the
// root — a copy-on-write path that costs one small struct per child
// instead of the full map copy a per-node fixing map would need. Nodes
// are immutable once pushed, so chains may be shared freely between
// solver workers.
type bbNode struct {
	parent *bbNode
	v      VarID   // variable fixed at this node; -1 at the root
	val    float64 // value v is fixed to
	bound  float64 // relaxation bound in minimization sense
	depth  int32
}

// fixSet is a reusable dense view of one node's fixing chain, giving
// solveRelaxation O(1) lookups without allocating per node: load walks
// the chain (O(depth)) and clears only the entries the previous node
// touched. Each solver worker owns one fixSet.
type fixSet struct {
	val     []float64
	set     []bool
	touched []VarID
}

// load rebuilds the view for node's chain over a model with n variables.
func (f *fixSet) load(n int, node *bbNode) {
	if len(f.set) < n {
		f.val = make([]float64, n)
		f.set = make([]bool, n)
	}
	for _, v := range f.touched {
		f.set[v] = false
	}
	f.touched = f.touched[:0]
	for nd := node; nd != nil && nd.v >= 0; nd = nd.parent {
		if !f.set[nd.v] {
			f.set[nd.v] = true
			f.val[nd.v] = nd.val
			f.touched = append(f.touched, nd.v)
		}
	}
}

// get reports the fixed value of v, if any. A nil fixSet has no
// fixings (the pure-LP entry point).
func (f *fixSet) get(v VarID) (float64, bool) {
	if f == nil || !f.set[v] {
		return 0, false
	}
	return f.val[v], true
}

// fixed reports whether v is fixed.
func (f *fixSet) fixed(v VarID) bool { return f != nil && f.set[v] }

type nodeHeap []*bbNode

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	return h[i].depth > h[j].depth // deeper first on ties: reach incumbents sooner
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*bbNode)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// pickBranch chooses the branching variable of a fractional relaxation
// point: among free fractional binaries, the one with the largest
// objective impact scaled by how fractional it is — on fixed-charge
// instances this branches on the area-carrying indicator variables
// first, which tightens the bound fastest. Returns -1 when every
// integer variable is integral (candidate incumbent).
func (m *Model) pickBranch(x []float64, fx *fixSet) VarID {
	branch := VarID(-1)
	bestScore := 0.0
	for j, v := range m.vars {
		if !v.integer {
			continue
		}
		if fx.fixed(VarID(j)) {
			continue
		}
		frac := math.Abs(x[j] - math.Round(x[j]))
		if frac <= intEps {
			continue
		}
		score := frac * (1 + math.Abs(v.obj))
		if branch < 0 || score > bestScore {
			bestScore = score
			branch = VarID(j)
		}
	}
	return branch
}

// roundExact copies an integral-within-tolerance LP point, snapping its
// integer variables exactly.
func (m *Model) roundExact(lp []float64) []float64 {
	x := make([]float64, len(lp))
	copy(x, lp)
	for j, v := range m.vars {
		if v.integer {
			x[j] = math.Round(x[j])
		}
	}
	return x
}

// warmIncumbent validates the model's warm-start point, if any: integer
// variables are snapped exactly, then every bound and constraint is
// checked. On success it returns the snapped point and its objective in
// minimization sense, ready to install as the initial incumbent. An
// invalid or infeasible warm start is silently ignored — it is a hint,
// not an input.
func (m *Model) warmIncumbent() (x []float64, objMin float64, ok bool) {
	if m.warmX == nil || len(m.warmX) != len(m.vars) {
		return nil, 0, false
	}
	x = m.roundExact(m.warmX)
	obj, ok := m.evalPoint(x)
	if !ok {
		return nil, 0, false
	}
	if m.sense == Maximize {
		obj = -obj
	}
	return x, obj, true
}

func (m *Model) branchAndBound(ctx context.Context, bud budget.Budget) (*Solution, error) {
	// Internally minimize; flip at the end if maximizing.
	toMin := func(obj float64) float64 {
		if m.sense == Maximize {
			return -obj
		}
		return obj
	}
	lim := limits{ctx: ctx, maxIter: bud.MaxSimplexIter}

	incumbentObj := math.Inf(1)
	var incumbentX []float64
	nodes := 0
	var stats SearchStats
	if x, objMin, ok := m.warmIncumbent(); ok {
		// Seeds carried in from a previous solve prune from node one but
		// emit no OnIncumbent event: the callback stream reports this
		// solve's discoveries.
		incumbentObj, incumbentX = objMin, x
	}

	fx := &fixSet{}
	ar := &arena{}

	open := &nodeHeap{}
	heap.Init(open)
	heap.Push(open, &bbNode{v: -1, bound: math.Inf(-1)})

	// tryIncumbent records x (already integral, snapped exactly) as the
	// incumbent if it beats the current one. nodeBound is the relaxation
	// bound of the node that produced x; the global proven bound is its
	// minimum with the best open-node bound.
	tryIncumbent := func(x []float64, objMin, nodeBound float64) {
		if objMin >= incumbentObj {
			return
		}
		incumbentObj = objMin
		incumbentX = x
		if m.onIncumbent == nil {
			return
		}
		lb := nodeBound
		if open.Len() > 0 && (*open)[0].bound < lb {
			lb = (*open)[0].bound
		}
		lb = math.Min(lb, objMin)
		obj, bnd := objMin, lb
		if m.sense == Maximize {
			obj, bnd = -obj, -bnd
		}
		m.onIncumbent(Progress{Objective: obj, Bound: bnd, Nodes: nodes,
			Values: append([]float64(nil), x...)})
	}

	// stop assembles the anytime result when a budget expires: the
	// incumbent (if any) with the tightest proven bound still open, or
	// the typed exhaustion error when no integral point was ever found.
	stop := func(reason error, localBound float64) (*Solution, error) {
		if incumbentX == nil {
			return nil, reason
		}
		lb := math.Min(localBound, incumbentObj)
		for _, nd := range *open {
			if nd.bound < lb {
				lb = nd.bound
			}
		}
		obj, bound := incumbentObj, lb
		if m.sense == Maximize {
			obj, bound = -obj, -bound
		}
		return &Solution{
			Status: Feasible, Objective: obj, Values: incumbentX,
			Nodes: nodes, Bound: bound, Stopped: reason, Stats: stats,
		}, nil
	}

	// Best-first order means the popped node's bound is the global proven
	// bound over the whole remaining tree; stream its (monotone) rises.
	lastBound := math.Inf(-1)
	emitBound := func(lb float64) {
		if m.onBound == nil {
			return
		}
		lb = math.Min(lb, incumbentObj)
		if math.IsInf(lb, 0) || lb <= lastBound+1e-9 {
			return
		}
		lastBound = lb
		obj, bnd := incumbentObj, lb
		if m.sense == Maximize {
			obj, bnd = -obj, -bnd
		}
		m.onBound(Progress{Objective: obj, Bound: bnd, Nodes: nodes})
	}

	for open.Len() > 0 {
		node := heap.Pop(open).(*bbNode)
		emitBound(node.bound)
		if node.bound >= incumbentObj-1e-9 {
			continue // cannot improve on the incumbent
		}
		if err := budget.Check(ctx); err != nil {
			return stop(err, node.bound)
		}
		if bud.MaxNodes > 0 && nodes >= bud.MaxNodes {
			return stop(budget.ErrNodeLimit, node.bound)
		}
		nodes++
		fx.load(len(m.vars), node)
		r := m.solveRelaxation(fx, lim, ar)
		stats.ColdLPs++
		stats.PrimalPivots += int64(r.pivots)
		if r.err != nil {
			return stop(r.err, node.bound)
		}
		switch r.status {
		case Infeasible:
			continue
		case Unbounded:
			// A relaxation unbounded below with binaries still free can
			// only come from continuous variables; the MILP is unbounded.
			return &Solution{Status: Unbounded, Nodes: nodes, Bound: math.Inf(-1), Stats: stats}, nil
		}
		bound := toMin(r.obj)
		if bound >= incumbentObj-1e-9 {
			continue
		}
		branch := m.pickBranch(r.x, fx)
		if branch < 0 {
			// Integral: candidate incumbent.
			tryIncumbent(m.roundExact(r.x), bound, bound)
			continue
		}
		// Opportunistic rounding: a nearest-integer snapshot of the
		// fractional relaxation often satisfies the constraints outright
		// and seeds the incumbent long before a dive bottoms out —
		// essential for anytime behaviour under tight deadlines.
		if x, obj, ok := m.roundToFeasible(r.x); ok {
			tryIncumbent(x, toMin(obj), bound)
		}
		for _, val := range [...]float64{1, 0} {
			heap.Push(open, &bbNode{
				parent: node,
				v:      branch,
				val:    val,
				bound:  bound,
				depth:  node.depth + 1,
			})
		}
	}

	if incumbentX == nil {
		// The tree is exhausted without a single integral point. Nodes
		// whose LP relaxation was feasible change nothing: the branching
		// loop only abandons a subproblem once its relaxation is
		// infeasible or its every binary fixing is enumerated, so an
		// LP-feasible region that contains no integral point is — as a
		// 0-1 program — simply Infeasible.
		return &Solution{Status: Infeasible, Nodes: nodes, Bound: math.Inf(1), Stats: stats}, nil
	}
	obj := incumbentObj
	if m.sense == Maximize {
		obj = -obj
	}
	return &Solution{Status: Optimal, Objective: obj, Values: incumbentX, Nodes: nodes, Bound: obj, Stats: stats}, nil
}

// roundToFeasible snaps every integer variable of an LP point to its
// nearest integer and reports whether the result satisfies all bounds
// and constraints; obj is its objective in the model's own sense.
func (m *Model) roundToFeasible(lp []float64) (x []float64, obj float64, ok bool) {
	x = make([]float64, len(lp))
	copy(x, lp)
	moved := false
	for j, v := range m.vars {
		if !v.integer {
			continue
		}
		r := math.Round(x[j])
		if math.Abs(x[j]-r) > intEps {
			moved = true
		}
		x[j] = r
	}
	if !moved {
		// Every integer variable was already integral within tolerance:
		// the snapped point is the relaxation itself, which the caller's
		// integral-incumbent path handles exactly. Skip the full
		// constraint scan rather than re-verify and re-attempt the same
		// incumbent.
		return nil, 0, false
	}
	obj, ok = m.evalPoint(x)
	if !ok {
		return nil, 0, false
	}
	return x, obj, true
}

// evalPoint checks x against every variable bound and constraint of the
// model and, when it satisfies them all, returns its objective in the
// model's own sense.
func (m *Model) evalPoint(x []float64) (obj float64, ok bool) {
	const tol = 1e-7
	for j, v := range m.vars {
		if x[j] < v.lo-tol || x[j] > v.hi+tol {
			return 0, false
		}
	}
	for _, c := range m.cons {
		sum := 0.0
		for _, t := range c.terms {
			sum += t.Coef * x[t.Var]
		}
		scale := 1 + math.Abs(c.rhs)
		switch c.rel {
		case LE:
			if sum > c.rhs+tol*scale {
				return 0, false
			}
		case GE:
			if sum < c.rhs-tol*scale {
				return 0, false
			}
		case EQ:
			if math.Abs(sum-c.rhs) > tol*scale {
				return 0, false
			}
		}
	}
	for j, v := range m.vars {
		obj += v.obj * x[j]
	}
	return obj, true
}
