package ilp

import (
	"container/heap"
	"math"
)

// Solve optimizes the model. Models with binary variables are solved by
// best-first branch and bound over LP relaxations; pure LPs are solved
// directly. The returned Solution is provably optimal when Status is
// Optimal.
func (m *Model) Solve() (*Solution, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	hasInt := false
	for _, v := range m.vars {
		if v.integer {
			hasInt = true
			break
		}
	}
	if !hasInt {
		r := m.solveRelaxation(nil)
		return &Solution{Status: r.status, Objective: r.obj, Values: r.x, Nodes: 1}, nil
	}
	return m.branchAndBound()
}

// bbNode is one open subproblem: a set of binary fixings plus the parent
// relaxation bound used for best-first ordering.
type bbNode struct {
	fixed map[VarID]float64
	bound float64 // relaxation bound in minimization sense
	depth int
}

type nodeHeap []*bbNode

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	return h[i].depth > h[j].depth // deeper first on ties: reach incumbents sooner
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*bbNode)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func (m *Model) branchAndBound() (*Solution, error) {
	// Internally minimize; flip at the end if maximizing.
	toMin := func(obj float64) float64 {
		if m.sense == Maximize {
			return -obj
		}
		return obj
	}

	incumbentObj := math.Inf(1)
	var incumbentX []float64
	nodes := 0

	open := &nodeHeap{}
	heap.Init(open)
	heap.Push(open, &bbNode{fixed: map[VarID]float64{}, bound: math.Inf(-1)})

	sawFeasibleLP := false
	for open.Len() > 0 {
		node := heap.Pop(open).(*bbNode)
		if node.bound >= incumbentObj-1e-9 {
			continue // cannot improve on the incumbent
		}
		nodes++
		r := m.solveRelaxation(node.fixed)
		switch r.status {
		case Infeasible:
			continue
		case Unbounded:
			// A relaxation unbounded below with binaries still free can
			// only come from continuous variables; the MILP is unbounded.
			return &Solution{Status: Unbounded, Nodes: nodes}, nil
		}
		sawFeasibleLP = true
		bound := toMin(r.obj)
		if bound >= incumbentObj-1e-9 {
			continue
		}
		// Pick the branching variable: among fractional binaries, prefer
		// the one with the largest objective impact (scaled by how
		// fractional it is) — on fixed-charge instances this branches on
		// the area-carrying indicator variables first, which tightens
		// the bound fastest.
		branch := VarID(-1)
		bestScore := 0.0
		for j, v := range m.vars {
			if !v.integer {
				continue
			}
			if _, ok := node.fixed[VarID(j)]; ok {
				continue
			}
			frac := math.Abs(r.x[j] - math.Round(r.x[j]))
			if frac <= intEps {
				continue
			}
			score := frac * (1 + math.Abs(v.obj))
			if branch < 0 || score > bestScore {
				bestScore = score
				branch = VarID(j)
			}
		}
		if branch < 0 {
			// Integral: candidate incumbent. Round binaries exactly.
			x := make([]float64, len(r.x))
			copy(x, r.x)
			for j, v := range m.vars {
				if v.integer {
					x[j] = math.Round(x[j])
				}
			}
			if bound < incumbentObj {
				incumbentObj = bound
				incumbentX = x
			}
			continue
		}
		for _, val := range [...]float64{1, 0} {
			child := &bbNode{
				fixed: make(map[VarID]float64, len(node.fixed)+1),
				bound: bound,
				depth: node.depth + 1,
			}
			for k, v := range node.fixed {
				child.fixed[k] = v
			}
			child.fixed[branch] = val
			heap.Push(open, child)
		}
	}

	if incumbentX == nil {
		st := Infeasible
		if sawFeasibleLP {
			// LP-feasible but no integral point: still infeasible as a MILP.
			st = Infeasible
		}
		return &Solution{Status: st, Nodes: nodes}, nil
	}
	obj := incumbentObj
	if m.sense == Maximize {
		obj = -obj
	}
	return &Solution{Status: Optimal, Objective: obj, Values: incumbentX, Nodes: nodes}, nil
}
