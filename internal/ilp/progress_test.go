package ilp

import (
	"context"
	"math"
	"testing"

	"partita/internal/budget"
)

// oddCycleCover builds a weighted vertex-cover model over an odd cycle.
// Its LP relaxation is fully fractional (all 0.5), so the opportunistic
// rounding pass seeds a deliberately poor incumbent that branch and
// bound then improves several times — exercising the progress stream.
func oddCycleCover(costs []float64) (*Model, []VarID) {
	m := NewModel(Minimize)
	n := len(costs)
	xs := make([]VarID, n)
	for i, c := range costs {
		xs[i] = m.AddBinary("x", c)
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		m.AddConstraint("edge", []Term{{Var: xs[i], Coef: 1}, {Var: xs[j], Coef: 1}}, GE, 1)
	}
	return m, xs
}

func TestOnIncumbentMonotonicImprovement(t *testing.T) {
	m, _ := oddCycleCover([]float64{3, 5, 4, 6, 2, 7, 3, 4, 5})
	var events []Progress
	m.OnIncumbent(func(p Progress) { events = append(events, p) })
	sol, err := m.SolveCtx(context.Background(), budget.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if len(events) == 0 {
		t.Fatal("no incumbent events fired")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Objective >= events[i-1].Objective {
			t.Errorf("event %d objective %g does not improve on %g",
				i, events[i].Objective, events[i-1].Objective)
		}
		if events[i].Nodes < events[i-1].Nodes {
			t.Errorf("event %d node count %d went backwards from %d",
				i, events[i].Nodes, events[i-1].Nodes)
		}
	}
	last := events[len(events)-1]
	if math.Abs(last.Objective-sol.Objective) > 1e-6 {
		t.Errorf("last event objective %g != final objective %g", last.Objective, sol.Objective)
	}
	for i, e := range events {
		if e.Bound > e.Objective+1e-9 {
			t.Errorf("event %d bound %g exceeds its objective %g", i, e.Bound, e.Objective)
		}
		if e.Nodes <= 0 {
			t.Errorf("event %d has non-positive node count %d", i, e.Nodes)
		}
		if g := e.Gap(); g < 0 {
			t.Errorf("event %d gap %g < 0", i, g)
		}
	}
}

func TestOnIncumbentMaximizeSense(t *testing.T) {
	// Maximize a knapsack; events must arrive in increasing order with
	// bounds at or above each objective.
	m := NewModel(Maximize)
	vals := []float64{6, 5, 4, 3}
	wts := []float64{5, 4, 3, 2}
	var terms []Term
	for i, v := range vals {
		x := m.AddBinary("x", v)
		terms = append(terms, Term{Var: x, Coef: wts[i]})
	}
	m.AddConstraint("cap", terms, LE, 7)
	var events []Progress
	m.OnIncumbent(func(p Progress) { events = append(events, p) })
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if len(events) == 0 {
		t.Fatal("no incumbent events fired")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Objective <= events[i-1].Objective {
			t.Errorf("event %d objective %g does not improve on %g",
				i, events[i].Objective, events[i-1].Objective)
		}
	}
	for i, e := range events {
		if e.Bound < e.Objective-1e-9 {
			t.Errorf("event %d bound %g below objective %g (maximize)", i, e.Bound, e.Objective)
		}
	}
}

func TestOnIncumbentAnytimeStop(t *testing.T) {
	// With a one-node budget the solve stops early; any events that did
	// fire must still be consistent with the returned incumbent.
	// Uniform costs make the root relaxation's unique optimum the
	// all-0.5 point, so the solve cannot finish at the root node.
	m, _ := oddCycleCover([]float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1})
	var events []Progress
	m.OnIncumbent(func(p Progress) { events = append(events, p) })
	sol, err := m.SolveCtx(context.Background(), budget.Budget{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Feasible {
		t.Fatalf("status = %v, want feasible (anytime)", sol.Status)
	}
	if len(events) == 0 {
		t.Fatal("expected the rounding pass to report at least one incumbent")
	}
	last := events[len(events)-1]
	if math.Abs(last.Objective-sol.Objective) > 1e-6 {
		t.Errorf("last event objective %g != anytime objective %g", last.Objective, sol.Objective)
	}
}
