// Package ilp provides a small, self-contained mixed 0-1 integer linear
// programming toolkit: a dense two-phase primal simplex solver for linear
// relaxations and a best-first branch-and-bound driver for binary decision
// variables.
//
// It exists so that the S-instruction selection problem of Choi et al.
// (DAC 1999) can be solved exactly without any external solver. Problem
// instances in that domain are small (tens of binary variables, tens of
// constraints), so a dense tableau and node-local re-solves are more than
// fast enough.
package ilp

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Sense selects the optimization direction of a Model.
type Sense int

const (
	// Minimize asks for the least objective value.
	Minimize Sense = iota
	// Maximize asks for the greatest objective value.
	Maximize
)

// Rel is the relation of a linear constraint to its right-hand side.
type Rel int

const (
	// LE constrains the row to be ≤ rhs.
	LE Rel = iota
	// GE constrains the row to be ≥ rhs.
	GE
	// EQ constrains the row to be = rhs.
	EQ
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return fmt.Sprintf("Rel(%d)", int(r))
}

// VarID names a variable within its Model. IDs are dense indices assigned
// in AddVar order.
type VarID int

// Term is one coefficient·variable product of a linear expression.
type Term struct {
	Var  VarID
	Coef float64
}

// variable is the internal record for one decision variable.
type variable struct {
	name    string
	lo, hi  float64 // bounds; hi may be +Inf
	obj     float64
	integer bool // branch-and-bound treats integer vars as binaries in [lo,hi]
}

// constraint is one linear row of the model.
type constraint struct {
	name  string
	terms []Term
	rel   Rel
	rhs   float64
}

// Model accumulates variables and constraints and can be solved either as
// a pure LP (relaxation) or as a mixed 0-1 program.
type Model struct {
	sense       Sense
	vars        []variable
	cons        []constraint
	onIncumbent func(Progress)
	onBound     func(Progress)
	warmX       []float64
}

// Progress describes one anytime event of a branch-and-bound solve: a
// new incumbent was installed. Events for one solve arrive in strictly
// improving objective order (decreasing for Minimize, increasing for
// Maximize).
type Progress struct {
	// Objective is the incumbent's objective in the model's own sense.
	Objective float64
	// Bound is the best proven bound on the optimum at the time of the
	// event (a lower bound for Minimize, upper for Maximize).
	Bound float64
	// Nodes is the number of branch-and-bound nodes explored so far.
	Nodes int
	// Values is a snapshot of the incumbent's variable assignment (the
	// callback owns the copy), so anytime consumers — the racing
	// portfolio above all — can act on the configuration itself rather
	// than just its objective.
	Values []float64
}

// Gap reports the event's relative optimality gap
// |Objective − Bound| / max(1, |Objective|), or +Inf when the bound is
// not finite.
func (p Progress) Gap() float64 {
	if math.IsInf(p.Bound, 0) || math.IsNaN(p.Bound) {
		return math.Inf(1)
	}
	return math.Abs(p.Objective-p.Bound) / math.Max(1, math.Abs(p.Objective))
}

// OnIncumbent registers f to be invoked synchronously from SolveCtx each
// time the branch-and-bound search installs a new incumbent. The
// callback runs on the solving goroutine — it must be fast and must not
// call back into the model. Pure-LP solves (no integer variables) emit
// no events. Passing nil removes the callback.
func (m *Model) OnIncumbent(f func(Progress)) { m.onIncumbent = f }

// OnBound registers f to be invoked synchronously each time the
// branch-and-bound search tightens the proven global bound on the
// optimum (best-first search raises it monotonically as nodes pop).
// Events carry the bound, the incumbent objective at the time (+Inf in
// minimization sense while no incumbent exists), and no Values — they
// report proof progress, not a new configuration. Consumers that only
// need the incumbent stream should keep using OnIncumbent; this
// callback is for anytime consumers, the racing portfolio above all,
// whose acceptability test tightens with every proven bound. Same
// contract as OnIncumbent: fast, no re-entry, nil removes it.
func (m *Model) OnBound(f func(Progress)) { m.onBound = f }

// SetWarmStart supplies a candidate point (one value per variable, in
// Var order) installed as the initial incumbent of the next
// branch-and-bound solve. The point is validated first — integer
// variables are snapped exactly, then every bound and constraint is
// checked — and silently ignored when it does not fit the model or is
// infeasible: a warm start is a hint, never an input. A valid warm
// start cannot change the final Status or Objective of an exhaustive
// solve; it only tightens pruning from the first node, and under a
// budget the anytime result can only be as good or better. Installing
// the seed fires no OnIncumbent event — the callback stream reports
// discoveries of this solve, not values carried in from a previous one.
// Passing nil clears the warm start. Pure-LP solves ignore it.
func (m *Model) SetWarmStart(x []float64) { m.warmX = x }

// NewModel returns an empty model with the given optimization sense.
func NewModel(sense Sense) *Model {
	return &Model{sense: sense}
}

// NumVars reports the number of variables added so far.
func (m *Model) NumVars() int { return len(m.vars) }

// NumConstraints reports the number of constraint rows added so far.
func (m *Model) NumConstraints() int { return len(m.cons) }

// AddVar adds a continuous variable with bounds [lo, hi] (hi may be
// math.Inf(1)) and the given objective coefficient.
func (m *Model) AddVar(name string, lo, hi, obj float64) VarID {
	m.vars = append(m.vars, variable{name: name, lo: lo, hi: hi, obj: obj})
	return VarID(len(m.vars) - 1)
}

// AddBinary adds a 0-1 decision variable with the given objective
// coefficient.
func (m *Model) AddBinary(name string, obj float64) VarID {
	m.vars = append(m.vars, variable{name: name, lo: 0, hi: 1, obj: obj, integer: true})
	return VarID(len(m.vars) - 1)
}

// AddConstraint appends the row Σ terms rel rhs. Terms may repeat a
// variable; coefficients are accumulated.
func (m *Model) AddConstraint(name string, terms []Term, rel Rel, rhs float64) {
	own := make([]Term, len(terms))
	copy(own, terms)
	m.cons = append(m.cons, constraint{name: name, terms: own, rel: rel, rhs: rhs})
}

// VarName reports the name a variable was declared with.
func (m *Model) VarName(v VarID) string { return m.vars[v].name }

// Status describes the outcome of a solve.
type Status int

const (
	// Optimal means a provably optimal solution was found.
	Optimal Status = iota
	// Infeasible means no assignment satisfies the constraints.
	Infeasible
	// Unbounded means the objective can be improved without limit.
	Unbounded
	// Feasible means the solve stopped on a resource budget with a valid
	// incumbent that is not proven optimal; Solution.Bound brackets how
	// far from optimal it can be.
	Feasible
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Feasible:
		return "feasible"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of solving a Model.
type Solution struct {
	Status    Status
	Objective float64
	// Values holds one entry per variable, indexed by VarID.
	Values []float64
	// Nodes is the number of branch-and-bound nodes explored (1 for a
	// pure LP solve).
	Nodes int
	// Bound is the best proven bound on the optimal objective in the
	// model's own sense: a lower bound for Minimize, an upper bound for
	// Maximize. Equal to Objective when Status is Optimal; may be
	// infinite when the solve stopped before the root relaxation
	// finished.
	Bound float64
	// Stopped records why an anytime solve gave up (wrapping one of the
	// budget package sentinels); nil when the solve ran to completion.
	Stopped error
	// Stats carries low-level search counters (LP solves by kind, pivot
	// counts, work-stealing traffic); purely informational.
	Stats SearchStats
}

// Gap reports the relative optimality gap |Objective − Bound| /
// max(1, |Objective|): zero for proven-optimal solutions, positive for
// Feasible (anytime) ones, +Inf when no useful bound is known.
func (s *Solution) Gap() float64 {
	switch s.Status {
	case Optimal:
		return 0
	case Feasible:
		if math.IsInf(s.Bound, 0) || math.IsNaN(s.Bound) {
			return math.Inf(1)
		}
		return math.Abs(s.Objective-s.Bound) / math.Max(1, math.Abs(s.Objective))
	}
	return math.Inf(1)
}

// Value returns the solved value of v.
func (s *Solution) Value(v VarID) float64 { return s.Values[v] }

// IsSet reports whether binary variable v is 1 in the solution (within
// integer tolerance).
func (s *Solution) IsSet(v VarID) bool { return s.Values[v] > 0.5 }

// ErrNoVariables is returned when solving an empty model.
var ErrNoVariables = errors.New("ilp: model has no variables")

// Check verifies that a solution satisfies every constraint, bound, and
// integrality requirement of the model within tol, and that the reported
// objective matches the assignment. It covers both Optimal and Feasible
// (anytime) solutions and returns nil for the other statuses (there is
// nothing to check).
func (m *Model) Check(s *Solution, tol float64) error {
	if s == nil {
		return errors.New("ilp: nil solution")
	}
	if s.Status != Optimal && s.Status != Feasible {
		return nil
	}
	if len(s.Values) != len(m.vars) {
		return fmt.Errorf("ilp: solution has %d values for %d variables", len(s.Values), len(m.vars))
	}
	obj := 0.0
	for j, v := range m.vars {
		x := s.Values[j]
		if x < v.lo-tol || x > v.hi+tol {
			return fmt.Errorf("ilp: %s = %g violates bounds [%g, %g]", v.name, x, v.lo, v.hi)
		}
		if v.integer && math.Abs(x-math.Round(x)) > tol {
			return fmt.Errorf("ilp: %s = %g is not integral", v.name, x)
		}
		obj += v.obj * x
	}
	if math.Abs(obj-s.Objective) > tol*(1+math.Abs(obj)) {
		return fmt.Errorf("ilp: reported objective %g differs from recomputed %g", s.Objective, obj)
	}
	for _, c := range m.cons {
		sum := 0.0
		for _, t := range c.terms {
			sum += t.Coef * s.Values[t.Var]
		}
		scale := 1 + math.Abs(c.rhs)
		switch c.rel {
		case LE:
			if sum > c.rhs+tol*scale {
				return fmt.Errorf("ilp: constraint %q violated: %g > %g", c.name, sum, c.rhs)
			}
		case GE:
			if sum < c.rhs-tol*scale {
				return fmt.Errorf("ilp: constraint %q violated: %g < %g", c.name, sum, c.rhs)
			}
		case EQ:
			if math.Abs(sum-c.rhs) > tol*scale {
				return fmt.Errorf("ilp: constraint %q violated: %g != %g", c.name, sum, c.rhs)
			}
		}
	}
	return nil
}

// String renders the model in an LP-file-like format, for debugging and
// golden tests.
func (m *Model) String() string {
	var b strings.Builder
	if m.sense == Minimize {
		b.WriteString("min ")
	} else {
		b.WriteString("max ")
	}
	for i, v := range m.vars {
		if i > 0 {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "%g %s", v.obj, v.name)
	}
	b.WriteString("\ns.t.\n")
	for _, c := range m.cons {
		fmt.Fprintf(&b, "  %s: ", c.name)
		for i, t := range c.terms {
			if i > 0 {
				b.WriteString(" + ")
			}
			fmt.Fprintf(&b, "%g %s", t.Coef, m.vars[t.Var].name)
		}
		fmt.Fprintf(&b, " %s %g\n", c.rel, c.rhs)
	}
	for _, v := range m.vars {
		kind := "cont"
		if v.integer {
			kind = "bin"
		}
		fmt.Fprintf(&b, "  %s in [%g, %g] (%s)\n", v.name, v.lo, v.hi, kind)
	}
	return b.String()
}

// validate checks structural sanity of the model before solving.
func (m *Model) validate() error {
	if len(m.vars) == 0 {
		return ErrNoVariables
	}
	for _, c := range m.cons {
		for _, t := range c.terms {
			if t.Var < 0 || int(t.Var) >= len(m.vars) {
				return fmt.Errorf("ilp: constraint %q references unknown variable %d", c.name, t.Var)
			}
			if math.IsNaN(t.Coef) || math.IsInf(t.Coef, 0) {
				return fmt.Errorf("ilp: constraint %q has non-finite coefficient", c.name)
			}
		}
		if math.IsNaN(c.rhs) || math.IsInf(c.rhs, 0) {
			return fmt.Errorf("ilp: constraint %q has non-finite rhs", c.name)
		}
	}
	for _, v := range m.vars {
		if v.lo > v.hi {
			return fmt.Errorf("ilp: variable %q has empty domain [%g, %g]", v.name, v.lo, v.hi)
		}
		if math.IsNaN(v.obj) || math.IsInf(v.obj, 0) {
			return fmt.Errorf("ilp: variable %q has non-finite objective coefficient", v.name)
		}
	}
	return nil
}
