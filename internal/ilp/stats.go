package ilp

// SearchStats aggregates low-level solver counters across one solve.
// They exist so benchmarks and operators can explain *why* a wall-clock
// number moved — a speedup regression with rising ColdLPs points at the
// warm-start path, one with rising StealScans at work distribution —
// and cost nothing on the hot path beyond integer adds on memory each
// worker already owns.
type SearchStats struct {
	// ColdLPs counts relaxations solved from scratch by the two-phase
	// primal simplex; WarmLPs counts relaxations re-solved by the
	// dual-simplex warm start from a previously factored basis.
	ColdLPs int64
	WarmLPs int64
	// PrimalPivots and DualPivots count simplex pivots by phase kind.
	PrimalPivots int64
	DualPivots   int64
	// Steals counts nodes taken from another worker's deque; StealScans
	// counts victim deques inspected while looking (a high
	// scans-per-steal ratio means workers are starving).
	Steals     int64
	StealScans int64
	// Parks counts the times a worker went to sleep on the shared
	// condition variable because no node was available anywhere.
	Parks int64
}

// Add folds o into s.
func (s *SearchStats) Add(o SearchStats) {
	s.ColdLPs += o.ColdLPs
	s.WarmLPs += o.WarmLPs
	s.PrimalPivots += o.PrimalPivots
	s.DualPivots += o.DualPivots
	s.Steals += o.Steals
	s.StealScans += o.StealScans
	s.Parks += o.Parks
}

// LPs is the total relaxation count, warm and cold.
func (s SearchStats) LPs() int64 { return s.ColdLPs + s.WarmLPs }

// Pivots is the total simplex pivot count, primal and dual.
func (s SearchStats) Pivots() int64 { return s.PrimalPivots + s.DualPivots }
