package ilp

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"partita/internal/budget"
)

// parallelLevels are the worker counts the equivalence suite exercises.
// They intentionally exceed GOMAXPROCS on small runners: correctness
// must not depend on the workers actually running simultaneously, and
// the 16-worker level puts most workers in the parked/stealing states
// for the whole run on small trees.
var parallelLevels = []int{2, 4, 8, 16}

// TestParallelEquivalenceFuzzCorpus solves 20 seeded fuzz-corpus models
// serially and at every parallel level and requires agreement on Status
// and (for solved models) Objective to 1e-6, with every parallel
// solution passing full verification.
func TestParallelEquivalenceFuzzCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(420))
	solved := 0
	for c := 0; c < 20; c++ {
		data := make([]byte, 4+rng.Intn(60))
		rng.Read(data)
		m, ok := decodeModel(data)
		if !ok {
			continue
		}
		ref, err := m.SolveCtx(context.Background(), budget.Budget{})
		if err != nil {
			t.Fatalf("model %d: serial solve failed: %v\n%s", c, err, m)
		}
		for _, w := range parallelLevels {
			got, err := m.SolveCtx(context.Background(), budget.Budget{Parallelism: w})
			if err != nil {
				t.Fatalf("model %d P=%d: parallel solve failed: %v\n%s", c, w, err, m)
			}
			if got.Status != ref.Status {
				t.Fatalf("model %d P=%d: status %v, serial %v\n%s", c, w, got.Status, ref.Status, m)
			}
			if ref.Status == Optimal {
				if math.Abs(got.Objective-ref.Objective) > 1e-6 {
					t.Fatalf("model %d P=%d: objective %g, serial %g\n%s", c, w, got.Objective, ref.Objective, m)
				}
				if err := m.Check(got, 1e-6); err != nil {
					t.Fatalf("model %d P=%d: solution fails Check: %v\n%s", c, w, err, m)
				}
			}
		}
		if ref.Status == Optimal {
			solved++
		}
	}
	if solved < 5 {
		t.Fatalf("only %d of 20 corpus models solved Optimal; corpus too degenerate to be meaningful", solved)
	}
}

// TestParallelEquivalenceAdversarial runs the pruning-hostile fixed
// charge instance (hundreds of nodes) at every level: same proven
// optimum, and Bound == Objective on exact results.
func TestParallelEquivalenceAdversarial(t *testing.T) {
	for _, n := range []int{6, 9, 12} {
		want := adversarialOptimum(n)
		for _, w := range parallelLevels {
			m := adversarialModel(n)
			s, err := m.SolveCtx(context.Background(), budget.Budget{Parallelism: w})
			if err != nil {
				t.Fatalf("n=%d P=%d: %v", n, w, err)
			}
			if s.Status != Optimal {
				t.Fatalf("n=%d P=%d: status %v, want Optimal", n, w, s.Status)
			}
			if math.Abs(s.Objective-want) > 1e-6 {
				t.Fatalf("n=%d P=%d: objective %g, want %g", n, w, s.Objective, want)
			}
			if math.Abs(s.Bound-s.Objective) > 1e-6 {
				t.Errorf("n=%d P=%d: exact result has bound %g != objective %g", n, w, s.Bound, s.Objective)
			}
			if err := m.Check(s, 1e-6); err != nil {
				t.Errorf("n=%d P=%d: %v", n, w, err)
			}
			if s.Nodes <= 0 {
				t.Errorf("n=%d P=%d: nodes = %d, want > 0", n, w, s.Nodes)
			}
		}
	}
}

// TestParallelProgressMonotone holds the serial progress contract at
// parallelism 4 (run under -race in CI): objectives strictly improve,
// node counts never decrease, every event has Nodes > 0, bounds never
// cross the objective, and the last event matches the final result.
func TestParallelProgressMonotone(t *testing.T) {
	m := adversarialModel(12)
	var mu sync.Mutex
	var events []Progress
	m.OnIncumbent(func(p Progress) {
		mu.Lock()
		events = append(events, p)
		mu.Unlock()
	})
	s, err := m.SolveCtx(context.Background(), budget.Budget{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v, want Optimal", s.Status)
	}
	if len(events) == 0 {
		t.Fatal("no incumbent events fired")
	}
	for i, e := range events {
		if e.Nodes <= 0 {
			t.Errorf("event %d: nodes = %d, want > 0", i, e.Nodes)
		}
		// Maximize: bound is an upper bound on the objective.
		if e.Bound < e.Objective-1e-9 {
			t.Errorf("event %d: bound %g below objective %g", i, e.Bound, e.Objective)
		}
		if i == 0 {
			continue
		}
		if e.Objective <= events[i-1].Objective {
			t.Errorf("event %d objective %g does not improve on %g", i, e.Objective, events[i-1].Objective)
		}
		if e.Nodes < events[i-1].Nodes {
			t.Errorf("event %d nodes %d < previous %d", i, e.Nodes, events[i-1].Nodes)
		}
	}
	if last := events[len(events)-1]; math.Abs(last.Objective-s.Objective) > 1e-9 {
		t.Errorf("last event objective %g != final objective %g", last.Objective, s.Objective)
	}
}

// TestParallelAnytimeNodeLimit: a node budget at parallelism 4 either
// yields a verified Feasible incumbent whose bound brackets the true
// optimum, or the typed exhaustion error — never a silent wrong answer.
func TestParallelAnytimeNodeLimit(t *testing.T) {
	m := adversarialModel(20)
	s, err := m.SolveCtx(context.Background(), budget.Budget{MaxNodes: 40, Parallelism: 4})
	if err != nil {
		if !errors.Is(err, budget.ErrNodeLimit) {
			t.Fatalf("err = %v, want ErrNodeLimit", err)
		}
		return
	}
	if s.Status == Optimal {
		// 40 nodes cannot close this instance; Optimal would mean the
		// limit was ignored.
		t.Fatalf("status = Optimal under MaxNodes=40, want Feasible")
	}
	if s.Status != Feasible {
		t.Fatalf("status = %v, want Feasible", s.Status)
	}
	if !errors.Is(s.Stopped, budget.ErrNodeLimit) {
		t.Errorf("Stopped = %v, want ErrNodeLimit", s.Stopped)
	}
	if err := m.Check(s, 1e-6); err != nil {
		t.Errorf("incumbent fails verification: %v", err)
	}
	if opt := adversarialOptimum(20); s.Objective > opt+1e-9 || s.Bound < opt-1e-9 {
		t.Errorf("incumbent %g / bound %g do not bracket the optimum %g", s.Objective, s.Bound, opt)
	}
}

// TestParallelCancellation: an already-canceled context fails fast with
// the deadline sentinel at every parallelism level.
func TestParallelCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := adversarialModel(10)
	for _, w := range []int{1, 4} {
		if _, err := m.SolveCtx(ctx, budget.Budget{Parallelism: w}); !errors.Is(err, budget.ErrDeadline) {
			t.Errorf("P=%d: err = %v, want ErrDeadline", w, err)
		}
	}
}

// TestParallelInfeasible: infeasibility is proven identically in
// parallel.
func TestParallelInfeasible(t *testing.T) {
	for _, w := range []int{1, 4} {
		m := NewModel(Minimize)
		a := m.AddBinary("a", 1)
		b := m.AddBinary("b", 1)
		m.AddConstraint("sum", []Term{{Var: a, Coef: 1}, {Var: b, Coef: 1}}, GE, 3)
		s, err := m.SolveCtx(context.Background(), budget.Budget{Parallelism: w})
		if err != nil {
			t.Fatalf("P=%d: %v", w, err)
		}
		if s.Status != Infeasible {
			t.Errorf("P=%d: status = %v, want Infeasible", w, s.Status)
		}
	}
}

// TestWarmStartSeedsIncumbent: a valid warm start leaves the proven
// optimum untouched, fires no event for the seed itself, and every
// event it does fire beats the seed.
func TestWarmStartSeedsIncumbent(t *testing.T) {
	for _, w := range []int{1, 4} {
		ref := adversarialModel(10)
		s0, err := ref.SolveCtx(context.Background(), budget.Budget{})
		if err != nil || s0.Status != Optimal {
			t.Fatalf("reference solve: %v / %v", err, s0)
		}

		// Seed with a deliberately suboptimal feasible point: all zeros.
		m := adversarialModel(10)
		zero := make([]float64, len(s0.Values))
		m.SetWarmStart(zero)
		var events []Progress
		m.OnIncumbent(func(p Progress) { events = append(events, p) })
		bud := budget.Budget{}
		if w > 1 {
			bud.Parallelism = w
			m.OnIncumbent(nil) // the -race variant of this path is covered above
		}
		s, err := m.SolveCtx(context.Background(), bud)
		if err != nil {
			t.Fatalf("P=%d: %v", w, err)
		}
		if s.Status != Optimal || math.Abs(s.Objective-s0.Objective) > 1e-9 {
			t.Fatalf("P=%d: got %v/%g, want Optimal/%g", w, s.Status, s.Objective, s0.Objective)
		}
		for i, e := range events {
			if e.Nodes <= 0 {
				t.Errorf("P=%d event %d: nodes = %d (seed install must not fire)", w, i, e.Nodes)
			}
			if e.Objective <= 0 {
				t.Errorf("P=%d event %d: objective %g does not beat the zero seed", w, i, e.Objective)
			}
		}
	}
}

// TestWarmStartOptimalSeed: seeding with the optimum itself still
// terminates with the optimum (the search proves, rather than finds,
// the answer) at both parallelism levels.
func TestWarmStartOptimalSeed(t *testing.T) {
	ref := adversarialModel(8)
	s0, err := ref.SolveCtx(context.Background(), budget.Budget{})
	if err != nil || s0.Status != Optimal {
		t.Fatalf("reference solve: %v / %v", err, s0)
	}
	for _, w := range []int{1, 4} {
		m := adversarialModel(8)
		m.SetWarmStart(s0.Values)
		s, err := m.SolveCtx(context.Background(), budget.Budget{Parallelism: w})
		if err != nil {
			t.Fatalf("P=%d: %v", w, err)
		}
		if s.Status != Optimal || math.Abs(s.Objective-s0.Objective) > 1e-9 {
			t.Errorf("P=%d: got %v/%g, want Optimal/%g", w, s.Status, s.Objective, s0.Objective)
		}
		if err := m.Check(s, 1e-6); err != nil {
			t.Errorf("P=%d: %v", w, err)
		}
	}
}

// TestWarmStartInvalidIgnored: infeasible, mis-sized, or nil warm
// starts are ignored without changing the answer.
func TestWarmStartInvalidIgnored(t *testing.T) {
	ref := adversarialModel(6)
	s0, err := ref.SolveCtx(context.Background(), budget.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]float64{
		nil,
		{1}, // wrong length
		func() []float64 { // violates the cap constraint
			v := make([]float64, len(s0.Values))
			for i := range v {
				v[i] = 1
			}
			return v
		}(),
	}
	for i, seed := range bad {
		m := adversarialModel(6)
		m.SetWarmStart(seed)
		s, err := m.SolveCtx(context.Background(), budget.Budget{Parallelism: 2})
		if err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		if s.Status != Optimal || math.Abs(s.Objective-s0.Objective) > 1e-9 {
			t.Errorf("seed %d: got %v/%g, want Optimal/%g", i, s.Status, s.Objective, s0.Objective)
		}
	}
}

// TestFixSetChain pins down the parent-pointer fixing chain semantics:
// the nearest fixing on the path to the root wins, entries from a
// previously loaded node are cleared, and a nil fixSet has no fixings.
func TestFixSetChain(t *testing.T) {
	root := &bbNode{v: -1}
	a := &bbNode{parent: root, v: 0, val: 1, depth: 1}
	b := &bbNode{parent: a, v: 2, val: 0, depth: 2}
	c := &bbNode{parent: b, v: 0, val: 0, depth: 3} // re-fix v0: nearest wins

	fx := &fixSet{}
	fx.load(4, c)
	if v, ok := fx.get(0); !ok || v != 0 {
		t.Errorf("v0 = %v,%v; want 0 fixed (nearest fixing shadows the ancestor)", v, ok)
	}
	if v, ok := fx.get(2); !ok || v != 0 {
		t.Errorf("v2 = %v,%v; want 0 fixed", v, ok)
	}
	if fx.fixed(1) || fx.fixed(3) {
		t.Error("unfixed variables report fixed")
	}

	fx.load(4, a)
	if v, ok := fx.get(0); !ok || v != 1 {
		t.Errorf("after reload, v0 = %v,%v; want 1 fixed", v, ok)
	}
	if fx.fixed(2) {
		t.Error("stale fixing for v2 survived reload")
	}

	var nilFx *fixSet
	if nilFx.fixed(0) {
		t.Error("nil fixSet reports fixings")
	}
	if _, ok := nilFx.get(0); ok {
		t.Error("nil fixSet returns values")
	}
}

// TestParallelManyWorkersSmallTree: more workers than the tree has
// nodes must still terminate and agree (regression guard for the
// idle-worker wakeup logic).
func TestParallelManyWorkersSmallTree(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddBinary("x", 5)
	y := m.AddBinary("y", 3)
	m.AddConstraint("c", []Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, LE, 1)
	s, err := m.SolveCtx(context.Background(), budget.Budget{Parallelism: 16})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || s.Objective != 5 {
		t.Fatalf("got %v/%g, want Optimal/5", s.Status, s.Objective)
	}
}

// TestParallelRepeatability hammers one model repeatedly to give the
// race detector scheduling diversity; every run must prove the same
// objective.
func TestParallelRepeatability(t *testing.T) {
	want := adversarialOptimum(10)
	for i := 0; i < 8; i++ {
		m := adversarialModel(10)
		s, err := m.SolveCtx(context.Background(), budget.Budget{Parallelism: 4})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if s.Status != Optimal || math.Abs(s.Objective-want) > 1e-6 {
			t.Fatalf("run %d: got %v/%g, want Optimal/%g", i, s.Status, s.Objective, want)
		}
	}
}
