package ilp

import (
	"math"
	"testing"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLPSimpleMax(t *testing.T) {
	// max 3x + 5y ; x <= 4 ; 2y <= 12 ; 3x + 2y <= 18  -> x=2, y=6, obj=36
	m := NewModel(Maximize)
	x := m.AddVar("x", 0, math.Inf(1), 3)
	y := m.AddVar("y", 0, math.Inf(1), 5)
	m.AddConstraint("c1", []Term{{x, 1}}, LE, 4)
	m.AddConstraint("c2", []Term{{y, 2}}, LE, 12)
	m.AddConstraint("c3", []Term{{x, 3}, {y, 2}}, LE, 18)
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	if !almost(s.Objective, 36, 1e-6) {
		t.Errorf("objective = %g, want 36", s.Objective)
	}
	if !almost(s.Value(x), 2, 1e-6) || !almost(s.Value(y), 6, 1e-6) {
		t.Errorf("x=%g y=%g, want 2, 6", s.Value(x), s.Value(y))
	}
}

func TestLPMinWithGE(t *testing.T) {
	// min 2x + 3y ; x + y >= 10 ; x >= 2 (bound) -> y=8? min: put weight on x:
	// cost x cheaper, so x=10-... x+y>=10, x in [2,inf), y >= 0: best x=10,y=0 obj 20?
	// 2*10=20 vs x=2,y=8 -> 4+24=28. So x=10.
	m := NewModel(Minimize)
	x := m.AddVar("x", 2, math.Inf(1), 2)
	y := m.AddVar("y", 0, math.Inf(1), 3)
	m.AddConstraint("cover", []Term{{x, 1}, {y, 1}}, GE, 10)
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !almost(s.Objective, 20, 1e-6) {
		t.Errorf("objective = %g, want 20", s.Objective)
	}
	if !almost(s.Value(x), 10, 1e-6) {
		t.Errorf("x = %g, want 10", s.Value(x))
	}
}

func TestLPEquality(t *testing.T) {
	// min x + y ; x + 2y = 6 ; x - y = 0  -> x=y=2, obj 4
	m := NewModel(Minimize)
	x := m.AddVar("x", 0, math.Inf(1), 1)
	y := m.AddVar("y", 0, math.Inf(1), 1)
	m.AddConstraint("e1", []Term{{x, 1}, {y, 2}}, EQ, 6)
	m.AddConstraint("e2", []Term{{x, 1}, {y, -1}}, EQ, 0)
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !almost(s.Objective, 4, 1e-6) {
		t.Fatalf("status=%v obj=%g, want optimal 4", s.Status, s.Objective)
	}
	if !almost(s.Value(x), 2, 1e-6) || !almost(s.Value(y), 2, 1e-6) {
		t.Errorf("x=%g y=%g, want 2, 2", s.Value(x), s.Value(y))
	}
}

func TestLPInfeasible(t *testing.T) {
	m := NewModel(Minimize)
	x := m.AddVar("x", 0, 1, 1)
	m.AddConstraint("big", []Term{{x, 1}}, GE, 5)
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestLPUnbounded(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddVar("x", 0, math.Inf(1), 1)
	y := m.AddVar("y", 0, math.Inf(1), 1)
	m.AddConstraint("diff", []Term{{x, 1}, {y, -1}}, LE, 1)
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestLPUpperBounds(t *testing.T) {
	// max x + y with x <= 3, y <= 4 via variable bounds only.
	m := NewModel(Maximize)
	x := m.AddVar("x", 0, 3, 1)
	y := m.AddVar("y", 0, 4, 1)
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !almost(s.Objective, 7, 1e-6) {
		t.Fatalf("status=%v obj=%g, want optimal 7", s.Status, s.Objective)
	}
	_ = x
	_ = y
}

func TestLPShiftedLowerBounds(t *testing.T) {
	// min x+y with x in [5, 10], y in [3, inf), x + y >= 12.
	// Optimum: x=5 forced? cost equal; x+y = 12 binding; any split works,
	// objective must be 12.
	m := NewModel(Minimize)
	x := m.AddVar("x", 5, 10, 1)
	y := m.AddVar("y", 3, math.Inf(1), 1)
	m.AddConstraint("c", []Term{{x, 1}, {y, 1}}, GE, 12)
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !almost(s.Objective, 12, 1e-6) {
		t.Fatalf("status=%v obj=%g, want optimal 12", s.Status, s.Objective)
	}
	if s.Value(x) < 5-1e-9 || s.Value(x) > 10+1e-9 || s.Value(y) < 3-1e-9 {
		t.Errorf("solution violates bounds: x=%g y=%g", s.Value(x), s.Value(y))
	}
}

func TestLPDegenerate(t *testing.T) {
	// A classic cycling-prone instance; Bland's rule must terminate.
	m := NewModel(Minimize)
	x1 := m.AddVar("x1", 0, math.Inf(1), -0.75)
	x2 := m.AddVar("x2", 0, math.Inf(1), 150)
	x3 := m.AddVar("x3", 0, math.Inf(1), -0.02)
	x4 := m.AddVar("x4", 0, math.Inf(1), 6)
	m.AddConstraint("r1", []Term{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, LE, 0)
	m.AddConstraint("r2", []Term{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, LE, 0)
	m.AddConstraint("r3", []Term{{x3, 1}}, LE, 1)
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	if !almost(s.Objective, -0.05, 1e-6) {
		t.Errorf("objective = %g, want -0.05", s.Objective)
	}
}

func TestLPLargeMagnitudes(t *testing.T) {
	// Magnitudes like the JPEG gains (~3.7e7) must not break feasibility
	// detection.
	m := NewModel(Minimize)
	x := m.AddVar("x", 0, 1, 27)
	y := m.AddVar("y", 0, 1, 11)
	m.AddConstraint("gain", []Term{{x, 37717440}, {y, 37081088}}, GE, 37282645)
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	// LP optimum is fractional on the cheaper ratio variable.
	if s.Objective <= 0 || s.Objective > 27+11 {
		t.Errorf("objective = %g out of range", s.Objective)
	}
}

func TestLPEmptyModel(t *testing.T) {
	m := NewModel(Minimize)
	if _, err := m.Solve(); err == nil {
		t.Fatal("expected error for empty model")
	}
}

func TestLPRedundantEqualities(t *testing.T) {
	// Duplicate equality rows leave an artificial basic at zero; the
	// drive-out path must cope.
	m := NewModel(Minimize)
	x := m.AddVar("x", 0, math.Inf(1), 1)
	y := m.AddVar("y", 0, math.Inf(1), 2)
	m.AddConstraint("e1", []Term{{x, 1}, {y, 1}}, EQ, 4)
	m.AddConstraint("e2", []Term{{x, 2}, {y, 2}}, EQ, 8)
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !almost(s.Objective, 4, 1e-6) {
		t.Fatalf("status=%v obj=%g, want optimal 4 (x=4, y=0)", s.Status, s.Objective)
	}
}

func TestModelStringSmoke(t *testing.T) {
	m := NewModel(Minimize)
	x := m.AddBinary("x", 3)
	m.AddConstraint("c", []Term{{x, 1}}, GE, 1)
	if got := m.String(); got == "" {
		t.Error("String() returned empty")
	}
}
