// Package sim is a cycle-level simulator of the kernel+IP system: it
// executes one accelerated s-call (or a whole selected configuration)
// by stepping the actual transfer mechanics — kernel transfer beats, IP
// pipeline occupancy, buffer fill/drain, memory contention — rather than
// evaluating the closed-form equations of package iface.
//
// Its purpose is validation (experiment V1): the analytical model that
// the selector trusts (MAX(T_IP, T_IF) for unbuffered interfaces,
// T_IF_IN + MAX(T_IP, T_B) + T_IF_OUT − MIN(T_IP, T_C) for buffered
// ones) must agree with the mechanistic timeline. It also produces the
// kernel/IP occupancy spans that reproduce the parallel-execution
// picture of the paper's Fig. 2.
package sim

import (
	"fmt"

	"partita/internal/budget"
	"partita/internal/iface"
	"partita/internal/ip"
)

// Unit identifies a hardware unit in the trace.
type Unit int

const (
	UnitKernel Unit = iota
	UnitIP
	UnitIface // DMA / buffer controller
)

func (u Unit) String() string {
	switch u {
	case UnitKernel:
		return "kernel"
	case UnitIP:
		return "ip"
	case UnitIface:
		return "iface"
	}
	return fmt.Sprintf("unit(%d)", int(u))
}

// Span is one busy interval of a unit.
type Span struct {
	Unit  Unit
	From  int64
	To    int64
	Label string
}

// Result is the outcome of simulating one s-call execution.
type Result struct {
	// Cycles is the wall-clock execution time of the S-instruction
	// (kernel-perceived: from issue to results-in-memory, minus any
	// parallel-code cycles the kernel used productively).
	Cycles int64
	// KernelBusy counts cycles the kernel spent on interface work.
	KernelBusy int64
	// IPBusy counts cycles the IP computed.
	IPBusy int64
	// Overlap counts kernel cycles productively spent on parallel code
	// while the IP ran.
	Overlap int64
	// Trace carries the occupancy spans (Fig. 2 reproduction).
	Trace []Span
}

// Config describes one accelerated s-call to simulate.
type Config struct {
	IP    *ip.IP
	Type  iface.Type
	Shape iface.Shape
}

// maxShapeItems bounds the per-invocation data volume the mechanistic
// simulator will step through. The transfer loops run O(items) beats, so
// an absurd shape (corrupt catalog, adversarial input) must be rejected
// up front instead of spinning for minutes.
const maxShapeItems = 1 << 20

// RunSCall simulates one S-instruction execution.
func RunSCall(cfg Config) (Result, error) {
	if err := validateConfig(cfg); err != nil {
		return Result{}, err
	}
	switch cfg.Type {
	case iface.Type0, iface.Type2:
		return runUnbuffered(cfg)
	case iface.Type1, iface.Type3:
		return runBuffered(cfg)
	}
	return Result{}, fmt.Errorf("sim: unknown interface type %v", cfg.Type)
}

// validateConfig rejects configurations the transfer loops cannot step
// safely: nil IPs, non-positive port rates (divide-by-zero in the beat
// computation), and shapes outside the simulator's step budget.
func validateConfig(cfg Config) error {
	if cfg.IP == nil {
		return fmt.Errorf("sim: nil IP")
	}
	if cfg.IP.InRate <= 0 || cfg.IP.OutRate <= 0 {
		return fmt.Errorf("sim: IP %s has non-positive data rate (in=%d, out=%d)",
			cfg.IP.ID, cfg.IP.InRate, cfg.IP.OutRate)
	}
	s := cfg.Shape
	if s.NIn < 0 || s.NOut < 0 {
		return fmt.Errorf("sim: negative shape (NIn=%d, NOut=%d)", s.NIn, s.NOut)
	}
	if s.NIn > maxShapeItems || s.NOut > maxShapeItems {
		return fmt.Errorf("sim: shape (NIn=%d, NOut=%d) exceeds the %d-item step budget: %w",
			s.NIn, s.NOut, maxShapeItems, budget.ErrStepLimit)
	}
	if s.NOut > 0 && s.NIn == 0 {
		return fmt.Errorf("sim: shape produces %d outputs from no inputs", s.NOut)
	}
	return nil
}

// runUnbuffered steps the direct-transfer interfaces: the kernel (type 0)
// or the DMA FSM (type 2) moves up to one X-item and one Y-item per
// transfer beat; the IP accepts inputs at its (possibly slow-clocked)
// rate and emits outputs Latency cycles later. Because the data memories
// are occupied on every beat, the kernel cannot run other code: the
// whole duration is attributed to the S-instruction.
func runUnbuffered(cfg Config) (Result, error) {
	b := cfg.IP
	s := cfg.Shape
	div := int64(1)
	beat := int64(1) // cycles per transfer beat: 1 for the DMA FSM
	if cfg.Type == iface.Type0 {
		// The software template sustains one in/out pair per loop
		// iteration; its packed body is ~4 words, and an IP faster than
		// that must be clock-divided.
		tmpl, err := iface.SoftwareTemplate(iface.Type0, b, s)
		if err != nil {
			return Result{}, err
		}
		words := int64(tmpl.Words)
		if words <= 0 {
			words = 4
		}
		beat = 4
		if b.InRate > 4 {
			beat = int64(b.InRate)
		}
		if b.InRate < 4 {
			div = int64((4 + b.InRate - 1) / b.InRate)
		}
	}

	perf := 1.0
	if b.PerfFactor > 1 {
		perf = b.PerfFactor
	}
	scale := func(v int64) int64 { return int64(float64(v)*perf + 0.5) }
	rateIn := scale(int64(b.InRate) * div)
	rateOut := scale(int64(b.OutRate) * div)
	latency := scale(int64(b.Latency) * div)

	var t int64
	sent, stored := 0, 0
	const never = int64(1) << 62
	// readyAt[k] is when output k can be read from the IP. Output k
	// depends on the first ceil((k+1)·NIn/NOut) inputs: a streaming
	// block (NIn == NOut) pipelines 1:1, a reducer (NOut < NIn) emits
	// only after its whole input window arrived.
	readyAt := make([]int64, s.NOut)
	for i := range readyAt {
		readyAt[i] = never
	}
	lastInputFor := func(oi int) int {
		need := ((oi + 1) * s.NIn) / s.NOut
		if need < 1 {
			need = 1
		}
		if need > s.NIn {
			need = s.NIn
		}
		return need
	}
	nextAccept := int64(0)
	var ipStart, ipEnd int64 = -1, -1

	const maxSteps = 1 << 24
	for steps := 0; stored < s.NOut; steps++ {
		if steps > maxSteps {
			return Result{}, fmt.Errorf("sim: unbuffered transfer did not converge (%d/%d stored): %w",
				stored, s.NOut, budget.ErrStepLimit)
		}
		t += beat
		// Send up to two items this beat, respecting the IP input rate.
		for k := 0; k < 2 && sent < s.NIn; k++ {
			if t < nextAccept {
				break
			}
			if ipStart < 0 {
				ipStart = t
			}
			sent++
			for oi := 0; oi < s.NOut; oi++ {
				if readyAt[oi] == never && lastInputFor(oi) == sent {
					// Successive outputs of the same window drain at
					// the output rate.
					readyAt[oi] = t + latency
					for oj := oi + 1; oj < s.NOut && lastInputFor(oj) == sent; oj++ {
						readyAt[oj] = readyAt[oj-1] + rateOut
					}
				}
			}
			nextAccept = t + rateIn
		}
		// Store up to two ready outputs this beat.
		for k := 0; k < 2 && stored < s.NOut; k++ {
			if readyAt[stored] <= t {
				stored++
				ipEnd = t
			} else {
				break
			}
		}
	}
	res := Result{
		Cycles:     t,
		KernelBusy: t, // kernel (or its memories) occupied throughout
		IPBusy:     ipEnd - ipStart,
	}
	res.Trace = []Span{
		{Unit: UnitKernel, From: 0, To: t, Label: "transfer loop"},
		{Unit: UnitIP, From: ipStart, To: ipEnd, Label: "compute"},
	}
	if cfg.Type == iface.Type2 {
		res.KernelBusy = 0 // FSM does the work, but memory contention
		res.Trace[0] = Span{Unit: UnitIface, From: 0, To: t, Label: "DMA"}
	}
	return res, nil
}

// runBuffered steps the buffered interfaces: fill the in-buffer, start
// the IP (fed by the buffer controller at native rate), run parallel
// code in the kernel while the IP computes, then drain the out-buffer.
func runBuffered(cfg Config) (Result, error) {
	b := cfg.IP
	s := cfg.Shape

	// Fill: the kernel (type 1) moves one X/Y pair per template
	// iteration; the FSM (type 3) one pair per cycle.
	pairsIn := int64((s.NIn + 1) / 2)
	pairsOut := int64((s.NOut + 1) / 2)
	var fill, drain int64
	if cfg.Type == iface.Type1 {
		tmpl, err := iface.SoftwareTemplate(iface.Type1, b, s)
		if err != nil {
			return Result{}, err
		}
		fill = tmpl.FillCycles
		drain = tmpl.DrainCycles
	} else {
		fill = pairsIn + 1
		drain = pairsOut + 1
	}

	// IP window: buffer controller feeds at native rate; the slower of
	// the IP pipeline and the buffer streams bounds the window.
	tip := b.ExecCycles(s.NIn, s.NOut)
	tb := int64(s.NIn) * int64(b.InRate)
	if o := int64(s.NOut) * int64(b.OutRate); o > tb {
		tb = o
	}
	window := tip
	if tb > window {
		window = tb
	}

	// Parallel code: the kernel computes during the IP window, bounded
	// by the available PC and by the IP compute time.
	overlap := s.TC
	if overlap > tip {
		overlap = tip
	}

	t := fill + window + drain
	res := Result{
		Cycles:     t - overlap,
		KernelBusy: fill + drain,
		IPBusy:     tip,
		Overlap:    overlap,
		Trace: []Span{
			{Unit: UnitKernel, From: 0, To: fill, Label: "fill in-buffer"},
			{Unit: UnitIP, From: fill, To: fill + window, Label: "compute"},
			{Unit: UnitKernel, From: fill, To: fill + overlap, Label: "parallel code"},
			{Unit: UnitKernel, From: fill + window, To: t, Label: "drain out-buffer"},
		},
	}
	return res, nil
}
