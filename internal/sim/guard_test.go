package sim

import (
	"errors"
	"testing"

	"partita/internal/budget"
	"partita/internal/iface"
	"partita/internal/ip"
)

func simIP() *ip.IP {
	return &ip.IP{ID: "B", Name: "B", Funcs: []string{"f"}, InPorts: 1, OutPorts: 1,
		InRate: 2, OutRate: 2, Latency: 4, Pipelined: true, Area: 3}
}

// Corrupt or adversarial configurations are rejected up front instead
// of dividing by zero or spinning through the transfer loops.
func TestRunSCallRejectsBadConfigs(t *testing.T) {
	shape := iface.Shape{NIn: 8, NOut: 8}
	cases := map[string]Config{
		"nil ip":        {IP: nil, Type: iface.Type0, Shape: shape},
		"zero in rate":  {IP: &ip.IP{ID: "Z", InRate: 0, OutRate: 2}, Type: iface.Type0, Shape: shape},
		"zero out rate": {IP: &ip.IP{ID: "Z", InRate: 2, OutRate: 0}, Type: iface.Type2, Shape: shape},
		"negative nin":  {IP: simIP(), Type: iface.Type0, Shape: iface.Shape{NIn: -1, NOut: 4}},
		"out of thin air": {IP: simIP(), Type: iface.Type2,
			Shape: iface.Shape{NIn: 0, NOut: 16}},
	}
	for name, cfg := range cases {
		if _, err := RunSCall(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// Oversized shapes trip the step budget with the typed sentinel.
func TestRunSCallShapeBudget(t *testing.T) {
	_, err := RunSCall(Config{IP: simIP(), Type: iface.Type2,
		Shape: iface.Shape{NIn: maxShapeItems + 1, NOut: 4}})
	if err == nil {
		t.Fatal("oversized shape accepted")
	}
	if !errors.Is(err, budget.ErrStepLimit) {
		t.Errorf("error %v does not wrap ErrStepLimit", err)
	}
}

// Sane configurations keep working through the validation layer.
func TestRunSCallStillRuns(t *testing.T) {
	for _, ty := range []iface.Type{iface.Type0, iface.Type1, iface.Type2, iface.Type3} {
		res, err := RunSCall(Config{IP: simIP(), Type: ty, Shape: iface.Shape{NIn: 16, NOut: 16, TSW: 1000}})
		if err != nil {
			t.Fatalf("%v: %v", ty, err)
		}
		if res.Cycles <= 0 {
			t.Errorf("%v: cycles = %d", ty, res.Cycles)
		}
	}
}
