package sim

import (
	"math"
	"testing"

	"partita/internal/iface"
	"partita/internal/ip"
	"partita/internal/kernel"
)

func testIP() *ip.IP {
	return &ip.IP{
		ID: "IPT", Name: "filter", Funcs: []string{"fir"},
		InPorts: 2, OutPorts: 2, InRate: 4, OutRate: 4,
		Latency: 12, Pipelined: true, Area: 5,
	}
}

// relErr is the relative deviation of simulated from predicted.
func relErr(pred, sim int64) float64 {
	if pred == 0 {
		return math.Abs(float64(sim))
	}
	return math.Abs(float64(sim-pred)) / float64(pred)
}

func TestUnbufferedMatchesModel(t *testing.T) {
	am := kernel.DefaultArea()
	for _, ty := range []iface.Type{iface.Type0, iface.Type2} {
		for _, n := range []int{8, 32, 128} {
			b := testIP()
			s := iface.Shape{NIn: n, NOut: n, TSW: 1 << 30}
			cand, ok := iface.Plan(ty, b, s, am)
			if !ok {
				t.Fatalf("%v infeasible", ty)
			}
			r, err := RunSCall(Config{IP: b, Type: ty, Shape: s})
			if err != nil {
				t.Fatal(err)
			}
			if e := relErr(cand.Exec, r.Cycles); e > 0.35 {
				t.Errorf("%v n=%d: predicted %d vs simulated %d (err %.0f%%)",
					ty, n, cand.Exec, r.Cycles, e*100)
			}
			if r.Overlap != 0 {
				t.Errorf("%v must not overlap kernel code", ty)
			}
		}
	}
}

func TestBufferedMatchesModelExactly(t *testing.T) {
	// The buffered simulation steps the same mechanics the equations
	// describe, so agreement should be exact.
	am := kernel.DefaultArea()
	for _, ty := range []iface.Type{iface.Type1, iface.Type3} {
		for _, tc := range []int64{0, 50, 100000} {
			b := testIP()
			s := iface.Shape{NIn: 64, NOut: 64, TSW: 1 << 30, TC: tc}
			cand, ok := iface.Plan(ty, b, s, am)
			if !ok {
				t.Fatalf("%v infeasible", ty)
			}
			r, err := RunSCall(Config{IP: b, Type: ty, Shape: s})
			if err != nil {
				t.Fatal(err)
			}
			if r.Cycles != cand.Exec {
				t.Errorf("%v TC=%d: predicted %d vs simulated %d", ty, tc, cand.Exec, r.Cycles)
			}
			wantOverlap := tc
			if tip := cand.TIP; wantOverlap > tip {
				wantOverlap = tip
			}
			if r.Overlap != wantOverlap {
				t.Errorf("%v TC=%d: overlap %d, want %d", ty, tc, r.Overlap, wantOverlap)
			}
		}
	}
}

func TestFig2ParallelOverlapShape(t *testing.T) {
	// Fig. 2: with a buffered interface, kernel work overlaps the IP
	// run; the trace must show a kernel span inside the IP span.
	b := testIP()
	s := iface.Shape{NIn: 64, NOut: 64, TSW: 1 << 30, TC: 10000}
	r, err := RunSCall(Config{IP: b, Type: iface.Type3, Shape: s})
	if err != nil {
		t.Fatal(err)
	}
	var ipSpan, pcSpan *Span
	for i := range r.Trace {
		sp := &r.Trace[i]
		if sp.Unit == UnitIP {
			ipSpan = sp
		}
		if sp.Label == "parallel code" {
			pcSpan = sp
		}
	}
	if ipSpan == nil || pcSpan == nil {
		t.Fatalf("trace lacks IP or parallel-code span: %+v", r.Trace)
	}
	if pcSpan.From < ipSpan.From || pcSpan.To > ipSpan.To {
		t.Errorf("parallel code [%d,%d) not inside IP window [%d,%d)",
			pcSpan.From, pcSpan.To, ipSpan.From, ipSpan.To)
	}
	if r.Overlap <= 0 {
		t.Error("no overlap recorded")
	}
}

func TestBufferedBeatsUnbufferedWithParallelCode(t *testing.T) {
	// The headline mechanism: generous parallel code makes type 3 faster
	// than type 2 even though its fill/drain adds latency.
	b := testIP()
	s := iface.Shape{NIn: 64, NOut: 64, TSW: 1 << 30}
	r2, err := RunSCall(Config{IP: b, Type: iface.Type2, Shape: s})
	if err != nil {
		t.Fatal(err)
	}
	s.TC = 1 << 20
	r3, err := RunSCall(Config{IP: b, Type: iface.Type3, Shape: s})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Cycles >= r2.Cycles {
		t.Errorf("type 3 with PC (%d) should beat type 2 (%d)", r3.Cycles, r2.Cycles)
	}
}

func TestSlowClockInflatesType0(t *testing.T) {
	fast := testIP()
	fast.InRate, fast.OutRate = 1, 1
	slow := testIP() // rate 4 = template rate
	s := iface.Shape{NIn: 32, NOut: 32, TSW: 1 << 30}
	rf, err := RunSCall(Config{IP: fast, Type: iface.Type0, Shape: s})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := RunSCall(Config{IP: slow, Type: iface.Type0, Shape: s})
	if err != nil {
		t.Fatal(err)
	}
	// The fast IP is clock-divided to the template rate, so both end up
	// transfer-bound at similar cycle counts; the fast IP must not be
	// dramatically faster through the software interface.
	if rf.Cycles*2 < rs.Cycles {
		t.Errorf("rate-1 IP (%d cycles) bypassed the slow-clock penalty vs rate-4 IP (%d)", rf.Cycles, rs.Cycles)
	}
}
