package sim

import (
	"fmt"

	"partita/internal/cdfg"
	"partita/internal/iface"
	"partita/internal/imp"
)

// SCallReport compares the analytical model against the simulation for
// one accelerated s-call.
type SCallReport struct {
	SCall     string
	IMP       string
	Predicted int64 // Candidate.Exec from the gain equations
	Simulated int64 // mechanistic timeline
	Freq      int64
}

// SystemResult is the outcome of simulating a whole selected
// configuration over one execution path of the application.
type SystemResult struct {
	// SoftwareCycles is the all-software path time.
	SoftwareCycles int64
	// AcceleratedCycles is the path time with the selection applied.
	AcceleratedCycles int64
	// PredictedCycles applies the analytical Exec values instead of the
	// simulated ones.
	PredictedCycles int64
	// Reports holds the per-s-call comparison.
	Reports []SCallReport
}

// Speedup is the software/accelerated ratio.
func (r SystemResult) Speedup() float64 {
	if r.AcceleratedCycles == 0 {
		return 0
	}
	return float64(r.SoftwareCycles) / float64(r.AcceleratedCycles)
}

// TraceSelection produces the application-level occupancy timeline of
// one execution path under a selection: the Fig. 2 picture at program
// scale, with kernel spans for software nodes and fill/compute/parallel/
// drain spans for each accelerated s-call. Nodes with Freq > 1 are drawn
// once and the clock advanced by their full repeated duration (the label
// carries the multiplier).
func TraceSelection(db *imp.DB, chosen []*imp.IMP, pathIdx int) ([]Span, error) {
	paths := db.Graph.Paths(64)
	if pathIdx < 0 || pathIdx >= len(paths) {
		return nil, fmt.Errorf("sim: path %d out of range (%d paths)", pathIdx, len(paths))
	}
	bySite := map[*cdfg.Node]*imp.IMP{}
	for _, m := range chosen {
		for _, site := range m.SC.Sites {
			bySite[site] = m
		}
	}
	var spans []Span
	var t int64
	for _, n := range paths[pathIdx] {
		m := bySite[n]
		if n.Kind != cdfg.NodeCall || m == nil {
			dur := n.Cost * n.Freq
			if dur <= 0 {
				continue
			}
			label := n.Name
			if n.Kind == cdfg.NodeCall {
				label = "call " + n.Name + " (software)"
			}
			if n.Freq > 1 {
				label = fmt.Sprintf("%s (×%d)", label, n.Freq)
			}
			spans = append(spans, Span{Unit: UnitKernel, From: t, To: t + dur, Label: label})
			t += dur
			continue
		}
		shape := iface.Shape{NIn: m.SC.NIn, NOut: m.SC.NOut, TSW: m.SC.TSW, TC: m.Cand.TCUsed}
		r, err := RunSCall(Config{IP: m.IP, Type: m.Cand.Type, Shape: shape})
		if err != nil {
			return nil, err
		}
		suffix := ""
		if n.Freq > 1 {
			suffix = fmt.Sprintf(" (×%d)", n.Freq)
		}
		for _, sp := range r.Trace {
			spans = append(spans, Span{
				Unit:  sp.Unit,
				From:  t + sp.From,
				To:    t + sp.To,
				Label: m.ID + ": " + sp.Label + suffix,
			})
		}
		t += r.Cycles * n.Freq
	}
	return spans, nil
}

// RunSelection simulates path `pathIdx` of the database's root function
// under the given chosen methods (as returned by the selector). Parallel
// code is accounted once: its nodes execute at full cost in the path
// walk while each accelerated s-call's wall time is already net of the
// overlap it enjoys.
func RunSelection(db *imp.DB, chosen []*imp.IMP, pathIdx int) (SystemResult, error) {
	paths := db.Graph.Paths(64)
	if pathIdx < 0 || pathIdx >= len(paths) {
		return SystemResult{}, fmt.Errorf("sim: path %d out of range (%d paths)", pathIdx, len(paths))
	}
	path := paths[pathIdx]

	bySite := map[*cdfg.Node]*imp.IMP{}
	for _, m := range chosen {
		for _, site := range m.SC.Sites {
			bySite[site] = m
		}
	}

	var res SystemResult
	for _, n := range path {
		sw := n.Cost * n.Freq
		res.SoftwareCycles += sw
		m := bySite[n]
		if n.Kind != cdfg.NodeCall || m == nil {
			res.AcceleratedCycles += sw
			res.PredictedCycles += sw
			continue
		}
		shape := iface.Shape{NIn: m.SC.NIn, NOut: m.SC.NOut, TSW: m.SC.TSW, TC: m.Cand.TCUsed}
		r, err := RunSCall(Config{IP: m.IP, Type: m.Cand.Type, Shape: shape})
		if err != nil {
			return SystemResult{}, err
		}
		res.AcceleratedCycles += r.Cycles * n.Freq
		res.PredictedCycles += m.Cand.Exec * n.Freq
		res.Reports = append(res.Reports, SCallReport{
			SCall:     m.SC.Name(),
			IMP:       m.ID,
			Predicted: m.Cand.Exec,
			Simulated: r.Cycles,
			Freq:      n.Freq,
		})
	}
	return res, nil
}
