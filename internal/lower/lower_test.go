package lower

import (
	"strings"
	"testing"

	"partita/internal/cprog"
	"partita/internal/mop"
)

func compile(t *testing.T, src string) (*mop.Program, *Layout) {
	t.Helper()
	f, err := cprog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := cprog.Analyze(f)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	prog, lay, err := Compile(info)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog, lay
}

func TestLayoutBanksAndInit(t *testing.T) {
	src := `
xmem int a[3] = {1, 0, 3};
ymem int b[2] = {7};
int s = 42;
int main() { return s + a[0] + b[0]; }`
	_, lay := compile(t, src)
	la, lb, ls := lay.Globals["a"], lay.Globals["b"], lay.Globals["s"]
	if la.Bank != cprog.BankX || la.Words != 3 {
		t.Errorf("a loc = %+v", la)
	}
	if lb.Bank != cprog.BankY || lb.Words != 2 {
		t.Errorf("b loc = %+v", lb)
	}
	if ls.Bank != cprog.BankX || ls.Words != 1 {
		t.Errorf("s loc = %+v", ls)
	}
	// Init: a[0]=1, a[2]=3, b[0]=7, s=42 — zeros omitted.
	if len(lay.Init) != 4 {
		t.Errorf("Init = %+v, want 4 entries", lay.Init)
	}
	if lay.XWords <= 0 || lay.YWords <= 0 {
		t.Errorf("memory sizes: X=%d Y=%d", lay.XWords, lay.YWords)
	}
}

func TestGeneratedProgramValidates(t *testing.T) {
	src := `
int helper(int v) { if (v > 3 && v < 10) { return v * 2; } return v; }
int main() {
	int i;
	int acc;
	acc = 0;
	for (i = 0; i < 20; i = i + 1) {
		acc = acc + helper(i);
	}
	return acc;
}`
	prog, _ := compile(t, src)
	if err := prog.Validate(); err != nil {
		t.Fatalf("generated program invalid: %v", err)
	}
	if prog.Entry != "main" {
		t.Errorf("entry = %q", prog.Entry)
	}
}

func TestBankMismatchRejected(t *testing.T) {
	src := `
xmem int a[4];
int f(ymem int p[]) { return p[0]; }
int main() { return f(a); }`
	f, err := cprog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := cprog.Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Compile(info); err == nil {
		t.Fatal("want bank-mismatch error")
	} else if !strings.Contains(err.Error(), "lives in") {
		t.Errorf("unexpected error text: %v", err)
	}
}

func TestVariableShiftRejected(t *testing.T) {
	src := `int main() { int a; int b; a = 4; b = 1; return a << b; }`
	f, _ := cprog.Parse(src)
	info, err := cprog.Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Compile(info); err == nil {
		t.Fatal("want constant-shift error")
	}
}

func TestExpressionDepthLimit(t *testing.T) {
	// Build a right-leaning expression deeper than the 8-register stack.
	expr := "1"
	for i := 0; i < 12; i++ {
		expr = "1 + (" + expr + " * 2)"
	}
	src := "int main() { return " + expr + "; }"
	f, _ := cprog.Parse(src)
	info, err := cprog.Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Compile(info); err == nil {
		t.Fatal("want expression-depth error")
	}
}

func TestLocLookup(t *testing.T) {
	src := `
int g;
int f(int p) { int loc; loc = p; return loc + g; }
int main() { return f(3); }`
	_, lay := compile(t, src)
	if _, ok := lay.Loc("f", "loc"); !ok {
		t.Error("local not found via Loc")
	}
	if _, ok := lay.Loc("f", "g"); !ok {
		t.Error("global not visible from f")
	}
	if _, ok := lay.Loc("f", "nope"); ok {
		t.Error("unknown name resolved")
	}
}

func TestFrameSlotsDisjoint(t *testing.T) {
	src := `
int a(int x) { int u; u = x; return u; }
int b(int x) { int v; v = x; return v; }
int main() { return a(1) + b(2); }`
	_, lay := compile(t, src)
	type span struct{ base, end int }
	var spans []span
	for _, fl := range lay.Funcs {
		for _, loc := range fl.Vars {
			if loc.Bank == cprog.BankX {
				spans = append(spans, span{loc.Base, loc.Base + loc.Words})
			}
		}
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			a, b := spans[i], spans[j]
			if a.base < b.end && b.base < a.end {
				t.Fatalf("overlapping X slots: %+v and %+v", a, b)
			}
		}
	}
}
