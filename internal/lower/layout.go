// Package lower translates analyzed mini-C (package cprog) into the
// ASIP's µ-operation list (package mop).
//
// The generated code follows the static-allocation discipline of 1990s
// DSP compilers: because the front-end rejects recursion, every function
// receives a fixed frame in data memory and there is no runtime stack.
// Scalars live in X-memory slots, arrays in their declared (or
// auto-assigned) bank, and expressions are evaluated on a small register
// stack (r0..r7). Arguments are passed in r0..r(n-1); the return value
// comes back in the rv register.
package lower

import (
	"fmt"

	"partita/internal/cprog"
)

// Loc is the resolved storage location of a variable.
type Loc struct {
	Bank cprog.Bank
	// Base is the word address of the first element (static arrays and
	// scalars) or of the pointer slot (array parameters).
	Base int
	// Dynamic marks array parameters, whose element base address is read
	// from the pointer slot at Base (always in X memory) at runtime.
	Dynamic bool
	// Words is the allocated length (1 for scalars and pointer slots).
	Words int
}

// MemInit is one word of initialized data memory.
type MemInit struct {
	Bank cprog.Bank
	Addr int
	Val  int64
}

// FuncLayout records the frame of one function.
type FuncLayout struct {
	// Vars maps each declared variable to its location. Shadowed inner
	// declarations are stored under "name·N" keys.
	Vars map[string]Loc
	// Scratch is the X-memory base of the temp-spill region used around
	// calls.
	Scratch int
}

// Layout is the full data-memory map of a compiled program.
type Layout struct {
	Globals map[string]Loc
	Funcs   map[string]*FuncLayout
	// XWords and YWords are the sizes of the two data memories in words.
	XWords, YWords int
	// Init lists data-memory words with nonzero initial values.
	Init []MemInit
}

// Loc resolves a variable as seen from fn: the function frame first,
// then globals. ok is false when the (function, name) pair is unknown.
func (l *Layout) Loc(fn, name string) (Loc, bool) {
	if fl := l.Funcs[fn]; fl != nil {
		if loc, ok := fl.Vars[name]; ok {
			return loc, true
		}
	}
	loc, ok := l.Globals[name]
	return loc, ok
}

// allocator hands out static words of X/Y data memory.
type allocator struct {
	nextX, nextY int
}

func (a *allocator) take(bank cprog.Bank, words int) int {
	if bank == cprog.BankY {
		addr := a.nextY
		a.nextY += words
		return addr
	}
	addr := a.nextX
	a.nextX += words
	return addr
}

// uniqueKey returns a non-colliding key for vars (shadowed declarations).
func uniqueKey(vars map[string]Loc, name string) string {
	if _, ok := vars[name]; !ok {
		return name
	}
	for i := 1; ; i++ {
		k := fmt.Sprintf("%s·%d", name, i)
		if _, ok := vars[k]; !ok {
			return k
		}
	}
}
