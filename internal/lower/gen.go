package lower

import (
	"fmt"

	"partita/internal/cprog"
	"partita/internal/mop"
)

const (
	// tempRegs is the depth of the expression register stack (r0..r7).
	tempRegs = 8
	// maxParams is the number of registers available for argument
	// passing; it equals the temp stack so staged arguments always fit.
	maxParams = tempRegs
)

// Compile lowers an analyzed program to MOPs and returns the program plus
// its data-memory layout. The program entry is "main" when defined.
func Compile(info *cprog.Info) (*mop.Program, *Layout, error) {
	lay := &Layout{Globals: map[string]Loc{}, Funcs: map[string]*FuncLayout{}}
	alloc := &allocator{}

	for _, g := range info.File.Globals {
		if g.Size > 0 {
			loc := Loc{Bank: g.Bank, Base: alloc.take(g.Bank, g.Size), Words: g.Size}
			lay.Globals[g.Name] = loc
			for i, v := range g.Init {
				if v != 0 {
					lay.Init = append(lay.Init, MemInit{Bank: g.Bank, Addr: loc.Base + i, Val: v})
				}
			}
		} else {
			loc := Loc{Bank: cprog.BankX, Base: alloc.take(cprog.BankX, 1), Words: 1}
			lay.Globals[g.Name] = loc
			if len(g.Init) == 1 && g.Init[0] != 0 {
				lay.Init = append(lay.Init, MemInit{Bank: cprog.BankX, Addr: loc.Base, Val: g.Init[0]})
			}
		}
	}

	entry := ""
	if info.File.Func("main") != nil {
		entry = "main"
	}
	prog := mop.NewProgram(entry)
	for _, fn := range info.File.Funcs {
		g := &gen{info: info, lay: lay, alloc: alloc, fnDecl: fn}
		mf, err := g.function()
		if err != nil {
			return nil, nil, err
		}
		prog.Add(mf)
	}
	lay.XWords = alloc.nextX
	lay.YWords = alloc.nextY
	if err := prog.Validate(); err != nil {
		return nil, nil, fmt.Errorf("lower: internal error: %w", err)
	}
	return prog, lay, nil
}

// gen is the per-function code generator.
type gen struct {
	info   *cprog.Info
	lay    *Layout
	alloc  *allocator
	fnDecl *cprog.FuncDecl
	fl     *FuncLayout

	scopes []map[string]Loc
	blocks []*mop.Block
	cur    *mop.Block
	nlabel int
	sp     int
	// loops is the enclosing-loop stack for break/continue targets.
	loops []loopCtx
}

// loopCtx holds the branch targets of one enclosing loop.
type loopCtx struct {
	continueLabel string // re-test (while) or post-statement (for)
	breakLabel    string
}

func (g *gen) emit(m mop.MOP) { g.cur.Ops = append(g.cur.Ops, m) }

func (g *gen) newLabel(hint string) string {
	g.nlabel++
	return fmt.Sprintf("%s%d", hint, g.nlabel)
}

func (g *gen) startBlock(label string) {
	b := &mop.Block{Label: label}
	g.blocks = append(g.blocks, b)
	g.cur = b
}

func (g *gen) pushScope() { g.scopes = append(g.scopes, map[string]Loc{}) }
func (g *gen) popScope()  { g.scopes = g.scopes[:len(g.scopes)-1] }

func (g *gen) lookup(name string) (Loc, bool) {
	for i := len(g.scopes) - 1; i >= 0; i-- {
		if loc, ok := g.scopes[i][name]; ok {
			return loc, true
		}
	}
	loc, ok := g.lay.Globals[name]
	return loc, ok
}

// declare allocates storage for d in the current scope.
func (g *gen) declare(d *cprog.VarDecl) Loc {
	var loc Loc
	if d.Size > 0 {
		loc = Loc{Bank: d.Bank, Base: g.alloc.take(d.Bank, d.Size), Words: d.Size}
	} else {
		loc = Loc{Bank: cprog.BankX, Base: g.alloc.take(cprog.BankX, 1), Words: 1}
	}
	g.scopes[len(g.scopes)-1][d.Name] = loc
	g.fl.Vars[uniqueKey(g.fl.Vars, d.Name)] = loc
	return loc
}

// temp returns the register at stack slot i.
func temp(i int) mop.Reg { return mop.GPR(i) }

// need checks that the expression stack can grow to depth want.
func (g *gen) need(want int, pos cprog.Pos) error {
	if want > tempRegs {
		return errfPos(pos, "expression too deep for the %d-register evaluation stack", tempRegs)
	}
	return nil
}

func errfPos(pos cprog.Pos, format string, args ...interface{}) error {
	return fmt.Errorf("lower: %s: %s", pos, fmt.Sprintf(format, args...))
}

// Address-register conventions: index 3 of each bank is used for absolute
// (compile-time) addresses, index 2 for computed addresses.
func absAddrReg(bank cprog.Bank) mop.Reg {
	if bank == cprog.BankY {
		return mop.AY(3)
	}
	return mop.AX(3)
}

func dynAddrReg(bank cprog.Bank) mop.Reg {
	if bank == cprog.BankY {
		return mop.AY(2)
	}
	return mop.AX(2)
}

func aguOp(bank cprog.Bank) mop.Opcode {
	if bank == cprog.BankY {
		return mop.AGUY
	}
	return mop.AGUX
}

func loadOp(bank cprog.Bank) mop.Opcode {
	if bank == cprog.BankY {
		return mop.LDY
	}
	return mop.LDX
}

func storeOp(bank cprog.Bank) mop.Opcode {
	if bank == cprog.BankY {
		return mop.STY
	}
	return mop.STX
}

// loadAbs emits a load of the word at (bank, addr) into dst.
func (g *gen) loadAbs(bank cprog.Bank, addr int, dst mop.Reg) {
	ar := absAddrReg(bank)
	g.emit(mop.MOP{Op: aguOp(bank), Dst: ar, Imm: int64(addr), Abs: true})
	g.emit(mop.MOP{Op: loadOp(bank), Dst: dst, SrcA: ar})
}

// storeAbs emits a store of src into the word at (bank, addr).
func (g *gen) storeAbs(bank cprog.Bank, addr int, src mop.Reg) {
	ar := absAddrReg(bank)
	g.emit(mop.MOP{Op: aguOp(bank), Dst: ar, Imm: int64(addr), Abs: true})
	g.emit(mop.MOP{Op: storeOp(bank), SrcA: src, SrcB: ar})
}

func (g *gen) function() (*mop.Function, error) {
	fn := g.fnDecl
	if len(fn.Params) > maxParams {
		return nil, errfPos(fn.Pos, "function %q has %d parameters; at most %d are supported", fn.Name, len(fn.Params), maxParams)
	}
	g.fl = &FuncLayout{Vars: map[string]Loc{}}
	g.lay.Funcs[fn.Name] = g.fl
	g.pushScope()
	defer g.popScope()

	g.startBlock("entry")
	// Prologue: home every parameter into its frame slot.
	for i, p := range fn.Params {
		loc := Loc{Bank: cprog.BankX, Base: g.alloc.take(cprog.BankX, 1), Words: 1}
		if p.IsArray {
			loc.Bank = p.Bank
			loc.Dynamic = true
		}
		g.scopes[0][p.Name] = loc
		g.fl.Vars[uniqueKey(g.fl.Vars, p.Name)] = loc
		g.storeAbs(cprog.BankX, loc.Base, mop.GPR(i))
	}
	g.fl.Scratch = g.alloc.take(cprog.BankX, tempRegs)

	if err := g.block(fn.Body); err != nil {
		return nil, err
	}
	// Ensure every block has a terminator; unterminated blocks return.
	for _, b := range g.blocks {
		if _, ok := b.Terminator(); !ok {
			b.Ops = append(b.Ops, mop.MOP{Op: mop.RET})
		}
	}
	return &mop.Function{Name: fn.Name, Params: paramNames(fn), Blocks: g.blocks}, nil
}

func paramNames(fn *cprog.FuncDecl) []string {
	out := make([]string, len(fn.Params))
	for i, p := range fn.Params {
		out[i] = p.Name
	}
	return out
}

func (g *gen) block(b *cprog.BlockStmt) error {
	g.pushScope()
	defer g.popScope()
	for _, s := range b.Stmts {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) stmt(s cprog.Stmt) error {
	switch st := s.(type) {
	case *cprog.BlockStmt:
		return g.block(st)
	case *cprog.DeclStmt:
		loc := g.declare(st.Decl)
		// Local initializers execute each time the declaration runs.
		if st.Decl.Size > 0 {
			for i, v := range st.Decl.Init {
				if err := g.need(g.sp+1, st.Decl.Pos); err != nil {
					return err
				}
				g.emit(mop.MOP{Op: mop.LDI, Dst: temp(g.sp), Imm: v})
				g.storeAbs(loc.Bank, loc.Base+i, temp(g.sp))
			}
		} else if len(st.Decl.Init) == 1 {
			if err := g.need(g.sp+1, st.Decl.Pos); err != nil {
				return err
			}
			g.emit(mop.MOP{Op: mop.LDI, Dst: temp(g.sp), Imm: st.Decl.Init[0]})
			g.storeAbs(cprog.BankX, loc.Base, temp(g.sp))
		}
		return nil
	case *cprog.AssignStmt:
		return g.assign(st)
	case *cprog.ExprStmt:
		if err := g.eval(st.X); err != nil {
			return err
		}
		g.sp-- // discard
		return nil
	case *cprog.IfStmt:
		lthen := g.newLabel("then")
		lend := g.newLabel("endif")
		lelse := lend
		if st.Else != nil {
			lelse = g.newLabel("else")
		}
		if err := g.branchCond(st.Cond, lthen, lelse); err != nil {
			return err
		}
		g.startBlock(lthen)
		if err := g.block(st.Then); err != nil {
			return err
		}
		g.emit(mop.MOP{Op: mop.BR, Sym: lend})
		if st.Else != nil {
			g.startBlock(lelse)
			if err := g.block(st.Else); err != nil {
				return err
			}
			g.emit(mop.MOP{Op: mop.BR, Sym: lend})
		}
		g.startBlock(lend)
		return nil
	case *cprog.WhileStmt:
		lcond := g.newLabel("while")
		lbody := g.newLabel("body")
		lend := g.newLabel("endwhile")
		g.emit(mop.MOP{Op: mop.BR, Sym: lcond})
		g.startBlock(lcond)
		if err := g.branchCond(st.Cond, lbody, lend); err != nil {
			return err
		}
		g.startBlock(lbody)
		g.loops = append(g.loops, loopCtx{continueLabel: lcond, breakLabel: lend})
		if err := g.block(st.Body); err != nil {
			return err
		}
		g.loops = g.loops[:len(g.loops)-1]
		g.emit(mop.MOP{Op: mop.BR, Sym: lcond})
		g.startBlock(lend)
		return nil
	case *cprog.ForStmt:
		if st.Init != nil {
			if err := g.assign(st.Init); err != nil {
				return err
			}
		}
		lcond := g.newLabel("for")
		lbody := g.newLabel("body")
		lpost := g.newLabel("post")
		lend := g.newLabel("endfor")
		g.emit(mop.MOP{Op: mop.BR, Sym: lcond})
		g.startBlock(lcond)
		if st.Cond != nil {
			if err := g.branchCond(st.Cond, lbody, lend); err != nil {
				return err
			}
		} else {
			g.emit(mop.MOP{Op: mop.BR, Sym: lbody})
		}
		g.startBlock(lbody)
		g.loops = append(g.loops, loopCtx{continueLabel: lpost, breakLabel: lend})
		if err := g.block(st.Body); err != nil {
			return err
		}
		g.loops = g.loops[:len(g.loops)-1]
		g.emit(mop.MOP{Op: mop.BR, Sym: lpost})
		g.startBlock(lpost)
		if st.Post != nil {
			if err := g.assign(st.Post); err != nil {
				return err
			}
		}
		g.emit(mop.MOP{Op: mop.BR, Sym: lcond})
		g.startBlock(lend)
		return nil
	case *cprog.BreakStmt:
		if len(g.loops) == 0 {
			return errfPos(st.Pos_, "break outside a loop")
		}
		g.emit(mop.MOP{Op: mop.BR, Sym: g.loops[len(g.loops)-1].breakLabel})
		g.startBlock(g.newLabel("dead"))
		return nil
	case *cprog.ContinueStmt:
		if len(g.loops) == 0 {
			return errfPos(st.Pos_, "continue outside a loop")
		}
		g.emit(mop.MOP{Op: mop.BR, Sym: g.loops[len(g.loops)-1].continueLabel})
		g.startBlock(g.newLabel("dead"))
		return nil
	case *cprog.ReturnStmt:
		if st.Value != nil {
			if err := g.eval(st.Value); err != nil {
				return err
			}
			g.sp--
			g.emit(mop.MOP{Op: mop.MOV, Dst: mop.RegRetVal, SrcA: temp(g.sp)})
		}
		g.emit(mop.MOP{Op: mop.RET})
		g.startBlock(g.newLabel("dead"))
		return nil
	}
	return fmt.Errorf("lower: unknown statement %T", s)
}

func (g *gen) assign(st *cprog.AssignStmt) error {
	if err := g.eval(st.RHS); err != nil {
		return err
	}
	val := temp(g.sp - 1)
	switch lhs := st.LHS.(type) {
	case *cprog.VarRef:
		loc, ok := g.lookup(lhs.Name)
		if !ok {
			return errfPos(lhs.Pos_, "undefined variable %q", lhs.Name)
		}
		g.storeAbs(cprog.BankX, loc.Base, val)
		g.sp--
		return nil
	case *cprog.IndexExpr:
		loc, ok := g.lookup(lhs.Array)
		if !ok {
			return errfPos(lhs.Pos_, "undefined array %q", lhs.Array)
		}
		if err := g.elementAddr(loc, lhs.Index, lhs.Pos_); err != nil {
			return err
		}
		addr := temp(g.sp - 1)
		ar := dynAddrReg(loc.Bank)
		g.emit(mop.MOP{Op: mop.MOV, Dst: ar, SrcA: addr})
		g.emit(mop.MOP{Op: storeOp(loc.Bank), SrcA: val, SrcB: ar})
		g.sp -= 2
		return nil
	}
	return errfPos(st.LHS.Position(), "invalid assignment target")
}

// elementAddr evaluates the element address of loc[index] onto the temp
// stack.
func (g *gen) elementAddr(loc Loc, index cprog.Expr, pos cprog.Pos) error {
	if err := g.eval(index); err != nil {
		return err
	}
	idx := temp(g.sp - 1)
	if err := g.need(g.sp+1, pos); err != nil {
		return err
	}
	base := temp(g.sp)
	if loc.Dynamic {
		g.loadAbs(cprog.BankX, loc.Base, base)
	} else {
		g.emit(mop.MOP{Op: mop.LDI, Dst: base, Imm: int64(loc.Base)})
	}
	g.emit(mop.MOP{Op: mop.ADD, Dst: idx, SrcA: idx, SrcB: base})
	return nil
}

// eval generates code computing e into the next temp-stack register.
func (g *gen) eval(e cprog.Expr) error {
	switch x := e.(type) {
	case *cprog.NumExpr:
		if err := g.need(g.sp+1, x.Pos_); err != nil {
			return err
		}
		g.emit(mop.MOP{Op: mop.LDI, Dst: temp(g.sp), Imm: x.Value})
		g.sp++
		return nil
	case *cprog.VarRef:
		loc, ok := g.lookup(x.Name)
		if !ok {
			return errfPos(x.Pos_, "undefined variable %q", x.Name)
		}
		if err := g.need(g.sp+1, x.Pos_); err != nil {
			return err
		}
		g.loadAbs(cprog.BankX, loc.Base, temp(g.sp))
		g.sp++
		return nil
	case *cprog.IndexExpr:
		loc, ok := g.lookup(x.Array)
		if !ok {
			return errfPos(x.Pos_, "undefined array %q", x.Array)
		}
		if err := g.elementAddr(loc, x.Index, x.Pos_); err != nil {
			return err
		}
		addr := temp(g.sp - 1)
		ar := dynAddrReg(loc.Bank)
		g.emit(mop.MOP{Op: mop.MOV, Dst: ar, SrcA: addr})
		g.emit(mop.MOP{Op: loadOp(loc.Bank), Dst: temp(g.sp - 1), SrcA: ar})
		return nil
	case *cprog.CallExpr:
		return g.call(x)
	case *cprog.UnaryExpr:
		switch x.Op {
		case "-":
			if err := g.eval(x.X); err != nil {
				return err
			}
			r := temp(g.sp - 1)
			g.emit(mop.MOP{Op: mop.NEG, Dst: r, SrcA: r})
			return nil
		case "~":
			if err := g.eval(x.X); err != nil {
				return err
			}
			if err := g.need(g.sp+1, x.Pos_); err != nil {
				return err
			}
			r := temp(g.sp - 1)
			ones := temp(g.sp)
			g.emit(mop.MOP{Op: mop.LDI, Dst: ones, Imm: -1})
			g.emit(mop.MOP{Op: mop.XOR, Dst: r, SrcA: r, SrcB: ones})
			return nil
		case "!":
			return g.evalBool(e)
		}
		return errfPos(x.Pos_, "unknown unary operator %q", x.Op)
	case *cprog.BinaryExpr:
		switch x.Op {
		case "+", "-", "*", "/", "%", "&", "|", "^":
			if err := g.eval(x.X); err != nil {
				return err
			}
			if err := g.eval(x.Y); err != nil {
				return err
			}
			ops := map[string]mop.Opcode{
				"+": mop.ADD, "-": mop.SUB, "*": mop.MUL, "/": mop.DIV,
				"%": mop.REM, "&": mop.AND, "|": mop.OR, "^": mop.XOR,
			}
			g.emit(mop.MOP{Op: ops[x.Op], Dst: temp(g.sp - 2), SrcA: temp(g.sp - 2), SrcB: temp(g.sp - 1)})
			g.sp--
			return nil
		case "<<", ">>":
			n, ok := x.Y.(*cprog.NumExpr)
			if !ok {
				return errfPos(x.Y.Position(), "shift amount must be a constant")
			}
			if err := g.eval(x.X); err != nil {
				return err
			}
			op := mop.SHL
			if x.Op == ">>" {
				op = mop.SHR
			}
			r := temp(g.sp - 1)
			g.emit(mop.MOP{Op: op, Dst: r, SrcA: r, Imm: n.Value})
			return nil
		case "<", "<=", ">", ">=", "==", "!=", "&&", "||":
			return g.evalBool(e)
		}
		return errfPos(x.Position(), "unknown operator %q", x.Op)
	}
	return fmt.Errorf("lower: unknown expression %T", e)
}

// evalBool materializes a condition as 0/1 through a branch diamond.
func (g *gen) evalBool(e cprog.Expr) error {
	if err := g.need(g.sp+1, e.Position()); err != nil {
		return err
	}
	r := temp(g.sp)
	lt := g.newLabel("btrue")
	lf := g.newLabel("bfalse")
	le := g.newLabel("bend")
	if err := g.branchCond(e, lt, lf); err != nil {
		return err
	}
	g.startBlock(lt)
	g.emit(mop.MOP{Op: mop.LDI, Dst: r, Imm: 1})
	g.emit(mop.MOP{Op: mop.BR, Sym: le})
	g.startBlock(lf)
	g.emit(mop.MOP{Op: mop.LDI, Dst: r, Imm: 0})
	g.emit(mop.MOP{Op: mop.BR, Sym: le})
	g.startBlock(le)
	g.sp++
	return nil
}

// branchCond emits code that jumps to lt when e is true and lf otherwise,
// terminating the current block. The temp stack is left unchanged.
func (g *gen) branchCond(e cprog.Expr, lt, lf string) error {
	switch x := e.(type) {
	case *cprog.NumExpr:
		if x.Value != 0 {
			g.emit(mop.MOP{Op: mop.BR, Sym: lt})
		} else {
			g.emit(mop.MOP{Op: mop.BR, Sym: lf})
		}
		return nil
	case *cprog.UnaryExpr:
		if x.Op == "!" {
			return g.branchCond(x.X, lf, lt)
		}
	case *cprog.BinaryExpr:
		switch x.Op {
		case "&&":
			mid := g.newLabel("and")
			if err := g.branchCond(x.X, mid, lf); err != nil {
				return err
			}
			g.startBlock(mid)
			return g.branchCond(x.Y, lt, lf)
		case "||":
			mid := g.newLabel("or")
			if err := g.branchCond(x.X, lt, mid); err != nil {
				return err
			}
			g.startBlock(mid)
			return g.branchCond(x.Y, lt, lf)
		case "<", "<=", ">", ">=", "==", "!=":
			if err := g.eval(x.X); err != nil {
				return err
			}
			if err := g.eval(x.Y); err != nil {
				return err
			}
			a, b := temp(g.sp-2), temp(g.sp-1)
			g.sp -= 2
			var cmpA, cmpB mop.Reg
			var bop mop.Opcode
			switch x.Op {
			case "<":
				cmpA, cmpB, bop = a, b, mop.BLT
			case ">=":
				cmpA, cmpB, bop = a, b, mop.BGE
			case ">":
				cmpA, cmpB, bop = b, a, mop.BLT
			case "<=":
				cmpA, cmpB, bop = b, a, mop.BGE
			case "==":
				cmpA, cmpB, bop = a, b, mop.BEQ
			case "!=":
				cmpA, cmpB, bop = a, b, mop.BNE
			}
			g.emit(mop.MOP{Op: mop.CMP, SrcA: cmpA, SrcB: cmpB})
			g.emit(mop.MOP{Op: bop, Sym: lt})
			// The conditional branch must end the block; its false edge
			// falls through to a trampoline that jumps to lf.
			g.startBlock(g.newLabel("ff"))
			g.emit(mop.MOP{Op: mop.BR, Sym: lf})
			return nil
		}
	}
	// Generic truthiness: e != 0.
	if err := g.eval(e); err != nil {
		return err
	}
	if err := g.need(g.sp+1, e.Position()); err != nil {
		return err
	}
	zero := temp(g.sp)
	g.emit(mop.MOP{Op: mop.LDI, Dst: zero, Imm: 0})
	g.emit(mop.MOP{Op: mop.CMP, SrcA: temp(g.sp - 1), SrcB: zero})
	g.sp--
	g.emit(mop.MOP{Op: mop.BNE, Sym: lt})
	g.startBlock(g.newLabel("ff"))
	g.emit(mop.MOP{Op: mop.BR, Sym: lf})
	return nil
}

func (g *gen) call(x *cprog.CallExpr) error {
	fi := g.info.Funcs[x.Callee]
	if fi == nil {
		return errfPos(x.Pos_, "call to undefined function %q", x.Callee)
	}
	n := len(x.Args)
	if n > maxParams {
		return errfPos(x.Pos_, "call to %q with %d arguments; at most %d supported", x.Callee, n, maxParams)
	}
	outer := g.sp
	if err := g.need(outer+n, x.Pos_); err != nil {
		return err
	}
	for i, a := range x.Args {
		p := fi.Decl.Params[i]
		if p.IsArray {
			ref := a.(*cprog.VarRef) // sema guarantees
			loc, ok := g.lookup(ref.Name)
			if !ok {
				return errfPos(ref.Pos_, "undefined array %q", ref.Name)
			}
			if loc.Bank != p.Bank {
				return errfPos(ref.Pos_, "array %q lives in %v but parameter %q of %q wants %v",
					ref.Name, loc.Bank, p.Name, x.Callee, p.Bank)
			}
			if err := g.need(g.sp+1, ref.Pos_); err != nil {
				return err
			}
			if loc.Dynamic {
				g.loadAbs(cprog.BankX, loc.Base, temp(g.sp))
			} else {
				g.emit(mop.MOP{Op: mop.LDI, Dst: temp(g.sp), Imm: int64(loc.Base)})
			}
			g.sp++
			continue
		}
		if err := g.eval(a); err != nil {
			return err
		}
	}
	// Spill live outer temps around the call.
	for j := 0; j < outer; j++ {
		g.storeAbs(cprog.BankX, g.fl.Scratch+j, temp(j))
	}
	// Shift staged arguments down into r0..r(n-1). Ascending order is
	// safe: target index i is always below source index outer+i.
	if outer > 0 {
		for i := 0; i < n; i++ {
			g.emit(mop.MOP{Op: mop.MOV, Dst: mop.GPR(i), SrcA: temp(outer + i)})
		}
	}
	g.emit(mop.MOP{Op: mop.CALL, Sym: x.Callee})
	for j := 0; j < outer; j++ {
		g.loadAbs(cprog.BankX, g.fl.Scratch+j, temp(j))
	}
	g.sp = outer
	if err := g.need(g.sp+1, x.Pos_); err != nil {
		return err
	}
	g.emit(mop.MOP{Op: mop.MOV, Dst: temp(g.sp), SrcA: mop.RegRetVal})
	g.sp++
	return nil
}
