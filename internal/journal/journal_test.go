package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

type payload struct {
	N int    `json:"n"`
	S string `json:"s,omitempty"`
}

func openT(t *testing.T, path string, opts Options) (*Journal, *Replay) {
	t.Helper()
	j, rep, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j, rep
}

func appendN(t *testing.T, j *Journal, n int) []Record {
	t.Helper()
	var out []Record
	for i := 0; i < n; i++ {
		rec, err := j.Append("event", "j1", payload{N: i})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rec)
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, rep := openT(t, path, Options{})
	if len(rep.Records) != 0 || rep.TruncatedBytes != 0 {
		t.Fatalf("fresh journal replay = %+v", rep)
	}
	want := appendN(t, j, 5)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, rep2 := openT(t, path, Options{})
	if len(rep2.Records) != 5 || rep2.TruncatedBytes != 0 || rep2.Corrupt {
		t.Fatalf("replay = %+v", rep2)
	}
	for i, rec := range rep2.Records {
		if rec.Seq != want[i].Seq || rec.Type != "event" || rec.Job != "j1" {
			t.Errorf("record %d = %+v", i, rec)
		}
		var p payload
		if err := json.Unmarshal(rec.Data, &p); err != nil || p.N != i {
			t.Errorf("record %d data = %s (%v)", i, rec.Data, err)
		}
	}
}

func TestZeroLengthFileIsEmptyJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	j, rep := openT(t, path, Options{})
	if len(rep.Records) != 0 || rep.TruncatedBytes != 0 || rep.Corrupt {
		t.Fatalf("zero-length replay = %+v", rep)
	}
	// And it must be appendable afterwards.
	if _, err := j.Append("event", "", payload{N: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedTailIsRepaired(t *testing.T) {
	// Cut the file at several byte offsets inside the final frame: mid
	// header and mid payload. Every cut must recover the first two
	// records and leave the journal appendable.
	for _, cut := range []int64{1, 4, frameHeader + 3} {
		path := filepath.Join(t.TempDir(), "wal")
		j, _ := openT(t, path, Options{})
		appendN(t, j, 3)
		j.Close()

		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		// Find the third frame's start by replaying offsets.
		rep, err := ReadAll(path)
		if err != nil || len(rep.Records) != 3 {
			t.Fatalf("pre-damage replay: %+v, %v", rep, err)
		}
		var lastStart int64
		{
			data, _ := os.ReadFile(path)
			off := int64(0)
			for i := 0; i < 2; i++ {
				n := binary.LittleEndian.Uint32(data[off : off+4])
				off += int64(frameHeader) + int64(n)
			}
			lastStart = off
		}
		if err := os.Truncate(path, lastStart+cut); err != nil {
			t.Fatal(err)
		}

		j2, rep2 := openT(t, path, Options{})
		if len(rep2.Records) != 2 {
			t.Fatalf("cut %d: recovered %d records, want 2", cut, len(rep2.Records))
		}
		if rep2.TruncatedBytes == 0 {
			t.Errorf("cut %d: no truncation reported", cut)
		}
		// The torn tail is gone from disk and appends resume cleanly.
		if fi2, _ := os.Stat(path); fi2.Size() != lastStart {
			t.Errorf("cut %d: file size %d, want %d (was %d)", cut, fi2.Size(), lastStart, fi.Size())
		}
		if _, err := j2.Append("event", "j1", payload{N: 99}); err != nil {
			t.Fatal(err)
		}
		j2.Close()
		rep3, err := ReadAll(path)
		if err != nil || len(rep3.Records) != 3 {
			t.Fatalf("cut %d: post-repair replay = %+v, %v", cut, rep3, err)
		}
	}
}

func TestBadChecksumMidFileTruncatesFromThere(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _ := openT(t, path, Options{})
	appendN(t, j, 4)
	j.Close()

	// Flip one payload byte inside the second record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	first := int64(frameHeader) + int64(binary.LittleEndian.Uint32(data[0:4]))
	data[first+frameHeader+2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rep := openT(t, path, Options{})
	if len(rep.Records) != 1 {
		t.Fatalf("recovered %d records, want 1 (corruption truncates the suffix)", len(rep.Records))
	}
	if !rep.Corrupt || rep.TruncatedBytes == 0 {
		t.Errorf("replay did not flag corruption: %+v", rep)
	}
	if fi, _ := os.Stat(path); fi.Size() != first {
		t.Errorf("file size after repair = %d, want %d", fi.Size(), first)
	}
	if _, err := j2.Append("event", "j1", payload{N: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestGarbageLengthFieldIsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _ := openT(t, path, Options{})
	appendN(t, j, 1)
	j.Close()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], MaxRecordBytes+1)
	if _, err := f.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, rep := openT(t, path, Options{})
	if len(rep.Records) != 1 || !rep.Corrupt {
		t.Fatalf("replay = %+v", rep)
	}
}

func TestSeqResumesAfterReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _ := openT(t, path, Options{})
	recs := appendN(t, j, 3)
	j.Close()
	j2, _ := openT(t, path, Options{})
	rec, err := j2.Append("event", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != recs[2].Seq+1 {
		t.Errorf("seq after reopen = %d, want %d", rec.Seq, recs[2].Seq+1)
	}
}

func TestCompactKeepsOnlyLiveRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _ := openT(t, path, Options{})
	recs := appendN(t, j, 10)
	live := []Record{recs[2], recs[7]}
	if err := j.Compact(live); err != nil {
		t.Fatal(err)
	}
	if got := j.AppendsSinceCompact(); got != 0 {
		t.Errorf("appends since compact = %d", got)
	}
	if got := j.Compactions(); got != 1 {
		t.Errorf("compactions = %d", got)
	}
	// Appends continue past the retained max seq.
	rec, err := j.Append("event", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != recs[9].Seq+1 {
		t.Errorf("post-compact seq = %d, want %d", rec.Seq, recs[9].Seq+1)
	}
	j.Close()

	rep, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 3 {
		t.Fatalf("post-compact records = %d, want 3", len(rep.Records))
	}
	if rep.Records[0].Seq != recs[2].Seq || rep.Records[1].Seq != recs[7].Seq {
		t.Errorf("live records lost: %+v", rep.Records[:2])
	}
}

func TestWriteFaultFailsAppendWithoutCorrupting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	inject := false
	j, _ := openT(t, path, Options{WriteFault: func() error {
		if inject {
			return errors.New("injected")
		}
		return nil
	}})
	appendN(t, j, 2)
	inject = true
	if _, err := j.Append("event", "", nil); err == nil {
		t.Fatal("injected write fault did not surface")
	}
	inject = false
	appendN(t, j, 1)
	j.Close()
	rep, err := ReadAll(path)
	if err != nil || len(rep.Records) != 3 || rep.Corrupt {
		t.Fatalf("replay after write fault = %+v, %v", rep, err)
	}
}

func TestShortWriteFaultIsRepairedInPlace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	tear := false
	j, _ := openT(t, path, Options{ShortWriteFault: func() bool { return tear }})
	appendN(t, j, 2)
	tear = true
	if _, err := j.Append("event", "j1", payload{N: 9, S: "torn"}); err == nil {
		t.Fatal("short write did not surface as an error")
	}
	if j.Degraded() {
		t.Fatal("repairable short write degraded the journal")
	}
	// The torn half-frame was truncated away: the next append lands where
	// it sat, so replay sees a clean file.
	tear = false
	appendN(t, j, 1)
	j.Close()

	rep, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 3 || rep.TruncatedBytes != 0 || rep.Corrupt {
		t.Fatalf("replay after repaired torn write = %+v", rep)
	}
}

func TestAppendsAfterTornWritesAreNeverLost(t *testing.T) {
	// The failure mode that motivated in-place repair: without it, a torn
	// frame mid-file strands every later append behind a bad CRC, and
	// replay silently discards them all — including fsync'd records of
	// acked jobs.
	path := filepath.Join(t.TempDir(), "wal")
	tear := false
	j, _ := openT(t, path, Options{ShortWriteFault: func() bool { return tear }})
	good := 0
	for i := 0; i < 12; i++ {
		tear = i%3 == 1
		_, err := j.Append("event", "j1", payload{N: i})
		if tear && err == nil {
			t.Fatalf("append %d: torn write did not error", i)
		}
		if !tear {
			if err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
			good++
		}
	}
	j.Close()
	rep, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != good || rep.Corrupt {
		t.Fatalf("replay kept %d of %d successful appends (corrupt=%v)", len(rep.Records), good, rep.Corrupt)
	}
}

func TestFsyncFailureDegradesAndCompactHeals(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	var syncErr error
	j, _ := openT(t, path, Options{SyncFault: func() error { return syncErr }})
	recs := appendN(t, j, 2)

	syncErr = errors.New("injected fsync failure")
	if _, err := j.Append("event", "j1", payload{N: 9}); err == nil {
		t.Fatal("failed fsync did not surface")
	}
	if !j.Degraded() {
		t.Fatal("failed fsync did not degrade the journal")
	}
	// Degraded journals refuse appends instead of writing past damage.
	if _, err := j.Append("event", "j1", payload{N: 10}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("append while degraded = %v, want ErrDegraded", err)
	}

	// A compaction rewrites the live records to a fresh synced file and
	// clears the degradation; appends resume with a fresh Seq (the seq
	// claimed by the frame whose fsync failed is never reused).
	syncErr = nil
	if err := j.Compact(recs); err != nil {
		t.Fatal(err)
	}
	if j.Degraded() {
		t.Fatal("compaction did not clear degradation")
	}
	rec, err := j.Append("event", "j1", payload{N: 11})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq <= recs[1].Seq+1 {
		t.Errorf("post-degradation seq %d reuses the failed append's seq (last good %d)", rec.Seq, recs[1].Seq)
	}
	j.Close()
	rep, err := ReadAll(path)
	if err != nil || len(rep.Records) != 3 || rep.Corrupt {
		t.Fatalf("replay after heal = %+v, %v", rep, err)
	}
}

func TestFsyncObserverAndPolicies(t *testing.T) {
	var syncs int
	path := filepath.Join(t.TempDir(), "wal")
	j, _ := openT(t, path, Options{Sync: SyncAlways, OnFsync: func(d time.Duration) {
		if d < 0 {
			t.Errorf("negative fsync latency %v", d)
		}
		syncs++
	}})
	appendN(t, j, 3)
	if syncs != 3 {
		t.Errorf("SyncAlways fsyncs = %d, want 3", syncs)
	}
	j.Close()

	syncs = 0
	path2 := filepath.Join(t.TempDir(), "wal")
	j2, _ := openT(t, path2, Options{Sync: SyncNever, OnFsync: func(time.Duration) { syncs++ }})
	appendN(t, j2, 3)
	if syncs != 0 {
		t.Errorf("SyncNever fsyncs = %d, want 0", syncs)
	}
	if err := j2.Sync(); err != nil {
		t.Fatal(err)
	}
	if syncs != 1 {
		t.Errorf("explicit Sync observed %d times", syncs)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"": SyncAlways, "always": SyncAlways, "never": SyncNever, "off": SyncNever} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestClosedJournalRejectsOperations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _ := openT(t, path, Options{})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if _, err := j.Append("event", "", nil); err == nil {
		t.Error("append after close accepted")
	}
	if err := j.Compact(nil); err == nil {
		t.Error("compact after close accepted")
	}
	if err := j.Sync(); err == nil {
		t.Error("sync after close accepted")
	}
}

func TestReadAllMissingFile(t *testing.T) {
	rep, err := ReadAll(filepath.Join(t.TempDir(), "nope"))
	if err != nil || len(rep.Records) != 0 {
		t.Fatalf("ReadAll(missing) = %+v, %v", rep, err)
	}
}
