// Package journal is partitad's crash-safety layer: an append-only,
// checksummed, fsync'd write-ahead log of job lifecycle records. The
// service appends a record per state transition (submit, running,
// incumbent checkpoint, done, failed); after a crash, Open replays the
// surviving records so the daemon can re-enqueue unfinished jobs and
// restore finished results.
//
// # On-disk format
//
// The file is a sequence of frames:
//
//	uint32 LE  payload length n
//	uint32 LE  CRC32-Castagnoli of the payload
//	n bytes    payload (one JSON-encoded Record)
//
// There is no file header: a zero-length file is an empty, valid
// journal. Appends are atomic-enough under the POSIX guarantee that
// single write(2) calls to an O_APPEND-less fd at a tracked offset are
// applied in order; a crash can only tear the final frame. Replay
// therefore treats any malformed suffix — short header, short payload,
// checksum mismatch, or undecodable JSON — as a torn tail: it truncates
// the file back to the last whole record and carries on. Corruption is
// repaired, never fatal.
//
// A failed append in a live process gets the same treatment: the file
// is truncated back to the last whole record before any further append,
// so a torn frame can never strand later records behind a bad CRC. If
// that repair (or an fsync) fails, the journal degrades — appends
// return ErrDegraded until a Compact rewrites the live records to a
// fresh file.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// castagnoli is the CRC32-C table shared by append and replay.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameHeader is the fixed per-record overhead: payload length + CRC.
const frameHeader = 8

// MaxRecordBytes bounds a single record payload. Replay rejects larger
// length fields as corruption (a torn length prefix would otherwise ask
// for a multi-gigabyte allocation).
const MaxRecordBytes = 16 << 20

// ErrDegraded reports that an earlier append failure could not be
// repaired (or an fsync failed), so the journal refuses further appends
// rather than risk writing past a torn frame. A successful Compact —
// which rewrites the live records to a fresh file — clears the state.
var ErrDegraded = errors.New("journal: degraded, appends suspended until compaction")

// Record is one journaled event. The journal itself is
// schema-agnostic: Type and Data are owned by the caller (the service
// layer defines submit/running/checkpoint/done/failed payloads).
type Record struct {
	// Seq is the journal-assigned monotonic sequence number.
	Seq uint64 `json:"seq"`
	// Type names the event (caller-defined).
	Type string `json:"type"`
	// Job identifies the subject job, when any.
	Job string `json:"job,omitempty"`
	// At is the append wall-clock time.
	At time.Time `json:"at"`
	// Data is the type-specific payload.
	Data json.RawMessage `json:"data,omitempty"`
}

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: no accepted record is lost
	// to a crash. The default.
	SyncAlways SyncPolicy = iota
	// SyncNever leaves flushing to the OS: fastest, loses the unsynced
	// suffix on power failure. Replay still repairs any torn tail.
	SyncNever
)

// ParseSyncPolicy maps the -journal-sync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "always":
		return SyncAlways, nil
	case "never", "off":
		return SyncNever, nil
	}
	return SyncAlways, fmt.Errorf("journal: unknown sync policy %q (want always or never)", s)
}

// Options tunes a Journal.
type Options struct {
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// OnFsync, when non-nil, observes every fsync's latency.
	OnFsync func(time.Duration)
	// WriteFault, when non-nil, is consulted before each append; a
	// non-nil result fails the append without touching the file
	// (fault injection).
	WriteFault func() error
	// ShortWriteFault, when non-nil and true, tears the append mid-frame
	// — the frame header and half the payload reach the file, then the
	// append fails (fault injection; Append repairs the torn frame by
	// truncating back to the last whole record).
	ShortWriteFault func() bool
	// SyncFault, when non-nil, is consulted in place of the real result
	// before each append's fsync; a non-nil error fails the sync and
	// degrades the journal (fault injection).
	SyncFault func() error
}

// Journal is an open write-ahead log. Safe for concurrent use.
type Journal struct {
	path string
	opts Options

	mu        sync.Mutex
	f         *os.File
	seq       uint64
	off       int64  // end of the last whole record on disk
	appends   uint64 // records appended since open/compact
	compacted uint64 // lifetime compaction count
	closed    bool
	degraded  bool // append failed and the file could not be repaired
}

// Replay is what Open recovered from disk.
type Replay struct {
	// Records are the decoded whole records, in append order.
	Records []Record
	// TruncatedBytes counts bytes dropped from a torn or corrupt tail
	// (0 for a clean file).
	TruncatedBytes int64
	// Corrupt reports that the drop was a mid-frame checksum or decode
	// failure rather than a short tail.
	Corrupt bool
	// Elapsed is the replay wall time.
	Elapsed time.Duration
}

// Open opens (creating if absent) the journal at path, replays every
// whole record, repairs any torn tail by truncation, and leaves the
// file positioned for appends. The parent directory must exist.
func Open(path string, opts Options) (*Journal, *Replay, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: open: %w", err)
	}
	rep, goodOff, err := replay(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if rep.TruncatedBytes > 0 {
		if err := f.Truncate(goodOff); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(goodOff, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: seek: %w", err)
	}
	j := &Journal{path: path, opts: opts, f: f, off: goodOff}
	for _, r := range rep.Records {
		if r.Seq > j.seq {
			j.seq = r.Seq
		}
	}
	return j, rep, nil
}

// ReadAll replays the journal at path without opening it for writing or
// repairing the tail. Missing files read as empty.
func ReadAll(path string) (*Replay, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return &Replay{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: open: %w", err)
	}
	defer f.Close()
	rep, _, err := replay(f)
	return rep, err
}

// replay scans f from the start, returning the decoded records and the
// offset just past the last whole record.
func replay(f *os.File) (*Replay, int64, error) {
	start := time.Now()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, 0, fmt.Errorf("journal: size: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("journal: rewind: %w", err)
	}
	rep := &Replay{}
	var off int64
	var hdr [frameHeader]byte
	for {
		_, err := io.ReadFull(f, hdr[:])
		if err == io.EOF {
			break // clean end
		}
		if err == io.ErrUnexpectedEOF {
			rep.TruncatedBytes = size - off
			break // torn header
		}
		if err != nil {
			return nil, 0, fmt.Errorf("journal: read header: %w", err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > MaxRecordBytes {
			rep.TruncatedBytes = size - off
			rep.Corrupt = true
			break // garbage length field
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				rep.TruncatedBytes = size - off
				break // torn payload
			}
			return nil, 0, fmt.Errorf("journal: read payload: %w", err)
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			rep.TruncatedBytes = size - off
			rep.Corrupt = true
			break // bit rot or torn rewrite: drop this record and the rest
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			rep.TruncatedBytes = size - off
			rep.Corrupt = true
			break
		}
		rep.Records = append(rep.Records, rec)
		off += int64(frameHeader) + int64(length)
	}
	rep.Elapsed = time.Since(start)
	return rep, off, nil
}

// Append journals one record: Data is marshaled, framed, written, and
// synced per the policy. The assigned Record (with Seq and At filled
// in) is returned. Appends after Close fail.
func (j *Journal) Append(typ, jobID string, data any) (Record, error) {
	var raw json.RawMessage
	if data != nil {
		b, err := json.Marshal(data)
		if err != nil {
			return Record{}, fmt.Errorf("journal: marshal %s: %w", typ, err)
		}
		raw = b
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return Record{}, errors.New("journal: closed")
	}
	if j.degraded {
		return Record{}, ErrDegraded
	}
	if j.opts.WriteFault != nil {
		if err := j.opts.WriteFault(); err != nil {
			return Record{}, err
		}
	}
	rec := Record{Seq: j.seq + 1, Type: typ, Job: jobID, At: time.Now().UTC(), Data: raw}
	payload, err := json.Marshal(rec)
	if err != nil {
		return Record{}, fmt.Errorf("journal: marshal record: %w", err)
	}
	if len(payload) > MaxRecordBytes {
		return Record{}, fmt.Errorf("journal: record %s exceeds %d bytes", typ, MaxRecordBytes)
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeader:], payload)
	if j.opts.ShortWriteFault != nil && j.opts.ShortWriteFault() {
		// Simulate a torn write: half the frame lands, then the append
		// fails. Unlike a real crash the process lives on, so the torn
		// frame must be repaired before the next append — otherwise every
		// later record would sit behind a bad CRC and be silently dropped
		// at replay.
		_, _ = j.f.Write(frame[:frameHeader+len(payload)/2])
		_ = j.f.Sync()
		j.repair()
		return Record{}, errors.New("journal: injected short write")
	}
	if _, err := j.f.Write(frame); err != nil {
		// A failed write (ENOSPC, EIO) can leave a partial frame at the
		// tail; restore the file to the last whole record before
		// accepting more appends.
		j.repair()
		return Record{}, fmt.Errorf("journal: write: %w", err)
	}
	// The frame is fully written: claim its Seq now, even if the fsync
	// below fails, so no later record can ever share it.
	j.seq = rec.Seq
	if err := j.sync(); err != nil {
		// After a failed fsync the page cache can no longer be trusted to
		// hold what was written: suspend appends until a compaction
		// rewrites the live records to a fresh, fully synced file.
		j.degraded = true
		return Record{}, err
	}
	j.off += int64(len(frame))
	j.appends++
	return rec, nil
}

// repair restores the file to end at the last whole record after a
// failed append. If the truncate or seek itself fails, the journal
// flips to degraded: appends stop rather than risk landing past a torn
// frame (a successful Compact clears the state). Callers hold j.mu.
func (j *Journal) repair() {
	for attempt := 0; attempt < 3; attempt++ {
		if err := j.f.Truncate(j.off); err != nil {
			continue
		}
		if _, err := j.f.Seek(j.off, io.SeekStart); err != nil {
			continue
		}
		return
	}
	j.degraded = true
}

// Degraded reports whether appends are suspended after an unrepairable
// failure; Compact clears it.
func (j *Journal) Degraded() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.degraded
}

// sync flushes per policy; callers hold j.mu.
func (j *Journal) sync() error {
	if j.opts.Sync == SyncNever {
		return nil
	}
	if j.opts.SyncFault != nil {
		if err := j.opts.SyncFault(); err != nil {
			return err
		}
	}
	start := time.Now()
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	if j.opts.OnFsync != nil {
		j.opts.OnFsync(time.Since(start))
	}
	return nil
}

// Sync forces an fsync regardless of policy.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: closed")
	}
	start := time.Now()
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	if j.opts.OnFsync != nil {
		j.opts.OnFsync(time.Since(start))
	}
	return nil
}

// Compact atomically replaces the journal's contents with exactly the
// live records: they are rewritten (keeping their Seq and At) to a
// temporary file in the same directory, fsync'd, and renamed over the
// old log. Dead records — checkpoints of finished jobs, state
// transitions subsumed by a final state — are how the log stays
// bounded; the caller decides what is live.
func (j *Journal) Compact(live []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: closed")
	}
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(j.path)+".compact-*")
	if err != nil {
		return fmt.Errorf("journal: compact temp: %w", err)
	}
	tmpPath := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	maxSeq := j.seq
	for _, rec := range live {
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
		payload, err := json.Marshal(rec)
		if err != nil {
			return fail(fmt.Errorf("journal: compact marshal: %w", err))
		}
		var hdr [frameHeader]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
		if _, err := tmp.Write(hdr[:]); err != nil {
			return fail(fmt.Errorf("journal: compact write: %w", err))
		}
		if _, err := tmp.Write(payload); err != nil {
			return fail(fmt.Errorf("journal: compact write: %w", err))
		}
	}
	start := time.Now()
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("journal: compact fsync: %w", err))
	}
	if j.opts.OnFsync != nil {
		j.opts.OnFsync(time.Since(start))
	}
	if err := tmp.Close(); err != nil {
		return fail(fmt.Errorf("journal: compact close: %w", err))
	}
	if err := os.Rename(tmpPath, j.path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("journal: compact rename: %w", err)
	}
	syncDir(dir)
	old := j.f
	f, err := os.OpenFile(j.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("journal: reopen after compact: %w", err)
	}
	end, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return fmt.Errorf("journal: seek after compact: %w", err)
	}
	j.f = f
	old.Close()
	j.seq = maxSeq
	j.off = end
	j.appends = 0
	j.compacted++
	// The live records now sit in a fresh, fully synced file: whatever
	// append failure degraded the journal has been written around.
	j.degraded = false
	return nil
}

// syncDir fsyncs a directory so a rename is durable; errors are
// ignored (not all filesystems support it).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	d.Close()
}

// AppendsSinceCompact counts records appended since Open or the last
// Compact — the caller's compaction trigger.
func (j *Journal) AppendsSinceCompact() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appends
}

// Compactions counts completed compactions over the journal's lifetime.
func (j *Journal) Compactions() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.compacted
}

// Path returns the journal file path.
func (j *Journal) Path() string { return j.path }

// Close syncs and closes the file. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	serr := j.f.Sync()
	cerr := j.f.Close()
	if serr != nil {
		return fmt.Errorf("journal: close sync: %w", serr)
	}
	return cerr
}
