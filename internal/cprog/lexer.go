// Package cprog implements a small C-like front-end for embedded DSP
// kernels: a lexer, a recursive-descent parser producing an AST, and a
// semantic analyzer. It covers the subset of C that the Partita flow of
// Choi et al. (DAC 1999) consumes — integer scalars and arrays, the usual
// expression operators, if/while/for control flow, and function calls —
// plus `xmem`/`ymem` storage qualifiers to pin arrays to one of the two
// DSP data memories.
package cprog

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies a token.
type TokKind int

const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokPunct   // operators and delimiters
	TokKeyword // int, if, else, while, for, return, void, xmem, ymem
)

var keywords = map[string]bool{
	"int": true, "if": true, "else": true, "while": true, "for": true,
	"return": true, "void": true, "xmem": true, "ymem": true,
	"break": true, "continue": true,
}

// Token is one lexical unit with its source position.
type Token struct {
	Kind TokKind
	Text string
	Num  int64 // value when Kind == TokNumber
	Pos  Pos
}

// Pos is a line/column source position (1-based).
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a front-end diagnostic carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...interface{}) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Lex splits src into tokens. Comments (// and /* */) are skipped. The
// returned slice always ends with a TokEOF token.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	n := len(src)
	advance := func(k int) {
		for j := 0; j < k; j++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			start := Pos{line, col}
			advance(2)
			closed := false
			for i+1 < n {
				if src[i] == '*' && src[i+1] == '/' {
					advance(2)
					closed = true
					break
				}
				advance(1)
			}
			if !closed {
				return nil, errf(start, "unterminated block comment")
			}
		case unicode.IsDigit(rune(c)):
			pos := Pos{line, col}
			j := i
			base := int64(10)
			if c == '0' && i+1 < n && (src[i+1] == 'x' || src[i+1] == 'X') {
				base = 16
				advance(2)
				j = i
				for i < n && isHexDigit(src[i]) {
					advance(1)
				}
				if i == j {
					return nil, errf(pos, "malformed hex literal")
				}
			} else {
				for i < n && unicode.IsDigit(rune(src[i])) {
					advance(1)
				}
			}
			text := src[j:i]
			var v int64
			for _, ch := range text {
				v = v*base + int64(hexVal(byte(ch)))
			}
			toks = append(toks, Token{Kind: TokNumber, Text: src[j:i], Num: v, Pos: pos})
		case unicode.IsLetter(rune(c)) || c == '_':
			pos := Pos{line, col}
			j := i
			for i < n && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				advance(1)
			}
			text := src[j:i]
			kind := TokIdent
			if keywords[text] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: text, Pos: pos})
		default:
			pos := Pos{line, col}
			// Longest-match punctuation.
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "<<", ">>", "<=", ">=", "==", "!=", "&&", "||":
				advance(2)
				toks = append(toks, Token{Kind: TokPunct, Text: two, Pos: pos})
				continue
			}
			if strings.ContainsRune("+-*/%<>=!&|^~(){}[];,", rune(c)) {
				advance(1)
				toks = append(toks, Token{Kind: TokPunct, Text: string(c), Pos: pos})
				continue
			}
			return nil, errf(pos, "unexpected character %q", string(c))
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: Pos{line, col}})
	return toks, nil
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return 0
}
