package cprog

import (
	"strings"
	"testing"
)

const firSrc = `
// 16-tap FIR filter over a block of samples.
xmem int coef[4] = {1, 2, 3, 4};

int fir(xmem int x[], ymem int h[], xmem int y[], int n, int taps) {
	int i;
	int j;
	int acc;
	for (i = 0; i < n; i = i + 1) {
		acc = 0;
		for (j = 0; j < taps; j = j + 1) {
			acc = acc + x[i + j] * h[j];
		}
		y[i] = acc >> 2;
	}
	return 0;
}

int main() {
	xmem int x[8];
	ymem int h[4];
	xmem int y[8];
	int r;
	r = fir(x, h, y, 5, 4);
	return r;
}
`

func TestLexBasics(t *testing.T) {
	toks, err := Lex("int a = 0x1F; // comment\n/* block */ a = a << 2;")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
		texts = append(texts, tk.Text)
	}
	if toks[len(toks)-1].Kind != TokEOF {
		t.Error("missing EOF token")
	}
	// int a = 31 ; a = a << 2 ; EOF
	if len(toks) != 12 {
		t.Fatalf("got %d tokens (%v), want 12", len(toks), texts)
	}
	if toks[3].Kind != TokNumber || toks[3].Num != 31 {
		t.Errorf("hex literal = %+v, want 31", toks[3])
	}
	if toks[8].Text != "<<" {
		t.Errorf("token 8 = %q, want <<", toks[8].Text)
	}
	_ = kinds
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) || toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("positions = %v %v, want 1:1 2:3", toks[0].Pos, toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"@", "/* unterminated", "0x"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded, want error", src)
		}
	}
}

func TestParseFIR(t *testing.T) {
	f, err := Parse(firSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Globals) != 1 || f.Globals[0].Name != "coef" || f.Globals[0].Size != 4 {
		t.Errorf("globals = %+v", f.Globals)
	}
	if f.Globals[0].Bank != BankX {
		t.Errorf("coef bank = %v, want xmem", f.Globals[0].Bank)
	}
	fir := f.Func("fir")
	if fir == nil {
		t.Fatal("fir not parsed")
	}
	if len(fir.Params) != 5 || !fir.Params[0].IsArray || fir.Params[3].IsArray {
		t.Errorf("fir params = %+v", fir.Params)
	}
	if f.Func("main") == nil {
		t.Error("main not parsed")
	}
}

func TestParsePrecedence(t *testing.T) {
	f, err := Parse("int f(int a, int b, int c) { return a + b * c << 1; }")
	if err != nil {
		t.Fatal(err)
	}
	ret := f.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	// << binds loosest here: ((a + (b*c)) << 1)
	if got := ExprString(ret.Value); got != "((a + (b * c)) << 1)" {
		t.Errorf("expression = %s", got)
	}
}

func TestParseUnaryFold(t *testing.T) {
	f, err := Parse("int f() { return -5; }")
	if err != nil {
		t.Fatal(err)
	}
	ret := f.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	n, ok := ret.Value.(*NumExpr)
	if !ok || n.Value != -5 {
		t.Errorf("return value = %s, want folded -5", ExprString(ret.Value))
	}
}

func TestParseIfElseAndSingleStatementBodies(t *testing.T) {
	src := `int f(int a) {
		if (a > 0) a = a - 1; else { a = 0; }
		while (a) a = a - 1;
		return a;
	}`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ifs, ok := f.Funcs[0].Body.Stmts[0].(*IfStmt)
	if !ok || ifs.Else == nil {
		t.Fatalf("if/else not parsed: %+v", f.Funcs[0].Body.Stmts[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"int f( {",                             // bad params
		"int f() { return 1 }",                 // missing semicolon
		"int f() { 1 = 2; return 0; }",         // bad lvalue
		"int a[0];",                            // zero-size array
		"int a[2] = {1,2,3};",                  // too many initializers
		"xmem int f() { return 0; }",           // qualifier on function
		"int f() { int x; x = y; return 0; }x", // trailing garbage / undefined handled by sema, parse err on x
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestAnalyzeFIR(t *testing.T) {
	f, err := Parse(firSrc)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	mainInfo := info.Funcs["main"]
	if len(mainInfo.Calls) != 1 || mainInfo.Calls[0] != "fir" {
		t.Errorf("main calls = %v", mainInfo.Calls)
	}
	cg := info.CallGraph()
	if len(cg["fir"]) != 0 {
		t.Errorf("fir calls = %v, want none", cg["fir"])
	}
}

func TestAnalyzeAutoBankAlternates(t *testing.T) {
	src := `
int a[4];
int b[4];
int c[4];
int main() { return a[0] + b[0] + c[0]; }
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(f); err != nil {
		t.Fatal(err)
	}
	if f.Globals[0].Bank == f.Globals[1].Bank {
		t.Errorf("banks do not alternate: %v %v", f.Globals[0].Bank, f.Globals[1].Bank)
	}
	if f.Globals[0].Bank != f.Globals[2].Bank {
		t.Errorf("banks should cycle: %v %v", f.Globals[0].Bank, f.Globals[2].Bank)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"undefined var", "int f() { return x; }"},
		{"undefined func", "int f() { return g(); }"},
		{"arity", "int g(int a) { return a; } int f() { return g(); }"},
		{"array as scalar", "int a[4]; int f() { return a; }"},
		{"scalar as array", "int a; int f() { return a[0]; }"},
		{"assign to array", "int a[4]; int f() { a = 3; return 0; }"},
		{"duplicate local", "int f() { int x; int x; return 0; }"},
		{"duplicate global", "int a; int a;"},
		{"duplicate func", "int f() { return 0; } int f() { return 1; }"},
		{"missing return", "int f() { int x; x = 1; }"},
		{"void returns value", "void f() { return 3; }"},
		{"int returns nothing", "int f() { return; }"},
		{"recursion", "int f(int n) { return f(n); }"},
		{"mutual recursion", "int g(int n) { return h(n); } int h(int n) { return g(n); }"},
		{"scalar arg for array param", "int g(int a[]) { return a[0]; } int f() { int x; x = 0; return g(x); }"},
		{"qualifier on scalar", "xmem int a;"},
		{"break outside loop", "int f() { break; return 0; }"},
		{"continue outside loop", "int f() { continue; return 0; }"},
	}
	for _, c := range cases {
		f, err := Parse(c.src)
		if err != nil {
			// mutual recursion case parses; others too. Parse failure here is a test bug.
			t.Errorf("%s: parse error: %v", c.name, err)
			continue
		}
		if _, err := Analyze(f); err == nil {
			t.Errorf("%s: Analyze succeeded, want error", c.name)
		}
	}
}

func TestAnalyzeVoidFunction(t *testing.T) {
	src := `
int buf[4];
void clear(int n) {
	int i;
	for (i = 0; i < n; i = i + 1) { buf[i] = 0; }
}
int main() { clear(4); return 0; }
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(f); err != nil {
		t.Fatal(err)
	}
}

func TestErrorMessagesCarryPosition(t *testing.T) {
	_, err := Parse("int f() {\n  return @;\n}")
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error %q lacks line number", err)
	}
}
