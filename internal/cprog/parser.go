package cprog

// Parse lexes and parses src into a File. Errors carry line:col positions.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f, err := p.file()
	if err != nil {
		return nil, err
	}
	return f, nil
}

// maxNestDepth bounds statement/expression nesting. The recursive-descent
// parser (and every AST walker behind it — sema, lowering, printing)
// recurses once per nesting level, so without a cap a source file of ten
// thousand open parentheses overflows the goroutine stack and kills the
// process. Real DSP kernels nest a handful of levels deep; 256 is far
// beyond anything legitimate while keeping the worst-case recursion of
// all downstream passes trivially stack-safe.
const maxNestDepth = 256

type parser struct {
	toks  []Token
	i     int
	depth int // current statement/expression nesting depth
}

func (p *parser) cur() Token  { return p.toks[p.i] }
func (p *parser) next() Token { t := p.toks[p.i]; p.i++; return t }

// enter guards one level of recursion; every call must be paired with
// leave on the non-error path.
func (p *parser) enter() error {
	p.depth++
	if p.depth > maxNestDepth {
		return errf(p.cur().Pos, "nesting deeper than %d levels", maxNestDepth)
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

func (p *parser) at(text string) bool {
	t := p.cur()
	return (t.Kind == TokPunct || t.Kind == TokKeyword) && t.Text == text
}

func (p *parser) accept(text string) bool {
	if p.at(text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(text string) (Token, error) {
	if p.at(text) {
		return p.next(), nil
	}
	t := p.cur()
	return t, errf(t.Pos, "expected %q, found %q", text, tokenDesc(t))
}

func tokenDesc(t Token) string {
	if t.Kind == TokEOF {
		return "end of file"
	}
	return t.Text
}

func (p *parser) ident() (Token, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return t, errf(t.Pos, "expected identifier, found %q", tokenDesc(t))
	}
	return p.next(), nil
}

// file = { globalDecl | funcDecl } EOF
func (p *parser) file() (*File, error) {
	f := &File{}
	for p.cur().Kind != TokEOF {
		bank := p.bankQualifier()
		void := false
		if p.accept("void") {
			void = true
		} else if _, err := p.expect("int"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if p.at("(") {
			fn, err := p.funcRest(name, void)
			if err != nil {
				return nil, err
			}
			if bank != BankAuto {
				return nil, errf(name.Pos, "memory qualifier not allowed on function %q", name.Text)
			}
			f.Funcs = append(f.Funcs, fn)
			continue
		}
		if void {
			return nil, errf(name.Pos, "void variable %q", name.Text)
		}
		g, err := p.varRest(name, bank)
		if err != nil {
			return nil, err
		}
		f.Globals = append(f.Globals, g)
	}
	return f, nil
}

func (p *parser) bankQualifier() Bank {
	if p.accept("xmem") {
		return BankX
	}
	if p.accept("ymem") {
		return BankY
	}
	return BankAuto
}

// varRest parses the remainder of a variable declaration after `int name`.
func (p *parser) varRest(name Token, bank Bank) (*VarDecl, error) {
	d := &VarDecl{Name: name.Text, Bank: bank, Pos: name.Pos}
	if p.accept("[") {
		sz := p.cur()
		if sz.Kind != TokNumber {
			return nil, errf(sz.Pos, "array size must be a literal, found %q", tokenDesc(sz))
		}
		p.next()
		if sz.Num <= 0 {
			return nil, errf(sz.Pos, "array %q has non-positive size %d", name.Text, sz.Num)
		}
		d.Size = int(sz.Num)
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
	}
	if p.accept("=") {
		if d.Size > 0 {
			if _, err := p.expect("{"); err != nil {
				return nil, err
			}
			for !p.at("}") {
				v, err := p.literalValue()
				if err != nil {
					return nil, err
				}
				d.Init = append(d.Init, v)
				if !p.accept(",") {
					break
				}
			}
			if _, err := p.expect("}"); err != nil {
				return nil, err
			}
			if len(d.Init) > d.Size {
				return nil, errf(name.Pos, "array %q has %d initializers for size %d", name.Text, len(d.Init), d.Size)
			}
		} else {
			v, err := p.literalValue()
			if err != nil {
				return nil, err
			}
			d.Init = []int64{v}
		}
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return d, nil
}

// literalValue parses an optionally negated integer literal.
func (p *parser) literalValue() (int64, error) {
	neg := p.accept("-")
	t := p.cur()
	if t.Kind != TokNumber {
		return 0, errf(t.Pos, "expected integer literal, found %q", tokenDesc(t))
	}
	p.next()
	if neg {
		return -t.Num, nil
	}
	return t.Num, nil
}

// funcRest parses params and body after `int|void name`.
func (p *parser) funcRest(name Token, void bool) (*FuncDecl, error) {
	fn := &FuncDecl{Name: name.Text, Void: void, Pos: name.Pos}
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	if !p.at(")") {
		if p.accept("void") {
			// (void) parameter list
		} else {
			for {
				bank := p.bankQualifier()
				if _, err := p.expect("int"); err != nil {
					return nil, err
				}
				pn, err := p.ident()
				if err != nil {
					return nil, err
				}
				param := &Param{Name: pn.Text, Bank: bank, Pos: pn.Pos}
				if p.accept("[") {
					if _, err := p.expect("]"); err != nil {
						return nil, err
					}
					param.IsArray = true
				} else if bank != BankAuto {
					return nil, errf(pn.Pos, "memory qualifier on scalar parameter %q", pn.Text)
				}
				fn.Params = append(fn.Params, param)
				if !p.accept(",") {
					break
				}
			}
		}
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) block() (*BlockStmt, error) {
	open, err := p.expect("{")
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{Pos_: open.Pos}
	for !p.at("}") {
		if p.cur().Kind == TokEOF {
			return nil, errf(open.Pos, "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // consume }
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	t := p.cur()
	switch {
	case p.at("{"):
		return p.block()
	case p.at("xmem") || p.at("ymem") || p.at("int"):
		bank := p.bankQualifier()
		if _, err := p.expect("int"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		d, err := p.varRest(name, bank)
		if err != nil {
			return nil, err
		}
		return &DeclStmt{Decl: d}, nil
	case p.at("if"):
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.blockOrSingle()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Cond: cond, Then: then, Pos_: t.Pos}
		if p.accept("else") {
			els, err := p.blockOrSingle()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil
	case p.at("while"):
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.blockOrSingle()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Pos_: t.Pos}, nil
	case p.at("for"):
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		st := &ForStmt{Pos_: t.Pos}
		if !p.at(";") {
			a, err := p.assign()
			if err != nil {
				return nil, err
			}
			st.Init = a
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		if !p.at(";") {
			cond, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.Cond = cond
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		if !p.at(")") {
			a, err := p.assign()
			if err != nil {
				return nil, err
			}
			st.Post = a
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.blockOrSingle()
		if err != nil {
			return nil, err
		}
		st.Body = body
		return st, nil
	case p.at("break"):
		p.next()
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos_: t.Pos}, nil
	case p.at("continue"):
		p.next()
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos_: t.Pos}, nil
	case p.at("return"):
		p.next()
		st := &ReturnStmt{Pos_: t.Pos}
		if !p.at(";") {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.Value = v
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return st, nil
	default:
		// assignment or expression statement
		start := p.i
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if p.at("=") {
			p.i = start
			a, err := p.assign()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(";"); err != nil {
				return nil, err
			}
			return a, nil
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ExprStmt{X: e}, nil
	}
}

// blockOrSingle parses either a braced block or a single statement
// wrapped in an implicit block.
func (p *parser) blockOrSingle() (*BlockStmt, error) {
	if p.at("{") {
		return p.block()
	}
	t := p.cur()
	s, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return &BlockStmt{Stmts: []Stmt{s}, Pos_: t.Pos}, nil
}

// assign = lvalue '=' expr
func (p *parser) assign() (*AssignStmt, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	switch lhs.(type) {
	case *VarRef, *IndexExpr:
	default:
		return nil, errf(lhs.Position(), "invalid assignment target %s", ExprString(lhs))
	}
	if _, err := p.expect("="); err != nil {
		return nil, err
	}
	rhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &AssignStmt{LHS: lhs, RHS: rhs}, nil
}

// Operator precedence, loosest first.
var precedence = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) expr() (Expr, error) { return p.binary(1) }

func (p *parser) binary(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return lhs, nil
		}
		prec, ok := precedence[t.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: t.Text, X: lhs, Y: rhs}
	}
}

func (p *parser) unary() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	t := p.cur()
	if t.Kind == TokPunct && (t.Text == "-" || t.Text == "!" || t.Text == "~") {
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		if n, ok := x.(*NumExpr); ok && t.Text == "-" {
			return &NumExpr{Value: -n.Value, Pos_: t.Pos}, nil
		}
		return &UnaryExpr{Op: t.Text, X: x, Pos_: t.Pos}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		p.next()
		return &NumExpr{Value: t.Num, Pos_: t.Pos}, nil
	case t.Kind == TokIdent:
		p.next()
		if p.accept("(") {
			call := &CallExpr{Callee: t.Text, Pos_: t.Pos}
			if !p.at(")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(",") {
						break
					}
				}
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		if p.accept("[") {
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			return &IndexExpr{Array: t.Text, Index: idx, Pos_: t.Pos}, nil
		}
		return &VarRef{Name: t.Text, Pos_: t.Pos}, nil
	case p.at("("):
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, errf(t.Pos, "unexpected %q in expression", tokenDesc(t))
}
