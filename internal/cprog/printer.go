package cprog

import (
	"fmt"
	"strings"
)

// Print renders a parsed File back to mini-C source. The output
// re-parses to an equivalent AST (round-trip property), which the tests
// rely on and which makes the printer useful for emitting transformed
// programs.
func Print(f *File) string {
	var b strings.Builder
	for _, g := range f.Globals {
		b.WriteString(printVarDecl(g, ""))
	}
	if len(f.Globals) > 0 && len(f.Funcs) > 0 {
		b.WriteString("\n")
	}
	for i, fn := range f.Funcs {
		if i > 0 {
			b.WriteString("\n")
		}
		printFunc(&b, fn)
	}
	return b.String()
}

func bankPrefix(bank Bank) string {
	switch bank {
	case BankX:
		return "xmem "
	case BankY:
		return "ymem "
	}
	return ""
}

func printVarDecl(d *VarDecl, indent string) string {
	var b strings.Builder
	b.WriteString(indent)
	b.WriteString(bankPrefix(d.Bank))
	b.WriteString("int ")
	b.WriteString(d.Name)
	if d.Size > 0 {
		fmt.Fprintf(&b, "[%d]", d.Size)
		if len(d.Init) > 0 {
			vals := make([]string, len(d.Init))
			for i, v := range d.Init {
				vals[i] = fmt.Sprintf("%d", v)
			}
			fmt.Fprintf(&b, " = {%s}", strings.Join(vals, ", "))
		}
	} else if len(d.Init) == 1 {
		fmt.Fprintf(&b, " = %d", d.Init[0])
	}
	b.WriteString(";\n")
	return b.String()
}

func printFunc(b *strings.Builder, fn *FuncDecl) {
	ret := "int"
	if fn.Void {
		ret = "void"
	}
	params := make([]string, len(fn.Params))
	for i, p := range fn.Params {
		s := bankPrefix(p.Bank) + "int " + p.Name
		if p.IsArray {
			s += "[]"
		}
		params[i] = s
	}
	fmt.Fprintf(b, "%s %s(%s) ", ret, fn.Name, strings.Join(params, ", "))
	printBlock(b, fn.Body, "")
	b.WriteString("\n")
}

func printBlock(b *strings.Builder, blk *BlockStmt, indent string) {
	b.WriteString("{\n")
	inner := indent + "\t"
	for _, s := range blk.Stmts {
		printStmt(b, s, inner)
	}
	b.WriteString(indent)
	b.WriteString("}")
}

func printStmt(b *strings.Builder, s Stmt, indent string) {
	switch st := s.(type) {
	case *BlockStmt:
		b.WriteString(indent)
		printBlock(b, st, indent)
		b.WriteString("\n")
	case *DeclStmt:
		b.WriteString(printVarDecl(st.Decl, indent))
	case *AssignStmt:
		fmt.Fprintf(b, "%s%s = %s;\n", indent, ExprString(st.LHS), ExprString(st.RHS))
	case *ExprStmt:
		fmt.Fprintf(b, "%s%s;\n", indent, ExprString(st.X))
	case *IfStmt:
		fmt.Fprintf(b, "%sif (%s) ", indent, ExprString(st.Cond))
		printBlock(b, st.Then, indent)
		if st.Else != nil {
			b.WriteString(" else ")
			printBlock(b, st.Else, indent)
		}
		b.WriteString("\n")
	case *WhileStmt:
		fmt.Fprintf(b, "%swhile (%s) ", indent, ExprString(st.Cond))
		printBlock(b, st.Body, indent)
		b.WriteString("\n")
	case *ForStmt:
		init, post := "", ""
		if st.Init != nil {
			init = fmt.Sprintf("%s = %s", ExprString(st.Init.LHS), ExprString(st.Init.RHS))
		}
		cond := ""
		if st.Cond != nil {
			cond = ExprString(st.Cond)
		}
		if st.Post != nil {
			post = fmt.Sprintf("%s = %s", ExprString(st.Post.LHS), ExprString(st.Post.RHS))
		}
		fmt.Fprintf(b, "%sfor (%s; %s; %s) ", indent, init, cond, post)
		printBlock(b, st.Body, indent)
		b.WriteString("\n")
	case *ReturnStmt:
		if st.Value != nil {
			fmt.Fprintf(b, "%sreturn %s;\n", indent, ExprString(st.Value))
		} else {
			fmt.Fprintf(b, "%sreturn;\n", indent)
		}
	case *BreakStmt:
		fmt.Fprintf(b, "%sbreak;\n", indent)
	case *ContinueStmt:
		fmt.Fprintf(b, "%scontinue;\n", indent)
	}
}
