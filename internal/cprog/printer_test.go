package cprog

import "testing"

func TestPrintRoundTrip(t *testing.T) {
	sources := []string{
		firSrc,
		`int g = -5;
xmem int table[3] = {1, -2, 3};
void clear(int n) { int i; for (i = 0; i < n; i = i + 1) { table[0] = 0; } }
int f(int a, ymem int b[]) {
	int x;
	x = 0;
	if (a > 0 && b[0] != 0) { x = a << 2; } else { x = ~a; }
	while (x > 0) { x = x - 1; if (x == 2) { break; } }
	for (x = 0; x < 9; x = x + 1) { if (x == 1) { continue; } }
	return x % 3;
}
int main() { clear(2); return f(g, table); }
`,
	}
	for i, src := range sources {
		f1, err := Parse(src)
		if err != nil {
			t.Fatalf("source %d: parse: %v", i, err)
		}
		printed := Print(f1)
		f2, err := Parse(printed)
		if err != nil {
			t.Fatalf("source %d: re-parse failed: %v\nprinted:\n%s", i, err, printed)
		}
		// Printing the re-parsed AST must be a fixed point.
		printed2 := Print(f2)
		if printed != printed2 {
			t.Errorf("source %d: printing not idempotent:\n--- first ---\n%s\n--- second ---\n%s",
				i, printed, printed2)
		}
		// Both ASTs must pass semantic analysis identically.
		if _, err := Analyze(f2); err != nil {
			t.Errorf("source %d: printed program fails analysis: %v", i, err)
		}
	}
}

func TestPrintPreservesBanks(t *testing.T) {
	src := `xmem int a[2];
ymem int b[2];
int f(xmem int p[], ymem int q[]) { return p[0] + q[0]; }
int main() { return f(a, b); }
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := Print(f)
	f2, err := Parse(printed)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, printed)
	}
	if f2.Globals[0].Bank != BankX || f2.Globals[1].Bank != BankY {
		t.Errorf("banks lost in printing:\n%s", printed)
	}
	if f2.Funcs[0].Params[0].Bank != BankX || f2.Funcs[0].Params[1].Bank != BankY {
		t.Errorf("param banks lost in printing:\n%s", printed)
	}
}
