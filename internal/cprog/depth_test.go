package cprog

import (
	"strings"
	"testing"
)

// Deeply nested input must be rejected with a parse error, not a stack
// overflow: the recursive descent is capped at maxNestDepth levels.
func TestParseDepthLimit(t *testing.T) {
	cases := map[string]string{
		"parens": "int f() { return " + strings.Repeat("(", 5000) + "1" + strings.Repeat(")", 5000) + "; }",
		"blocks": "int f() { " + strings.Repeat("{", 5000) + strings.Repeat("}", 5000) + " return 0; }",
		"ifs":    "int f() { " + strings.Repeat("if (1) ", 5000) + "return 0; }",
		"unary":  "int f() { return " + strings.Repeat("-", 5000) + "1; }",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: pathological nesting accepted", name)
		} else if !strings.Contains(err.Error(), "nesting") {
			t.Errorf("%s: error %q does not mention nesting", name, err)
		}
	}
}

// Reasonable nesting stays accepted: the cap must not reject real code.
func TestParseDepthLimitAllowsSaneNesting(t *testing.T) {
	src := "int f() { return " + strings.Repeat("(", 60) + "1" + strings.Repeat(")", 60) + "; }"
	if _, err := Parse(src); err != nil {
		t.Fatalf("60-deep parens rejected: %v", err)
	}
	src = "int f() { " + strings.Repeat("if (1) { ", 40) + "return 1; " + strings.Repeat("}", 40) + " return 0; }"
	if _, err := Parse(src); err != nil {
		t.Fatalf("40-deep if nest rejected: %v", err)
	}
}
