package cprog

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary bytes through the whole front end. The
// contract under attack: Parse never panics or hangs (the recursive
// descent is depth-limited), and whatever it accepts survives Print and
// Analyze without crashing. Analyze errors are fine — only panics are
// findings.
func FuzzParse(f *testing.F) {
	f.Add("int main() { return 0; }")
	f.Add(`xmem int a[4] = {1, 2, 3, 4};
int sum(xmem int v[], int n) {
	int i; int s;
	s = 0;
	for (i = 0; i < n; i = i + 1) { s = s + v[i]; }
	return s;
}
int main() { return sum(a, 4); }`)
	f.Add("int f() { while (1) { if (x) { break; } else { continue; } } return 0; }")
	f.Add("ymem int c[2] = {-1, 070}; int g(int n) { return n % 0; }")
	f.Add("int f( {")
	f.Add("((((((((((((((((((((")
	f.Add(strings.Repeat("{", 400))
	f.Add("int f() { return " + strings.Repeat("(", 300) + "1" + strings.Repeat(")", 300) + "; }")

	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse(src)
		if err != nil {
			return
		}
		// Accepted input: the printer must render it, and a reparse of
		// the rendering must succeed (the printer emits the language it
		// parses).
		text := Print(file)
		if _, err := Parse(text); err != nil {
			t.Fatalf("reparse of printed form failed: %v\ninput: %q\nprinted:\n%s", err, src, text)
		}
		// Semantic analysis may reject, but must not crash.
		_, _ = Analyze(file)
	})
}
