package cprog

import (
	"fmt"
	"strings"
)

// Bank selects which DSP data memory an array lives in.
type Bank int

const (
	// BankAuto lets the lowering pass choose (it alternates X/Y so that
	// dual-memory fetches can pair).
	BankAuto Bank = iota
	BankX
	BankY
)

func (b Bank) String() string {
	switch b {
	case BankX:
		return "xmem"
	case BankY:
		return "ymem"
	}
	return "auto"
}

// File is a parsed translation unit.
type File struct {
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// Func returns the named function declaration, or nil.
func (f *File) Func(name string) *FuncDecl {
	for _, fn := range f.Funcs {
		if fn.Name == name {
			return fn
		}
	}
	return nil
}

// Param is a function parameter: a scalar int or an int array (declared
// with trailing []).
type Param struct {
	Name    string
	IsArray bool
	Bank    Bank // meaningful for array params
	Pos     Pos
}

// FuncDecl is a function definition. Void reports a `void` return type;
// otherwise the function returns int.
type FuncDecl struct {
	Name   string
	Params []*Param
	Void   bool
	Body   *BlockStmt
	Pos    Pos
}

// VarDecl declares a scalar (Size == 0) or array (Size > 0) variable.
// Init holds the initializer values, if any (a single value for scalars).
type VarDecl struct {
	Name string
	Size int
	Bank Bank
	Init []int64
	Pos  Pos
}

// Stmt is implemented by every statement node.
type Stmt interface {
	stmtNode()
	Position() Pos
}

// Expr is implemented by every expression node.
type Expr interface {
	exprNode()
	Position() Pos
}

// BlockStmt is a braced statement list with its own declaration scope.
type BlockStmt struct {
	Stmts []Stmt
	Pos_  Pos
}

// DeclStmt wraps a local variable declaration.
type DeclStmt struct {
	Decl *VarDecl
}

// AssignStmt stores RHS into LHS (a VarRef or IndexExpr).
type AssignStmt struct {
	LHS Expr
	RHS Expr
}

// ExprStmt evaluates an expression for its side effects (calls).
type ExprStmt struct {
	X Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else *BlockStmt // may be nil
	Pos_ Pos
}

// WhileStmt loops while Cond is nonzero.
type WhileStmt struct {
	Cond Expr
	Body *BlockStmt
	Pos_ Pos
}

// ForStmt is for(Init; Cond; Post) Body. Init and Post are optional
// assignments; Cond is optional (nil means forever).
type ForStmt struct {
	Init *AssignStmt
	Cond Expr
	Post *AssignStmt
	Body *BlockStmt
	Pos_ Pos
}

// ReturnStmt returns Value (nil for void returns).
type ReturnStmt struct {
	Value Expr
	Pos_  Pos
}

// BreakStmt exits the innermost loop.
type BreakStmt struct {
	Pos_ Pos
}

// ContinueStmt jumps to the innermost loop's next iteration (running the
// for-post statement first).
type ContinueStmt struct {
	Pos_ Pos
}

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

func (s *BlockStmt) Position() Pos    { return s.Pos_ }
func (s *DeclStmt) Position() Pos     { return s.Decl.Pos }
func (s *AssignStmt) Position() Pos   { return s.LHS.Position() }
func (s *ExprStmt) Position() Pos     { return s.X.Position() }
func (s *IfStmt) Position() Pos       { return s.Pos_ }
func (s *WhileStmt) Position() Pos    { return s.Pos_ }
func (s *ForStmt) Position() Pos      { return s.Pos_ }
func (s *ReturnStmt) Position() Pos   { return s.Pos_ }
func (s *BreakStmt) Position() Pos    { return s.Pos_ }
func (s *ContinueStmt) Position() Pos { return s.Pos_ }

// NumExpr is an integer literal.
type NumExpr struct {
	Value int64
	Pos_  Pos
}

// VarRef names a scalar variable or, in call arguments, a whole array.
type VarRef struct {
	Name string
	Pos_ Pos
}

// IndexExpr is array[index].
type IndexExpr struct {
	Array string
	Index Expr
	Pos_  Pos
}

// CallExpr invokes a function.
type CallExpr struct {
	Callee string
	Args   []Expr
	Pos_   Pos
}

// BinaryExpr applies Op to X and Y. Op is one of
// + - * / % << >> & | ^ < <= > >= == != && ||.
type BinaryExpr struct {
	Op   string
	X, Y Expr
}

// UnaryExpr applies Op ("-", "!", "~") to X.
type UnaryExpr struct {
	Op   string
	X    Expr
	Pos_ Pos
}

func (*NumExpr) exprNode()    {}
func (*VarRef) exprNode()     {}
func (*IndexExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}

func (e *NumExpr) Position() Pos    { return e.Pos_ }
func (e *VarRef) Position() Pos     { return e.Pos_ }
func (e *IndexExpr) Position() Pos  { return e.Pos_ }
func (e *CallExpr) Position() Pos   { return e.Pos_ }
func (e *BinaryExpr) Position() Pos { return e.X.Position() }
func (e *UnaryExpr) Position() Pos  { return e.Pos_ }

// ExprString renders an expression as source-like text (for diagnostics
// and tests).
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *NumExpr:
		return fmt.Sprintf("%d", x.Value)
	case *VarRef:
		return x.Name
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", x.Array, ExprString(x.Index))
	case *CallExpr:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = ExprString(a)
		}
		return fmt.Sprintf("%s(%s)", x.Callee, strings.Join(args, ", "))
	case *BinaryExpr:
		return fmt.Sprintf("(%s %s %s)", ExprString(x.X), x.Op, ExprString(x.Y))
	case *UnaryExpr:
		return fmt.Sprintf("%s%s", x.Op, ExprString(x.X))
	}
	return "?"
}
