package cprog

import "fmt"

// SymKind classifies a resolved symbol.
type SymKind int

const (
	SymScalar SymKind = iota
	SymArray
	SymFunc
)

// Symbol is one resolved name.
type Symbol struct {
	Name  string
	Kind  SymKind
	Size  int  // array length (globals/locals); 0 for params and scalars
	Bank  Bank // resolved bank for arrays
	Fn    *FuncDecl
	Param bool // declared as a function parameter
}

// FuncInfo is the semantic summary of one function.
type FuncInfo struct {
	Decl *FuncDecl
	// Locals lists every local/param symbol in declaration order.
	Locals []*Symbol
	// Calls lists callee names in source order (with repeats).
	Calls []string
}

// Info is the result of semantic analysis over a File.
type Info struct {
	File    *File
	Globals map[string]*Symbol
	Funcs   map[string]*FuncInfo
}

// Analyze resolves names, checks arity and scalar/array usage, assigns
// memory banks to BankAuto arrays (alternating X then Y in declaration
// order so dual-memory fetches can pair), and rejects recursion — the
// kernel's µ-code sequencer has a bounded call stack and the Partita flow
// (like most DSP codegen of its era) assumes a recursion-free call graph.
func Analyze(f *File) (*Info, error) {
	info := &Info{
		File:    f,
		Globals: map[string]*Symbol{},
		Funcs:   map[string]*FuncInfo{},
	}

	autoBank := BankX
	nextAuto := func() Bank {
		b := autoBank
		if autoBank == BankX {
			autoBank = BankY
		} else {
			autoBank = BankX
		}
		return b
	}

	for _, g := range f.Globals {
		if info.Globals[g.Name] != nil {
			return nil, errf(g.Pos, "duplicate global %q", g.Name)
		}
		s := &Symbol{Name: g.Name, Size: g.Size}
		if g.Size > 0 {
			s.Kind = SymArray
			s.Bank = g.Bank
			if s.Bank == BankAuto {
				s.Bank = nextAuto()
			}
			g.Bank = s.Bank
		} else if g.Bank != BankAuto {
			return nil, errf(g.Pos, "memory qualifier on scalar %q", g.Name)
		}
		info.Globals[g.Name] = s
	}

	for _, fn := range f.Funcs {
		if info.Funcs[fn.Name] != nil {
			return nil, errf(fn.Pos, "duplicate function %q", fn.Name)
		}
		if info.Globals[fn.Name] != nil {
			return nil, errf(fn.Pos, "function %q shadows a global", fn.Name)
		}
		info.Funcs[fn.Name] = &FuncInfo{Decl: fn}
	}

	for _, fn := range f.Funcs {
		fi := info.Funcs[fn.Name]
		c := &checker{info: info, fi: fi, autoBank: nextAuto}
		if err := c.checkFunc(fn); err != nil {
			return nil, err
		}
	}

	if err := rejectRecursion(info); err != nil {
		return nil, err
	}
	return info, nil
}

type checker struct {
	info      *Info
	fi        *FuncInfo
	scopes    []map[string]*Symbol
	autoBank  func() Bank
	hasRet    bool
	loopDepth int
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]*Symbol{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(s *Symbol, pos Pos) error {
	top := c.scopes[len(c.scopes)-1]
	if top[s.Name] != nil {
		return errf(pos, "duplicate declaration of %q", s.Name)
	}
	top[s.Name] = s
	c.fi.Locals = append(c.fi.Locals, s)
	return nil
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s := c.scopes[i][name]; s != nil {
			return s
		}
	}
	return c.info.Globals[name]
}

func (c *checker) checkFunc(fn *FuncDecl) error {
	c.push()
	defer c.pop()
	for _, p := range fn.Params {
		s := &Symbol{Name: p.Name, Param: true}
		if p.IsArray {
			s.Kind = SymArray
			s.Bank = p.Bank
			if s.Bank == BankAuto {
				s.Bank = c.autoBank()
			}
			p.Bank = s.Bank
		}
		if err := c.declare(s, p.Pos); err != nil {
			return err
		}
	}
	if err := c.checkBlock(fn.Body); err != nil {
		return err
	}
	if !fn.Void && !c.hasRet {
		return errf(fn.Pos, "function %q returns int but has no return statement", fn.Name)
	}
	return nil
}

func (c *checker) checkBlock(b *BlockStmt) error {
	c.push()
	defer c.pop()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		return c.checkBlock(st)
	case *DeclStmt:
		d := st.Decl
		sym := &Symbol{Name: d.Name, Size: d.Size}
		if d.Size > 0 {
			sym.Kind = SymArray
			sym.Bank = d.Bank
			if sym.Bank == BankAuto {
				sym.Bank = c.autoBank()
			}
			d.Bank = sym.Bank
		} else {
			if d.Bank != BankAuto {
				return errf(d.Pos, "memory qualifier on scalar %q", d.Name)
			}
			if len(d.Init) > 1 {
				return errf(d.Pos, "scalar %q with %d initializers", d.Name, len(d.Init))
			}
		}
		return c.declare(sym, d.Pos)
	case *AssignStmt:
		if err := c.checkLValue(st.LHS); err != nil {
			return err
		}
		return c.checkExpr(st.RHS, false)
	case *ExprStmt:
		return c.checkExpr(st.X, false)
	case *IfStmt:
		if err := c.checkExpr(st.Cond, false); err != nil {
			return err
		}
		if err := c.checkBlock(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkBlock(st.Else)
		}
		return nil
	case *WhileStmt:
		if err := c.checkExpr(st.Cond, false); err != nil {
			return err
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.checkBlock(st.Body)
	case *ForStmt:
		if st.Init != nil {
			if err := c.checkStmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := c.checkExpr(st.Cond, false); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if err := c.checkStmt(st.Post); err != nil {
				return err
			}
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.checkBlock(st.Body)
	case *BreakStmt:
		if c.loopDepth == 0 {
			return errf(st.Pos_, "break outside a loop")
		}
		return nil
	case *ContinueStmt:
		if c.loopDepth == 0 {
			return errf(st.Pos_, "continue outside a loop")
		}
		return nil
	case *ReturnStmt:
		c.hasRet = true
		if st.Value != nil {
			if c.fi.Decl.Void {
				return errf(st.Pos_, "void function %q returns a value", c.fi.Decl.Name)
			}
			return c.checkExpr(st.Value, false)
		}
		if !c.fi.Decl.Void {
			return errf(st.Pos_, "function %q must return a value", c.fi.Decl.Name)
		}
		return nil
	}
	return fmt.Errorf("cprog: unknown statement %T", s)
}

func (c *checker) checkLValue(e Expr) error {
	switch x := e.(type) {
	case *VarRef:
		s := c.lookup(x.Name)
		if s == nil {
			return errf(x.Pos_, "undefined variable %q", x.Name)
		}
		if s.Kind != SymScalar {
			return errf(x.Pos_, "cannot assign to array %q without an index", x.Name)
		}
		return nil
	case *IndexExpr:
		s := c.lookup(x.Array)
		if s == nil {
			return errf(x.Pos_, "undefined array %q", x.Array)
		}
		if s.Kind != SymArray {
			return errf(x.Pos_, "%q is not an array", x.Array)
		}
		return c.checkExpr(x.Index, false)
	}
	return errf(e.Position(), "invalid assignment target")
}

// checkExpr validates e. asArg permits a bare array name (used when an
// array is passed to a call).
func (c *checker) checkExpr(e Expr, asArg bool) error {
	switch x := e.(type) {
	case *NumExpr:
		return nil
	case *VarRef:
		s := c.lookup(x.Name)
		if s == nil {
			return errf(x.Pos_, "undefined variable %q", x.Name)
		}
		if s.Kind == SymArray && !asArg {
			return errf(x.Pos_, "array %q used without an index", x.Name)
		}
		if s.Kind == SymFunc {
			return errf(x.Pos_, "function %q used as a value", x.Name)
		}
		return nil
	case *IndexExpr:
		s := c.lookup(x.Array)
		if s == nil {
			return errf(x.Pos_, "undefined array %q", x.Array)
		}
		if s.Kind != SymArray {
			return errf(x.Pos_, "%q is not an array", x.Array)
		}
		return c.checkExpr(x.Index, false)
	case *CallExpr:
		fi := c.info.Funcs[x.Callee]
		if fi == nil {
			return errf(x.Pos_, "call to undefined function %q", x.Callee)
		}
		if len(x.Args) != len(fi.Decl.Params) {
			return errf(x.Pos_, "%q called with %d arguments, wants %d", x.Callee, len(x.Args), len(fi.Decl.Params))
		}
		for i, a := range x.Args {
			p := fi.Decl.Params[i]
			if p.IsArray {
				ref, ok := a.(*VarRef)
				if !ok {
					return errf(a.Position(), "argument %d of %q must be an array name", i+1, x.Callee)
				}
				s := c.lookup(ref.Name)
				if s == nil || s.Kind != SymArray {
					return errf(a.Position(), "argument %d of %q: %q is not an array", i+1, x.Callee, ref.Name)
				}
				continue
			}
			if err := c.checkExpr(a, false); err != nil {
				return err
			}
		}
		c.fi.Calls = append(c.fi.Calls, x.Callee)
		return nil
	case *BinaryExpr:
		if err := c.checkExpr(x.X, false); err != nil {
			return err
		}
		return c.checkExpr(x.Y, false)
	case *UnaryExpr:
		return c.checkExpr(x.X, false)
	}
	return fmt.Errorf("cprog: unknown expression %T", e)
}

// rejectRecursion reports an error if the call graph has a cycle.
func rejectRecursion(info *Info) error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(name string, path []string) error
	visit = func(name string, path []string) error {
		switch color[name] {
		case gray:
			return fmt.Errorf("cprog: recursive call cycle involving %q (path %v)", name, path)
		case black:
			return nil
		}
		color[name] = gray
		fi := info.Funcs[name]
		if fi != nil {
			for _, callee := range fi.Calls {
				if err := visit(callee, append(path, callee)); err != nil {
					return err
				}
			}
		}
		color[name] = black
		return nil
	}
	for name := range info.Funcs {
		if err := visit(name, []string{name}); err != nil {
			return err
		}
	}
	return nil
}

// CallGraph returns the static call multigraph: caller → callees in
// source order (with repeats, one entry per call site).
func (i *Info) CallGraph() map[string][]string {
	g := make(map[string][]string, len(i.Funcs))
	for name, fi := range i.Funcs {
		g[name] = append([]string(nil), fi.Calls...)
	}
	return g
}
