package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := New("name", "value", "area")
	tb.Row("short", 1, 3.5)
	tb.Row("a-much-longer-name", 123456, 0.25)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4 (header, rule, 2 rows)", len(lines))
	}
	// Every column starts at the same offset: check the second column.
	col := strings.Index(lines[0], "value")
	if col < 0 {
		t.Fatal("header missing")
	}
	if !strings.HasPrefix(lines[2][col:], "1 ") && !strings.HasPrefix(lines[2][col:], "1") {
		t.Errorf("row 1 misaligned: %q", lines[2])
	}
	if !strings.Contains(lines[3], "123456") {
		t.Errorf("row 2 missing value: %q", lines[3])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator missing: %q", lines[1])
	}
}

func TestFloatTrimming(t *testing.T) {
	cases := map[float64]string{
		3.5:   "3.5",
		3.0:   "3",
		40.5:  "40.5",
		0.25:  "0.25",
		16.50: "16.5",
		0:     "0",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestRowsWiderThanHeader(t *testing.T) {
	tb := New("a")
	tb.Row("x", "extra", "columns")
	out := tb.String()
	if !strings.Contains(out, "extra") || !strings.Contains(out, "columns") {
		t.Errorf("extra columns dropped:\n%s", out)
	}
}
