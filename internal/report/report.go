// Package report renders fixed-width text tables for experiment output.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and prints them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// New creates a table with the given column headers.
func New(header ...string) *Table {
	return &Table{header: header}
}

// Row appends a row; values are rendered with %v.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Fprint writes the aligned table.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
