// Package hwgen emits synthesizable Verilog for the hardware modules the
// Partita flow generates around a selected configuration (Choi et al.,
// DAC 1999, Section 2): interface controller FSMs (types 2/3), protocol
// transformers, and the instruction decode unit that dispatches P/C/S
// classes to the µ-ROM and the interface start signals.
//
// The RTL is deliberately simple — two-process FSMs with one-hot-ready
// state encoding and a ROM-style decode table — but it is structurally
// complete: every state and transition of the iface.FSM appears, the
// decode case covers every assigned opcode, and the module interfaces
// carry the memory/IP ports of Fig. 1.
package hwgen

import (
	"fmt"
	"strings"

	"partita/internal/encode"
	"partita/internal/iface"
	"partita/internal/ip"
)

// sanitize makes an identifier Verilog-safe.
func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	out := b.String()
	if out == "" || out[0] >= '0' && out[0] <= '9' {
		out = "m_" + out
	}
	return out
}

// FSMModule renders one interface controller FSM as a Verilog module.
func FSMModule(f *iface.FSM) string {
	name := sanitize(f.Name)
	var b strings.Builder
	fmt.Fprintf(&b, "// %s: generated %s interface controller (%d states)\n", name, f.Type, len(f.States))
	fmt.Fprintf(&b, "module %s (\n", name)
	b.WriteString("    input  wire        clk,\n")
	b.WriteString("    input  wire        rst_n,\n")
	b.WriteString("    input  wire        start,\n")
	b.WriteString("    output reg         done,\n")
	b.WriteString("    // dual data-memory DMA port (Fig. 1)\n")
	b.WriteString("    output reg  [15:0] addr_x, addr_y,\n")
	b.WriteString("    output reg         rw_x, rw_y,\n")
	b.WriteString("    // IP-side standard synchronous port\n")
	b.WriteString("    output reg         ip_start,\n")
	b.WriteString("    input  wire        ip_done\n")
	b.WriteString(");\n\n")

	width := 1
	for 1<<width < len(f.States) {
		width++
	}
	for i, st := range f.States {
		fmt.Fprintf(&b, "  localparam [%d:0] S_%s = %d'd%d;\n", width-1, sanitize(st.Name), width, i)
	}
	fmt.Fprintf(&b, "\n  reg [%d:0] state, next;\n\n", width-1)

	b.WriteString("  always @(posedge clk or negedge rst_n)\n")
	b.WriteString("    if (!rst_n) state <= S_IDLE;\n")
	b.WriteString("    else        state <= next;\n\n")

	b.WriteString("  always @* begin\n")
	b.WriteString("    next = state;\n")
	b.WriteString("    done = 1'b0;\n")
	b.WriteString("    ip_start = 1'b0;\n")
	b.WriteString("    case (state)\n")
	for _, st := range f.States {
		fmt.Fprintf(&b, "      S_%s: begin\n", sanitize(st.Name))
		for _, a := range st.Actions {
			fmt.Fprintf(&b, "        // %s\n", a)
		}
		if strings.Contains(st.Name, "RUN") || strings.Contains(st.Name, "CONNECT") {
			b.WriteString("        ip_start = 1'b1;\n")
		}
		if st.Name == "DONE" {
			b.WriteString("        done = 1'b1;\n")
		}
		if st.Next != "" {
			if st.Cond != "" {
				fmt.Fprintf(&b, "        if (%s) next = S_%s;\n", condSignal(st.Cond), sanitize(st.Next))
			} else {
				fmt.Fprintf(&b, "        next = S_%s;\n", sanitize(st.Next))
			}
		}
		b.WriteString("      end\n")
	}
	b.WriteString("      default: next = S_IDLE;\n")
	b.WriteString("    endcase\n")
	b.WriteString("  end\n\n")
	b.WriteString("endmodule\n")
	return b.String()
}

// condSignal maps a documentation-level condition to a signal expression.
func condSignal(cond string) string {
	switch {
	case cond == "start":
		return "start"
	case cond == "IP done":
		return "ip_done"
	case strings.Contains(cond, "== 0"):
		return sanitize(strings.Fields(cond)[0]) + "_zero"
	}
	return sanitize(cond)
}

// TransformerModule renders the protocol transformer of Fig. 1 for one
// IP's native protocol.
func TransformerModule(b *ip.IP) string {
	name := "pt_" + sanitize(b.ID)
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s: protocol transformer (%s → standard synchronous)\n", name, b.Protocol)
	fmt.Fprintf(&sb, "module %s (\n", name)
	sb.WriteString("    input  wire        clk,\n")
	sb.WriteString("    input  wire        rst_n,\n")
	sb.WriteString("    input  wire [15:0] std_data_in,\n")
	sb.WriteString("    output wire [15:0] std_data_out,\n")
	switch b.Protocol {
	case ip.Handshake:
		sb.WriteString("    output reg         req,\n")
		sb.WriteString("    input  wire        ack,\n")
	case ip.Strobe:
		sb.WriteString("    output reg         strobe,\n")
	}
	sb.WriteString("    output wire [15:0] ip_data_in,\n")
	sb.WriteString("    input  wire [15:0] ip_data_out\n")
	sb.WriteString(");\n")
	sb.WriteString("  assign ip_data_in  = std_data_in;\n")
	sb.WriteString("  assign std_data_out = ip_data_out;\n")
	states := b.Protocol.TransformerStates()
	if states > 0 {
		fmt.Fprintf(&sb, "  // %d-state adapter FSM\n", states)
		width := 1
		for 1<<width < states {
			width++
		}
		fmt.Fprintf(&sb, "  reg [%d:0] pt_state;\n", width-1)
		sb.WriteString("  always @(posedge clk or negedge rst_n)\n")
		sb.WriteString("    if (!rst_n) pt_state <= 0;\n")
		fmt.Fprintf(&sb, "    else        pt_state <= (pt_state + 1) %% %d;\n", states)
		switch b.Protocol {
		case ip.Handshake:
			sb.WriteString("  always @* req = (pt_state == 1) && !ack;\n")
		case ip.Strobe:
			sb.WriteString("  always @* strobe = (pt_state == 1);\n")
		}
	}
	sb.WriteString("endmodule\n")
	return sb.String()
}

// DecodeUnit renders the instruction decoder for an encoded image: a
// class splitter plus per-class dispatch ROMs (P → µ-ROM word index,
// C → routine start/length, S → interface start lines).
func DecodeUnit(im *encode.Image) string {
	var b strings.Builder
	b.WriteString("// decode_unit: generated instruction decoder\n")
	b.WriteString("module decode_unit (\n")
	b.WriteString("    input  wire [31:0] instr,\n")
	b.WriteString("    output wire [1:0]  class_bits,\n")
	b.WriteString("    output wire [29:0] opcode,\n")
	fmt.Fprintf(&b, "    output reg  [15:0] urom_addr,   // %d dictionary words\n", im.UniqueWords)
	fmt.Fprintf(&b, "    output reg  [7:0]  urom_len,\n")
	fmt.Fprintf(&b, "    output reg  [%d:0]  s_start      // one-hot interface start\n", maxInt(len(im.SRoutines)-1, 0))
	b.WriteString(");\n\n")
	b.WriteString("  assign class_bits = instr[31:30];\n")
	b.WriteString("  assign opcode     = instr[29:0];\n\n")
	b.WriteString("  always @* begin\n")
	b.WriteString("    urom_addr = 16'd0;\n")
	b.WriteString("    urom_len  = 8'd1;\n")
	b.WriteString("    s_start   = 0;\n")
	b.WriteString("    case (class_bits)\n")
	b.WriteString("      2'b00: urom_addr = opcode[15:0]; // P: direct dictionary index\n")
	b.WriteString("      2'b01: case (opcode) // C: routine table\n")
	for i, r := range im.CRoutines {
		start := 0
		if len(r.Words) > 0 {
			start = r.Words[0]
		}
		fmt.Fprintf(&b, "        30'd%d: begin urom_addr = 16'd%d; urom_len = 8'd%d; end // %s\n",
			i, start, len(r.Words), r.ID)
	}
	b.WriteString("        default: ;\n      endcase\n")
	b.WriteString("      2'b10: case (opcode) // S: interface dispatch\n")
	for i, r := range im.SRoutines {
		fmt.Fprintf(&b, "        30'd%d: s_start = 1 << %d; // %s\n", i, i, sanitize(r.Name))
	}
	b.WriteString("        default: ;\n      endcase\n")
	b.WriteString("      default: ;\n")
	b.WriteString("    endcase\n")
	b.WriteString("  end\n\n")
	b.WriteString("endmodule\n")
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// System renders the full generated hardware of a configuration: one
// transformer and (for hardware interface types) one controller FSM per
// distinct IP attachment, plus the decode unit.
type Attachment struct {
	IP    *ip.IP
	Type  iface.Type
	Shape iface.Shape
}

// GenerateSystem emits all modules for the attachments and image.
func GenerateSystem(atts []Attachment, im *encode.Image) string {
	var b strings.Builder
	b.WriteString("// Generated by partita hwgen — interface controllers, protocol\n")
	b.WriteString("// transformers, and the decode unit for one selected configuration.\n\n")
	seen := map[string]bool{}
	for _, a := range atts {
		key := a.IP.ID + "/" + a.Type.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		if !a.Type.Software() {
			f, err := iface.ControllerFSM(a.Type, a.IP, a.Shape)
			if err != nil {
				// Unreachable (the guard above admits hardware types
				// only); keep the generated file well-formed regardless.
				fmt.Fprintf(&b, "// skipped %s: %v\n\n", key, err)
				continue
			}
			b.WriteString(FSMModule(f))
			b.WriteString("\n")
		}
		b.WriteString(TransformerModule(a.IP))
		b.WriteString("\n")
	}
	if im != nil {
		b.WriteString(DecodeUnit(im))
	}
	return b.String()
}
