package hwgen

import (
	"strings"
	"testing"

	"partita/internal/cinstr"
	"partita/internal/cprog"
	"partita/internal/encode"
	"partita/internal/iface"
	"partita/internal/ip"
	"partita/internal/lower"
)

func testIP(protocol ip.Protocol) *ip.IP {
	return &ip.IP{ID: "FIR-8", Name: "fir engine", Funcs: []string{"fir"},
		InPorts: 2, OutPorts: 2, InRate: 4, OutRate: 4,
		Latency: 8, Pipelined: true, Area: 5, Protocol: protocol}
}

func TestFSMModuleStructure(t *testing.T) {
	b := testIP(ip.Synchronous)
	s := iface.Shape{NIn: 32, NOut: 32, TSW: 1000}
	for _, ty := range []iface.Type{iface.Type2, iface.Type3} {
		f, err := iface.ControllerFSM(ty, b, s)
		if err != nil {
			t.Fatal(err)
		}
		v := FSMModule(f)
		if !strings.Contains(v, "module hif") || !strings.Contains(v, "endmodule") {
			t.Fatalf("%v: malformed module:\n%s", ty, v)
		}
		// Every state appears as a localparam and a case arm.
		for _, st := range f.States {
			if !strings.Contains(v, "S_"+sanitize(st.Name)) {
				t.Errorf("%v: state %s missing from RTL", ty, st.Name)
			}
		}
		if !strings.Contains(v, "posedge clk") {
			t.Errorf("%v: no clocked process", ty)
		}
		if strings.Count(v, "endmodule") != 1 {
			t.Errorf("%v: module nesting broken", ty)
		}
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"hif2_FIR-8": "hif2_FIR_8",
		"9lives":     "m_9lives",
		"ok_name":    "ok_name",
		"":           "m_",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTransformerVariants(t *testing.T) {
	sync := TransformerModule(testIP(ip.Synchronous))
	if strings.Contains(sync, "req") || strings.Contains(sync, "strobe") {
		t.Error("synchronous transformer should have no handshake signals")
	}
	hs := TransformerModule(testIP(ip.Handshake))
	if !strings.Contains(hs, "req") || !strings.Contains(hs, "ack") {
		t.Error("handshake transformer missing req/ack")
	}
	st := TransformerModule(testIP(ip.Strobe))
	if !strings.Contains(st, "strobe") {
		t.Error("strobe transformer missing strobe")
	}
}

func buildImage(t *testing.T) *encode.Image {
	t.Helper()
	src := `
int a; int b;
int main() {
	int i;
	for (i = 0; i < 10; i = i + 1) { a = a + 1; }
	for (i = 0; i < 10; i = i + 1) { b = b + 1; }
	return a + b;
}`
	f, err := cprog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := cprog.Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	prog, _, err := lower.Compile(info)
	if err != nil {
		t.Fatal(err)
	}
	cs := cinstr.Mine(prog, nil, cinstr.Config{}).Chosen
	im, err := encode.Build(prog, cs, []string{"FIR-8/IF2", "DCT/IF3"})
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestDecodeUnitCoversOpcodes(t *testing.T) {
	im := buildImage(t)
	v := DecodeUnit(im)
	if !strings.Contains(v, "module decode_unit") {
		t.Fatal("no decode module")
	}
	for i, r := range im.CRoutines {
		if !strings.Contains(v, r.ID) {
			t.Errorf("C routine %d (%s) missing from decode table", i, r.ID)
		}
	}
	for _, r := range im.SRoutines {
		if !strings.Contains(v, sanitize(r.Name)) {
			t.Errorf("S routine %s missing from decode table", r.Name)
		}
	}
	if strings.Count(v, "case (") < 3 {
		t.Error("decode unit should have class + per-class cases")
	}
}

func TestGenerateSystem(t *testing.T) {
	im := buildImage(t)
	atts := []Attachment{
		{IP: testIP(ip.Handshake), Type: iface.Type2, Shape: iface.Shape{NIn: 16, NOut: 16}},
		{IP: testIP(ip.Handshake), Type: iface.Type2, Shape: iface.Shape{NIn: 16, NOut: 16}}, // dup → emitted once
	}
	v := GenerateSystem(atts, im)
	if strings.Count(v, "module hif2_FIR_8") != 1 {
		t.Errorf("duplicate attachment not merged:\n%d modules", strings.Count(v, "module hif2_FIR_8"))
	}
	if !strings.Contains(v, "module pt_FIR_8") {
		t.Error("protocol transformer missing")
	}
	if !strings.Contains(v, "module decode_unit") {
		t.Error("decode unit missing")
	}
	// Balanced module/endmodule.
	if strings.Count(v, "\nmodule ")+boolToInt(strings.HasPrefix(v, "module ")) != strings.Count(v, "endmodule") {
		t.Errorf("unbalanced modules:\n%s", v)
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestSoftwareTypesEmitNoFSM(t *testing.T) {
	atts := []Attachment{
		{IP: testIP(ip.Synchronous), Type: iface.Type0, Shape: iface.Shape{NIn: 8, NOut: 8}},
	}
	v := GenerateSystem(atts, nil)
	if strings.Contains(v, "module hif") {
		t.Error("software interface type generated a hardware FSM")
	}
	if !strings.Contains(v, "module pt_") {
		t.Error("transformer still required for software types")
	}
}
