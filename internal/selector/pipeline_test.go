package selector

import (
	"context"
	"math"
	"reflect"
	"testing"

	"partita/internal/apps"
	"partita/internal/budget"
	"partita/internal/ilp"
)

// TestPipelineMatchesIndependentSolves is the pipeline's core soundness
// property: reuse and warm starts are accelerations, not
// approximations, so every point must equal an independent exact solve.
func TestPipelineMatchesIndependentSolves(t *testing.T) {
	db := sweepDB(t)
	gains := []int64{50, 100, 150, 400, 700, 800, 1100, 1200}
	pl := NewAnalysis(db).NewPipeline(gains, budget.Budget{}, nil)
	ctx := context.Background()
	for k := 0; ; k++ {
		pt, ok, err := pl.Next(ctx)
		if !ok {
			if k != len(gains) {
				t.Fatalf("pipeline exhausted after %d points, want %d", k, len(gains))
			}
			break
		}
		if err != nil {
			t.Fatalf("point %d: %v", k, err)
		}
		if pt.Index != k || pt.Required != gains[k] {
			t.Fatalf("point %d: index %d rg %d", k, pt.Index, pt.Required)
		}
		ref, err := SolveCtx(ctx, Problem{DB: db, Required: gains[k]})
		if err != nil {
			t.Fatal(err)
		}
		if pt.Sel.Status != ref.Status || pt.Sel.Gain != ref.Gain ||
			math.Abs(pt.Sel.Area-ref.Area) > 1e-9 {
			t.Errorf("rg=%d: pipeline (%v gain=%d area=%g) != independent (%v gain=%d area=%g)",
				gains[k], pt.Sel.Status, pt.Sel.Gain, pt.Sel.Area,
				ref.Status, ref.Gain, ref.Area)
		}
		if pt.Sel.Status == ilp.Optimal &&
			(pt.Sel.SInstructions != ref.SInstructions ||
				pt.Sel.SCallsImplemented != ref.SCallsImplemented ||
				!reflect.DeepEqual(pt.Sel.PathGains, ref.PathGains)) {
			t.Errorf("rg=%d: pipeline tie-break columns differ from independent solve", gains[k])
		}
	}
}

// TestPipelinePlateauReuse: the sweep curve is a step function, so
// consecutive points on one plateau must complete with zero solver work
// and hand back the donor's selection.
func TestPipelinePlateauReuse(t *testing.T) {
	db := sweepDB(t)
	// IMP gains are 100/300/700: rg 50 and 100 share the A-only optimum,
	// 150..400 share A+B, so at most 3 distinct solves cover 6 points.
	gains := []int64{50, 100, 150, 200, 300, 400}
	pl := NewAnalysis(db).NewPipeline(gains, budget.Budget{}, nil)
	ctx := context.Background()
	var pts []Point
	for {
		pt, ok, err := pl.Next(ctx)
		if !ok {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, pt)
	}
	st := pl.Stats()
	if st.Solved+st.Reused != len(gains) {
		t.Fatalf("stats account %d points, want %d: %+v", st.Solved+st.Reused, len(gains), st)
	}
	if st.Reused < 3 {
		t.Errorf("reused %d points, want >= 3 (plateaus): %+v", st.Reused, st)
	}
	// Reused points carry the donor's optimum and report zero search.
	for _, pt := range pts {
		if !pt.Reused {
			continue
		}
		if pt.Sel.Status != ilp.Optimal {
			t.Errorf("rg=%d reused with status %v", pt.Required, pt.Sel.Status)
		}
		if pt.Sel.Nodes != 0 {
			t.Errorf("rg=%d reused but reports %d search nodes", pt.Required, pt.Sel.Nodes)
		}
		if !meetsUniform(pt.Sel, pt.Required) {
			t.Errorf("rg=%d reused selection does not meet the requirement", pt.Required)
		}
	}
}

// TestPipelineInfeasibilityPropagation: one infeasible point proves
// every tighter one infeasible without another search.
func TestPipelineInfeasibilityPropagation(t *testing.T) {
	db := sweepDB(t) // max reachable gain 1100
	gains := []int64{1100, 1200, 1300, 1400}
	pl := NewAnalysis(db).NewPipeline(gains, budget.Budget{}, nil)
	ctx := context.Background()
	var statuses []ilp.Status
	var reused []bool
	for {
		pt, ok, err := pl.Next(ctx)
		if !ok {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		statuses = append(statuses, pt.Sel.Status)
		reused = append(reused, pt.Reused)
	}
	want := []ilp.Status{ilp.Optimal, ilp.Infeasible, ilp.Infeasible, ilp.Infeasible}
	if !reflect.DeepEqual(statuses, want) {
		t.Fatalf("statuses %v, want %v", statuses, want)
	}
	// 1200 is the first infeasible point and must be solved; 1300 and
	// 1400 follow from it.
	if reused[1] || !reused[2] || !reused[3] {
		t.Errorf("reuse pattern %v, want [false false true true]", reused)
	}
	if st := pl.Stats(); st.Solved != 2 || st.Reused != 2 {
		t.Errorf("stats %+v, want Solved:2 Reused:2", st)
	}
}

// TestPipelineGreedySeedsStats: solvable points whose greedy baseline
// reaches the requirement are warm-started with it.
func TestPipelineGreedySeedsStats(t *testing.T) {
	db := sweepDB(t)
	gains := []int64{100, 400, 1100}
	pl := NewAnalysis(db).NewPipeline(gains, budget.Budget{}, nil)
	ctx := context.Background()
	for {
		_, ok, err := pl.Next(ctx)
		if !ok {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	st := pl.Stats()
	if st.GreedySeeds == 0 {
		t.Errorf("no greedy seeds recorded: %+v", st)
	}
	if st.GreedySeeds > st.Solved {
		t.Errorf("more seeds than solves: %+v", st)
	}
}

// TestPipelineIsLazy: Next solves one point at a time — building the
// pipeline and pulling a single point must not touch the rest.
func TestPipelineIsLazy(t *testing.T) {
	db := sweepDB(t)
	pl := NewAnalysis(db).NewPipeline([]int64{100, 400, 700, 1100}, budget.Budget{}, nil)
	if pl.Len() != 4 {
		t.Fatalf("Len = %d", pl.Len())
	}
	if st := pl.Stats(); st.Solved+st.Reused != 0 {
		t.Fatalf("work before first Next: %+v", st)
	}
	if _, ok, err := pl.Next(context.Background()); !ok || err != nil {
		t.Fatalf("first Next: ok=%v err=%v", ok, err)
	}
	if st := pl.Stats(); st.Solved+st.Reused != 1 {
		t.Fatalf("first Next disposed %d points, want 1: %+v", st.Solved+st.Reused, st)
	}
}

// TestPipelineObserverTagsPointIndex: incumbents stream with the index
// of the point whose solve produced them.
func TestPipelineObserverTagsPointIndex(t *testing.T) {
	db := sweepDB(t)
	gains := []int64{100, 1100}
	seen := map[int]int{}
	pl := NewAnalysis(db).NewPipeline(gains, budget.Budget{}, func(i int, in Incumbent) {
		if in.Area <= 0 {
			t.Errorf("incumbent with area %g", in.Area)
		}
		seen[i]++
	})
	ctx := context.Background()
	for {
		_, ok, err := pl.Next(ctx)
		if !ok {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := range seen {
		if i < 0 || i >= len(gains) {
			t.Errorf("observer saw out-of-range point index %d", i)
		}
	}
}

// TestAnalysisSharedAcrossPipelines: one Analysis serves many pipelines
// and direct solves concurrently without interference.
func TestAnalysisSharedAcrossPipelines(t *testing.T) {
	db := sweepDB(t)
	an := NewAnalysis(db)
	if an.MaxGain() != MaxReachableGain(db) {
		t.Fatalf("MaxGain = %d", an.MaxGain())
	}
	ctx := context.Background()
	ref, err := an.Solve(ctx, Problem{Required: 400})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 3)
	for w := 0; w < 3; w++ {
		go func() {
			pl := an.NewPipeline([]int64{200, 400, 900}, budget.Budget{}, nil)
			for {
				pt, ok, err := pl.Next(ctx)
				if !ok {
					done <- nil
					return
				}
				if err != nil {
					done <- err
					return
				}
				if pt.Required == 400 && math.Abs(pt.Sel.Area-ref.Area) > 1e-9 {
					t.Errorf("rg=400 area %g != reference %g", pt.Sel.Area, ref.Area)
				}
			}
		}()
	}
	for w := 0; w < 3; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestParallelSweepNodesMatchSerial is the regression guard for the
// parallel sweep's node inflation: a multi-worker budget runs the same
// ascending plateau-reuse pipeline with the workers inside each solve,
// so the parallel sweep must produce the identical curve while
// expanding no more nodes than the serial sweep plus a small
// concurrency-staleness allowance. (An earlier revision pooled whole
// points tightest-first with completion-order donor selection; it
// solved points the serial sweep reuses for free, and its node totals
// ran well past serial — the exact failure this test pins.)
func TestParallelSweepNodesMatchSerial(t *testing.T) {
	db, _, err := apps.GSMEncoderTable()
	if err != nil {
		t.Fatal(err)
	}
	an := NewAnalysis(db)
	ctx := context.Background()
	serial, err := an.SweepPoints(ctx, 16, budget.Budget{Parallelism: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := an.SweepPoints(ctx, 16, budget.Budget{Parallelism: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sn, pn := 0, 0
	for i := range serial {
		sn += serial[i].Sel.Nodes
		pn += par[i].Sel.Nodes
		// Area compares with a float tolerance: when two method sets
		// tie at the optimum, parallel order may land on the other one,
		// whose area can differ in the last ulp of the summation.
		if serial[i].Required != par[i].Required ||
			serial[i].Sel.Status != par[i].Sel.Status ||
			math.Abs(serial[i].Sel.Area-par[i].Sel.Area) > 1e-9 ||
			serial[i].Sel.Gain != par[i].Sel.Gain {
			t.Errorf("point %d: parallel curve diverged: serial %+v, parallel %+v",
				i, serial[i].Sel, par[i].Sel)
		}
	}
	// The pipelines schedule identically; the only slack the parallel
	// sweep gets is in-solve concurrency staleness, bounded at a couple
	// percent. Driebeek child-bound lifts usually put it below serial.
	if eps := sn/50 + 4; pn > sn+eps {
		t.Errorf("parallel sweep expanded %d nodes, serial %d (+%d allowed)", pn, sn, eps)
	}
}
