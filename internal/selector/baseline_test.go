package selector

import (
	"testing"

	"partita/internal/iface"
	"partita/internal/ilp"
	"partita/internal/imp"
)

// Direct GreedyBaseline coverage. The heuristic is the portfolio's
// fastest engine and the solver's degradation fallback, so its edge
// behavior — infeasible paths, empty candidate sets, fixed-charge
// sharing — is pinned down here rather than only through degradation
// tests.

// TestGreedyInfeasiblePath: when one path cannot reach its requirement
// with the usable (non-PC) methods, greedy reports Infeasible instead
// of looping or overshooting on the other paths.
func TestGreedyInfeasiblePath(t *testing.T) {
	db, err := imp.NewSyntheticDB([]string{"a", "b"}, []imp.SynthIMP{
		{SC: 1, IP: mkIP("IP1", 5), Type: iface.Type0, Gain: 100},
		{SC: 2, IP: mkIP("IP2", 5), Type: iface.Type0, Gain: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Uniform requirement 50: s-call b's only method tops out at 10, so
	// the single path (a+b ≤ 110) is reachable — but requirement 120
	// is not.
	sel := GreedyBaseline(Problem{DB: db, Required: 120})
	if sel.Status != ilp.Infeasible {
		t.Fatalf("status = %v, want Infeasible", sel.Status)
	}
	if len(sel.Chosen) != 0 {
		t.Errorf("infeasible greedy still chose %d methods", len(sel.Chosen))
	}
	// Sanity: the reachable requirement succeeds.
	if sel := GreedyBaseline(Problem{DB: db, Required: 100}); sel.Status == ilp.Infeasible {
		t.Error("requirement 100 reported infeasible")
	}
}

// TestGreedyEmptyCandidateSet: every method uses parallel code, so the
// ICCAD'93-style baseline (which never selects PC methods) has an empty
// candidate set and any positive requirement is Infeasible.
func TestGreedyEmptyCandidateSet(t *testing.T) {
	db, err := imp.NewSyntheticDB([]string{"a"}, []imp.SynthIMP{
		{SC: 1, IP: mkIP("IP1", 5), Type: iface.Type0, Gain: 100, UsesPC: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	sel := GreedyBaseline(Problem{DB: db, Required: 1})
	if sel.Status != ilp.Infeasible {
		t.Fatalf("status = %v, want Infeasible", sel.Status)
	}
	// Requirement 0 is trivially met with the empty selection.
	sel = GreedyBaseline(Problem{DB: db, Required: 0})
	if sel.Status == ilp.Infeasible || len(sel.Chosen) != 0 {
		t.Errorf("zero requirement: status %v, %d chosen; want feasible empty", sel.Status, len(sel.Chosen))
	}
}

// TestGreedyFixedChargeSharing: two s-calls implementable on one shared
// IP in the same interface group versus two private IPs. With the IP
// and interface area charged once (fixed charge), the shared pair is
// cheaper, and greedy must see the second method's marginal area as
// zero once the first is taken — choosing the shared IP for both calls
// and counting its area exactly once.
func TestGreedyFixedChargeSharing(t *testing.T) {
	shared := mkIP("SHARED", 10)
	db, err := imp.NewSyntheticDB([]string{"a", "b"}, []imp.SynthIMP{
		// Shared pair: first pick pays 10+2 for gain 60 (ratio 5.0),
		// second pick rides the sunk fixed charge (marginal area ~0).
		{SC: 1, IP: shared, Type: iface.Type0, Gain: 60, IfaceArea: 2},
		{SC: 2, IP: shared, Type: iface.Type0, Gain: 60, IfaceArea: 2},
		// Private alternatives: better gain-per-own-area never beats the
		// shared first pick (55/12 ≈ 4.6 < 5.0).
		{SC: 1, IP: mkIP("PRIV1", 12), Type: iface.Type0, Gain: 55},
		{SC: 2, IP: mkIP("PRIV2", 12), Type: iface.Type0, Gain: 55},
	})
	if err != nil {
		t.Fatal(err)
	}
	sel := GreedyBaseline(Problem{DB: db, Required: 120})
	if sel.Status == ilp.Infeasible {
		t.Fatal("greedy infeasible")
	}
	for _, m := range sel.Chosen {
		if m.IP != shared {
			t.Fatalf("greedy chose %s; the shared fixed charge should win after the first pick", m.ID)
		}
	}
	// IP area 10 once + merged interface area 2 once = 12.
	if sel.Area != 12 {
		t.Errorf("area = %v, want 12 (shared IP and group charged once)", sel.Area)
	}
	if sel.SInstructions != 1 {
		t.Errorf("SInstructions = %d, want 1 (merged group)", sel.SInstructions)
	}
}

// TestGreedyGroupConflictAccounting: methods of one IP in *different*
// interface groups each pay their own group area; greedy must prefer
// the same-group pair when gains tie.
func TestGreedyGroupConflictAccounting(t *testing.T) {
	shared := mkIP("IPX", 10)
	db, err := imp.NewSyntheticDB([]string{"a", "b"}, []imp.SynthIMP{
		// Same group (Type0) — interface charged once.
		{SC: 1, IP: shared, Type: iface.Type0, Gain: 50, IfaceArea: 4},
		{SC: 2, IP: shared, Type: iface.Type0, Gain: 50, IfaceArea: 4},
		// Different group (Type2), same gain, same interface area — a
		// second fixed charge greedy should avoid.
		{SC: 2, IP: shared, Type: iface.Type2, Gain: 50, IfaceArea: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	sel := GreedyBaseline(Problem{DB: db, Required: 100})
	if sel.Status == ilp.Infeasible {
		t.Fatal("greedy infeasible")
	}
	if sel.SInstructions != 1 || sel.Area != 14 {
		t.Errorf("S=%d area=%v; want one merged group, area 14", sel.SInstructions, sel.Area)
	}
}

// TestGreedyMatchesAnalysisGreedy: the package-level entry and the
// shared-analysis entry produce identical selections (they must — the
// portfolio uses the latter, degradation the former path shape).
func TestGreedyMatchesAnalysisGreedy(t *testing.T) {
	db, err := imp.NewSyntheticDB([]string{"a", "b", "c"}, []imp.SynthIMP{
		{SC: 1, IP: mkIP("IP1", 3), Type: iface.Type0, Gain: 40, IfaceArea: 1},
		{SC: 2, IP: mkIP("IP2", 7), Type: iface.Type1, Gain: 90, IfaceArea: 2},
		{SC: 3, IP: mkIP("IP3", 2), Type: iface.Type0, Gain: 25},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := Problem{DB: db, Required: 100}
	a := GreedyBaseline(p)
	b := NewAnalysis(db).Greedy(p)
	if a.Status != b.Status || a.Area != b.Area || a.Gain != b.Gain || len(a.Chosen) != len(b.Chosen) {
		t.Fatalf("entries disagree: %+v vs %+v", a, b)
	}
	// And the greedy answer is feasible for the exact model: solving
	// with it as documented-behavior cross-check must not do worse.
	exact, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Status == ilp.Optimal && a.Status == ilp.Optimal && exact.Area > a.Area {
		t.Errorf("exact area %v worse than greedy %v", exact.Area, a.Area)
	}
}
