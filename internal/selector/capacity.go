package selector

import (
	"math"

	"partita/internal/ilp"
)

// capacityBoundMaxGain caps the covering-knapsack DP table; paths with
// a larger required gain skip the bound rather than pay the memory.
const capacityBoundMaxGain = 1 << 20

// CapacityBound is an instant combinatorial lower bound on the optimal
// area: for each path k it solves, exactly, the IP-level covering
// knapsack
//
//	min Σ_j area_j·z_j   s.t.   Σ_j G_jk·z_j ≥ required(k),  z binary
//
// where G_jk is the most gain path k can draw from IP j (ipGainCapacity)
// and area_j charges the IP's silicon plus its cheapest interface (any
// selection using IP j picks at least one of its methods, whose merged
// S-instruction area is at least the method's own interface area) — a
// relaxation of the selection ILP that keeps only the fixed charges and
// the aggregate gain capacities, dropping per-method interface excess,
// method conflicts, and cross-path coupling. Every feasible selection
// induces a feasible z, so each path's knapsack optimum bounds the true
// optimal area from below, and the best path's bound is returned.
//
// The DP is a few hundred thousand integer steps on the paper's models —
// microseconds, no LP, no search — which is what makes it useful to the
// racing portfolio: the acceptability judge holds an often-tight proven
// bound before any engine has solved a relaxation. +Inf means some path
// cannot reach its requirement at all (the ILP is infeasible); 0 means
// no path demands gain (or a requirement was too large for the DP table)
// and the bound is vacuous.
func (a *Analysis) CapacityBound(p Problem) float64 {
	bound, _ := a.CapacityWitness(p)
	return bound
}

// CapacityWitness is CapacityBound plus the bound's witness turned into
// a candidate: the knapsack optimum's IP subset on the binding path,
// instantiated with each s-call's best method among those IPs (under
// the SC-PC conflict pairs) and re-priced exactly. When that selection
// meets every path's requirement it is returned Feasible — often at the
// optimal area, since the enriched knapsack is tight on the paper's
// models — and a racing portfolio can deliver it against the bound
// microseconds into the race. The witness is nil whenever the
// instantiation falls short on some path (the bound always stands on
// its own).
func (a *Analysis) CapacityWitness(p Problem) (float64, *Selection) {
	if p.DB == nil {
		p.DB = a.db
	}
	if p.DB != a.db || len(a.db.IMPs) == 0 {
		return 0, nil
	}
	in := &instance{Analysis: a, p: p}
	minIface := map[string]float64{}
	for _, im := range a.db.IMPs {
		if prev, ok := minIface[im.IP.ID]; !ok || im.IfaceArea < prev {
			minIface[im.IP.ID] = im.IfaceArea
		}
	}
	bound := 0.0
	bindK := -1
	var bindCap map[string]int64
	for k := range a.db.Paths {
		rg := in.required(k)
		if rg <= 0 || rg > capacityBoundMaxGain {
			continue
		}
		capacity := in.ipGainCapacity(k)
		if b := capacityDP(in, capacity, minIface, rg, nil); b > bound {
			bound = b
			bindK, bindCap = k, capacity
		}
	}
	if bindK < 0 || math.IsInf(bound, 0) {
		return bound, nil
	}
	// Re-run the binding path's DP keeping the chosen IP subset, then
	// instantiate and re-price it.
	witness := map[string]bool{}
	capacityDP(in, bindCap, minIface, in.required(bindK), witness)
	return bound, in.instantiate(bindK, witness)
}

// capacityDP solves one path's covering knapsack. With a non-nil
// witness map it keeps per-item DP rows and backtracks the optimal IP
// subset into it (more memory, same asymptotics).
func capacityDP(in *instance, capacity map[string]int64, minIface map[string]float64, rg int64, witness map[string]bool) float64 {
	base := make([]float64, rg+1)
	for g := int64(1); g <= rg; g++ {
		base[g] = math.Inf(1)
	}
	var items []string
	var rows [][]float64
	dp := base
	for _, id := range in.ipIDs {
		gj := capacity[id]
		if gj <= 0 {
			continue
		}
		if witness != nil {
			rows = append(rows, dp)
			items = append(items, id)
			dp = append([]float64(nil), dp...)
		}
		aj := in.ipArea[id] + minIface[id]
		for g := rg; g >= 1; g-- {
			rest := g - gj
			if rest < 0 {
				rest = 0
			}
			if c := dp[rest] + aj; c < dp[g] {
				dp[g] = c
			}
		}
	}
	if witness != nil {
		g := rg
		for i := len(items) - 1; i >= 0 && g > 0; i-- {
			if dp[g] == rows[i][g] {
				dp = rows[i] // item unused; its predecessor row decides the rest
				continue
			}
			witness[items[i]] = true
			if g -= capacity[items[i]]; g < 0 {
				g = 0
			}
			dp = rows[i]
		}
	}
	return dp[rg]
}

// instantiate turns a witness IP subset into a concrete selection: per
// s-call, the best method on path k among the witness IPs (ties to the
// smaller interface area), with SC-PC conflicts resolved by dropping
// the lesser contributor. Returns the re-priced selection when it meets
// every path's requirement, nil otherwise.
func (in *instance) instantiate(k int, witness map[string]bool) *Selection {
	db := in.db
	bestFor := map[string]int{}
	for i, im := range db.IMPs {
		if !witness[im.IP.ID] || in.pathCoef(k, i) <= 0 {
			continue
		}
		sc := im.SC.Name()
		j, ok := bestFor[sc]
		if !ok || in.pathCoef(k, i) > in.pathCoef(k, j) ||
			(in.pathCoef(k, i) == in.pathCoef(k, j) && im.IfaceArea < db.IMPs[j].IfaceArea) {
			bestFor[sc] = i
		}
	}
	picked := make(map[int]bool, len(bestFor))
	for _, i := range bestFor {
		picked[i] = true
	}
	for _, c := range db.Conflicts {
		if picked[c[0]] && picked[c[1]] {
			drop := c[0]
			if in.pathCoef(k, c[0]) > in.pathCoef(k, c[1]) {
				drop = c[1]
			}
			delete(picked, drop)
		}
	}
	var chosen []int
	for i := range db.IMPs {
		if picked[i] {
			chosen = append(chosen, i)
		}
	}
	for kk := range db.Paths {
		rg := in.required(kk)
		if rg <= 0 {
			continue
		}
		for _, i := range chosen {
			rg -= in.pathCoef(kk, i)
		}
		if rg > 0 {
			return nil
		}
	}
	sel := in.compose(chosen, 0)
	sel.Status = ilp.Feasible
	return sel
}
