package selector

import (
	"sort"

	"partita/internal/ilp"
	"partita/internal/imp"
)

// GreedyBaseline models the prior state of the art the paper compares
// against (Alomary et al., ICCAD'93-style module selection): hardware
// accelerators are chosen greedily by gain/area ratio, without
// considering interface methods (each (s-call, IP) pair uses its single
// cheapest feasible interface) and without parallel execution (no
// parallel-code methods). It returns a Selection in the same shape as
// Solve so the two can be benchmarked head to head.
func GreedyBaseline(p Problem) *Selection {
	return greedyBound(newInstance(p))
}

// greedyBound is GreedyBaseline over an already bound instance, so
// pipeline and degradation callers reuse the shared Analysis instead of
// re-deriving it.
func greedyBound(in *instance) *Selection {
	db := in.db

	// Restrict to non-PC methods and, per (SC, IP), the cheapest
	// feasible interface.
	type key struct {
		sc *imp.SCall
		ip string
	}
	cheapest := map[key]int{}
	for i, m := range db.IMPs {
		if m.UsesPC {
			continue
		}
		k := key{m.SC, m.IP.ID}
		if j, ok := cheapest[k]; !ok || less(db.IMPs[i], db.IMPs[j]) {
			cheapest[k] = i
		}
	}
	var candIdx []int
	for _, i := range cheapest {
		candIdx = append(candIdx, i)
	}
	sort.Ints(candIdx)

	chosen := map[*imp.SCall]int{}
	usedIP := map[string]bool{}
	usedGrp := map[group]bool{}

	pathGain := make([]int64, len(db.Paths))
	met := func() bool {
		for k := range db.Paths {
			if pathGain[k] < in.required(k) {
				return false
			}
		}
		return true
	}

	for !met() {
		bestIdx := -1
		var bestRatio float64
		for _, i := range candIdx {
			m := db.IMPs[i]
			if _, taken := chosen[m.SC]; taken {
				continue
			}
			// Marginal gain: only count paths still short of target.
			var mg int64
			for k := range db.Paths {
				if pathGain[k] >= in.required(k) {
					continue
				}
				mg += in.pathCoef(k, i)
			}
			if mg <= 0 {
				continue
			}
			// Marginal area: IP counted once, group interface once.
			da := 0.0
			if !usedIP[m.IP.ID] {
				da += in.ipArea[m.IP.ID]
			}
			g := in.grpOf[i]
			if !usedGrp[g] {
				da += in.grpArea[g]
			}
			if da <= 0 {
				da = 1e-9
			}
			ratio := float64(mg) / da
			if bestIdx < 0 || ratio > bestRatio {
				bestIdx, bestRatio = i, ratio
			}
		}
		if bestIdx < 0 {
			return &Selection{Status: ilp.Infeasible}
		}
		m := db.IMPs[bestIdx]
		chosen[m.SC] = bestIdx
		usedIP[m.IP.ID] = true
		usedGrp[in.grpOf[bestIdx]] = true
		for k := range db.Paths {
			pathGain[k] += in.pathCoef(k, bestIdx)
		}
	}

	sel := &Selection{Status: ilp.Optimal, PathGains: pathGain}
	var idxs []int
	for _, i := range chosen {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		m := db.IMPs[i]
		sel.Chosen = append(sel.Chosen, m)
		sel.Gain += in.totalGain[i]
		sel.SCallsImplemented += len(m.SC.Sites)
	}
	for id := range usedIP {
		sel.Area += in.ipArea[id]
	}
	for g := range usedGrp {
		sel.Area += in.grpArea[g]
	}
	sel.SInstructions = len(usedGrp)
	return sel
}

// less orders methods by (area, then worse gain last) for the cheapest-
// interface filter: prefer the smaller interface area; on ties, the one
// with more gain.
func less(a, b *imp.IMP) bool {
	if a.IfaceArea != b.IfaceArea {
		return a.IfaceArea < b.IfaceArea
	}
	return a.GainPerExec > b.GainPerExec
}
