package selector

// The sweep pipeline: a one-shot immutable Analysis artifact holding
// everything about a selection problem that does not depend on the
// required-gain point, plus a lazy Pipeline iterator that solves a
// sequence of points over the shared artifact. Three properties of the
// 0-1 ILP make the pipeline much cheaper than independent solves:
//
//   - Plateau reuse. The optimal area A*(rg) is non-decreasing in rg,
//     and the sweep curve is a step function: many consecutive points
//     share one optimal selection. If the selection solved at a looser
//     requirement rg_d already achieves every path's gain at a tighter
//     requirement rg >= rg_d, it is feasible at rg with area
//     A*(rg_d) <= A*(rg), hence provably optimal at rg — and because it
//     minimizes the tie-break objective over the rg_d feasible set, a
//     superset of the rg one it belongs to, it is lexicographically
//     optimal there too. Such points complete with zero solver work.
//
//   - Infeasibility propagation. Feasible sets shrink as rg grows, so
//     one point proven infeasible makes every tighter point infeasible
//     without another search.
//
//   - Warm starts. A point that must be solved is seeded with the
//     greedy baseline at its own requirement, installed through
//     ilp.Model.SetWarmStart, which validates the seed and guarantees
//     it can only tighten pruning, never change the answer. A
//     multi-worker budget parallelizes *inside* each solve (the
//     work-stealing branch-and-bound in internal/ilp), never across
//     points, so the ascending reuse chain — which points are solved,
//     reused, or propagated — is identical at every parallelism level;
//     only the in-solve expansion order (and so the per-point node
//     count, within a few percent) can move.
//
// Sweep, SweepCtx, and SweepCtxObserve are thin adapters over this
// pipeline; the service's batch executor drives Pipeline.Next directly
// to stream per-point results with per-point deadlines.

import (
	"context"
	"fmt"
	"math"
	"sort"

	"partita/internal/budget"
	"partita/internal/cdfg"
	"partita/internal/ilp"
	"partita/internal/imp"
)

// Analysis is the immutable, point-independent half of a selection
// solve: implementation groups, per-IP areas, and the per-path gain
// coefficient of every implementation method. It is built once per DB
// (Analyze once) and shared by any number of concurrent solves and
// sweep points (select many); nothing in it is mutated after
// NewAnalysis returns.
type Analysis struct {
	db      *imp.DB
	groups  []group
	grpOf   []group // per IMP
	grpArea map[group]float64
	ipIDs   []string
	ipArea  map[string]float64
	// coef[k][m] is the gain coefficient of IMP m on path k: the
	// site-frequency-weighted gain the method contributes to that path.
	coef [][]int64
	// freq[k][m] is the execution frequency of IMP m's sites on path k,
	// so coef[k][m] = freq[k][m] · gainPerExec[m]. Kept so Apply can
	// recompute coefficients for edited gains without re-walking the CDFG.
	freq [][]int64
	// gainPerExec and totalGain mirror the DB's per-IMP gains; a Delta
	// edit produces a derived Analysis with these (and coef) rewritten,
	// which is why every solver path reads gains through the Analysis
	// rather than the DB.
	gainPerExec []int64
	totalGain   []int64
	maxGain     int64
}

// NewAnalysis precomputes the shared artifact for db. The db must not
// be mutated afterwards (the same contract Design documents).
func NewAnalysis(db *imp.DB) *Analysis {
	a := &Analysis{db: db, grpArea: map[group]float64{}, ipArea: map[string]float64{}}
	siteOn := make([]map[*cdfg.Node]bool, len(db.Paths))
	for k, calls := range db.Paths {
		siteOn[k] = map[*cdfg.Node]bool{}
		for _, c := range calls {
			siteOn[k][c] = true
		}
	}
	seenG := map[group]bool{}
	seenIP := map[string]bool{}
	a.grpOf = make([]group, len(db.IMPs))
	for i, im := range db.IMPs {
		g := group{im.IP.ID, im.Cand.Type, im.Flattened}
		a.grpOf[i] = g
		if !seenG[g] {
			seenG[g] = true
			a.groups = append(a.groups, g)
		}
		if im.IfaceArea > a.grpArea[g] {
			a.grpArea[g] = im.IfaceArea
		}
		if !seenIP[im.IP.ID] {
			seenIP[im.IP.ID] = true
			a.ipIDs = append(a.ipIDs, im.IP.ID)
			a.ipArea[im.IP.ID] = im.IP.Area
		}
	}
	sort.Slice(a.groups, func(x, y int) bool { return groupLess(a.groups[x], a.groups[y]) })
	sort.Strings(a.ipIDs)
	a.gainPerExec = make([]int64, len(db.IMPs))
	a.totalGain = make([]int64, len(db.IMPs))
	for i, im := range db.IMPs {
		a.gainPerExec[i] = im.GainPerExec
		a.totalGain[i] = im.TotalGain
	}
	a.coef = make([][]int64, len(db.Paths))
	a.freq = make([][]int64, len(db.Paths))
	for k := range db.Paths {
		a.coef[k] = make([]int64, len(db.IMPs))
		a.freq[k] = make([]int64, len(db.IMPs))
		for m, im := range db.IMPs {
			var f int64
			for _, site := range im.SC.Sites {
				if siteOn[k][site] {
					f += site.Freq
				}
			}
			a.freq[k][m] = f
			a.coef[k][m] = f * im.GainPerExec
		}
	}
	a.maxGain = MaxReachableGain(db)
	return a
}

// DB returns the analyzed database.
func (a *Analysis) DB() *imp.DB { return a.db }

// MaxGain is MaxReachableGain of the analyzed DB, precomputed.
func (a *Analysis) MaxGain() int64 { return a.maxGain }

// pathCoef is the gain coefficient of IMP m on path k.
func (a *Analysis) pathCoef(k, m int) int64 { return a.coef[k][m] }

// Solve runs the lexicographic optimization of SolveCtx over the shared
// analysis. p.DB may be left nil (it defaults to the analyzed DB); a
// non-nil p.DB must be the analyzed DB itself.
func (a *Analysis) Solve(ctx context.Context, p Problem) (*Selection, error) {
	if p.DB == nil {
		p.DB = a.db
	}
	if p.DB != a.db {
		return nil, fmt.Errorf("selector: problem DB does not match the analysis DB")
	}
	if len(a.db.IMPs) == 0 {
		return &Selection{Status: ilp.Infeasible}, nil
	}
	return solveBound(ctx, &instance{Analysis: a, p: p})
}

// Greedy runs the GreedyBaseline heuristic over the shared analysis.
func (a *Analysis) Greedy(p Problem) *Selection {
	if p.DB == nil {
		p.DB = a.db
	}
	return greedyBound(&instance{Analysis: a, p: p})
}

// greedySeed builds a warm-start vector for the uniform requirement rg
// from the greedy baseline: when greedy reaches the requirement, its
// selection is a feasible point of the exact model, and SetWarmStart
// installs it (after validation) as the initial incumbent — an upper
// bound the search prunes against from node one. Returns nil when
// greedy falls short of rg.
func (a *Analysis) greedySeed(rg int64) []float64 {
	if rg <= 0 || len(a.db.IMPs) == 0 {
		return nil
	}
	g := a.Greedy(Problem{DB: a.db, Required: rg})
	if g.Status != ilp.Optimal {
		return nil
	}
	layout := &instance{Analysis: a, p: Problem{DB: a.db}}
	return layout.warmVector(g)
}

// meetsUniform reports whether sel achieves at least rg on every
// execution path — i.e. whether it is feasible at the uniform
// requirement rg.
func meetsUniform(sel *Selection, rg int64) bool {
	if rg <= 0 {
		return true
	}
	for _, g := range sel.PathGains {
		if g < rg {
			return false
		}
	}
	return true
}

// Point is one lazily produced result of a sweep Pipeline.
type Point struct {
	// Index is the point's position in the pipeline's gains slice.
	Index int
	// Required is the point's uniform required gain.
	Required int64
	Sel      *Selection
	// Reused marks a point completed without any solver search: its
	// selection was proven equal to a looser point's (plateau reuse) or
	// its infeasibility followed from a looser infeasible point.
	Reused bool
}

// PipelineStats counts how the pipeline disposed of its points.
type PipelineStats struct {
	// Solved points ran the exact solver.
	Solved int
	// Reused points completed with zero solver work (plateau reuse or
	// propagated infeasibility).
	Reused int
	// GreedySeeds counts solved points whose search was warm-started
	// with the greedy baseline's selection.
	GreedySeeds int
}

// Pipeline lazily solves a sequence of uniform required-gain points
// over one shared Analysis. Points are produced in the order of gains;
// ascending order maximizes plateau reuse and infeasibility
// propagation (both remain sound, merely less effective, out of
// order). A Pipeline is not safe for concurrent use; build one per
// consumer.
type Pipeline struct {
	an      *Analysis
	gains   []int64
	bud     budget.Budget
	observe func(point int, inc Incumbent)

	cursor   int
	donor    *Selection // last proven-optimal solve
	donorRG  int64
	infeasAt int64 // lowest rg proven infeasible
	stats    PipelineStats
}

// NewPipeline builds a lazy iterator over the given required gains.
// bud applies per point with Parallelism pinned to 1 (the pipeline
// itself is strictly sequential; SweepEach lifts the pin to put the
// budget's workers inside each solve); observe, when non-nil, receives
// every incumbent of every solved point, tagged with the point index.
// The gains slice is retained, not copied.
func (a *Analysis) NewPipeline(gains []int64, bud budget.Budget, observe func(int, Incumbent)) *Pipeline {
	bud.Parallelism = 1
	return &Pipeline{an: a, gains: gains, bud: bud, observe: observe, infeasAt: math.MaxInt64}
}

// Len reports the total number of points.
func (pl *Pipeline) Len() int { return len(pl.gains) }

// Stats reports the dispositions of the points produced so far.
func (pl *Pipeline) Stats() PipelineStats { return pl.stats }

// Next produces the next point, solving it only if its answer does not
// already follow from an earlier one. ok is false when the pipeline is
// exhausted. On error the point's Index/Required are still valid and
// the cursor has advanced, so a caller may keep iterating (per-point
// deadlines: pass a fresh ctx per call).
func (pl *Pipeline) Next(ctx context.Context) (pt Point, ok bool, err error) {
	if pl.cursor >= len(pl.gains) {
		return Point{}, false, nil
	}
	i := pl.cursor
	pl.cursor++
	rg := pl.gains[i]

	// Plateau reuse: the donor selection is optimal at its own (looser)
	// requirement; if it is feasible here it is optimal here too.
	if pl.donor != nil && rg >= pl.donorRG && meetsUniform(pl.donor, rg) {
		pl.stats.Reused++
		cp := *pl.donor
		cp.Nodes = 0 // no search happened for this point
		return Point{Index: i, Required: rg, Sel: &cp, Reused: true}, true, nil
	}
	// Infeasibility propagation: feasible sets shrink as rg grows.
	if rg >= pl.infeasAt {
		pl.stats.Reused++
		return Point{Index: i, Required: rg, Sel: &Selection{Status: ilp.Infeasible}, Reused: true}, true, nil
	}

	p := Problem{DB: pl.an.db, Required: rg, Budget: pl.bud}
	if pl.donor != nil && rg >= pl.donorRG {
		// Monotonicity cut: the optimal area here is at least the donor's.
		p.areaFloor = pl.donor.Area
	}
	if pl.observe != nil {
		obs, idx := pl.observe, i
		p.OnIncumbent = func(inc Incumbent) { obs(idx, inc) }
	}
	if seed := pl.an.greedySeed(rg); seed != nil {
		p.warmStart = seed
		pl.stats.GreedySeeds++
	}
	sel, err := pl.an.Solve(ctx, p)
	if err != nil {
		return Point{Index: i, Required: rg}, true, err
	}
	pl.stats.Solved++
	pl.record(rg, sel)
	return Point{Index: i, Required: rg, Sel: sel}, true, nil
}

// record keeps proven results as reuse sources. Anytime (Feasible) and
// degraded results prove nothing and are never reused.
func (pl *Pipeline) record(rg int64, sel *Selection) {
	if sel.Degraded != "" {
		return
	}
	switch sel.Status {
	case ilp.Optimal:
		if pl.donor == nil || rg >= pl.donorRG {
			pl.donor, pl.donorRG = sel, rg
		}
	case ilp.Infeasible:
		if rg < pl.infeasAt {
			pl.infeasAt = rg
		}
	}
}

// SweepEach runs the pipeline over explicit required gains, invoking
// each(point) as every point completes, always in gains order. A
// multi-worker budget puts the workers *inside* each solve (the
// work-stealing branch-and-bound) rather than across points: the sweep
// stays the strictly ascending pipeline, so plateau reuse, donor
// selection, and the monotonicity cut are identical at every
// parallelism level — deterministic, and never solving a point the
// serial sweep gets for free. (An earlier revision pooled whole points
// tightest-first; donor selection then depended on completion order,
// reuse never fired, and the parallel sweep expanded more nodes than
// the serial one — the opposite of a speedup on a machine with cores
// to spare.) observe and each are never invoked concurrently; the
// sweep aborts on the first solve error.
func (a *Analysis) SweepEach(ctx context.Context, gains []int64, bud budget.Budget, observe func(int, Incumbent), each func(Point)) error {
	pl := a.NewPipeline(gains, bud, observe)
	// NewPipeline pins per-point parallelism to 1 for external callers;
	// the sweep is where the budget's workers belong inside the solves.
	pl.bud.Parallelism = bud.Parallelism
	for {
		pt, ok, err := pl.Next(ctx)
		if !ok {
			return nil
		}
		if err != nil {
			return err
		}
		if each != nil {
			each(pt)
		}
	}
}

// SweepPoints is the evenly spaced sweep over the shared analysis:
// `points` required gains from max/points up to the reachable maximum,
// returned in required-gain order. This is what Design.SweepCtx runs.
func (a *Analysis) SweepPoints(ctx context.Context, points int, bud budget.Budget, observe func(Incumbent)) ([]SweepPoint, error) {
	if points < 2 {
		points = 2
	}
	gains := make([]int64, points)
	for i := 1; i <= points; i++ {
		gains[i-1] = a.maxGain * int64(i) / int64(points)
	}
	out := make([]SweepPoint, points)
	var obs func(int, Incumbent)
	if observe != nil {
		obs = func(_ int, inc Incumbent) { observe(inc) }
	}
	err := a.SweepEach(ctx, gains, bud, obs, func(pt Point) {
		out[pt.Index] = SweepPoint{Required: pt.Required, Sel: pt.Sel}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
