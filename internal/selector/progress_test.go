package selector

import (
	"context"
	"math"
	"testing"

	"partita/internal/iface"
	"partita/internal/ilp"
	"partita/internal/imp"
)

// progressDB builds a search space with enough fixed-charge structure
// that branch and bound installs at least one incumbent before proving
// optimality.
func progressDB(t *testing.T) *imp.DB {
	t.Helper()
	a := mkIP("IPA", 9)
	b := mkIP("IPB", 7)
	c := mkIP("IPC", 12)
	d := mkIP("IPD", 5)
	db, err := imp.NewSyntheticDB([]string{"f1", "f2", "f3", "f4"}, []imp.SynthIMP{
		{SC: 1, IP: a, Type: iface.Type0, Gain: 90, IfaceArea: 1},
		{SC: 1, IP: c, Type: iface.Type2, Gain: 150, IfaceArea: 3},
		{SC: 2, IP: a, Type: iface.Type1, Gain: 110, IfaceArea: 2},
		{SC: 2, IP: b, Type: iface.Type0, Gain: 80, IfaceArea: 1},
		{SC: 3, IP: b, Type: iface.Type3, Gain: 140, IfaceArea: 4},
		{SC: 3, IP: d, Type: iface.Type0, Gain: 60, IfaceArea: 1},
		{SC: 4, IP: c, Type: iface.Type0, Gain: 120, IfaceArea: 2},
		{SC: 4, IP: d, Type: iface.Type1, Gain: 70, IfaceArea: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestSolveCtxOnIncumbentMonotonic(t *testing.T) {
	db := progressDB(t)
	var events []Incumbent
	sel, err := SolveCtx(context.Background(), Problem{
		DB:       db,
		Required: 300,
		OnIncumbent: func(in Incumbent) {
			events = append(events, in)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Status != ilp.Optimal {
		t.Fatalf("status = %v, want optimal", sel.Status)
	}
	if len(events) == 0 {
		t.Fatal("no incumbent events observed")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Area >= events[i-1].Area {
			t.Errorf("event %d area %g does not improve on %g", i, events[i].Area, events[i-1].Area)
		}
	}
	last := events[len(events)-1]
	if math.Abs(last.Area-sel.Area) > 1e-6 {
		t.Errorf("last incumbent area %g != selected area %g", last.Area, sel.Area)
	}
	for i, e := range events {
		if e.Bound > e.Area+1e-9 {
			t.Errorf("event %d bound %g exceeds area %g", i, e.Bound, e.Area)
		}
		if e.Gap < 0 {
			t.Errorf("event %d gap %g < 0", i, e.Gap)
		}
		if e.Nodes <= 0 {
			t.Errorf("event %d nodes = %d", i, e.Nodes)
		}
	}
}

func TestSolveCtxOnIncumbentNilSafe(t *testing.T) {
	db := progressDB(t)
	sel, err := SolveCtx(context.Background(), Problem{DB: db, Required: 300})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Status != ilp.Optimal {
		t.Fatalf("status = %v", sel.Status)
	}
}
