package selector

import (
	"context"
	"sort"

	"partita/internal/budget"
	"partita/internal/cdfg"
	"partita/internal/ilp"
	"partita/internal/imp"
)

// SweepPoint is one solved point of a design-space sweep.
type SweepPoint struct {
	Required int64
	Sel      *Selection
}

// MaxReachableGain sums the best total gain of every s-call — the upper
// bound any selection can achieve (ignoring conflicts, so it may
// slightly overestimate under Problem 2).
func MaxReachableGain(db *imp.DB) int64 {
	best := map[*imp.SCall]int64{}
	for _, m := range db.IMPs {
		if m.TotalGain > best[m.SC] {
			best[m.SC] = m.TotalGain
		}
	}
	var total int64
	for _, g := range best {
		total += g
	}
	return total
}

// MaxReachablePerPath computes, for each execution path, the largest
// gain any selection can deliver *on that path*: the sum over the
// path's s-calls of their best site-weighted method. The minimum across
// paths bounds the requirement that can be applied uniformly (ignoring
// conflicts, which can only lower it).
func MaxReachablePerPath(db *imp.DB) []int64 {
	bestPerExec := map[*imp.SCall]int64{}
	for _, m := range db.IMPs {
		if m.GainPerExec > bestPerExec[m.SC] {
			bestPerExec[m.SC] = m.GainPerExec
		}
	}
	siteOwner := map[*cdfg.Node]*imp.SCall{}
	for _, sc := range db.SCalls {
		for _, s := range sc.Sites {
			siteOwner[s] = sc
		}
	}
	out := make([]int64, len(db.Paths))
	for k, calls := range db.Paths {
		for _, c := range calls {
			if sc := siteOwner[c]; sc != nil {
				out[k] += c.Freq * bestPerExec[sc]
			}
		}
	}
	return out
}

// Sweep solves the selection problem at `points` evenly spaced required
// gains from 0 up to the reachable maximum, returning the achieved
// area/gain trade-off curve. Infeasible points (possible near the top
// under conflicts) are included with their status so callers can see
// the feasibility edge.
func Sweep(db *imp.DB, points int) ([]SweepPoint, error) {
	return SweepCtx(context.Background(), db, points, budget.Budget{})
}

// SweepCtx is Sweep under a budget: the context deadline bounds the
// whole sweep and bud applies per point. Points solved after the budget
// expires degrade exactly like SolveCtx (anytime incumbents, then the
// greedy heuristic), so a partial budget still yields a usable curve;
// outright cancellation aborts with the cancellation error.
func SweepCtx(ctx context.Context, db *imp.DB, points int, bud budget.Budget) ([]SweepPoint, error) {
	return SweepCtxObserve(ctx, db, points, bud, nil)
}

// SweepCtxObserve is SweepCtx with an incumbent observer threaded into
// every point's solve, so long sweeps report anytime progress (and the
// partitad journal can checkpoint incumbents) point by point; nil
// observe makes this identical to SweepCtx.
//
// This is a thin adapter over the shared-analysis lazy pipeline (see
// pipeline.go): the program is analyzed once, points whose answer is
// proven by a looser point complete without solving, and solved points
// are warm-started. bud.Parallelism >= 2 puts that many workers inside
// each point's branch-and-bound (the ascending reuse chain itself
// stays sequential and deterministic); the returned curve is in
// required-gain order with the same status/gain/area at every
// parallelism (area up to float round-off when two method sets tie at
// the optimum and concurrent order lands on the other one).
func SweepCtxObserve(ctx context.Context, db *imp.DB, points int, bud budget.Budget, observe func(Incumbent)) ([]SweepPoint, error) {
	return NewAnalysis(db).SweepPoints(ctx, points, bud, observe)
}

// ParetoFront filters sweep points down to the non-dominated (gain up,
// area down) frontier, keeping only optimal points.
func ParetoFront(points []SweepPoint) []SweepPoint {
	var feasible []SweepPoint
	for _, p := range points {
		if p.Sel.Status == ilp.Optimal {
			feasible = append(feasible, p)
		}
	}
	sort.Slice(feasible, func(i, j int) bool {
		if feasible[i].Sel.Area != feasible[j].Sel.Area {
			return feasible[i].Sel.Area < feasible[j].Sel.Area
		}
		return feasible[i].Sel.Gain > feasible[j].Sel.Gain
	})
	var front []SweepPoint
	var bestGain int64 = -1
	for _, p := range feasible {
		if p.Sel.Gain > bestGain {
			front = append(front, p)
			bestGain = p.Sel.Gain
		}
	}
	return front
}
