package selector

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"partita/internal/budget"
	"partita/internal/cdfg"
	"partita/internal/ilp"
	"partita/internal/imp"
)

// SweepPoint is one solved point of a design-space sweep.
type SweepPoint struct {
	Required int64
	Sel      *Selection
}

// MaxReachableGain sums the best total gain of every s-call — the upper
// bound any selection can achieve (ignoring conflicts, so it may
// slightly overestimate under Problem 2).
func MaxReachableGain(db *imp.DB) int64 {
	best := map[*imp.SCall]int64{}
	for _, m := range db.IMPs {
		if m.TotalGain > best[m.SC] {
			best[m.SC] = m.TotalGain
		}
	}
	var total int64
	for _, g := range best {
		total += g
	}
	return total
}

// MaxReachablePerPath computes, for each execution path, the largest
// gain any selection can deliver *on that path*: the sum over the
// path's s-calls of their best site-weighted method. The minimum across
// paths bounds the requirement that can be applied uniformly (ignoring
// conflicts, which can only lower it).
func MaxReachablePerPath(db *imp.DB) []int64 {
	bestPerExec := map[*imp.SCall]int64{}
	for _, m := range db.IMPs {
		if m.GainPerExec > bestPerExec[m.SC] {
			bestPerExec[m.SC] = m.GainPerExec
		}
	}
	siteOwner := map[*cdfg.Node]*imp.SCall{}
	for _, sc := range db.SCalls {
		for _, s := range sc.Sites {
			siteOwner[s] = sc
		}
	}
	out := make([]int64, len(db.Paths))
	for k, calls := range db.Paths {
		for _, c := range calls {
			if sc := siteOwner[c]; sc != nil {
				out[k] += c.Freq * bestPerExec[sc]
			}
		}
	}
	return out
}

// Sweep solves the selection problem at `points` evenly spaced required
// gains from 0 up to the reachable maximum, returning the achieved
// area/gain trade-off curve. Infeasible points (possible near the top
// under conflicts) are included with their status so callers can see
// the feasibility edge.
func Sweep(db *imp.DB, points int) ([]SweepPoint, error) {
	return SweepCtx(context.Background(), db, points, budget.Budget{})
}

// SweepCtx is Sweep under a budget: the context deadline bounds the
// whole sweep and bud applies per point. Points solved after the budget
// expires degrade exactly like SolveCtx (anytime incumbents, then the
// greedy heuristic), so a partial budget still yields a usable curve;
// outright cancellation aborts with the cancellation error.
func SweepCtx(ctx context.Context, db *imp.DB, points int, bud budget.Budget) ([]SweepPoint, error) {
	return SweepCtxObserve(ctx, db, points, bud, nil)
}

// SweepCtxObserve is SweepCtx with an incumbent observer threaded into
// every point's solve, so long sweeps report anytime progress (and the
// partitad journal can checkpoint incumbents) point by point; nil
// observe makes this identical to SweepCtx.
//
// bud.Parallelism >= 2 solves the sweep's points concurrently on a
// bounded pool of that many workers (see sweepParallel); the returned
// curve is in the same required-gain order either way, and with <= 1
// the loop below runs points in exactly the historical order.
func SweepCtxObserve(ctx context.Context, db *imp.DB, points int, bud budget.Budget, observe func(Incumbent)) ([]SweepPoint, error) {
	if points < 2 {
		points = 2
	}
	max := MaxReachableGain(db)
	if w := bud.Workers(); w > 1 {
		return sweepParallel(ctx, db, points, max, bud, observe, w)
	}
	out := make([]SweepPoint, 0, points)
	for i := 1; i <= points; i++ {
		rg := max * int64(i) / int64(points)
		sel, err := SolveCtx(ctx, Problem{DB: db, Required: rg, Budget: bud, OnIncumbent: observe})
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{Required: rg, Sel: sel})
	}
	return out, nil
}

// sweepParallel solves the sweep's points on a bounded worker pool.
// Semantics preserved from the serial loop: the output is ordered by
// required gain, each point gets its own per-point budget (each solve
// runs the serial ILP driver — point-level concurrency already
// saturates the pool, and per-point MaxNodes keeps its meaning), the
// observer is serialized behind a mutex, and the error reported is the
// one the serial loop would have hit first (lowest point index).
//
// Points are scheduled from the tightest required gain downward so that
// finished points can warm-start looser ones: a selection meeting a
// tighter gain requirement is feasible at every looser requirement, so
// its area seeds the looser solve as an initial upper bound and the
// solver starts pruning from node one.
func sweepParallel(ctx context.Context, db *imp.DB, points int, max int64, bud budget.Budget, observe func(Incumbent), workers int) ([]SweepPoint, error) {
	if workers > points {
		workers = points
	}
	pointBud := bud
	pointBud.Parallelism = 1

	// Variable layout for warm-start vectors; depends only on the DB, so
	// one instance serves every point.
	layout := newInstance(Problem{DB: db})

	obs := observe
	if observe != nil {
		var obsMu sync.Mutex
		obs = func(inc Incumbent) {
			obsMu.Lock()
			defer obsMu.Unlock()
			observe(inc)
		}
	}

	sels := make([]*Selection, points)
	errs := make([]error, points)
	warm := make([][]float64, points)
	var warmMu sync.Mutex

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= points {
					return
				}
				i := points - 1 - k // tightest required gain first
				rg := max * int64(i+1) / int64(points)
				p := Problem{DB: db, Required: rg, Budget: pointBud, OnIncumbent: obs}
				warmMu.Lock()
				for j := i + 1; j < points; j++ {
					// Nearest finished tighter point: its area is the
					// tightest seed available for this one.
					if warm[j] != nil {
						p.warmStart = warm[j]
						break
					}
				}
				warmMu.Unlock()
				sel, err := SolveCtx(ctx, p)
				if err == nil && sel != nil && sel.Degraded == "" &&
					(sel.Status == ilp.Optimal || sel.Status == ilp.Feasible) {
					if v := layout.warmVector(sel); v != nil {
						warmMu.Lock()
						warm[i] = v
						warmMu.Unlock()
					}
				}
				sels[i], errs[i] = sel, err
			}
		}()
	}
	wg.Wait()

	out := make([]SweepPoint, 0, points)
	for i := 0; i < points; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out = append(out, SweepPoint{Required: max * int64(i+1) / int64(points), Sel: sels[i]})
	}
	return out, nil
}

// ParetoFront filters sweep points down to the non-dominated (gain up,
// area down) frontier, keeping only optimal points.
func ParetoFront(points []SweepPoint) []SweepPoint {
	var feasible []SweepPoint
	for _, p := range points {
		if p.Sel.Status == ilp.Optimal {
			feasible = append(feasible, p)
		}
	}
	sort.Slice(feasible, func(i, j int) bool {
		if feasible[i].Sel.Area != feasible[j].Sel.Area {
			return feasible[i].Sel.Area < feasible[j].Sel.Area
		}
		return feasible[i].Sel.Gain > feasible[j].Sel.Gain
	})
	var front []SweepPoint
	var bestGain int64 = -1
	for _, p := range feasible {
		if p.Sel.Gain > bestGain {
			front = append(front, p)
			bestGain = p.Sel.Gain
		}
	}
	return front
}
