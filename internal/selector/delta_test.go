package selector

import (
	"context"
	"testing"

	"partita/internal/iface"
	"partita/internal/ilp"
	"partita/internal/imp"
)

func deltaDB(t *testing.T) *imp.DB {
	t.Helper()
	db, err := imp.NewSyntheticDB([]string{"a", "b"}, []imp.SynthIMP{
		{SC: 1, IP: mkIP("IP1", 10), Type: iface.Type0, Gain: 100, IfaceArea: 1},
		{SC: 1, IP: mkIP("IP2", 4), Type: iface.Type0, Gain: 60, IfaceArea: 1},
		{SC: 2, IP: mkIP("IP3", 6), Type: iface.Type0, Gain: 80, IfaceArea: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestApplyCopyOnWrite: a requirement-only delta returns the receiver
// itself; area-only edits share the coefficient matrix by reference;
// and the parent analysis never observes any edit.
func TestApplyCopyOnWrite(t *testing.T) {
	a := NewAnalysis(deltaDB(t))
	rq := int64(50)

	same, err := a.Apply(Delta{Required: &rq, PathRequired: map[int]int64{0: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if same != a {
		t.Error("requirement-only delta rebuilt the analysis")
	}

	na, err := a.Apply(Delta{IPArea: map[string]float64{"IP1": 2}})
	if err != nil {
		t.Fatal(err)
	}
	if na == a {
		t.Fatal("area edit returned the parent analysis")
	}
	if &na.coef[0][0] != &a.coef[0][0] {
		t.Error("area-only edit copied the coefficient matrix")
	}
	if na.ipArea["IP1"] != 2 || a.ipArea["IP1"] != 10 {
		t.Errorf("areas: derived %v parent %v; want 2 and 10", na.ipArea["IP1"], a.ipArea["IP1"])
	}

	ng, err := a.Apply(Delta{IMPGain: map[string]int64{a.db.IMPs[0].ID: 200}})
	if err != nil {
		t.Fatal(err)
	}
	if &ng.coef[0][0] == &a.coef[0][0] {
		t.Error("gain edit shares coefficient rows with the parent")
	}
	if ng.totalGain[0] != 200 || a.totalGain[0] != 100 {
		t.Errorf("gains: derived %d parent %d; want 200 and 100", ng.totalGain[0], a.totalGain[0])
	}
	if want := int64(200 + 80); ng.MaxGain() != want {
		t.Errorf("derived MaxGain = %d, want %d", ng.MaxGain(), want)
	}
	if a.MaxGain() != 180 {
		t.Errorf("parent MaxGain = %d, want 180", a.MaxGain())
	}
}

// TestApplyChangesAnswer: raising a chosen IP's area flips the optimum
// to the alternative, and the derived analysis solves to the same
// answer a fresh analysis of an equivalently edited DB would.
func TestApplyChangesAnswer(t *testing.T) {
	a := NewAnalysis(deltaDB(t))
	p := Problem{Required: 60}
	base, err := a.Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if base.Status != ilp.Optimal || base.Chosen[0].IP.ID != "IP2" {
		t.Fatalf("base optimum unexpected: %+v", base)
	}

	// Make IP2 expensive: IP3's method (gain 80, area 6+2) becomes the
	// optimum.
	na, err := a.Apply(Delta{IPArea: map[string]float64{"IP2": 50}})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := na.Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Status != ilp.Optimal || sel.Chosen[0].IP.ID != "IP3" || sel.Area != 8 {
		t.Fatalf("edited optimum unexpected: chose %s area %v", sel.Chosen[0].ID, sel.Area)
	}

	// Gain edit: drop IP1's method to 40 so only IP2 reaches 60... and
	// greedy/exact agree through the same derived coefficients.
	ng, err := a.Apply(Delta{IMPGain: map[string]int64{a.db.IMPs[0].ID: 40}})
	if err != nil {
		t.Fatal(err)
	}
	sel2, err := ng.Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if sel2.Status != ilp.Optimal || sel2.Chosen[0].IP.ID != "IP2" {
		t.Fatalf("gain-edited optimum unexpected: %+v", sel2)
	}
	if g := ng.Greedy(Problem{DB: ng.DB(), Required: 60}); g.Status == ilp.Optimal && g.Chosen[0].IP.ID != "IP2" {
		t.Errorf("greedy over derived analysis chose %s", g.Chosen[0].ID)
	}
}

// TestApplyProblemMerging: Required replaces the uniform requirement;
// PathRequired entries override their paths and leave others at -1
// (fall through to Required).
func TestApplyProblemMerging(t *testing.T) {
	a := NewAnalysis(deltaDB(t))
	rq := int64(70)
	p, err := a.ApplyProblem(Delta{Required: &rq, PathRequired: map[int]int64{0: 30}}, Problem{Required: 10})
	if err != nil {
		t.Fatal(err)
	}
	if p.Required != 70 {
		t.Errorf("Required = %d, want 70", p.Required)
	}
	if len(p.PerPath) != 1 || p.PerPath[0] != 30 {
		t.Errorf("PerPath = %v, want [30]", p.PerPath)
	}
}

// TestDeltaMerge: later edits win per field, earlier ones survive where
// untouched, and neither input is mutated.
func TestDeltaMerge(t *testing.T) {
	r1, r2 := int64(5), int64(9)
	d := Delta{IPArea: map[string]float64{"A": 1, "B": 2}, Required: &r1}
	e := Delta{IPArea: map[string]float64{"B": 7}, IMPGain: map[string]int64{"m": 3}, Required: &r2}
	m := d.Merge(e)
	if m.IPArea["A"] != 1 || m.IPArea["B"] != 7 || m.IMPGain["m"] != 3 || *m.Required != 9 {
		t.Errorf("merge wrong: %+v", m)
	}
	if d.IPArea["B"] != 2 || *d.Required != 5 {
		t.Error("merge mutated the receiver")
	}
	if !(Delta{}).Empty() || m.Empty() {
		t.Error("Empty misreports")
	}
	// Merged pointer must not alias the inputs.
	*m.Required = 100
	if *e.Required != 9 {
		t.Error("merged Required aliases the input")
	}
}

// TestSolveSeededIgnoresStaleSeed: a seed the edit made infeasible is
// silently dropped and the answer matches an unseeded solve.
func TestSolveSeededIgnoresStaleSeed(t *testing.T) {
	a := NewAnalysis(deltaDB(t))
	p := Problem{Required: 60}
	base, err := a.Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	// Tighten the requirement past the seed's reach on a derived
	// analysis where IMP gains were slashed.
	na, err := a.Apply(Delta{IMPGain: map[string]int64{a.db.IMPs[1].ID: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := na.Solve(context.Background(), Problem{Required: 150})
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := na.SolveSeeded(context.Background(), Problem{Required: 150}, base)
	if err != nil {
		t.Fatal(err)
	}
	if seeded.Status != ref.Status || seeded.Area != ref.Area || seeded.Gain != ref.Gain {
		t.Errorf("seeded %v/%v/%d, unseeded %v/%v/%d",
			seeded.Status, seeded.Area, seeded.Gain, ref.Status, ref.Area, ref.Gain)
	}
}

// TestLPRoundBounds: the LP engine's bound never exceeds the true
// optimal area, its selection is feasible for the requirement, and an
// unreachable requirement is proven Infeasible.
func TestLPRoundBounds(t *testing.T) {
	a := NewAnalysis(deltaDB(t))
	p := Problem{Required: 60}
	exact, err := a.Solve(context.Background(), p)
	if err != nil || exact.Status != ilp.Optimal {
		t.Fatalf("exact: %v %v", err, exact)
	}
	sel, bound, err := a.LPRound(context.Background(), p, nil)
	if err != nil {
		t.Fatalf("lp round: %v", err)
	}
	if bound > exact.Area+1e-9 {
		t.Errorf("LP bound %v exceeds optimal area %v", bound, exact.Area)
	}
	if sel.Status != ilp.Feasible {
		t.Fatalf("status = %v, want Feasible", sel.Status)
	}
	for k, g := range sel.PathGains {
		if g < 60 {
			t.Errorf("path %d gain %d misses the requirement", k, g)
		}
	}
	if sel.Area < exact.Area-1e-9 {
		t.Errorf("rounded area %v beats the proven optimum %v", sel.Area, exact.Area)
	}

	inf, bnd, err := a.LPRound(context.Background(), Problem{Required: a.MaxGain() + 1}, nil)
	if err != nil {
		t.Fatalf("infeasible lp round: %v", err)
	}
	if inf.Status != ilp.Infeasible {
		t.Errorf("status = %v, want Infeasible (LP infeasibility is a proof)", inf.Status)
	}
	_ = bnd
}
