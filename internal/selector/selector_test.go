package selector

import (
	"math"
	"testing"

	"partita/internal/cdfg"
	"partita/internal/iface"
	"partita/internal/ilp"
	"partita/internal/imp"
	"partita/internal/ip"
)

func mkIP(id string, area float64) *ip.IP {
	return &ip.IP{ID: id, Name: id, Funcs: []string{"f"}, InPorts: 1, OutPorts: 1,
		InRate: 1, OutRate: 1, Latency: 1, Pipelined: true, Area: area}
}

func TestIPSharingCountedOnce(t *testing.T) {
	shared := mkIP("IPS", 10)
	db, err := imp.NewSyntheticDB([]string{"a", "b"}, []imp.SynthIMP{
		{SC: 1, IP: shared, Type: iface.Type0, Gain: 100, IfaceArea: 1},
		{SC: 2, IP: shared, Type: iface.Type0, Gain: 100, IfaceArea: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Solve(Problem{DB: db, Required: 150})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Status != ilp.Optimal {
		t.Fatalf("status = %v", sel.Status)
	}
	if len(sel.Chosen) != 2 {
		t.Fatalf("chosen = %d, want 2 (need both for gain 150)", len(sel.Chosen))
	}
	// IP counted once (10), merged interface counted once (1) → 11.
	if math.Abs(sel.Area-11) > 1e-6 {
		t.Errorf("area = %g, want 11 (IP once + merged interface once)", sel.Area)
	}
	if sel.SInstructions != 1 {
		t.Errorf("S-instructions = %d, want 1 (merged)", sel.SInstructions)
	}
	if sel.SCallsImplemented != 2 {
		t.Errorf("O = %d, want 2", sel.SCallsImplemented)
	}
}

func TestMergingDisabledChargesPerMethod(t *testing.T) {
	shared := mkIP("IPS", 10)
	db, _ := imp.NewSyntheticDB([]string{"a", "b"}, []imp.SynthIMP{
		{SC: 1, IP: shared, Type: iface.Type0, Gain: 100, IfaceArea: 1},
		{SC: 2, IP: shared, Type: iface.Type0, Gain: 100, IfaceArea: 1},
	})
	sel, err := Solve(Problem{DB: db, Required: 150, DisableMerging: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sel.Area-12) > 1e-6 {
		t.Errorf("area = %g, want 12 (interface charged twice)", sel.Area)
	}
}

func TestMinAreaPreferredOverMaxGain(t *testing.T) {
	cheap := mkIP("IPC", 2)
	big := mkIP("IPB", 20)
	db, _ := imp.NewSyntheticDB([]string{"a"}, []imp.SynthIMP{
		{SC: 1, IP: cheap, Type: iface.Type0, Gain: 120, IfaceArea: 0.5},
		{SC: 1, IP: big, Type: iface.Type3, Gain: 10000, IfaceArea: 2},
	})
	sel, err := Solve(Problem{DB: db, Required: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Chosen) != 1 || sel.Chosen[0].IP.ID != "IPC" {
		t.Fatalf("chosen = %v, want the cheap IP", sel.Chosen)
	}
}

func TestSurplusTieBreak(t *testing.T) {
	// Two equal-area options meet the target; the one with less surplus
	// gain must win (GSM decoder row RG=22240 behaviour).
	a := mkIP("IPA", 4)
	b := mkIP("IPB", 4)
	db, _ := imp.NewSyntheticDB([]string{"small", "huge"}, []imp.SynthIMP{
		{SC: 1, IP: a, Type: iface.Type0, Gain: 28524, IfaceArea: 0},
		{SC: 2, IP: b, Type: iface.Type0, Gain: 126087, IfaceArea: 0},
	})
	sel, err := Solve(Problem{DB: db, Required: 22240})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Chosen) != 1 || sel.Chosen[0].SC.Func != "small" {
		t.Fatalf("chosen = %+v, want the small-surplus option", sel.Chosen)
	}
}

func TestInfeasibleWhenGainUnreachable(t *testing.T) {
	db, _ := imp.NewSyntheticDB([]string{"a"}, []imp.SynthIMP{
		{SC: 1, IP: mkIP("IP1", 1), Type: iface.Type0, Gain: 10, IfaceArea: 0},
	})
	sel, err := Solve(Problem{DB: db, Required: 100})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Status != ilp.Infeasible {
		t.Fatalf("status = %v, want infeasible", sel.Status)
	}
}

func TestSCPCConflictRespected(t *testing.T) {
	// SC2's hardware method conflicts with SC1's PC-method that runs
	// SC2's software as parallel code. Both very gainful; only one may
	// be chosen.
	ipa := mkIP("IPA", 3)
	ipb := mkIP("IPB", 3)
	db, _ := imp.NewSyntheticDB([]string{"x", "y"}, []imp.SynthIMP{
		{SC: 1, IP: ipa, Type: iface.Type3, Gain: 100, IfaceArea: 0, UsesPC: true, PCOf: []int{2}},
		{SC: 2, IP: ipb, Type: iface.Type0, Gain: 100, IfaceArea: 0},
	})
	if len(db.Conflicts) != 1 {
		t.Fatalf("conflicts = %v, want 1 pair", db.Conflicts)
	}
	// Requiring 150 is infeasible: the two methods cannot coexist.
	sel, err := Solve(Problem{DB: db, Required: 150})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Status != ilp.Infeasible {
		t.Fatalf("status = %v, want infeasible under conflict", sel.Status)
	}
	// Requiring 90 picks exactly one.
	sel, err = Solve(Problem{DB: db, Required: 90})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Chosen) != 1 {
		t.Fatalf("chosen = %d, want 1", len(sel.Chosen))
	}
}

func TestPerPathRequirements(t *testing.T) {
	// Two s-calls on separate execution paths. Meeting the target on
	// both paths requires both IPs even though one alone would cover a
	// single-path constraint.
	ipa := mkIP("IPA", 5)
	ipb := mkIP("IPB", 7)
	db, _ := imp.NewSyntheticDB([]string{"p0f", "p1f"}, []imp.SynthIMP{
		{SC: 1, IP: ipa, Type: iface.Type0, Gain: 100, IfaceArea: 0},
		{SC: 2, IP: ipb, Type: iface.Type0, Gain: 100, IfaceArea: 0},
	})
	db.Paths = [][]*cdfg.Node{
		{db.SCalls[0].Sites[0]},
		{db.SCalls[1].Sites[0]},
	}
	sel, err := Solve(Problem{DB: db, Required: 90})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Chosen) != 2 {
		t.Fatalf("chosen = %d, want 2 (one per path)", len(sel.Chosen))
	}
	if len(sel.PathGains) != 2 || sel.PathGains[0] != 100 || sel.PathGains[1] != 100 {
		t.Errorf("path gains = %v, want [100 100]", sel.PathGains)
	}
	// Per-path override: relax path 1 to zero → only SC1 needed.
	sel, err = Solve(Problem{DB: db, Required: 90, PerPath: []int64{90, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Chosen) != 1 || sel.Chosen[0].SC.Func != "p0f" {
		t.Errorf("chosen = %+v, want only p0f", sel.Chosen)
	}
}

func TestSolveAgainstBruteForce(t *testing.T) {
	// Randomized small instances: the ILP's minimum area must match
	// exhaustive enumeration.
	rng := newRng(7)
	for trial := 0; trial < 60; trial++ {
		nSC := 2 + rng.n(4)
		nIP := 2 + rng.n(3)
		ips := make([]*ip.IP, nIP)
		for i := range ips {
			ips[i] = mkIP(string(rune('A'+i)), float64(1+rng.n(10)))
		}
		funcs := make([]string, nSC)
		for i := range funcs {
			funcs[i] = string(rune('a' + i))
		}
		var sims []imp.SynthIMP
		for sc := 1; sc <= nSC; sc++ {
			k := 1 + rng.n(3)
			for j := 0; j < k; j++ {
				sims = append(sims, imp.SynthIMP{
					SC:        sc,
					IP:        ips[rng.n(nIP)],
					Type:      iface.Type(rng.n(4)),
					Gain:      int64(10 + rng.n(200)),
					IfaceArea: float64(rng.n(4)),
				})
			}
		}
		db, err := imp.NewSyntheticDB(funcs, sims)
		if err != nil {
			t.Fatal(err)
		}
		req := int64(50 + rng.n(300))
		got, err := Solve(Problem{DB: db, Required: req})
		if err != nil {
			t.Fatal(err)
		}
		wantArea, feasible := bruteForceArea(db, req)
		if !feasible {
			if got.Status != ilp.Infeasible {
				t.Fatalf("trial %d: solver %v, brute force infeasible", trial, got.Status)
			}
			continue
		}
		if got.Status != ilp.Optimal {
			t.Fatalf("trial %d: solver %v, brute force found area %g", trial, got.Status, wantArea)
		}
		if math.Abs(got.Area-wantArea) > 1e-6 {
			t.Fatalf("trial %d: solver area %g, brute force %g", trial, got.Area, wantArea)
		}
	}
}

// bruteForceArea enumerates all method assignments (including "none" per
// s-call) and returns the minimum merged area meeting the requirement.
func bruteForceArea(db *imp.DB, required int64) (float64, bool) {
	perSC := make([][]int, len(db.SCalls))
	for i, m := range db.IMPs {
		for s, sc := range db.SCalls {
			if m.SC == sc {
				perSC[s] = append(perSC[s], i)
			}
		}
	}
	best := math.Inf(1)
	feasible := false
	var rec func(s int, picked []int)
	rec = func(s int, picked []int) {
		if s == len(perSC) {
			var gain int64
			ips := map[string]bool{}
			grpMax := map[string]float64{}
			var area float64
			for _, i := range picked {
				m := db.IMPs[i]
				gain += m.TotalGain
				if !ips[m.IP.ID] {
					ips[m.IP.ID] = true
					area += m.IP.Area
				}
				key := m.IP.ID + "/" + m.Cand.Type.String() + "/" + m.Flattened
				if m.IfaceArea > grpMax[key] {
					grpMax[key] = m.IfaceArea
				}
			}
			for _, a := range grpMax {
				area += a
			}
			if gain >= required {
				feasible = true
				if area < best {
					best = area
				}
			}
			return
		}
		rec(s+1, picked)
		for _, i := range perSC[s] {
			rec(s+1, append(picked, i))
		}
	}
	rec(0, nil)
	return best, feasible
}

func TestGreedyBaselineFeasibleButNoBetter(t *testing.T) {
	shared := mkIP("IPS", 10)
	solo := mkIP("IPX", 3)
	db, _ := imp.NewSyntheticDB([]string{"a", "b", "c"}, []imp.SynthIMP{
		{SC: 1, IP: shared, Type: iface.Type0, Gain: 60, IfaceArea: 1},
		{SC: 2, IP: shared, Type: iface.Type0, Gain: 60, IfaceArea: 1},
		{SC: 3, IP: solo, Type: iface.Type0, Gain: 100, IfaceArea: 1},
	})
	req := int64(100)
	opt, err := Solve(Problem{DB: db, Required: req})
	if err != nil {
		t.Fatal(err)
	}
	grd := GreedyBaseline(Problem{DB: db, Required: req})
	if grd.Status != ilp.Optimal {
		t.Fatalf("greedy failed: %v", grd.Status)
	}
	for i, g := range grd.PathGains {
		if g < req {
			t.Errorf("greedy path %d gain %d below %d", i, g, req)
		}
	}
	if grd.Area < opt.Area-1e-9 {
		t.Errorf("greedy area %g beats optimal %g — optimality bug", grd.Area, opt.Area)
	}
}

func TestGreedyBaselineIgnoresPCMethods(t *testing.T) {
	a := mkIP("IPA", 5)
	db, _ := imp.NewSyntheticDB([]string{"a"}, []imp.SynthIMP{
		{SC: 1, IP: a, Type: iface.Type3, Gain: 500, IfaceArea: 1, UsesPC: true},
		{SC: 1, IP: a, Type: iface.Type0, Gain: 100, IfaceArea: 0.5},
	})
	// Only reachable via the PC method → greedy (no PC) must fail while
	// the ILP succeeds.
	req := int64(400)
	grd := GreedyBaseline(Problem{DB: db, Required: req})
	if grd.Status != ilp.Infeasible {
		t.Errorf("greedy status = %v, want infeasible without parallel execution", grd.Status)
	}
	opt, err := Solve(Problem{DB: db, Required: req})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Status != ilp.Optimal {
		t.Errorf("ILP status = %v, want optimal via the PC method", opt.Status)
	}
}

// ---- tiny deterministic rng (avoids importing math/rand in multiple
// spots with differing seeds) ----

type rng struct{ s uint64 }

func newRng(seed uint64) *rng { return &rng{s: seed*2654435761 + 1} }

func (r *rng) n(mod int) int {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return int((r.s >> 33) % uint64(mod))
}
