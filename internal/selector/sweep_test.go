package selector

import (
	"testing"

	"partita/internal/cdfg"
	"partita/internal/iface"
	"partita/internal/ilp"
	"partita/internal/imp"
)

func sweepDB(t *testing.T) *imp.DB {
	t.Helper()
	a := mkIP("A", 2)
	b := mkIP("B", 5)
	c := mkIP("C", 9)
	db, err := imp.NewSyntheticDB([]string{"f1", "f2", "f3"}, []imp.SynthIMP{
		{SC: 1, IP: a, Type: iface.Type0, Gain: 100, IfaceArea: 0.5},
		{SC: 2, IP: b, Type: iface.Type0, Gain: 300, IfaceArea: 0.5},
		{SC: 3, IP: c, Type: iface.Type0, Gain: 700, IfaceArea: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestMaxReachableGain(t *testing.T) {
	db := sweepDB(t)
	if got := MaxReachableGain(db); got != 1100 {
		t.Errorf("MaxReachableGain = %d, want 1100", got)
	}
}

func TestSweepShape(t *testing.T) {
	db := sweepDB(t)
	points, err := Sweep(db, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 10 {
		t.Fatalf("points = %d", len(points))
	}
	prevArea := -1.0
	for _, p := range points {
		if p.Sel.Status != ilp.Optimal {
			t.Fatalf("RG=%d infeasible", p.Required)
		}
		if p.Sel.Gain < p.Required {
			t.Errorf("RG=%d: gain %d below requirement", p.Required, p.Sel.Gain)
		}
		if p.Sel.Area < prevArea-1e-9 {
			t.Errorf("area decreased along the sweep at RG=%d", p.Required)
		}
		prevArea = p.Sel.Area
	}
	// The final point must use everything.
	last := points[len(points)-1]
	if last.Sel.Gain != 1100 {
		t.Errorf("final gain = %d, want 1100", last.Sel.Gain)
	}
}

func TestMaxReachablePerPath(t *testing.T) {
	db := sweepDB(t)
	// Split the three s-calls over two paths: {f1, f2} and {f3}.
	db.Paths = [][]*cdfg.Node{
		{db.SCalls[0].Sites[0], db.SCalls[1].Sites[0]},
		{db.SCalls[2].Sites[0]},
	}
	pp := MaxReachablePerPath(db)
	if len(pp) != 2 || pp[0] != 400 || pp[1] != 700 {
		t.Errorf("per-path = %v, want [400 700]", pp)
	}
	// A uniform requirement above the weakest path must be infeasible.
	sel, err := Solve(Problem{DB: db, Required: 500})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Status != ilp.Infeasible {
		t.Errorf("status %v, want infeasible (path 0 tops out at 400)", sel.Status)
	}
}

func TestParetoFront(t *testing.T) {
	db := sweepDB(t)
	points, err := Sweep(db, 12)
	if err != nil {
		t.Fatal(err)
	}
	front := ParetoFront(points)
	if len(front) == 0 {
		t.Fatal("empty frontier")
	}
	// Strictly increasing in both area and gain.
	for i := 1; i < len(front); i++ {
		if front[i].Sel.Area <= front[i-1].Sel.Area {
			t.Errorf("frontier area not increasing at %d", i)
		}
		if front[i].Sel.Gain <= front[i-1].Sel.Gain {
			t.Errorf("frontier gain not increasing at %d", i)
		}
	}
	// No sweep point may dominate a frontier point.
	for _, p := range points {
		if p.Sel.Status != ilp.Optimal {
			continue
		}
		for _, f := range front {
			if p.Sel.Area < f.Sel.Area-1e-9 && p.Sel.Gain > f.Sel.Gain {
				t.Errorf("frontier point (A=%.1f G=%d) dominated by (A=%.1f G=%d)",
					f.Sel.Area, f.Sel.Gain, p.Sel.Area, p.Sel.Gain)
			}
		}
	}
}
