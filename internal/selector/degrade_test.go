package selector

import (
	"context"
	"errors"
	"testing"
	"time"

	"partita/internal/budget"
	"partita/internal/iface"
	"partita/internal/ilp"
	"partita/internal/imp"
)

// degradeDB builds an instance whose pass-1 LP root is fractional in a
// way nearest-integer rounding cannot repair: one s-call, a small
// parallel-code method (gain 100, area 1) and two interchangeable big
// plain methods on distinct IPs (gain 200, area 10 each), requirement
// 150. The LP optimum mixes the cheap and one big method at 1/2 each on
// the at-most-one row (area 5.5, versus 7.5 for 3/4 of a big one
// alone), and rounding both halves up violates that row — so a 1-node
// budget ends with no incumbent. Two big IPs keep the root-probing cut
// from forcing either indicator (no single IP is essential), so the
// root stays fractional. The greedy baseline, which never uses
// parallel-code methods, still succeeds with one big method alone.
func degradeDB(t *testing.T) *imp.DB {
	t.Helper()
	cheap := mkIP("IPC", 1)
	big := mkIP("IPB", 10)
	big2 := mkIP("IPD", 10)
	db, err := imp.NewSyntheticDB([]string{"a"}, []imp.SynthIMP{
		{SC: 1, IP: cheap, Type: iface.Type1, Gain: 100, IfaceArea: 0, UsesPC: true},
		{SC: 1, IP: big, Type: iface.Type0, Gain: 200, IfaceArea: 0},
		{SC: 1, IP: big2, Type: iface.Type0, Gain: 200, IfaceArea: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// Exhausting the budget before any incumbent exists must not fail the
// selection: the solver falls back to the greedy baseline and labels
// the result Degraded.
func TestDegradeToGreedyOnNodeLimit(t *testing.T) {
	db := degradeDB(t)
	sel, err := SolveCtx(context.Background(), Problem{
		DB: db, Required: 150, Budget: budget.Budget{MaxNodes: 1},
	})
	if err != nil {
		t.Fatalf("budgeted solve failed instead of degrading: %v", err)
	}
	if sel.Degraded == "" {
		t.Fatal("selection not flagged Degraded")
	}
	if sel.Exact() {
		t.Error("degraded selection claims exactness")
	}
	if sel.Status != ilp.Feasible {
		t.Errorf("status = %v, want Feasible", sel.Status)
	}
	// The greedy answer must still meet the requirement here (the big
	// method alone suffices).
	if sel.Gain < 150 {
		t.Errorf("degraded gain = %d, want ≥ 150", sel.Gain)
	}
	if len(sel.Chosen) == 0 {
		t.Error("degraded selection chose nothing")
	}
}

// With enough nodes the same instance solves exactly — the degradation
// above is purely budget-induced.
func TestDegradeInstanceSolvableExactly(t *testing.T) {
	db := degradeDB(t)
	sel, err := Solve(Problem{DB: db, Required: 150})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Status != ilp.Optimal || !sel.Exact() {
		t.Fatalf("status = %v (degraded %q), want exact Optimal", sel.Status, sel.Degraded)
	}
	// Optimal: the big method alone (area 10) — not both (area 11).
	if sel.Area != 10 {
		t.Errorf("area = %g, want 10", sel.Area)
	}
}

// Cancellation is a caller decision, not a budget exhaustion: no greedy
// fallback, the error surfaces.
func TestSolveCtxCancelNoFallback(t *testing.T) {
	db := degradeDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sel, err := SolveCtx(ctx, Problem{DB: db, Required: 150})
	if err == nil {
		t.Fatalf("cancelled solve produced %+v instead of an error", sel)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
}

// A sweep under a per-point budget still yields a full curve; budget
// casualties show up as Feasible/Degraded points, never as holes.
func TestSweepCtxBudgeted(t *testing.T) {
	db := degradeDB(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	pts, err := SweepCtx(ctx, db, 5, budget.Budget{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("empty sweep")
	}
	for _, p := range pts {
		if p.Sel == nil {
			t.Fatalf("sweep point at gain %d lacks a selection", p.Required)
		}
	}
}
