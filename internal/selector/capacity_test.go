package selector

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"partita/internal/iface"
	"partita/internal/ilp"
	"partita/internal/imp"
	"partita/internal/ip"
)

// The capacity bound feeds the racing portfolio's acceptability judge
// as a *proven* floor, so its soundness is load-bearing: a bound above
// the true optimum would make the portfolio deliver wrong answers (and,
// installed as an area floor, cut the optimum out of the exact model).
// These tests pin the bound below the proven optimum across a seeded
// synthetic corpus and check the witness prices out exactly.

func capIP(id string, area float64) *ip.IP {
	return &ip.IP{ID: id, Name: id, Area: area}
}

// TestCapacityBoundNeverExceedsOptimum: across seeded random instances
// and requirement levels, CapacityBound ≤ the exact optimal area, and a
// +Inf bound only appears when the exact solver proves infeasibility.
func TestCapacityBoundNeverExceedsOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	types := []iface.Type{iface.Type0, iface.Type1, iface.Type2, iface.Type3}
	for c := 0; c < 25; c++ {
		nSC := 2 + rng.Intn(4)
		funcs := make([]string, nSC)
		for i := range funcs {
			funcs[i] = string(rune('a' + i))
		}
		nIP := 2 + rng.Intn(3)
		ips := make([]*ip.IP, nIP)
		for i := range ips {
			ips[i] = capIP(string(rune('A'+i)), float64(1+rng.Intn(20)))
		}
		var specs []imp.SynthIMP
		for sc := 1; sc <= nSC; sc++ {
			for j := 0; j < 1+rng.Intn(3); j++ {
				specs = append(specs, imp.SynthIMP{
					SC:        sc,
					IP:        ips[rng.Intn(nIP)],
					Type:      types[rng.Intn(len(types))],
					Gain:      int64(50 + rng.Intn(200)),
					IfaceArea: float64(rng.Intn(5)),
				})
			}
		}
		db, err := imp.NewSyntheticDB(funcs, specs)
		if err != nil {
			t.Fatal(err)
		}
		an := NewAnalysis(db)
		for _, frac := range []int64{25, 60, 100} {
			rg := an.MaxGain() * frac / 100
			p := Problem{DB: db, Required: rg}
			bound := an.CapacityBound(p)
			ref, err := an.Solve(context.Background(), p)
			if err != nil {
				t.Fatalf("corpus %d rg=%d: %v", c, rg, err)
			}
			switch ref.Status {
			case ilp.Optimal:
				if bound > ref.Area+1e-9 {
					t.Fatalf("corpus %d rg=%d: bound %.9f exceeds optimum %.9f", c, rg, bound, ref.Area)
				}
			case ilp.Infeasible:
				// Any bound (including +Inf) is vacuously sound.
			default:
				t.Fatalf("corpus %d rg=%d: unexpected status %v", c, rg, ref.Status)
			}
		}
	}
}

// TestCapacityWitnessFeasibleAndPriced: when a witness comes back it
// meets every path requirement and its area is at least the bound (the
// bound is a relaxation; the witness is a real selection).
func TestCapacityWitnessFeasibleAndPriced(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	types := []iface.Type{iface.Type0, iface.Type1}
	witnessed := 0
	for c := 0; c < 25; c++ {
		nSC := 2 + rng.Intn(3)
		funcs := make([]string, nSC)
		for i := range funcs {
			funcs[i] = string(rune('a' + i))
		}
		ips := []*ip.IP{capIP("A", float64(2+rng.Intn(10))), capIP("B", float64(2+rng.Intn(10)))}
		var specs []imp.SynthIMP
		for sc := 1; sc <= nSC; sc++ {
			specs = append(specs, imp.SynthIMP{
				SC: sc, IP: ips[rng.Intn(2)], Type: types[rng.Intn(2)],
				Gain: int64(50 + rng.Intn(100)), IfaceArea: float64(rng.Intn(3)),
			})
		}
		db, err := imp.NewSyntheticDB(funcs, specs)
		if err != nil {
			t.Fatal(err)
		}
		an := NewAnalysis(db)
		rg := an.MaxGain() / 2
		p := Problem{DB: db, Required: rg}
		bound, w := an.CapacityWitness(p)
		if w == nil {
			continue
		}
		witnessed++
		if w.Status != ilp.Feasible {
			t.Fatalf("corpus %d: witness status %v", c, w.Status)
		}
		for k, g := range w.PathGains {
			if g < rg {
				t.Fatalf("corpus %d: witness path %d gain %d < required %d", c, k, g, rg)
			}
		}
		if !math.IsInf(bound, 0) && w.Area < bound-1e-9 {
			t.Fatalf("corpus %d: witness area %.9f below its own bound %.9f", c, w.Area, bound)
		}
	}
	if witnessed == 0 {
		t.Fatal("no corpus instance produced a witness; test is vacuous")
	}
}

// TestCapacityBoundInfeasiblePath: a requirement beyond every IP's
// combined capacity yields +Inf — the instant infeasibility signal.
func TestCapacityBoundInfeasiblePath(t *testing.T) {
	db, err := imp.NewSyntheticDB([]string{"a"}, []imp.SynthIMP{
		{SC: 1, IP: capIP("A", 5), Type: iface.Type0, Gain: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	an := NewAnalysis(db)
	if b := an.CapacityBound(Problem{DB: db, Required: an.MaxGain() + 1}); !math.IsInf(b, 1) {
		t.Fatalf("bound = %v, want +Inf", b)
	}
	if b := an.CapacityBound(Problem{DB: db, Required: 0}); b != 0 {
		t.Fatalf("zero requirement: bound = %v, want 0", b)
	}
}

// TestEvaluateReprices: Evaluate re-prices a previous selection under
// an edited analysis — fresh areas flow through, feasibility is
// re-checked, and an edit that starves a path returns nil.
func TestEvaluateReprices(t *testing.T) {
	db, err := imp.NewSyntheticDB([]string{"a", "b"}, []imp.SynthIMP{
		{SC: 1, IP: capIP("A", 10), Type: iface.Type0, Gain: 100},
		{SC: 2, IP: capIP("B", 4), Type: iface.Type0, Gain: 80},
	})
	if err != nil {
		t.Fatal(err)
	}
	an := NewAnalysis(db)
	p := Problem{DB: db, Required: an.MaxGain()}
	prev, err := an.Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if prev.Status != ilp.Optimal {
		t.Fatalf("setup solve: %v", prev.Status)
	}

	// Area edit: the re-priced selection carries the new area.
	edited, err := an.Apply(Delta{IPArea: map[string]float64{"A": 13}})
	if err != nil {
		t.Fatal(err)
	}
	ev := edited.Evaluate(Problem{DB: edited.DB(), Required: p.Required}, prev)
	if ev == nil {
		t.Fatal("area edit broke evaluation")
	}
	if ev.Status != ilp.Feasible {
		t.Fatalf("status = %v, want Feasible", ev.Status)
	}
	if want := prev.Area + 3; math.Abs(ev.Area-want) > 1e-9 {
		t.Fatalf("re-priced area %.3f, want %.3f", ev.Area, want)
	}

	// Gain edit that starves a path: nil, never an infeasible answer.
	starved, err := an.Apply(Delta{IMPGain: map[string]int64{db.IMPs[0].ID: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if ev := starved.Evaluate(Problem{DB: starved.DB(), Required: p.Required}, prev); ev != nil {
		t.Fatalf("starved edit still evaluated: %+v", ev)
	}

	// Foreign selection: nil.
	if ev := an.Evaluate(p, &Selection{Chosen: []*imp.IMP{{ID: "ghost"}}}); ev != nil {
		t.Fatal("foreign chosen set evaluated")
	}
}

// TestFloorShrink: area decreases accumulate into the shrink, area
// increases don't, and any gain increase forfeits the floor.
func TestFloorShrink(t *testing.T) {
	db, err := imp.NewSyntheticDB([]string{"a"}, []imp.SynthIMP{
		{SC: 1, IP: capIP("A", 10), Type: iface.Type0, Gain: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	an := NewAnalysis(db)

	if s, ok := an.FloorShrink(Delta{IPArea: map[string]float64{"A": 12}}); !ok || s != 0 {
		t.Fatalf("area increase: shrink=%v ok=%v, want 0 true", s, ok)
	}
	if s, ok := an.FloorShrink(Delta{IPArea: map[string]float64{"A": 7.5}}); !ok || math.Abs(s-2.5) > 1e-9 {
		t.Fatalf("area decrease: shrink=%v ok=%v, want 2.5 true", s, ok)
	}
	if _, ok := an.FloorShrink(Delta{IMPGain: map[string]int64{db.IMPs[0].ID: 1000}}); ok {
		t.Fatal("gain increase kept the floor")
	}
	if s, ok := an.FloorShrink(Delta{IMPGain: map[string]int64{db.IMPs[0].ID: 1}}); !ok || s != 0 {
		t.Fatalf("gain decrease: shrink=%v ok=%v, want 0 true", s, ok)
	}
}
