package selector

// Incremental re-solve support: a Delta describes the single-field edits
// an interactive design loop makes (tweak one IP's area, one method's
// gain, one path's required gain), and Analysis.Apply turns the shared
// immutable Analysis into a derived one with only the affected entries
// rewritten. Everything untouched — the group structure, interface
// areas, the per-path frequency matrix, and every coefficient row when
// no gain changed — is shared with the parent analysis by reference, so
// an edit solve re-derives nothing from the CDFG. The previous
// Selection then seeds the derived solve through SolveSeeded/LPRound:
// ilp.Model.SetWarmStart re-validates the old point against the edited
// model, so a seed that an edit made infeasible is silently dropped and
// correctness never depends on the edit being small.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"partita/internal/ilp"
	"partita/internal/imp"
)

// Delta is one batch of edits to a selection problem. The zero value
// edits nothing. Area and gain edits derive a new Analysis (Apply);
// requirement edits only reshape the Problem (ApplyProblem).
type Delta struct {
	// IPArea maps IP IDs to replacement silicon areas.
	IPArea map[string]float64 `json:"ipArea,omitempty"`
	// IMPGain maps IMP IDs to replacement per-execution gains; the
	// method's total and per-path gains are rescaled through its
	// unchanged site frequencies.
	IMPGain map[string]int64 `json:"impGain,omitempty"`
	// Required, when non-nil, replaces the uniform required gain.
	Required *int64 `json:"required,omitempty"`
	// PathRequired maps execution-path indices to per-path required-gain
	// overrides (these take precedence over Required on their paths).
	PathRequired map[int]int64 `json:"pathRequired,omitempty"`
}

// Empty reports whether the delta edits nothing.
func (d Delta) Empty() bool {
	return len(d.IPArea) == 0 && len(d.IMPGain) == 0 && d.Required == nil && len(d.PathRequired) == 0
}

// Merge returns d with e layered on top: e's edits win where both touch
// the same field. Neither receiver is mutated, so a job's edit history
// can be folded left into one cumulative delta.
func (d Delta) Merge(e Delta) Delta {
	out := Delta{}
	if len(d.IPArea)+len(e.IPArea) > 0 {
		out.IPArea = make(map[string]float64, len(d.IPArea)+len(e.IPArea))
		for k, v := range d.IPArea {
			out.IPArea[k] = v
		}
		for k, v := range e.IPArea {
			out.IPArea[k] = v
		}
	}
	if len(d.IMPGain)+len(e.IMPGain) > 0 {
		out.IMPGain = make(map[string]int64, len(d.IMPGain)+len(e.IMPGain))
		for k, v := range d.IMPGain {
			out.IMPGain[k] = v
		}
		for k, v := range e.IMPGain {
			out.IMPGain[k] = v
		}
	}
	if r := e.Required; r != nil {
		v := *r
		out.Required = &v
	} else if r := d.Required; r != nil {
		v := *r
		out.Required = &v
	}
	if len(d.PathRequired)+len(e.PathRequired) > 0 {
		out.PathRequired = make(map[int]int64, len(d.PathRequired)+len(e.PathRequired))
		for k, v := range d.PathRequired {
			out.PathRequired[k] = v
		}
		for k, v := range e.PathRequired {
			out.PathRequired[k] = v
		}
	}
	return out
}

// Apply returns an Analysis with d's area and gain edits applied,
// sharing every untouched structure with the receiver. The receiver is
// never mutated — it keeps serving concurrent solves — and applying an
// empty (area/gain-wise) delta returns the receiver itself. Edits must
// name existing IPs/IMPs and stay non-negative and finite.
func (a *Analysis) Apply(d Delta) (*Analysis, error) {
	if len(d.IPArea) == 0 && len(d.IMPGain) == 0 {
		return a, nil
	}
	na := *a
	if len(d.IPArea) > 0 {
		ipArea := make(map[string]float64, len(a.ipArea))
		for k, v := range a.ipArea {
			ipArea[k] = v
		}
		for id, area := range d.IPArea {
			if _, ok := ipArea[id]; !ok {
				return nil, fmt.Errorf("selector: delta edits unknown IP %q", id)
			}
			if area < 0 || math.IsNaN(area) || math.IsInf(area, 0) {
				return nil, fmt.Errorf("selector: delta sets IP %q area to invalid %g", id, area)
			}
			ipArea[id] = area
		}
		na.ipArea = ipArea
	}
	if len(d.IMPGain) > 0 {
		idx := make(map[string]int, len(a.db.IMPs))
		for i, im := range a.db.IMPs {
			idx[im.ID] = i
		}
		gpe := append([]int64(nil), a.gainPerExec...)
		tot := append([]int64(nil), a.totalGain...)
		for id, g := range d.IMPGain {
			i, ok := idx[id]
			if !ok {
				return nil, fmt.Errorf("selector: delta edits unknown IMP %q", id)
			}
			if g < 0 {
				return nil, fmt.Errorf("selector: delta sets IMP %q gain to negative %d", id, g)
			}
			gpe[i] = g
			tot[i] = g * a.db.IMPs[i].SC.TotalFreq
		}
		na.gainPerExec, na.totalGain = gpe, tot
		coef := make([][]int64, len(a.coef))
		for k := range a.coef {
			row := append([]int64(nil), a.coef[k]...)
			for id := range d.IMPGain {
				i := idx[id]
				row[i] = a.freq[k][i] * gpe[i]
			}
			coef[k] = row
		}
		na.coef = coef
		// MaxReachableGain over the edited gains: best method per s-call,
		// summed.
		best := map[*imp.SCall]int64{}
		for i, im := range a.db.IMPs {
			if tot[i] > best[im.SC] {
				best[im.SC] = tot[i]
			}
		}
		na.maxGain = 0
		for _, g := range best {
			na.maxGain += g
		}
	}
	return &na, nil
}

// ApplyProblem returns p with d's requirement edits applied: Required
// replaces the uniform requirement, and PathRequired entries become
// per-path overrides (merged over any existing p.PerPath).
func (a *Analysis) ApplyProblem(d Delta, p Problem) (Problem, error) {
	if d.Required != nil {
		if *d.Required < 0 {
			return p, fmt.Errorf("selector: delta sets negative required gain %d", *d.Required)
		}
		p.Required = *d.Required
	}
	if len(d.PathRequired) > 0 {
		per := make([]int64, len(a.db.Paths))
		for k := range per {
			per[k] = -1
		}
		copy(per, p.PerPath)
		for k, rg := range d.PathRequired {
			if k < 0 || k >= len(a.db.Paths) {
				return p, fmt.Errorf("selector: delta edits unknown path %d (db has %d)", k, len(a.db.Paths))
			}
			if rg < 0 {
				return p, fmt.Errorf("selector: delta sets negative required gain %d on path %d", rg, k)
			}
			per[k] = rg
		}
		p.PerPath = per
	}
	return p, nil
}

// FloorShrink reports by how much d can at most lower any selection's
// area — the sum of per-IP area decreases, each counted once since an
// IP's area is charged once per selection — and whether a previously
// proven optimal area survives the edit as a lower bound at all. It
// does not: a gain increase can enlarge the feasible set, so the old
// optimum proves nothing and ok is false. Gain decreases and area
// edits only shrink the feasible set or shift the area function, so
// prevOptimalArea − shrink stays a proven floor (the caller must also
// check that the edit does not loosen any path requirement). The
// receiver must be the pre-edit analysis the previous optimum was
// proven over.
func (a *Analysis) FloorShrink(d Delta) (shrink float64, ok bool) {
	idx := make(map[string]int, len(a.db.IMPs))
	for i, im := range a.db.IMPs {
		idx[im.ID] = i
	}
	for id, g := range d.IMPGain {
		if i, found := idx[id]; found && g > a.gainPerExec[i] {
			return 0, false
		}
	}
	for id, area := range d.IPArea {
		if old, found := a.ipArea[id]; found && area < old {
			shrink += old - area
		}
	}
	return shrink, true
}

// Evaluate re-prices a previous selection's chosen set under this —
// possibly edited — analysis and problem: the answer the designer
// already had, with fresh areas, gains, and per-path numbers. It is
// the zero-latency engine of an incremental re-solve: when the old
// choice is still feasible after the edit, the racing portfolio can
// offer it instantly and judge it against the carried-over bound while
// the exact engines are still loading. Returns nil when the selection
// is not from this DB or the edit broke its feasibility (requirement
// no longer met, conflict introduced, duplicate s-call). The result is
// Feasible, never Optimal: re-pricing proves nothing about optimality.
func (a *Analysis) Evaluate(p Problem, sel *Selection) *Selection {
	if p.DB == nil {
		p.DB = a.db
	}
	if p.DB != a.db || sel == nil || len(sel.Chosen) == 0 {
		return nil
	}
	in := &instance{Analysis: a, p: p}
	idx := make(map[string]int, len(a.db.IMPs))
	for i, im := range a.db.IMPs {
		idx[im.ID] = i
	}
	chosen := make([]int, 0, len(sel.Chosen))
	taken := make(map[*imp.SCall]bool, len(sel.Chosen))
	picked := make(map[int]bool, len(sel.Chosen))
	for _, im := range sel.Chosen {
		i, ok := idx[im.ID]
		if !ok || taken[a.db.IMPs[i].SC] {
			return nil
		}
		taken[a.db.IMPs[i].SC] = true
		picked[i] = true
		chosen = append(chosen, i)
	}
	for _, c := range a.db.Conflicts {
		if picked[c[0]] && picked[c[1]] {
			return nil
		}
	}
	for k := range a.db.Paths {
		rg := in.required(k)
		if rg <= 0 {
			continue
		}
		for _, i := range chosen {
			rg -= in.pathCoef(k, i)
		}
		if rg > 0 {
			return nil
		}
	}
	sort.Ints(chosen)
	out := in.compose(chosen, 0)
	out.Status = ilp.Feasible
	return out
}

// SolveSeeded runs the exact lexicographic solve with a previous
// Selection installed as the warm start of the area pass. The seed is
// reconstructed into the model's variable layout and re-validated by
// the ILP layer against the (possibly edited) model, so it can tighten
// pruning but never change the proven answer; an invalid or stale seed
// is silently ignored. A nil seed is plain Solve.
func (a *Analysis) SolveSeeded(ctx context.Context, p Problem, seed *Selection) (*Selection, error) {
	if p.DB == nil {
		p.DB = a.db
	}
	if p.DB != a.db {
		return nil, fmt.Errorf("selector: problem DB does not match the analysis DB")
	}
	if len(a.db.IMPs) == 0 {
		return &Selection{Status: ilp.Infeasible}, nil
	}
	if seed != nil && len(seed.Chosen) > 0 {
		layout := &instance{Analysis: a, p: Problem{DB: a.db, DisableMerging: p.DisableMerging}}
		if v := layout.warmVector(seed); v != nil {
			p.warmStart = v
		}
	}
	return solveBound(ctx, &instance{Analysis: a, p: p})
}

// LPRound is the LP-relaxation + rounding engine over the shared
// analysis: one simplex solve of the area pass, snapped to the nearest
// integers (ilp.SolveLPRound). It returns the selection together with
// the LP lower bound on the optimal area — the bound other portfolio
// candidates are judged against before the exact engine reports one.
//
// Outcomes: an infeasible relaxation proves the instance Infeasible
// (bound +Inf, vacuous); a rounded point comes back Feasible with its
// area gap versus the LP bound (the area may in fact be optimal, but
// the lexicographic tie-break pass never ran, so the result is never
// labeled Optimal); when rounding fails and no valid seed rescues it,
// the engine has no answer and the error wraps ilp.ErrNoRounding — but
// the returned bound is still the proven LP bound, so the caller can
// judge other engines' candidates against it.
func (a *Analysis) LPRound(ctx context.Context, p Problem, seed *Selection) (*Selection, float64, error) {
	if p.DB == nil {
		p.DB = a.db
	}
	if p.DB != a.db {
		return nil, math.Inf(-1), fmt.Errorf("selector: problem DB does not match the analysis DB")
	}
	if len(a.db.IMPs) == 0 {
		return &Selection{Status: ilp.Infeasible}, math.Inf(1), nil
	}
	in := &instance{Analysis: a, p: p}
	ifaceObj := func(i int) float64 {
		if p.DisableMerging {
			return p.DB.IMPs[i].IfaceArea
		}
		return 0
	}
	h := in.build(ifaceObj, func(area float64) float64 { return area }, 0, 1)
	if seed != nil && len(seed.Chosen) > 0 {
		if v := in.warmVector(seed); v != nil {
			h.m.SetWarmStart(v)
		}
	}
	s, err := h.m.SolveLPRound(ctx, p.Budget)
	if err != nil {
		var be *ilp.BoundError
		if errors.As(err, &be) {
			if sel := in.repairLP(h, be.X); sel != nil {
				sel.Gap = relAreaGap(sel.Area, be.Bound)
				return sel, be.Bound, nil
			}
			return nil, be.Bound, err
		}
		return nil, math.Inf(-1), err
	}
	switch s.Status {
	case ilp.Infeasible:
		return &Selection{Status: ilp.Infeasible, Nodes: s.Nodes}, math.Inf(1), nil
	case ilp.Unbounded:
		// Defensive: the area objective is non-negative, so the
		// relaxation cannot be unbounded in practice.
		return &Selection{Status: ilp.Unbounded, Nodes: s.Nodes}, math.Inf(-1), nil
	}
	bound := s.Bound
	sel := in.decode(h, s, s.Nodes)
	sel.Status = ilp.Feasible
	sel.Gap = relAreaGap(sel.Area, bound)
	return sel, bound, nil
}

// relAreaGap is the relative area gap against a lower bound, +Inf when
// the bound is not finite.
func relAreaGap(area, bound float64) float64 {
	if math.IsInf(bound, 0) || math.IsNaN(bound) {
		return math.Inf(1)
	}
	return math.Abs(area-bound) / math.Max(1, area)
}

// repairLP turns a fractional relaxation optimum the generic
// nearest-integer snap could not fix into a feasible selection, using
// what the ILP layer cannot know — the problem structure. Methods are
// taken greedily in descending fractional weight (the LP's own
// preference order) subject to one-method-per-s-call and the SC-PC
// conflict pairs, until every path requirement is met; a reverse sweep
// then drops any method the cover does not need. Because the LP
// optimum concentrates weight on the methods cheap shared-area covers
// are made of, the repaired area usually lands within a few percent of
// the LP bound. Returns nil when even the full candidate set cannot
// meet the requirements (the caller keeps the bound regardless).
func (in *instance) repairLP(h handles, xfrac []float64) *Selection {
	db := in.db
	need := make([]int64, len(db.Paths))
	unmet := 0
	for k := range db.Paths {
		if rg := in.required(k); rg > 0 {
			need[k] = rg
			unmet++
		}
	}
	order := make([]int, len(db.IMPs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		wa, wb := xfrac[h.xs[order[a]]], xfrac[h.xs[order[b]]]
		if wa != wb {
			return wa > wb
		}
		return in.totalGain[order[a]] > in.totalGain[order[b]]
	})
	conflict := map[int][]int{}
	for _, c := range db.Conflicts {
		conflict[c[0]] = append(conflict[c[0]], c[1])
		conflict[c[1]] = append(conflict[c[1]], c[0])
	}
	taken := map[*imp.SCall]bool{}
	chosen := map[int]bool{}
	var picks []int
	for _, i := range order {
		if unmet == 0 {
			break
		}
		if taken[db.IMPs[i].SC] {
			continue
		}
		blocked := false
		for _, j := range conflict[i] {
			if chosen[j] {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		helps := false
		for k := range need {
			if need[k] > 0 && in.pathCoef(k, i) > 0 {
				helps = true
				break
			}
		}
		if !helps {
			continue
		}
		taken[db.IMPs[i].SC] = true
		chosen[i] = true
		picks = append(picks, i)
		for k := range need {
			if in.required(k) <= 0 {
				continue
			}
			before := need[k]
			need[k] -= in.pathCoef(k, i)
			if before > 0 && need[k] <= 0 {
				unmet--
			}
		}
	}
	if unmet > 0 {
		return nil
	}
	// Reverse sweep: drop picks the cover no longer needs (lowest LP
	// weight first — picks is already in descending-weight order).
	for p := len(picks) - 1; p >= 0; p-- {
		i := picks[p]
		removable := true
		for k := range need {
			if rg := in.required(k); rg > 0 && need[k]+in.pathCoef(k, i) > 0 {
				removable = false
				break
			}
		}
		if removable {
			for k := range need {
				if in.required(k) > 0 {
					need[k] += in.pathCoef(k, i)
				}
			}
			chosen[i] = false
			picks = append(picks[:p], picks[p+1:]...)
		}
	}
	values := make([]float64, len(xfrac))
	for _, i := range picks {
		values[h.xs[i]] = 1
	}
	sel := in.decode(h, &ilp.Solution{Values: values}, 1)
	sel.Status = ilp.Feasible
	return sel
}
