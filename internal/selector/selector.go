// Package selector solves the optimal S-instruction generation problem of
// Choi et al. (DAC 1999), Section 4: choose at most one implementation
// method (IMP) per s-call such that every execution path meets its
// required performance gain, minimizing total silicon area.
//
// The 0-1 ILP follows the paper:
//
//	(1)  Σ_j x_ij ≤ 1                          per s-call SC_i
//	(2)  Σ_{SC_i ∈ P_k} Σ_j x_ij·g_ij ≥ T_k    per execution path P_k
//	(3)  Σ_ij s_ijk·x_ij ≤ M·z_k               fixed charge per IP k
//	(4)  x_ij + x_kl ≤ 1                       per SC-PC conflict pair
//
//	min  Σ_k z_k·a_k + interface area
//
// Interface area is itself fixed-charged per (IP, interface-type,
// flatten-target) group: s-calls implemented the same way merge into a
// single S-instruction that shares its interface code/FSM, which is what
// makes the area column of the paper's tables additive over *distinct*
// implementations only.
//
// Ties are broken lexicographically (derived from the published tables):
// minimum area first, then minimum total gain surplus, then fewest
// selected methods.
package selector

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"partita/internal/budget"
	"partita/internal/iface"
	"partita/internal/ilp"
	"partita/internal/imp"
)

// Problem is one selection instance.
type Problem struct {
	DB *imp.DB
	// Required is the performance gain every execution path must reach
	// (the RG column of the paper's tables).
	Required int64
	// PerPath optionally overrides Required for individual paths
	// (indexed like DB.Paths). Entries < 0 fall back to Required.
	PerPath []int64
	// DisableMerging charges interface area per selected IMP instead of
	// per distinct implementation (ablation A3 support).
	DisableMerging bool
	// Budget bounds the exact solver's node/pivot work; the wall-clock
	// budget travels as the context deadline of SolveCtx. The zero value
	// is unlimited.
	Budget budget.Budget
	// OnIncumbent, when non-nil, observes the area-minimization pass of
	// the exact solve: it is invoked synchronously on the solving
	// goroutine each time the branch-and-bound search installs a new
	// incumbent, in strictly decreasing Area order. The tie-break pass
	// (which cannot change the area) emits no events.
	OnIncumbent func(Incumbent)
	// OnBound, when non-nil, observes the area-minimization pass's
	// proven lower bound on the optimal area as the search raises it
	// (strictly rising; same synchronous, be-fast contract as
	// OnIncumbent). Bound rises are far more frequent than incumbent
	// installs — this is the stream the racing portfolio judges
	// candidate acceptability against.
	OnBound func(bound float64)

	// warmStart optionally seeds the area-minimization pass with a known
	// feasible point over the pass-1 variable layout (see
	// instance.warmVector). The ILP layer validates it and installs it as
	// the initial incumbent; it can tighten pruning but never changes the
	// proven optimum, and the tie-break pass deliberately ignores it so
	// the lexicographic selection stays identical with or without a seed.
	// Set only by the sweep pipeline.
	warmStart []float64
	// areaFloor, when positive, adds the valid cut area >= areaFloor to
	// the area-minimization pass. The sweep pipeline sets it to the
	// optimal area of a looser point: the optimum is non-decreasing in
	// the required gain, so the cut cannot exclude any optimal solution —
	// it only lifts the relaxation bound, so the search prunes the
	// moment an incumbent matching the floor is found. Set by the sweep
	// pipeline and (through SetAreaFloor) by incremental re-solves.
	areaFloor float64
}

// Incumbent is one anytime progress event of SolveCtx: the solver found
// a configuration better than every previous one.
type Incumbent struct {
	// Area is the incumbent's total area (the minimization objective).
	Area float64
	// Bound is the best proven lower bound on the optimal area so far.
	Bound float64
	// Gap is the relative optimality gap |Area − Bound| / max(1, Area);
	// +Inf when no finite bound is known yet.
	Gap float64
	// Nodes is the number of branch-and-bound nodes explored so far.
	Nodes int
	// Sel is the incumbent configuration itself, decoded (Status
	// Feasible, Gap as above) so anytime consumers — the racing
	// portfolio — can deliver it, not just report its area. Nil when the
	// event carried no variable assignment.
	Sel *Selection
}

// Selection is the solved result, with the columns of the paper's tables.
type Selection struct {
	Status ilp.Status
	Chosen []*imp.IMP
	// Area is the paper's A column: shared IP areas plus merged
	// interface areas.
	Area float64
	// Gain is the paper's G column: total achieved gain (site-frequency
	// weighted) over all selected implementations.
	Gain int64
	// PathGains lists the achieved gain on each execution path.
	PathGains []int64
	// SInstructions is the paper's S column: distinct implementations
	// after merging.
	SInstructions int
	// SCallsImplemented is the paper's O column: call sites covered.
	SCallsImplemented int
	// Nodes is the branch-and-bound node total across both passes.
	Nodes int
	// Gap is the relative optimality gap when Status is ilp.Feasible
	// (anytime result): how far the area may be from the true optimum.
	// Zero for exact results.
	Gap float64
	// Degraded is empty for exact and anytime results. When the solver
	// budget expired before any incumbent existed, it names the
	// exhausted budget and the selection comes from GreedyBaseline.
	Degraded string
	// Search accumulates the low-level ILP search counters (LP solves by
	// kind, pivots, work-stealing traffic) across both passes.
	Search ilp.SearchStats
}

// Exact reports whether the selection is provably optimal (neither an
// anytime incumbent nor a heuristic fallback).
func (s *Selection) Exact() bool { return s.Status == ilp.Optimal && s.Degraded == "" }

// group identifies one S-instruction implementation class.
type group struct {
	ipID      string
	ifType    iface.Type
	flattened string
}

// instance binds one Problem to its — possibly shared — Analysis. The
// point-independent model-building state (groups, areas, path
// coefficients) lives in the embedded Analysis; the instance adds only
// the per-solve Problem.
type instance struct {
	*Analysis
	p Problem
}

func newInstance(p Problem) *instance {
	return &instance{Analysis: NewAnalysis(p.DB), p: p}
}

func groupLess(a, b group) bool {
	if a.ipID != b.ipID {
		return a.ipID < b.ipID
	}
	if a.ifType != b.ifType {
		return a.ifType < b.ifType
	}
	return a.flattened < b.flattened
}

// SetAreaFloor installs a proven lower bound on the optimal area as a
// valid cut of the area-minimization pass. The caller asserts the
// proof: a floor above the true optimum makes the solve wrong, not
// slow. Incremental re-solves derive it from the previous proven
// optimum via Analysis.FloorShrink; the cut only lifts the relaxation
// bound and never changes which solution is optimal, so a floored
// solve stays byte-for-byte identical to an unfloored one.
func (p *Problem) SetAreaFloor(floor float64) { p.areaFloor = floor }

// AreaFloor reports the installed proven lower bound on the optimal
// area, 0 when none.
func (p Problem) AreaFloor() float64 { return p.areaFloor }

func (in *instance) required(k int) int64 {
	if k < len(in.p.PerPath) && in.p.PerPath[k] >= 0 {
		return in.p.PerPath[k]
	}
	return in.p.Required
}

// handles are the model variables of one build.
type handles struct {
	m  *ilp.Model
	xs []ilp.VarID
	zs map[string]ilp.VarID
	// ys are binary group-selected indicators (S-instruction count);
	// as are continuous group interface areas (max over selected
	// members).
	ys map[group]ilp.VarID
	as map[group]ilp.VarID
}

// build assembles constraints (1)-(4); objective coefficients are set by
// the caller: objX per method, objZ per unit of IP area, objYCount per
// selected group (tiebreak weight), objGArea per unit of merged
// interface area.
func (in *instance) build(objX func(i int) float64, objZ func(area float64) float64, objYCount, objGArea float64) handles {
	db := in.db
	m := ilp.NewModel(ilp.Minimize)
	h := handles{m: m, zs: map[string]ilp.VarID{}, ys: map[group]ilp.VarID{}, as: map[group]ilp.VarID{}}
	h.xs = make([]ilp.VarID, len(db.IMPs))
	for i, im := range db.IMPs {
		h.xs[i] = m.AddBinary("x_"+im.ID, objX(i))
	}
	// (1) one method per s-call.
	for _, sc := range db.SCalls {
		var terms []ilp.Term
		for i, im := range db.IMPs {
			if im.SC == sc {
				terms = append(terms, ilp.Term{Var: h.xs[i], Coef: 1})
			}
		}
		if terms != nil {
			m.AddConstraint("one_"+sc.Name(), terms, ilp.LE, 1)
		}
	}
	// (2) per-path required gain.
	for k := range db.Paths {
		rg := in.required(k)
		if rg <= 0 {
			continue
		}
		var terms []ilp.Term
		for i := range db.IMPs {
			if c := in.pathCoef(k, i); c != 0 {
				terms = append(terms, ilp.Term{Var: h.xs[i], Coef: float64(c)})
			}
		}
		if terms == nil {
			terms = []ilp.Term{{Var: h.xs[0], Coef: 0}}
		}
		m.AddConstraint(fmt.Sprintf("path_%d", k), terms, ilp.GE, float64(rg))
	}
	// (3) fixed charge per IP. The disaggregated form x_m ≤ z_k is
	// equivalent to the paper's Σx ≤ M·z_k but gives a much tighter LP
	// relaxation, which keeps branch and bound small.
	for _, id := range in.ipIDs {
		z := m.AddBinary("z_"+id, objZ(in.ipArea[id]))
		h.zs[id] = z
		for i, im := range db.IMPs {
			if im.IP.ID == id {
				m.AddConstraint("fc_"+id, []ilp.Term{
					{Var: h.xs[i], Coef: 1},
					{Var: z, Coef: -1},
				}, ilp.LE, 0)
			}
		}
	}
	// Interface-area fixed charge per implementation group (merged
	// S-instructions). Skipped when merging is disabled — interface area
	// is then charged through objX per selected method.
	if !in.p.DisableMerging {
		for _, g := range in.groups {
			tag := fmt.Sprintf("%s_%s_%s", g.ipID, g.ifType, g.flattened)
			y := m.AddBinary("y_"+tag, objYCount)
			h.ys[g] = y
			// The merged S-instruction's interface area is the largest
			// area among its selected members: a_g ≥ c_m·x_m.
			a := m.AddVar("a_"+tag, 0, in.grpArea[g], objGArea)
			h.as[g] = a
			for i, im := range db.IMPs {
				if in.grpOf[i] != g {
					continue
				}
				m.AddConstraint("fy_"+tag, []ilp.Term{
					{Var: h.xs[i], Coef: 1},
					{Var: y, Coef: -1},
				}, ilp.LE, 0)
				if im.IfaceArea > 0 {
					m.AddConstraint("ga_"+tag, []ilp.Term{
						{Var: h.xs[i], Coef: im.IfaceArea},
						{Var: a, Coef: -1},
					}, ilp.LE, 0)
				}
			}
		}
	}
	// (4) SC-PC conflicts.
	for _, c := range db.Conflicts {
		m.AddConstraint("conflict", []ilp.Term{
			{Var: h.xs[c[0]], Coef: 1},
			{Var: h.xs[c[1]], Coef: 1},
		}, ilp.LE, 1)
	}
	// (3b) Aggregated fixed charge per (IP, s-call): an IP's members
	// competing for one s-call can select at most one of themselves, so
	// together they need only one unit of the IP indicator. Integrally
	// implied by (1)+(3); fractionally strictly tighter than the
	// per-method links — spreading an s-call's coverage across an IP's
	// methods now costs the full fixed charge instead of the maximum
	// fraction. Valid cuts never change the optimal value, only the
	// relaxation bound, so solves with and without them return
	// identical selections.
	byIPSC := map[string][]ilp.Term{}
	for i, im := range db.IMPs {
		key := im.IP.ID + "\x00" + im.SC.Name()
		byIPSC[key] = append(byIPSC[key], ilp.Term{Var: h.xs[i], Coef: 1})
	}
	for _, id := range in.ipIDs {
		for _, sc := range db.SCalls {
			terms := byIPSC[id+"\x00"+sc.Name()]
			if len(terms) < 2 {
				continue
			}
			terms = append(terms[:len(terms):len(terms)], ilp.Term{Var: h.zs[id], Coef: -1})
			m.AddConstraint("fcs_"+id, terms, ilp.LE, 0)
		}
	}
	// (2b) Per-path IP gain capacity: with (3b), the gain path k can
	// draw from IP j is at most G_jk = Σ_sc max_{m ∈ j,sc} c_km per
	// unit of z_j, so Σ_j G_jk z_j ≥ required(k) is a valid cut that
	// makes fractional gain coverage pay area through the z variables —
	// exactly where the plain relaxation is weakest, since the area
	// objective lives on z. This typically lifts the root bound from a
	// small fraction of the optimum to most of it, which is what the
	// racing portfolio's acceptability judgment feeds on.
	for k := range db.Paths {
		rg := in.required(k)
		if rg <= 0 {
			continue
		}
		capacity := in.ipGainCapacity(k)
		var terms []ilp.Term
		for _, id := range in.ipIDs {
			if g := capacity[id]; g > 0 {
				terms = append(terms, ilp.Term{Var: h.zs[id], Coef: float64(g)})
			}
		}
		if terms != nil {
			m.AddConstraint(fmt.Sprintf("ipcap_%d", k), terms, ilp.GE, float64(rg))
		}
	}
	// (2c) Per-path cover (cardinality) cuts, in z- and x-space. For
	// path k, sort the per-IP gain capacities G_jk descending: if even
	// the κ−1 largest together fall short of the requirement, every
	// feasible selection activates at least κ IPs that contribute to the
	// path — Σ_j z_j ≥ κ over {j : G_jk > 0} is valid. The same argument
	// over per-s-call best method gains (constraint (1) admits one
	// method per s-call) yields Σ_i x_i ≥ λ over the path's contributing
	// methods. Fractional points love paying for gain with slivers of
	// many indicators; these cuts charge them whole indicators, which is
	// where the area objective lives. Like (3b)/(2b) they are valid
	// cuts: no integer-feasible point is removed, so the optimum — and
	// the lexicographic tie-break — are untouched.
	for k := range db.Paths {
		rg := in.required(k)
		if rg <= 0 {
			continue
		}
		capacity := in.ipGainCapacity(k)
		caps := make([]int64, 0, len(capacity))
		for _, g := range capacity {
			caps = append(caps, g)
		}
		if kappa := coverCount(caps, rg); kappa >= 2 {
			var terms []ilp.Term
			for _, id := range in.ipIDs {
				if capacity[id] > 0 {
					terms = append(terms, ilp.Term{Var: h.zs[id], Coef: 1})
				}
			}
			m.AddConstraint(fmt.Sprintf("zcover_%d", k), terms, ilp.GE, float64(kappa))
		}
		bestSC := map[string]int64{}
		for i, im := range db.IMPs {
			if c := in.pathCoef(k, i); c > bestSC[im.SC.Name()] {
				bestSC[im.SC.Name()] = c
			}
		}
		best := make([]int64, 0, len(bestSC))
		for _, g := range bestSC {
			best = append(best, g)
		}
		if lambda := coverCount(best, rg); lambda >= 2 {
			var terms []ilp.Term
			for i := range db.IMPs {
				if in.pathCoef(k, i) > 0 {
					terms = append(terms, ilp.Term{Var: h.xs[i], Coef: 1})
				}
			}
			m.AddConstraint(fmt.Sprintf("xcover_%d", k), terms, ilp.GE, float64(lambda))
		}
	}
	// (3c) Fixed-charge bound tightening (root probing): if dropping IP
	// j leaves some path short of its requirement even with every other
	// IP at full capacity, z_j = 1 in every feasible selection. Forcing
	// the indicator commits its area in the root relaxation, which
	// lifts the bound before the search branches at all.
	for k := range db.Paths {
		rg := in.required(k)
		if rg <= 0 {
			continue
		}
		capacity := in.ipGainCapacity(k)
		var total int64
		for _, g := range capacity {
			total += g
		}
		for _, id := range in.ipIDs {
			if g := capacity[id]; g > 0 && total-g < rg {
				m.AddConstraint("force_"+id, []ilp.Term{{Var: h.zs[id], Coef: 1}}, ilp.GE, 1)
			}
		}
	}
	return h
}

// coverCount is the cover-cut cardinality for a covering requirement:
// the minimum number of the given capacities (sorted descending) whose
// sum reaches need. Returns 0 when need ≤ 0 and len(caps)+1 when even
// all of them fall short (the caller's constraint is then infeasible on
// its own, which the LP discovers without the cut).
func coverCount(caps []int64, need int64) int {
	if need <= 0 {
		return 0
	}
	sort.Slice(caps, func(a, b int) bool { return caps[a] > caps[b] })
	var sum int64
	for n, g := range caps {
		sum += g
		if sum >= need {
			return n + 1
		}
	}
	return len(caps) + 1
}

// ipGainCapacity is G_jk: the most gain path k can draw from each IP —
// per s-call, the best of the IP's competing methods (constraint (1)
// admits only one), summed over s-calls.
func (in *instance) ipGainCapacity(k int) map[string]int64 {
	capacity := map[string]int64{}
	best := map[string]int64{}
	for i, im := range in.db.IMPs {
		key := im.IP.ID + "\x00" + im.SC.Name()
		if c := in.pathCoef(k, i); c > best[key] {
			capacity[im.IP.ID] += c - best[key]
			best[key] = c
		}
	}
	return capacity
}

// warmVector reconstructs the pass-1 model point of a solved selection
// over in's variable layout: x per chosen method, z per used IP, and —
// when merging — the per-group selected indicator and merged interface
// area. The layout depends only on the DB and the merging mode, never
// on the required gain, so a vector built from one sweep point is valid
// input at every other; and a selection meeting a tighter required gain
// satisfies any looser one, which is what makes sweep warm-starting
// sound. Returns nil when the selection does not come from this DB.
func (in *instance) warmVector(sel *Selection) []float64 {
	idx := map[*imp.IMP]int{}
	for i, im := range in.db.IMPs {
		idx[im] = i
	}
	nv := len(in.db.IMPs) + len(in.ipIDs)
	if !in.p.DisableMerging {
		nv += 2 * len(in.groups)
	}
	x := make([]float64, nv)
	usedIP := map[string]bool{}
	grpUsed := map[group]bool{}
	grpMax := map[group]float64{}
	for _, im := range sel.Chosen {
		i, ok := idx[im]
		if !ok {
			return nil
		}
		x[i] = 1
		usedIP[im.IP.ID] = true
		g := in.grpOf[i]
		grpUsed[g] = true
		if im.IfaceArea > grpMax[g] {
			grpMax[g] = im.IfaceArea
		}
	}
	at := len(in.db.IMPs)
	for _, id := range in.ipIDs {
		if usedIP[id] {
			x[at] = 1
		}
		at++
	}
	if !in.p.DisableMerging {
		for _, g := range in.groups {
			if grpUsed[g] {
				x[at] = 1
			}
			at++
			x[at] = grpMax[g]
			at++
		}
	}
	return x
}

// areaTerms builds the area expression for the pinning constraint.
func (in *instance) areaTerms(h handles) []ilp.Term {
	var terms []ilp.Term
	for _, id := range in.ipIDs {
		terms = append(terms, ilp.Term{Var: h.zs[id], Coef: in.ipArea[id]})
	}
	if in.p.DisableMerging {
		for i, im := range in.db.IMPs {
			terms = append(terms, ilp.Term{Var: h.xs[i], Coef: im.IfaceArea})
		}
	} else {
		for _, g := range in.groups {
			terms = append(terms, ilp.Term{Var: h.as[g], Coef: 1})
		}
	}
	return terms
}

// Solve runs the lexicographic optimization with no wall-clock budget
// (the Problem's discrete budget, if any, still applies).
func Solve(p Problem) (*Selection, error) { return SolveCtx(context.Background(), p) }

// SolveCtx runs the lexicographic optimization under the context's
// deadline and the Problem's Budget. Exhaustion degrades in stages
// rather than failing:
//
//   - budget expires after an incumbent exists → the incumbent is
//     returned with Status ilp.Feasible and its optimality Gap;
//   - budget expires with no incumbent at all → the GreedyBaseline
//     heuristic answers and the Selection is flagged Degraded;
//   - the context is canceled outright (context.Canceled, not a
//     deadline) → the caller wants out, and the cancellation error is
//     returned instead of a degraded answer.
func SolveCtx(ctx context.Context, p Problem) (*Selection, error) {
	if p.DB == nil {
		return nil, fmt.Errorf("selector: nil database")
	}
	if len(p.DB.IMPs) == 0 {
		return &Selection{Status: ilp.Infeasible}, nil
	}
	return solveBound(ctx, newInstance(p))
}

// solveBound is the lexicographic two-pass solve over an already bound
// instance; Analysis.Solve and SolveCtx both land here.
func solveBound(ctx context.Context, in *instance) (*Selection, error) {
	p := in.p

	// Pass 1: minimize area.
	ifaceObj := func(i int) float64 {
		if p.DisableMerging {
			return p.DB.IMPs[i].IfaceArea
		}
		return 0
	}
	h1 := in.build(ifaceObj, func(a float64) float64 { return a }, 0, 1)
	if p.warmStart != nil {
		h1.m.SetWarmStart(p.warmStart)
	}
	if p.areaFloor > 0 {
		h1.m.AddConstraint("area_floor", in.areaTerms(h1), ilp.GE, p.areaFloor-1e-6)
	}
	if p.OnIncumbent != nil {
		h1.m.OnIncumbent(func(pr ilp.Progress) {
			inc := Incumbent{Area: pr.Objective, Bound: pr.Bound, Gap: pr.Gap(), Nodes: pr.Nodes}
			if pr.Values != nil {
				sel := in.decode(h1, &ilp.Solution{Values: pr.Values}, pr.Nodes)
				sel.Status = ilp.Feasible
				sel.Gap = pr.Gap()
				inc.Sel = sel
			}
			p.OnIncumbent(inc)
		})
	}
	if p.OnBound != nil {
		h1.m.OnBound(func(pr ilp.Progress) { p.OnBound(pr.Bound) })
	}
	s1, err := h1.m.SolveCtx(ctx, p.Budget)
	if err != nil {
		return degradeOrFail(in, err)
	}
	switch s1.Status {
	case ilp.Optimal:
		// Proven minimum area; continue to the tie-break pass.
	case ilp.Feasible:
		// Anytime incumbent: the budget is spent, so skip the tie-break
		// pass and report the incumbent with its gap.
		sel := in.decode(h1, s1, s1.Nodes)
		sel.Status = ilp.Feasible
		sel.Gap = s1.Gap()
		sel.Search = s1.Stats
		return sel, nil
	default:
		return &Selection{Status: s1.Status, Nodes: s1.Nodes, Search: s1.Stats}, nil
	}
	bestArea := s1.Objective

	// Pass 2: pin the area, minimize total gain (surplus) with a small
	// per-method tiebreak so the solver prefers fewer implementations.
	// Gains are integers, so a per-x weight < 1/n cannot change the gain
	// optimum.
	n := float64(len(p.DB.IMPs) + len(in.groups) + 1)
	h2 := in.build(
		func(i int) float64 { return float64(in.totalGain[i]) + 0.25/n },
		func(a float64) float64 { return 0 },
		0.5/n, 0,
	)
	h2.m.AddConstraint("pin_area", in.areaTerms(h2), ilp.LE, bestArea+1e-6)
	s2, err := h2.m.SolveCtx(ctx, p.Budget)
	if err != nil {
		if budget.IsExhausted(err) && !errors.Is(err, context.Canceled) {
			// The area pass already proved the optimum; fall back to its
			// assignment (h1/h2 share the variable layout) rather than
			// discarding it. Only the tie-break is unproven.
			sel := in.decode(h1, s1, s1.Nodes)
			sel.Status = ilp.Feasible
			sel.Search = s1.Stats
			return sel, nil
		}
		return nil, err
	}
	search := s1.Stats
	search.Add(s2.Stats)
	if s2.Status != ilp.Optimal && s2.Status != ilp.Feasible {
		// Should not happen (pass 1 was feasible); report defensively.
		return &Selection{Status: s2.Status, Nodes: s1.Nodes + s2.Nodes, Search: search}, nil
	}
	sel := in.decode(h2, s2, s1.Nodes+s2.Nodes)
	sel.Search = search
	if s2.Status == ilp.Feasible {
		// Area is still provably minimal; only the surplus tie-break is
		// anytime, so the area gap stays zero.
		sel.Status = ilp.Feasible
	}
	return sel, nil
}

// degradeOrFail handles a budget-exhausted pass-1 solve that produced no
// incumbent: outright cancellation propagates as an error, while
// deadline/node exhaustion falls back to the greedy heuristic (over the
// same bound analysis, so nothing is re-derived) with the Selection
// flagged Degraded.
func degradeOrFail(in *instance, err error) (*Selection, error) {
	if !budget.IsExhausted(err) || errors.Is(err, context.Canceled) {
		return nil, err
	}
	sel := greedyBound(in)
	sel.Degraded = err.Error()
	if sel.Status == ilp.Optimal {
		// Greedy results are feasible, never proven optimal.
		sel.Status = ilp.Feasible
	}
	return sel, nil
}

// decode converts the ILP solution into a Selection.
func (in *instance) decode(h handles, sol *ilp.Solution, nodes int) *Selection {
	var chosen []int
	for i := range in.db.IMPs {
		if sol.IsSet(h.xs[i]) {
			chosen = append(chosen, i)
		}
	}
	return in.compose(chosen, nodes)
}

// compose assembles the Selection of a chosen index set: areas with
// fixed-charge sharing, total and per-path gains, merged S-instruction
// counts.
func (in *instance) compose(chosen []int, nodes int) *Selection {
	sel := &Selection{Status: ilp.Optimal, Nodes: nodes}
	usedIPs := map[string]bool{}
	groupArea := map[group]float64{}
	for _, i := range chosen {
		im := in.db.IMPs[i]
		sel.Chosen = append(sel.Chosen, im)
		sel.Gain += in.totalGain[i]
		sel.SCallsImplemented += len(im.SC.Sites)
		usedIPs[im.IP.ID] = true
		g := in.grpOf[i]
		if prev, ok := groupArea[g]; !ok || im.IfaceArea > prev {
			groupArea[g] = im.IfaceArea
		}
	}
	for id := range usedIPs {
		sel.Area += in.ipArea[id]
	}
	if in.p.DisableMerging {
		for _, im := range sel.Chosen {
			sel.Area += im.IfaceArea
		}
		sel.SInstructions = len(sel.Chosen)
	} else {
		for _, a := range groupArea {
			sel.Area += a
		}
		sel.SInstructions = len(groupArea)
	}
	// Per-path achieved gains.
	sel.PathGains = make([]int64, len(in.db.Paths))
	for k := range in.db.Paths {
		for _, i := range chosen {
			sel.PathGains[k] += in.pathCoef(k, i)
		}
	}
	sort.Slice(sel.Chosen, func(a, b int) bool { return sel.Chosen[a].SC.Index < sel.Chosen[b].SC.Index })
	return sel
}
