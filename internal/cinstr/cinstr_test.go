package cinstr

import (
	"testing"
	"testing/quick"

	"partita/internal/cprog"
	"partita/internal/lower"
	"partita/internal/mop"
)

// repeatedProgram builds a function whose blocks contain the same 3-word
// sequence several times.
func repeatedProgram(copies int) *mop.Program {
	seq := func() []mop.MOP {
		return []mop.MOP{
			{Op: mop.AGUX, Dst: mop.AX(0), Imm: 100, Abs: true},
			{Op: mop.LDX, Dst: mop.GPR(1), SrcA: mop.AX(0), Imm: 1},
			{Op: mop.ADD, Dst: mop.GPR(2), SrcA: mop.GPR(1), SrcB: mop.GPR(1)},
			{Op: mop.STX, SrcA: mop.GPR(2), SrcB: mop.AX(0), Imm: 1},
		}
	}
	var ops []mop.MOP
	for i := 0; i < copies; i++ {
		ops = append(ops, seq()...)
		// Separator that breaks the repetition.
		ops = append(ops, mop.MOP{Op: mop.LDI, Dst: mop.GPR(int(3 + i%4)), Imm: int64(i)})
	}
	ops = append(ops, mop.MOP{Op: mop.RET})
	p := mop.NewProgram("f")
	p.Add(&mop.Function{Name: "f", Blocks: []*mop.Block{{Label: "entry", Ops: ops}}})
	return p
}

func TestMineFindsRepeatedSequence(t *testing.T) {
	p := repeatedProgram(4)
	res := Mine(p, nil, Config{})
	if len(res.Chosen) == 0 {
		t.Fatalf("no C-instructions found:\n%s", res)
	}
	best := res.Chosen[0]
	if len(best.Sites) < 2 {
		t.Errorf("best pattern has %d sites, want >= 2", len(best.Sites))
	}
	if res.CodeWordsAfter >= res.CodeWordsBefore {
		t.Errorf("code words %d → %d: no saving", res.CodeWordsBefore, res.CodeWordsAfter)
	}
	if res.FetchesAfter >= res.FetchesBefore {
		t.Errorf("fetches %d → %d: no saving", res.FetchesBefore, res.FetchesAfter)
	}
}

func TestMineRespectsOpcodeBudget(t *testing.T) {
	p := repeatedProgram(6)
	res := Mine(p, nil, Config{MaxInstrs: 1})
	if len(res.Chosen) > 1 {
		t.Errorf("chosen %d instructions, budget was 1", len(res.Chosen))
	}
}

func TestMineNoRepetitionNoInstr(t *testing.T) {
	// All-distinct words: nothing to share.
	var ops []mop.MOP
	for i := 0; i < 12; i++ {
		ops = append(ops, mop.MOP{Op: mop.LDI, Dst: mop.GPR(i % 8), Imm: int64(i * 17)})
	}
	p := mop.NewProgram("f")
	p.Add(&mop.Function{Name: "f", Blocks: []*mop.Block{{Label: "entry", Ops: ops}}})
	res := Mine(p, nil, Config{})
	if len(res.Chosen) != 0 {
		t.Errorf("found %d C-instructions in repetition-free code", len(res.Chosen))
	}
	if res.CodeWordsAfter != res.CodeWordsBefore {
		t.Errorf("code size changed without C-instructions")
	}
}

func TestMineSkipsBranchWords(t *testing.T) {
	// Repeated sequences that include a branch must not become
	// C-instructions.
	seq := []mop.MOP{
		{Op: mop.LDI, Dst: mop.GPR(0), Imm: 1},
		{Op: mop.CMP, SrcA: mop.GPR(0), SrcB: mop.GPR(0)},
		{Op: mop.BEQ, Sym: "entry"},
	}
	p := mop.NewProgram("f")
	p.Add(&mop.Function{Name: "f", Blocks: []*mop.Block{
		{Label: "entry", Ops: seq},
		{Label: "b2", Ops: append([]mop.MOP{}, seq...)},
		{Label: "b3", Ops: append([]mop.MOP{}, seq...)},
	}})
	res := Mine(p, nil, Config{})
	for _, ci := range res.Chosen {
		for _, pat := range ci.Pattern {
			if containsAny(pat, "beq", "bne", "br ", "ret", "call") {
				t.Errorf("C-instruction %s contains a sequencer word: %v", ci.ID, ci.Pattern)
			}
		}
	}
}

func containsAny(s string, subs ...string) bool {
	for _, sub := range subs {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
	}
	return false
}

func TestMineFrequencyWeighting(t *testing.T) {
	p := repeatedProgram(3)
	freq := map[string]map[string]int64{"f": {"entry": 1000}}
	res := Mine(p, freq, Config{})
	if len(res.Chosen) == 0 {
		t.Fatal("no instructions")
	}
	if res.Chosen[0].FetchSaving < 1000 {
		t.Errorf("fetch saving %d not frequency-weighted", res.Chosen[0].FetchSaving)
	}
}

func TestMineOnCompiledWorkload(t *testing.T) {
	// Lowered loops produce repeated scalar-access idioms; mining a real
	// compiled program should find at least one C-instruction.
	src := `
int a; int b; int c;
int main() {
	int i;
	for (i = 0; i < 10; i = i + 1) { a = a + 1; }
	for (i = 0; i < 10; i = i + 1) { b = b + 1; }
	for (i = 0; i < 10; i = i + 1) { c = c + 1; }
	return a + b + c;
}`
	f, err := cprog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := cprog.Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	prog, _, err := lower.Compile(info)
	if err != nil {
		t.Fatal(err)
	}
	res := Mine(prog, nil, Config{})
	if res.CodeWordsBefore <= 0 {
		t.Fatal("no code")
	}
	t.Logf("compiled workload: %s", res)
}

// TestMineInvariants checks structural invariants over random inputs:
// savings are consistent, and chosen sites never overlap.
func TestMineInvariants(t *testing.T) {
	f := func(seed uint8, copies uint8) bool {
		p := repeatedProgram(2 + int(copies%5))
		res := Mine(p, nil, Config{MaxInstrs: int(seed%4) + 1})
		if res.CodeWordsAfter > res.CodeWordsBefore {
			return false
		}
		if res.FetchesAfter > res.FetchesBefore {
			return false
		}
		// Overlap check.
		used := map[string]map[int]bool{}
		for _, ci := range res.Chosen {
			for _, s := range ci.Sites {
				key := s.Fn + "/" + s.Block
				if used[key] == nil {
					used[key] = map[int]bool{}
				}
				for i := s.Offset; i < s.Offset+ci.Len; i++ {
					if used[key][i] {
						return false
					}
					used[key][i] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
