// Package cinstr implements the C-instruction generation step of the
// Partita flow (Choi et al., DAC 1999, Section 2; algorithm lineage in
// their ICCAD'98 reference [9]).
//
// C-class instructions are application-specific multi-cycle instructions
// executed from µ-ROM: a repeated sequence of µ-code words is stored
// once in the µ-ROM and invoked by a single instruction word, which
// shrinks the code memory and cuts instruction fetches. This package
// mines the packed µ-word program for profitable repeated sequences,
// selects a non-overlapping subset under an opcode budget, and reports
// the code-size and fetch savings.
package cinstr

import (
	"fmt"
	"sort"
	"strings"

	"partita/internal/mop"
)

// Site locates one occurrence of a pattern: function, block label, and
// the word offset within the packed block.
type Site struct {
	Fn     string
	Block  string
	Offset int
}

// CInstr is one generated C-class instruction.
type CInstr struct {
	// ID is the assigned opcode name (C0, C1, ...).
	ID string
	// Pattern is the canonical rendering of the µ-word sequence.
	Pattern []string
	// Len is the number of µ-words the instruction replaces.
	Len int
	// Sites are the chosen (non-overlapping) occurrences.
	Sites []Site
	// CodeSaving is the code-memory words saved:
	// occurrences·len − (occurrences·1 + len).
	CodeSaving int
	// FetchSaving is the dynamic instruction fetches saved,
	// frequency-weighted: Σ_sites freq·(len−1).
	FetchSaving int64
}

// Config bounds the generation.
type Config struct {
	// MaxLen is the longest candidate sequence in µ-words (default 6).
	MaxLen int
	// MinLen is the shortest (default 2).
	MinLen int
	// MaxInstrs is the C-class opcode budget (default 16).
	MaxInstrs int
	// MinOccurrences prunes candidates appearing fewer times (default 2).
	MinOccurrences int
}

func (c *Config) defaults() {
	if c.MaxLen <= 0 {
		c.MaxLen = 6
	}
	if c.MinLen < 2 {
		c.MinLen = 2
	}
	if c.MaxInstrs <= 0 {
		c.MaxInstrs = 16
	}
	if c.MinOccurrences < 2 {
		c.MinOccurrences = 2
	}
}

// Result summarizes a generation run.
type Result struct {
	Chosen []*CInstr
	// CodeWordsBefore/After count the program's code-memory footprint
	// (instruction words; each C-instruction body lives in µ-ROM once).
	CodeWordsBefore, CodeWordsAfter int
	// MicroROMWords is the added µ-ROM space for C-instruction bodies.
	MicroROMWords int
	// FetchesBefore/After are frequency-weighted instruction fetches.
	FetchesBefore, FetchesAfter int64
}

// Saving reports the net code-words saved.
func (r *Result) Saving() int { return r.CodeWordsBefore - r.CodeWordsAfter }

// String renders a summary.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "C-instructions: %d chosen; code %d → %d words (µ-ROM +%d); fetches %d → %d\n",
		len(r.Chosen), r.CodeWordsBefore, r.CodeWordsAfter, r.MicroROMWords,
		r.FetchesBefore, r.FetchesAfter)
	for _, ci := range r.Chosen {
		fmt.Fprintf(&b, "  %s: len %d × %d sites, saves %d words / %d fetches\n",
			ci.ID, ci.Len, len(ci.Sites), ci.CodeSaving, ci.FetchSaving)
	}
	return b.String()
}

// packedBlock caches one block's packed words and canonical strings.
type packedBlock struct {
	fn    string
	label string
	words []mop.Word
	keys  []string
	freq  int64
}

// Mine finds and selects C-instructions for prog. freq gives per-block
// execution counts (freq[fn][label]); nil treats every block as
// executing once.
func Mine(prog *mop.Program, freq map[string]map[string]int64, cfg Config) *Result {
	cfg.defaults()

	var blocks []*packedBlock
	res := &Result{}
	for _, f := range prog.SortedFuncs() {
		for _, blk := range f.Blocks {
			words := mop.PackBlock(blk.Ops)
			if len(words) == 0 {
				continue
			}
			pb := &packedBlock{fn: f.Name, label: blk.Label, words: words, freq: 1}
			if freq != nil {
				if bf, ok := freq[f.Name]; ok {
					if n, ok := bf[blk.Label]; ok && n > 0 {
						pb.freq = n
					}
				}
			}
			pb.keys = make([]string, len(words))
			for i := range words {
				pb.keys[i] = canonWord(&words[i])
			}
			blocks = append(blocks, pb)
			res.CodeWordsBefore += len(words)
			res.FetchesBefore += int64(len(words)) * pb.freq
		}
	}

	// Collect candidate patterns: every subsequence of length MinLen..
	// MaxLen, keyed by its canonical text. A sequence may not span a
	// block boundary and may not contain a sequencer word (control
	// transfer must stay a P-instruction).
	type cand struct {
		key   string
		len   int
		sites []Site
		freqs []int64
	}
	cands := map[string]*cand{}
	for _, pb := range blocks {
		for l := cfg.MinLen; l <= cfg.MaxLen; l++ {
			for off := 0; off+l <= len(pb.words); off++ {
				if containsSeq(pb.words[off : off+l]) {
					continue
				}
				key := strings.Join(pb.keys[off:off+l], " ; ")
				c := cands[key]
				if c == nil {
					c = &cand{key: key, len: l}
					cands[key] = c
				}
				c.sites = append(c.sites, Site{Fn: pb.fn, Block: pb.label, Offset: off})
				c.freqs = append(c.freqs, pb.freq)
			}
		}
	}

	// Rank candidates by total benefit (code words saved weighted with
	// fetch savings), then select greedily without overlap.
	type scored struct {
		*cand
		benefit float64
	}
	var ranked []scored
	for _, c := range cands {
		if len(c.sites) < cfg.MinOccurrences {
			continue
		}
		codeSave := len(c.sites)*c.len - (len(c.sites) + c.len)
		if codeSave <= 0 {
			continue
		}
		var fetchSave int64
		for _, fr := range c.freqs {
			fetchSave += fr * int64(c.len-1)
		}
		ranked = append(ranked, scored{c, float64(codeSave) + 0.001*float64(fetchSave)})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].benefit != ranked[j].benefit {
			return ranked[i].benefit > ranked[j].benefit
		}
		return ranked[i].key < ranked[j].key // determinism
	})

	// taken[fn/block] marks word offsets already claimed.
	taken := map[string][]bool{}
	blockByKey := map[string]*packedBlock{}
	for _, pb := range blocks {
		k := pb.fn + "/" + pb.label
		taken[k] = make([]bool, len(pb.words))
		blockByKey[k] = pb
	}
	overlaps := func(s Site, l int) bool {
		t := taken[s.Fn+"/"+s.Block]
		for i := s.Offset; i < s.Offset+l; i++ {
			if t[i] {
				return true
			}
		}
		return false
	}
	claim := func(s Site, l int) {
		t := taken[s.Fn+"/"+s.Block]
		for i := s.Offset; i < s.Offset+l; i++ {
			t[i] = true
		}
	}

	for _, sc := range ranked {
		if len(res.Chosen) >= cfg.MaxInstrs {
			break
		}
		var sites []Site
		var fetchSave int64
		for i, s := range sc.sites {
			if overlaps(s, sc.len) {
				continue
			}
			// Also avoid overlap among this candidate's own sites (they
			// can overlap each other within a block).
			claim(s, sc.len)
			sites = append(sites, s)
			fetchSave += sc.freqs[i] * int64(sc.len-1)
		}
		codeSave := len(sites)*sc.len - (len(sites) + sc.len)
		if len(sites) < cfg.MinOccurrences || codeSave <= 0 {
			// Give the claimed slots back.
			for _, s := range sites {
				t := taken[s.Fn+"/"+s.Block]
				for i := s.Offset; i < s.Offset+sc.len; i++ {
					t[i] = false
				}
			}
			continue
		}
		ci := &CInstr{
			ID:          fmt.Sprintf("C%d", len(res.Chosen)),
			Pattern:     strings.Split(sc.key, " ; "),
			Len:         sc.len,
			Sites:       sites,
			CodeSaving:  codeSave,
			FetchSaving: fetchSave,
		}
		res.Chosen = append(res.Chosen, ci)
	}

	// Account the rewritten image.
	res.CodeWordsAfter = res.CodeWordsBefore
	res.FetchesAfter = res.FetchesBefore
	for _, ci := range res.Chosen {
		res.CodeWordsAfter -= len(ci.Sites)*ci.Len - len(ci.Sites)
		res.MicroROMWords += ci.Len
		res.FetchesAfter -= ci.FetchSaving
	}
	return res
}

// containsSeq reports whether any word carries a sequencer operation.
func containsSeq(words []mop.Word) bool {
	for i := range words {
		if words[i].Ops[mop.FieldSeq] != nil {
			return true
		}
	}
	return false
}

// canonWord renders a µ-word canonically for pattern matching: fields in
// fixed order, exact operands (µ-code reuse requires identical words).
func canonWord(w *mop.Word) string {
	var parts []string
	for f := mop.Field(0); f < mop.NumFields; f++ {
		if w.Ops[f] != nil {
			parts = append(parts, w.Ops[f].String())
		}
	}
	if len(parts) == 0 {
		return "nop"
	}
	return strings.Join(parts, "|")
}
