package mop

import (
	"fmt"
	"sort"
	"strings"
)

// Block is a basic block: a label, a straight-line MOP list, and at most
// one terminating branch. Fallthrough to the next block in function order
// is implied when the last MOP is not an unconditional branch or return.
type Block struct {
	Label string
	Ops   []MOP
}

// Terminator returns the final MOP if it is a sequencer operation, or a
// NOP MOP otherwise.
func (b *Block) Terminator() (MOP, bool) {
	if len(b.Ops) == 0 {
		return MOP{}, false
	}
	last := b.Ops[len(b.Ops)-1]
	if FieldOf(last.Op) == FieldSeq {
		return last, true
	}
	return MOP{}, false
}

// Function is an ordered list of basic blocks. Arguments are passed in
// GPR(0..n-1); the return value is produced in RegRetVal.
type Function struct {
	Name   string
	Params []string // parameter names, for diagnostics
	Blocks []*Block
	// FrameX and FrameY are the number of words of X/Y data memory the
	// function's locals occupy (assigned by the lowering pass).
	FrameX, FrameY int
}

// Block returns the block with the given label, or nil.
func (f *Function) Block(label string) *Block {
	for _, b := range f.Blocks {
		if b.Label == label {
			return b
		}
	}
	return nil
}

// NumOps counts the MOPs in the function.
func (f *Function) NumOps() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Ops)
	}
	return n
}

// Program is a set of functions plus the designated entry point.
type Program struct {
	Funcs map[string]*Function
	Entry string
}

// NewProgram returns an empty program with the given entry function name.
func NewProgram(entry string) *Program {
	return &Program{Funcs: map[string]*Function{}, Entry: entry}
}

// Add registers f, replacing any same-named function.
func (p *Program) Add(f *Function) { p.Funcs[f.Name] = f }

// Function returns the named function or nil.
func (p *Program) Function(name string) *Function { return p.Funcs[name] }

// SortedFuncs returns the functions in name order for deterministic
// iteration.
func (p *Program) SortedFuncs() []*Function {
	names := make([]string, 0, len(p.Funcs))
	for n := range p.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	fs := make([]*Function, len(names))
	for i, n := range names {
		fs[i] = p.Funcs[n]
	}
	return fs
}

// Validate checks structural invariants: entry exists, branch targets
// resolve, call targets resolve, branches only terminate blocks, and
// register indices are in range.
func (p *Program) Validate() error {
	if p.Entry != "" && p.Funcs[p.Entry] == nil {
		return fmt.Errorf("mop: entry function %q not defined", p.Entry)
	}
	for _, f := range p.SortedFuncs() {
		labels := map[string]bool{}
		for _, b := range f.Blocks {
			if labels[b.Label] {
				return fmt.Errorf("mop: %s: duplicate label %q", f.Name, b.Label)
			}
			labels[b.Label] = true
		}
		for _, b := range f.Blocks {
			for i, op := range b.Ops {
				if FieldOf(op.Op) == FieldSeq && op.Op != CALL && i != len(b.Ops)-1 {
					return fmt.Errorf("mop: %s/%s: branch %v not at block end", f.Name, b.Label, op)
				}
				switch op.Op {
				case BR, BEQ, BNE, BLT, BGE:
					if !labels[op.Sym] {
						return fmt.Errorf("mop: %s/%s: branch to unknown label %q", f.Name, b.Label, op.Sym)
					}
				case CALL:
					if p.Funcs[op.Sym] == nil {
						return fmt.Errorf("mop: %s/%s: call to unknown function %q", f.Name, b.Label, op.Sym)
					}
				case LDX, LDY:
					if !IsAddrReg(op.SrcA) {
						return fmt.Errorf("mop: %s/%s: %v: load address %s is not an address register", f.Name, b.Label, op, op.SrcA)
					}
				case STX, STY:
					if !IsAddrReg(op.SrcB) {
						return fmt.Errorf("mop: %s/%s: %v: store address %s is not an address register", f.Name, b.Label, op, op.SrcB)
					}
				case AGUX, AGUY:
					if !IsAddrReg(op.Dst) {
						return fmt.Errorf("mop: %s/%s: %v: AGU target %s is not an address register", f.Name, b.Label, op, op.Dst)
					}
				}
				for _, r := range append(op.DefsAll(), op.Uses()...) {
					if r != RegNone && (r < 0 || int(r) >= NumRegs) {
						return fmt.Errorf("mop: %s/%s: %v: register %d out of range", f.Name, b.Label, op, r)
					}
				}
			}
		}
	}
	return nil
}

// String renders the program as assembly-like text.
func (p *Program) String() string {
	var b strings.Builder
	for _, f := range p.SortedFuncs() {
		fmt.Fprintf(&b, "func %s(%s):\n", f.Name, strings.Join(f.Params, ", "))
		for _, blk := range f.Blocks {
			fmt.Fprintf(&b, "%s:\n", blk.Label)
			for _, op := range blk.Ops {
				fmt.Fprintf(&b, "\t%s\n", op)
			}
		}
	}
	return b.String()
}

// Successors returns the labels a block may transfer control to within
// its function (fallthrough included). A RET has no successors.
func (f *Function) Successors(i int) []string {
	b := f.Blocks[i]
	term, ok := b.Terminator()
	var next []string
	fallthroughTo := ""
	if i+1 < len(f.Blocks) {
		fallthroughTo = f.Blocks[i+1].Label
	}
	if !ok {
		if fallthroughTo != "" {
			next = append(next, fallthroughTo)
		}
		return next
	}
	switch term.Op {
	case BR:
		next = append(next, term.Sym)
	case BEQ, BNE, BLT, BGE:
		next = append(next, term.Sym)
		if fallthroughTo != "" {
			next = append(next, fallthroughTo)
		}
	case RET:
	}
	return next
}
