// Package mop defines the µ-operation (MOP) instruction set of the target
// ASIP kernel described in Choi et al. (DAC 1999), Section 2: a pipelined
// DSP core with a separate address-generation unit (AGU) and two data
// memories (XDM and YDM) that can be accessed in the same cycle. Each
// µ-code word has eight fields so that an arithmetic operation, memory
// transfers, AGU updates, a register move, and a sequencer operation can
// execute in parallel; each operation occupying one field is a MOP.
//
// The package provides the MOP vocabulary, program containers (functions
// of basic blocks), a validator, and an 8-field µ-word packer used to
// derive kernel cycle counts and µ-code ROM sizes.
package mop

import (
	"fmt"
	"strings"
)

// Opcode enumerates every µ-operation the kernel supports. The P-class
// instruction set of the paper (primitive arithmetic plus control) is
// exactly the set of single-MOP instructions.
type Opcode int

const (
	NOP Opcode = iota

	// ALU field.
	ADD
	SUB
	AND
	OR
	XOR
	SHL // shift left by immediate
	SHR // arithmetic shift right by immediate
	NEG
	ABS
	CMP // sets flags from SrcA - SrcB
	MIN
	MAX
	SAT // saturate accumulator into Dst
	DIV // multi-cycle signed divide
	REM // multi-cycle signed remainder

	// Multiplier field.
	MUL
	MAC // Dst += SrcA * SrcB

	// Move field.
	MOV // register-to-register
	LDI // load immediate into Dst

	// X-memory field.
	LDX // Dst = XDM[addr reg], with optional post-modify
	STX // XDM[addr reg] = SrcA

	// Y-memory field.
	LDY
	STY

	// AGU fields.
	AGUX // update X address register: Dst(addr reg) op= Imm
	AGUY

	// Sequencer field.
	BR   // unconditional branch to Sym
	BEQ  // branch if last CMP equal
	BNE  // branch if not equal
	BLT  // branch if less-than
	BGE  // branch if greater-or-equal
	CALL // call function Sym
	RET

	numOpcodes
)

var opcodeNames = [...]string{
	NOP: "nop", ADD: "add", SUB: "sub", AND: "and", OR: "or", XOR: "xor",
	SHL: "shl", SHR: "shr", NEG: "neg", ABS: "abs", CMP: "cmp", MIN: "min",
	MAX: "max", SAT: "sat", DIV: "div", REM: "rem", MUL: "mul", MAC: "mac",
	MOV: "mov", LDI: "ldi",
	LDX: "ldx", STX: "stx", LDY: "ldy", STY: "sty", AGUX: "agux", AGUY: "aguy",
	BR: "br", BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", CALL: "call",
	RET: "ret",
}

func (o Opcode) String() string {
	if o >= 0 && int(o) < len(opcodeNames) && opcodeNames[o] != "" {
		return opcodeNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Field identifies one of the eight fields of a µ-code word.
type Field int

const (
	FieldALU Field = iota
	FieldMul
	FieldMove
	FieldXMem
	FieldYMem
	FieldAGUX
	FieldAGUY
	FieldSeq
	NumFields
)

var fieldNames = [...]string{"alu", "mul", "move", "xmem", "ymem", "agux", "aguy", "seq"}

func (f Field) String() string {
	if f >= 0 && int(f) < len(fieldNames) {
		return fieldNames[f]
	}
	return fmt.Sprintf("field(%d)", int(f))
}

// FieldOf reports which µ-word field an opcode occupies.
func FieldOf(o Opcode) Field {
	switch o {
	case ADD, SUB, AND, OR, XOR, SHL, SHR, NEG, ABS, CMP, MIN, MAX, SAT, DIV, REM:
		return FieldALU
	case MUL, MAC:
		return FieldMul
	case MOV, LDI:
		return FieldMove
	case LDX, STX:
		return FieldXMem
	case LDY, STY:
		return FieldYMem
	case AGUX:
		return FieldAGUX
	case AGUY:
		return FieldAGUY
	case BR, BEQ, BNE, BLT, BGE, CALL, RET:
		return FieldSeq
	}
	return FieldALU // NOP packs anywhere; by convention report ALU
}

// IsBranch reports whether o ends a basic block.
func IsBranch(o Opcode) bool {
	switch o {
	case BR, BEQ, BNE, BLT, BGE, RET:
		return true
	}
	return false
}

// IsConditional reports whether o is a conditional branch.
func IsConditional(o Opcode) bool {
	switch o {
	case BEQ, BNE, BLT, BGE:
		return true
	}
	return false
}

// Reg names a kernel register. The file is split into general registers
// (R0..), X/Y address registers for the AGU, and a handful of specials.
type Reg int

const (
	RegNone Reg = -1
)

const (
	// NumGPR general-purpose registers R0..R15.
	NumGPR = 16
	// NumAddr address registers per AGU bank (AX0..AX3, AY0..AY3).
	NumAddr = 4
)

const (
	firstGPR  Reg = 0
	firstAX   Reg = firstGPR + NumGPR
	firstAY   Reg = firstAX + NumAddr
	RegAcc    Reg = firstAY + NumAddr // multiplier accumulator
	RegRetVal Reg = RegAcc + 1        // function return value
	NumRegs       = int(RegRetVal) + 1
)

// GPR returns general register i (0 ≤ i < NumGPR).
func GPR(i int) Reg { return firstGPR + Reg(i) }

// AX returns X-bank address register i.
func AX(i int) Reg { return firstAX + Reg(i) }

// AY returns Y-bank address register i.
func AY(i int) Reg { return firstAY + Reg(i) }

// IsAddrReg reports whether r belongs to either AGU bank.
func IsAddrReg(r Reg) bool { return r >= firstAX && r < RegAcc }

func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "-"
	case r >= firstGPR && r < firstAX:
		return fmt.Sprintf("r%d", int(r-firstGPR))
	case r >= firstAX && r < firstAY:
		return fmt.Sprintf("ax%d", int(r-firstAX))
	case r >= firstAY && r < RegAcc:
		return fmt.Sprintf("ay%d", int(r-firstAY))
	case r == RegAcc:
		return "acc"
	case r == RegRetVal:
		return "rv"
	}
	return fmt.Sprintf("reg(%d)", int(r))
}

// MOP is a single µ-operation. Operand use depends on the opcode:
//
//   - ALU/MUL ops: Dst = SrcA op SrcB (SHL/SHR use Imm as the shift count).
//   - MOV: Dst = SrcA; LDI: Dst = Imm.
//   - LDX/LDY: Dst = mem[SrcA] where SrcA is an address register; Imm is
//     the post-modify step applied to SrcA after the access.
//   - STX/STY: mem[SrcB] = SrcA with post-modify Imm on SrcB.
//   - AGUX/AGUY: Dst (an address register) += Imm, or = Imm if SrcA==RegNone
//     and Abs is set.
//   - Branches: Sym is the target label; CALL's Sym is the callee name.
type MOP struct {
	Op   Opcode
	Dst  Reg
	SrcA Reg
	SrcB Reg
	Imm  int64
	Sym  string
	// Abs marks AGUX/AGUY as an absolute load (Dst = Imm) rather than a
	// post-modify add.
	Abs bool
	// Pos is an optional source position (token offset) for diagnostics.
	Pos int
}

func (m MOP) String() string {
	var b strings.Builder
	b.WriteString(m.Op.String())
	switch m.Op {
	case NOP, RET:
	case BR, BEQ, BNE, BLT, BGE, CALL:
		fmt.Fprintf(&b, " %s", m.Sym)
	case LDI:
		fmt.Fprintf(&b, " %s, #%d", m.Dst, m.Imm)
	case MOV:
		fmt.Fprintf(&b, " %s, %s", m.Dst, m.SrcA)
	case LDX, LDY:
		fmt.Fprintf(&b, " %s, [%s]+%d", m.Dst, m.SrcA, m.Imm)
	case STX, STY:
		fmt.Fprintf(&b, " [%s]+%d, %s", m.SrcB, m.Imm, m.SrcA)
	case AGUX, AGUY:
		if m.Abs {
			fmt.Fprintf(&b, " %s = #%d", m.Dst, m.Imm)
		} else {
			fmt.Fprintf(&b, " %s += #%d", m.Dst, m.Imm)
		}
	case SHL, SHR:
		fmt.Fprintf(&b, " %s, %s, #%d", m.Dst, m.SrcA, m.Imm)
	case CMP:
		fmt.Fprintf(&b, " %s, %s", m.SrcA, m.SrcB)
	case NEG, ABS, SAT:
		fmt.Fprintf(&b, " %s, %s", m.Dst, m.SrcA)
	default:
		fmt.Fprintf(&b, " %s, %s, %s", m.Dst, m.SrcA, m.SrcB)
	}
	return b.String()
}

// Defs returns the register written by m, or RegNone.
func (m MOP) Defs() Reg {
	switch m.Op {
	case ADD, SUB, AND, OR, XOR, SHL, SHR, NEG, ABS, MIN, MAX, SAT, DIV, REM,
		MUL, MOV, LDI, LDX, LDY, AGUX, AGUY:
		return m.Dst
	case MAC:
		return m.Dst // read-modify-write
	}
	return RegNone
}

// Uses returns the registers read by m (excluding flag reads).
func (m MOP) Uses() []Reg {
	var u []Reg
	add := func(r Reg) {
		if r != RegNone {
			u = append(u, r)
		}
	}
	switch m.Op {
	case ADD, SUB, AND, OR, XOR, MIN, MAX, MUL, CMP, DIV, REM:
		add(m.SrcA)
		add(m.SrcB)
	case MAC:
		add(m.Dst) // accumulates
		add(m.SrcA)
		add(m.SrcB)
	case SHL, SHR, NEG, ABS, SAT, MOV:
		add(m.SrcA)
	case LDX, LDY:
		add(m.SrcA) // address register (also post-modified)
	case STX, STY:
		add(m.SrcA) // value
		add(m.SrcB) // address register
	case AGUX, AGUY:
		if !m.Abs {
			add(m.Dst)
		}
	}
	return u
}

// DefsAll returns every register written by m, including address
// registers updated by load/store post-modify. The slice is freshly
// allocated.
func (m MOP) DefsAll() []Reg {
	var d []Reg
	if r := m.Defs(); r != RegNone {
		d = append(d, r)
	}
	switch m.Op {
	case LDX, LDY:
		if m.Imm != 0 {
			d = append(d, m.SrcA)
		}
	case STX, STY:
		if m.Imm != 0 {
			d = append(d, m.SrcB)
		}
	}
	return d
}

// ReadsFlags reports whether m consumes the ALU flags (conditional branch).
func (m MOP) ReadsFlags() bool { return IsConditional(m.Op) }

// WritesFlags reports whether m sets the ALU flags.
func (m MOP) WritesFlags() bool { return m.Op == CMP }

// MemEffect describes the memory access of m, if any.
type MemEffect int

const (
	MemNone MemEffect = iota
	MemReadX
	MemWriteX
	MemReadY
	MemWriteY
)

// Mem reports which memory bank and direction m touches.
func (m MOP) Mem() MemEffect {
	switch m.Op {
	case LDX:
		return MemReadX
	case STX:
		return MemWriteX
	case LDY:
		return MemReadY
	case STY:
		return MemWriteY
	}
	return MemNone
}
