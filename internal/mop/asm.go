package mop

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseAsm parses the assembly-like syntax produced by Program.String
// back into a Program. Round-tripping Parse(String(p)) yields a program
// with identical structure; the format is also convenient for
// hand-written µ-operation files:
//
//	func dot(xs, ys, n):
//	entry:
//		mov ax0, r0
//		ldi acc, #0
//		br loop
//	loop:
//		ldx r3, [ax0]+1
//		mac acc, r3, r4
//		...
//
// The entry function is the first one unless a line "entry <name>"
// appears before any function.
func ParseAsm(src string) (*Program, error) {
	p := NewProgram("")
	var fn *Function
	var blk *Block

	flushBlock := func() {
		blk = nil
	}
	flushFunc := func() {
		if fn != nil {
			p.Add(fn)
		}
		fn = nil
		flushBlock()
	}

	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "//") || strings.HasPrefix(line, ";") {
			continue
		}
		errf := func(format string, args ...interface{}) error {
			return fmt.Errorf("mop: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		switch {
		case strings.HasPrefix(line, "entry "):
			p.Entry = strings.TrimSpace(strings.TrimPrefix(line, "entry "))
		case strings.HasPrefix(line, "func "):
			flushFunc()
			rest := strings.TrimPrefix(line, "func ")
			open := strings.Index(rest, "(")
			closeP := strings.LastIndex(rest, ")")
			if open < 0 || closeP < open || !strings.HasSuffix(rest[closeP:], "):") {
				return nil, errf("malformed function header %q", line)
			}
			name := strings.TrimSpace(rest[:open])
			if name == "" {
				return nil, errf("function with empty name")
			}
			fn = &Function{Name: name}
			if params := strings.TrimSpace(rest[open+1 : closeP]); params != "" {
				for _, pn := range strings.Split(params, ",") {
					fn.Params = append(fn.Params, strings.TrimSpace(pn))
				}
			}
			if p.Entry == "" {
				p.Entry = name
			}
		case strings.HasSuffix(line, ":"):
			if fn == nil {
				return nil, errf("label %q outside a function", line)
			}
			blk = &Block{Label: strings.TrimSuffix(line, ":")}
			fn.Blocks = append(fn.Blocks, blk)
		default:
			if blk == nil {
				return nil, errf("instruction %q outside a block", line)
			}
			op, err := parseMOPLine(line)
			if err != nil {
				return nil, errf("%v", err)
			}
			blk.Ops = append(blk.Ops, op)
		}
	}
	flushFunc()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

var opcodeByName = func() map[string]Opcode {
	m := make(map[string]Opcode, int(numOpcodes))
	for o := Opcode(0); o < numOpcodes; o++ {
		m[o.String()] = o
	}
	return m
}()

// parseReg parses a register name as printed by Reg.String.
func parseReg(s string) (Reg, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "acc":
		return RegAcc, nil
	case s == "rv":
		return RegRetVal, nil
	case s == "-":
		return RegNone, nil
	case strings.HasPrefix(s, "ax"):
		n, err := strconv.Atoi(s[2:])
		if err != nil || n < 0 || n >= NumAddr {
			return RegNone, fmt.Errorf("bad address register %q", s)
		}
		return AX(n), nil
	case strings.HasPrefix(s, "ay"):
		n, err := strconv.Atoi(s[2:])
		if err != nil || n < 0 || n >= NumAddr {
			return RegNone, fmt.Errorf("bad address register %q", s)
		}
		return AY(n), nil
	case strings.HasPrefix(s, "r"):
		n, err := strconv.Atoi(s[1:])
		if err != nil || n < 0 || n >= NumGPR {
			return RegNone, fmt.Errorf("bad register %q", s)
		}
		return GPR(n), nil
	}
	return RegNone, fmt.Errorf("bad register %q", s)
}

func parseImm(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "#") {
		return 0, fmt.Errorf("immediate %q must start with #", s)
	}
	return strconv.ParseInt(s[1:], 10, 64)
}

// parseMem parses "[ax0]+1" into (addr reg, post-modify).
func parseMem(s string) (Reg, int64, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") {
		return RegNone, 0, fmt.Errorf("memory operand %q must start with [", s)
	}
	close := strings.Index(s, "]")
	if close < 0 {
		return RegNone, 0, fmt.Errorf("memory operand %q missing ]", s)
	}
	r, err := parseReg(s[1:close])
	if err != nil {
		return RegNone, 0, err
	}
	rest := strings.TrimSpace(s[close+1:])
	var imm int64
	if rest != "" {
		if !strings.HasPrefix(rest, "+") {
			return RegNone, 0, fmt.Errorf("memory post-modify %q must be +N", rest)
		}
		imm, err = strconv.ParseInt(rest[1:], 10, 64)
		if err != nil {
			return RegNone, 0, err
		}
	}
	return r, imm, nil
}

func parseMOPLine(line string) (MOP, error) {
	var m MOP
	fields := strings.SplitN(line, " ", 2)
	opName := fields[0]
	op, ok := opcodeByName[opName]
	if !ok {
		return m, fmt.Errorf("unknown opcode %q", opName)
	}
	m.Op = op
	rest := ""
	if len(fields) > 1 {
		rest = strings.TrimSpace(fields[1])
	}
	args := splitArgs(rest)

	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s wants %d operands, got %d (%q)", opName, n, len(args), rest)
		}
		return nil
	}
	var err error
	switch op {
	case NOP, RET:
		return m, need(0)
	case BR, BEQ, BNE, BLT, BGE, CALL:
		if err := need(1); err != nil {
			return m, err
		}
		m.Sym = args[0]
		return m, nil
	case LDI:
		if err := need(2); err != nil {
			return m, err
		}
		if m.Dst, err = parseReg(args[0]); err != nil {
			return m, err
		}
		m.Imm, err = parseImm(args[1])
		return m, err
	case MOV:
		if err := need(2); err != nil {
			return m, err
		}
		if m.Dst, err = parseReg(args[0]); err != nil {
			return m, err
		}
		m.SrcA, err = parseReg(args[1])
		return m, err
	case LDX, LDY:
		if err := need(2); err != nil {
			return m, err
		}
		if m.Dst, err = parseReg(args[0]); err != nil {
			return m, err
		}
		m.SrcA, m.Imm, err = parseMem(args[1])
		return m, err
	case STX, STY:
		if err := need(2); err != nil {
			return m, err
		}
		if m.SrcB, m.Imm, err = parseMem(args[0]); err != nil {
			return m, err
		}
		m.SrcA, err = parseReg(args[1])
		return m, err
	case AGUX, AGUY:
		// "ax3 = #100" or "ax0 += #1"
		if strings.Contains(rest, "+=") {
			parts := strings.SplitN(rest, "+=", 2)
			if m.Dst, err = parseReg(parts[0]); err != nil {
				return m, err
			}
			m.Imm, err = parseImm(parts[1])
			return m, err
		}
		if strings.Contains(rest, "=") {
			parts := strings.SplitN(rest, "=", 2)
			if m.Dst, err = parseReg(parts[0]); err != nil {
				return m, err
			}
			m.Abs = true
			m.Imm, err = parseImm(parts[1])
			return m, err
		}
		return m, fmt.Errorf("malformed AGU operation %q", line)
	case SHL, SHR:
		if err := need(3); err != nil {
			return m, err
		}
		if m.Dst, err = parseReg(args[0]); err != nil {
			return m, err
		}
		if m.SrcA, err = parseReg(args[1]); err != nil {
			return m, err
		}
		m.Imm, err = parseImm(args[2])
		return m, err
	case CMP:
		if err := need(2); err != nil {
			return m, err
		}
		if m.SrcA, err = parseReg(args[0]); err != nil {
			return m, err
		}
		m.SrcB, err = parseReg(args[1])
		return m, err
	case NEG, ABS, SAT:
		if err := need(2); err != nil {
			return m, err
		}
		if m.Dst, err = parseReg(args[0]); err != nil {
			return m, err
		}
		m.SrcA, err = parseReg(args[1])
		return m, err
	default:
		// Three-register ALU/MUL forms.
		if err := need(3); err != nil {
			return m, err
		}
		if m.Dst, err = parseReg(args[0]); err != nil {
			return m, err
		}
		if m.SrcA, err = parseReg(args[1]); err != nil {
			return m, err
		}
		m.SrcB, err = parseReg(args[2])
		return m, err
	}
}

// splitArgs splits a comma-separated operand list, keeping bracketed
// memory operands intact.
func splitArgs(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	start := 0
	for i, r := range s {
		switch r {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}
