package mop

import (
	"fmt"
	"strings"
)

// Word is one µ-code word: up to eight MOPs, one per field, that execute
// in the same kernel cycle.
type Word struct {
	Ops [NumFields]*MOP
}

// Used reports how many fields of the word carry an operation.
func (w *Word) Used() int {
	n := 0
	for _, o := range w.Ops {
		if o != nil {
			n++
		}
	}
	return n
}

func (w *Word) String() string {
	var parts []string
	for f := Field(0); f < NumFields; f++ {
		if w.Ops[f] != nil {
			parts = append(parts, fmt.Sprintf("%s:%s", f, w.Ops[f]))
		}
	}
	if len(parts) == 0 {
		return "{nop}"
	}
	return "{" + strings.Join(parts, " | ") + "}"
}

// PackBlock greedily packs a straight-line MOP sequence into 8-field
// µ-words, preserving program order per field and never placing dependent
// operations in the same word. The number of words is the block's kernel
// cycle count; it is also the µ-ROM space the block occupies.
//
// Packing rules (conservative, matching a single-issue-per-field VLIW):
//
//   - each field holds at most one MOP per word;
//   - a MOP may not read a register written earlier in the same word;
//   - a MOP may not write a register read or written earlier in the word;
//   - a conditional branch may not share a word with the CMP it consumes;
//   - CALL is a scheduling barrier: nothing may be placed after it in the
//     same word, and the word is closed once a sequencer MOP is placed.
func PackBlock(ops []MOP) []Word {
	var words []Word
	var cur *Word
	var defs map[Reg]bool
	var uses map[Reg]bool
	flagsWritten := false
	closed := true

	flush := func() {
		cur = nil
		closed = true
	}
	open := func() {
		words = append(words, Word{})
		cur = &words[len(words)-1]
		defs = map[Reg]bool{}
		uses = map[Reg]bool{}
		flagsWritten = false
		closed = false
	}

	for i := range ops {
		op := ops[i]
		f := FieldOf(op.Op)
		canPack := !closed && cur.Ops[f] == nil
		if canPack {
			for _, r := range op.Uses() {
				if defs[r] {
					canPack = false
					break
				}
			}
		}
		if canPack {
			for _, r := range op.DefsAll() {
				if defs[r] || uses[r] {
					canPack = false
					break
				}
			}
		}
		if canPack && op.ReadsFlags() && flagsWritten {
			canPack = false
		}
		if !canPack {
			open()
		}
		cur.Ops[f] = &ops[i]
		for _, r := range op.Uses() {
			uses[r] = true
		}
		for _, r := range op.DefsAll() {
			defs[r] = true
		}
		if op.WritesFlags() {
			flagsWritten = true
		}
		if f == FieldSeq {
			flush()
		}
	}
	return words
}

// CycleCount reports the packed cycle count of a single execution of each
// block in f, keyed by block label.
func (f *Function) CycleCount() map[string]int {
	m := make(map[string]int, len(f.Blocks))
	for _, b := range f.Blocks {
		m[b.Label] = len(PackBlock(b.Ops))
	}
	return m
}

// CodeWords reports the total number of µ-code words the program occupies
// (its µ-ROM footprint).
func (p *Program) CodeWords() int {
	n := 0
	for _, f := range p.SortedFuncs() {
		for _, b := range f.Blocks {
			n += len(PackBlock(b.Ops))
		}
	}
	return n
}
