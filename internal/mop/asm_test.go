package mop

import (
	"strings"
	"testing"
)

const asmSrc = `
// hand-written dot product
entry dot
func dot(xs, ys, n):
entry:
	mov ax0, r0
	mov ay0, r1
	ldi acc, #0
	br loop
loop:
	ldx r3, [ax0]+1
	ldy r4, [ay0]+1
	mac acc, r3, r4
	ldi r5, #1
	sub r2, r2, r5
	ldi r6, #0
	cmp r2, r6
	bne loop
done:
	mov rv, acc
	ret

func scale(v):
entry:
	shl r0, r0, #2
	agux ax3 = #100
	stx [ax3]+0, r0
	agux ax3 += #1
	neg r1, r0
	mov rv, r1
	ret
`

func TestParseAsm(t *testing.T) {
	p, err := ParseAsm(asmSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != "dot" {
		t.Errorf("entry = %q, want dot", p.Entry)
	}
	dot := p.Function("dot")
	if dot == nil || len(dot.Blocks) != 3 {
		t.Fatalf("dot not parsed correctly: %+v", dot)
	}
	if len(dot.Params) != 3 || dot.Params[2] != "n" {
		t.Errorf("params = %v", dot.Params)
	}
	loop := dot.Block("loop")
	if loop == nil || len(loop.Ops) != 8 {
		t.Fatalf("loop block wrong: %+v", loop)
	}
	if loop.Ops[2].Op != MAC || loop.Ops[2].Dst != RegAcc {
		t.Errorf("mac parsed as %v", loop.Ops[2])
	}
	if loop.Ops[0].Op != LDX || loop.Ops[0].SrcA != AX(0) || loop.Ops[0].Imm != 1 {
		t.Errorf("ldx parsed as %v", loop.Ops[0])
	}

	scale := p.Function("scale")
	ops := scale.Blocks[0].Ops
	if ops[1].Op != AGUX || !ops[1].Abs || ops[1].Imm != 100 {
		t.Errorf("agux abs parsed as %v", ops[1])
	}
	if ops[3].Op != AGUX || ops[3].Abs || ops[3].Imm != 1 {
		t.Errorf("agux add parsed as %v", ops[3])
	}
	if ops[2].Op != STX || ops[2].SrcB != AX(3) || ops[2].SrcA != GPR(0) {
		t.Errorf("stx parsed as %v", ops[2])
	}
}

// TestAsmRoundTrip: String → ParseAsm → String is a fixed point.
func TestAsmRoundTrip(t *testing.T) {
	p1, err := ParseAsm(asmSrc)
	if err != nil {
		t.Fatal(err)
	}
	text1 := p1.String()
	p2, err := ParseAsm("entry dot\n" + text1)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text1)
	}
	text2 := p2.String()
	if text1 != text2 {
		t.Fatalf("round trip diverged:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
	}
}

func TestParseAsmErrors(t *testing.T) {
	cases := []string{
		"add r0, r1, r2",                     // instruction outside block
		"func f():\nadd r0, r1",              // op outside block (no label)
		"func f():\nentry:\n\tbogus r0",      // unknown opcode
		"func f():\nentry:\n\tadd r0, r1",    // wrong arity
		"func f():\nentry:\n\tldi r99, #1",   // bad register
		"func f():\nentry:\n\tldi r0, 5",     // missing #
		"func f():\nentry:\n\tldx r0, ax0",   // missing brackets
		"func f():\nentry:\n\tbr nowhere",    // unknown label (Validate)
		"func f(:\nentry:\n\tret",            // malformed header
		"func f():\nentry:\n\tagux ax0 * #1", // malformed AGU
	}
	for _, src := range cases {
		if _, err := ParseAsm(src); err == nil {
			t.Errorf("ParseAsm(%q) succeeded, want error", src)
		}
	}
}

func TestParseAsmCommentsAndBlank(t *testing.T) {
	src := `
; alt comment style
func f():
entry:
	// inline comment line
	ldi rv, #42
	ret
`
	p, err := ParseAsm(src)
	if err != nil {
		t.Fatal(err)
	}
	if n := p.Function("f").NumOps(); n != 2 {
		t.Errorf("ops = %d, want 2", n)
	}
}

func TestParseRegCoverage(t *testing.T) {
	good := map[string]Reg{
		"r0": GPR(0), "r15": GPR(15), "ax0": AX(0), "ay3": AY(3),
		"acc": RegAcc, "rv": RegRetVal, "-": RegNone,
	}
	for s, want := range good {
		got, err := parseReg(s)
		if err != nil || got != want {
			t.Errorf("parseReg(%q) = %v, %v", s, got, err)
		}
	}
	for _, s := range []string{"r16", "ax4", "ay9", "zz", "", "r-1"} {
		if _, err := parseReg(s); err == nil {
			t.Errorf("parseReg(%q) succeeded", s)
		}
	}
}

func TestAsmRejectsUnvalidatable(t *testing.T) {
	// Branch mid-block is caught by Validate.
	src := "func f():\nentry:\n\tbr entry\n\tnop\n"
	if _, err := ParseAsm(src); err == nil || !strings.Contains(err.Error(), "branch") {
		t.Errorf("mid-block branch not rejected: %v", err)
	}
}
