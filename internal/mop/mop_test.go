package mop

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpcodeStrings(t *testing.T) {
	for o := Opcode(0); o < numOpcodes; o++ {
		s := o.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no name", int(o))
		}
	}
}

func TestFieldOfCoversAllOpcodes(t *testing.T) {
	for o := Opcode(0); o < numOpcodes; o++ {
		f := FieldOf(o)
		if f < 0 || f >= NumFields {
			t.Errorf("FieldOf(%v) = %v out of range", o, f)
		}
	}
}

func TestRegNaming(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{GPR(0), "r0"}, {GPR(15), "r15"}, {AX(0), "ax0"}, {AX(3), "ax3"},
		{AY(0), "ay0"}, {AY(3), "ay3"}, {RegAcc, "acc"}, {RegRetVal, "rv"},
		{RegNone, "-"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", int(c.r), got, c.want)
		}
	}
	if !IsAddrReg(AX(2)) || !IsAddrReg(AY(1)) || IsAddrReg(GPR(3)) || IsAddrReg(RegAcc) {
		t.Error("IsAddrReg misclassifies registers")
	}
}

func TestDefsUses(t *testing.T) {
	add := MOP{Op: ADD, Dst: GPR(2), SrcA: GPR(0), SrcB: GPR(1)}
	if add.Defs() != GPR(2) {
		t.Errorf("ADD defs = %v", add.Defs())
	}
	if got := add.Uses(); len(got) != 2 || got[0] != GPR(0) || got[1] != GPR(1) {
		t.Errorf("ADD uses = %v", got)
	}

	mac := MOP{Op: MAC, Dst: RegAcc, SrcA: GPR(0), SrcB: GPR(1)}
	if got := mac.Uses(); len(got) != 3 {
		t.Errorf("MAC uses = %v, want 3 regs (acc accumulates)", got)
	}

	ld := MOP{Op: LDX, Dst: GPR(4), SrcA: AX(0), Imm: 1}
	defs := ld.DefsAll()
	if len(defs) != 2 || defs[0] != GPR(4) || defs[1] != AX(0) {
		t.Errorf("LDX post-modify DefsAll = %v, want [r4 ax0]", defs)
	}
	ldNoMod := MOP{Op: LDX, Dst: GPR(4), SrcA: AX(0), Imm: 0}
	if got := ldNoMod.DefsAll(); len(got) != 1 {
		t.Errorf("LDX no-modify DefsAll = %v, want 1 reg", got)
	}

	st := MOP{Op: STY, SrcA: GPR(3), SrcB: AY(1), Imm: 1}
	if got := st.DefsAll(); len(got) != 1 || got[0] != AY(1) {
		t.Errorf("STY DefsAll = %v, want [ay1]", got)
	}
	if got := st.Uses(); len(got) != 2 {
		t.Errorf("STY uses = %v", got)
	}
}

func TestMemEffect(t *testing.T) {
	cases := map[Opcode]MemEffect{
		LDX: MemReadX, STX: MemWriteX, LDY: MemReadY, STY: MemWriteY,
		ADD: MemNone, BR: MemNone,
	}
	for op, want := range cases {
		if got := (MOP{Op: op}).Mem(); got != want {
			t.Errorf("%v.Mem() = %v, want %v", op, got, want)
		}
	}
}

func TestPackBlockIndependentOpsShareWord(t *testing.T) {
	// An ALU op, a MUL, an X load, and a Y load with no shared registers
	// must pack into one word.
	ops := []MOP{
		{Op: ADD, Dst: GPR(0), SrcA: GPR(1), SrcB: GPR(2)},
		{Op: MUL, Dst: RegAcc, SrcA: GPR(3), SrcB: GPR(4)},
		{Op: LDX, Dst: GPR(5), SrcA: AX(0), Imm: 1},
		{Op: LDY, Dst: GPR(6), SrcA: AY(0), Imm: 1},
	}
	words := PackBlock(ops)
	if len(words) != 1 {
		t.Fatalf("got %d words, want 1:\n%v", len(words), words)
	}
	if words[0].Used() != 4 {
		t.Errorf("word uses %d fields, want 4", words[0].Used())
	}
}

func TestPackBlockDependencyForcesNewWord(t *testing.T) {
	ops := []MOP{
		{Op: ADD, Dst: GPR(0), SrcA: GPR(1), SrcB: GPR(2)},
		{Op: MUL, Dst: RegAcc, SrcA: GPR(0), SrcB: GPR(3)}, // reads r0
	}
	if words := PackBlock(ops); len(words) != 2 {
		t.Fatalf("got %d words, want 2 (RAW hazard)", len(words))
	}
}

func TestPackBlockFieldConflict(t *testing.T) {
	ops := []MOP{
		{Op: ADD, Dst: GPR(0), SrcA: GPR(1), SrcB: GPR(2)},
		{Op: SUB, Dst: GPR(3), SrcA: GPR(4), SrcB: GPR(5)}, // second ALU op
	}
	if words := PackBlock(ops); len(words) != 2 {
		t.Fatalf("got %d words, want 2 (ALU field conflict)", len(words))
	}
}

func TestPackBlockWAWHazard(t *testing.T) {
	ops := []MOP{
		{Op: LDI, Dst: GPR(0), Imm: 1},
		{Op: ADD, Dst: GPR(0), SrcA: GPR(1), SrcB: GPR(2)}, // writes r0 again
	}
	if words := PackBlock(ops); len(words) != 2 {
		t.Fatalf("got %d words, want 2 (WAW hazard)", len(words))
	}
}

func TestPackBlockCmpBranchSplit(t *testing.T) {
	ops := []MOP{
		{Op: CMP, SrcA: GPR(0), SrcB: GPR(1)},
		{Op: BEQ, Sym: "L1"},
	}
	if words := PackBlock(ops); len(words) != 2 {
		t.Fatalf("got %d words, want 2 (flag hazard)", len(words))
	}
}

func TestPackBlockBranchClosesWord(t *testing.T) {
	ops := []MOP{
		{Op: BR, Sym: "L1"},
		{Op: ADD, Dst: GPR(0), SrcA: GPR(1), SrcB: GPR(2)},
	}
	words := PackBlock(ops)
	if len(words) != 2 {
		t.Fatalf("got %d words, want 2 (nothing packs after a branch)", len(words))
	}
	if words[0].Ops[FieldSeq] == nil || words[1].Ops[FieldALU] == nil {
		t.Error("branch and trailing op placed in wrong words")
	}
}

// TestPackBlockNeverReorders checks, over random MOP sequences, that the
// packed words preserve program order: flattening the words field-by-field
// in emission order yields a permutation that never swaps two ops that
// share a field or have a register dependency.
func TestPackBlockWordCountBounds(t *testing.T) {
	f := func(seed int64) bool {
		ops := randomOps(seed, 24)
		words := PackBlock(ops)
		// One op per word minimum shape: count of ops placed must equal input.
		placed := 0
		for i := range words {
			placed += words[i].Used()
		}
		return placed == len(ops) && len(words) <= len(ops) && (len(ops) == 0 || len(words) >= 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randomOps builds a deterministic pseudo-random straight-line MOP list.
func randomOps(seed int64, n int) []MOP {
	state := uint64(seed)*2654435761 + 1
	next := func(mod int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(mod))
	}
	kinds := []Opcode{ADD, SUB, MUL, MOV, LDI, LDX, LDY, STX, STY}
	ops := make([]MOP, 0, n)
	for i := 0; i < n; i++ {
		op := kinds[next(len(kinds))]
		m := MOP{Op: op}
		switch op {
		case LDX, LDY:
			m.Dst = GPR(next(8))
			if op == LDX {
				m.SrcA = AX(next(4))
			} else {
				m.SrcA = AY(next(4))
			}
			m.Imm = int64(next(2))
		case STX, STY:
			m.SrcA = GPR(next(8))
			if op == STX {
				m.SrcB = AX(next(4))
			} else {
				m.SrcB = AY(next(4))
			}
			m.Imm = int64(next(2))
		case LDI:
			m.Dst = GPR(next(8))
			m.Imm = int64(next(100))
		case MOV:
			m.Dst = GPR(next(8))
			m.SrcA = GPR(next(8))
		default:
			m.Dst = GPR(next(8))
			m.SrcA = GPR(next(8))
			m.SrcB = GPR(next(8))
		}
		ops = append(ops, m)
	}
	return ops
}

func TestValidateGood(t *testing.T) {
	p := NewProgram("main")
	p.Add(&Function{
		Name: "main",
		Blocks: []*Block{
			{Label: "entry", Ops: []MOP{
				{Op: LDI, Dst: GPR(0), Imm: 3},
				{Op: CMP, SrcA: GPR(0), SrcB: GPR(0)},
				{Op: BEQ, Sym: "done"},
			}},
			{Label: "body", Ops: []MOP{{Op: CALL, Sym: "helper"}, {Op: BR, Sym: "done"}}},
			{Label: "done", Ops: []MOP{{Op: RET}}},
		},
	})
	p.Add(&Function{
		Name:   "helper",
		Blocks: []*Block{{Label: "entry", Ops: []MOP{{Op: RET}}}},
	})
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate() = %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		prog func() *Program
	}{
		{"missing entry", func() *Program { return NewProgram("nope") }},
		{"unknown label", func() *Program {
			p := NewProgram("")
			p.Add(&Function{Name: "f", Blocks: []*Block{{Label: "e", Ops: []MOP{{Op: BR, Sym: "missing"}}}}})
			return p
		}},
		{"unknown call", func() *Program {
			p := NewProgram("")
			p.Add(&Function{Name: "f", Blocks: []*Block{{Label: "e", Ops: []MOP{{Op: CALL, Sym: "missing"}}}}})
			return p
		}},
		{"branch mid-block", func() *Program {
			p := NewProgram("")
			p.Add(&Function{Name: "f", Blocks: []*Block{{Label: "e", Ops: []MOP{
				{Op: BR, Sym: "e"},
				{Op: NOP},
			}}}})
			return p
		}},
		{"bad load address reg", func() *Program {
			p := NewProgram("")
			p.Add(&Function{Name: "f", Blocks: []*Block{{Label: "e", Ops: []MOP{
				{Op: LDX, Dst: GPR(0), SrcA: GPR(1)},
			}}}})
			return p
		}},
		{"duplicate label", func() *Program {
			p := NewProgram("")
			p.Add(&Function{Name: "f", Blocks: []*Block{{Label: "e"}, {Label: "e"}}})
			return p
		}},
	}
	for _, c := range cases {
		if err := c.prog().Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", c.name)
		}
	}
}

func TestSuccessors(t *testing.T) {
	f := &Function{
		Name: "f",
		Blocks: []*Block{
			{Label: "a", Ops: []MOP{{Op: CMP}, {Op: BEQ, Sym: "c"}}},
			{Label: "b", Ops: []MOP{{Op: BR, Sym: "a"}}},
			{Label: "c", Ops: []MOP{{Op: RET}}},
			{Label: "d", Ops: []MOP{{Op: NOP}}},
			{Label: "e", Ops: []MOP{{Op: RET}}},
		},
	}
	got := f.Successors(0)
	if len(got) != 2 || got[0] != "c" || got[1] != "b" {
		t.Errorf("Successors(a) = %v, want [c b]", got)
	}
	if got := f.Successors(1); len(got) != 1 || got[0] != "a" {
		t.Errorf("Successors(b) = %v, want [a]", got)
	}
	if got := f.Successors(2); len(got) != 0 {
		t.Errorf("Successors(c) = %v, want []", got)
	}
	if got := f.Successors(3); len(got) != 1 || got[0] != "e" {
		t.Errorf("Successors(d) = %v, want [e] (fallthrough)", got)
	}
}

func TestProgramStringAndCodeWords(t *testing.T) {
	p := NewProgram("")
	p.Add(&Function{Name: "f", Params: []string{"x"}, Blocks: []*Block{
		{Label: "entry", Ops: []MOP{
			{Op: LDI, Dst: GPR(0), Imm: 7},
			{Op: ADD, Dst: GPR(1), SrcA: GPR(0), SrcB: GPR(0)},
			{Op: RET},
		}},
	}})
	s := p.String()
	if !strings.Contains(s, "func f(x):") || !strings.Contains(s, "ldi r0, #7") {
		t.Errorf("String() =\n%s", s)
	}
	// ldi alone (add reads r0), then add and ret pack together.
	if n := p.CodeWords(); n != 2 {
		t.Errorf("CodeWords() = %d, want 2 ({ldi}, {add|ret})", n)
	}
}

func TestCycleCount(t *testing.T) {
	f := &Function{Name: "f", Blocks: []*Block{
		{Label: "e", Ops: []MOP{
			{Op: LDX, Dst: GPR(0), SrcA: AX(0), Imm: 1},
			{Op: LDY, Dst: GPR(1), SrcA: AY(0), Imm: 1},
			{Op: MAC, Dst: RegAcc, SrcA: GPR(0), SrcB: GPR(1)},
		}},
	}}
	cc := f.CycleCount()
	// Loads pack together; MAC depends on both loads → 2 words.
	if cc["e"] != 2 {
		t.Errorf("CycleCount = %d, want 2", cc["e"])
	}
}
