// Package imp builds the implementation-method (IMP) database of Choi et
// al. (DAC 1999), Section 4: for every s-call candidate (a function call
// implementable by an IP, Definition 1) it enumerates the possible
// implementation methods — each a combination of IP, interface method,
// and optionally a parallel code — with their performance gain and area.
//
// The generator also performs the paper's two structural analyses:
//
//   - *IMP flattening* for hierarchical calls: IMPs for a lower-level
//     s-call (e.g. the FFT inside a 1D-DCT inside a 2D-DCT) are lifted
//     into IMPs of the upper-level s-call that keep the rest of the
//     callee in software;
//   - *SC-PC conflict* computation for Problem 2: an IMP that uses the
//     software body of s-call S as its parallel code conflicts with
//     every IMP that implements S in hardware.
package imp

import (
	"fmt"
	"sort"

	"partita/internal/cdfg"
	"partita/internal/cprog"
	"partita/internal/iface"
	"partita/internal/ip"
	"partita/internal/kernel"
)

// SCall is one s-call candidate: a group of call sites to the same
// function that must be implemented the same way. Under Problem 1 all
// sites of a function form one group; under Problem 2 every site is its
// own group (s-calls to the same function may be implemented in
// different ways).
type SCall struct {
	// Index is the SC number (SC1, SC2, ... in the paper's tables).
	Index int
	// Func is the callee.
	Func string
	// Sites are the call nodes in the root function's graph.
	Sites []*cdfg.Node
	// TSW is the software execution time of one call (T_SW).
	TSW int64
	// NIn/NOut are the data items moved per invocation.
	NIn, NOut int
	// TotalFreq is the summed execution frequency of all sites.
	TotalFreq int64
	// PC1 and PC2 are the guaranteed parallel codes under Problem 1
	// (no s-calls inside) and Problem 2 (software s-calls allowed).
	PC1, PC2 cdfg.PCResult
}

// Name returns the paper-style label ("SC3").
func (s *SCall) Name() string { return fmt.Sprintf("SC%d", s.Index) }

// IMP is one implementation method for an s-call.
type IMP struct {
	// ID is a stable label like "SC3:IP12,IF0".
	ID string
	SC *SCall
	IP *ip.IP
	// Cand carries the interface type with its timing/area breakdown.
	Cand iface.Candidate
	// GainPerExec is the cycle gain of one execution of the s-call.
	GainPerExec int64
	// TotalGain is GainPerExec summed over all site frequencies.
	TotalGain int64
	// IfaceArea is the interface's area contribution (A_CNT + A_B + PT);
	// the IP's own area is shared via the fixed-charge formulation.
	IfaceArea float64
	// UsesPC marks methods that exploit a parallel code.
	UsesPC bool
	// PCSCalls lists the s-call nodes whose software bodies the parallel
	// code contains (non-empty only for Problem-2 methods); these induce
	// SC-PC conflicts.
	PCSCalls []*cdfg.Node
	// Flattened is non-empty for hierarchy-flattened methods: it names
	// the inner function whose calls the IP implements while the rest of
	// the outer callee stays in software.
	Flattened string
}

// DB is the generated database plus the structures the selector needs.
type DB struct {
	Root   string
	SCalls []*SCall
	IMPs   []*IMP
	// Paths lists, per execution path of the root function, the call
	// nodes on it (used for the per-path gain constraints, Eq. 2).
	Paths [][]*cdfg.Node
	// Conflicts are index pairs into IMPs that may not both be selected
	// (SC-PC conflicts, Problem 2's selection rule).
	Conflicts [][2]int
	// Graph is the root function's CDFG.
	Graph *cdfg.Graph
}

// Config controls database generation.
type Config struct {
	Catalog *ip.Catalog
	Area    kernel.AreaModel
	// DataCount reports the data items one invocation of fn moves
	// through an accelerator (inputs, outputs). When nil, a heuristic
	// derived from the callee's loop structure is used.
	DataCount func(fn string) (nIn, nOut int)
	// Problem2 enables per-site s-calls, software-s-call parallel codes,
	// and conflict generation. Problem 1 restrictions apply otherwise.
	Problem2 bool
	// MaxFlattenDepth bounds hierarchy flattening (default 3).
	MaxFlattenDepth int
	// CDFG carries graph-construction options.
	CDFG cdfg.Options
}

// Generate builds the IMP database for the root function of the program.
func Generate(info *cprog.Info, root string, cfg Config) (*DB, error) {
	if cfg.Catalog == nil {
		return nil, fmt.Errorf("imp: nil IP catalog")
	}
	if cfg.MaxFlattenDepth <= 0 {
		cfg.MaxFlattenDepth = 3
	}
	if cfg.CDFG.MaxPaths == 0 {
		cfg.CDFG = cdfg.DefaultOptions()
	}
	g, err := cdfg.Build(info, root, cfg.CDFG)
	if err != nil {
		return nil, err
	}
	db := &DB{Root: root, Graph: g}

	accelerable := func(fn string) bool { return len(cfg.Catalog.For(fn)) > 0 }
	// A call is an s-call candidate if an IP implements it directly or
	// (through flattening) implements something inside it.
	isSC := func(fn string) bool {
		return accelerable(fn) || len(flattenTargets(info, fn, cfg, 1)) > 0
	}

	// Group call sites into SCalls.
	groups := map[string][]*cdfg.Node{}
	var order []string
	for _, c := range g.Calls {
		if !isSC(c.Name) {
			continue
		}
		key := c.Name
		if cfg.Problem2 {
			key = fmt.Sprintf("%s#%d", c.Name, c.Site)
		}
		if _, seen := groups[key]; !seen {
			order = append(order, key)
		}
		groups[key] = append(groups[key], c)
	}

	pcOpts := cdfg.PCOptions{IsSCall: isSC, MaxPaths: cfg.CDFG.MaxPaths}
	for i, key := range order {
		sites := groups[key]
		fn := sites[0].Name
		tsw := sites[0].Cost
		nIn, nOut := dataCount(info, fn, cfg)
		sc := &SCall{
			Index: i + 1,
			Func:  fn,
			Sites: sites,
			TSW:   tsw,
			NIn:   nIn,
			NOut:  nOut,
		}
		for _, s := range sites {
			sc.TotalFreq += s.Freq
		}
		sc.PC1 = minPC(g, sites, cdfg.PCOptions{IsSCall: isSC, MaxPaths: pcOpts.MaxPaths, AllowSCalls: false})
		if cfg.Problem2 {
			sc.PC2 = minPC(g, sites, cdfg.PCOptions{IsSCall: isSC, MaxPaths: pcOpts.MaxPaths, AllowSCalls: true})
		}
		db.SCalls = append(db.SCalls, sc)
	}

	// Enumerate IMPs.
	for _, sc := range db.SCalls {
		db.addDirectIMPs(sc, cfg)
		db.addFlattenedIMPs(info, sc, cfg)
	}

	// Execution paths (call nodes only).
	db.Paths = g.PathGainDemand(cfg.CDFG.MaxPaths)

	// SC-PC conflicts.
	if cfg.Problem2 {
		db.computeConflicts()
	}
	return db, nil
}

// addDirectIMPs enumerates (IP × interface × PC-use) methods that
// implement the s-call's own function.
func (db *DB) addDirectIMPs(sc *SCall, cfg Config) {
	for _, blk := range cfg.Catalog.For(sc.Func) {
		base := iface.Shape{NIn: sc.NIn, NOut: sc.NOut, TSW: sc.TSW}
		for t := iface.Type0; t < iface.NumTypes; t++ {
			cand, ok := iface.Plan(t, blk, base, cfg.Area)
			if !ok {
				continue
			}
			db.appendIMP(sc, blk, cand, false, nil, "")
			if t.SupportsParallel() {
				// Variant with Problem-1 parallel code.
				if sc.PC1.Cost > 0 {
					s := base
					s.TC = sc.PC1.Cost
					if cp, ok := iface.Plan(t, blk, s, cfg.Area); ok && cp.Gain > cand.Gain {
						db.appendIMP(sc, blk, cp, true, nil, "")
					}
				}
				// Variant with Problem-2 parallel code (software s-calls
				// inside).
				if cfg.Problem2 && sc.PC2.Cost > sc.PC1.Cost && len(sc.PC2.SCallNodes) > 0 {
					s := base
					s.TC = sc.PC2.Cost
					if cp, ok := iface.Plan(t, blk, s, cfg.Area); ok && cp.Gain > cand.Gain {
						db.appendIMP(sc, blk, cp, true, sc.PC2.SCallNodes, "")
					}
				}
			}
		}
	}
}

// flattenTargets lists inner functions of fn (transitively, up to depth)
// that have IPs in the catalog.
func flattenTargets(info *cprog.Info, fn string, cfg Config, depth int) []string {
	if depth > cfg.MaxFlattenDepth {
		return nil
	}
	fi := info.Funcs[fn]
	if fi == nil {
		return nil
	}
	seen := map[string]bool{}
	var out []string
	for _, callee := range fi.Calls {
		if seen[callee] {
			continue
		}
		seen[callee] = true
		if len(cfg.Catalog.For(callee)) > 0 {
			out = append(out, callee)
		}
		out = append(out, flattenTargets(info, callee, cfg, depth+1)...)
	}
	// Dedup while preserving order.
	dedup := map[string]bool{}
	var uniq []string
	for _, f := range out {
		if !dedup[f] {
			dedup[f] = true
			uniq = append(uniq, f)
		}
	}
	sort.Strings(uniq)
	return uniq
}

// addFlattenedIMPs lifts lower-level IMPs into the s-call (IMP flatten):
// implement every call to `inner` inside the callee with an IP while the
// remaining callee code stays in software.
func (db *DB) addFlattenedIMPs(info *cprog.Info, sc *SCall, cfg Config) {
	for _, inner := range flattenTargets(info, sc.Func, cfg, 1) {
		if inner == sc.Func {
			continue
		}
		count, innerTSW := countDynamicCalls(info, sc.Func, inner, cfg)
		if count == 0 {
			continue
		}
		nIn, nOut := dataCount(info, inner, cfg)
		for _, blk := range cfg.Catalog.For(inner) {
			shape := iface.Shape{NIn: nIn, NOut: nOut, TSW: innerTSW}
			for t := iface.Type0; t < iface.NumTypes; t++ {
				cand, ok := iface.Plan(t, blk, shape, cfg.Area)
				if !ok || cand.Gain <= 0 {
					continue
				}
				// One execution of the outer s-call saves count ×
				// inner-gain cycles; the interface/IP cost is paid once.
				lifted := cand
				lifted.Gain = cand.Gain * count
				lifted.Exec = sc.TSW - lifted.Gain
				db.appendIMP(sc, blk, lifted, false, nil, inner)
			}
		}
	}
}

// countDynamicCalls counts how many times one execution of outer invokes
// inner (transitively), and returns inner's software time.
func countDynamicCalls(info *cprog.Info, outer, inner string, cfg Config) (int64, int64) {
	g, err := cdfg.Build(info, outer, cfg.CDFG)
	if err != nil {
		return 0, 0
	}
	var count int64
	var tsw int64
	for _, c := range g.Calls {
		if c.Name == inner {
			count += c.Freq
			tsw = c.Cost
			continue
		}
		// Recurse through intermediate levels.
		sub, subTSW := countDynamicCalls(info, c.Name, inner, cfg)
		if sub > 0 {
			count += sub * c.Freq
			tsw = subTSW
		}
	}
	return count, tsw
}

func (db *DB) appendIMP(sc *SCall, blk *ip.IP, cand iface.Candidate, usesPC bool, pcSCalls []*cdfg.Node, flattened string) {
	if cand.Gain <= 0 {
		return // useless method; software is at least as fast
	}
	id := fmt.Sprintf("%s:%s,%s", sc.Name(), blk.ID, cand.Type)
	if usesPC {
		id += "+PC"
	}
	if flattened != "" {
		id += "(via " + flattened + ")"
	}
	m := &IMP{
		ID:          id,
		SC:          sc,
		IP:          blk,
		Cand:        cand,
		GainPerExec: cand.Gain,
		TotalGain:   cand.Gain * sc.TotalFreq,
		IfaceArea:   cand.IfaceArea,
		UsesPC:      usesPC,
		PCSCalls:    pcSCalls,
		Flattened:   flattened,
	}
	db.IMPs = append(db.IMPs, m)
}

// minPC computes the guaranteed parallel code across all sites of an
// s-call group (the minimum, so the gain holds for every site and path).
func minPC(g *cdfg.Graph, sites []*cdfg.Node, opt cdfg.PCOptions) cdfg.PCResult {
	var best cdfg.PCResult
	first := true
	for _, s := range sites {
		r := cdfg.ParallelCode(g, s, opt)
		if first || r.Cost < best.Cost {
			best = r
			first = false
		}
	}
	return best
}

// computeConflicts links every Problem-2 IMP whose PC contains the
// software body of s-call node N with every IMP implementing N in
// hardware.
func (db *DB) computeConflicts() {
	siteOwner := map[*cdfg.Node]*SCall{}
	for _, sc := range db.SCalls {
		for _, s := range sc.Sites {
			siteOwner[s] = sc
		}
	}
	for i, a := range db.IMPs {
		for _, node := range a.PCSCalls {
			owner := siteOwner[node]
			if owner == nil {
				continue
			}
			for j, b := range db.IMPs {
				if j == i || b.SC != owner {
					continue
				}
				lo, hi := i, j
				if lo > hi {
					lo, hi = hi, lo
				}
				db.Conflicts = append(db.Conflicts, [2]int{lo, hi})
			}
		}
	}
	// Dedup.
	seen := map[[2]int]bool{}
	var out [][2]int
	for _, c := range db.Conflicts {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	db.Conflicts = out
}

// dataCount resolves the per-invocation data volume of fn.
func dataCount(info *cprog.Info, fn string, cfg Config) (int, int) {
	if cfg.DataCount != nil {
		if in, out := cfg.DataCount(fn); in > 0 || out > 0 {
			return in, out
		}
	}
	// Heuristic: the deepest static loop trip count in the callee is the
	// data-set size; in and out default to the same volume.
	n := maxTrips(info, fn, cfg)
	if n <= 0 {
		n = int64(8)
	}
	return int(n), int(n)
}

func maxTrips(info *cprog.Info, fn string, cfg Config) int64 {
	n, err := cdfg.MaxStaticTrips(info, fn, cfg.CDFG)
	if err != nil {
		return 0
	}
	return n
}

// Filter returns a copy of the database keeping only methods for which
// keep returns true. S-calls, paths and the graph are shared; conflicts
// are re-derived over the surviving methods. Used by the ablation
// experiments (e.g. "no parallel-code methods", "type-0 interfaces
// only").
func (db *DB) Filter(keep func(*IMP) bool) *DB {
	out := &DB{Root: db.Root, SCalls: db.SCalls, Paths: db.Paths, Graph: db.Graph}
	for _, m := range db.IMPs {
		if keep(m) {
			out.IMPs = append(out.IMPs, m)
		}
	}
	out.computeConflicts()
	return out
}

// IMPsFor returns the methods of one s-call.
func (db *DB) IMPsFor(sc *SCall) []*IMP {
	var out []*IMP
	for _, m := range db.IMPs {
		if m.SC == sc {
			out = append(out, m)
		}
	}
	return out
}
