package imp

import (
	"fmt"

	"partita/internal/cdfg"
	"partita/internal/iface"
	"partita/internal/ip"
)

// SynthIMP describes one implementation method for NewSyntheticDB.
type SynthIMP struct {
	// SC is the 1-based s-call index the method implements.
	SC int
	// IP is the block used (blocks may be shared across methods).
	IP *ip.IP
	// Type is the interface method.
	Type iface.Type
	// Gain is the total performance gain of selecting this method.
	Gain int64
	// IfaceArea is the interface's area (the IP's area is shared).
	IfaceArea float64
	// UsesPC marks parallel-code methods.
	UsesPC bool
	// Flattened names the inner function for hierarchy-lifted methods.
	Flattened string
	// PCOf lists 1-based s-call indices whose software implementations
	// this method uses as parallel code (SC-PC conflict sources).
	PCOf []int
}

// NewSyntheticDB builds an IMP database directly from descriptors. It is
// used by the paper-calibrated experiments (Tables 1-3), where the IMP
// gains and areas are transcribed from the publication rather than
// derived from a compiled workload, and by tests that need precise
// control over the search space.
//
// Each s-call gets one synthetic call-site node with frequency 1, and a
// single execution path covers all s-calls (the paper's tables constrain
// one required gain for the whole application).
func NewSyntheticDB(scFuncs []string, imps []SynthIMP) (*DB, error) {
	db := &DB{Root: "synthetic"}
	var allSites []*cdfg.Node
	for i, fn := range scFuncs {
		node := &cdfg.Node{
			ID:    i,
			Kind:  cdfg.NodeCall,
			Name:  fn,
			Freq:  1,
			Site:  i,
			Reads: map[string]bool{}, Writes: map[string]bool{},
		}
		sc := &SCall{
			Index:     i + 1,
			Func:      fn,
			Sites:     []*cdfg.Node{node},
			TotalFreq: 1,
		}
		db.SCalls = append(db.SCalls, sc)
		allSites = append(allSites, node)
	}
	db.Paths = [][]*cdfg.Node{allSites}

	for _, s := range imps {
		if s.SC < 1 || s.SC > len(db.SCalls) {
			return nil, fmt.Errorf("imp: synthetic method references unknown s-call %d", s.SC)
		}
		if s.IP == nil {
			return nil, fmt.Errorf("imp: synthetic method for SC%d has nil IP", s.SC)
		}
		sc := db.SCalls[s.SC-1]
		id := fmt.Sprintf("%s:%s,%s", sc.Name(), s.IP.ID, s.Type)
		if s.UsesPC {
			id += "+PC"
		}
		if s.Flattened != "" {
			id += "(via " + s.Flattened + ")"
		}
		m := &IMP{
			ID: id,
			SC: sc,
			IP: s.IP,
			Cand: iface.Candidate{
				Type: s.Type,
				IP:   s.IP,
				Gain: s.Gain,
			},
			GainPerExec: s.Gain,
			TotalGain:   s.Gain,
			IfaceArea:   s.IfaceArea,
			UsesPC:      s.UsesPC,
			Flattened:   s.Flattened,
		}
		for _, pcSC := range s.PCOf {
			if pcSC < 1 || pcSC > len(db.SCalls) {
				return nil, fmt.Errorf("imp: synthetic method %s references unknown PC s-call %d", id, pcSC)
			}
			m.PCSCalls = append(m.PCSCalls, db.SCalls[pcSC-1].Sites[0])
		}
		db.IMPs = append(db.IMPs, m)
	}
	db.computeConflicts()
	return db, nil
}
