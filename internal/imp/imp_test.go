package imp

import (
	"strings"
	"testing"

	"partita/internal/cdfg"
	"partita/internal/cprog"
	"partita/internal/iface"
	"partita/internal/ip"
	"partita/internal/kernel"
)

const workload = `
xmem int xin[64];
ymem int coef[16];
xmem int fout[64];
ymem int dout[64];
xmem int qout[64];
int u; int v;

int fir(xmem int a[], ymem int c[], xmem int o[]) {
	int i; int j; int acc;
	for (i = 0; i < 48; i = i + 1) {
		acc = 0;
		for (j = 0; j < 16; j = j + 1) { acc = acc + a[i + j] * c[j]; }
		o[i] = acc >> 15;
	}
	return o[0];
}
int dct(xmem int a[], ymem int o[]) {
	int k; int i; int s;
	for (k = 0; k < 8; k = k + 1) {
		s = 0;
		for (i = 0; i < 8; i = i + 1) { s = s + a[i] * (k + i); }
		o[k] = s;
	}
	return o[0];
}
int quant(xmem int a[], xmem int o[]) {
	int i;
	for (i = 0; i < 64; i = i + 1) { o[i] = a[i] / 3; }
	return o[0];
}
int codec(xmem int a[], ymem int o[]) {
	int r1; int r2;
	r1 = dct(a, o);        // hierarchy: codec calls dct
	r2 = r1 + o[0];
	return r2;
}
int top() {
	int r; int d; int q;
	r = fir(xin, coef, fout);
	u = v * 13 + 7;              // independent of fir → PC candidate
	d = codec(fout, dout);
	q = quant(qout, qout);
	return r + d + q + u;
}
`

func catalog(t *testing.T) *ip.Catalog {
	t.Helper()
	mk := func(id string, area float64, rate int, funcs ...string) *ip.IP {
		return &ip.IP{ID: id, Name: id, Funcs: funcs, InPorts: 2, OutPorts: 2,
			InRate: rate, OutRate: rate, Latency: 8, Pipelined: true, Area: area}
	}
	c, err := ip.NewCatalog(
		mk("IP1", 3, 4, "fir"),
		mk("IP2", 5, 2, "dct"),
		mk("IP3", 8, 2, "fir", "dct"), // M-IP
	)
	if err != nil {
		t.Fatal(err)
	}
	c.Get("IP3").PerfFactor = 1.5
	return c
}

func gen(t *testing.T, problem2 bool) (*DB, *cprog.Info) {
	t.Helper()
	f, err := cprog.Parse(workload)
	if err != nil {
		t.Fatal(err)
	}
	info, err := cprog.Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Generate(info, "top", Config{
		Catalog:  catalog(t),
		Area:     kernel.DefaultArea(),
		Problem2: problem2,
		CDFG:     cdfg.DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, info
}

func TestSCallDetection(t *testing.T) {
	db, _ := gen(t, false)
	names := map[string]bool{}
	for _, sc := range db.SCalls {
		names[sc.Func] = true
	}
	// s-calls are the calls of the root function: fir directly, codec
	// through hierarchy. dct is not called from top.
	if !names["fir"] {
		t.Errorf("s-calls = %v, want fir", names)
	}
	// quant has no IP and contains no accelerable calls → not an s-call.
	if names["quant"] {
		t.Error("quant should not be an s-call candidate")
	}
	// codec has no direct IP but contains dct → s-call via flattening.
	if !names["codec"] {
		t.Error("codec should be an s-call candidate through hierarchy")
	}
}

func TestDirectIMPEnumeration(t *testing.T) {
	db, _ := gen(t, false)
	var fir *SCall
	for _, sc := range db.SCalls {
		if sc.Func == "fir" {
			fir = sc
		}
	}
	if fir == nil {
		t.Fatal("no fir s-call")
	}
	imps := db.IMPsFor(fir)
	if len(imps) == 0 {
		t.Fatal("no IMPs for fir")
	}
	// Both the S-IP (IP1) and the M-IP (IP3) must appear.
	ips := map[string]bool{}
	types := map[iface.Type]bool{}
	for _, m := range imps {
		ips[m.IP.ID] = true
		types[m.Cand.Type] = true
		if m.GainPerExec <= 0 {
			t.Errorf("%s has non-positive gain", m.ID)
		}
		if m.TotalGain != m.GainPerExec*fir.TotalFreq {
			t.Errorf("%s: TotalGain %d != GainPerExec %d × freq %d", m.ID, m.TotalGain, m.GainPerExec, fir.TotalFreq)
		}
	}
	if !ips["IP1"] || !ips["IP3"] {
		t.Errorf("fir IMP IPs = %v, want IP1 and IP3", ips)
	}
	if len(types) < 2 {
		t.Errorf("interface types used = %v, want several", types)
	}
}

func TestParallelCodeVariantExists(t *testing.T) {
	db, _ := gen(t, false)
	foundPC := false
	for _, m := range db.IMPs {
		if m.UsesPC {
			foundPC = true
			if !m.Cand.Type.SupportsParallel() {
				t.Errorf("%s uses PC on non-parallel interface %v", m.ID, m.Cand.Type)
			}
			if len(m.PCSCalls) != 0 {
				t.Errorf("Problem-1 method %s has software-s-call PC", m.ID)
			}
		}
	}
	if !foundPC {
		t.Error("no parallel-code IMP generated; u=v*13+7 should be a PC for fir")
	}
}

func TestFlattenedIMPs(t *testing.T) {
	db, _ := gen(t, false)
	var codec *SCall
	for _, sc := range db.SCalls {
		if sc.Func == "codec" {
			codec = sc
		}
	}
	if codec == nil {
		t.Fatal("no codec s-call")
	}
	imps := db.IMPsFor(codec)
	flattened := 0
	for _, m := range imps {
		if m.Flattened == "dct" {
			flattened++
			if !strings.Contains(m.ID, "via dct") {
				t.Errorf("flattened IMP ID %q lacks marker", m.ID)
			}
			if m.GainPerExec >= codec.TSW {
				t.Errorf("flattened gain %d must be below outer TSW %d", m.GainPerExec, codec.TSW)
			}
		}
	}
	if flattened == 0 {
		t.Error("no hierarchy-flattened IMPs for codec (should lift dct IPs)")
	}
}

func TestProblem2GeneratesConflicts(t *testing.T) {
	db, _ := gen(t, true)
	// Problem 2 splits sites and allows software-s-call PCs. The fir
	// call and the codec call are independent (disjoint arrays? fout is
	// shared — fir writes fout, codec reads it, so they conflict; quant
	// uses qout only but is not an s-call). Whether a software-PC method
	// arises depends on independence; conflicts must be consistent:
	for _, c := range db.Conflicts {
		a, b := db.IMPs[c[0]], db.IMPs[c[1]]
		if len(a.PCSCalls) == 0 && len(b.PCSCalls) == 0 {
			t.Errorf("conflict (%s, %s) without any software-PC method", a.ID, b.ID)
		}
	}
	// Per-site grouping: every SCall must have exactly one site.
	for _, sc := range db.SCalls {
		if len(sc.Sites) != 1 {
			t.Errorf("%s has %d sites under Problem 2", sc.Name(), len(sc.Sites))
		}
	}
}

func TestPathsCoverCalls(t *testing.T) {
	db, _ := gen(t, false)
	if len(db.Paths) == 0 {
		t.Fatal("no paths")
	}
	// top is straight-line → one path with all three s-calls (fir,
	// codec, quant-call is not an s-call but still a call node).
	calls := db.Paths[0]
	if len(calls) < 3 {
		t.Errorf("path calls = %d, want >= 3", len(calls))
	}
}

func TestDataCountHeuristic(t *testing.T) {
	db, _ := gen(t, false)
	for _, sc := range db.SCalls {
		if sc.Func == "fir" {
			// fir's deepest loop nest runs 48×16 = 768 iterations.
			if sc.NIn < 48 {
				t.Errorf("fir NIn = %d, want >= 48 (loop-derived)", sc.NIn)
			}
		}
	}
}

func TestDataCountOverride(t *testing.T) {
	f, _ := cprog.Parse(workload)
	info, _ := cprog.Analyze(f)
	db, err := Generate(info, "top", Config{
		Catalog: catalog(t),
		Area:    kernel.DefaultArea(),
		DataCount: func(fn string) (int, int) {
			if fn == "fir" {
				return 160, 160
			}
			return 0, 0
		},
		CDFG: cdfg.DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range db.SCalls {
		if sc.Func == "fir" && (sc.NIn != 160 || sc.NOut != 160) {
			t.Errorf("fir data count = (%d, %d), want (160, 160)", sc.NIn, sc.NOut)
		}
	}
}

func TestFilter(t *testing.T) {
	db, _ := gen(t, true)
	total := len(db.IMPs)
	noPC := db.Filter(func(m *IMP) bool { return !m.UsesPC })
	if len(noPC.IMPs) >= total {
		t.Errorf("filter removed nothing (%d of %d)", len(noPC.IMPs), total)
	}
	for _, m := range noPC.IMPs {
		if m.UsesPC {
			t.Errorf("filtered DB still contains PC method %s", m.ID)
		}
	}
	// Conflicts must be re-derived: a DB without software-PC methods has
	// no SC-PC conflicts.
	onlyPlain := db.Filter(func(m *IMP) bool { return len(m.PCSCalls) == 0 })
	if len(onlyPlain.Conflicts) != 0 {
		t.Errorf("conflicts survived filtering: %v", onlyPlain.Conflicts)
	}
	// Shared structures intact.
	if onlyPlain.Graph != db.Graph || len(onlyPlain.SCalls) != len(db.SCalls) {
		t.Error("filter must share s-calls and graph")
	}
}

func TestGenerateErrors(t *testing.T) {
	f, _ := cprog.Parse(workload)
	info, _ := cprog.Analyze(f)
	if _, err := Generate(info, "nope", Config{Catalog: catalog(t)}); err == nil {
		t.Error("unknown root accepted")
	}
	if _, err := Generate(info, "top", Config{}); err == nil {
		t.Error("nil catalog accepted")
	}
}
