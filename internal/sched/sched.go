// Package sched performs the code motion the selection result implies:
// Definition 5 of Choi et al. (DAC 1999) defines a parallel code as the
// largest independent code segment *that can be arranged right after the
// s-call*, so after the ILP picks a parallel-code method the kernel code
// must actually be rescheduled — the PC nodes move to sit immediately
// after their s-call, where the generated S-instruction overlaps them
// with the IP run (the "codes that will run in kernel while IP runs
// come here" slot of the Fig. 5/7 templates).
//
// Plan produces the reordered execution sequence for one path and
// Verify proves the motion legal: every dependent pair keeps its
// original relative order.
package sched

import (
	"fmt"
	"strings"

	"partita/internal/cdfg"
	"partita/internal/imp"
)

// Entry is one slot of the scheduled sequence.
type Entry struct {
	Node *cdfg.Node
	// ParallelWith is the s-call node this entry overlaps with (the
	// entry is parallel code running while that call's IP computes);
	// nil for serial code.
	ParallelWith *cdfg.Node
	// Accel is the implementation method of Node when it is an
	// accelerated s-call; nil otherwise.
	Accel *imp.IMP
}

func (e Entry) String() string {
	switch {
	case e.Accel != nil:
		return fmt.Sprintf("S-instr %s", e.Accel.ID)
	case e.ParallelWith != nil:
		return fmt.Sprintf("%s  ∥ %s", e.Node, e.ParallelWith.Name)
	default:
		return e.Node.String()
	}
}

// Plan reorders path pathIdx of the database's root function so that the
// parallel code of every chosen PC-method immediately follows its
// s-call. The motion is verified before returning.
func Plan(db *imp.DB, chosen []*imp.IMP, pathIdx int) ([]Entry, error) {
	paths := db.Graph.Paths(64)
	if pathIdx < 0 || pathIdx >= len(paths) {
		return nil, fmt.Errorf("sched: path %d out of range (%d paths)", pathIdx, len(paths))
	}
	path := paths[pathIdx]

	accel := map[*cdfg.Node]*imp.IMP{}
	for _, m := range chosen {
		for _, site := range m.SC.Sites {
			accel[site] = m
		}
	}

	// For each accelerated PC-method on this path, the set of nodes to
	// pull in right after the call.
	pcOf := map[*cdfg.Node]*cdfg.Node{} // pc node → its s-call
	for _, n := range path {
		m := accel[n]
		if m == nil || !m.UsesPC {
			continue
		}
		pc := m.SC.PC1
		if len(m.PCSCalls) > 0 {
			pc = m.SC.PC2
		}
		for _, pcNode := range pc.Nodes {
			if _, taken := pcOf[pcNode]; !taken {
				pcOf[pcNode] = n
			}
		}
	}

	var out []Entry
	emitted := map[*cdfg.Node]bool{}
	for _, n := range path {
		if emitted[n] {
			continue
		}
		if call, isPC := pcOf[n]; isPC && !emitted[call] {
			// Defer: this node moves to right after its s-call.
			_ = call
			continue
		}
		emitted[n] = true
		out = append(out, Entry{Node: n, Accel: accel[n]})
		if accel[n] != nil && accel[n].UsesPC {
			// Pull the parallel code in, in original order.
			for _, pcNode := range path {
				if pcOf[pcNode] == n && !emitted[pcNode] {
					emitted[pcNode] = true
					out = append(out, Entry{Node: pcNode, ParallelWith: n})
				}
			}
		}
	}
	// Anything deferred whose call never appeared on this path runs in
	// its original position (append leftovers in order).
	for _, n := range path {
		if !emitted[n] {
			emitted[n] = true
			out = append(out, Entry{Node: n, Accel: accel[n]})
		}
	}

	if err := Verify(path, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Verify checks that the schedule preserves the relative order of every
// dependent node pair of the original path.
func Verify(original cdfg.Path, schedule []Entry) error {
	origPos := map[*cdfg.Node]int{}
	for i, n := range original {
		origPos[n] = i
	}
	newPos := map[*cdfg.Node]int{}
	for i, e := range schedule {
		newPos[e.Node] = i
	}
	if len(newPos) != len(origPos) {
		return fmt.Errorf("sched: schedule has %d distinct nodes, path has %d", len(newPos), len(origPos))
	}
	clo := cdfg.DepClosure(original)
	for i := range original {
		for j := i + 1; j < len(original); j++ {
			if !clo.Reaches(i, j) {
				continue
			}
			if newPos[original[i]] > newPos[original[j]] {
				return fmt.Errorf("sched: dependence %v → %v inverted by the schedule",
					original[i], original[j])
			}
		}
	}
	return nil
}

// Render prints the schedule with overlap annotations.
func Render(schedule []Entry) string {
	var b strings.Builder
	for i, e := range schedule {
		marker := " "
		if e.ParallelWith != nil {
			marker = "∥"
		}
		fmt.Fprintf(&b, "%3d %s %s\n", i, marker, e)
	}
	return b.String()
}
