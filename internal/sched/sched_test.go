package sched

import (
	"strings"
	"testing"

	"partita/internal/apps"
	"partita/internal/cdfg"
	"partita/internal/ilp"
	"partita/internal/imp"
	"partita/internal/selector"
)

// buildWithPC returns a built workload plus a selection that uses at
// least one parallel-code method (forcing the maximum reachable gain so
// the PC variants win).
func buildWithPC(t *testing.T) (*apps.Built, *selector.Selection) {
	t.Helper()
	w, err := apps.GSMEncoderWorkload()
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Build(false)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := selector.Solve(selector.Problem{DB: b.DB, Required: selector.MaxReachableGain(b.DB)})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Status != ilp.Optimal {
		t.Fatalf("status %v", sel.Status)
	}
	return b, sel
}

func TestPlanPlacesPCAfterCall(t *testing.T) {
	w, err := apps.GSMEncoderWorkload()
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Build(false)
	if err != nil {
		t.Fatal(err)
	}
	// Force a parallel-code method by choosing it directly.
	var pcMethod *imp.IMP
	for _, m := range b.DB.IMPs {
		if m.UsesPC {
			pcMethod = m
			break
		}
	}
	if pcMethod == nil {
		t.Fatal("database has no PC method; the encoder's bookkeeping should produce one")
	}
	schedule, err := Plan(b.DB, []*imp.IMP{pcMethod}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Find the s-call entry; the following entries must be its parallel
	// code until the PC is exhausted.
	callIdx := -1
	for i, e := range schedule {
		if e.Accel == pcMethod {
			callIdx = i
			break
		}
	}
	if callIdx < 0 {
		t.Fatal("accelerated s-call missing from schedule")
	}
	pcNodes := pcMethod.SC.PC1.Nodes
	if len(pcMethod.PCSCalls) > 0 {
		pcNodes = pcMethod.SC.PC2.Nodes
	}
	if len(pcNodes) == 0 {
		t.Fatal("PC method without PC nodes")
	}
	want := map[*cdfg.Node]bool{}
	for _, n := range pcNodes {
		want[n] = true
	}
	got := 0
	for i := callIdx + 1; i < len(schedule) && schedule[i].ParallelWith != nil; i++ {
		if !want[schedule[i].Node] {
			t.Errorf("entry %d marked parallel but not in the PC: %v", i, schedule[i].Node)
		}
		got++
	}
	if got == 0 {
		t.Error("no parallel entries placed after the s-call")
	}
}

func TestPlanVerifiesDependences(t *testing.T) {
	b, sel := buildWithPC(t)
	schedule, err := Plan(b.DB, sel.Chosen, 0)
	if err != nil {
		t.Fatal(err)
	}
	paths := b.DB.Graph.Paths(64)
	if err := Verify(paths[0], schedule); err != nil {
		t.Fatal(err)
	}
	if s := Render(schedule); !strings.Contains(s, "S-instr") {
		t.Errorf("render lacks S-instruction markers:\n%s", s)
	}
}

func TestVerifyCatchesInversion(t *testing.T) {
	mk := func(name string, reads, writes []string) *cdfg.Node {
		n := &cdfg.Node{Name: name, Freq: 1, Reads: map[string]bool{}, Writes: map[string]bool{}}
		for _, r := range reads {
			n.Reads[r] = true
		}
		for _, w := range writes {
			n.Writes[w] = true
		}
		return n
	}
	a := mk("a", nil, []string{"x"})
	b := mk("b", []string{"x"}, nil)
	path := cdfg.Path{a, b}
	bad := []Entry{{Node: b}, {Node: a}}
	if err := Verify(path, bad); err == nil {
		t.Fatal("inverted dependence accepted")
	}
	good := []Entry{{Node: a}, {Node: b}}
	if err := Verify(path, good); err != nil {
		t.Fatalf("legal schedule rejected: %v", err)
	}
}

func TestPlanWithoutPCKeepsOrder(t *testing.T) {
	w, err := apps.GSMDecoderWorkload()
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Build(false)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := selector.Solve(selector.Problem{DB: b.DB, Required: selector.MaxReachableGain(b.DB) / 4})
	if err != nil {
		t.Fatal(err)
	}
	schedule, err := Plan(b.DB, sel.Chosen, 0)
	if err != nil {
		t.Fatal(err)
	}
	paths := b.DB.Graph.Paths(64)
	hasPC := false
	for _, m := range sel.Chosen {
		if m.UsesPC {
			hasPC = true
		}
	}
	if !hasPC {
		for i, e := range schedule {
			if e.Node != paths[0][i] {
				t.Fatalf("order changed without any PC method at %d", i)
			}
		}
	}
}
