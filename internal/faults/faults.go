// Package faults is a deterministic, seed-driven fault-injection layer
// for exercising partitad's failure paths. Injection points are named
// strings ("worker.panic", "journal.write", ...) configured from a
// compact spec such as
//
//	seed=42,worker.panic=0.05,solver.stall=0.2,solver.stall.delay=25ms,journal.write=0.1
//
// Each point draws from its own PRNG stream, seeded from the global
// seed and the point's name, so firing sequences are reproducible per
// point regardless of the order in which unrelated points are
// consulted. A nil *Injector is the disabled state: every method is
// nil-safe and returns the zero answer without locking, so production
// paths pay one pointer comparison when injection is off.
package faults

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// EnvVar is the environment variable partitad consults when no -faults
// flag is given.
const EnvVar = "PARTITAD_FAULTS"

// Well-known injection points threaded through the service. Callers may
// use arbitrary names; these are the ones the chaos suite exercises.
const (
	// WorkerPanic panics a worker goroutine mid-job.
	WorkerPanic = "worker.panic"
	// SolverStall delays a solve before it starts (see SolverStallDelay).
	SolverStall = "solver.stall"
	// SolverStallDelay configures the stall duration (default 25ms).
	SolverStallDelay = "solver.stall.delay"
	// JournalWrite fails a journal append with an injected error.
	JournalWrite = "journal.write"
	// JournalShortWrite tears a journal append mid-frame, leaving a
	// truncated tail for recovery to repair.
	JournalShortWrite = "journal.shortwrite"
	// JournalSync fails the fsync after a journal append (the frame
	// itself lands), driving the journal into its degraded state.
	JournalSync = "journal.sync"
	// QueueFull reports the admission queue as full.
	QueueFull = "queue.full"
	// ClockSkew configures a constant offset applied by Now (duration).
	ClockSkew = "clock.skew"
	// PeerTimeout stalls a cluster peer call until it times out (see
	// PeerTimeoutDelay), exercising the forwarding failover path.
	PeerTimeout = "peer.timeout"
	// PeerTimeoutDelay configures the injected peer stall (default 1s).
	PeerTimeoutDelay = "peer.timeout.delay"
	// Peer5xx answers a cluster peer call with an injected 502.
	Peer5xx = "peer.5xx"
	// PeerPartition fails every outbound peer call — forwards, cache
	// peeks, and health probes — as if the network were cut.
	PeerPartition = "peer.partition"
	// RemotePointTimeout stalls one remote batch-point dispatch attempt
	// until it fails (see RemotePointTimeoutDelay), exercising the
	// lease-expiry and local-requeue paths of batch fan-out.
	RemotePointTimeout = "remote.point.timeout"
	// RemotePointTimeoutDelay configures the injected dispatch stall
	// (default 250ms).
	RemotePointTimeoutDelay = "remote.point.timeout.delay"
	// RemotePoint5xx fails one remote batch-point dispatch attempt with
	// an injected 502, exercising the retry/backoff and circuit-breaker
	// paths of batch fan-out.
	RemotePoint5xx = "remote.point.5xx"
)

// point is one configured injection point: a firing probability and an
// optional duration parameter, with its own deterministic stream.
type point struct {
	prob float64
	dur  time.Duration
	rng  *rand.Rand
}

// Injector decides, deterministically, whether each consulted injection
// point fires. The zero value is not useful; build one with Parse or
// FromEnv. A nil Injector is valid and permanently disabled.
type Injector struct {
	seed int64
	spec string

	mu     sync.Mutex
	points map[string]*point
	counts map[string]uint64
}

// Parse builds an Injector from a spec string. The spec is a
// comma-separated list of key=value pairs: "seed" sets the global seed
// (default 1), values parse as a firing probability in [0,1] or, for
// parameter points, as a time.Duration. An empty spec returns nil (the
// disabled injector).
func Parse(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" || spec == "0" {
		return nil, nil
	}
	inj := &Injector{
		seed:   1,
		spec:   spec,
		points: map[string]*point{},
		counts: map[string]uint64{},
	}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if !ok || key == "" || val == "" {
			return nil, fmt.Errorf("faults: malformed entry %q (want key=value)", kv)
		}
		if key == "seed" {
			s, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q: %v", val, err)
			}
			inj.seed = s
			continue
		}
		if d, err := time.ParseDuration(val); err == nil && strings.IndexFunc(val, isUnitLetter) >= 0 {
			if d < 0 {
				return nil, fmt.Errorf("faults: negative duration for %s: %v", key, d)
			}
			inj.points[key] = &point{dur: d}
			continue
		}
		p, err := strconv.ParseFloat(val, 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fmt.Errorf("faults: value for %s must be a probability in [0,1] or a duration, got %q", key, val)
		}
		inj.points[key] = &point{prob: p}
	}
	for name, pt := range inj.points {
		h := fnv.New64a()
		_, _ = h.Write([]byte(name))
		pt.rng = rand.New(rand.NewSource(inj.seed ^ int64(h.Sum64())))
	}
	return inj, nil
}

func isUnitLetter(r rune) bool {
	return r == 's' || r == 'm' || r == 'h' || r == 'u' || r == 'n' || r == 'µ'
}

// FromEnv parses EnvVar; a malformed spec disables injection and
// reports the error.
func FromEnv() (*Injector, error) { return Parse(os.Getenv(EnvVar)) }

// FromFlagOrEnv resolves the injection spec the way partitad does: an
// explicit -faults flag value wins, an empty flag falls back to EnvVar,
// and an empty (or "off"/"0") result disables injection.
func FromFlagOrEnv(flagSpec string) (*Injector, error) {
	if strings.TrimSpace(flagSpec) != "" {
		return Parse(flagSpec)
	}
	return FromEnv()
}

// Enabled reports whether any injection is configured.
func (i *Injector) Enabled() bool { return i != nil }

// Spec returns the spec the injector was built from ("" when disabled).
func (i *Injector) Spec() string {
	if i == nil {
		return ""
	}
	return i.spec
}

// Fire rolls the named point's probability and reports whether the
// fault fires, counting it when it does. Unconfigured points and a nil
// injector never fire.
func (i *Injector) Fire(name string) bool {
	if i == nil {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	pt, ok := i.points[name]
	if !ok || pt.prob <= 0 {
		return false
	}
	if pt.rng.Float64() >= pt.prob {
		return false
	}
	i.counts[name]++
	return true
}

// Err returns an injected error when the named point fires, nil
// otherwise.
func (i *Injector) Err(name string) error {
	if i.Fire(name) {
		return fmt.Errorf("faults: injected %s", name)
	}
	return nil
}

// Duration returns the named parameter point's configured duration, or
// def when absent.
func (i *Injector) Duration(name string, def time.Duration) time.Duration {
	if i == nil {
		return def
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if pt, ok := i.points[name]; ok && pt.dur > 0 {
		return pt.dur
	}
	return def
}

// Now is time.Now shifted by the configured clock.skew (zero skew, and
// no per-call counting, when disabled or unconfigured).
func (i *Injector) Now() time.Time {
	if i == nil {
		return time.Now()
	}
	return time.Now().Add(i.Duration(ClockSkew, 0))
}

// Counts snapshots how often each point has fired, for /metrics.
func (i *Injector) Counts() map[string]uint64 {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make(map[string]uint64, len(i.counts))
	for k, v := range i.counts {
		out[k] = v
	}
	return out
}

// Points lists the configured point names in sorted order.
func (i *Injector) Points() []string {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make([]string, 0, len(i.points))
	for k := range i.points {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
