package faults

import (
	"strings"
	"testing"
	"time"
)

func TestNilInjectorIsDisabled(t *testing.T) {
	var i *Injector
	if i.Enabled() {
		t.Fatal("nil injector must be disabled")
	}
	if i.Fire(WorkerPanic) {
		t.Fatal("nil injector must never fire")
	}
	if err := i.Err(JournalWrite); err != nil {
		t.Fatalf("nil injector Err = %v", err)
	}
	if d := i.Duration(SolverStallDelay, 7*time.Millisecond); d != 7*time.Millisecond {
		t.Fatalf("nil injector Duration = %v", d)
	}
	if got := i.Counts(); got != nil {
		t.Fatalf("nil injector Counts = %v", got)
	}
	if got := i.Points(); got != nil {
		t.Fatalf("nil injector Points = %v", got)
	}
	i.Now() // must not panic
}

func TestParseEmptyDisables(t *testing.T) {
	for _, spec := range []string{"", "  ", "off", "0"} {
		i, err := Parse(spec)
		if err != nil || i != nil {
			t.Errorf("Parse(%q) = %v, %v; want nil, nil", spec, i, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"worker.panic",          // no value
		"=0.5",                  // no key
		"seed=abc",              // bad seed
		"seed=1.5",              // fractional seed
		"worker.panic=1.5",      // probability out of range
		"worker.panic=-0.1",     // negative probability
		"worker.panic=potato",   // neither probability nor duration
		"clock.skew=-5s",        // negative duration
		"peer.timeout.delay=5x", // bad duration unit
		"a=0.1,b",               // malformed entry after a valid one
		"worker.panic==0.5",     // doubled separator ("=0.5" is not a value)
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

// Unknown point names are not a parse error: injection points are
// caller-defined strings, so a spec may configure points this build
// never consults. They parse, count as configured, and simply never
// fire unless something asks for them by name.
func TestParseUnknownPointNames(t *testing.T) {
	i, err := Parse("seed=9,no.such.point=1,future.fault=0.5,future.fault.delay=10ms")
	if err != nil {
		t.Fatalf("Parse rejected unknown point names: %v", err)
	}
	pts := i.Points()
	if len(pts) != 3 {
		t.Fatalf("Points = %v, want 3 configured points", pts)
	}
	if !i.Fire("no.such.point") {
		t.Error("configured probability-1 point did not fire, even though its name is unknown to the service")
	}
	if i.Fire(WorkerPanic) {
		t.Error("point absent from the spec fired")
	}
	if d := i.Duration("future.fault.delay", time.Second); d != 10*time.Millisecond {
		t.Errorf("unknown duration point = %v, want 10ms", d)
	}
}

func TestFromEnvPrecedence(t *testing.T) {
	// Flag set: the flag wins even when the environment disagrees.
	t.Setenv(EnvVar, "seed=5,env.only=1")
	i, err := FromFlagOrEnv("seed=2,flag.only=1")
	if err != nil {
		t.Fatal(err)
	}
	if pts := i.Points(); len(pts) != 1 || pts[0] != "flag.only" {
		t.Errorf("flag spec did not win over env: points = %v", pts)
	}

	// Empty flag: fall back to the environment.
	i, err = FromFlagOrEnv("")
	if err != nil {
		t.Fatal(err)
	}
	if pts := i.Points(); len(pts) != 1 || pts[0] != "env.only" {
		t.Errorf("env fallback points = %v", pts)
	}

	// Explicit "off" flag disables injection without consulting the env.
	i, err = FromFlagOrEnv("off")
	if err != nil || i.Enabled() {
		t.Errorf("FromFlagOrEnv(off) = %v, %v; want disabled", i, err)
	}

	// Malformed env spec surfaces the error instead of silently running
	// without faults.
	t.Setenv(EnvVar, "worker.panic=2.0")
	if _, err := FromFlagOrEnv(""); err == nil {
		t.Error("malformed env spec accepted")
	}

	// Nothing configured anywhere: disabled, no error.
	t.Setenv(EnvVar, "")
	i, err = FromFlagOrEnv("")
	if err != nil || i.Enabled() {
		t.Errorf("empty flag+env = %v, %v; want disabled", i, err)
	}
}

func TestDeterministicPerPointStreams(t *testing.T) {
	roll := func(order []string) map[string][]bool {
		i, err := Parse("seed=42,a=0.5,b=0.5")
		if err != nil {
			t.Fatal(err)
		}
		out := map[string][]bool{}
		for n := 0; n < 64; n++ {
			for _, p := range order {
				out[p] = append(out[p], i.Fire(p))
			}
		}
		return out
	}
	fwd := roll([]string{"a", "b"})
	rev := roll([]string{"b", "a"})
	for _, p := range []string{"a", "b"} {
		for n := range fwd[p] {
			if fwd[p][n] != rev[p][n] {
				t.Fatalf("point %s roll %d differs with consult order", p, n)
			}
		}
	}
	// A different seed must change at least one outcome.
	other, err := Parse("seed=43,a=0.5,b=0.5")
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for n := 0; n < 64; n++ {
		if other.Fire("a") != fwd["a"][n] {
			same = false
		}
	}
	if same {
		t.Error("seed change did not alter the firing sequence")
	}
}

func TestProbabilityExtremesAndCounts(t *testing.T) {
	i, err := Parse("seed=7,always=1,never=0")
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 100; n++ {
		if !i.Fire("always") {
			t.Fatal("probability-1 point did not fire")
		}
		if i.Fire("never") {
			t.Fatal("probability-0 point fired")
		}
		if i.Fire("unconfigured") {
			t.Fatal("unconfigured point fired")
		}
	}
	counts := i.Counts()
	if counts["always"] != 100 {
		t.Errorf("counts[always] = %d, want 100", counts["always"])
	}
	if counts["never"] != 0 || counts["unconfigured"] != 0 {
		t.Errorf("unexpected counts: %v", counts)
	}
}

func TestDurationsAndClockSkew(t *testing.T) {
	i, err := Parse("seed=1,solver.stall.delay=40ms,clock.skew=2s")
	if err != nil {
		t.Fatal(err)
	}
	if d := i.Duration(SolverStallDelay, time.Millisecond); d != 40*time.Millisecond {
		t.Errorf("stall delay = %v", d)
	}
	if d := i.Duration("missing", 9*time.Second); d != 9*time.Second {
		t.Errorf("default duration = %v", d)
	}
	skewed := i.Now()
	diff := time.Until(skewed)
	if diff < time.Second || diff > 3*time.Second {
		t.Errorf("Now skew = %v, want ~2s", diff)
	}
}

func TestErrNamesThePoint(t *testing.T) {
	i, err := Parse("journal.write=1")
	if err != nil {
		t.Fatal(err)
	}
	werr := i.Err(JournalWrite)
	if werr == nil || !strings.Contains(werr.Error(), JournalWrite) {
		t.Fatalf("Err = %v", werr)
	}
}

func TestPointsSortedAndSpecRoundTrip(t *testing.T) {
	const spec = "seed=3,b=0.1,a=0.2"
	i, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	pts := i.Points()
	if len(pts) != 2 || pts[0] != "a" || pts[1] != "b" {
		t.Errorf("Points = %v", pts)
	}
	if i.Spec() != spec {
		t.Errorf("Spec = %q", i.Spec())
	}
}
