package faults

import (
	"strings"
	"testing"
	"time"
)

func TestNilInjectorIsDisabled(t *testing.T) {
	var i *Injector
	if i.Enabled() {
		t.Fatal("nil injector must be disabled")
	}
	if i.Fire(WorkerPanic) {
		t.Fatal("nil injector must never fire")
	}
	if err := i.Err(JournalWrite); err != nil {
		t.Fatalf("nil injector Err = %v", err)
	}
	if d := i.Duration(SolverStallDelay, 7*time.Millisecond); d != 7*time.Millisecond {
		t.Fatalf("nil injector Duration = %v", d)
	}
	if got := i.Counts(); got != nil {
		t.Fatalf("nil injector Counts = %v", got)
	}
	if got := i.Points(); got != nil {
		t.Fatalf("nil injector Points = %v", got)
	}
	i.Now() // must not panic
}

func TestParseEmptyDisables(t *testing.T) {
	for _, spec := range []string{"", "  ", "off", "0"} {
		i, err := Parse(spec)
		if err != nil || i != nil {
			t.Errorf("Parse(%q) = %v, %v; want nil, nil", spec, i, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"worker.panic",        // no value
		"=0.5",                // no key
		"seed=abc",            // bad seed
		"worker.panic=1.5",    // probability out of range
		"worker.panic=-0.1",   // negative probability
		"worker.panic=potato", // neither probability nor duration
		"clock.skew=-5s",      // negative duration
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestDeterministicPerPointStreams(t *testing.T) {
	roll := func(order []string) map[string][]bool {
		i, err := Parse("seed=42,a=0.5,b=0.5")
		if err != nil {
			t.Fatal(err)
		}
		out := map[string][]bool{}
		for n := 0; n < 64; n++ {
			for _, p := range order {
				out[p] = append(out[p], i.Fire(p))
			}
		}
		return out
	}
	fwd := roll([]string{"a", "b"})
	rev := roll([]string{"b", "a"})
	for _, p := range []string{"a", "b"} {
		for n := range fwd[p] {
			if fwd[p][n] != rev[p][n] {
				t.Fatalf("point %s roll %d differs with consult order", p, n)
			}
		}
	}
	// A different seed must change at least one outcome.
	other, err := Parse("seed=43,a=0.5,b=0.5")
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for n := 0; n < 64; n++ {
		if other.Fire("a") != fwd["a"][n] {
			same = false
		}
	}
	if same {
		t.Error("seed change did not alter the firing sequence")
	}
}

func TestProbabilityExtremesAndCounts(t *testing.T) {
	i, err := Parse("seed=7,always=1,never=0")
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 100; n++ {
		if !i.Fire("always") {
			t.Fatal("probability-1 point did not fire")
		}
		if i.Fire("never") {
			t.Fatal("probability-0 point fired")
		}
		if i.Fire("unconfigured") {
			t.Fatal("unconfigured point fired")
		}
	}
	counts := i.Counts()
	if counts["always"] != 100 {
		t.Errorf("counts[always] = %d, want 100", counts["always"])
	}
	if counts["never"] != 0 || counts["unconfigured"] != 0 {
		t.Errorf("unexpected counts: %v", counts)
	}
}

func TestDurationsAndClockSkew(t *testing.T) {
	i, err := Parse("seed=1,solver.stall.delay=40ms,clock.skew=2s")
	if err != nil {
		t.Fatal(err)
	}
	if d := i.Duration(SolverStallDelay, time.Millisecond); d != 40*time.Millisecond {
		t.Errorf("stall delay = %v", d)
	}
	if d := i.Duration("missing", 9*time.Second); d != 9*time.Second {
		t.Errorf("default duration = %v", d)
	}
	skewed := i.Now()
	diff := time.Until(skewed)
	if diff < time.Second || diff > 3*time.Second {
		t.Errorf("Now skew = %v, want ~2s", diff)
	}
}

func TestErrNamesThePoint(t *testing.T) {
	i, err := Parse("journal.write=1")
	if err != nil {
		t.Fatal(err)
	}
	werr := i.Err(JournalWrite)
	if werr == nil || !strings.Contains(werr.Error(), JournalWrite) {
		t.Fatalf("Err = %v", werr)
	}
}

func TestPointsSortedAndSpecRoundTrip(t *testing.T) {
	const spec = "seed=3,b=0.1,a=0.2"
	i, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	pts := i.Points()
	if len(pts) != 2 || pts[0] != "a" || pts[1] != "b" {
		t.Errorf("Points = %v", pts)
	}
	if i.Spec() != spec {
		t.Errorf("Spec = %q", i.Spec())
	}
}
