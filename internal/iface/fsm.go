package iface

import (
	"fmt"
	"strings"

	"partita/internal/ip"
)

// FSMState is one state of a hardware in/out controller.
type FSMState struct {
	Name string
	// Actions are the register-transfer operations performed while in
	// the state (documentation-level RTL, matching Figs. 6-7).
	Actions []string
	// Next names the successor state; Cond guards the transition (empty
	// means unconditional).
	Next string
	Cond string
}

// FSM is a generated hardware interface controller (type 2 or type 3).
type FSM struct {
	Name   string
	Type   Type
	States []FSMState
}

// ControllerFSM generates the DMA controller of Fig. 6 (type 2) or the
// buffered controller of Fig. 7 (type 3). IPs with different input and
// output data rates get split in/out controllers, adding states
// (Section 3, "Different input and output data rates"). Software types
// return an error.
func ControllerFSM(t Type, b *ip.IP, s Shape) (*FSM, error) {
	switch t {
	case Type2:
		f := &FSM{Name: "hif2_" + b.ID, Type: Type2}
		f.States = []FSMState{
			{Name: "IDLE", Actions: []string{"wait S-instruction decode"}, Next: "CONNECT", Cond: "start"},
			{Name: "CONNECT", Actions: []string{
				"IP_in_x = data_x1; IP_in_y = data_y1",
				"data_x2 = IP_out_x; data_y2 = IP_out_y",
			}, Next: "FILL"},
			{Name: "FILL", Actions: []string{
				"addr_x1++; addr_y1++; rw_x1 = r; rw_y1 = r",
				fmt.Sprintf("repeat cnt_in_only (%d)", s.NIn),
			}, Next: "STREAM", Cond: "cnt_in_only == 0"},
			{Name: "STREAM", Actions: []string{
				"addr_x1++; addr_y1++; rw_x1 = r; rw_y1 = r",
				"addr_x2++; addr_y2++; rw_x2 = w; rw_y2 = w",
			}, Next: "DRAIN", Cond: "cnt_in_out == 0"},
			{Name: "DRAIN", Actions: []string{
				"addr_x2++; addr_y2++; rw_x2 = w; rw_y2 = w",
				fmt.Sprintf("repeat cnt_out_only (%d)", s.NOut),
			}, Next: "DONE", Cond: "cnt_out_only == 0"},
			{Name: "DONE", Actions: []string{"raise S-instruction complete"}, Next: "IDLE"},
		}
		if b.InRate != b.OutRate {
			// Split controllers: independent pacing of the two streams.
			f.States = append(f.States,
				FSMState{Name: "PACE_IN", Actions: []string{fmt.Sprintf("stall %d cycles between inputs", b.InRate)}, Next: "STREAM"},
				FSMState{Name: "PACE_OUT", Actions: []string{fmt.Sprintf("stall %d cycles between outputs", b.OutRate)}, Next: "STREAM"},
			)
		}
		return f, nil
	case Type3:
		f := &FSM{Name: "hif3_" + b.ID, Type: Type3}
		f.States = []FSMState{
			{Name: "IDLE", Actions: []string{"wait S-instruction decode"}, Next: "CONNECT", Cond: "start"},
			{Name: "CONNECT", Actions: []string{
				"buff_in[][] = data_x; buff_in[][] = data_y",
				"data_x = buff_out[][]; data_y = buff_out[][]",
			}, Next: "FILLBUF"},
			{Name: "FILLBUF", Actions: []string{
				"addr_x++; addr_y++; rw_x = r; rw_y = r",
				fmt.Sprintf("repeat cnt_in (%d)", s.NIn),
			}, Next: "RUN", Cond: "cnt_in == 0"},
			{Name: "RUN", Actions: []string{
				"IP_start = 1",
				"buffer controller feeds IP at native rate; kernel runs parallel code",
			}, Next: "DRAINBUF", Cond: "IP done"},
			{Name: "DRAINBUF", Actions: []string{
				"addr_x++; addr_y++; rw_x = w; rw_y = w",
				fmt.Sprintf("repeat cnt_out (%d)", s.NOut),
			}, Next: "DONE", Cond: "cnt_out == 0"},
			{Name: "DONE", Actions: []string{"raise S-instruction complete"}, Next: "IDLE"},
			// Dedicated buffer-side controllers (always split for the
			// buffered types so in/out rates are independent).
			{Name: "BCTL_IN", Actions: []string{fmt.Sprintf("buff_in → IP every %d cycles", b.InRate)}, Next: "BCTL_IN"},
			{Name: "BCTL_OUT", Actions: []string{fmt.Sprintf("IP → buff_out every %d cycles", b.OutRate)}, Next: "BCTL_OUT"},
		}
		return f, nil
	}
	return nil, fmt.Errorf("iface: ControllerFSM called for software type %v", t)
}

// String renders the FSM as readable RTL documentation.
func (f *FSM) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fsm %s (%s, %d states)\n", f.Name, f.Type, len(f.States))
	for _, st := range f.States {
		fmt.Fprintf(&sb, "  %s:\n", st.Name)
		for _, a := range st.Actions {
			fmt.Fprintf(&sb, "    %s\n", a)
		}
		if st.Cond != "" {
			fmt.Fprintf(&sb, "    → %s when %s\n", st.Next, st.Cond)
		} else if st.Next != "" {
			fmt.Fprintf(&sb, "    → %s\n", st.Next)
		}
	}
	return sb.String()
}
