package iface

import (
	"fmt"

	"partita/internal/ip"
	"partita/internal/mop"
)

// Template is a generated software interface (Fig. 4 for type 0, Fig. 5
// for type 1): real µ-code whose packed size gives the code-memory area
// and whose loop structure gives the transfer timing.
type Template struct {
	Type Type
	// Fn is the generated µ-code, structured as one function whose
	// blocks mirror the numbered template lines of the paper's figures.
	Fn *mop.Function
	// Words is the µ-ROM footprint (packed words over all blocks).
	Words int
	// TransferCycles is T_IF for type 0: total kernel time spent moving
	// operands/results for the given shape.
	TransferCycles int64
	// FillCycles/DrainCycles are T_IF_IN and T_IF_OUT for type 1.
	FillCycles, DrainCycles int64
}

// Register conventions inside interface templates. The IP's ports appear
// to the kernel as two dedicated move-target registers (the S-IF codes of
// Fig. 3 move data between memory and the IP through the kernel buses).
var (
	ipInReg  = mop.GPR(14)
	ipOutReg = mop.GPR(15)
)

// SoftwareTemplate generates the type-0 or type-1 interface µ-code for
// block b under shape s. Only the software types are valid arguments;
// hardware types return an error.
func SoftwareTemplate(t Type, b *ip.IP, s Shape) (*Template, error) {
	switch t {
	case Type0:
		return type0Template(b, s), nil
	case Type1:
		return type1Template(b, s), nil
	}
	return nil, fmt.Errorf("iface: SoftwareTemplate called for hardware type %v", t)
}

// loopWords packs a block and returns its word count.
func loopWords(ops []mop.MOP) int64 { return int64(len(mop.PackBlock(ops))) }

// type0Template mirrors Fig. 4: fill the IP pipeline from memory
// (lines 2-5), stream operands in and results out (lines 6-9), then
// drain the pipeline (lines 10-13).
func type0Template(b *ip.IP, s Shape) *Template {
	cnt, data, dataY := mop.GPR(10), mop.GPR(11), mop.GPR(12)
	one := mop.GPR(13)
	init := &mop.Block{Label: "init", Ops: []mop.MOP{
		// Line 1: loop counts and address registers.
		{Op: mop.LDI, Dst: cnt, Imm: 0},
		{Op: mop.LDI, Dst: one, Imm: 1},
		{Op: mop.AGUX, Dst: mop.AX(0), Imm: 0, Abs: true},
		{Op: mop.AGUY, Dst: mop.AY(0), Imm: 0, Abs: true},
		{Op: mop.AGUX, Dst: mop.AX(1), Imm: 0, Abs: true},
		{Op: mop.AGUY, Dst: mop.AY(1), Imm: 0, Abs: true},
	}}
	fill := &mop.Block{Label: "fill", Ops: []mop.MOP{
		// Lines 2-3: fetch an X/Y operand pair, hand it to the IP.
		{Op: mop.LDX, Dst: data, SrcA: mop.AX(0), Imm: 1},
		{Op: mop.LDY, Dst: dataY, SrcA: mop.AY(0), Imm: 1},
		{Op: mop.MOV, Dst: ipInReg, SrcA: data},
		// Lines 4-5: decrement, loop.
		{Op: mop.SUB, Dst: cnt, SrcA: cnt, SrcB: one},
		{Op: mop.CMP, SrcA: cnt, SrcB: one},
		{Op: mop.BNE, Sym: "fill"},
	}}
	stream := &mop.Block{Label: "stream", Ops: []mop.MOP{
		// Lines 6-9: operands in and results out in the same iteration;
		// the µ-word fields let loads, moves and stores pack tightly.
		{Op: mop.LDX, Dst: data, SrcA: mop.AX(0), Imm: 1},
		{Op: mop.LDY, Dst: dataY, SrcA: mop.AY(0), Imm: 1},
		{Op: mop.MOV, Dst: ipInReg, SrcA: data},
		{Op: mop.MOV, Dst: mop.GPR(9), SrcA: ipOutReg},
		{Op: mop.STX, SrcA: mop.GPR(9), SrcB: mop.AX(1), Imm: 1},
		{Op: mop.STY, SrcA: dataY, SrcB: mop.AY(1), Imm: 1},
		{Op: mop.SUB, Dst: cnt, SrcA: cnt, SrcB: one},
		{Op: mop.CMP, SrcA: cnt, SrcB: one},
		{Op: mop.BNE, Sym: "stream"},
	}}
	drain := &mop.Block{Label: "drain", Ops: []mop.MOP{
		// Lines 10-13: flush remaining pipeline contents to memory.
		{Op: mop.MOV, Dst: mop.GPR(9), SrcA: ipOutReg},
		{Op: mop.STX, SrcA: mop.GPR(9), SrcB: mop.AX(1), Imm: 1},
		{Op: mop.SUB, Dst: cnt, SrcA: cnt, SrcB: one},
		{Op: mop.CMP, SrcA: cnt, SrcB: one},
		{Op: mop.BNE, Sym: "drain"},
	}}
	done := &mop.Block{Label: "done", Ops: []mop.MOP{{Op: mop.RET}}}
	fn := &mop.Function{Name: "sif0_" + b.ID, Blocks: []*mop.Block{init, fill, stream, drain, done}}

	words := 0
	for _, blk := range fn.Blocks {
		words += len(mop.PackBlock(blk.Ops))
	}

	// Iteration counts from the shape: the pipeline depth (in data
	// items) sets the input-only and output-only parts.
	depth := int64(1)
	if b.InRate > 0 {
		depth = (int64(b.Latency) + int64(b.InRate) - 1) / int64(b.InRate)
	}
	pin, pout := pairs(s.NIn), pairs(s.NOut)
	fillIters := min64(depth, pin)
	mainIters := max64(pin, pout) - fillIters
	if mainIters < 0 {
		mainIters = 0
	}
	drainIters := min64(depth, pout)

	// A rate slower than the 4-cycle template adds NOP padding cycles
	// per iteration (Section 3, type 0).
	pad := int64(0)
	if b.InRate > type0TemplateRate {
		pad = int64(b.InRate - type0TemplateRate)
	}
	tr := loopWords(init.Ops) +
		fillIters*(loopWords(fill.Ops)+pad) +
		mainIters*(loopWords(stream.Ops)+pad) +
		drainIters*(loopWords(drain.Ops)+pad)

	return &Template{Type: Type0, Fn: fn, Words: words, TransferCycles: tr}
}

// type1Template mirrors Fig. 5: fill the in-buffer (lines 2-5), start the
// IP (line 6), and after the parallel-code window drain the out-buffer
// (lines 7-10). Buffers are addressed through the second AGU registers.
func type1Template(b *ip.IP, s Shape) *Template {
	cnt, data, dataY := mop.GPR(10), mop.GPR(11), mop.GPR(12)
	one := mop.GPR(13)
	init := &mop.Block{Label: "init", Ops: []mop.MOP{
		{Op: mop.LDI, Dst: cnt, Imm: 0},
		{Op: mop.LDI, Dst: one, Imm: 1},
		{Op: mop.AGUX, Dst: mop.AX(0), Imm: 0, Abs: true},
		{Op: mop.AGUY, Dst: mop.AY(0), Imm: 0, Abs: true},
	}}
	fill := &mop.Block{Label: "fillbuf", Ops: []mop.MOP{
		{Op: mop.LDX, Dst: data, SrcA: mop.AX(0), Imm: 1},
		{Op: mop.LDY, Dst: dataY, SrcA: mop.AY(0), Imm: 1},
		{Op: mop.MOV, Dst: ipInReg, SrcA: data}, // buff_in[][] = in-data
		{Op: mop.SUB, Dst: cnt, SrcA: cnt, SrcB: one},
		{Op: mop.CMP, SrcA: cnt, SrcB: one},
		{Op: mop.BNE, Sym: "fillbuf"},
	}}
	start := &mop.Block{Label: "start", Ops: []mop.MOP{
		// Line 6: IP_start = 1; parallel code runs after this point.
		{Op: mop.LDI, Dst: ipInReg, Imm: 1},
	}}
	drain := &mop.Block{Label: "drainbuf", Ops: []mop.MOP{
		{Op: mop.MOV, Dst: mop.GPR(9), SrcA: ipOutReg}, // out-data = buff_out[][]
		{Op: mop.STX, SrcA: mop.GPR(9), SrcB: mop.AX(1), Imm: 1},
		{Op: mop.SUB, Dst: cnt, SrcA: cnt, SrcB: one},
		{Op: mop.CMP, SrcA: cnt, SrcB: one},
		{Op: mop.BNE, Sym: "drainbuf"},
	}}
	done := &mop.Block{Label: "done", Ops: []mop.MOP{{Op: mop.RET}}}
	fn := &mop.Function{Name: "sif1_" + b.ID, Blocks: []*mop.Block{init, fill, start, drain, done}}

	words := 0
	for _, blk := range fn.Blocks {
		words += len(mop.PackBlock(blk.Ops))
	}
	fillCycles := loopWords(init.Ops) + pairs(s.NIn)*loopWords(fill.Ops) + loopWords(start.Ops)
	drainCycles := pairs(s.NOut) * loopWords(drain.Ops)
	return &Template{Type: Type1, Fn: fn, Words: words, FillCycles: fillCycles, DrainCycles: drainCycles}
}
