// Package iface implements the four IP-interface methods of Choi et al.
// (DAC 1999), Section 3:
//
//	Type 0 — software in/out controller, no buffers (cheapest, slowest)
//	Type 1 — software controller with in/out buffers (parallel execution)
//	Type 2 — hardware FSM controller, no buffers (DMA-style)
//	Type 3 — hardware FSM controller with buffers (fastest, largest)
//
// For each (IP, invocation shape) the package enumerates the feasible
// interface types with their execution-time and area models, generates
// the µ-code interface templates of Figs. 4-5 for the software types, and
// the controller FSMs of Figs. 6-7 for the hardware types.
package iface

import (
	"fmt"

	"partita/internal/ip"
	"partita/internal/kernel"
)

// Type identifies an interface method.
type Type int

const (
	Type0 Type = iota // software controller, no buffer
	Type1             // software controller, buffered
	Type2             // hardware FSM, no buffer
	Type3             // hardware FSM, buffered
	NumTypes
)

func (t Type) String() string { return fmt.Sprintf("IF%d", int(t)) }

// Buffered reports whether the type uses in/out buffers.
func (t Type) Buffered() bool { return t == Type1 || t == Type3 }

// Software reports whether the in/out controller runs in the kernel.
func (t Type) Software() bool { return t == Type0 || t == Type1 }

// SupportsParallel reports whether kernel code can run while the IP runs
// (Fig. 2). Only the buffered types avoid memory contention.
func (t Type) SupportsParallel() bool { return t.Buffered() }

// type0TemplateRate is the in/out data rate (kernel cycles per item) the
// Fig. 4 software template sustains. IPs consuming faster than this must
// be clocked down (slow clock), IPs slower get NOP padding.
const type0TemplateRate = 4

// Shape describes one invocation of an IP: how many data items flow in
// and out, and the pure-software time and available parallel-code time
// of the s-call being accelerated.
type Shape struct {
	NIn, NOut int
	// TSW is the software execution time of the s-call (T_SW).
	TSW int64
	// TC is the guaranteed parallel-code time (T_C); used only by the
	// buffered types.
	TC int64
}

// Candidate is one feasible (interface type, IP) attachment with its
// full timing and area breakdown.
type Candidate struct {
	Type Type
	IP   *ip.IP

	// Timing (kernel cycles).
	TIP    int64 // IP execution time (after any slow-clocking)
	TIF    int64 // unbuffered transfer time (types 0/2)
	TIFIn  int64 // buffer fill (types 1/3)
	TIFOut int64 // buffer drain (types 1/3)
	TB     int64 // buffer↔IP transfer time (types 1/3)
	TCUsed int64 // parallel-code time credited (types 1/3)
	Exec   int64 // resulting execution time of the S-instruction
	Gain   int64 // T_SW − Exec

	// ClockDiv > 1 means the IP clock was divided to match the type-0
	// template rate.
	ClockDiv int

	// Area breakdown (paper units). IfaceArea = A_CNT + A_B + protocol
	// transformer + mux; it excludes the IP's own area.
	CodeWords int // µ-code words of the software controller
	FSMStates int // states of the hardware controller
	BufWords  int // total buffer words
	IfaceArea float64
}

// pairs is the number of dual-memory transfer beats for n items: the
// kernel moves at most two items per beat (one X, one Y).
func pairs(n int) int64 {
	if n <= 0 {
		return 0
	}
	return int64((n + 1) / 2)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Candidates enumerates every feasible interface type for attaching
// block b under the given invocation shape, with areas computed from the
// generated controller artifacts under the area model.
func Candidates(b *ip.IP, s Shape, am kernel.AreaModel) []Candidate {
	var out []Candidate
	for t := Type0; t < NumTypes; t++ {
		if c, ok := Plan(t, b, s, am); ok {
			out = append(out, c)
		}
	}
	return out
}

// Plan builds the candidate for one specific interface type; ok is false
// when the type cannot support the block (port count, rate mismatch).
func Plan(t Type, b *ip.IP, s Shape, am kernel.AreaModel) (Candidate, bool) {
	c := Candidate{Type: t, IP: b, ClockDiv: 1}
	ptArea := float64(b.Protocol.TransformerStates()) * am.PerFSMState

	switch t {
	case Type0:
		// ≤2 ports per direction (one X + one Y operand per cycle) and
		// equal in/out rates (the single software loop of Fig. 4 cannot
		// interleave two different rates).
		if b.InPorts > 2 || b.OutPorts > 2 || b.InRate != b.OutRate {
			return c, false
		}
		if b.InRate < type0TemplateRate {
			// Slow the IP clock until its data rate matches the
			// template's sustained rate.
			c.ClockDiv = (type0TemplateRate + b.InRate - 1) / b.InRate
		}
		c.TIP = b.ExecCycles(s.NIn, s.NOut) * int64(c.ClockDiv)
		tmpl, err := SoftwareTemplate(t, b, s)
		if err != nil {
			return c, false
		}
		c.CodeWords = tmpl.Words
		c.TIF = tmpl.TransferCycles
		c.Exec = max64(c.TIP, c.TIF)
		c.IfaceArea = float64(c.CodeWords)*am.PerCodeWord + ptArea + am.MuxOverhead
	case Type1:
		c.TIP = b.ExecCycles(s.NIn, s.NOut)
		tmpl, err := SoftwareTemplate(t, b, s)
		if err != nil {
			return c, false
		}
		c.CodeWords = tmpl.Words
		c.TIFIn = tmpl.FillCycles
		c.TIFOut = tmpl.DrainCycles
		c.TB = max64(int64(s.NIn)*int64(b.InRate), int64(s.NOut)*int64(b.OutRate))
		c.TCUsed = min64(c.TIP, s.TC)
		c.Exec = c.TIFIn + max64(c.TIP, c.TB) + c.TIFOut - c.TCUsed
		c.BufWords = s.NIn + s.NOut
		c.IfaceArea = float64(c.CodeWords)*am.PerCodeWord +
			float64(c.BufWords)*am.PerBufferWord + am.BufferCtlOverhead +
			ptArea + am.MuxOverhead
	case Type2:
		if b.InPorts > 2 || b.OutPorts > 2 {
			return c, false
		}
		c.TIP = b.ExecCycles(s.NIn, s.NOut)
		f, err := ControllerFSM(t, b, s)
		if err != nil {
			return c, false
		}
		c.FSMStates = len(f.States)
		// DMA moves up to two items per clock on each side; in and out
		// streams overlap in the middle part of Fig. 6.
		c.TIF = max64(pairs(s.NIn), pairs(s.NOut)) + 2
		c.Exec = max64(c.TIP, c.TIF)
		c.IfaceArea = float64(c.FSMStates)*am.PerFSMState + ptArea + am.MuxOverhead
	case Type3:
		c.TIP = b.ExecCycles(s.NIn, s.NOut)
		f, err := ControllerFSM(t, b, s)
		if err != nil {
			return c, false
		}
		c.FSMStates = len(f.States)
		c.TIFIn = pairs(s.NIn) + 1
		c.TIFOut = pairs(s.NOut) + 1
		c.TB = max64(int64(s.NIn)*int64(b.InRate), int64(s.NOut)*int64(b.OutRate))
		c.TCUsed = min64(c.TIP, s.TC)
		c.Exec = c.TIFIn + max64(c.TIP, c.TB) + c.TIFOut - c.TCUsed
		c.BufWords = s.NIn + s.NOut
		c.IfaceArea = float64(c.FSMStates)*am.PerFSMState +
			float64(c.BufWords)*am.PerBufferWord + am.BufferCtlOverhead +
			ptArea + am.MuxOverhead
	default:
		return c, false
	}
	c.Gain = s.TSW - c.Exec
	return c, true
}

// String renders a candidate compactly, in the notation of the paper's
// tables ("IP12,IF0,gain,area").
func (c Candidate) String() string {
	return fmt.Sprintf("%s,%s,gain=%d,ifarea=%.3g", c.IP.ID, c.Type, c.Gain, c.IfaceArea)
}
